module hydranet

go 1.22
