package hydranet

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"hydranet/internal/app"
	"hydranet/internal/trace"
)

// scenarioOpts tweaks runScenario without changing the simulated workload.
type scenarioOpts struct {
	poison   bool      // enable frame-pool poisoning
	traceOut io.Writer // tcpdump-style segment trace destination (nil = none)
}

// runScenario executes a fixed FT scenario (lossy links, mid-stream primary
// crash) and returns a fingerprint of everything observable, including the
// full snapshot JSON.
func runScenario(seed int64, opts scenarioOpts) string {
	net := New(Config{Seed: seed})
	net.PoisonFrames(opts.poison)
	client := net.AddHost("client", HostConfig{})
	rd := net.AddRedirector("rd", HostConfig{})
	var replicas []*Host
	link := LinkConfig{Rate: 10_000_000, Delay: time.Millisecond, Loss: 0.02}
	net.Link(client, rd.Host, link)
	for i := 0; i < 3; i++ {
		h := net.AddHost("s"+string(rune('0'+i)), HostConfig{})
		replicas = append(replicas, h)
		net.Link(h, rd.Host, link)
	}
	net.AutoRoute()
	if opts.traceOut != nil {
		tr := trace.New(opts.traceOut, net.Scheduler())
		tr.AttachTCP("client", client.TCP())
		for _, h := range replicas {
			tr.AttachTCP(h.Name(), h.TCP())
		}
	}
	svc, err := net.DeployFT(testSvc, rd, replicas, FTOptions{},
		func(c *Conn) { app.Echo(c) })
	if err != nil {
		panic(err)
	}
	net.Settle()
	conn, err := client.Dial(testSvc)
	if err != nil {
		panic(err)
	}
	var echoed []byte
	app.Collect(conn, &echoed)
	payload := make([]byte, 120_000)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	app.Source(conn, payload, false)
	net.RunFor(400 * time.Millisecond)
	svc.CrashPrimary()
	net.RunFor(2 * time.Minute)

	fp := fmt.Sprintf("echoed=%d chain=%v events=%d conn=%+v rd=%+v",
		len(echoed), svc.Chain(), net.Scheduler().Fired(), conn.Stats(),
		rd.Daemon().Stats())
	for _, h := range replicas {
		fp += fmt.Sprintf(" %s=%+v", h.Name(), h.FTManager().Stats())
	}
	snap, err := net.Snapshot().JSON()
	if err != nil {
		panic(err)
	}
	return fp + "\n" + string(snap)
}

// TestWholeRunDeterminism: a complete FT scenario — loss, retransmissions,
// suspicion, probing, failover — replays identically from the same seed.
// This is the property that makes every experiment in EXPERIMENTS.md
// reproducible bit for bit.
func TestWholeRunDeterminism(t *testing.T) {
	a := runScenario(77, scenarioOpts{})
	b := runScenario(77, scenarioOpts{})
	if a != b {
		t.Fatalf("same seed diverged:\n  run1: %s\n  run2: %s", a, b)
	}
	c := runScenario(78, scenarioOpts{})
	if a == c {
		t.Fatal("different seeds produced identical fingerprints — randomness inert")
	}
}

// TestPoolingDeterminism: frame-buffer pooling is invisible. With poisoning
// enabled every released buffer is overwritten before reuse, so this test
// fails if any component reads a frame after returning it to the pool
// (recycled-buffer-observed-after-release): the poisoned bytes would change
// the fingerprint, the snapshot JSON, or the segment trace.
func TestPoolingDeterminism(t *testing.T) {
	var trClean, trPoison bytes.Buffer
	clean := runScenario(77, scenarioOpts{traceOut: &trClean})
	poisoned := runScenario(77, scenarioOpts{poison: true, traceOut: &trPoison})
	if clean != poisoned {
		t.Fatalf("pool poisoning changed observable results — a frame is read after release:\n  clean:    %.400s\n  poisoned: %.400s", clean, poisoned)
	}
	if !bytes.Equal(trClean.Bytes(), trPoison.Bytes()) {
		t.Fatal("pool poisoning changed the segment trace — a frame is read after release")
	}
	if trClean.Len() == 0 {
		t.Fatal("trace is empty — the comparison is vacuous")
	}
}
