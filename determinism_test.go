package hydranet

import (
	"fmt"
	"testing"
	"time"

	"hydranet/internal/app"
)

// runScenario executes a fixed FT scenario (lossy links, mid-stream primary
// crash) and returns a fingerprint of everything observable.
func runScenario(seed int64) string {
	net := New(Config{Seed: seed})
	client := net.AddHost("client", HostConfig{})
	rd := net.AddRedirector("rd", HostConfig{})
	var replicas []*Host
	link := LinkConfig{Rate: 10_000_000, Delay: time.Millisecond, Loss: 0.02}
	net.Link(client, rd.Host, link)
	for i := 0; i < 3; i++ {
		h := net.AddHost("s"+string(rune('0'+i)), HostConfig{})
		replicas = append(replicas, h)
		net.Link(h, rd.Host, link)
	}
	net.AutoRoute()
	svc, err := net.DeployFT(testSvc, rd, replicas, FTOptions{},
		func(c *Conn) { app.Echo(c) })
	if err != nil {
		panic(err)
	}
	net.Settle()
	conn, err := client.Dial(testSvc)
	if err != nil {
		panic(err)
	}
	var echoed []byte
	app.Collect(conn, &echoed)
	payload := make([]byte, 120_000)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	app.Source(conn, payload, false)
	net.RunFor(400 * time.Millisecond)
	svc.CrashPrimary()
	net.RunFor(2 * time.Minute)

	fp := fmt.Sprintf("echoed=%d chain=%v events=%d conn=%+v rd=%+v",
		len(echoed), svc.Chain(), net.Scheduler().Fired(), conn.Stats(),
		rd.Daemon().Stats())
	for _, h := range replicas {
		fp += fmt.Sprintf(" %s=%+v", h.Name(), h.FTManager().Stats())
	}
	return fp
}

// TestWholeRunDeterminism: a complete FT scenario — loss, retransmissions,
// suspicion, probing, failover — replays identically from the same seed.
// This is the property that makes every experiment in EXPERIMENTS.md
// reproducible bit for bit.
func TestWholeRunDeterminism(t *testing.T) {
	a := runScenario(77)
	b := runScenario(77)
	if a != b {
		t.Fatalf("same seed diverged:\n  run1: %s\n  run2: %s", a, b)
	}
	c := runScenario(78)
	if a == c {
		t.Fatal("different seeds produced identical fingerprints — randomness inert")
	}
}
