package hydranet

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hydranet/internal/app"
	"hydranet/internal/scope"
)

// parallelTopology builds a 4-host star whose delay structure yields three
// synchronization domains under the automatic cut: the client sits 50 µs
// from the redirector (below the cut, so they share a domain) while both
// replicas hang off 1 ms backbone links (the cut class, so each is its own
// domain with a 1 ms lookahead window). The replicas get slightly different
// CPU cost models so their event streams are never key-tied.
func parallelTopology(t *testing.T, seed int64) (*Net, *Host, *Redirector, []*Host) {
	t.Helper()
	net := New(Config{Seed: seed})
	client := net.AddHost("client", HostConfig{})
	rd := net.AddRedirector("rd", HostConfig{})
	s0 := net.AddHost("s0", HostConfig{})
	s1 := net.AddHost("s1", HostConfig{})
	net.Link(client, rd.Host, LinkConfig{Rate: 10_000_000, Delay: 50 * time.Microsecond})
	backbone := LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	net.Link(s0, rd.Host, backbone)
	net.Link(s1, rd.Host, backbone)
	net.AutoRoute()
	s0.SetProcessing(10*time.Microsecond, 0)
	s1.SetProcessing(13*time.Microsecond, 0)
	return net, client, rd, []*Host{s0, s1}
}

// parallelArtifacts is everything observable one run produces.
type parallelArtifacts struct {
	pcap, series []byte
	domains      int
	fired        uint64
	handoffs     uint64
	ties         uint64
}

// runParallelScenario runs the full failover scenario — deploy, stream,
// crash the primary, recover — at the given worker count and returns every
// observable artifact. workers <= 1 runs the untouched serial scheduler.
func runParallelScenario(t *testing.T, workers int) parallelArtifacts {
	t.Helper()
	net, client, rd, replicas := parallelTopology(t, 11)
	if workers > 1 {
		if err := net.SetWorkers(workers); err != nil {
			t.Fatal(err)
		}
		if d, _ := net.Parallel(); d != 3 {
			t.Fatalf("auto-partition produced %d domains, want 3", d)
		}
	}

	var pcap bytes.Buffer
	if _, err := net.StartCapture(&pcap); err != nil {
		t.Fatal(err)
	}
	probe := net.NewFailoverProbe()
	tel := net.StartSampler(SamplerConfig{
		Every:  50 * time.Millisecond,
		Health: &HealthConfig{},
	})
	tel.AttachFailover(probe)
	tel.WatchReplicas(replicas...)

	svc, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 3}}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	payload := make([]byte, 1024*1024)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	conn, err := client.Dial(testSvc)
	if err != nil {
		t.Fatal(err)
	}
	received := new(int)
	// Client-side observation runs on the client's domain; publishing on
	// Host.Bus keeps it deterministic under any worker count (it is Net.Bus
	// when serial).
	bus := client.Bus()
	buf := make([]byte, 8192)
	conn.OnReadable(func() {
		for {
			n := conn.Read(buf)
			if n == 0 {
				break
			}
			*received += n
			if bus.Enabled(KindClientDeliver) {
				bus.Publish(Event{Kind: KindClientDeliver, Node: "client", Size: n})
			}
		}
	})
	app.Source(conn, payload, false)

	net.RunFor(300 * time.Millisecond)
	svc.CrashPrimary()
	for *received < len(payload) && net.Now() < 2*time.Minute {
		net.RunFor(time.Second)
	}
	if *received != len(payload) {
		t.Fatalf("workers=%d: client received %d of %d bytes", workers, *received, len(payload))
	}
	tel.Stop()

	var ser bytes.Buffer
	if err := tel.WriteJSONL(&ser); err != nil {
		t.Fatal(err)
	}
	return parallelArtifacts{
		pcap:     pcap.Bytes(),
		series:   ser.Bytes(),
		domains:  func() int { d, _ := net.Parallel(); return d }(),
		fired:    net.EventsFired(),
		handoffs: net.Handoffs(),
		ties:     net.MergeTies(),
	}
}

// dropMissesLines removes pool.misses series lines from a JSONL export and
// reports how many were dropped. pool.misses is allocator telemetry scoped
// to each domain's frame pool — the one series that is partition-dependent
// by design (DESIGN.md §10); everything else must match byte-for-byte.
func dropMissesLines(b []byte) (kept string, dropped int) {
	lines := strings.Split(string(b), "\n")
	out := lines[:0]
	for _, ln := range lines {
		if strings.Contains(ln, `"pool.misses"`) {
			dropped++
			continue
		}
		out = append(out, ln)
	}
	return strings.Join(out, "\n"), dropped
}

// firstDiffLine locates the first differing line of two multi-line strings.
func firstDiffLine(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return "line " + itoa(i+1) + ":\n  a: " + clip(la[i]) + "\n  b: " + clip(lb[i])
		}
	}
	return "line counts differ: " + itoa(len(la)) + " vs " + itoa(len(lb))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d [20]byte
	i := len(d)
	for n > 0 {
		i--
		d[i] = byte('0' + n%10)
		n /= 10
	}
	return string(d[i:])
}

func clip(s string) string {
	if len(s) > 160 {
		return s[:160] + "..."
	}
	return s
}

// TestParallelRunMatchesSerial is the tentpole's proof obligation: the same
// failover scenario run serially, with 2 workers, and with 4 workers must
// produce byte-identical packet captures, byte-identical series exports
// across parallel runs, and serial-vs-parallel series identical except for
// the documented pool.misses allocator line. Run under -race this also
// exercises the window/barrier protocol for data races.
func TestParallelRunMatchesSerial(t *testing.T) {
	serial := runParallelScenario(t, 1)
	two := runParallelScenario(t, 2)
	four := runParallelScenario(t, 4)

	if serial.domains != 1 {
		t.Errorf("serial run reports %d domains, want 1", serial.domains)
	}
	if two.domains != 3 || four.domains != 3 {
		t.Errorf("parallel runs report %d/%d domains, want 3/3", two.domains, four.domains)
	}

	// Packet captures: every frame on every link, timestamped on the virtual
	// clock — the strictest observable. All three must be byte-identical.
	if !bytes.Equal(serial.pcap, two.pcap) {
		t.Errorf("2-worker pcap differs from serial (%d vs %d bytes)", len(two.pcap), len(serial.pcap))
	}
	if !bytes.Equal(serial.pcap, four.pcap) {
		t.Errorf("4-worker pcap differs from serial (%d vs %d bytes)", len(four.pcap), len(serial.pcap))
	}
	if len(serial.pcap) == 0 {
		t.Error("capture produced no bytes")
	}

	// The partition is topology-derived, so worker count must not leak into
	// any output: 2- and 4-worker series are byte-identical, misses included.
	if !bytes.Equal(two.series, four.series) {
		t.Errorf("2- and 4-worker series exports differ:\n%s",
			firstDiffLine(string(two.series), string(four.series)))
	}

	// Serial vs parallel: identical except the per-domain allocator line.
	serKept, serDropped := dropMissesLines(serial.series)
	parKept, parDropped := dropMissesLines(two.series)
	if serKept != parKept {
		t.Errorf("serial and parallel series differ beyond pool.misses:\n%s",
			firstDiffLine(serKept, parKept))
	}
	if serDropped == 0 || serDropped != parDropped {
		t.Errorf("pool.misses line counts: serial %d, parallel %d (want equal, nonzero)",
			serDropped, parDropped)
	}

	// hydrascope must agree the parallel runs are clean against each other,
	// and must confine serial-vs-parallel findings to pool.misses — DiffRuns
	// is what CI gates with.
	runS, err := scope.LoadRun(bytes.NewReader(serial.series))
	if err != nil {
		t.Fatal(err)
	}
	run2, err := scope.LoadRun(bytes.NewReader(two.series))
	if err != nil {
		t.Fatal(err)
	}
	run4, err := scope.LoadRun(bytes.NewReader(four.series))
	if err != nil {
		t.Fatal(err)
	}
	if findings := scope.DiffRuns(run2, run4, 0.001); len(findings) != 0 {
		t.Errorf("2- vs 4-worker runs diff dirty: %v", findings)
	}
	for _, f := range scope.DiffRuns(runS, run2, 0.001) {
		if f.Series != "pool.misses" {
			t.Errorf("serial vs parallel finding outside pool.misses: %v", f)
		}
	}
	if runS.Meta.Failover == nil || !runS.Meta.Failover.Complete {
		t.Fatalf("serial export missing the completed failover timeline: %+v", runS.Meta.Failover)
	}
	if run2.Meta.Failover == nil || !run2.Meta.Failover.Complete {
		t.Fatalf("parallel export missing the completed failover timeline: %+v", run2.Meta.Failover)
	}

	// Accounting parity: the parallel run executes the same events (plus
	// barrier-hosted globals standing in for scheduler-hosted timers), hands
	// frames across domains, and never hits an ambiguous merge.
	if serial.fired != two.fired {
		t.Errorf("events fired: serial %d, parallel %d", serial.fired, two.fired)
	}
	if two.handoffs == 0 {
		t.Error("parallel run recorded no cross-domain hand-offs")
	}
	if two.ties != 0 {
		t.Errorf("parallel run recorded %d merge ties, want 0", two.ties)
	}
	if serial.handoffs != 0 || serial.ties != 0 {
		t.Errorf("serial run recorded handoffs=%d ties=%d, want 0/0", serial.handoffs, serial.ties)
	}
}

// TestPartitionOrderingGuards pins the call-ordering contract: partitioning
// must come after the topology is final and before anything is deployed.
func TestPartitionOrderingGuards(t *testing.T) {
	t.Run("after deploy", func(t *testing.T) {
		net, _, rd, replicas := parallelTopology(t, 3)
		if _, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept()); err != nil {
			t.Fatal(err)
		}
		if err := net.SetWorkers(4); err == nil {
			t.Fatal("SetWorkers after DeployFT succeeded, want error")
		}
	})
	t.Run("twice", func(t *testing.T) {
		net, _, _, _ := parallelTopology(t, 3)
		if err := net.SetWorkers(2); err != nil {
			t.Fatal(err)
		}
		if err := net.SetWorkers(2); err == nil {
			t.Fatal("second SetWorkers succeeded, want error")
		}
	})
	t.Run("live connection", func(t *testing.T) {
		net, client, rd, replicas := parallelTopology(t, 3)
		if _, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept()); err != nil {
			t.Fatal(err)
		}
		net.Settle()
		if _, err := client.Dial(testSvc); err != nil {
			t.Fatal(err)
		}
		groups := [][]*Host{{client}, {rd.Host}, {replicas[0]}, {replicas[1]}}
		if err := net.Partition(groups, 2); err == nil {
			t.Fatal("Partition with live connections succeeded, want error")
		}
	})
	t.Run("add host after partition", func(t *testing.T) {
		net, _, _, _ := parallelTopology(t, 3)
		if err := net.SetWorkers(2); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if recover() == nil {
				t.Fatal("AddHost after SetWorkers did not panic")
			}
		}()
		net.AddHost("late", HostConfig{})
	})
	t.Run("uniform topology stays serial", func(t *testing.T) {
		// Equal delays everywhere means every host is its own domain — which
		// is a valid partition; but a single-host net has nothing to cut.
		net := New(Config{Seed: 1})
		net.AddHost("only", HostConfig{})
		if err := net.SetWorkers(8); err != nil {
			t.Fatal(err)
		}
		if d, w := net.Parallel(); d != 1 || w != 1 {
			t.Fatalf("single-host net partitioned into %d domains / %d workers", d, w)
		}
	})
}
