package hydranet

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"hydranet/internal/app"
)

// TestCrashAtEveryPhase kills the primary at increasingly late points of a
// connection's life — before the SYN, between SYN and data, during the bulk
// transfer, and just before the close — and requires the same client-side
// outcome every time: the full echo arrives and the connection closes
// cleanly.
func TestCrashAtEveryPhase(t *testing.T) {
	payload := make([]byte, 120_000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	phases := []struct {
		name    string
		crashAt time.Duration // after the dial (for pre-data phases)
		atBytes int           // crash once this many bytes are echoed
	}{
		{"before-syn", 0, -1},
		{"during-handshake", 2 * time.Millisecond, -1},
		{"first-data", 12 * time.Millisecond, -1},
		{"mid-transfer", 0, len(payload) / 4},
		{"late-transfer", 0, len(payload) * 3 / 4},
	}
	for i, phase := range phases {
		phase := phase
		t.Run(phase.name, func(t *testing.T) {
			net, client, rd, replicas := ftTopology(t, int64(100+i), 2)
			svc, err := net.DeployFT(testSvc, rd, replicas,
				FTOptions{Detector: DetectorParams{RetransmitThreshold: 2}}, echoAccept())
			if err != nil {
				t.Fatal(err)
			}
			net.Settle()

			conn, err := client.Dial(testSvc)
			if err != nil {
				t.Fatal(err)
			}
			var echoedData []byte
			echoed := &echoedData
			crashed := false
			crash := func() {
				if !crashed {
					crashed = true
					replicas[0].Crash() // always the original primary
				}
			}
			buf := make([]byte, 4096)
			conn.OnReadable(func() {
				for {
					n := conn.Read(buf)
					if n == 0 {
						break
					}
					echoedData = append(echoedData, buf[:n]...)
				}
				if phase.atBytes >= 0 && len(echoedData) >= phase.atBytes {
					crash()
				}
			})
			var closedErr error
			closed := false
			conn.OnClosed(func(err error) { closed, closedErr = true, err })
			app.Source(conn, payload, true) // write everything, then close

			if phase.atBytes < 0 {
				net.RunFor(phase.crashAt)
				crash()
			}
			net.RunFor(5 * time.Minute)
			if !crashed {
				t.Fatal("crash trigger never fired")
			}

			if !bytes.Equal(*echoed, payload) {
				t.Fatalf("echo %d of %d bytes after %s crash",
					len(*echoed), len(payload), phase.name)
			}
			if !closed || closedErr != nil {
				t.Fatalf("close after %s crash: done=%v err=%v",
					phase.name, closed, closedErr)
			}
			if got := svc.Chain(); len(got) != 1 || got[0] != replicas[1].Addr() {
				t.Fatalf("chain = %v after %s crash", got, phase.name)
			}
		})
	}
}

// TestCrashDuringCloseHandshake: the primary dies after the client's FIN is
// acknowledged but (possibly) before the server side finishes closing. The
// client must still terminate cleanly rather than hang in FIN-WAIT.
func TestCrashDuringCloseHandshake(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 110, 2)
	_, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 2}}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(testSvc)
	echoed := collect(conn)
	var closedErr error
	closed := false
	conn.OnClosed(func(err error) { closed, closedErr = true, err })
	app.Source(conn, []byte("short"), true)
	// Let the data and FIN go out, then kill the primary mid-teardown.
	net.RunFor(8 * time.Millisecond)
	replicas[0].Crash()
	net.RunFor(5 * time.Minute)
	if string(*echoed) != "short" {
		t.Fatalf("echo = %q", *echoed)
	}
	if !closed {
		t.Fatal("client hung in teardown after primary crash")
	}
	_ = closedErr // a clean close is ideal but a late RST-free timeout is tolerated
}

// TestAllReplicasDead: when the whole replica set fails, HydraNet-FT's
// guarantee is exhausted ("reliable communication as long as there is a
// path between the client and at least ONE operational server"). The
// client's connection must die a normal TCP death, the redirector table
// must empty, and later dials must fail rather than hang forever.
func TestAllReplicasDead(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 112, 2)
	cfg := TCPConfig{MaxRetries: 6, MinRTO: 500 * time.Millisecond}
	_ = cfg // client stack config is fixed at AddHost; defaults suffice
	svc, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 2}}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(testSvc)
	var closedErr error
	conn.OnClosed(func(err error) { closedErr = err })
	app.Source(conn, make([]byte, 200_000), false)
	net.RunFor(100 * time.Millisecond)
	for _, h := range replicas {
		h.Crash()
	}
	net.RunFor(30 * time.Minute) // enough for the client's full retry budget
	if closedErr == nil {
		t.Fatalf("client connection still alive with zero operational servers (state %v)", conn.State())
	}
	// Faithful limitation: failure reports come from the replicas
	// themselves ("failure detectors on the hosts inform the redirectors"),
	// so with the whole set dead nobody reports and the table goes stale.
	if got := len(svc.Chain()); got != 2 {
		t.Fatalf("chain = %d members; with no survivors no one can report, so the stale chain persists", got)
	}
	// A fresh dial cannot succeed; it must fail, not hang.
	conn2, _ := client.Dial(testSvc)
	var err2 error
	closed2 := false
	conn2.OnClosed(func(e error) { closed2, err2 = true, e })
	net.RunFor(30 * time.Minute)
	if !closed2 || err2 == nil {
		t.Fatalf("dial against a dead service: closed=%v err=%v", closed2, err2)
	}
}

// TestSequentialCrashes: with three replicas, kill the primary, then kill
// its successor; the last survivor carries the connection home.
func TestSequentialCrashes(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 111, 3)
	svc, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 2}}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(testSvc)
	payload := make([]byte, 1_000_000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var echoedData []byte
	echoed := &echoedData
	buf := make([]byte, 4096)
	stage := 0
	conn.OnReadable(func() {
		for {
			n := conn.Read(buf)
			if n == 0 {
				break
			}
			echoedData = append(echoedData, buf[:n]...)
		}
		// Stage the two crashes by byte progress so they always land
		// inside the transfer regardless of timing.
		if stage == 0 && len(echoedData) >= len(payload)/5 {
			stage = 1
			replicas[0].Crash()
		}
	})
	app.Source(conn, payload, false)
	// Wait for the first failover to complete, then kill the new primary
	// while the transfer is still in flight.
	for i := 0; i < 4800; i++ {
		net.RunFor(50 * time.Millisecond)
		if stage == 1 && len(svc.Chain()) == 2 {
			break
		}
	}
	if got := svc.Chain(); len(got) != 2 {
		t.Fatalf("chain after first crash = %v (echoed %d)", got, len(echoedData))
	}
	if len(echoedData) >= len(payload) {
		t.Fatal("transfer finished before the second crash could land")
	}
	replicas[1].Crash()
	net.RunFor(4 * time.Minute)

	if !bytes.Equal(*echoed, payload) {
		t.Fatalf("echo %d of %d bytes after two crashes", len(*echoed), len(payload))
	}
	if got := svc.Chain(); len(got) != 1 || got[0] != replicas[2].Addr() {
		t.Fatalf("chain = %v, want only the last survivor", got)
	}
	if fmt.Sprintf("%v", conn.State()) != "ESTABLISHED" {
		t.Fatalf("client state = %v", conn.State())
	}
}
