package hydranet

import (
	"testing"
	"time"

	"hydranet/internal/app"
)

// TestLeaseDetectsIdleCrash: with heartbeats enabled, a dead primary is
// detected and replaced with NO traffic on the connection at all — closing
// the gap the paper's traffic-driven estimator leaves for idle services.
func TestLeaseDetectsIdleCrash(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 131, 2)
	svc, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Heartbeat: 500 * time.Millisecond}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(testSvc)
	echoed := collect(conn)
	conn.OnConnected(func() { conn.Write([]byte("before|")) })
	net.RunFor(2 * time.Second)

	svc.CrashPrimary()
	// Total silence from the application; the lease must expire anyway.
	net.RunFor(10 * time.Second)
	if got := svc.Chain(); len(got) != 1 || got[0] != replicas[1].Addr() {
		t.Fatalf("idle crash not lease-detected: chain = %v", got)
	}
	if rd.Daemon().Stats().LeaseExpirations == 0 {
		t.Fatal("no lease expiration recorded")
	}
	// The promoted backup serves the connection when traffic resumes.
	conn.Write([]byte("after"))
	net.RunFor(30 * time.Second)
	if string(*echoed) != "before|after" {
		t.Fatalf("echo = %q", *echoed)
	}
}

// TestLeaseQuietWhenHealthy: heartbeats flowing → nobody expires, even over
// a long idle stretch.
func TestLeaseQuietWhenHealthy(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 132, 3)
	svc, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Heartbeat: 500 * time.Millisecond}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(testSvc)
	echoed := collect(conn)
	app.Source(conn, []byte("ping"), false)
	net.RunFor(5 * time.Minute) // long healthy idle period
	if got := len(svc.Chain()); got != 3 {
		t.Fatalf("healthy chain shrank to %d under leases", got)
	}
	if rd.Daemon().Stats().LeaseExpirations != 0 {
		t.Fatal("spurious lease expirations")
	}
	if string(*echoed) != "ping" {
		t.Fatalf("echo = %q", *echoed)
	}
}

// TestVoluntaryLeaveViaFacade: FTService.Leave resplices the chain and
// promotes the successor when the primary departs, without any client
// disturbance.
func TestVoluntaryLeaveViaFacade(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 133, 3)
	svc, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(testSvc)
	echoed := collect(conn)
	conn.OnConnected(func() { conn.Write([]byte("one|")) })
	net.RunFor(2 * time.Second)

	if err := svc.Leave(replicas[0]); err != nil { // the primary departs
		t.Fatal(err)
	}
	net.Settle()
	chain := svc.Chain()
	if len(chain) != 2 || chain[0] != replicas[1].Addr() {
		t.Fatalf("chain after primary leave = %v", chain)
	}
	conn.Write([]byte("two"))
	net.RunFor(60 * time.Second)
	if string(*echoed) != "one|two" {
		t.Fatalf("echo = %q", *echoed)
	}
	// Leaving twice (or a stranger) errors cleanly.
	stranger := net.AddHost("stranger", HostConfig{})
	if err := svc.Leave(stranger); err == nil {
		t.Fatal("Leave accepted a non-member")
	}
}
