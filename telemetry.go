package hydranet

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hydranet/internal/metrics"
	"hydranet/internal/series"
)

// Time-series re-exports: the ring-buffer layer lives in internal/series;
// harness code configures and reads it through these aliases.
type (
	// SeriesSet is an ordered registry of time series.
	SeriesSet = series.Set
	// TimeSeries is one ring-buffered series.
	TimeSeries = series.Series
	// HealthConfig tunes the gray-failure health scorer.
	HealthConfig = series.HealthConfig
	// HealthScorer classifies replicas healthy/degraded/dead from sampled
	// series.
	HealthScorer = series.HealthScorer
	// HealthVerdict is a replica health classification.
	HealthVerdict = series.Verdict
)

// Health verdicts.
const (
	HealthHealthy  = series.Healthy
	HealthDegraded = series.Degraded
	HealthDead     = series.Dead
)

// SamplerConfig configures Net.StartSampler.
type SamplerConfig struct {
	// Every is the sampling cadence (default 100 ms of virtual time).
	Every time.Duration
	// Capacity is the per-series ring size in points (default 1024).
	Capacity int
	// MaxConns caps how many live connections per host get per-connection
	// series (srtt/rto/cwnd), in the stack's deterministic sorted order.
	// Default 4; connections beyond the cap still count in host totals.
	MaxConns int
	// Spans, if set, samples interval ack-chain-lag and deposit-stall
	// statistics from the collector.
	Spans *SpanCollector
	// Health, if non-nil, runs a HealthScorer over the replicas registered
	// with Telemetry.WatchReplicas.
	Health *HealthConfig
}

// Telemetry is an attached sampling pipeline: a Sampler on the virtual
// clock scrapes the net-wide snapshot diff, per-connection TCP state, span
// statistics, redirector table sizes, link queue depths, frame-pool
// occupancy and the scheduler backlog into a SeriesSet every cadence.
//
// Nothing here touches a packet path: when no Telemetry is attached the
// simulation runs exactly as before (zero cost), and an attached one costs
// one scheduler event plus one snapshot per interval.
type Telemetry struct {
	net     *Net
	set     *series.Set
	sampler *series.Sampler
	gtick   *groupTicker // drives ticks at barriers in partitioned runs
	scorer  *series.HealthScorer
	spans   *SpanCollector
	probe   *FailoverProbe

	maxConns   int
	prev       Snapshot
	prevLag    metrics.HistogramSnapshot
	prevStall  metrics.HistogramSnapshot
	prevMisses uint64

	hosts   []hostSeries
	watched []watchedReplica
	samples []series.ReplicaSample // scratch, reused per tick
}

// hostSeries caches one host's series so the tick loop does no name
// formatting for the common counters.
type hostSeries struct {
	host *Host

	retransmits, peerRetransmits, rtoEvents *series.Series
	segsIn, segsOut, deposited              *series.Series
	framesRx                                *series.Series
	alive, conns, procBacklog               *series.Series
}

type watchedReplica struct {
	host   *Host
	index  int // into Snapshot.Hosts
	health *series.Series
}

// StartSampler attaches a telemetry pipeline and starts it: the first tick
// fires one cadence from now. Attach after the topology is final (the
// snapshot walks hosts, links and redirectors) and before the measured
// traffic, like the capture subsystems.
//
// The sampler reschedules itself forever, so Net.Run()-until-idle callers
// must Stop it; RunFor/RunUntil harnesses need no Stop.
func (n *Net) StartSampler(cfg SamplerConfig) *Telemetry {
	t := &Telemetry{
		net:      n,
		set:      series.NewSet(cfg.Capacity),
		sampler:  series.NewSampler(n.sched, cfg.Every),
		spans:    cfg.Spans,
		maxConns: cfg.MaxConns,
	}
	if t.maxConns == 0 {
		t.maxConns = 4
	}
	if cfg.Health != nil {
		t.scorer = series.NewHealthScorer(*cfg.Health)
	}
	for _, h := range n.hosts {
		name := h.name
		t.hosts = append(t.hosts, hostSeries{
			host:            h,
			retransmits:     t.set.Counter("host."+name+".retransmits", "segments"),
			peerRetransmits: t.set.Counter("host."+name+".peer_retransmits", "segments"),
			rtoEvents:       t.set.Counter("host."+name+".rto_events", "timeouts"),
			segsIn:          t.set.Counter("host."+name+".segs_in", "segments"),
			segsOut:         t.set.Counter("host."+name+".segs_out", "segments"),
			deposited:       t.set.Counter("host."+name+".deposited_bytes", "bytes"),
			framesRx:        t.set.Counter("host."+name+".frames_rx", "frames"),
			alive:           t.set.Gauge("host."+name+".alive", ""),
			conns:           t.set.Gauge("host."+name+".conns", "conns"),
			procBacklog:     t.set.Gauge("host."+name+".proc_backlog_ms", "ms"),
		})
	}
	t.sampler.OnSample(t.sample)
	if n.par != nil {
		// Partitioned: the sampler reads state spanning every domain, so
		// its tick must run at a window barrier with all workers parked. A
		// group ticker fires with the same (time, birth) key sequence the
		// serial timer would use, keeping sampled series byte-identical.
		every := cfg.Every
		if every <= 0 {
			every = series.DefaultCadence
		}
		t.gtick = n.par.startTicker(every, t.sample)
	} else {
		t.sampler.Start()
	}
	return t
}

// Set returns the series registry (for ad-hoc series alongside the
// built-in probes).
func (t *Telemetry) Set() *SeriesSet { return t.set }

// Sampler returns the underlying sampler. In a partitioned run the ticks
// are driven at window barriers instead; use Ticks/Every, which work in
// both modes.
func (t *Telemetry) Sampler() *series.Sampler { return t.sampler }

// Ticks returns how many times the pipeline has sampled.
func (t *Telemetry) Ticks() uint64 {
	if t.gtick != nil {
		return t.gtick.ticks
	}
	return t.sampler.Ticks()
}

// Every returns the sampling cadence.
func (t *Telemetry) Every() time.Duration {
	if t.gtick != nil {
		return t.gtick.every
	}
	return t.sampler.Every()
}

// Scorer returns the health scorer (nil unless SamplerConfig.Health was
// set).
func (t *Telemetry) Scorer() *HealthScorer { return t.scorer }

// Stop disarms the sampler; collected series remain readable.
func (t *Telemetry) Stop() {
	if t.gtick != nil {
		t.gtick.Stop()
		return
	}
	t.sampler.Stop()
}

// AttachFailover records the probe's Table-2 report into the export
// metadata, aligning series timelines with failover phases.
func (t *Telemetry) AttachFailover(p *FailoverProbe) { t.probe = p }

// WatchReplicas registers service replicas with the health scorer (no-op
// without SamplerConfig.Health). Each watched replica gets a
// health.<host> gauge series: 0 healthy, 1 degraded, 2 dead.
func (t *Telemetry) WatchReplicas(hosts ...*Host) {
	if t.scorer == nil {
		return
	}
	for _, h := range hosts {
		idx := -1
		for i, nh := range t.net.hosts {
			if nh == h {
				idx = i
			}
		}
		if idx < 0 {
			continue
		}
		t.watched = append(t.watched, watchedReplica{
			host: h, index: idx,
			health: t.set.Gauge("health."+h.name, "verdict"),
		})
	}
}

// sample is the per-tick probe: snapshot, diff, scrape, score.
func (t *Telemetry) sample(now time.Duration) {
	cur := t.net.Snapshot()
	d := cur.Diff(t.prev)

	// Per-host layer counters (interval deltas) and liveness gauges.
	// Snapshot.Hosts follows Net host order, so index i matches t.hosts[i].
	for i := range t.hosts {
		hs := &t.hosts[i]
		dh := &d.Hosts[i]
		hs.retransmits.Observe(now, float64(dh.Conns.Retransmits))
		hs.peerRetransmits.Observe(now, float64(dh.Conns.PeerRetransmits))
		hs.rtoEvents.Observe(now, float64(dh.Conns.RTOEvents))
		hs.segsIn.Observe(now, float64(dh.TCP.SegsIn))
		hs.segsOut.Observe(now, float64(dh.TCP.SegsOut))
		hs.deposited.Observe(now, float64(dh.Conns.BytesReceived))
		hs.framesRx.Observe(now, float64(dh.Frames.Received))
		alive := 0.0
		if dh.Alive {
			alive = 1
		}
		hs.alive.Observe(now, alive)
		hs.conns.Observe(now, float64(dh.TCP.Conns))
		hs.procBacklog.Observe(now, float64(dh.ProcBacklog)/float64(time.Millisecond))

		// Per-connection TCP telemetry, capped, in the stack's sorted
		// (deterministic) order.
		conns := hs.host.tcp.Conns()
		for j, c := range conns {
			if j >= t.maxConns {
				break
			}
			prefix := "conn." + hs.host.name + "." + connLabel(c)
			t.set.Gauge(prefix+".srtt_ms", "ms").Observe(now, float64(c.SRTT())/float64(time.Millisecond))
			t.set.Gauge(prefix+".rto_ms", "ms").Observe(now, float64(c.RTO())/float64(time.Millisecond))
			t.set.Gauge(prefix+".cwnd", "bytes").Observe(now, float64(c.CongestionWindow()))
			t.set.Gauge(prefix+".retransmits_total", "segments").Observe(now, float64(c.Stats().Retransmits))
		}
	}

	// Redirectors: table size gauge plus interval multicast counters.
	for i, r := range t.net.redirectors {
		name := r.Host.name
		t.set.Gauge("rd."+name+".services", "entries").Observe(now, float64(r.rd.NumServices()))
		if i < len(d.Redirectors) {
			dr := &d.Redirectors[i]
			t.set.Counter("rd."+name+".multicasts", "packets").Observe(now, float64(dr.Table.Multicast))
			t.set.Counter("rd."+name+".multicast_copies", "packets").Observe(now, float64(dr.Table.MulticastCopies))
		}
	}

	// Link queue depths (instantaneous bytes) and interval queue drops.
	for i := range t.net.links {
		li := &t.net.links[i]
		ab, ba := li.underlying.Backlogs()
		base := "link." + li.a.name + "-" + li.b.name
		t.set.Gauge(base+".queue_ab", "bytes").Observe(now, float64(ab))
		t.set.Gauge(base+".queue_ba", "bytes").Observe(now, float64(ba))
		if i < len(d.Links) {
			dl := &d.Links[i]
			t.set.Counter(base+".queue_drops", "frames").Observe(now,
				float64(dl.AB.QueueDrop+dl.BA.QueueDrop))
		}
	}

	// Frame-pool occupancy and scheduler backlog. PoolOutstanding counts
	// each logical in-flight frame once in any partition (cross-domain
	// hand-off copies are deduplicated), so the gauge is partition-
	// invariant; PoolMisses is allocator telemetry and partition-scoped
	// (see DESIGN.md §10).
	t.set.Gauge("pool.outstanding", "frames").Observe(now, float64(t.net.fab.PoolOutstanding()))
	misses := t.net.fab.PoolMisses()
	t.set.Counter("pool.misses", "frames").Observe(now, float64(misses-t.prevMisses))
	t.prevMisses = misses
	t.set.Gauge("sched.pending", "events").Observe(now, float64(t.net.eventsPending()))

	// Span statistics: interval ack-chain lag and deposit stall.
	if t.spans != nil {
		lag := t.spans.AckChainLag()
		dl := lag.Diff(t.prevLag)
		t.prevLag = lag
		t.set.Counter("spans.ack_chain_lag_samples", "spans").Observe(now, float64(dl.Count))
		if dl.Count > 0 {
			t.set.Gauge("spans.ack_chain_lag_ms", "ms").Observe(now, dl.Mean)
		}
		stall := t.spans.DepositStall()
		ds := stall.Diff(t.prevStall)
		t.prevStall = stall
		t.set.Counter("spans.deposit_stall_samples", "spans").Observe(now, float64(ds.Count))
		if ds.Count > 0 {
			t.set.Gauge("spans.deposit_stall_ms", "ms").Observe(now, ds.Mean)
		}
	}

	// Health scoring over watched replicas: feed cumulative counters, the
	// scorer diffs internally and cross-compares the replica set.
	if t.scorer != nil && len(t.watched) > 0 {
		t.samples = t.samples[:0]
		for _, w := range t.watched {
			hs := &cur.Hosts[w.index]
			t.samples = append(t.samples, series.ReplicaSample{
				Name:            hs.Name,
				Alive:           hs.Alive,
				PeerRetransmits: float64(hs.Conns.PeerRetransmits),
				DepositedBytes:  float64(hs.Conns.BytesReceived),
				SegsIn:          float64(hs.TCP.SegsIn),
				ProcBacklog:     hs.ProcBacklog,
			})
		}
		t.scorer.Tick(now, t.samples)
		for _, w := range t.watched {
			w.health.Observe(now, float64(t.scorer.Verdict(w.host.name)))
		}
	}

	t.prev = cur
}

// connLabel names a connection by its endpoints, comma-free for CSV.
func connLabel(c *Conn) string {
	return c.Local().String() + "-" + c.Remote().String()
}

// meta builds the export header.
func (t *Telemetry) meta() series.Meta {
	m := series.Meta{
		Every: t.Every(),
		Ticks: t.Ticks(),
		Seed:  t.net.cfg.Seed,
	}
	if t.probe != nil {
		if r := t.probe.Report(); r.CrashAt > 0 {
			m.Failover = &r
		}
	}
	return m
}

// WriteJSONL exports the collected series as JSON lines (canonical
// format: meta header with the failover timeline, then one object per
// series).
func (t *Telemetry) WriteJSONL(w io.Writer) error {
	return series.WriteJSONL(w, t.meta(), t.set)
}

// WriteCSV exports the retained windows as long-form CSV.
func (t *Telemetry) WriteCSV(w io.Writer) error {
	return series.WriteCSV(w, t.meta(), t.set)
}

// WriteFile exports to path, choosing CSV for a .csv extension and JSONL
// otherwise.
func (t *Telemetry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = t.WriteCSV(f)
	} else {
		err = t.WriteJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("hydranet: series export %s: %w", path, err)
	}
	return nil
}

// SetProcessing changes the host's CPU cost model mid-run — gray-failure
// injection: a large per-frame delay makes the host slow without killing
// it, the "degraded, not dead" scenario the health scorer exists to catch.
func (h *Host) SetProcessing(procDelay, procPerByte time.Duration) {
	h.node.SetProc(procDelay, procPerByte)
}
