package hydranet

import (
	"testing"
	"time"

	"hydranet/internal/app"
	"hydranet/internal/rmp"
)

// TestCongestedBackupEvictedAndRecommissioned exercises the paper's
// congestion story end to end: a backup whose acknowledgment channel is
// effectively dead (severe congestion) stalls the whole chain; with the
// congestion policy enabled the redirector "shuts it down" (evicts it), the
// flow recovers, and once the congestion clears the server rejoins.
func TestCongestedBackupEvictedAndRecommissioned(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 61, 2)
	svc, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 2}}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	rd.Daemon().SetCongestionPolicy(rmp.CongestionPolicy{Strikes: 3, Window: 2 * time.Minute})
	net.Settle()

	conn, _ := client.Dial(testSvc)
	echoed := collect(conn)
	payload := make([]byte, 150_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	app.Source(conn, payload, false)
	net.RunFor(100 * time.Millisecond)

	// Severe congestion at the backup: its chain messages all vanish, so
	// the primary can never acknowledge.
	replicas[1].FTManager().SetChainLoss(1.0)
	net.RunFor(3 * time.Minute)

	if got := len(*echoed); got != len(payload) {
		t.Fatalf("transfer stalled at %d of %d despite congestion eviction", got, len(payload))
	}
	chain := svc.Chain()
	if len(chain) != 1 || chain[0] != replicas[0].Addr() {
		t.Fatalf("chain = %v, want the congested backup evicted", chain)
	}
	if rd.Daemon().Stats().CongestionEvictions == 0 {
		t.Fatal("eviction not recorded as congestion-based")
	}
	if !replicas[1].Alive() {
		t.Fatal("test invariant: the evicted backup is alive, just congested")
	}

	// Congestion clears; the server rejoins for new connections.
	replicas[1].FTManager().SetChainLoss(0)
	if err := svc.Recommission(replicas[1]); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if got := svc.Chain(); len(got) != 2 {
		t.Fatalf("chain after recommission = %v", got)
	}
	conn2, _ := client.Dial(testSvc)
	echoed2 := collect(conn2)
	app.Source(conn2, []byte("back in business"), false)
	net.RunFor(10 * time.Second)
	if string(*echoed2) != "back in business" {
		t.Fatalf("echo after rejoin = %q", *echoed2)
	}
	// The rejoined backup replicates the new connection (it may also still
	// track a stale entry for the pre-eviction connection, which it can no
	// longer observe — the host never crashed, so that state lingers until
	// the old connection's client endpoint is reused or the host reboots).
	newConnSeen := false
	for _, c := range replicas[1].TCP().Conns() {
		if c.Remote() == conn2.Local() {
			newConnSeen = true
		}
	}
	if !newConnSeen {
		t.Fatal("rejoined backup is not replicating the new connection")
	}
}

// TestCongestionPolicyDisabledByDefault: without the policy, live hosts are
// never evicted no matter how many suspicions fire.
func TestCongestionPolicyDisabledByDefault(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 62, 2)
	svc, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 2}}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(testSvc)
	app.Source(conn, make([]byte, 100_000), false)
	net.RunFor(100 * time.Millisecond)
	replicas[1].FTManager().SetChainLoss(1.0)
	net.RunFor(2 * time.Minute)
	if got := len(svc.Chain()); got != 2 {
		t.Fatalf("chain = %d members; default policy must never evict live hosts", got)
	}
	if rd.Daemon().Stats().Suspicions == 0 {
		t.Fatal("scenario inert: no suspicions despite a dead ack channel")
	}
}
