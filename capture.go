package hydranet

import (
	"io"

	"hydranet/internal/capture"
	"hydranet/internal/ipv4"
	"hydranet/internal/netsim"
	"hydranet/internal/redirector"
	"hydranet/internal/tcp"
)

// Re-exported capture/tracing types.
type (
	// Capture streams every fabric frame (and the redirector's pre-encap
	// inner copies) to a pcap file readable by Wireshark/tcpdump.
	Capture = capture.Capture
	// FlightRecorder keeps bounded per-host rings of recent frames and
	// obs events, dumpable to pcap + JSON after the fact.
	FlightRecorder = capture.FlightRecorder
	// PcapFile is a parsed pcap stream (the in-repo golden reader).
	PcapFile = capture.File
	// SpanCollector assembles per-connection ft-TCP trace spans from bus
	// events (multicast → chain arrival → deposit → client ACK).
	SpanCollector = tcp.SpanCollector
)

// ReadPcap parses a pcap stream with the in-repo reader.
func ReadPcap(r io.Reader) (*PcapFile, error) { return capture.ReadAll(r) }

// ReadPcapFile parses a pcap file from disk.
func ReadPcapFile(path string) (*PcapFile, error) { return capture.ReadFile(path) }

// StartCapture attaches a packet capture to the whole network: every frame
// accepted for transmission on every link (both directions) plus, for each
// redirector present when the capture starts, the pre-encapsulation inner
// packet of every tunnel copy. Records are timestamped on the virtual
// clock, so captures of equal-seed runs are byte-identical. Call after the
// topology (and its redirectors) is built; w stays open until the caller
// closes it, after the run.
func (n *Net) StartCapture(w io.Writer) (*Capture, error) {
	// The capture stamps records with Net.Now, which in a partitioned run
	// follows the barrier replay clock — so each record carries the virtual
	// instant the frame was emitted, byte-identical to a serial capture.
	c, err := capture.New(w, n.Now)
	if err != nil {
		return nil, err
	}
	n.addFrameTap(c.FrameTap())
	n.addEncapTap(c.CaptureInner)
	return c, nil
}

// StartFlightRecorder attaches a flight recorder to the whole network:
// per-host rings of the last framesPerHost transmitted frames and
// eventsPerHost bus events (<= 0 selects the package defaults). Dump it
// with FlightRecorder.Dump, or arm it with DumpOnFailover/DumpOnFailure.
func (n *Net) StartFlightRecorder(framesPerHost, eventsPerHost int) *FlightRecorder {
	f := capture.NewFlightRecorder(n.Now, framesPerHost, eventsPerHost)
	f.AttachBus(n.bus)
	n.addFrameTap(f.Tap())
	return f
}

// NewSpanCollector subscribes a span collector to the network's bus. Like
// every bus subscriber it enables the relevant emit sites; attach it before
// the traffic it should observe.
func (n *Net) NewSpanCollector() *SpanCollector {
	return tcp.NewSpanCollector(n.bus, 0)
}

// addFrameTap registers t and reinstalls the fabric tap, fanning out to all
// registered taps when there is more than one (the single-tap case stays a
// direct call).
func (n *Net) addFrameTap(t netsim.FrameTap) {
	n.frameTaps = append(n.frameTaps, t)
	if n.par != nil {
		// Partitioned: the fabric tap is the parallel runtime's spool, and
		// the registered taps replay from it at each barrier.
		n.par.installTaps()
		return
	}
	switch taps := n.frameTaps; len(taps) {
	case 1:
		n.fab.SetFrameTap(taps[0])
	default:
		n.fab.SetFrameTap(func(from, to *netsim.Node, data []byte) {
			for _, tap := range taps {
				tap(from, to, data)
			}
		})
	}
}

// addEncapTap registers t on every redirector present now (redirectors
// added later are not tapped — start captures after building the topology).
func (n *Net) addEncapTap(t redirector.EncapTap) {
	n.encapTaps = append(n.encapTaps, t)
	if n.par != nil {
		n.par.installTaps()
		return
	}
	var tap redirector.EncapTap
	switch taps := n.encapTaps; len(taps) {
	case 1:
		tap = taps[0]
	default:
		tap = func(inner *ipv4.Packet, host Addr) {
			for _, et := range taps {
				et(inner, host)
			}
		}
	}
	for _, r := range n.redirectors {
		r.rd.SetEncapTap(tap)
	}
}
