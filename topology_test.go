package hydranet

import (
	"bytes"
	"testing"
	"time"

	"hydranet/internal/app"
)

// TestMultiHopRouting: client — r1 — r2 — rd — server, with the redirector
// three hops from the client. AutoRoute must chain the path, and the
// default-route-toward-redirector rule must work across plain routers.
func TestMultiHopRouting(t *testing.T) {
	net := New(Config{Seed: 121})
	client := net.AddHost("client", HostConfig{})
	r1 := net.AddRouter("r1", HostConfig{})
	r2 := net.AddRouter("r2", HostConfig{})
	rd := net.AddRedirector("rd", HostConfig{})
	s0 := net.AddHost("s0", HostConfig{})
	s1 := net.AddHost("s1", HostConfig{})
	link := LinkConfig{Rate: 10_000_000, Delay: 2 * time.Millisecond}
	net.Link(client, r1, link)
	net.Link(r1, r2, link)
	net.Link(r2, rd.Host, link)
	net.Link(s0, rd.Host, link)
	net.Link(s1, rd.Host, link)
	net.AutoRoute()

	svc := ServiceID{Addr: MustAddr("192.20.225.20"), Port: 80}
	ftsvc, err := net.DeployFT(svc, rd, []*Host{s0, s1}, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(svc)
	echoed := collect(conn)
	payload := bytes.Repeat([]byte("far"), 10_000)
	app.Source(conn, payload, false)
	net.RunFor(30 * time.Second)
	if !bytes.Equal(*echoed, payload) {
		t.Fatalf("multi-hop echo: %d of %d bytes", len(*echoed), len(payload))
	}
	// Failover still works across the multi-hop path.
	ftsvc.CrashPrimary()
	conn.Write([]byte("|post"))
	net.RunFor(2 * time.Minute)
	want := append(append([]byte(nil), payload...), []byte("|post")...)
	if !bytes.Equal(*echoed, want) {
		t.Fatalf("multi-hop failover: %d of %d bytes", len(*echoed), len(want))
	}
	// The plain routers really carried the traffic.
	if r1.IP().Stats().Forwarded == 0 || r2.IP().Stats().Forwarded == 0 {
		t.Error("intermediate routers forwarded nothing")
	}
}

// TestHostServerSharedVirtualHost: two services on one virtual host, one
// FT and one scaling, on overlapping host sets.
func TestHostServerSharedVirtualHost(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 122, 2)
	vaddr := MustAddr("192.20.225.20")
	ftSvc := ServiceID{Addr: vaddr, Port: 80}
	scaleSvc := ServiceID{Addr: vaddr, Port: 8080}
	if _, err := net.DeployFT(ftSvc, rd, replicas, FTOptions{}, echoAccept()); err != nil {
		t.Fatal(err)
	}
	if err := net.DeployScale(scaleSvc, rd, []ScaleTarget{{Host: replicas[1], Metric: 1}},
		func(c *Conn) { app.Source(c, []byte("scaled"), true) }); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	c1, _ := client.Dial(ftSvc)
	e1 := collect(c1)
	app.Source(c1, []byte("replicated"), false)
	c2, _ := client.Dial(scaleSvc)
	e2 := collect(c2)
	app.Source(c2, []byte("x"), false)
	net.RunFor(10 * time.Second)
	if string(*e1) != "replicated" || string(*e2) != "scaled" {
		t.Fatalf("echoes: %q / %q", *e1, *e2)
	}
	// The shared virtual host is reference-counted: removing one service
	// must not strand the other.
	replicas[1].Daemon(rd).Leave(scaleSvc)
	net.Settle()
	c3, _ := client.Dial(ftSvc)
	e3 := collect(c3)
	app.Source(c3, []byte("still here"), false)
	net.RunFor(10 * time.Second)
	if string(*e3) != "still here" {
		t.Fatalf("FT service broken after scaling service left: %q", *e3)
	}
}

// TestLinkAddrExplicitAddressing: explicit addresses survive AutoRoute and
// carry traffic between real hosts.
func TestLinkAddrExplicitAddressing(t *testing.T) {
	net := New(Config{Seed: 123})
	a := net.AddHost("a", HostConfig{})
	r := net.AddRouter("r", HostConfig{})
	b := net.AddHost("b", HostConfig{})
	net.LinkAddr(a, r, LinkConfig{}, MustAddr("172.16.1.10"), MustAddr("172.16.1.1"))
	net.LinkAddr(b, r, LinkConfig{}, MustAddr("172.16.2.10"), MustAddr("172.16.2.1"))
	net.AutoRoute()
	if a.Addr() != MustAddr("172.16.1.10") || b.Addr() != MustAddr("172.16.2.10") {
		t.Fatalf("addrs: %s / %s", a.Addr(), b.Addr())
	}
	l, _ := b.Listen(0, 7)
	l.SetAcceptFunc(func(c *Conn) { app.Echo(c) })
	conn, err := a.DialEndpoint(Endpoint{Addr: b.Addr(), Port: 7})
	if err != nil {
		t.Fatal(err)
	}
	echoed := collect(conn)
	app.Source(conn, []byte("explicit"), false)
	net.RunFor(5 * time.Second)
	if string(*echoed) != "explicit" {
		t.Fatalf("echo = %q", *echoed)
	}
}
