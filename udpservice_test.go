package hydranet

import (
	"testing"
	"time"
)

// TestScaledUDPService: the redirector table matches UDP ports too (paper
// Section 3: "pairs of IP addresses and port numbers"). A DNS-style
// request/response service is replicated; the nearest replica answers under
// the virtual address.
func TestScaledUDPService(t *testing.T) {
	net := New(Config{Seed: 51})
	client := net.AddHost("client", HostConfig{})
	rd := net.AddRedirector("rd", HostConfig{})
	near := net.AddHost("near", HostConfig{})
	far := net.AddHost("far", HostConfig{})
	link := LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	for _, h := range []*Host{client, near, far} {
		net.Link(h, rd.Host, link)
	}
	net.AutoRoute()

	svc := ServiceID{Addr: MustAddr("192.20.225.53"), Port: 53}
	err := net.DeployScaleUDP(svc, rd, []ScaleTarget{
		{Host: near, Metric: 1},
		{Host: far, Metric: 9},
	}, func(h *Host) UDPRecvFunc {
		return func(from UDPEndpoint, local Addr, payload []byte) {
			resp := append([]byte(h.Name()+" answers: "), payload...)
			// Reply from the virtual address: the client must see the
			// service, not the physical replica.
			_ = h.UDP().SendTo(local, svc.Port, from, resp)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	var reply []byte
	var replyFrom UDPEndpoint
	if err := client.UDP().Bind(0, 4053, func(from UDPEndpoint, _ Addr, p []byte) {
		reply = append([]byte(nil), p...)
		replyFrom = from
	}); err != nil {
		t.Fatal(err)
	}
	if err := client.UDP().SendTo(0, 4053,
		UDPEndpoint{Addr: svc.Addr, Port: svc.Port}, []byte("A? example.com")); err != nil {
		t.Fatal(err)
	}
	net.RunFor(2 * time.Second)

	if string(reply) != "near answers: A? example.com" {
		t.Fatalf("reply = %q", reply)
	}
	if replyFrom.Addr != svc.Addr {
		t.Fatalf("reply from %s, want the virtual service address %s", replyFrom.Addr, svc.Addr)
	}
}

// TestScaleTargetLeave: a scaling replica that leaves is removed from the
// table, and traffic shifts to the remaining replica.
func TestScaleTargetLeave(t *testing.T) {
	net := New(Config{Seed: 52})
	client := net.AddHost("client", HostConfig{})
	rd := net.AddRedirector("rd", HostConfig{})
	a := net.AddHost("a", HostConfig{})
	b := net.AddHost("b", HostConfig{})
	link := LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	for _, h := range []*Host{client, a, b} {
		net.Link(h, rd.Host, link)
	}
	net.AutoRoute()

	svc := ServiceID{Addr: MustAddr("192.20.225.53"), Port: 53}
	err := net.DeployScaleUDP(svc, rd, []ScaleTarget{
		{Host: a, Metric: 1},
		{Host: b, Metric: 5},
	}, func(h *Host) UDPRecvFunc {
		return func(from UDPEndpoint, local Addr, payload []byte) {
			_ = h.UDP().SendTo(local, svc.Port, from, []byte(h.Name()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	var replies []string
	_ = client.UDP().Bind(0, 4053, func(_ UDPEndpoint, _ Addr, p []byte) {
		replies = append(replies, string(p))
	})
	ask := func() {
		_ = client.UDP().SendTo(0, 4053, UDPEndpoint{Addr: svc.Addr, Port: svc.Port}, []byte("q"))
		net.RunFor(time.Second)
	}
	ask()
	// The nearest replica leaves; the farther one takes over.
	a.Daemon(rd).Leave(svc)
	net.Settle()
	ask()
	if len(replies) != 2 || replies[0] != "a" || replies[1] != "b" {
		t.Fatalf("replies = %v, want [a b]", replies)
	}
}
