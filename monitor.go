package hydranet

import (
	"hydranet/internal/invariant"
	"hydranet/internal/netsim"
)

// Monitor is the online protocol-invariant checker (internal/invariant)
// re-exported at the facade: a bus subscriber that continuously audits the
// paper's safety properties — exactly-once delivery, cursor monotonicity,
// the ft-TCP gate, chain-ack sanity, single-primary membership, frame
// conservation — and records forensic bundles on violation.
type Monitor = invariant.Monitor

// Violation is one forensic record emitted by the monitor.
type Violation = invariant.Violation

// AuditReport is a run's deterministic audit verdict.
type AuditReport = invariant.Report

// MonitorConfig parameterizes StartMonitor.
type MonitorConfig struct {
	// Scenario labels the audit report. Keep it free of worker counts so
	// reports from the same seed diff byte-identical across -workers.
	Scenario string
	// MaxViolations bounds recorded forensic records (0 = package default).
	MaxViolations int
}

// StartMonitor attaches an invariant monitor to the network's event bus
// and frame tap, and teaches it every host's address so membership events
// (which carry addresses) join with stack events (which carry node names).
//
// Attach after the topology is final and after SetWorkers, but before
// deploying services: the monitor reconstructs replica-set membership from
// the registration events, so it must see them. Under the parallel core
// the monitor consumes the barrier-ordered replayed stream, so its
// verdicts are identical for every worker count. Detached (never called),
// the monitor costs nothing: emit sites stay behind Bus.Enabled.
func (n *Net) StartMonitor(cfg MonitorConfig) *Monitor {
	m := invariant.New(invariant.Config{
		Scenario:      cfg.Scenario,
		Outstanding:   n.fab.PoolOutstanding,
		MaxViolations: cfg.MaxViolations,
	})
	for _, h := range n.hosts {
		m.MapAddr(h.addr.String(), h.name)
	}
	m.Attach(n.bus)
	n.addFrameTap(func(from, to *netsim.Node, data []byte) {
		m.NoteFrame(len(data))
	})
	return m
}

// FinishAudit runs the monitor's end-of-run conservation check and returns
// the audit report. Call after the run's final RunFor/Settle: the frame-
// conservation rule is only decided when the simulation is quiescent
// (frames still in flight are not leaks).
func (n *Net) FinishAudit(m *Monitor) AuditReport {
	return m.Finish(n.eventsPending() == 0)
}
