// Package hydranet is the public API of HydraNet-FT, a reproduction of
// "HydraNet-FT: Network Support for Dependable Services" (Shenoy, Satapati,
// Bettati — ICDCS 2000) on a deterministic discrete-event network
// simulator.
//
// A Net holds a virtual internetwork of hosts, redirectors and links. TCP
// services can be deployed plainly, replicated for scaling (nearest-replica
// redirection), or replicated for fault tolerance: the redirector
// multicasts client packets to a primary and hot-standby backups whose
// modified TCP stacks synchronize over an acknowledgment channel, so the
// client sees a single ordinary TCP endpoint that survives server crashes.
//
// Basic use:
//
//	net := hydranet.New(hydranet.Config{Seed: 1})
//	client := net.AddHost("client", hydranet.HostConfig{})
//	rd := net.AddRedirector("rd", hydranet.HostConfig{})
//	s0 := net.AddHost("s0", hydranet.HostConfig{})
//	s1 := net.AddHost("s1", hydranet.HostConfig{})
//	for _, h := range []*hydranet.Host{client, s0, s1} {
//		net.Link(h, rd.Host, hydranet.LinkConfig{Rate: 10e6})
//	}
//	net.AutoRoute()
//	svc := hydranet.ServiceID{Addr: hydranet.MustAddr("192.20.225.20"), Port: 80}
//	net.DeployFT(svc, rd, []*hydranet.Host{s0, s1}, hydranet.FTOptions{}, echoAccept)
//	conn, _ := client.Dial(svc)
//	...
//	net.RunFor(10 * time.Second)
package hydranet

import (
	"fmt"
	"time"

	"hydranet/internal/core"
	"hydranet/internal/hostserver"
	"hydranet/internal/icmp"
	"hydranet/internal/ipv4"
	"hydranet/internal/netsim"
	"hydranet/internal/obs"
	"hydranet/internal/redirector"
	"hydranet/internal/rmp"
	"hydranet/internal/sim"
	"hydranet/internal/tcp"
	"hydranet/internal/udp"
)

// Re-exported types: the facade deliberately exposes the protocol-level
// types users interact with, so application code never imports internal
// packages directly.
type (
	// Addr is an IPv4 address.
	Addr = ipv4.Addr
	// ServiceID names a replicated service access point (address + port).
	ServiceID = core.ServiceID
	// Conn is a TCP connection endpoint (event-driven: see OnReadable,
	// OnWritable, OnClosed).
	Conn = tcp.Conn
	// Endpoint is a TCP address:port pair.
	Endpoint = tcp.Endpoint
	// Listener accepts inbound TCP connections.
	Listener = tcp.Listener
	// LinkConfig describes link rate, delay, MTU, queue and loss.
	LinkConfig = netsim.LinkConfig
	// TCPConfig tunes a host's TCP stack.
	TCPConfig = tcp.Config
	// DetectorParams tune the per-port failure estimator.
	DetectorParams = core.DetectorParams
	// Mode is a replica role (primary or backup).
	Mode = core.Mode
)

// Replica roles.
const (
	ModePrimary = core.ModePrimary
	ModeBackup  = core.ModeBackup
)

// MustAddr parses a dotted-quad address, panicking on error (for literals).
func MustAddr(s string) Addr { return ipv4.MustParseAddr(s) }

// Config configures a Net.
type Config struct {
	// Seed drives all randomness (loss decisions). Runs with equal seeds
	// and topologies produce identical packet traces.
	Seed int64
	// TCP is the default TCP configuration applied to every host; per-host
	// overrides go in HostConfig.
	TCP TCPConfig
}

// HostConfig configures one host.
type HostConfig struct {
	// ProcDelay is the per-packet CPU cost of the node, modelling host
	// speed (the paper's 486s vs Pentiums).
	ProcDelay time.Duration
	// ProcPerByte is additional CPU cost per packet byte (copies and
	// checksums on slow machines).
	ProcPerByte time.Duration
	// TCP overrides the net-wide TCP configuration if non-zero-valued.
	TCP *TCPConfig
}

// Net is a simulated internetwork.
type Net struct {
	cfg   Config
	sched *sim.Scheduler
	fab   *netsim.Network
	bus   *obs.Bus

	hosts       []*Host
	redirectors []*Redirector
	links       []linkInfo
	nextSubnet  byte

	// Capture taps registered via StartCapture/StartFlightRecorder; see
	// capture.go. Kept here so multiple consumers can share the fabric's
	// single tap slot.
	frameTaps []netsim.FrameTap
	encapTaps []redirector.EncapTap

	// par is non-nil once SetWorkers/Partition has split the fabric into
	// synchronization domains; see parallel.go.
	par *parallelRT

	// profiler is non-nil while a hydraprof session is attached; see
	// profile.go.
	profiler *Profiler
}

type linkInfo struct {
	a, b       *Host
	aIf, bIf   int
	aAddr      Addr
	bAddr      Addr
	prefix     ipv4.Prefix
	underlying *netsim.Link
}

// New creates an empty network.
func New(cfg Config) *Net {
	s := sim.NewScheduler(cfg.Seed)
	n := &Net{cfg: cfg, sched: s, fab: netsim.New(s), bus: obs.NewBus(s.Now)}
	n.fab.SetBus(n.bus)
	return n
}

// Bus returns the network-wide observability event bus. Every layer emits
// on it; with no subscribers emission is disabled and costs nothing.
func (n *Net) Bus() *obs.Bus { return n.bus }

// PoisonFrames enables (or disables) frame-pool poisoning: every frame
// buffer returned to the fabric's pool is overwritten with a sentinel
// pattern before reuse, so a component that illegally retains a reference
// past its delivery callback observes corruption instead of silently
// reading recycled data. A testing aid — it costs one memset per released
// frame and must not change any observable result.
func (n *Net) PoisonFrames(on bool) { n.fab.Pool().SetPoison(on) }

// Now returns the current virtual time.
func (n *Net) Now() time.Duration {
	if n.par != nil {
		return n.par.now()
	}
	return n.sched.Now()
}

// Run executes events until the network goes idle.
func (n *Net) Run() {
	if n.par != nil {
		n.par.run()
		return
	}
	n.sched.Run()
}

// RunFor advances virtual time by d.
func (n *Net) RunFor(d time.Duration) {
	if n.par != nil {
		n.par.runUntil(n.par.group.Now() + d)
		return
	}
	n.sched.RunUntil(n.sched.Now() + d)
}

// RunUntil advances virtual time to the absolute instant t.
func (n *Net) RunUntil(t time.Duration) {
	if n.par != nil {
		n.par.runUntil(t)
		return
	}
	n.sched.RunUntil(t)
}

// Scheduler exposes the base event scheduler. In a partitioned run this is
// domain 0's scheduler; scripted cross-host events (failure injection)
// should use Net.At, and per-host traffic pacing should use
// Host.Scheduler, both of which stay correct under any worker count.
func (n *Net) Scheduler() *sim.Scheduler { return n.sched }

// At schedules fn at absolute virtual time t. In a partitioned run fn
// becomes a global event: it runs at a window barrier with all workers
// parked, positioned in the event order exactly where the serial scheduler
// would have run it, so it may safely touch any host.
func (n *Net) At(t time.Duration, fn func()) {
	if n.par != nil {
		n.par.at(t, fn)
		return
	}
	n.sched.At(t, fn)
}

// Host is a simulated machine: IP, UDP and TCP stacks, HydraNet host-server
// support, the ft-TCP engine, and a management daemon.
type Host struct {
	net  *Net
	name string
	node *netsim.Node

	ip   *ipv4.Stack
	udp  *udp.Stack
	tcp  *tcp.Stack
	icmp *icmp.Stack
	hs   *hostserver.HostServer
	mgr  *core.Manager
	dmn  *rmp.HostDaemon
	addr Addr // primary address (first link)
}

// AddHost creates a host.
func (n *Net) AddHost(name string, cfg HostConfig) *Host {
	if n.par != nil {
		panic("hydranet: AddHost after SetWorkers — the topology must be final before partitioning")
	}
	node := n.fab.AddNode(netsim.NodeConfig{Name: name, ProcDelay: cfg.ProcDelay, ProcPerByte: cfg.ProcPerByte})
	h := &Host{net: n, name: name, node: node}
	h.ip = ipv4.NewStack(node, n.sched)
	h.udp = udp.NewStack(h.ip)
	tcpCfg := n.cfg.TCP
	if cfg.TCP != nil {
		tcpCfg = *cfg.TCP
	}
	h.tcp = tcp.NewStack(h.ip, tcpCfg)
	h.tcp.SetBus(n.bus)
	h.icmp = icmp.NewStack(h.ip)
	h.hs = hostserver.New(h.ip)
	n.hosts = append(n.hosts, h)
	return h
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Addr returns the host's primary address (assigned by its first link).
func (h *Host) Addr() Addr { return h.addr }

// TCP returns the host's TCP stack (advanced use: traces, raw connects).
func (h *Host) TCP() *tcp.Stack { return h.tcp }

// UDP returns the host's UDP stack.
func (h *Host) UDP() *udp.Stack { return h.udp }

// IP returns the host's IPv4 stack.
func (h *Host) IP() *ipv4.Stack { return h.ip }

// HostServer returns the HydraNet host-server facet.
func (h *Host) HostServer() *hostserver.HostServer { return h.hs }

// ICMP returns the host's ICMP layer (ping, error observation).
func (h *Host) ICMP() *icmp.Stack { return h.icmp }

// Ping sends one ICMP echo to dst; done receives the outcome. Run the
// network to let it complete.
func (h *Host) Ping(dst Addr, timeout time.Duration, done func(icmp.EchoResult)) {
	h.icmp.Ping(dst, 0, timeout, done)
}

// Traceroute probes the path to dst with rising TTLs, reporting each hop
// address (zero for a silent hop) until dst answers or maxHops is reached.
// done receives the hop list when the probe completes.
func (h *Host) Traceroute(dst Addr, maxHops int, done func(hops []Addr)) {
	var hops []Addr
	var probe func(ttl int)
	probe = func(ttl int) {
		if ttl > maxHops {
			done(hops)
			return
		}
		h.icmp.Ping(dst, uint8(ttl), 2*time.Second, func(r icmp.EchoResult) {
			switch {
			case r.TimeExceeded:
				hops = append(hops, r.From)
				probe(ttl + 1)
			case r.TimedOut:
				hops = append(hops, 0)
				probe(ttl + 1)
			default:
				hops = append(hops, r.From)
				done(hops)
			}
		})
	}
	probe(1)
}

// FTManager returns the host's ft-TCP engine, initializing it on first use.
func (h *Host) FTManager() *core.Manager {
	if h.mgr == nil {
		mgr, err := core.NewManager(h.tcp, h.udp, h.addr)
		if err != nil {
			panic(fmt.Sprintf("hydranet: %s: %v", h.name, err))
		}
		mgr.SetBus(h.emitBus())
		h.mgr = mgr
	}
	return h.mgr
}

// Crash fail-stops the host. Volatile protocol state — TCP connections and
// replicated-port state — is lost, as on a real machine; listeners and
// daemons come back with the "reboot" (Restart).
func (h *Host) Crash() {
	h.node.Crash()
	h.tcp.Reset()
	if h.mgr != nil {
		h.mgr.Reset()
	}
}

// Restart brings a crashed host back up. Its connections are gone; use
// FTService.Recommission to rejoin a replica set.
func (h *Host) Restart() { h.node.Restart() }

// Alive reports whether the host is up.
func (h *Host) Alive() bool { return h.node.Alive() }

// Dial opens a TCP connection from this host to a service.
func (h *Host) Dial(svc ServiceID) (*Conn, error) {
	return h.tcp.Connect(0, Endpoint{Addr: svc.Addr, Port: svc.Port})
}

// DialEndpoint opens a TCP connection to an arbitrary endpoint.
func (h *Host) DialEndpoint(ep Endpoint) (*Conn, error) {
	return h.tcp.Connect(0, ep)
}

// Listen binds a plain TCP listener on this host.
func (h *Host) Listen(addr Addr, port uint16) (*Listener, error) {
	return h.tcp.Listen(addr, port)
}

// Redirector is a router equipped with a redirector table and a management
// daemon.
type Redirector struct {
	// Host is the underlying router node (for linking and addressing).
	Host *Host
	rd   *redirector.Redirector
	dmn  *rmp.RedirectorDaemon
}

// AddRedirector creates a redirector node.
func (n *Net) AddRedirector(name string, cfg HostConfig) *Redirector {
	h := n.AddHost(name, cfg)
	h.ip.SetForwarding(true)
	r := &Redirector{Host: h, rd: redirector.New(h.ip)}
	r.rd.SetBus(n.bus)
	n.redirectors = append(n.redirectors, r)
	return r
}

// Table exposes the redirector table (inspection, manual setup).
func (r *Redirector) Table() *redirector.Redirector { return r.rd }

// Daemon returns the management daemon, initializing it on first use (the
// redirector must have an address, i.e. at least one link).
func (r *Redirector) Daemon() *rmp.RedirectorDaemon {
	if r.dmn == nil {
		d, err := rmp.NewRedirectorDaemon(r.Host.udp, r.Host.node.Scheduler(), r.rd, r.Host.addr)
		if err != nil {
			panic(fmt.Sprintf("hydranet: %s: %v", r.Host.name, err))
		}
		d.SetBus(r.Host.emitBus(), r.Host.name)
		r.dmn = d
	}
	return r.dmn
}

// Mirror makes peer replicate this redirector's fault-tolerant table
// entries, so clients routed through either redirector reach the same
// replica sets (paper Figure 1). Call after both redirectors have
// addresses (links) and before deploying services.
func (r *Redirector) Mirror(peer *Redirector) {
	peer.Daemon() // ensure the peer is listening
	r.Daemon().AddPeer(peer.Host.addr)
}

// AddRouter creates a plain forwarding router with no redirector table.
func (n *Net) AddRouter(name string, cfg HostConfig) *Host {
	h := n.AddHost(name, cfg)
	h.ip.SetForwarding(true)
	return h
}

// Link connects two hosts with auto-assigned addresses 10.k.0.1/10.k.0.2 on
// a fresh /24. Use LinkAddr for explicit addressing.
func (n *Net) Link(a, b *Host, cfg LinkConfig) *netsim.Link {
	n.nextSubnet++
	k := n.nextSubnet
	return n.LinkAddr(a, b, cfg,
		ipv4.AddrFrom4(10, k, 0, 1), ipv4.AddrFrom4(10, k, 0, 2))
}

// LinkAddr connects two hosts with explicit addresses. Both must share one
// /24, distinct from every other link's.
func (n *Net) LinkAddr(a, b *Host, cfg LinkConfig, aAddr, bAddr Addr) *netsim.Link {
	if n.par != nil {
		panic("hydranet: Link after SetWorkers — the topology must be final before partitioning")
	}
	l := n.fab.Connect(a.node, b.node, cfg)
	aIf := a.node.NumInterfaces() - 1
	bIf := b.node.NumInterfaces() - 1
	a.ip.SetAddr(aIf, aAddr)
	b.ip.SetAddr(bIf, bAddr)
	if a.addr == 0 {
		a.addr = aAddr
	}
	if b.addr == 0 {
		b.addr = bAddr
	}
	n.links = append(n.links, linkInfo{
		a: a, b: b, aIf: aIf, bIf: bIf, aAddr: aAddr, bAddr: bAddr,
		prefix:     ipv4.Prefix{Addr: aAddr, Bits: 24},
		underlying: l,
	})
	return l
}

// AutoRoute computes shortest-path routes between all link subnets and
// installs them on every node. Call it after the topology is final.
func (n *Net) AutoRoute() {
	// Adjacency: host -> (neighbor, local ifindex).
	type edge struct {
		peer *Host
		ifx  int
	}
	adj := make(map[*Host][]edge)
	for _, li := range n.links {
		adj[li.a] = append(adj[li.a], edge{peer: li.b, ifx: li.aIf})
		adj[li.b] = append(adj[li.b], edge{peer: li.a, ifx: li.bIf})
	}
	for _, h := range n.hosts {
		// BFS from h, remembering the first-hop interface.
		firstHop := make(map[*Host]int)
		visited := map[*Host]bool{h: true}
		queue := []*Host{h}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range adj[cur] {
				if visited[e.peer] {
					continue
				}
				visited[e.peer] = true
				if cur == h {
					firstHop[e.peer] = e.ifx
				} else {
					firstHop[e.peer] = firstHop[cur]
				}
				queue = append(queue, e.peer)
			}
		}
		for _, li := range n.links {
			switch {
			case li.a == h:
				h.ip.Routes().Add(ipv4.Route{Dst: li.prefix, Ifindex: li.aIf})
			case li.b == h:
				h.ip.Routes().Add(ipv4.Route{Dst: li.prefix, Ifindex: li.bIf})
			default:
				// Prefix route toward whichever endpoint is reachable, plus
				// host routes so each interface address is reached via its
				// owner (a /24 is shared by both ends of the link, and the
				// shortest path to each end can differ).
				if ifx, ok := firstHop[li.a]; ok {
					h.ip.Routes().Add(ipv4.Route{Dst: li.prefix, Ifindex: ifx})
					h.ip.Routes().Add(ipv4.Route{
						Dst: ipv4.Prefix{Addr: li.aAddr, Bits: 32}, Ifindex: ifx})
				}
				if ifx, ok := firstHop[li.b]; ok {
					if _, aOK := firstHop[li.a]; !aOK {
						h.ip.Routes().Add(ipv4.Route{Dst: li.prefix, Ifindex: ifx})
					}
					h.ip.Routes().Add(ipv4.Route{
						Dst: ipv4.Prefix{Addr: li.bAddr, Bits: 32}, Ifindex: ifx})
				}
			}
		}
		// Default route toward the nearest redirector: in HydraNet,
		// traffic for replicated services — addresses that may belong to
		// no physical host — flows through redirectors ("the ISP routes
		// its traffic through a redirector", paper Section 1).
		if !n.isRedirector(h) {
			for _, r := range n.redirectors {
				if ifx, ok := firstHop[r.Host]; ok {
					h.ip.Routes().AddDefault(ifx)
					break
				}
			}
		}
	}
}

func (n *Net) isRedirector(h *Host) bool {
	for _, r := range n.redirectors {
		if r.Host == h {
			return true
		}
	}
	return false
}
