package hydranet

import (
	"hydranet/internal/metrics"
	"hydranet/internal/obs"
)

// Observability re-exports: the event bus and snapshot types live in
// internal/obs; user code subscribes and aggregates through these aliases.
type (
	// Event is one structured observability event on the bus.
	Event = obs.Event
	// EventKind classifies events (see the Kind* constants).
	EventKind = obs.Kind
	// Snapshot is a net-wide aggregation of every component counter.
	Snapshot = obs.Snapshot
	// FailoverProbe reconstructs the paper's Table-2 fail-over decomposition
	// from bus events.
	FailoverProbe = obs.FailoverProbe
	// FailoverReport is the probe's result.
	FailoverReport = obs.FailoverReport
)

// Event kinds, re-exported for subscriber filters.
const (
	KindPacketLoss     = obs.KindPacketLoss
	KindQueueDrop      = obs.KindQueueDrop
	KindMTUDrop        = obs.KindMTUDrop
	KindNodeCrash      = obs.KindNodeCrash
	KindNodeRestart    = obs.KindNodeRestart
	KindRetransmit     = obs.KindRetransmit
	KindRTO            = obs.KindRTO
	KindFastRetransmit = obs.KindFastRetransmit
	KindDeposit        = obs.KindDeposit
	KindAckProgress    = obs.KindAckProgress
	KindMulticast      = obs.KindMulticast
	KindRedirect       = obs.KindRedirect
	KindTunnelError    = obs.KindTunnelError
	KindChainSend      = obs.KindChainSend
	KindChainRecv      = obs.KindChainRecv
	KindSuspicion      = obs.KindSuspicion
	KindPromotion      = obs.KindPromotion
	KindDemotion       = obs.KindDemotion
	KindRegistration   = obs.KindRegistration
	KindReconfig       = obs.KindReconfig
	KindRecommission   = obs.KindRecommission
	KindClientDeliver  = obs.KindClientDeliver
)

// NewFailoverProbe subscribes a fail-over probe to the net's bus.
func (n *Net) NewFailoverProbe() *FailoverProbe {
	return obs.NewFailoverProbe(n.bus)
}

// Snapshot aggregates every host, link, redirector and manager counter into
// one JSON-serializable structure at the current virtual instant. Take one
// snapshot per measurement point; Snapshot.Diff turns two into interval
// rates.
func (n *Net) Snapshot() Snapshot {
	snap := Snapshot{Time: n.Now()}
	// Every node appears under Hosts — redirector nodes too, since their
	// frame and IP (forwarding) counters live there; the Redirectors section
	// adds the table and management counters on top.
	for _, h := range n.hosts {
		snap.Hosts = append(snap.Hosts, n.hostSnapshot(h))
	}
	for _, li := range n.links {
		tx, lost, qd := li.underlying.Stats()
		snap.Links = append(snap.Links, obs.LinkSnapshot{
			A:  li.a.name,
			B:  li.b.name,
			AB: obs.LinkDirCounters{TxFrames: tx[0], Lost: lost[0], QueueDrop: qd[0]},
			BA: obs.LinkDirCounters{TxFrames: tx[1], Lost: lost[1], QueueDrop: qd[1]},
		})
	}
	for _, r := range n.redirectors {
		rs := obs.RedirectorSnapshot{
			Name:  r.Host.name,
			Table: obs.RedirectorCounters(r.rd.Stats()),
		}
		if r.dmn != nil {
			mg := obs.MgmtCounters(r.dmn.Stats())
			rs.Mgmt = &mg
		}
		snap.Redirectors = append(snap.Redirectors, rs)
	}
	return snap
}

func (n *Net) hostSnapshot(h *Host) obs.HostSnapshot {
	sent, recv, drop := h.node.Stats()
	tcps := h.tcp.Stats()
	hs := obs.HostSnapshot{
		Name:        h.name,
		Alive:       h.node.Alive(),
		ProcBacklog: h.node.ProcBacklog(),
		Frames:      obs.FrameCounters{Sent: sent, Received: recv, Dropped: drop},
		IP:          obs.IPCounters(h.ip.Stats()),
		TCP: obs.TCPCounters{
			SegsIn:      tcps.SegsIn,
			SegsOut:     tcps.SegsOut,
			BadSegments: tcps.BadSegments,
			RSTsSent:    tcps.RSTsSent,
			NoSocket:    tcps.NoSocket,
			Conns:       h.tcp.NumConns(),
		},
		Conns: obs.ConnCounters(h.tcp.ConnTotals()),
	}
	if rtt := h.tcp.RTTHistogram(); rtt.Count() > 0 {
		rs := rtt.Snapshot()
		hs.RTT = &rs
	}
	if h.mgr != nil {
		mc := obs.ManagerCounters(h.mgr.Stats())
		hs.Manager = &mc
	}
	return hs
}

// RTTHistogramSnapshot returns the host's RTT-sample histogram
// (milliseconds), fed by every Karn-valid RTT measurement its TCP stack
// takes.
func (h *Host) RTTHistogramSnapshot() metrics.HistogramSnapshot {
	return h.tcp.RTTHistogram().Snapshot()
}
