package hydranet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hydranet/internal/app"
)

// TestCaptureEndToEnd captures a full FT transfer and round-trips the pcap
// through the in-repo reader: the redirector's IP-in-IP copies (protocol 4)
// and the inner TCP segments must both be visible on the wire, and the span
// collector's timeline must show the inbound-atomicity ordering — the chain
// tail deposits first, the head only after its acknowledgment arrives.
func TestCaptureEndToEnd(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 5, 2)
	if _, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	capt, err := net.StartCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spans := net.NewSpanCollector()
	net.Settle()

	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	conn, err := client.Dial(testSvc)
	if err != nil {
		t.Fatal(err)
	}
	echoed := collect(conn)
	app.Source(conn, payload, false)
	for len(*echoed) < len(payload) && net.Now() < 2*time.Minute {
		net.RunFor(time.Second)
	}
	if !bytes.Equal(*echoed, payload) {
		t.Fatalf("echo incomplete: %d of %d bytes", len(*echoed), len(payload))
	}
	if capt.Err() != nil {
		t.Fatalf("capture error: %v", capt.Err())
	}
	if capt.InnerPackets() == 0 {
		t.Fatal("no pre-encap inner packets recorded")
	}

	f, err := ReadPcap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(f.Records)) != capt.Packets() {
		t.Fatalf("reader found %d records, writer counted %d", len(f.Records), capt.Packets())
	}
	var outerIPIP, innerTCP, plainTCP int
	last := time.Duration(-1)
	for i, r := range f.Records {
		if r.Ts < last {
			t.Fatalf("record %d timestamp %v before predecessor %v", i, r.Ts, last)
		}
		last = r.Ts
		if len(r.Data) < 20 || r.Data[0]>>4 != 4 {
			t.Fatalf("record %d is not IPv4: % x", i, r.Data[:min(len(r.Data), 4)])
		}
		fragOffset := (int(r.Data[6])<<8 | int(r.Data[7])) & 0x1fff
		switch r.Data[9] { // protocol
		case 4: // IP-in-IP: the redirector's tunnel copy
			outerIPIP++
			if fragOffset != 0 {
				// A non-first fragment of an oversized tunnel packet: its
				// payload continues the inner packet, no header to parse.
				continue
			}
			inner := r.Data[20:]
			if len(inner) < 20 || inner[0]>>4 != 4 {
				t.Fatalf("record %d inner packet is not IPv4", i)
			}
			if inner[9] == 6 {
				innerTCP++
			}
		case 6:
			plainTCP++
		}
	}
	if outerIPIP == 0 || innerTCP == 0 || plainTCP == 0 {
		t.Fatalf("capture shape: %d IPIP outers (%d wrapping TCP), %d plain TCP — want all three nonzero",
			outerIPIP, innerTCP, plainTCP)
	}

	// Span timeline: the FT chain is [s0 s1], so s1 is the tail. For every
	// span both replicas deposited, inbound atomicity demands
	// tail deposit ≤ head chain-arrival ≤ head deposit ≤ client ACK.
	tls := spans.Timelines()
	if len(tls) == 0 {
		t.Fatal("no span timelines collected")
	}
	checked := 0
	for _, tl := range tls {
		for _, s := range tl.Spans {
			tail, head := s.Hops["s1"], s.Hops["s0"]
			if tail == nil || head == nil || tail.DepositAt == 0 || head.DepositAt == 0 {
				continue
			}
			if s.MulticastAt == 0 || s.MulticastAt > tail.DepositAt {
				t.Fatalf("span %d: multicast %v after tail deposit %v", s.Seq, s.MulticastAt, tail.DepositAt)
			}
			if tail.DepositAt > head.DepositAt {
				t.Fatalf("span %d: head deposited at %v before tail at %v — inbound atomicity violated",
					s.Seq, head.DepositAt, tail.DepositAt)
			}
			if head.ChainArrivalAt == 0 || head.ChainArrivalAt > head.DepositAt {
				t.Fatalf("span %d: head deposit %v not gated on chain arrival %v",
					s.Seq, head.DepositAt, head.ChainArrivalAt)
			}
			if s.ClientAckAt != 0 && s.ClientAckAt < head.DepositAt {
				t.Fatalf("span %d: client ACK %v before head deposit %v", s.Seq, s.ClientAckAt, head.DepositAt)
			}
			checked++
		}
	}
	if checked < 5 {
		t.Fatalf("only %d fully-observed spans — not enough to trust the ordering check", checked)
	}
	if lag := spans.AckChainLag(); lag.Count == 0 {
		t.Error("ack-chain lag histogram empty despite full spans")
	}
	if stall := spans.DepositStall(); stall.Count == 0 {
		t.Error("deposit-stall histogram empty despite full spans")
	}
}

// TestFlightRecorderDumpsOnFailover: the recorder must dump its rings the
// instant the failover probe sees the promotion, and the dump must parse.
func TestFlightRecorderDumpsOnFailover(t *testing.T) {
	// Three replicas keep the chain slow enough that the 400 ms crash point
	// lands mid-transfer (same shape as TestSnapshotAndFailoverTimeline).
	net, client, rd, replicas := ftTopology(t, 7, 3)
	svc, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 3}}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	probe := net.NewFailoverProbe()
	flight := net.StartFlightRecorder(64, 64)
	prefix := filepath.Join(t.TempDir(), "fo")
	flight.DumpOnFailover(probe, prefix)
	net.Settle()

	payload := make([]byte, 256*1024)
	received := streamClient(t, net, client, payload)
	net.RunFor(400 * time.Millisecond)
	svc.CrashPrimary()
	for *received < len(payload) && net.Now() < 2*time.Minute {
		net.RunFor(time.Second)
	}
	if *received != len(payload) {
		t.Fatalf("client received %d of %d bytes", *received, len(payload))
	}
	if flight.Dumps() != 1 {
		t.Fatalf("flight recorder dumped %d times, want exactly 1 (at promotion)", flight.Dumps())
	}

	pf, err := ReadPcapFile(prefix + ".pcap")
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Records) == 0 {
		t.Fatal("flight pcap holds no frames")
	}
	report := probe.Report()
	// The rings were frozen at the promotion: nothing in the dump postdates it.
	for i, r := range pf.Records {
		if r.Ts > report.PromotionAt {
			t.Fatalf("frame %d at %v postdates the promotion at %v", i, r.Ts, report.PromotionAt)
		}
	}
	raw, err := os.ReadFile(prefix + ".json")
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Hosts []struct {
			Host string `json:"host"`
		} `json:"hosts"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, h := range dump.Hosts {
		names[h.Host] = true
	}
	for _, want := range []string{"client", "rd", "s0"} {
		if !names[want] {
			t.Errorf("flight JSON missing host %q (got %v)", want, names)
		}
	}
}

// TestFailoverProbeBackupCrash: killing a *backup* mid-transfer must be
// detected (suspicion, reconfiguration) but never promote anyone — the
// primary is fine — and the probe's report stays incomplete while the
// transfer itself finishes transparently.
func TestFailoverProbeBackupCrash(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 9, 3)
	if _, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 3}}, echoAccept()); err != nil {
		t.Fatal(err)
	}
	probe := net.NewFailoverProbe()
	fired := 0
	probe.OnFailover(func(FailoverReport) { fired++ })
	net.Settle()

	payload := make([]byte, 256*1024)
	received := streamClient(t, net, client, payload)
	net.RunFor(400 * time.Millisecond)
	replicas[2].Crash() // the chain tail, not the primary
	for *received < len(payload) && net.Now() < 2*time.Minute {
		net.RunFor(time.Second)
	}
	if *received != len(payload) {
		t.Fatalf("client received %d of %d bytes — backup crash broke transparency", *received, len(payload))
	}

	report := probe.Report()
	if report.CrashAt == 0 {
		t.Fatal("probe missed the crash")
	}
	if report.SuspicionAt == 0 || report.ReconfigAt == 0 {
		t.Fatalf("backup failure never detected: %+v", report)
	}
	if report.PromotionAt != 0 || fired != 0 {
		t.Fatalf("backup crash caused a promotion (at %v, fired %d) — only primary loss promotes",
			report.PromotionAt, fired)
	}
	if report.Complete {
		t.Fatalf("report complete without a promotion: %+v", report)
	}

	snap := net.Snapshot()
	for _, h := range snap.Hosts {
		if h.Manager != nil && h.Manager.Promotions != 0 {
			t.Errorf("host %s recorded %d promotions", h.Name, h.Manager.Promotions)
		}
	}
	if snap.Redirectors[0].Mgmt == nil || snap.Redirectors[0].Mgmt.HostsFailed != 1 {
		t.Errorf("redirector mgmt = %+v, want exactly 1 host failed", snap.Redirectors[0].Mgmt)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
