package hydranet

import (
	"bytes"
	"testing"
	"time"

	"hydranet/internal/icmp"
	"hydranet/internal/scope"
)

// TestGrayFailureDegradedBeforeDetector is the PR's headline scenario: a
// backup that is slow — not crashed — stalls the acknowledgment chain, and
// the health scorer must flag it Degraded strictly before the paper's
// retransmission-threshold detector raises its first suspicion. The
// detector cannot see the failure until the client has retransmitted
// Threshold times under exponential RTO backoff (seconds); the scorer sees
// the replica's deposit cursor trailing the cluster while retransmissions
// flow, within a few sampling intervals of the first retransmit.
func TestGrayFailureDegradedBeforeDetector(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 11, 3)
	if _, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 3}}, echoAccept()); err != nil {
		t.Fatal(err)
	}

	tel := net.StartSampler(SamplerConfig{
		Every:  50 * time.Millisecond,
		Health: &HealthConfig{},
	})
	tel.WatchReplicas(replicas...)

	var suspicions []time.Duration
	net.Bus().Subscribe(func(e Event) {
		suspicions = append(suspicions, e.Time)
	}, KindSuspicion)

	net.Settle()
	payload := make([]byte, 4<<20)
	streamClient(t, net, client, payload)
	net.RunFor(400 * time.Millisecond)

	// Gray failure: the last backup's CPU degrades to a quarter-second per
	// frame. It stays alive, answers probes eventually, trickles deposits
	// — and strangles the ack chain.
	slow := replicas[len(replicas)-1]
	slow.SetProcessing(250*time.Millisecond, 0)
	stallAt := net.Now()
	net.RunFor(60 * time.Second)

	// The race starts at the stall: connection-establishment churn can trip
	// the detector spuriously beforehand, so compare reaction times from
	// the moment the gray failure begins.
	var suspicionAt time.Duration
	for _, at := range suspicions {
		if at > stallAt {
			suspicionAt = at
			break
		}
	}
	if suspicionAt == 0 {
		t.Fatal("detector never raised a suspicion after the stall — it did not bite")
	}
	scorer := tel.Scorer()
	degradedAt, ok := scorer.FirstDegradedAt(slow.Name())
	if !ok {
		t.Fatalf("slow replica %s never scored Degraded (verdict %v)",
			slow.Name(), scorer.Verdict(slow.Name()))
	}
	if degradedAt <= stallAt {
		t.Fatalf("degraded at %v, before the stall at %v", degradedAt, stallAt)
	}
	if degradedAt >= suspicionAt {
		t.Fatalf("health scorer flagged degraded at %v, detector suspected at %v — scorer must win",
			degradedAt, suspicionAt)
	}
	t.Logf("stall %v → degraded %v → suspicion %v (scorer led by %v)",
		stallAt, degradedAt, suspicionAt, suspicionAt-degradedAt)

	// Attribution: the healthy primary keeps the cluster-max deposit
	// cursor and must never be blamed for the straggler's lag.
	if at, wrongly := scorer.FirstDegradedAt(replicas[0].Name()); wrongly {
		t.Fatalf("primary %s wrongly degraded at %v", replicas[0].Name(), at)
	}
}

// TestSamplerZeroCostWhenStopped pins the facade's promise: telemetry is
// zero-cost unless a sampler is actively running. A net that had a sampler
// attached, ticking, and then stopped must perform a ping round trip with
// exactly as many heap allocations as a net that never saw one.
func TestSamplerZeroCostWhenStopped(t *testing.T) {
	pingAllocs := func(attach bool) float64 {
		net := New(Config{Seed: 1})
		a := net.AddHost("a", HostConfig{})
		b := net.AddHost("b", HostConfig{})
		net.Link(a, b, LinkConfig{Rate: 100_000_000, Delay: 100 * time.Microsecond})
		net.AutoRoute()
		if attach {
			tel := net.StartSampler(SamplerConfig{Every: time.Millisecond})
			net.RunFor(5 * time.Millisecond) // let it tick for real
			tel.Stop()
		}
		done := func(icmp.EchoResult) {}
		a.Ping(b.Addr(), time.Second, done) // warm stacks and pools
		net.RunFor(50 * time.Millisecond)
		return testing.AllocsPerRun(100, func() {
			a.Ping(b.Addr(), time.Second, done)
			net.RunFor(10 * time.Millisecond)
		})
	}
	base := pingAllocs(false)
	stopped := pingAllocs(true)
	if stopped != base {
		t.Fatalf("round trip with stopped sampler allocates %v/op, baseline %v/op — idle telemetry must add 0",
			stopped, base)
	}
}

// TestSeriesExportIdenticalSeedsDiffClean runs the same seeded failover
// scenario twice, exports both telemetry streams, and requires the
// hydrascope comparison to come back empty — the determinism contract
// extended to the new observability layer. The exports must in fact be
// byte-identical; DiffRuns is additionally exercised because it is what CI
// gates on.
func TestSeriesExportIdenticalSeedsDiffClean(t *testing.T) {
	runOnce := func() []byte {
		net, client, rd, replicas := ftTopology(t, 5, 3)
		svc, err := net.DeployFT(testSvc, rd, replicas,
			FTOptions{Detector: DetectorParams{RetransmitThreshold: 3}}, echoAccept())
		if err != nil {
			t.Fatal(err)
		}
		probe := net.NewFailoverProbe()
		tel := net.StartSampler(SamplerConfig{
			Every:  50 * time.Millisecond,
			Health: &HealthConfig{},
		})
		tel.AttachFailover(probe)
		tel.WatchReplicas(replicas...)
		net.Settle()

		payload := make([]byte, 512*1024)
		received := streamClient(t, net, client, payload)
		net.RunFor(400 * time.Millisecond)
		svc.CrashPrimary()
		for *received < len(payload) && net.Now() < 2*time.Minute {
			net.RunFor(time.Second)
		}
		if *received != len(payload) {
			t.Fatalf("client received %d of %d bytes", *received, len(payload))
		}
		tel.Stop()
		var buf bytes.Buffer
		if err := tel.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	exportA, exportB := runOnce(), runOnce()
	if !bytes.Equal(exportA, exportB) {
		t.Error("identical-seed exports differ byte-for-byte")
	}
	runA, err := scope.LoadRun(bytes.NewReader(exportA))
	if err != nil {
		t.Fatal(err)
	}
	runB, err := scope.LoadRun(bytes.NewReader(exportB))
	if err != nil {
		t.Fatal(err)
	}
	if findings := scope.DiffRuns(runA, runB, 0.001); len(findings) != 0 {
		t.Fatalf("identical-seed runs diff dirty: %v", findings)
	}
	if runA.Meta.Failover == nil || !runA.Meta.Failover.Complete {
		t.Fatalf("export missing the completed failover timeline: %+v", runA.Meta.Failover)
	}
}
