package hydranet

import (
	"bytes"
	"testing"
	"time"

	"hydranet/internal/app"
)

// ftTopologyLinks builds the star like ftTopology but returns the links so
// tests can inject partitions and loss.
func ftTopologyLinks(t *testing.T, seed int64, nReplicas int) (
	*Net, *Host, *Redirector, []*Host, []*linkHandle) {
	t.Helper()
	net := New(Config{Seed: seed})
	client := net.AddHost("client", HostConfig{})
	rd := net.AddRedirector("rd", HostConfig{})
	var replicas []*Host
	var links []*linkHandle
	link := LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	links = append(links, &linkHandle{name: "client-rd", link: net.Link(client, rd.Host, link)})
	for i := 0; i < nReplicas; i++ {
		h := net.AddHost("s"+string(rune('0'+i)), HostConfig{})
		replicas = append(replicas, h)
		links = append(links, &linkHandle{name: h.Name() + "-rd", link: net.Link(h, rd.Host, link)})
	}
	net.AutoRoute()
	return net, client, rd, replicas, links
}

type linkHandle struct {
	name string
	link interface{ SetLoss(float64) }
}

// TestPartitionedPrimaryTreatedAsFailed: the paper's congestion/"site
// disaster" case — the primary is alive but unreachable. It must be "shut
// down" (removed from the replica set) and the backup promoted, giving
// fail-stop behaviour for a non-crash fault.
func TestPartitionedPrimaryTreatedAsFailed(t *testing.T) {
	net, client, rd, replicas, links := ftTopologyLinks(t, 31, 2)
	svc, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(testSvc)
	echoed := collect(conn)
	conn.OnConnected(func() { conn.Write([]byte("pre|")) })
	net.RunFor(2 * time.Second)

	// Cut the primary's link: it is alive but unreachable.
	for _, lh := range links {
		if lh.name == "s0-rd" {
			lh.link.SetLoss(1.0)
		}
	}
	conn.Write([]byte("post"))
	net.RunFor(2 * time.Minute)

	if string(*echoed) != "pre|post" {
		t.Fatalf("echo = %q, want %q", *echoed, "pre|post")
	}
	chain := svc.Chain()
	if len(chain) != 1 || chain[0] != replicas[1].Addr() {
		t.Fatalf("chain = %v, want partitioned primary removed", chain)
	}
	if !replicas[0].Alive() {
		t.Fatal("test invariant: the partitioned host is alive")
	}
}

// TestIdleConnectionSurvivesCrash: the primary dies while the connection is
// idle. Nothing can be detected until traffic resumes — and then failover
// must still work.
func TestIdleConnectionSurvivesCrash(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 32, 2)
	svc, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(testSvc)
	echoed := collect(conn)
	conn.OnConnected(func() { conn.Write([]byte("before|")) })
	net.RunFor(2 * time.Second)

	svc.CrashPrimary()
	// A long idle period: no traffic, no detection possible.
	net.RunFor(30 * time.Second)
	if got := len(svc.Chain()); got != 2 {
		t.Fatalf("idle crash already detected (chain=%d) — nothing should trigger it", got)
	}
	// Traffic resumes; detection and failover follow.
	conn.Write([]byte("after"))
	net.RunFor(2 * time.Minute)
	if string(*echoed) != "before|after" {
		t.Fatalf("echo = %q", *echoed)
	}
	if got := svc.Chain(); len(got) != 1 || got[0] != replicas[1].Addr() {
		t.Fatalf("chain = %v after resumed traffic", got)
	}
}

// TestIdleCrashDetectedWithKeepalive: with client-side keepalive enabled,
// even an idle connection gives the estimator a signal — the probes flow
// through the redirector, go unanswered by the dead primary, and the
// backups' own retransmission-free probe handling plus the client's probe
// retransmissions trip the detector without any application traffic.
func TestIdleCrashDetectedWithKeepalive(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 36, 2)
	svc, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 3}}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(testSvc)
	echoed := collect(conn)
	conn.OnConnected(func() {
		conn.SetKeepAlive(2*time.Second, time.Second, 100)
		conn.Write([]byte("before|"))
	})
	net.RunFor(2 * time.Second)

	svc.CrashPrimary()
	// No application traffic at all; keepalive probes are the only signal.
	net.RunFor(2 * time.Minute)
	if got := svc.Chain(); len(got) != 1 || got[0] != replicas[1].Addr() {
		t.Fatalf("idle crash not detected via keepalive: chain = %v", got)
	}
	// The connection still works afterwards.
	conn.Write([]byte("after"))
	net.RunFor(30 * time.Second)
	if string(*echoed) != "before|after" {
		t.Fatalf("echo = %q", *echoed)
	}
}

// TestClientAbortTearsDownAllReplicas: a client RST is multicast like any
// other packet; every replica must drop its connection state.
func TestClientAbortTearsDownAllReplicas(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 33, 3)
	if _, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept()); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(testSvc)
	conn.OnConnected(func() { conn.Write([]byte("hello")) })
	net.RunFor(2 * time.Second)
	for _, h := range replicas {
		if h.TCP().NumConns() != 1 {
			t.Fatalf("%s has %d conns before abort", h.Name(), h.TCP().NumConns())
		}
	}
	conn.Abort()
	net.RunFor(5 * time.Second)
	for _, h := range replicas {
		if got := h.TCP().NumConns(); got != 0 {
			t.Errorf("%s still holds %d connections after client RST", h.Name(), got)
		}
	}
}

// TestClientCloseTearsDownAllReplicas: orderly shutdown propagates to every
// replica through chain-gated FINs.
func TestClientCloseTearsDownAllReplicas(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 34, 3)
	if _, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept()); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(testSvc)
	echoed := collect(conn)
	app.Source(conn, []byte("goodbye"), true) // write then close
	var closedErr error
	closed := false
	conn.OnClosed(func(err error) { closed, closedErr = true, err })
	net.RunFor(2 * time.Minute)
	if string(*echoed) != "goodbye" {
		t.Fatalf("echo before close = %q", *echoed)
	}
	if !closed || closedErr != nil {
		t.Fatalf("client close: done=%v err=%v", closed, closedErr)
	}
	for _, h := range replicas {
		if got := h.TCP().NumConns(); got != 0 {
			t.Errorf("%s still holds %d connections after orderly close", h.Name(), got)
		}
	}
}

// TestFTTransferUnderJitter: heavy reordering on every link (including the
// acknowledgment channel — UDP chain messages may arrive out of order, and
// the MaxSeq merge must tolerate that).
func TestFTTransferUnderJitter(t *testing.T) {
	net := New(Config{Seed: 37})
	client := net.AddHost("client", HostConfig{})
	rd := net.AddRedirector("rd", HostConfig{})
	var replicas []*Host
	link := LinkConfig{Rate: 10_000_000, Delay: time.Millisecond, Jitter: 1500 * time.Microsecond}
	net.Link(client, rd.Host, link)
	for i := 0; i < 3; i++ {
		h := net.AddHost("s"+string(rune('0'+i)), HostConfig{})
		replicas = append(replicas, h)
		net.Link(h, rd.Host, link)
	}
	net.AutoRoute()
	if _, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept()); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(testSvc)
	echoed := collect(conn)
	payload := make([]byte, 20_000)
	for i := range payload {
		payload[i] = byte(i * 17)
	}
	app.Source(conn, payload, false)
	net.RunFor(time.Minute)
	if !bytes.Equal(*echoed, payload) {
		t.Fatalf("FT echo under jitter: %d of %d bytes", len(*echoed), len(payload))
	}
}

// TestReplicaStreamAgreementUnderLoss: the atomicity property. Whatever the
// loss pattern, the byte streams deposited to the replica applications must
// be identical — no replica may deliver data another one missed.
func TestReplicaStreamAgreementUnderLoss(t *testing.T) {
	net, client, rd, replicas, links := ftTopologyLinks(t, 35, 3)
	for _, lh := range links {
		lh.link.SetLoss(0.03)
	}
	// Record the byte stream each replica's application consumes.
	streams := make(map[string]*[]byte)
	accept := func(c *Conn) {
		host := c // closure var; identify by listener host via local addr is shared...
		_ = host
		buf := make([]byte, 4096)
		var sink *[]byte
		// Identify the replica by which TCP stack owns the conn.
		for _, h := range replicas {
			for _, cc := range h.TCP().Conns() {
				if cc == c {
					s := streams[h.Name()]
					if s == nil {
						s = new([]byte)
						streams[h.Name()] = s
					}
					sink = s
				}
			}
		}
		if sink == nil {
			t.Error("accepted conn not found on any replica")
			sink = new([]byte)
		}
		c.OnReadable(func() {
			for {
				n := c.Read(buf)
				if n == 0 {
					break
				}
				*sink = append(*sink, buf[:n]...)
			}
		})
	}
	if _, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, accept); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	conn, _ := client.Dial(testSvc)
	payload := make([]byte, 150_000)
	for i := range payload {
		payload[i] = byte(i * 37)
	}
	app.Source(conn, payload, false)
	net.RunFor(10 * time.Minute)

	if len(streams) != 3 {
		t.Fatalf("streams recorded for %d replicas, want 3", len(streams))
	}
	var ref []byte
	for name, s := range streams {
		if ref == nil {
			ref = *s
			continue
		}
		// All streams must be prefixes of one another (tail may differ by
		// in-flight gating); compare the common prefix and demand near-
		// complete delivery.
		n := len(ref)
		if len(*s) < n {
			n = len(*s)
		}
		if !bytes.Equal(ref[:n], (*s)[:n]) {
			t.Fatalf("replica %s diverged from the common stream", name)
		}
	}
	// The client's stream must have gone through essentially completely.
	for name, s := range streams {
		if len(*s) < len(payload)*9/10 {
			t.Errorf("replica %s consumed only %d of %d bytes", name, len(*s), len(payload))
		}
	}
}
