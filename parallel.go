package hydranet

// Parallel execution: Net.SetWorkers partitions the fabric into per-domain
// synchronization domains (internal/netsim) advanced by a conservative
// window scheduler (internal/sim.Group), and this file supplies the facade
// glue that keeps every observable byte-identical to the serial scheduler:
//
//   - Per-domain bus views. Worker-context code (TCP stacks, redirectors,
//     the fabric itself) emits on a private obs.Bus per domain whose
//     subscription mask mirrors the real bus, so Enabled() answers — and
//     therefore the simulation's control flow — are unchanged. Emitted
//     events are spooled with the emitting event's (time, birth) key and
//     replayed into the real bus at the next barrier in merged key order,
//     exactly the order a serial run would have delivered them.
//   - Spooled taps. Frame taps and redirector encap taps observe pooled
//     buffers that are recycled when the emitting event returns, so the
//     spool copies the bytes into a per-domain arena and replays them at
//     the barrier. Because pcap captures stamp records with Net.Now, and
//     Net.Now follows the replay clock, captures of a partitioned run are
//     byte-identical to serial ones.
//   - Global events. Net.At, scripted fault injection and telemetry
//     samplers become sim.Group global events: they run at barriers with
//     all workers parked, positioned by (time, birth) exactly where the
//     serial scheduler would have run them.
//
// The partition is derived from the topology alone (SetWorkers cuts the
// largest propagation-delay class), never from the worker count, so any
// worker count ≥ 2 produces identical output; workers == 1 keeps the
// serial scheduler untouched.

import (
	"fmt"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/netsim"
	"hydranet/internal/obs"
	"hydranet/internal/sim"
)

// maxLookahead caps the window size when the partition has no cross-domain
// links at all (netsim reports an unbounded lookahead): windows beyond this
// gain nothing, and an unbounded edge would overflow the clock arithmetic.
const maxLookahead = time.Hour

// parallelRT is the facade's parallel runtime, attached to a Net by
// SetWorkers/Partition.
type parallelRT struct {
	n      *Net
	group  *sim.Group
	scheds []*sim.Scheduler

	views    []*obs.Bus // per-domain emission targets mirroring n.bus
	viewMask uint64     // n.bus.Mask() the views were built against
	spools   []spool    // per-domain deferred observations
	cursors  []int      // merge cursors, reused per barrier

	tapped      bool // spoolFrame installed as the fabric tap
	encapTapped bool // spoolEncap installed on every redirector

	// Replay/coordinator context, only touched with all workers parked.
	running   bool // inside group.Run/RunUntil
	replaying bool
	replayNow time.Duration
	inGlobal  bool
	globalKey sim.Key
}

// direct reports whether an observation should bypass the spool: barrier
// replay and global events are already at their merged position, and
// coordinator-context emission between runs (Crash/Restart from test code)
// happens with every prior observation drained, so publishing immediately
// preserves the serial order — and cannot wait for a barrier that may never
// come if the harness stops running.
func (p *parallelRT) direct() bool { return p.inGlobal || p.replaying || !p.running }

// recKind discriminates spooled observation records.
type recKind uint8

const (
	recBus   recKind = iota // obs event for the real bus
	recFrame                // fabric frame tap
	recEncap                // redirector pre-encapsulation tap
)

// spoolRec is one deferred observation: its key is the (time, birth) of the
// domain event that emitted it, which positions it in the merged replay
// exactly where a serial scheduler would have delivered it.
type spoolRec struct {
	key      sim.Key
	kind     recKind
	ev       obs.Event
	from, to *netsim.Node
	host     Addr
	off, end int // byte range in the spool arena (frame/encap records)
}

// spool is one domain's deferred observations for the current window. Only
// that domain's worker appends; the coordinator drains at the barrier.
type spool struct {
	recs  []spoolRec
	bytes []byte // arena for copied frame/wire bytes
}

// SetWorkers partitions the network for parallel execution across the given
// number of worker threads. The partition is derived from the topology: the
// largest propagation-delay class is cut (those links become the
// cross-domain hand-off boundaries and set the lookahead window), and
// everything joined by faster links stays in one domain. The worker count
// only sets parallelism — the output is bit-identical for every count ≥ 2,
// and workers <= 1 leaves the serial scheduler untouched entirely.
//
// Call after the topology is final (hosts, links, AutoRoute) and before
// deploying services, dialing connections, or attaching captures and
// samplers. When the topology has no delay structure to cut (a single
// domain would remain), the network stays serial and SetWorkers returns nil.
func (n *Net) SetWorkers(workers int) error {
	if workers <= 1 {
		return nil
	}
	groups := n.autoPartition()
	if len(groups) <= 1 {
		return nil
	}
	return n.Partition(groups, workers)
}

// autoPartition groups hosts into synchronization domains by cutting every
// link in the topology's largest propagation-delay class and merging the
// rest (union-find). Groups are ordered by first host creation index, so
// domain 0 always contains host 0 and the partition is deterministic.
func (n *Net) autoPartition() [][]*Host {
	var cut time.Duration
	for _, li := range n.links {
		if d := li.underlying.Config().Delay; d > cut {
			cut = d
		}
	}
	if cut <= 0 {
		return nil
	}
	parent := make([]int, len(n.hosts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	idx := make(map[*Host]int, len(n.hosts))
	for i, h := range n.hosts {
		idx[h] = i
	}
	for _, li := range n.links {
		if li.underlying.Config().Delay >= cut {
			continue
		}
		ra, rb := find(idx[li.a]), find(idx[li.b])
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	order := make(map[int]int) // root -> group index, by first occurrence
	var groups [][]*Host
	for i, h := range n.hosts {
		r := find(i)
		g, ok := order[r]
		if !ok {
			g = len(groups)
			order[r] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], h)
	}
	return groups
}

// Partition explicitly assigns hosts to synchronization domains (groups[d]
// lists domain d's hosts; every host must appear exactly once) and runs them
// across the given worker count. Most callers want SetWorkers; Partition is
// for harnesses that need a specific cut. The same call-ordering rules
// apply: topology final, nothing deployed, dialed or attached yet.
func (n *Net) Partition(groups [][]*Host, workers int) error {
	if n.par != nil {
		return fmt.Errorf("hydranet: network already partitioned")
	}
	if n.profiler != nil {
		return fmt.Errorf("hydranet: partition after StartProfile — attach the profiler after SetWorkers")
	}
	if len(groups) == 0 {
		return fmt.Errorf("hydranet: empty partition")
	}
	idx := make(map[*Host]int, len(n.hosts))
	for i, h := range n.hosts {
		idx[h] = i
	}
	assign := make([]int, len(n.hosts))
	for i := range assign {
		assign[i] = -1
	}
	for d, g := range groups {
		for _, h := range g {
			i, ok := idx[h]
			if !ok {
				return fmt.Errorf("hydranet: partition names a host not in this network")
			}
			if assign[i] != -1 {
				return fmt.Errorf("hydranet: host %q appears in two domains", h.name)
			}
			assign[i] = d
		}
	}
	for i, d := range assign {
		if d == -1 {
			return fmt.Errorf("hydranet: host %q missing from the partition", n.hosts[i].name)
		}
	}
	for _, h := range n.hosts {
		if h.mgr != nil || h.dmn != nil {
			return fmt.Errorf("hydranet: partition after deploying services (host %q)", h.name)
		}
		if len(h.tcp.Conns()) > 0 {
			return fmt.Errorf("hydranet: partition with live connections on %q", h.name)
		}
	}
	for _, r := range n.redirectors {
		if r.dmn != nil {
			return fmt.Errorf("hydranet: partition after starting redirector daemon %q", r.Host.name)
		}
	}

	scheds := make([]*sim.Scheduler, len(groups))
	scheds[0] = n.sched
	for i := 1; i < len(scheds); i++ {
		// Distinct deterministic seed per domain; the partition is derived
		// from the topology, so equal-seed runs draw identical streams.
		scheds[i] = sim.NewScheduler(n.cfg.Seed + int64(i)*1_000_003)
	}
	lookahead, err := n.fab.SetDomains(assign, scheds)
	if err != nil {
		return err
	}
	if lookahead > maxLookahead {
		lookahead = maxLookahead
	}
	// Move every host's protocol timers onto its domain scheduler.
	for i, h := range n.hosts {
		ds := scheds[assign[i]]
		h.ip.Rebind(ds)
		h.tcp.Rebind(ds)
		h.icmp.Rebind(ds)
	}
	p := &parallelRT{
		n:       n,
		scheds:  scheds,
		views:   make([]*obs.Bus, len(scheds)),
		spools:  make([]spool, len(scheds)),
		cursors: make([]int, len(scheds)),
	}
	p.group = sim.NewGroup(scheds, lookahead, workers)
	p.group.SetHooks(n.fab.WindowStart, n.fab.WindowEnd, func() {
		n.fab.StageHandoffs()
		p.barrier()
	}, n.fab.EarliestHandoff)
	n.par = p
	p.refresh()
	return nil
}

// Parallel reports the partition: domains and worker threads (1, 1 for a
// serial network).
func (n *Net) Parallel() (domains, workers int) {
	if n.par == nil {
		return 1, 1
	}
	return len(n.par.scheds), n.par.group.Workers()
}

// MergeTies returns how many cross-domain merge decisions were ambiguous
// (see netsim.Network.MergeTies); zero means the run is bit-identical to
// the serial scheduler.
func (n *Net) MergeTies() uint64 { return n.fab.MergeTies() }

// Handoffs returns the number of frames handed across domains (0 when
// serial or when no cross-domain traffic flowed).
func (n *Net) Handoffs() uint64 { return n.fab.Handoffs() }

// EventsFired returns the total number of executed simulation events,
// summed across domains in a partitioned run.
func (n *Net) EventsFired() uint64 {
	if n.par != nil {
		return n.par.group.Fired()
	}
	return n.sched.Fired()
}

// eventsPending counts queued simulation events: scheduler heaps plus, in a
// partitioned run, global events and undelivered cross-domain hand-offs
// (which a serial run would hold as scheduled deliveries).
func (n *Net) eventsPending() int {
	if n.par != nil {
		return n.par.group.Pending() + n.fab.PendingHandoffs()
	}
	return n.sched.Pending()
}

// hostView returns the bus view of the host's domain.
func (p *parallelRT) hostView(h *Host) *obs.Bus {
	return p.views[p.n.fab.DomainOf(h.node)]
}

// emitBus returns the bus a host-side emitter should publish on: the real
// bus in serial runs, the host's domain view in parallel runs.
func (h *Host) emitBus() *obs.Bus {
	if p := h.net.par; p != nil {
		return p.hostView(h)
	}
	return h.net.bus
}

// Bus returns the bus callbacks running on this host (accept handlers,
// OnReadable measurement probes) should publish on. In a serial network it
// is Net.Bus; in a partitioned one it is the host's domain view, so
// worker-context publication stays inside the domain and is merged
// deterministically at the next barrier.
func (h *Host) Bus() *obs.Bus { return h.emitBus() }

// Scheduler returns the scheduler driving this host — its domain scheduler
// in a partitioned run. Harness code pacing per-host traffic (ttcp
// transmitters, scripted sends from one host) must schedule here rather
// than on Net.Scheduler.
func (h *Host) Scheduler() *sim.Scheduler { return h.node.Scheduler() }

// refresh rebuilds the per-domain bus views when the real bus's
// subscription mask changed (a capture or probe attached since the last
// run) and installs the spooling taps once facade taps exist. Runs in
// coordinator context at partition time and at every run entry.
func (p *parallelRT) refresh() {
	n := p.n
	if mask := n.bus.Mask(); mask != p.viewMask || p.views[0] == nil {
		p.viewMask = mask
		for d := range p.views {
			view := obs.NewBus(p.scheds[d].Now)
			dd := d
			view.SubscribeMask(func(ev obs.Event) { p.spoolEvent(dd, ev) }, mask)
			p.views[d] = view
			n.fab.SetDomainBus(d, view)
		}
		for _, h := range n.hosts {
			v := p.hostView(h)
			h.tcp.SetBus(v)
			if h.mgr != nil {
				h.mgr.SetBus(v)
			}
		}
		for _, r := range n.redirectors {
			v := p.hostView(r.Host)
			r.rd.SetBus(v)
			if r.dmn != nil {
				r.dmn.SetBus(v, r.Host.name)
			}
		}
	}
	p.installTaps()
}

// installTaps routes the facade's frame and encap taps through the spools.
func (p *parallelRT) installTaps() {
	n := p.n
	if len(n.frameTaps) > 0 && !p.tapped {
		p.tapped = true
		n.fab.SetFrameTap(p.spoolFrame)
	}
	if len(n.encapTaps) > 0 && !p.encapTapped {
		p.encapTapped = true
		for _, r := range n.redirectors {
			d := n.fab.DomainOf(r.Host.node)
			r.rd.SetEncapTap(func(inner *ipv4.Packet, host Addr) {
				p.spoolEncap(d, inner, host)
			})
		}
	}
}

// keyFor returns the merge key of the observation being emitted: the
// executing event's (time, birth) in worker context, the global event's key
// at a barrier, or the group clock for coordinator-context emission between
// runs (Crash/Restart called from test code).
func (p *parallelRT) keyFor(d int) sim.Key {
	if p.inGlobal {
		return p.globalKey
	}
	k, _ := p.scheds[d].CurrentKey()
	if now := p.group.Now(); k.At < now {
		k = sim.Key{At: now, Birth: now}
	}
	return k
}

// spoolEvent is the per-domain view subscriber: defer the event for merged
// replay into the real bus. Coordinator-context emission (global events,
// setup code between runs) is already at its correct point in the merged
// order and publishes through immediately.
func (p *parallelRT) spoolEvent(d int, ev obs.Event) {
	if p.direct() {
		p.n.bus.Publish(ev)
		return
	}
	sp := &p.spools[d]
	sp.recs = append(sp.recs, spoolRec{key: p.keyFor(d), kind: recBus, ev: ev})
}

// spoolFrame is the fabric tap in parallel mode: the frame bytes alias a
// pooled buffer valid only for this call, so they are copied into the
// domain arena and the registered taps run at the barrier.
func (p *parallelRT) spoolFrame(from, to *netsim.Node, data []byte) {
	if p.direct() {
		for _, tap := range p.n.frameTaps {
			tap(from, to, data)
		}
		return
	}
	d := p.n.fab.DomainOf(from)
	sp := &p.spools[d]
	off := len(sp.bytes)
	sp.bytes = append(sp.bytes, data...)
	sp.recs = append(sp.recs, spoolRec{
		key: p.keyFor(d), kind: recFrame, from: from, to: to, off: off, end: len(sp.bytes),
	})
}

// spoolEncap is the per-redirector encap tap in parallel mode: the inner
// packet's wire bytes are copied and re-parsed at the barrier. Packets
// without wire bytes are skipped, matching the pcap consumer, which is the
// only inner-copy subscriber and ignores them too.
func (p *parallelRT) spoolEncap(d int, inner *ipv4.Packet, host Addr) {
	wire := inner.Wire()
	if len(wire) == 0 {
		return
	}
	if p.direct() {
		for _, tap := range p.n.encapTaps {
			tap(inner, host)
		}
		return
	}
	sp := &p.spools[d]
	off := len(sp.bytes)
	sp.bytes = append(sp.bytes, wire...)
	sp.recs = append(sp.recs, spoolRec{
		key: p.keyFor(d), kind: recEncap, host: host, off: off, end: len(sp.bytes),
	})
}

// barrier is the sim.Group barrier hook: k-way merge the domain spools by
// key and replay each observation at its original virtual instant. Equal
// keys from different domains replay in domain order — the same ambiguity
// class netsim counts as merge ties; within a domain, spool order is
// execution order and is preserved.
func (p *parallelRT) barrier() {
	total := 0
	for d := range p.spools {
		p.cursors[d] = 0
		total += len(p.spools[d].recs)
	}
	if total == 0 {
		return
	}
	n := p.n
	p.replaying = true
	for ; total > 0; total-- {
		best := -1
		for d := range p.spools {
			if p.cursors[d] >= len(p.spools[d].recs) {
				continue
			}
			if best < 0 || p.spools[d].recs[p.cursors[d]].key.Less(p.spools[best].recs[p.cursors[best]].key) {
				best = d
			}
		}
		sp := &p.spools[best]
		r := &sp.recs[p.cursors[best]]
		p.cursors[best]++
		p.replayNow = r.key.At
		switch r.kind {
		case recBus:
			n.bus.Publish(r.ev)
		case recFrame:
			data := sp.bytes[r.off:r.end]
			for _, tap := range n.frameTaps {
				tap(r.from, r.to, data)
			}
		case recEncap:
			if pkt, err := ipv4.Unmarshal(sp.bytes[r.off:r.end]); err == nil {
				for _, tap := range n.encapTaps {
					tap(pkt, r.host)
				}
			}
		}
	}
	p.replaying = false
	for d := range p.spools {
		sp := &p.spools[d]
		for i := range sp.recs {
			sp.recs[i] = spoolRec{}
		}
		sp.recs = sp.recs[:0]
		sp.bytes = sp.bytes[:0]
	}
}

// now is the parallel virtual clock: the replayed observation's instant
// during barrier replay, the group clock otherwise.
func (p *parallelRT) now() time.Duration {
	if p.replaying {
		return p.replayNow
	}
	return p.group.Now()
}

// run/runUntil drive the group, refreshing views first so subscriptions
// made since the last run take effect.
func (p *parallelRT) run() {
	p.refresh()
	p.running = true
	p.group.Run()
	p.running = false
}

func (p *parallelRT) runUntil(t time.Duration) {
	p.refresh()
	p.running = true
	p.group.RunUntil(t)
	p.running = false
}

// at schedules fn as a global event positioned exactly where a serial
// scheduler would have run an event inserted now: barrier context, with the
// global key exported so anything fn emits merges at the right instant.
func (p *parallelRT) at(t time.Duration, fn func()) {
	birth := p.group.Now()
	p.group.Schedule(t, birth, func() {
		p.inGlobal = true
		p.globalKey = sim.Key{At: t, Birth: birth}
		fn()
		p.inGlobal = false
	})
}

// groupTicker is the parallel analogue of a series.Sampler's timer: a
// self-rearming global event with the same (fire, birth) key sequence the
// serial sim.Timer would produce, so sampled series are byte-identical.
type groupTicker struct {
	p       *parallelRT
	every   time.Duration
	fn      func(now time.Duration)
	ticks   uint64
	ev      sim.GlobalEvent
	stopped bool
}

// startTicker arms a recurring barrier tick; the first fires one cadence
// from now, like Sampler.Start.
func (p *parallelRT) startTicker(every time.Duration, fn func(now time.Duration)) *groupTicker {
	g := &groupTicker{p: p, every: every, fn: fn}
	g.arm(p.group.Now()+every, p.group.Now())
	return g
}

func (g *groupTicker) arm(at, birth time.Duration) {
	g.ev = g.p.group.Schedule(at, birth, func() {
		if g.stopped {
			return
		}
		g.ticks++
		p := g.p
		p.inGlobal = true
		p.globalKey = sim.Key{At: at, Birth: birth}
		g.fn(at)
		p.inGlobal = false
		g.arm(at+g.every, at)
	})
}

// Stop disarms the ticker.
func (g *groupTicker) Stop() {
	g.stopped = true
	g.ev.Cancel()
}
