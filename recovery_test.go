package hydranet

import (
	"bytes"
	"testing"
	"time"

	"hydranet/internal/app"
)

func TestCrashWipesProtocolState(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 21, 2)
	if _, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept()); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(testSvc)
	app.Source(conn, []byte("state"), false)
	net.RunFor(2 * time.Second)
	if got := replicas[0].TCP().NumConns(); got != 1 {
		t.Fatalf("primary tracks %d conns before crash", got)
	}
	replicas[0].Crash()
	if got := replicas[0].TCP().NumConns(); got != 0 {
		t.Fatalf("crash left %d TCP connections behind", got)
	}
	if replicas[0].FTManager().Port(testSvc) != nil {
		t.Fatal("crash left replicated-port state behind")
	}
}

func TestRecommissionAfterFailure(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 22, 2)
	svc, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	// Establish a connection, crash the primary mid-stream, fail over.
	conn1, _ := client.Dial(testSvc)
	echoed1 := collect(conn1)
	conn1.OnConnected(func() { conn1.Write([]byte("first")) })
	net.RunFor(2 * time.Second)
	svc.CrashPrimary()
	conn1.Write([]byte("|more"))
	net.RunFor(60 * time.Second)
	if string(*echoed1) != "first|more" {
		t.Fatalf("failover echo = %q", *echoed1)
	}
	if got := svc.Chain(); len(got) != 1 || got[0] != replicas[1].Addr() {
		t.Fatalf("chain after failover = %v", got)
	}

	// Recover s0 and bring it back as a backup.
	replicas[0].Restart()
	if err := svc.Recommission(replicas[0]); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	chain := svc.Chain()
	if len(chain) != 2 || chain[0] != replicas[1].Addr() || chain[1] != replicas[0].Addr() {
		t.Fatalf("chain after recommission = %v, want [s1 s0]", chain)
	}

	// A NEW connection is replicated onto the recommissioned host...
	conn2, _ := client.Dial(testSvc)
	echoed2 := collect(conn2)
	payload := bytes.Repeat([]byte("x"), 20_000)
	app.Source(conn2, payload, false)
	net.RunFor(10 * time.Second)
	if !bytes.Equal(*echoed2, payload) {
		t.Fatalf("post-recommission echo incomplete: %d bytes", len(*echoed2))
	}
	if got := replicas[0].FTManager().Port(testSvc); got == nil || got.Conns() != 1 {
		t.Fatal("recommissioned replica is not tracking the new connection")
	}

	// ...and survives the death of the current primary: full circle.
	svc.CrashPrimary() // kills s1
	conn2.Write([]byte("after second failover"))
	net.RunFor(90 * time.Second)
	want := append(append([]byte(nil), payload...), []byte("after second failover")...)
	if !bytes.Equal(*echoed2, want) {
		t.Fatalf("second failover onto recommissioned host failed: got %d bytes, want %d",
			len(*echoed2), len(want))
	}
	if got := svc.Chain(); len(got) != 1 || got[0] != replicas[0].Addr() {
		t.Fatalf("final chain = %v, want [s0]", got)
	}
	if p := svc.Primary(); p == nil || p.Host != replicas[0] {
		t.Fatal("recommissioned host not promoted")
	}
}

func TestRecommissionRequiresRestart(t *testing.T) {
	net, _, rd, replicas := ftTopology(t, 23, 2)
	svc, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	replicas[0].Crash()
	if err := svc.Recommission(replicas[0]); err == nil {
		t.Fatal("recommissioning a dead host succeeded")
	}
}

func TestRecommissionRejectsStranger(t *testing.T) {
	net, _, rd, replicas := ftTopology(t, 24, 2)
	svc, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	stranger := net.AddHost("stranger", HostConfig{})
	net.Link(stranger, rd.Host, LinkConfig{})
	net.AutoRoute()
	if err := svc.Recommission(stranger); err == nil {
		t.Fatal("recommissioning a never-member host succeeded")
	}
}

func TestManyClientsSurviveFailover(t *testing.T) {
	net, _, rd, replicas := ftTopology(t, 25, 3)
	svc, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	// Several independent client hosts.
	const n = 5
	var clients []*Host
	for i := 0; i < n; i++ {
		h := net.AddHost("c"+string(rune('0'+i)), HostConfig{})
		clients = append(clients, h)
		net.Link(h, rd.Host, LinkConfig{Rate: 10_000_000, Delay: time.Millisecond})
	}
	net.AutoRoute()
	net.Settle()

	payloads := make([][]byte, n)
	echoes := make([]*[]byte, n)
	for i, h := range clients {
		payload := bytes.Repeat([]byte{byte('A' + i)}, 30_000+1000*i)
		payloads[i] = payload
		conn, err := h.Dial(testSvc)
		if err != nil {
			t.Fatal(err)
		}
		echoes[i] = collect(conn)
		app.Source(conn, payload, false)
	}
	net.RunFor(200 * time.Millisecond)
	svc.CrashPrimary()
	net.RunFor(3 * time.Minute)

	for i := range clients {
		if !bytes.Equal(*echoes[i], payloads[i]) {
			t.Errorf("client %d: echo %d of %d bytes after failover",
				i, len(*echoes[i]), len(payloads[i]))
		}
	}
	// Every replica carries all n connections (one per client).
	for _, r := range svc.Replicas()[1:] {
		if got := r.Port.Conns(); got != n {
			t.Errorf("replica %s tracks %d conns, want %d", r.Host.Name(), got, n)
		}
	}
}

func TestTwoIndependentFTServices(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 26, 2)
	svcA := ServiceID{Addr: MustAddr("192.20.225.20"), Port: 80}
	svcB := ServiceID{Addr: MustAddr("192.20.225.21"), Port: 9000}
	// Service A: s0 primary; service B: s1 primary (reversed order).
	a, err := net.DeployFT(svcA, rd, replicas, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.DeployFT(svcB, rd, []*Host{replicas[1], replicas[0]}, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	connA, _ := client.Dial(svcA)
	connB, _ := client.Dial(svcB)
	echoA, echoB := collect(connA), collect(connB)
	app.Source(connA, []byte("service A"), false)
	app.Source(connB, []byte("service B"), false)
	net.RunFor(5 * time.Second)
	if string(*echoA) != "service A" || string(*echoB) != "service B" {
		t.Fatalf("echoes: %q / %q", *echoA, *echoB)
	}

	// Crash s0: primary of A, backup of B. Both must keep working.
	replicas[0].Crash()
	connA.Write([]byte("|survives"))
	connB.Write([]byte("|survives"))
	net.RunFor(90 * time.Second)
	if string(*echoA) != "service A|survives" {
		t.Errorf("service A after its primary died: %q", *echoA)
	}
	if string(*echoB) != "service B|survives" {
		t.Errorf("service B after its backup died: %q", *echoB)
	}
	if got := a.Chain(); len(got) != 1 || got[0] != replicas[1].Addr() {
		t.Errorf("service A chain = %v", got)
	}
	if got := b.Chain(); len(got) != 1 || got[0] != replicas[1].Addr() {
		t.Errorf("service B chain = %v", got)
	}
}
