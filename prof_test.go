package hydranet

import (
	"bytes"
	"testing"
	"time"

	"hydranet/internal/app"
	"hydranet/internal/icmp"
	"hydranet/internal/prof"
	"hydranet/internal/sim"
)

// TestProfZeroCostWhenDetached pins the zero-cost contract on the scheduler
// hot path: the profiling hooks in At/Step are nil-gated pointer checks, so
// a detached scheduler allocates nothing in steady state — and an attached
// one allocates nothing either, because the edge ring and depth counters are
// preallocated. CI runs this by name; do not rename.
func TestProfZeroCostWhenDetached(t *testing.T) {
	measure := func(attach bool) float64 {
		s := sim.NewScheduler(1)
		if attach {
			s.EnableProfile(sim.NewSchedProf(64, 4))
		}
		nop := func() {}
		cycle := func() {
			s.At(s.Now()+time.Microsecond, nop)
			s.Step()
		}
		// Warm the event-node freelist and heap capacity out of the
		// measurement: steady state is schedule-one/fire-one.
		for i := 0; i < 256; i++ {
			cycle()
		}
		return testing.AllocsPerRun(1000, cycle)
	}
	if a := measure(false); a != 0 {
		t.Errorf("detached scheduler steady state allocates %.1f per event, want 0", a)
	}
	if a := measure(true); a != 0 {
		t.Errorf("attached scheduler steady state allocates %.1f per event, want 0", a)
	}
}

// profArtifacts is one profiled-or-plain scenario run's observables.
type profArtifacts struct {
	pcap    []byte
	fired   uint64
	ties    uint64
	profile *prof.Profile // nil for a plain run
}

// runProfScenario runs a sampler-free failover scenario — the telemetry
// sampler is the one component whose event chains differ serial vs parallel
// (DESIGN.md §11), so critical-path parity is asserted without it.
func runProfScenario(t *testing.T, workers int, profiled bool) profArtifacts {
	t.Helper()
	net, client, rd, replicas := parallelTopology(t, 17)
	if workers > 1 {
		if err := net.SetWorkers(workers); err != nil {
			t.Fatal(err)
		}
	}
	var pcap bytes.Buffer
	if _, err := net.StartCapture(&pcap); err != nil {
		t.Fatal(err)
	}
	svc, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 3}}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	// Attach after setup settles, as the testbed does: the event and depth
	// baselines then cover exactly the measured transfer, at the same
	// logical instant for every worker count.
	var profiler *Profiler
	if profiled {
		profiler = net.StartProfile(ProfileConfig{Scenario: "prof parity"})
	}

	payload := make([]byte, 512*1024)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	conn, err := client.Dial(testSvc)
	if err != nil {
		t.Fatal(err)
	}
	received := new(int)
	buf := make([]byte, 8192)
	conn.OnReadable(func() {
		for {
			n := conn.Read(buf)
			if n == 0 {
				break
			}
			*received += n
		}
	})
	app.Source(conn, payload, false)

	net.RunFor(150 * time.Millisecond)
	svc.CrashPrimary()
	for *received < len(payload) && net.Now() < 2*time.Minute {
		net.RunFor(time.Second)
	}
	if *received != len(payload) {
		t.Fatalf("workers=%d profiled=%v: client received %d of %d bytes",
			workers, profiled, *received, len(payload))
	}
	a := profArtifacts{pcap: pcap.Bytes(), fired: net.EventsFired(), ties: net.MergeTies()}
	if profiler != nil {
		a.profile = profiler.Snapshot()
		profiler.Stop()
	}
	return a
}

// TestProfileKeepsOutputsIdentical is hydraprof's non-perturbation proof:
// attaching the profiler changes no simulation observable (pcap bytes,
// events fired) at any worker count, and the causal critical path it reports
// is identical for the serial and the partitioned run of the same scenario.
func TestProfileKeepsOutputsIdentical(t *testing.T) {
	serial := runProfScenario(t, 1, false)
	serialProf := runProfScenario(t, 1, true)
	par := runProfScenario(t, 4, false)
	parProf := runProfScenario(t, 4, true)

	if len(serial.pcap) == 0 {
		t.Fatal("scenario produced no capture bytes")
	}
	for name, run := range map[string]profArtifacts{
		"serial+prof": serialProf, "parallel": par, "parallel+prof": parProf,
	} {
		if !bytes.Equal(serial.pcap, run.pcap) {
			t.Errorf("%s pcap differs from serial (%d vs %d bytes)",
				name, len(run.pcap), len(serial.pcap))
		}
		if run.fired != serial.fired {
			t.Errorf("%s fired %d events, serial fired %d", name, run.fired, serial.fired)
		}
		if run.ties != 0 {
			t.Errorf("%s recorded %d merge ties, want 0", name, run.ties)
		}
	}

	sp, pp := serialProf.profile, parProf.profile
	if sp.Domains != 1 || pp.Domains != 3 {
		t.Fatalf("profiles report %d/%d domains, want 1/3", sp.Domains, pp.Domains)
	}
	if sp.Events == 0 || sp.Events != pp.Events {
		t.Errorf("profiled events: serial %d, parallel %d (want equal, nonzero)",
			sp.Events, pp.Events)
	}
	if sp.CriticalPath.Depth == 0 || sp.CriticalPath.Depth != pp.CriticalPath.Depth {
		t.Errorf("critical-path depth: serial %d, parallel %d (want equal, nonzero)",
			sp.CriticalPath.Depth, pp.CriticalPath.Depth)
	}
	if sp.CriticalPath.EdgesSeen == 0 || sp.CriticalPath.EdgesRecorded == 0 {
		t.Errorf("serial profile sampled no edges: %+v", sp.CriticalPath)
	}

	// Parallel-only sections: window accounting covers every domain, the
	// hand-off matrix sums to the hand-off counter, and the recommendation
	// stays within the partition's structural bounds.
	if pp.WindowsRun == 0 || pp.WindowsKept == 0 {
		t.Errorf("parallel profile recorded %d windows (%d kept), want > 0",
			pp.WindowsRun, pp.WindowsKept)
	}
	if len(pp.DomainTotals) != pp.Domains {
		t.Fatalf("parallel profile has %d domain totals, want %d",
			len(pp.DomainTotals), pp.Domains)
	}
	var domainEvents uint64
	for _, d := range pp.DomainTotals {
		domainEvents += d.Events
	}
	if domainEvents == 0 || domainEvents > pp.Events {
		t.Errorf("domain totals account %d events, profile fired %d", domainEvents, pp.Events)
	}
	if len(pp.HandoffMatrix) != pp.Domains*pp.Domains {
		t.Fatalf("hand-off matrix has %d cells, want %d",
			len(pp.HandoffMatrix), pp.Domains*pp.Domains)
	}
	var matrixSum uint64
	for _, c := range pp.HandoffMatrix {
		matrixSum += c
	}
	if matrixSum == 0 || matrixSum != pp.Handoffs {
		t.Errorf("hand-off matrix sums to %d, counter says %d (want equal, nonzero)",
			matrixSum, pp.Handoffs)
	}
	if w := pp.RecommendedWorkers(); w < 1 || w > pp.Domains {
		t.Errorf("recommended workers %d outside [1, %d]", w, pp.Domains)
	}
	if sp.WindowsRun != 0 || len(sp.DomainTotals) != 0 {
		t.Errorf("serial profile has parallel sections: windows=%d totals=%d",
			sp.WindowsRun, len(sp.DomainTotals))
	}
}

// TestMergeTieAccounting constructs the exact-key cross-domain ambiguity the
// MergeTies counter exists to expose: two hosts behind identical links ping
// a third at the same virtual instant, so their echo requests reach the
// shared destination with identical (arrive, birth) keys from different
// source domains. The counter must fire, the documented tie-break (stable
// sort, source-domain ascending — which here coincides with the serial
// scheduler's insertion order) must hold, and the run's virtual observables
// must still match the serial run exactly.
func TestMergeTieAccounting(t *testing.T) {
	run := func(parallel bool) (pcap []byte, ties uint64, rtts [2]time.Duration) {
		t.Helper()
		net := New(Config{Seed: 5})
		a := net.AddHost("a", HostConfig{})
		b := net.AddHost("b", HostConfig{})
		c := net.AddHost("c", HostConfig{})
		link := LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
		net.Link(a, c, link)
		net.Link(b, c, link)
		net.AutoRoute()
		if parallel {
			if err := net.Partition([][]*Host{{a}, {b}, {c}}, 2); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if _, err := net.StartCapture(&buf); err != nil {
			t.Fatal(err)
		}
		a.Ping(c.Addr(), time.Second, func(r icmp.EchoResult) { rtts[0] = r.RTT })
		b.Ping(c.Addr(), time.Second, func(r icmp.EchoResult) { rtts[1] = r.RTT })
		net.RunFor(time.Second)
		return buf.Bytes(), net.MergeTies(), rtts
	}

	serPcap, serTies, serRTTs := run(false)
	parPcap, parTies, parRTTs := run(true)
	if serTies != 0 {
		t.Fatalf("serial run counted %d merge ties, want 0", serTies)
	}
	if parTies == 0 {
		t.Fatal("symmetric simultaneous arrivals counted no merge ties, want > 0")
	}
	if serRTTs[0] == 0 || serRTTs != parRTTs {
		t.Errorf("ping RTTs: serial %v, parallel %v (want equal, nonzero)", serRTTs, parRTTs)
	}
	// The tied frames were issued in source-domain order, so the stable
	// src-ascending tie-break reproduces the serial capture byte-for-byte
	// here — and a second partitioned run must reproduce it as well.
	if !bytes.Equal(serPcap, parPcap) {
		t.Errorf("tied capture diverged from serial (%d vs %d bytes)", len(parPcap), len(serPcap))
	}
	rerunPcap, rerunTies, _ := run(true)
	if rerunTies != parTies || !bytes.Equal(parPcap, rerunPcap) {
		t.Errorf("partitioned rerun not deterministic: ties %d vs %d, pcap %d vs %d bytes",
			rerunTies, parTies, len(rerunPcap), len(parPcap))
	}
}
