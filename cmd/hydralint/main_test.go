package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The committed seeded-violation testdata doubles as the exit-code
// fixture: a package that must produce findings (exit 2), a shipped
// package that must be clean (exit 0), and a nonexistent pattern that
// must fail the load (exit 1).
const (
	seededPkg = "../../internal/lint/determinism/testdata/src/internal/netsim"
	cleanPkg  = "../../internal/frame"
)

func TestExitCodeFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{seededPkg}, &stdout, &stderr); got != 2 {
		t.Fatalf("seeded violations: exit %d, want 2\nstdout: %s\nstderr: %s", got, stdout.String(), stderr.String())
	}
	if stdout.Len() == 0 {
		t.Fatal("exit 2 with no diagnostics printed")
	}
}

func TestExitCodeClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{cleanPkg}, &stdout, &stderr); got != 0 {
		t.Fatalf("clean package: exit %d, want 0\nstdout: %s\nstderr: %s", got, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean package printed diagnostics:\n%s", stdout.String())
	}
}

func TestExitCodeLoadFailure(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"./no-such-package"}, &stdout, &stderr); got != 1 {
		t.Fatalf("broken target: exit %d, want 1\nstderr: %s", got, stderr.String())
	}
	if !strings.Contains(stderr.String(), "hydralint:") {
		t.Fatalf("load failure did not explain itself on stderr: %q", stderr.String())
	}
}

// TestJSONShape pins the -json schema: schema_version plus a diagnostics
// array whose entries carry file/line/column/analyzer/message. CI parsers
// key on these exact names.
func TestJSONShape(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-json", seededPkg}, &stdout, &stderr); got != 2 {
		t.Fatalf("seeded violations: exit %d, want 2\nstderr: %s", got, stderr.String())
	}

	var report struct {
		SchemaVersion int `json:"schema_version"`
		Diagnostics   []map[string]any
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout.String())
	}
	if report.SchemaVersion != 1 {
		t.Fatalf("schema_version = %d, want 1", report.SchemaVersion)
	}
	if len(report.Diagnostics) == 0 {
		t.Fatal("-json on seeded violations produced an empty diagnostics array")
	}
	for _, key := range []string{"file", "line", "column", "analyzer", "message"} {
		if _, ok := report.Diagnostics[0][key]; !ok {
			t.Errorf("diagnostic entry missing %q field: %v", key, report.Diagnostics[0])
		}
	}
	d := report.Diagnostics[0]
	if d["file"] == "" || d["analyzer"] == "" || d["message"] == "" {
		t.Fatalf("diagnostic entry has empty identity fields: %v", d)
	}
	if line, ok := d["line"].(float64); !ok || line < 1 {
		t.Fatalf("diagnostic line = %v, want a positive number", d["line"])
	}
}

// TestTimingFlag keeps -time wired: one wall-time line per active
// analyzer on stderr, none on stdout.
func TestTimingFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-time", cleanPkg}, &stdout, &stderr); got != 0 {
		t.Fatalf("clean package with -time: exit %d, want 0\nstderr: %s", got, stderr.String())
	}
	for _, a := range analyzers {
		if !strings.Contains(stderr.String(), a.Name) {
			t.Errorf("-time output missing analyzer %s:\n%s", a.Name, stderr.String())
		}
	}
	if stdout.Len() != 0 {
		t.Fatalf("-time leaked onto stdout:\n%s", stdout.String())
	}
}
