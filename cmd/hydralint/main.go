// Command hydralint runs the hydranet static-invariant analyzers
// (framepool, determinism — including the domain-partition fence —
// zeroalloc, lockorder, exhaustive) over Go packages. It works two ways:
//
// Standalone, over package patterns:
//
//	go run ./cmd/hydralint ./...
//	go run ./cmd/hydralint -json ./internal/netsim
//	go run ./cmd/hydralint -determinism=false ./...
//	go run ./cmd/hydralint -time ./...
//
// As a vet tool, which reuses the build cache's export data per package
// unit exactly the way the real go/analysis unitchecker does:
//
//	go vet -vettool=$(go env GOPATH)/bin/hydralint ./...
//
// Exit status: 0 when clean, 1 on an internal or load error, 2 when
// diagnostics were reported (the go vet convention).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hydranet/internal/lint"
	"hydranet/internal/lint/determinism"
	"hydranet/internal/lint/exhaustive"
	"hydranet/internal/lint/framepool"
	"hydranet/internal/lint/load"
	"hydranet/internal/lint/lockorder"
	"hydranet/internal/lint/zeroalloc"
)

// version participates in go vet's content-addressed caching: bump it when
// analyzer behavior changes so stale cached verdicts are not replayed.
const version = "hydralint-3"

// schemaVersion identifies the -json output shape; consumers pin it so a
// field rename cannot silently break CI parsers.
const schemaVersion = 1

var analyzers = []*lint.Analyzer{
	framepool.Analyzer,
	determinism.Analyzer,
	zeroalloc.Analyzer,
	lockorder.Analyzer,
	exhaustive.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The go vet driver protocol probes the tool before using it:
	// `-V=full` must print a version fingerprint, `-flags` the flags the
	// tool accepts (JSON). Handle both before normal flag parsing.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			fmt.Fprintf(stdout, "hydralint version %s\n", version)
			return 0
		}
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Fprintln(stdout, "[]")
		return 0
	}

	fs := flag.NewFlagSet("hydralint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	timing := fs.Bool("time", false, "report per-analyzer wall time on stderr")
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" analyzer: "+a.Doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: hydralint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	active := activeAnalyzers(enabled)
	if len(active) == 0 {
		fmt.Fprintln(stderr, "hydralint: every analyzer is disabled")
		return 1
	}

	// go vet hands the tool a single JSON config file per package unit.
	if fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg") {
		return unitcheck(fs.Arg(0), active)
	}

	return standalone(fs.Args(), active, *jsonOut, *timing, stdout, stderr)
}

func activeAnalyzers(enabled map[string]*bool) []*lint.Analyzer {
	var out []*lint.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// --- standalone mode ---

func standalone(patterns []string, active []*lint.Analyzer, jsonOut, timing bool, stdout, stderr io.Writer) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "hydralint:", err)
		return 1
	}
	pkgs, err := load.Packages(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "hydralint:", err)
		return 1
	}

	var diags []lint.Diagnostic
	spent := map[string]time.Duration{}
	for _, pkg := range pkgs {
		for _, a := range active {
			pass := lint.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, &diags)
			start := time.Now()
			err := a.Run(pass)
			spent[a.Name] += time.Since(start)
			if err != nil {
				fmt.Fprintf(stderr, "hydralint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				return 1
			}
		}
	}
	if timing {
		for _, a := range active {
			fmt.Fprintf(stderr, "hydralint: %-12s %s\n", a.Name, spent[a.Name].Round(time.Microsecond))
		}
	}
	lint.SortDiagnostics(diags)
	emit(stdout, diags, cwd, jsonOut)
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// emit prints diagnostics with paths relative to base when that shortens
// them.
func emit(w io.Writer, diags []lint.Diagnostic, base string, jsonOut bool) {
	if jsonOut {
		type jd struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		type report struct {
			SchemaVersion int  `json:"schema_version"`
			Diagnostics   []jd `json:"diagnostics"`
		}
		out := report{SchemaVersion: schemaVersion, Diagnostics: make([]jd, 0, len(diags))}
		for _, d := range diags {
			out.Diagnostics = append(out.Diagnostics, jd{relativize(base, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "\t")
		enc.Encode(out)
		return
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n", relativize(base, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
}

func relativize(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// --- go vet unitchecker mode ---

// vetConfig mirrors the JSON config the go vet driver writes for each
// package unit (cmd/go's internal vetConfig / x/tools unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string, active []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hydralint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hydralint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The driver requires the facts file to exist even though hydralint
	// exchanges no facts between packages.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "hydralint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "hydralint:", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "hydralint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	var diags []lint.Diagnostic
	for _, a := range active {
		pass := lint.NewPass(a, fset, files, tpkg, info, &diags)
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "hydralint: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
	}
	lint.SortDiagnostics(diags)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
