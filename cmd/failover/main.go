// Command failover measures HydraNet-FT failure detection and fail-over
// latency (ablation A1): a client streams through a replicated echo
// service, the primary is killed mid-stream, and the tool reports how long
// the redirector took to reconfigure and how long until the client's byte
// stream resumed — swept over the failure estimator's retransmission
// threshold (the paper's Section 4.3 trade-off).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"hydranet/internal/prof"
	"hydranet/internal/sweep"
	"hydranet/internal/testbed"
)

// row is one threshold's result in -json output (durations in milliseconds).
type row struct {
	Threshold      int     `json:"threshold"`
	DetectMS       float64 `json:"detect_ms"`
	ResumeMS       float64 `json:"resume_ms"`
	Suspicions     uint64  `json:"suspicions"`
	FalseReconfigs int     `json:"false_reconfigs"`
	ClientError    string  `json:"client_error,omitempty"`
	Violations     int     `json:"violations,omitempty"`
}

func main() {
	backups := flag.Int("backups", 1, "number of backup replicas")
	seed := flag.Int64("seed", 1, "simulation seed")
	loss := flag.Float64("loss", 0, "link loss probability (for false-positive measurement)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the table")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations (each threshold is an independent run)")
	workers := flag.Int("workers", 1, "worker threads inside each simulation (domain-partitioned parallel run)")
	pcapPrefix := flag.String("pcap", "", "capture each run to PREFIX-t<threshold>.pcap")
	flightPrefix := flag.String("flight", "", "flight-record each run; dump PREFIX-t<threshold>.{pcap,json} when the failover probe fires")
	spansPrefix := flag.String("spans", "", "write each run's ft-TCP span timeline to PREFIX-t<threshold>.json")
	seriesPrefix := flag.String("series", "", "export each run's time series (with health verdicts) to PREFIX-t<threshold>.jsonl")
	sampleEvery := flag.Duration("sample-every", 0, "telemetry sampling cadence for -series (default 100ms of virtual time)")
	profPrefix := flag.String("prof", "", "write each run's hydraprof profile to PREFIX-t<threshold>.prof.json; render with hydrascope profile")
	invariants := flag.Bool("invariants", false, "run the online protocol-invariant monitor in every run; exit 1 on any violation")
	auditPrefix := flag.String("audit", "", "write each run's invariant audit report to PREFIX-t<threshold>.audit.json (implies -invariants)")
	cpuProfile := flag.String("cpuprofile", "", "write a Go runtime CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a Go runtime heap profile to this file at exit")
	flag.Parse()

	stopPprof, err := prof.StartPprof(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "failover: pprof: %v\n", err)
		os.Exit(1)
	}

	// In-simulation workers multiply the sweep's fan-out; keep the product
	// within the machine so neither layer's parallelism starves the other.
	*parallel = sweep.Budget(*parallel, *workers)

	thresholds := []int{1, 2, 3, 4, 6, 8}
	rows := sweep.Map(*parallel, len(thresholds), func(i int) row {
		cfg := testbed.FailoverConfig{
			Threshold: thresholds[i],
			Backups:   *backups,
			Seed:      *seed,
			Loss:      *loss,
			Workers:   *workers,
		}
		// One capture file set per threshold: the sweep runs each threshold
		// as an independent simulation, possibly in parallel.
		if *pcapPrefix != "" {
			cfg.PcapPath = fmt.Sprintf("%s-t%d.pcap", *pcapPrefix, thresholds[i])
		}
		if *flightPrefix != "" {
			cfg.FlightPrefix = fmt.Sprintf("%s-t%d", *flightPrefix, thresholds[i])
		}
		if *spansPrefix != "" {
			cfg.SpansPath = fmt.Sprintf("%s-t%d.json", *spansPrefix, thresholds[i])
		}
		if *seriesPrefix != "" {
			cfg.SeriesPath = fmt.Sprintf("%s-t%d.jsonl", *seriesPrefix, thresholds[i])
			cfg.SampleEvery = *sampleEvery
		}
		if *profPrefix != "" {
			cfg.ProfilePath = fmt.Sprintf("%s-t%d.prof.json", *profPrefix, thresholds[i])
		}
		cfg.Invariants = *invariants
		if *auditPrefix != "" {
			cfg.AuditPath = fmt.Sprintf("%s-t%d.audit.json", *auditPrefix, thresholds[i])
		}
		res := testbed.MeasureFailover(cfg)
		r := row{
			Threshold:      thresholds[i],
			DetectMS:       res.Detected.Seconds() * 1000,
			ResumeMS:       res.Resumed.Seconds() * 1000,
			Suspicions:     res.Suspicions,
			FalseReconfigs: res.FalseReconfigs,
			Violations:     res.Violations,
		}
		if res.ClientError != nil {
			r.ClientError = res.ClientError.Error()
		}
		return r
	})

	totalViolations := 0
	for _, r := range rows {
		totalViolations += r.Violations
	}

	finishPprof := func() {
		if err := stopPprof(); err != nil {
			fmt.Fprintf(os.Stderr, "failover: pprof: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"backups": *backups, "seed": *seed, "loss": *loss, "results": rows,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "failover: %v\n", err)
			os.Exit(1)
		}
		finishPprof()
		if totalViolations > 0 {
			os.Exit(1)
		}
		return
	}

	fmt.Printf("HydraNet-FT fail-over latency vs detection threshold (%d backup(s), seed %d)\n\n",
		*backups, *seed)
	w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "threshold\tdetect [ms]\tresume [ms]\tsuspicions\tfalse reconfigs\t")
	for _, r := range rows {
		if r.ClientError != "" {
			fmt.Fprintf(w, "%d\tclient connection failed: %s\t\t\t\t\n", r.Threshold, r.ClientError)
			continue
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%d\t%d\t\n", r.Threshold,
			ms(time.Duration(r.DetectMS*float64(time.Millisecond))),
			ms(time.Duration(r.ResumeMS*float64(time.Millisecond))),
			r.Suspicions, r.FalseReconfigs)
	}
	w.Flush()
	fmt.Println("\ndetect: crash → redirector reconfiguration; resume: crash → first new byte at the client")
	if *invariants || *auditPrefix != "" {
		if totalViolations > 0 {
			fmt.Printf("invariants: %d VIOLATIONS across the sweep\n", totalViolations)
		} else {
			fmt.Println("invariants: clean across the sweep")
		}
	}
	finishPprof()
	if totalViolations > 0 {
		os.Exit(1)
	}
}

func ms(d time.Duration) string {
	if d == 0 {
		return "never"
	}
	return fmt.Sprintf("%.0f", d.Seconds()*1000)
}
