// Command failover measures HydraNet-FT failure detection and fail-over
// latency (ablation A1): a client streams through a replicated echo
// service, the primary is killed mid-stream, and the tool reports how long
// the redirector took to reconfigure and how long until the client's byte
// stream resumed — swept over the failure estimator's retransmission
// threshold (the paper's Section 4.3 trade-off).
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"hydranet/internal/testbed"
)

func main() {
	backups := flag.Int("backups", 1, "number of backup replicas")
	seed := flag.Int64("seed", 1, "simulation seed")
	loss := flag.Float64("loss", 0, "link loss probability (for false-positive measurement)")
	flag.Parse()

	fmt.Printf("HydraNet-FT fail-over latency vs detection threshold (%d backup(s), seed %d)\n\n",
		*backups, *seed)
	w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "threshold\tdetect [ms]\tresume [ms]\tsuspicions\tfalse reconfigs\t")
	for _, threshold := range []int{1, 2, 3, 4, 6, 8} {
		res := testbed.MeasureFailover(testbed.FailoverConfig{
			Threshold: threshold,
			Backups:   *backups,
			Seed:      *seed,
			Loss:      *loss,
		})
		if res.ClientError != nil {
			fmt.Fprintf(w, "%d\tclient connection failed: %v\t\t\t\t\n", threshold, res.ClientError)
			continue
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%d\t%d\t\n",
			threshold, ms(res.Detected), ms(res.Resumed), res.Suspicions, res.FalseReconfigs)
	}
	w.Flush()
	fmt.Println("\ndetect: crash → redirector reconfiguration; resume: crash → first new byte at the client")
}

func ms(d time.Duration) string {
	if d == 0 {
		return "never"
	}
	return fmt.Sprintf("%.0f", d.Seconds()*1000)
}
