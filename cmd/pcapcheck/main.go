// Command pcapcheck validates pcap files with the repo's own reader — the
// golden check CI runs on captures emitted by hydranet-sim, so the format
// stays Wireshark-compatible without external tooling in the loop. For each
// file it verifies the global header, walks every record, checks timestamps
// are nondecreasing and every first-fragment record parses as IPv4, and
// prints a one-line summary of what was on the wire.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hydranet/internal/capture"
	"hydranet/internal/ipv4"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pcapcheck FILE...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "pcapcheck: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func check(path string) error {
	f, err := capture.ReadFile(path)
	if err != nil {
		return err
	}
	if f.LinkType != capture.LinkTypeRaw {
		return fmt.Errorf("linktype %d, want %d (LINKTYPE_RAW)", f.LinkType, capture.LinkTypeRaw)
	}
	var tcp, udp, ipip, innerTCP, frags int
	last := time.Duration(-1)
	for i, r := range f.Records {
		if r.Ts < last {
			return fmt.Errorf("record %d: timestamp %v before predecessor %v", i, r.Ts, last)
		}
		last = r.Ts
		if len(r.Data) < ipv4.HeaderLen || r.Data[0]>>4 != 4 {
			return fmt.Errorf("record %d: not an IPv4 packet", i)
		}
		if fragOffset := (int(r.Data[6])<<8 | int(r.Data[7])) & 0x1fff; fragOffset != 0 {
			frags++ // continuation of a fragmented packet: no header inside
			continue
		}
		switch r.Data[9] {
		case ipv4.ProtoTCP:
			tcp++
		case ipv4.ProtoUDP:
			udp++
		case ipv4.ProtoIPIP:
			ipip++
			inner := r.Data[ipv4.HeaderLen:]
			if len(inner) < ipv4.HeaderLen || inner[0]>>4 != 4 {
				return fmt.Errorf("record %d: IP-in-IP payload is not IPv4", i)
			}
			if inner[9] == ipv4.ProtoTCP {
				innerTCP++
			}
		}
	}
	fmt.Printf("%s: %d records ok — %d tcp, %d udp, %d ipip (%d wrapping tcp), %d fragment continuations\n",
		path, len(f.Records), tcp, udp, ipip, innerTCP, frags)
	return nil
}
