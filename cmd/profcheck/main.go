// Command profcheck validates Chrome trace-event (Perfetto) JSON files
// exported by `hydrascope profile -trace` — the golden check CI runs on
// traces emitted from -prof runs, so the export stays loadable by
// https://ui.perfetto.dev without external tooling in the loop. For each
// file it verifies the container shape, walks every event, checks that
// slices carry timestamps and durations on known tracks, that every used
// track has thread metadata, that flow arrows pair start/finish 1:1 by id,
// and that per-track slice timestamps are nondecreasing; it prints a
// one-line summary of what was in the trace.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// event mirrors the fields profcheck validates; unknown fields are ignored
// so the exporter can grow args freely.
type event struct {
	Name string   `json:"name"`
	Cat  string   `json:"cat"`
	Ph   string   `json:"ph"`
	TS   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
	S    string   `json:"s"`
	ID   *int     `json:"id"`
}

type trace struct {
	TraceEvents []event `json:"traceEvents"`
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: profcheck FILE...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "profcheck: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tr trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return fmt.Errorf("no traceEvents")
	}

	named := map[int]bool{} // tids with thread_name metadata
	lastTS := map[int]float64{}
	flowStart := map[int]int{}  // flow id -> "s" count
	flowFinish := map[int]int{} // flow id -> "f" count
	var slices, instants, flows int

	for i, e := range tr.TraceEvents {
		if e.Ph == "" {
			return fmt.Errorf("event %d: missing ph", i)
		}
		if e.Pid == nil {
			return fmt.Errorf("event %d (%s %q): missing pid", i, e.Ph, e.Name)
		}
		if e.Tid == nil {
			return fmt.Errorf("event %d (%s %q): missing tid", i, e.Ph, e.Name)
		}
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				named[*e.Tid] = true
			}
		case "X":
			slices++
			if e.TS == nil || e.Dur == nil {
				return fmt.Errorf("event %d: X slice %q missing ts or dur", i, e.Name)
			}
			if *e.Dur < 0 {
				return fmt.Errorf("event %d: X slice %q with negative dur %v", i, e.Name, *e.Dur)
			}
			if last, ok := lastTS[*e.Tid]; ok && *e.TS < last {
				return fmt.Errorf("event %d: tid %d slice ts %v before predecessor %v",
					i, *e.Tid, *e.TS, last)
			}
			lastTS[*e.Tid] = *e.TS
		case "i":
			instants++
			if e.TS == nil {
				return fmt.Errorf("event %d: instant %q missing ts", i, e.Name)
			}
			if e.S == "" {
				return fmt.Errorf("event %d: instant %q missing scope", i, e.Name)
			}
		case "s", "f":
			flows++
			if e.TS == nil {
				return fmt.Errorf("event %d: flow %s missing ts", i, e.Ph)
			}
			if e.ID == nil {
				return fmt.Errorf("event %d: flow %s missing id", i, e.Ph)
			}
			if e.Ph == "s" {
				flowStart[*e.ID]++
			} else {
				flowFinish[*e.ID]++
			}
		default:
			return fmt.Errorf("event %d: unknown phase %q", i, e.Ph)
		}
	}

	// Every track that carries events must be named, or the viewer shows
	// anonymous threads.
	for tid := range lastTS {
		if !named[tid] {
			return fmt.Errorf("tid %d has slices but no thread_name metadata", tid)
		}
	}
	// Flow arrows must pair exactly: a dangling start or finish renders as
	// an arrow into nowhere.
	for id, n := range flowStart {
		if flowFinish[id] != n {
			return fmt.Errorf("flow id %d: %d starts but %d finishes", id, n, flowFinish[id])
		}
	}
	for id, n := range flowFinish {
		if flowStart[id] != n {
			return fmt.Errorf("flow id %d: %d finishes but %d starts", id, n, flowStart[id])
		}
	}

	fmt.Printf("%s: %d events ok — %d slices on %d tracks, %d barrier instants, %d flow endpoints (%d arrows)\n",
		path, len(tr.TraceEvents), slices, len(lastTS), instants, flows, len(flowStart))
	return nil
}
