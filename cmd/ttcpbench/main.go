// Command ttcpbench regenerates the paper's Figure 4: ttcp throughput
// against write size for the four testbed configurations (clean kernel, no
// redirection, primary only, primary and backup). With -repeat > 1 each
// point is averaged over several seeds and reported as mean ± std.
package main

import (
	"flag"
	"fmt"

	"hydranet/internal/metrics"
	"hydranet/internal/testbed"
)

func main() {
	total := flag.Int("bytes", 512*1024, "bytes transferred per measurement point")
	seed := flag.Int64("seed", 1, "base simulation seed")
	backups := flag.Int("backups", 1, "backup replicas in the primary-and-backup case")
	repeat := flag.Int("repeat", 1, "seeds per point (mean ± std when > 1)")
	flag.Parse()

	fmt.Printf("ttcp throughput measurements for HydraNet-FT (Figure 4)\n")
	fmt.Printf("transfer volume %d bytes per point, %d run(s) per point, base seed %d\n\n",
		*total, *repeat, *seed)

	header := []string{"packet size [B]"}
	for _, c := range testbed.Figure4Cases {
		header = append(header, c.String())
	}
	table := metrics.NewTable(header...)
	for _, size := range testbed.Figure4Sizes {
		row := []string{fmt.Sprintf("%d", size)}
		for _, c := range testbed.Figure4Cases {
			var sum metrics.Summary
			failed := false
			for r := 0; r < *repeat; r++ {
				res := testbed.Run(testbed.Config{
					Case: c, BufLen: size, TotalBytes: *total,
					Seed: *seed + int64(r), Backups: *backups,
				})
				if res.Err != nil {
					failed = true
					break
				}
				sum.Add(res.ThroughputKBps())
			}
			if failed {
				row = append(row, "ERR")
				continue
			}
			if *repeat > 1 {
				row = append(row, sum.String())
			} else {
				row = append(row, fmt.Sprintf("%.0f", sum.Mean()))
			}
		}
		table.AddRow(row...)
	}
	fmt.Print(table)
	fmt.Println("\nthroughput in kBytes/sec; rows correspond to the paper's x-axis")
}
