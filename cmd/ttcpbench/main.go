// Command ttcpbench regenerates the paper's Figure 4: ttcp throughput
// against write size for the four testbed configurations (clean kernel, no
// redirection, primary only, primary and backup). With -repeat > 1 each
// point is averaged over several seeds and reported as mean ± std.
//
// Runs fan out across -parallel workers: every run owns its own scheduler,
// so results are bit-identical regardless of worker count. -json writes a
// machine-readable benchmark record (BENCH_core.json) with events/sec,
// frames/sec and wall time per measurement point, so the simulator's own
// performance is tracked alongside the figures it reproduces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hydranet/internal/metrics"
	"hydranet/internal/prof"
	"hydranet/internal/scope"
	"hydranet/internal/sweep"
	"hydranet/internal/testbed"
)

type job struct {
	size int
	c    testbed.Case
	rep  int
}

type jobResult struct {
	kbps   float64
	err    error
	info   testbed.RunInfo
	allocs uint64 // heap allocations during the run; valid only when serial
}

// The JSON schema lives in internal/scope so hydrascope diff can gate on
// the same structure this command writes.

func main() {
	total := flag.Int("bytes", 512*1024, "bytes transferred per measurement point")
	seed := flag.Int64("seed", 1, "base simulation seed")
	backups := flag.Int("backups", 1, "backup replicas in the primary-and-backup case")
	repeat := flag.Int("repeat", 1, "seeds per point (mean ± std when > 1)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations (1 = serial; also enables allocs/op in -json)")
	workers := flag.Int("workers", 1, "worker threads inside each simulation (domain-partitioned parallel run; results are identical for every count)")
	scalePath := flag.String("scale", "", "run the pod-scaling workload at 1/2/4/8 in-simulation workers and write a BENCH_scale JSON record to this file")
	scalePods := flag.Int("scale-pods", 8, "pods in the -scale workload (one synchronization domain each)")
	jsonPath := flag.String("json", "", "write machine-readable results to this file")
	pcapPath := flag.String("pcap", "", "additionally capture one primary-and-backup run (1024-byte writes) to this pcap file")
	seriesPath := flag.String("series", "", "additionally export time series of one primary-and-backup run (1024-byte writes) to this file (JSONL, or CSV with a .csv extension)")
	sampleEvery := flag.Duration("sample-every", 0, "telemetry sampling cadence for -series (default 100ms of virtual time)")
	profPath := flag.String("prof", "", "write hydraprof profiles: with -scale, PREFIX-w<N>.prof.json per worker count; otherwise profile one dedicated primary-and-backup run (1024-byte writes) to this file")
	invariants := flag.Bool("invariants", false, "run the online protocol-invariant monitor in every measurement run; exit 1 on any violation")
	cpuProfile := flag.String("cpuprofile", "", "write a Go runtime CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a Go runtime heap profile to this file at exit")
	flag.Parse()

	stopPprof, err := prof.StartPprof(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttcpbench: pprof:", err)
		os.Exit(1)
	}
	finishPprof := func() {
		if err := stopPprof(); err != nil {
			fmt.Fprintln(os.Stderr, "ttcpbench: pprof:", err)
			os.Exit(1)
		}
	}

	if *scalePath != "" {
		runScaleBench(*scalePath, *scalePods, *total, *seed, *profPath, *invariants)
		finishPprof()
		return
	}

	// In-simulation workers multiply the sweep's fan-out; keep the product
	// within the machine so neither layer's parallelism starves the other.
	*parallel = sweep.Budget(*parallel, *workers)

	fmt.Printf("ttcp throughput measurements for HydraNet-FT (Figure 4)\n")
	fmt.Printf("transfer volume %d bytes per point, %d run(s) per point, base seed %d, %d worker(s)\n\n",
		*total, *repeat, *seed, *parallel)

	var jobs []job
	for _, size := range testbed.Figure4Sizes {
		for _, c := range testbed.Figure4Cases {
			for r := 0; r < *repeat; r++ {
				jobs = append(jobs, job{size: size, c: c, rep: r})
			}
		}
	}

	serial := *parallel == 1
	start := time.Now()
	results := sweep.Map(*parallel, len(jobs), func(i int) jobResult {
		j := jobs[i]
		var before runtime.MemStats
		if serial {
			runtime.ReadMemStats(&before)
		}
		res, info := testbed.RunMeasured(testbed.Config{
			Case: j.c, BufLen: j.size, TotalBytes: *total,
			Seed: *seed + int64(j.rep), Backups: *backups,
			Workers: *workers, Invariants: *invariants,
		})
		out := jobResult{kbps: res.ThroughputKBps(), err: res.Err, info: info}
		if serial {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			out.allocs = after.Mallocs - before.Mallocs
		}
		return out
	})
	wall := time.Since(start)

	byKey := make(map[job]jobResult, len(results))
	for i, r := range results {
		byKey[jobs[i]] = r
	}

	header := []string{"packet size [B]"}
	for _, c := range testbed.Figure4Cases {
		header = append(header, c.String())
	}
	table := metrics.NewTable(header...)
	var entries []scope.BenchEntry
	for _, size := range testbed.Figure4Sizes {
		row := []string{fmt.Sprintf("%d", size)}
		for _, c := range testbed.Figure4Cases {
			var sum metrics.Summary
			failed := false
			for r := 0; r < *repeat; r++ {
				jr := byKey[job{size: size, c: c, rep: r}]
				if jr.err != nil {
					failed = true
					break
				}
				sum.Add(jr.kbps)
			}
			if failed {
				row = append(row, "ERR")
				continue
			}
			if *repeat > 1 {
				row = append(row, sum.String())
			} else {
				row = append(row, fmt.Sprintf("%.0f", sum.Mean()))
			}
			jr := byKey[job{size: size, c: c, rep: 0}]
			e := scope.BenchEntry{
				Case:           c.String(),
				BufLen:         size,
				ThroughputKBps: sum.Mean(),
				Events:         jr.info.Events,
				Frames:         jr.info.Frames,
				WallMS:         float64(jr.info.Wall.Microseconds()) / 1000,
			}
			if s := jr.info.Wall.Seconds(); s > 0 {
				e.EventsPerSec = float64(jr.info.Events) / s
				e.FramesPerSec = float64(jr.info.Frames) / s
			}
			if serial && jr.info.Events > 0 {
				e.AllocsPerEvent = float64(jr.allocs) / float64(jr.info.Events)
			}
			entries = append(entries, e)
		}
		table.AddRow(row...)
	}
	fmt.Print(table)
	fmt.Println("\nthroughput in kBytes/sec; rows correspond to the paper's x-axis")
	fmt.Printf("swept %d runs in %v\n", len(jobs), wall.Round(time.Millisecond))
	if *invariants {
		totalViolations := 0
		for _, r := range results {
			totalViolations += r.info.Violations
		}
		if totalViolations > 0 {
			fmt.Printf("invariants: %d VIOLATIONS across the sweep\n", totalViolations)
			finishPprof()
			os.Exit(1)
		}
		fmt.Println("invariants: clean across the sweep")
	}

	if *pcapPath != "" {
		// One extra, dedicated capture run: capturing inside the sweep
		// would cost every measurement point pcap I/O and produce a file
		// per job. The full-FT 1024-byte configuration is the most
		// interesting one on the wire (tunnel copies plus the ack chain).
		res := testbed.Run(testbed.Config{
			Case: testbed.CasePrimaryBackup, BufLen: 1024, TotalBytes: *total,
			Seed: *seed, Backups: *backups, PcapPath: *pcapPath,
		})
		if res.Err != nil {
			fmt.Fprintln(os.Stderr, "ttcpbench: capture run:", res.Err)
			os.Exit(1)
		}
		fmt.Printf("captured primary-and-backup run (1024-byte writes) to %s\n", *pcapPath)
	}

	if *seriesPath != "" {
		// Same dedicated-run pattern as -pcap: sampling inside the sweep
		// would add telemetry cost to every measurement point.
		res := testbed.Run(testbed.Config{
			Case: testbed.CasePrimaryBackup, BufLen: 1024, TotalBytes: *total,
			Seed: *seed, Backups: *backups,
			SeriesPath: *seriesPath, SampleEvery: *sampleEvery,
		})
		if res.Err != nil {
			fmt.Fprintln(os.Stderr, "ttcpbench: series run:", res.Err)
			os.Exit(1)
		}
		fmt.Printf("exported primary-and-backup series (1024-byte writes) to %s\n", *seriesPath)
	}

	if *profPath != "" {
		// Same dedicated-run pattern again: profiling inside the sweep would
		// attach collectors to every measurement point.
		res := testbed.Run(testbed.Config{
			Case: testbed.CasePrimaryBackup, BufLen: 1024, TotalBytes: *total,
			Seed: *seed, Backups: *backups,
			Workers: *workers, ProfilePath: *profPath,
		})
		if res.Err != nil {
			fmt.Fprintln(os.Stderr, "ttcpbench: profile run:", res.Err)
			os.Exit(1)
		}
		fmt.Printf("profiled primary-and-backup run (1024-byte writes) to %s (render with: hydrascope profile %s)\n",
			*profPath, *profPath)
	}

	if *jsonPath != "" {
		bf := scope.BenchFile{
			Description: "HydraNet-FT simulator core performance per Figure-4 case",
			TotalBytes:  *total,
			Seed:        *seed,
			Parallel:    *parallel,
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			WallMS:      float64(wall.Microseconds()) / 1000,
			Entries:     entries,
		}
		data, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ttcpbench:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ttcpbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	finishPprof()
}

// scaleWorkerCounts are the -scale sweep's x-axis.
var scaleWorkerCounts = []int{1, 2, 4, 8}

// runScaleBench measures the parallel core: the same pod-scaling workload at
// 1, 2, 4 and 8 in-simulation worker threads. Throughput, events and frames
// are simulation observables and must be identical across the rows — the
// wall-clock column is the one the partitioned scheduler exists to shrink.
// profPrefix, when set, writes a hydraprof profile per worker count to
// PREFIX-w<N>.prof.json alongside the JSON record. invariants attaches the
// protocol-invariant monitor to every row; any violation exits 1.
func runScaleBench(path string, pods, total int, seed int64, profPrefix string, invariants bool) {
	fmt.Printf("parallel-core scaling: %d pods (one synchronization domain each), %d bytes per pod, seed %d\n\n",
		pods, total, seed)

	table := metrics.NewTable("workers", "wall [ms]", "speedup", "agg kB/s", "events", "handoffs", "ties")
	var entries []scope.BenchEntry
	var baseline time.Duration
	totalViolations := 0
	start := time.Now()
	for _, w := range scaleWorkerCounts {
		cfg := testbed.ScaleConfig{
			Pods: pods, Workers: w, TotalBytes: total, Seed: seed,
			Invariants: invariants,
		}
		if profPrefix != "" {
			cfg.ProfilePath = fmt.Sprintf("%s-w%d.prof.json", profPrefix, w)
		}
		r := testbed.RunScale(cfg)
		totalViolations += r.Violations
		if w == 1 {
			baseline = r.Wall
		}
		speedup := "1.00"
		if w > 1 && r.Wall > 0 {
			speedup = fmt.Sprintf("%.2f", float64(baseline)/float64(r.Wall))
		}
		table.AddRow(
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%.1f", float64(r.Wall.Microseconds())/1000),
			speedup,
			fmt.Sprintf("%.0f", r.AggKBps),
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%d", r.Handoffs),
			fmt.Sprintf("%d", r.MergeTies),
		)
		e := scope.BenchEntry{
			Case:           fmt.Sprintf("scale pods=%d workers=%d", pods, w),
			BufLen:         1024,
			ThroughputKBps: r.AggKBps,
			Events:         r.Events,
			Frames:         r.Frames,
			WallMS:         float64(r.Wall.Microseconds()) / 1000,
			// Informational scaling facts: wall-derived, never gated by
			// hydrascope diff.
			Workers: w,
		}
		if w > 1 && r.Wall > 0 && baseline > 0 {
			e.Speedup = float64(baseline) / float64(r.Wall)
		} else if w == 1 {
			e.Speedup = 1
		}
		if s := r.Wall.Seconds(); s > 0 {
			e.EventsPerSec = float64(r.Events) / s
			e.FramesPerSec = float64(r.Frames) / s
		}
		entries = append(entries, e)
		if cfg.ProfilePath != "" {
			fmt.Printf("profiled workers=%d to %s\n", w, cfg.ProfilePath)
		}
	}
	wall := time.Since(start)
	fmt.Print(table)
	fmt.Printf("\nswept %d worker counts in %v\n", len(scaleWorkerCounts), wall.Round(time.Millisecond))
	if invariants {
		if totalViolations > 0 {
			fmt.Printf("invariants: %d VIOLATIONS across the sweep\n", totalViolations)
			os.Exit(1)
		}
		fmt.Println("invariants: clean across the sweep")
	}

	bf := scope.BenchFile{
		Description: "HydraNet-FT parallel-core scaling: pod workload per worker count",
		TotalBytes:  total,
		Seed:        seed,
		Parallel:    1,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		WallMS:      float64(wall.Microseconds()) / 1000,
		Entries:     entries,
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttcpbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "ttcpbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
