// Command hydrascope analyzes exported HydraNet-FT telemetry: it renders a
// failover timeline report from a series export, renders a hydraprof
// parallel-core profile, and diffs two runs — series exports, ttcpbench
// results or hydraprof profiles — within a tolerance, exiting non-zero on
// regression so CI can gate on it.
//
// Usage:
//
//	hydrascope report RUN [-spans FILE]
//	hydrascope profile PROF [-trace OUT.json]
//	hydrascope audit FILE [-fail-on-violation]
//	hydrascope diff A B [-tol 0.02] [-stall-tol 0]
//
// report loads a -series export (JSONL or CSV, sniffed from content) and
// prints the run summary: the Table-2 failover phase timeline with
// per-phase retransmission/RTO/deposit activity, replica health verdicts,
// and a sorted per-series table. -spans adds the ft-TCP span summary.
//
// profile loads a hydraprof JSON profile (written by the -prof flag on
// hydranet-sim, ttcpbench and failover) and prints per-domain utilization,
// barrier-stall attribution, the causal critical path with its
// ideal-speedup bound, and a recommended -workers count. -trace also
// writes a Chrome trace-event (Perfetto) JSON rendering of the retained
// windows; open it at https://ui.perfetto.dev.
//
// audit loads a protocol-invariant audit report (written by the -audit
// flag on hydranet-sim, failover and the testbed) and renders the verdict,
// the per-rule evaluation census, the event mix and any retained forensic
// violation records. -fail-on-violation exits 1 when the run was dirty, so
// CI can gate on protocol correctness the same way diff gates on
// performance.
//
// diff compares two runs. Two series exports compare per-series run
// aggregates (counter totals, gauge mean/max) plus the failover phase
// durations; two ttcpbench JSON files compare the deterministic fields
// (throughput, events, frames) only — wall-clock fields are machine facts
// and never gated; two hydraprof profiles compare the deterministic fields
// (events, critical-path depth, hand-offs, window counts) at -tol and the
// wall-derived utilization/stall fractions at -stall-tol (0, the default,
// skips them). Any difference beyond tolerance is a regression: exit 1.
// Identical-seed runs diff clean and exit 0.
package main

import (
	"flag"
	"fmt"
	"os"

	"hydranet/internal/prof"
	"hydranet/internal/scope"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  hydrascope report RUN [-spans FILE]          render a run report
  hydrascope profile PROF [-trace OUT.json]    render a hydraprof profile
  hydrascope audit FILE [-fail-on-violation]   render an invariant audit report
  hydrascope diff A B [-tol 0.02] [-stall-tol 0]  diff two runs; exit 1 on regression
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "report":
		report(os.Args[2:])
	case "profile":
		profile(os.Args[2:])
	case "audit":
		audit(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "hydrascope: unknown subcommand %q\n", os.Args[1])
		usage()
	}
}

func report(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	spansPath := fs.String("spans", "", "also summarize this span timeline JSON")
	// As in diff: re-parse past the positional so trailing flags work.
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) > 1 {
		fs.Parse(rest[1:])
		if fs.NArg() != 0 {
			usage()
		}
	}
	if len(rest) < 1 {
		usage()
	}
	run, err := scope.LoadRunFile(rest[0])
	if err != nil {
		fatal(err)
	}
	var spans *scope.SpanReport
	if *spansPath != "" {
		if spans, err = scope.LoadSpanFile(*spansPath); err != nil {
			fatal(err)
		}
	}
	if err := scope.WriteReport(os.Stdout, run, spans); err != nil {
		fatal(err)
	}
}

func profile(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	tracePath := fs.String("trace", "", "also write a Chrome trace-event (Perfetto) JSON file")
	// As in diff: re-parse past the positional so trailing flags work.
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) > 1 {
		fs.Parse(rest[1:])
		if fs.NArg() != 0 {
			usage()
		}
	}
	if len(rest) < 1 {
		usage()
	}
	p, err := scope.LoadProfFile(rest[0])
	if err != nil {
		fatal(err)
	}
	if err := prof.Report(os.Stdout, p); err != nil {
		fatal(err)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		err = prof.WriteTrace(f, p)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace %s (load at https://ui.perfetto.dev)\n", *tracePath)
	}
}

func audit(args []string) {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	failOnViolation := fs.Bool("fail-on-violation", false, "exit 1 when the audited run recorded any violation")
	// As in diff: re-parse past the positional so trailing flags work.
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) > 1 {
		fs.Parse(rest[1:])
		if fs.NArg() != 0 {
			usage()
		}
	}
	if len(rest) < 1 {
		usage()
	}
	r, err := scope.LoadAuditFile(rest[0])
	if err != nil {
		fatal(err)
	}
	if err := scope.WriteAuditReport(os.Stdout, r); err != nil {
		fatal(err)
	}
	if *failOnViolation && !r.Clean {
		os.Exit(1)
	}
}

func diff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tol := fs.Float64("tol", 0.02, "relative tolerance before a difference is a regression")
	stallTol := fs.Float64("stall-tol", 0, "absolute tolerance for wall-derived profile util/stall fractions (0 skips them)")
	// Accept flags on either side of the two positionals: stdlib flag stops
	// at the first non-flag argument, so "diff A B -tol 0.05" needs the
	// tail re-parsed.
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) > 2 {
		fs.Parse(rest[2:])
		if fs.NArg() != 0 {
			usage()
		}
	}
	if len(rest) < 2 {
		usage()
	}
	pathA, pathB := rest[0], rest[1]

	var findings []scope.Finding
	var what string
	if scope.IsProfFile(pathA) || scope.IsProfFile(pathB) {
		what = "profile"
		a, err := scope.LoadProfFile(pathA)
		if err != nil {
			fatal(err)
		}
		b, err := scope.LoadProfFile(pathB)
		if err != nil {
			fatal(err)
		}
		findings = scope.DiffProf(a, b, *tol, *stallTol)
	} else if scope.IsBenchFile(pathA) || scope.IsBenchFile(pathB) {
		what = "bench"
		a, err := scope.LoadBenchFile(pathA)
		if err != nil {
			fatal(err)
		}
		b, err := scope.LoadBenchFile(pathB)
		if err != nil {
			fatal(err)
		}
		findings = scope.DiffBench(a, b, *tol)
	} else {
		what = "series"
		a, err := scope.LoadRunFile(pathA)
		if err != nil {
			fatal(err)
		}
		b, err := scope.LoadRunFile(pathB)
		if err != nil {
			fatal(err)
		}
		findings = scope.DiffRuns(a, b, *tol)
	}

	if len(findings) == 0 {
		fmt.Printf("hydrascope: %s diff clean (tol %.3g): %s == %s\n", what, *tol, pathA, pathB)
		return
	}
	fmt.Printf("hydrascope: %d %s regression(s) beyond tol %.3g (A=%s B=%s):\n",
		len(findings), what, *tol, pathA, pathB)
	for _, f := range findings {
		fmt.Printf("  %s\n", f)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hydrascope: %v\n", err)
	os.Exit(2)
}
