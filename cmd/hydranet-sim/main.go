// Command hydranet-sim runs a scripted HydraNet-FT scenario and narrates
// it: a client talks to a replicated echo service through a redirector,
// optionally the primary (or a backup) is crashed mid-stream, and the tool
// reports the timeline — registration, chain construction, suspicion,
// reconfiguration, promotion — plus final per-component statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hydranet"
	"hydranet/internal/app"
	"hydranet/internal/core"
	"hydranet/internal/trace"
)

func main() {
	replicas := flag.Int("replicas", 3, "total replicas (1 primary + N-1 backups)")
	bytes := flag.Int("bytes", 256*1024, "bytes the client streams through the echo service")
	crashAt := flag.Duration("crash-at", 400*time.Millisecond, "when to crash a replica (0 = never)")
	crashWho := flag.String("crash", "primary", "which replica to crash: primary, backup, none")
	threshold := flag.Int("threshold", 3, "failure detector retransmission threshold")
	seed := flag.Int64("seed", 1, "simulation seed")
	verbose := flag.Bool("v", false, "log every management reconfiguration")
	traceSegs := flag.Int("trace", 0, "emit up to N tcpdump-style segment trace lines")
	flag.Parse()

	if *replicas < 1 {
		fmt.Fprintln(os.Stderr, "hydranet-sim: need at least one replica")
		os.Exit(1)
	}

	net := hydranet.New(hydranet.Config{Seed: *seed})
	client := net.AddHost("client", hydranet.HostConfig{})
	rd := net.AddRedirector("rd", hydranet.HostConfig{})
	var hosts []*hydranet.Host
	for i := 0; i < *replicas; i++ {
		hosts = append(hosts, net.AddHost(fmt.Sprintf("s%d", i), hydranet.HostConfig{}))
	}
	link := hydranet.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	net.Link(client, rd.Host, link)
	for _, h := range hosts {
		net.Link(h, rd.Host, link)
	}
	net.AutoRoute()

	if *traceSegs > 0 {
		tr := trace.New(os.Stdout, net.Scheduler())
		tr.SetLimit(uint64(*traceSegs))
		tr.AttachTCP("client", client.TCP())
		for _, h := range hosts {
			tr.AttachTCP(h.Name(), h.TCP())
		}
	}

	logf := func(format string, args ...any) {
		fmt.Printf("%10s  %s\n", net.Now().Round(time.Microsecond), fmt.Sprintf(format, args...))
	}

	svc := hydranet.ServiceID{Addr: hydranet.MustAddr("192.20.225.20"), Port: 80}
	opts := hydranet.FTOptions{Detector: hydranet.DetectorParams{RetransmitThreshold: *threshold}}
	ftsvc, err := net.DeployFT(svc, rd, hosts, opts, func(c *hydranet.Conn) { app.Echo(c) })
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydranet-sim: %v\n", err)
		os.Exit(1)
	}
	rd.Daemon().OnReconfig(func(s core.ServiceID, failed []hydranet.Addr) {
		logf("redirector reconfigured %s: removed %v, chain now %v", s, failed, ftsvc.Chain())
	})
	logf("deployed %s across %d replicas", svc, *replicas)
	net.Settle()
	logf("chain established: %v (primary first)", ftsvc.Chain())

	conn, err := client.Dial(svc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydranet-sim: dial: %v\n", err)
		os.Exit(1)
	}
	received := 0
	buf := make([]byte, 8192)
	conn.OnReadable(func() {
		for {
			n := conn.Read(buf)
			if n == 0 {
				break
			}
			received += n
		}
	})
	conn.OnClosed(func(err error) {
		if err != nil {
			logf("CLIENT CONNECTION FAILED: %v", err)
		}
	})
	payload := make([]byte, *bytes)
	app.Source(conn, payload, false)
	logf("client streaming %d bytes through the fault-tolerant connection", *bytes)

	if *crashAt > 0 && *crashWho != "none" {
		net.RunFor(*crashAt)
		switch *crashWho {
		case "primary":
			dead := ftsvc.CrashPrimary()
			logf("CRASH: primary %s fail-stopped", dead.Name())
		case "backup":
			reps := ftsvc.Replicas()
			if len(reps) > 1 {
				reps[len(reps)-1].Host.Crash()
				logf("CRASH: backup %s fail-stopped", reps[len(reps)-1].Host.Name())
			}
		default:
			fmt.Fprintf(os.Stderr, "hydranet-sim: unknown -crash %q\n", *crashWho)
			os.Exit(1)
		}
	}

	// Run until the stream completes or a generous deadline passes.
	deadline := net.Now() + 5*time.Minute
	for received < *bytes && net.Now() < deadline {
		net.RunFor(time.Second)
	}
	logf("client received %d of %d bytes (%.1f%%)",
		received, *bytes, 100*float64(received)/float64(*bytes))
	logf("final chain: %v", ftsvc.Chain())

	fmt.Println("\ncomponent statistics:")
	rs := rd.Table().Stats()
	fmt.Printf("  redirector: %d FT matches, %d tunnel copies, %d passed through\n",
		rs.Multicast, rs.MulticastCopies, rs.PassedThrough)
	ds := rd.Daemon().Stats()
	fmt.Printf("  management: %d registrations, %d suspicions, %d probes, %d hosts failed\n",
		ds.Registrations, ds.Suspicions, ds.ProbesSent, ds.HostsFailed)
	for _, r := range ftsvc.Replicas() {
		ms := r.Host.FTManager().Stats()
		status := "alive"
		if !r.Host.Alive() {
			status = "CRASHED"
		}
		fmt.Printf("  %s (%s, %s): chain msgs %d sent / %d received, %d suspicions, %d promotions\n",
			r.Host.Name(), r.Port.Mode(), status,
			ms.ChainMsgsSent, ms.ChainMsgsReceived, ms.Suspicions, ms.Promotions)
	}
	if *verbose {
		fmt.Printf("\nvirtual time elapsed: %v\n", net.Now())
	}
	if received < *bytes {
		os.Exit(1)
	}
}
