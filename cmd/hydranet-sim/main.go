// Command hydranet-sim runs a scripted HydraNet-FT scenario and narrates
// it: a client talks to a replicated echo service through a redirector,
// optionally the primary (or a backup) is crashed mid-stream, and the tool
// reports the timeline — registration, chain construction, suspicion,
// reconfiguration, promotion — plus final per-component statistics.
//
// Observability flags:
//
//	-events <kinds>  stream selected bus events (comma-separated kind
//	                 names, or "all"); -events list shows the kinds
//	-v               shorthand for the management kinds (registration,
//	                 reconfig, suspicion, promotion, crash/restart)
//	-stats           print a net-wide counter summary at the end
//	-stats-json F    write the full snapshot (with failover timeline) to F
//	-prof F          write a hydraprof profile (per-domain utilization,
//	                 causal critical path) to F; render with
//	                 `hydrascope profile F`
//	-cpuprofile F    write a Go runtime CPU profile of the simulator to F
//	-memprofile F    write a Go runtime heap profile at exit to F
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hydranet"
	"hydranet/internal/app"
	"hydranet/internal/obs"
	"hydranet/internal/prof"
	"hydranet/internal/trace"
)

// verboseKinds are the management-plane events -v narrates.
var verboseKinds = []hydranet.EventKind{
	hydranet.KindRegistration, hydranet.KindReconfig, hydranet.KindSuspicion,
	hydranet.KindPromotion, hydranet.KindDemotion, hydranet.KindRecommission,
	hydranet.KindNodeCrash, hydranet.KindNodeRestart,
}

// parseKinds resolves a comma-separated -events pattern to kinds.
func parseKinds(pattern string) ([]hydranet.EventKind, error) {
	if pattern == "all" || pattern == "*" {
		return obs.Kinds(), nil
	}
	var out []hydranet.EventKind
	for _, name := range strings.Split(pattern, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		k, ok := obs.KindByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown event kind %q", name)
		}
		out = append(out, k)
	}
	return out, nil
}

func main() {
	replicas := flag.Int("replicas", 3, "total replicas (1 primary + N-1 backups)")
	bytes := flag.Int("bytes", 256*1024, "bytes the client streams through the echo service")
	crashAt := flag.Duration("crash-at", 400*time.Millisecond, "when to crash a replica (0 = never)")
	crashWho := flag.String("crash", "primary", "which replica to crash: primary, backup, none")
	threshold := flag.Int("threshold", 3, "failure detector retransmission threshold")
	seed := flag.Int64("seed", 1, "simulation seed")
	verbose := flag.Bool("v", false, "narrate management events (registration, reconfiguration, promotion)")
	events := flag.String("events", "", "stream bus events of these kinds (comma-separated, \"all\", or \"list\")")
	stats := flag.Bool("stats", false, "print net-wide statistics at the end")
	perf := flag.Bool("perf", false, "report simulator performance (events/sec, frames/sec, wall time)")
	statsJSON := flag.String("stats-json", "", "write the final snapshot as JSON to this file (\"-\" = stdout)")
	traceSegs := flag.Int("trace", 0, "emit up to N tcpdump-style segment trace lines")
	pcapPath := flag.String("pcap", "", "capture every frame (plus pre-encap tunnel copies) to this pcap file")
	flightPrefix := flag.String("flight", "", "run a flight recorder; dump PREFIX.pcap/PREFIX.json on failover (or at the end)")
	spansPath := flag.String("spans", "", "write the per-connection ft-TCP span timeline as JSON to this file (\"-\" = stdout)")
	seriesPath := flag.String("series", "", "export sampled time series (with replica health verdicts) to this file (JSONL, or CSV with a .csv extension)")
	sampleEvery := flag.Duration("sample-every", 0, "telemetry sampling cadence for -series (default 100ms of virtual time)")
	workers := flag.Int("workers", 1, "worker threads (domain-partitioned parallel run; every output is identical for every count)")
	profPath := flag.String("prof", "", "write a hydraprof profile (per-domain utilization, causal critical path) to this file; render with hydrascope profile")
	invariants := flag.Bool("invariants", false, "run the online protocol-invariant monitor; exit 1 on any violation")
	auditPath := flag.String("audit", "", "write the invariant audit report as JSON to this file (implies -invariants); inspect with hydrascope audit")
	cpuProfile := flag.String("cpuprofile", "", "write a Go runtime CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a Go runtime heap profile to this file at exit")
	flag.Parse()

	stopPprof, err := prof.StartPprof(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydranet-sim: pprof: %v\n", err)
		os.Exit(1)
	}

	if *events == "list" {
		for _, k := range obs.Kinds() {
			fmt.Println(k)
		}
		return
	}
	if *replicas < 1 {
		fmt.Fprintln(os.Stderr, "hydranet-sim: need at least one replica")
		os.Exit(1)
	}

	net := hydranet.New(hydranet.Config{Seed: *seed})
	client := net.AddHost("client", hydranet.HostConfig{})
	rd := net.AddRedirector("rd", hydranet.HostConfig{})
	var hosts []*hydranet.Host
	for i := 0; i < *replicas; i++ {
		hosts = append(hosts, net.AddHost(fmt.Sprintf("s%d", i), hydranet.HostConfig{}))
	}
	link := hydranet.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	net.Link(client, rd.Host, link)
	for _, h := range hosts {
		net.Link(h, rd.Host, link)
	}
	net.AutoRoute()

	if *workers > 1 {
		if *traceSegs > 0 {
			// The segment tracer prints inline from TCP emit sites, which run
			// in worker context on their domain's clock — serial only.
			fmt.Fprintln(os.Stderr, "hydranet-sim: -trace requires -workers 1")
			os.Exit(1)
		}
		if err := net.SetWorkers(*workers); err != nil {
			fmt.Fprintf(os.Stderr, "hydranet-sim: -workers: %v\n", err)
			os.Exit(1)
		}
	}

	// Attach after the partition (profiling wraps the per-domain schedulers)
	// and before any traffic, so the profile covers the whole scripted run.
	var profiler *hydranet.Profiler
	if *profPath != "" {
		profiler = net.StartProfile(hydranet.ProfileConfig{
			Scenario: fmt.Sprintf("hydranet-sim replicas=%d bytes=%d crash=%s workers=%d",
				*replicas, *bytes, *crashWho, *workers),
		})
	}

	// The monitor attaches after the partition (it consumes the
	// barrier-ordered replayed stream) and before DeployFT (it
	// reconstructs replica-set membership from registration events). The
	// scenario label deliberately omits the worker count: audit reports
	// from the same seed diff byte-identical across -workers.
	var mon *hydranet.Monitor
	if *invariants || *auditPath != "" {
		mon = net.StartMonitor(hydranet.MonitorConfig{
			Scenario: fmt.Sprintf("hydranet-sim replicas=%d bytes=%d crash=%s",
				*replicas, *bytes, *crashWho),
		})
	}

	if *traceSegs > 0 {
		tr := trace.New(os.Stdout, net.Scheduler())
		tr.SetLimit(uint64(*traceSegs))
		tr.AttachTCP("client", client.TCP())
		for _, h := range hosts {
			tr.AttachTCP(h.Name(), h.TCP())
		}
	}

	// -v and -events share one code path: both subscribe the same printer
	// to the observability bus, just for different kind sets.
	bus := net.Bus()
	watched, err := parseKinds(*events)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydranet-sim: -events: %v (try -events list)\n", err)
		os.Exit(1)
	}
	if *verbose {
		watched = append(watched, verboseKinds...)
	}
	if len(watched) > 0 {
		bus.Subscribe(func(e hydranet.Event) { fmt.Println(e) }, watched...)
	}
	probe := net.NewFailoverProbe()

	// Capture subsystems attach after the topology is final (taps cover
	// every link and redirector) and before any traffic, registration
	// included, hits the wire.
	var capt *hydranet.Capture
	var pcapFile *os.File
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hydranet-sim: -pcap: %v\n", err)
			os.Exit(1)
		}
		pcapFile = f
		if capt, err = net.StartCapture(f); err != nil {
			fmt.Fprintf(os.Stderr, "hydranet-sim: -pcap: %v\n", err)
			os.Exit(1)
		}
	}
	var flight *hydranet.FlightRecorder
	if *flightPrefix != "" {
		flight = net.StartFlightRecorder(0, 0)
		flight.DumpOnFailover(probe, *flightPrefix)
		if mon != nil {
			// A violation dumps the forensic bundle the instant it is
			// recorded, while the offending frames are still in the rings.
			flight.DumpOnViolation(mon, *flightPrefix+"-violation")
		}
	}
	var spans *hydranet.SpanCollector
	if *spansPath != "" || *stats || *seriesPath != "" {
		spans = net.NewSpanCollector()
	}
	var tel *hydranet.Telemetry
	if *seriesPath != "" {
		tel = net.StartSampler(hydranet.SamplerConfig{
			Every:  *sampleEvery,
			Spans:  spans,
			Health: &hydranet.HealthConfig{},
		})
		tel.AttachFailover(probe)
		tel.WatchReplicas(hosts...)
	}
	// kindCounts is a slice indexed by event kind, not a map: iterating it
	// at print time is deterministic. The -stats emission below still sorts
	// by kind name so the listing is stable under kind renumbering.
	var kindCounts []uint64
	if *stats {
		kindCounts = make([]uint64, len(obs.Kinds()))
		bus.Subscribe(func(e hydranet.Event) { kindCounts[e.Kind]++ })
	}

	logf := func(format string, args ...any) {
		fmt.Printf("%10s  %s\n", net.Now().Round(time.Microsecond), fmt.Sprintf(format, args...))
	}

	svc := hydranet.ServiceID{Addr: hydranet.MustAddr("192.20.225.20"), Port: 80}
	opts := hydranet.FTOptions{Detector: hydranet.DetectorParams{RetransmitThreshold: *threshold}}
	ftsvc, err := net.DeployFT(svc, rd, hosts, opts, func(c *hydranet.Conn) { app.Echo(c) })
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydranet-sim: %v\n", err)
		os.Exit(1)
	}
	logf("deployed %s across %d replicas", svc, *replicas)
	wallStart := time.Now()
	net.Settle()
	logf("chain established: %v (primary first)", ftsvc.Chain())

	conn, err := client.Dial(svc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydranet-sim: dial: %v\n", err)
		os.Exit(1)
	}
	received := 0
	buf := make([]byte, 8192)
	conn.OnReadable(func() {
		for {
			n := conn.Read(buf)
			if n == 0 {
				break
			}
			received += n
			// Publish on the client host's bus: in a partitioned run this is
			// the client domain's view (the callback runs in worker context),
			// merged deterministically at the next barrier; serial runs get
			// the net bus unchanged.
			if b := client.Bus(); b.Enabled(hydranet.KindClientDeliver) {
				b.Publish(hydranet.Event{
					Kind: hydranet.KindClientDeliver, Node: "client", Size: n,
				})
			}
		}
	})
	conn.OnClosed(func(err error) {
		if err != nil {
			logf("CLIENT CONNECTION FAILED: %v", err)
		}
	})
	payload := make([]byte, *bytes)
	app.Source(conn, payload, false)
	logf("client streaming %d bytes through the fault-tolerant connection", *bytes)

	if *crashAt > 0 && *crashWho != "none" {
		net.RunFor(*crashAt)
		switch *crashWho {
		case "primary":
			dead := ftsvc.CrashPrimary()
			logf("CRASH: primary %s fail-stopped", dead.Name())
		case "backup":
			reps := ftsvc.Replicas()
			if len(reps) > 1 {
				reps[len(reps)-1].Host.Crash()
				logf("CRASH: backup %s fail-stopped", reps[len(reps)-1].Host.Name())
			}
		default:
			fmt.Fprintf(os.Stderr, "hydranet-sim: unknown -crash %q\n", *crashWho)
			os.Exit(1)
		}
	}

	// Run until the stream completes or a generous deadline passes.
	deadline := net.Now() + 5*time.Minute
	for received < *bytes && net.Now() < deadline {
		net.RunFor(time.Second)
	}
	logf("client received %d of %d bytes (%.1f%%)",
		received, *bytes, 100*float64(received)/float64(*bytes))
	logf("final chain: %v", ftsvc.Chain())

	fmt.Println("\ncomponent statistics:")
	rs := rd.Table().Stats()
	fmt.Printf("  redirector: %d FT matches, %d tunnel copies, %d passed through\n",
		rs.Multicast, rs.MulticastCopies, rs.PassedThrough)
	ds := rd.Daemon().Stats()
	fmt.Printf("  management: %d registrations, %d suspicions, %d probes, %d hosts failed\n",
		ds.Registrations, ds.Suspicions, ds.ProbesSent, ds.HostsFailed)
	for _, r := range ftsvc.Replicas() {
		ms := r.Host.FTManager().Stats()
		status := "alive"
		if !r.Host.Alive() {
			status = "CRASHED"
		}
		fmt.Printf("  %s (%s, %s): chain msgs %d sent / %d received, %d suspicions, %d promotions\n",
			r.Host.Name(), r.Port.Mode(), status,
			ms.ChainMsgsSent, ms.ChainMsgsReceived, ms.Suspicions, ms.Promotions)
	}

	report := probe.Report()
	if report.CrashAt > 0 {
		fmt.Println("\nfailover timeline:")
		fmt.Printf("  crash            %v\n", report.CrashAt)
		fmt.Printf("  detection        %v\n", report.Detection)
		fmt.Printf("  reconfiguration  %v\n", report.Reconfiguration)
		fmt.Printf("  client stall     %v  (complete: %v)\n", report.ClientStall, report.Complete)
	}

	wall := time.Since(wallStart)

	if capt != nil {
		if err := capt.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "hydranet-sim: -pcap: %v\n", err)
			os.Exit(1)
		}
		if err := pcapFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hydranet-sim: -pcap: %v\n", err)
			os.Exit(1)
		}
		logf("pcap: %d records (%d pre-encap inner copies) written to %s",
			capt.Packets(), capt.InnerPackets(), *pcapPath)
	}
	if flight != nil {
		if flight.Dumps() == 0 {
			if err := flight.Dump(*flightPrefix); err != nil {
				fmt.Fprintf(os.Stderr, "hydranet-sim: -flight: %v\n", err)
				os.Exit(1)
			}
			logf("flight recorder dumped at end of run to %s.pcap / %s.json", *flightPrefix, *flightPrefix)
		} else {
			logf("flight recorder dumped on failover to %s.pcap / %s.json", *flightPrefix, *flightPrefix)
		}
	}
	if spans != nil && *spansPath != "" {
		if *spansPath == "-" {
			if err := spans.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "hydranet-sim: -spans: %v\n", err)
				os.Exit(1)
			}
		} else {
			f, err := os.Create(*spansPath)
			if err == nil {
				err = spans.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "hydranet-sim: -spans: %v\n", err)
				os.Exit(1)
			}
			logf("span timeline written to %s", *spansPath)
		}
	}
	if tel != nil {
		tel.Stop()
		if err := tel.WriteFile(*seriesPath); err != nil {
			fmt.Fprintf(os.Stderr, "hydranet-sim: -series: %v\n", err)
			os.Exit(1)
		}
		logf("time series (%d series, %d ticks) written to %s",
			tel.Set().Len(), tel.Ticks(), *seriesPath)
	}

	snap := net.Snapshot()
	if report.CrashAt > 0 {
		snap.Failover = &report
	}
	if *perf {
		events := net.EventsFired()
		var frames uint64
		for _, h := range snap.Hosts {
			frames += h.Frames.Sent
		}
		fmt.Printf("\nsimulator performance: %d events, %d frames in %v",
			events, frames, wall.Round(time.Microsecond))
		if s := wall.Seconds(); s > 0 {
			fmt.Printf(" (%.0f events/sec, %.0f frames/sec)", float64(events)/s, float64(frames)/s)
		}
		fmt.Println()
		if domains, w := net.Parallel(); domains > 1 {
			fmt.Printf("parallel core: %d domains on %d workers, %d cross-domain hand-offs, %d merge ties\n",
				domains, w, net.Handoffs(), net.MergeTies())
		}
	}
	if *stats {
		printSnapshot(snap)
		fmt.Println("  event counts:")
		type kindCount struct {
			name  string
			count uint64
		}
		var counts []kindCount
		for k, c := range kindCounts {
			if c > 0 {
				counts = append(counts, kindCount{obs.Kind(k).String(), c})
			}
		}
		sort.Slice(counts, func(i, j int) bool { return counts[i].name < counts[j].name })
		for _, kc := range counts {
			fmt.Printf("    %-16s %8d\n", kc.name, kc.count)
		}
		if spans != nil {
			if lag := spans.AckChainLag(); lag.Count > 0 {
				fmt.Printf("  ack-chain lag (ms):  %s\n", lag)
			}
			if stall := spans.DepositStall(); stall.Count > 0 {
				fmt.Printf("  deposit stall (ms):  %s\n", stall)
			}
		}
	}
	if *statsJSON != "" {
		out, err := snap.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hydranet-sim: -stats-json: %v\n", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if *statsJSON == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*statsJSON, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hydranet-sim: -stats-json: %v\n", err)
			os.Exit(1)
		}
	}
	if profiler != nil {
		if err := profiler.WriteFile(*profPath); err != nil {
			fmt.Fprintf(os.Stderr, "hydranet-sim: -prof: %v\n", err)
			os.Exit(1)
		}
		logf("hydraprof profile written to %s (render with: hydrascope profile %s)", *profPath, *profPath)
	}
	auditClean := true
	if mon != nil {
		audit := net.FinishAudit(mon)
		auditClean = audit.Clean
		if audit.Clean {
			fmt.Printf("\ninvariants: clean (%d checks over %d events, %d frames)\n",
				audit.Checks, audit.Events, audit.Frames)
		} else {
			fmt.Printf("\ninvariants: %d VIOLATIONS (%d checks over %d events):\n",
				audit.TotalViolations(), audit.Checks, audit.Events)
			for _, v := range audit.Violations {
				fmt.Printf("  %s\n", v)
			}
		}
		if *auditPath != "" {
			if err := audit.WriteJSON(*auditPath); err != nil {
				fmt.Fprintf(os.Stderr, "hydranet-sim: -audit: %v\n", err)
				os.Exit(1)
			}
			logf("audit report written to %s (render with: hydrascope audit %s)", *auditPath, *auditPath)
		}
	}
	if *verbose {
		fmt.Printf("\nvirtual time elapsed: %v\n", net.Now())
	}
	if err := stopPprof(); err != nil {
		fmt.Fprintf(os.Stderr, "hydranet-sim: pprof: %v\n", err)
		os.Exit(1)
	}
	if received < *bytes || !auditClean {
		os.Exit(1)
	}
}

// printSnapshot renders the net-wide snapshot as tables.
func printSnapshot(s hydranet.Snapshot) {
	fmt.Printf("\nnet-wide statistics at %v:\n", s.Time)
	fmt.Printf("  %-8s %6s %6s %6s | %8s %8s %6s %5s %5s | %10s %10s\n",
		"host", "frTx", "frRx", "frDrp", "segsOut", "segsIn", "rexmt", "rto", "fast", "bytesOut", "bytesIn")
	for _, h := range s.Hosts {
		mark := ""
		if !h.Alive {
			mark = " (down)"
		}
		fmt.Printf("  %-8s %6d %6d %6d | %8d %8d %6d %5d %5d | %10d %10d%s\n",
			h.Name, h.Frames.Sent, h.Frames.Received, h.Frames.Dropped,
			h.TCP.SegsOut, h.TCP.SegsIn,
			h.Conns.Retransmits, h.Conns.RTOEvents, h.Conns.FastRetransmits,
			h.Conns.BytesSent, h.Conns.BytesReceived, mark)
	}
	fmt.Printf("  %-17s %8s %6s %6s | %8s %6s %6s\n",
		"link", "a→b tx", "lost", "qdrop", "b→a tx", "lost", "qdrop")
	for _, l := range s.Links {
		fmt.Printf("  %-8s-%-8s %8d %6d %6d | %8d %6d %6d\n",
			l.A, l.B, l.AB.TxFrames, l.AB.Lost, l.AB.QueueDrop,
			l.BA.TxFrames, l.BA.Lost, l.BA.QueueDrop)
	}
	for _, h := range s.Hosts {
		if h.RTT != nil {
			fmt.Printf("  %s rtt: n=%d p50=%.2fms p99=%.2fms max=%.2fms\n",
				h.Name, h.RTT.Count, h.RTT.P50, h.RTT.P99, h.RTT.Max)
		}
	}
}
