package hydranet_test

import (
	"fmt"
	"testing"
	"time"

	"hydranet/internal/testbed"
)

// BenchmarkFigure4 regenerates the paper's only results figure: ttcp
// throughput against write size for the four testbed configurations. The
// custom metric kB/s is the figure's y-axis; allocations and ns/op describe
// the simulator, not the system under test.
func BenchmarkFigure4(b *testing.B) {
	for _, c := range testbed.Figure4Cases {
		for _, size := range testbed.Figure4Sizes {
			b.Run(fmt.Sprintf("%s/%dB", c, size), func(b *testing.B) {
				var tput float64
				for i := 0; i < b.N; i++ {
					res := testbed.Run(testbed.Config{
						Case: c, BufLen: size, TotalBytes: 256 * 1024, Seed: int64(i + 1),
					})
					if res.Err != nil {
						b.Fatalf("transfer failed: %v", res.Err)
					}
					tput = res.ThroughputKBps()
				}
				b.ReportMetric(tput, "kB/s")
				b.ReportMetric(0, "ns/op") // virtual-time experiment; wall time is meaningless
			})
		}
	}
}

// BenchmarkFailoverLatency is ablation A1: detection + resume latency after
// a primary crash, swept over the failure estimator's retransmission
// threshold (the paper's Section 4.3 latency/false-positive trade-off).
func BenchmarkFailoverLatency(b *testing.B) {
	for _, threshold := range []int{1, 2, 3, 4, 6, 8} {
		b.Run(fmt.Sprintf("threshold=%d", threshold), func(b *testing.B) {
			var detect, resume time.Duration
			for i := 0; i < b.N; i++ {
				res := testbed.MeasureFailover(testbed.FailoverConfig{
					Threshold: threshold, Seed: int64(i + 1),
				})
				if res.ClientError != nil {
					b.Fatalf("client broke: %v", res.ClientError)
				}
				if res.Detected == 0 || res.Resumed == 0 {
					b.Fatal("failover did not complete")
				}
				detect, resume = res.Detected, res.Resumed
			}
			b.ReportMetric(detect.Seconds()*1000, "detect-ms")
			b.ReportMetric(resume.Seconds()*1000, "resume-ms")
		})
	}
}

// BenchmarkFalsePositives is the other side of the A1 trade-off: with all
// hosts healthy but the links lossy (congestion-like conditions), a lower
// threshold trips the estimator more often. The redirector's liveness
// probe must still prevent wrongful removals at every threshold.
func BenchmarkFalsePositives(b *testing.B) {
	for _, threshold := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threshold=%d", threshold), func(b *testing.B) {
			var suspicions uint64
			for i := 0; i < b.N; i++ {
				res := testbed.MeasureFailover(testbed.FailoverConfig{
					Threshold: threshold, Seed: int64(i + 1),
					NoCrash: true, Loss: 0.02,
				})
				if res.FalseReconfigs != 0 {
					b.Fatalf("probe allowed %d wrongful reconfigurations", res.FalseReconfigs)
				}
				suspicions = res.Suspicions
			}
			b.ReportMetric(float64(suspicions), "suspicions")
		})
	}
}

// BenchmarkChainDepth is ablation A2: throughput as the replica chain grows
// (the paper measures zero and one backup; this extends to three).
func BenchmarkChainDepth(b *testing.B) {
	run := func(b *testing.B, c testbed.Case, backups int) {
		var tput float64
		for i := 0; i < b.N; i++ {
			res := testbed.Run(testbed.Config{
				Case: c, BufLen: 1024, TotalBytes: 256 * 1024,
				Seed: int64(i + 1), Backups: backups,
			})
			if res.Err != nil {
				b.Fatalf("transfer failed: %v", res.Err)
			}
			tput = res.ThroughputKBps()
		}
		b.ReportMetric(tput, "kB/s")
	}
	b.Run("backups=0", func(b *testing.B) { run(b, testbed.CasePrimaryOnly, 0) })
	for _, n := range []int{1, 2, 3} {
		n := n
		b.Run(fmt.Sprintf("backups=%d", n), func(b *testing.B) {
			run(b, testbed.CasePrimaryBackup, n)
		})
	}
}

// BenchmarkAckChannelLoss is ablation A3: the cost of running the
// acknowledgment channel over unreliable UDP (paper Section 4.3: "trading
// low overhead against ... client re-transmissions if packets on the
// acknowledgement channel are lost").
func BenchmarkAckChannelLoss(b *testing.B) {
	for _, loss := range []float64{0, 0.1, 0.3, 0.6} {
		b.Run(fmt.Sprintf("loss=%.0f%%", loss*100), func(b *testing.B) {
			var tput float64
			var rtos uint64
			completed := 0
			for i := 0; i < b.N; i++ {
				res := testbed.Run(testbed.Config{
					Case: testbed.CasePrimaryBackup, BufLen: 1024,
					TotalBytes: 256 * 1024, Seed: int64(i + 1), AckChannelLoss: loss,
				})
				if res.Err != nil {
					// At heavy loss the client's connection can
					// legitimately exhaust its retries — that IS the
					// paper's trade-off; report it instead of failing.
					continue
				}
				completed++
				tput = res.ThroughputKBps()
				rtos = res.Stats.RTOEvents
			}
			b.ReportMetric(tput, "kB/s")
			b.ReportMetric(float64(rtos), "client-RTOs")
			b.ReportMetric(float64(completed)/float64(b.N), "completed-frac")
		})
	}
}

// BenchmarkCongestionEviction is ablation A5: the paper's introduction
// calls for "temporarily shut[ting] down servers when they cause service
// disruption due to congestion". A backup whose acknowledgment channel dies
// stalls the chain; with the eviction policy the transfer completes, while
// without it the client's connection eventually times out.
func BenchmarkCongestionEviction(b *testing.B) {
	for _, strikes := range []int{0, 2, 4} {
		name := fmt.Sprintf("strikes=%d", strikes)
		if strikes == 0 {
			name = "policy-off"
		}
		b.Run(name, func(b *testing.B) {
			var elapsed float64
			completed := true
			for i := 0; i < b.N; i++ {
				res := testbed.MeasureCongestionEviction(strikes, int64(i+1))
				completed = res.Completed
				if res.Completed {
					elapsed = res.Elapsed.Seconds()
				}
			}
			if completed {
				b.ReportMetric(elapsed, "transfer-s")
			} else {
				b.ReportMetric(0, "transfer-s") // stranded
			}
		})
	}
}

// BenchmarkFragmentation is ablation A4: the paper notes throughput drops
// for writes beyond the MTU. Writes above the MSS split into a full segment
// plus a runt, and tunnel encapsulation pushes full-MSS segments past the
// link MTU so the redirector's copies fragment.
func BenchmarkFragmentation(b *testing.B) {
	for _, c := range []testbed.Case{testbed.CaseClean, testbed.CasePrimaryBackup} {
		for _, size := range []int{1024, 1460, 2048, 2920} {
			b.Run(fmt.Sprintf("%s/%dB", c, size), func(b *testing.B) {
				var perWrite float64
				for i := 0; i < b.N; i++ {
					res := testbed.Run(testbed.Config{
						Case: c, BufLen: size, TotalBytes: 256 * 1024, Seed: int64(i + 1),
					})
					if res.Err != nil {
						b.Fatalf("transfer failed: %v", res.Err)
					}
					perWrite = res.ThroughputKBps()
				}
				b.ReportMetric(perWrite, "kB/s")
			})
		}
	}
}
