package hydranet

import (
	"fmt"
	"time"

	"hydranet/internal/core"
	"hydranet/internal/obs"
	"hydranet/internal/rmp"
	"hydranet/internal/udp"
)

// Daemon returns the host's management daemon, creating it on first use
// bound to the given redirector. A host talks to exactly one redirector.
func (h *Host) Daemon(rd *Redirector) *rmp.HostDaemon {
	if h.dmn == nil {
		// Make sure the redirector side is listening before we register.
		rd.Daemon()
		d, err := rmp.NewHostDaemon(h.udp, h.node.Scheduler(), h.FTManager(), h.hs, h.tcp,
			h.addr, rd.Host.addr)
		if err != nil {
			panic(fmt.Sprintf("hydranet: %s: %v", h.name, err))
		}
		h.dmn = d
	}
	return h.dmn
}

// FTOptions tune a fault-tolerant deployment.
type FTOptions struct {
	// Detector configures the failure estimator on every replica.
	Detector DetectorParams
	// Heartbeat, if nonzero, enables lease-based membership: every replica
	// announces liveness at this interval and the redirector expires
	// members silent for three intervals. This detects failures even on
	// completely idle services; zero (the default) keeps the paper's
	// purely traffic-driven detection.
	Heartbeat time.Duration
}

// FTReplica is one deployed replica of a fault-tolerant service.
type FTReplica struct {
	Host     *Host
	Port     *core.ReplicatedPort
	Listener *Listener
}

// FTService is a deployed fault-tolerant service.
type FTService struct {
	net      *Net
	svc      ServiceID
	rd       *Redirector
	opts     FTOptions
	accept   func(*Conn)
	replicas []*FTReplica
}

// DeployFT replicates a TCP service across hosts (hosts[0] becomes the
// primary, the rest backups in chain order) and registers the replica set
// with the redirector. accept is invoked on every replica for each accepted
// connection — the server application runs on all replicas, which is what
// keeps the backups' state hot.
//
// Registration travels over the (simulated) management protocol; run the
// network briefly (Settle) before clients dial.
func (n *Net) DeployFT(svc ServiceID, rd *Redirector, hosts []*Host,
	opts FTOptions, accept func(*Conn)) (*FTService, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("hydranet: DeployFT needs at least one host")
	}
	s := &FTService{net: n, svc: svc, rd: rd, opts: opts, accept: accept}
	for i, h := range hosts {
		mode := ModeBackup
		if i == 0 {
			mode = ModePrimary
		}
		listener, err := h.tcp.Listen(svc.Addr, svc.Port)
		if err != nil {
			return nil, fmt.Errorf("hydranet: %s: %w", h.name, err)
		}
		listener.SetAcceptFunc(accept)
		port := h.Daemon(rd).RegisterFT(svc, mode, opts.Detector, listener)
		if opts.Heartbeat > 0 {
			h.Daemon(rd).StartHeartbeats(svc, opts.Heartbeat)
		}
		s.replicas = append(s.replicas, &FTReplica{Host: h, Port: port, Listener: listener})
	}
	if opts.Heartbeat > 0 {
		rd.Daemon().EnableLeases(3 * opts.Heartbeat)
	}
	return s, nil
}

// Service returns the service identity.
func (s *FTService) Service() ServiceID { return s.svc }

// Replicas returns the deployed replicas in registration order.
func (s *FTService) Replicas() []*FTReplica { return append([]*FTReplica(nil), s.replicas...) }

// Primary returns the replica whose host the redirector currently treats as
// primary (nil if the service has no live chain).
func (s *FTService) Primary() *FTReplica {
	chain := s.rd.Daemon().Chain(s.svc)
	if len(chain) == 0 {
		return nil
	}
	for _, r := range s.replicas {
		if r.Host.addr == chain[0] {
			return r
		}
	}
	return nil
}

// Chain returns the current chain membership as host addresses, primary
// first.
func (s *FTService) Chain() []Addr { return s.rd.Daemon().Chain(s.svc) }

// CrashPrimary fail-stops the current primary's host (failure injection).
func (s *FTService) CrashPrimary() *Host {
	p := s.Primary()
	if p == nil {
		return nil
	}
	p.Host.Crash()
	return p.Host
}

// Leave withdraws a replica voluntarily (deletion of primary or backup
// server, paper Section 4.4): the chain is respliced and, if the primary
// left, its successor is promoted.
func (s *FTService) Leave(h *Host) error {
	for _, r := range s.replicas {
		if r.Host == h {
			h.Daemon(s.rd).Leave(s.svc)
			return nil
		}
	}
	return fmt.Errorf("hydranet: %s is not a replica of %s", h.name, s.svc)
}

// Recommission brings a recovered (restarted) host back into the replica
// set as a backup — the paper's future-work item, realized for new
// connections: the rejoined replica has no state for connections opened
// before it returned, so those continue on the survivors; connections
// accepted afterwards are replicated onto it like any backup. The paper's
// open problem of transferring live TCP state to a rejoining server remains
// out of scope here too.
func (s *FTService) Recommission(h *Host) error {
	if !h.Alive() {
		return fmt.Errorf("hydranet: recommissioning %s: host is down (Restart it first)", h.name)
	}
	var rep *FTReplica
	for _, r := range s.replicas {
		if r.Host == h {
			rep = r
		}
	}
	if rep == nil {
		return fmt.Errorf("hydranet: %s was never a replica of %s", h.name, s.svc)
	}
	// The "rebooted" server program binds its listener again; the old
	// listener object survives a crash in this model, so reuse it if it is
	// still registered, otherwise create a fresh one.
	listener, err := h.tcp.Listen(s.svc.Addr, s.svc.Port)
	if err == nil {
		listener.SetAcceptFunc(s.accept)
		rep.Listener = listener
	} else {
		listener = rep.Listener
	}
	rep.Port = h.Daemon(s.rd).RegisterFT(s.svc, ModeBackup, s.opts.Detector, listener)
	if s.opts.Heartbeat > 0 {
		h.Daemon(s.rd).StartHeartbeats(s.svc, s.opts.Heartbeat)
	}
	if b := h.emitBus(); b.Enabled(obs.KindRecommission) {
		b.Publish(obs.Event{
			Kind: obs.KindRecommission, Node: h.name, Service: s.svc.String(),
		})
	}
	return nil
}

// ScaleTarget is a scaling-mode replica host with its routing metric.
type ScaleTarget struct {
	Host   *Host
	Metric int
}

// DeployScale replicates a service for scalability only: the redirector
// tunnels each request to the nearest (lowest-metric) replica; there is no
// fault-tolerance machinery (paper Section 3).
func (n *Net) DeployScale(svc ServiceID, rd *Redirector, targets []ScaleTarget,
	accept func(*Conn)) error {
	for _, t := range targets {
		listener, err := t.Host.tcp.Listen(svc.Addr, svc.Port)
		if err != nil {
			return fmt.Errorf("hydranet: %s: %w", t.Host.name, err)
		}
		listener.SetAcceptFunc(accept)
		t.Host.Daemon(rd).RegisterScale(svc, uint16(t.Metric))
	}
	return nil
}

// UDPRecvFunc handles datagrams delivered to a bound UDP service socket.
type UDPRecvFunc = udp.RecvFunc

// UDPEndpoint is a UDP address:port pair.
type UDPEndpoint = udp.Endpoint

// DeployScaleUDP replicates a UDP service for scalability: the redirector
// tunnels each datagram to the nearest replica. The paper's redirector
// table holds "pairs of IP addresses and port numbers" for TCP *or* UDP;
// this is the UDP side. handler is invoked per target host so replicas can
// keep per-host state.
func (n *Net) DeployScaleUDP(svc ServiceID, rd *Redirector, targets []ScaleTarget,
	handler func(h *Host) UDPRecvFunc) error {
	for _, t := range targets {
		if err := t.Host.udp.Bind(svc.Addr, svc.Port, handler(t.Host)); err != nil {
			return fmt.Errorf("hydranet: %s: %w", t.Host.name, err)
		}
		t.Host.Daemon(rd).RegisterScale(svc, uint16(t.Metric))
	}
	return nil
}

// Settle runs the network for a second of virtual time, long enough for
// management-protocol exchanges (registration, chain setup) to complete.
func (n *Net) Settle() { n.RunFor(time.Second) }
