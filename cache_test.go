package hydranet

import (
	"testing"
	"time"

	"hydranet/internal/app"
)

// cacheTopology: clients — rd — hostserver(cache) ... WAN ... origin.
func cacheTopology(t *testing.T, seed int64) (*Net, []*Host, *Redirector, *Host, *Host) {
	t.Helper()
	net := New(Config{Seed: seed})
	rd := net.AddRedirector("rd", HostConfig{})
	hs := net.AddHost("hostserver", HostConfig{})
	origin := net.AddHost("origin", HostConfig{})
	lan := LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	wan := LinkConfig{Rate: 1_000_000, Delay: 100 * time.Millisecond}
	var clients []*Host
	for i := 0; i < 2; i++ {
		c := net.AddHost("client"+string(rune('0'+i)), HostConfig{})
		clients = append(clients, c)
		net.Link(c, rd.Host, lan)
	}
	net.Link(hs, rd.Host, lan)
	net.LinkAddr(origin, rd.Host, wan,
		MustAddr("192.20.225.20"), MustAddr("192.20.225.1"))
	// A second origin address for agent fetch-back traffic: the host
	// server hosts the service's virtual address itself, so dialing
	// 192.20.225.20 from the host server loops back locally. Agents reach
	// the origin by a dedicated address, as a real cache hierarchy would.
	net.Link(origin, rd.Host, wan)
	net.AutoRoute()
	return net, clients, rd, hs, origin
}

// TestActiveCacheAgent reproduces the paper's Section 3 footnote: the host
// server runs "a scaled-down version of the service (for example an active
// cache) ... as agent of the server on the origin host". Requests from the
// local population are served from the cache; only the first miss crosses
// the WAN to the origin.
func TestActiveCacheAgent(t *testing.T) {
	net, clients, rd, hs, origin := cacheTopology(t, 71)
	originAddr := MustAddr("192.20.225.20")
	webSvc := ServiceID{Addr: originAddr, Port: 80}

	// The real service on the origin host.
	pages := map[string]string{"/index.html": "<html>welcome to northwest.com</html>"}
	lst, err := origin.Listen(originAddr, 80)
	if err != nil {
		t.Fatal(err)
	}
	lst.SetAcceptFunc(app.HTTPServer(pages))

	// The active cache on the host server, registered as the (nearest)
	// scaling replica for the origin's port 80.
	// The agent reaches the origin by its dedicated fetch address: the
	// virtual address would resolve to the agent's own host server.
	fetchAddr := origin.IP().Addr(1)
	agent := app.NewCacheAgent(func() (*Conn, error) {
		return hs.DialEndpoint(Endpoint{Addr: fetchAddr, Port: 8080})
	})
	// The origin exposes the fetch port for its agents.
	back, err := origin.Listen(0, 8080)
	if err != nil {
		t.Fatal(err)
	}
	back.SetAcceptFunc(app.HTTPServer(pages))
	if err := net.DeployScale(webSvc, rd, []ScaleTarget{{Host: hs, Metric: 1}},
		agent.Accept); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	get := func(c *Host, path string) (int, string, time.Duration) {
		conn, err := c.Dial(webSvc)
		if err != nil {
			t.Fatal(err)
		}
		start := net.Now()
		var status int
		var body []byte
		var rtt time.Duration
		app.HTTPGet(conn, path, func(s int, b []byte, ok bool) {
			if !ok {
				t.Fatal("request failed")
			}
			status, body, rtt = s, b, net.Now()-start
		})
		net.RunFor(5 * time.Second)
		return status, string(body), rtt
	}

	s1, b1, missRTT := get(clients[0], "/index.html")
	s2, b2, hitRTT := get(clients[1], "/index.html")
	if s1 != 200 || s2 != 200 || b1 != pages["/index.html"] || b2 != b1 {
		t.Fatalf("responses: %d %q / %d %q", s1, b1, s2, b2)
	}
	hits, misses := agent.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats hits=%d misses=%d, want 1/1", hits, misses)
	}
	// The hit never crosses the WAN: it must be far faster than the miss.
	if hitRTT >= missRTT/2 {
		t.Errorf("hit RTT %v not much faster than miss RTT %v", hitRTT, missRTT)
	}
	// 404s are cached too (negative caching of the agent's response).
	s3, _, _ := get(clients[0], "/missing.html")
	if s3 != 404 {
		t.Fatalf("status for missing page = %d", s3)
	}
}
