package hydranet

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"hydranet/internal/app"
)

// streamClient dials svc, streams payload through the echo service, and
// counts echoed bytes, publishing KindClientDeliver on every read so the
// failover probe can see client-visible progress.
func streamClient(t *testing.T, net *Net, client *Host, payload []byte) *int {
	t.Helper()
	conn, err := client.Dial(testSvc)
	if err != nil {
		t.Fatal(err)
	}
	received := new(int)
	bus := net.Bus()
	buf := make([]byte, 8192)
	conn.OnReadable(func() {
		for {
			n := conn.Read(buf)
			if n == 0 {
				break
			}
			*received += n
			if bus.Enabled(KindClientDeliver) {
				bus.Publish(Event{Kind: KindClientDeliver, Node: "client", Size: n})
			}
		}
	})
	app.Source(conn, payload, false)
	return received
}

func TestSnapshotAndFailoverTimeline(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 7, 3)
	svc, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 3}}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	probe := net.NewFailoverProbe()
	net.Settle()

	payload := make([]byte, 256*1024)
	received := streamClient(t, net, client, payload)

	net.RunFor(400 * time.Millisecond)
	before := net.Snapshot()
	svc.CrashPrimary()
	for *received < len(payload) && net.Now() < 2*time.Minute {
		net.RunFor(time.Second)
	}
	if *received != len(payload) {
		t.Fatalf("client received %d of %d bytes", *received, len(payload))
	}

	report := probe.Report()
	if !report.Complete {
		t.Fatalf("failover report incomplete: %+v", report)
	}
	if report.Detection <= 0 || report.Reconfiguration <= 0 {
		t.Fatalf("non-positive phases: %+v", report)
	}
	if report.ClientStall < report.Detection {
		t.Fatalf("client stall %v shorter than detection %v",
			report.ClientStall, report.Detection)
	}

	snap := net.Snapshot()
	snap.Failover = &report

	byName := make(map[string]int)
	for i, h := range snap.Hosts {
		byName[h.Name] = i
	}
	for _, want := range []string{"client", "rd", "s0", "s1", "s2"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("snapshot missing host %q", want)
		}
	}
	if snap.Hosts[byName["s0"]].Alive {
		t.Error("crashed primary still marked alive")
	}
	s1 := snap.Hosts[byName["s1"]]
	if s1.Manager == nil || s1.Manager.Promotions != 1 {
		t.Errorf("s1 manager counters = %+v, want 1 promotion", s1.Manager)
	}
	cl := snap.Hosts[byName["client"]]
	if cl.Conns.BytesReceived != uint64(len(payload)) {
		t.Errorf("client bytes_received = %d, want %d", cl.Conns.BytesReceived, len(payload))
	}
	if cl.RTT == nil || cl.RTT.Count == 0 {
		t.Error("client RTT histogram empty")
	}
	if len(snap.Redirectors) != 1 || snap.Redirectors[0].Table.Multicast == 0 {
		t.Errorf("redirector snapshot = %+v", snap.Redirectors)
	}
	if snap.Redirectors[0].Mgmt == nil || snap.Redirectors[0].Mgmt.HostsFailed != 1 {
		t.Errorf("mgmt counters = %+v, want 1 host failed", snap.Redirectors[0].Mgmt)
	}

	// The snapshot must mirror the direct component counters exactly.
	if got, want := snap.Redirectors[0].Table.MulticastCopies, rd.Table().Stats().MulticastCopies; got != want {
		t.Errorf("snapshot copies %d != direct stats %d", got, want)
	}

	// Interval diff covers only post-crash activity.
	d := snap.Diff(before)
	if d.Time <= 0 {
		t.Errorf("diff time = %v", d.Time)
	}
	dc := d.Hosts[byName["client"]]
	if dc.Conns.BytesReceived == 0 || dc.Conns.BytesReceived >= uint64(len(payload)) {
		t.Errorf("diffed client bytes = %d, want strictly between 0 and total", dc.Conns.BytesReceived)
	}

	// And the whole thing serializes, failover timeline included.
	out, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(out, &parsed); err != nil {
		t.Fatal(err)
	}
	fo, ok := parsed["failover"].(map[string]any)
	if !ok || fo["complete"] != true {
		t.Fatalf("failover section missing or incomplete in JSON: %v", parsed["failover"])
	}
}

// TestRedirectorStatsUnderLossyBackupLinks drops multicast copies on the
// backup links and checks the redirector's accounting stays consistent: one
// tunnel copy per chain member per match, no tunnel errors, and the fabric
// (not the redirector) accounts the lost copies.
func TestRedirectorStatsUnderLossyBackupLinks(t *testing.T) {
	net := New(Config{Seed: 11})
	client := net.AddHost("client", HostConfig{})
	rd := net.AddRedirector("rd", HostConfig{})
	var replicas []*Host
	for _, name := range []string{"s0", "s1", "s2"} {
		replicas = append(replicas, net.AddHost(name, HostConfig{}))
	}
	clean := LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	lossy := LinkConfig{Rate: 10_000_000, Delay: time.Millisecond, Loss: 0.03}
	net.Link(client, rd.Host, clean)
	net.Link(replicas[0], rd.Host, clean)
	net.Link(replicas[1], rd.Host, lossy)
	net.Link(replicas[2], rd.Host, lossy)
	net.AutoRoute()

	// A high threshold keeps the detector quiet, so the chain keeps all
	// three members and the copies-per-match ratio stays fixed.
	if _, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 50}}, echoAccept()); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	conn, err := client.Dial(testSvc)
	if err != nil {
		t.Fatal(err)
	}
	echoed := collect(conn)
	app.Source(conn, payload, false)
	for len(*echoed) < len(payload) && net.Now() < 2*time.Minute {
		net.RunFor(time.Second)
	}
	if !bytes.Equal(*echoed, payload) {
		t.Fatalf("stream corrupted under loss: got %d bytes", len(*echoed))
	}

	rs := rd.Table().Stats()
	if rs.Multicast == 0 {
		t.Fatal("no multicast matches recorded")
	}
	if rs.MulticastCopies != 3*rs.Multicast {
		t.Errorf("copies = %d, want 3×%d: redirector accounting must not see link loss",
			rs.MulticastCopies, rs.Multicast)
	}
	if rs.TunnelErrors != 0 {
		t.Errorf("tunnel errors = %d, want 0 (loss is not a routing failure)", rs.TunnelErrors)
	}

	snap := net.Snapshot()
	var lost uint64
	for _, l := range snap.Links {
		if l.A == "s1" || l.A == "s2" { // rd is side B on these links
			lost += l.AB.Lost + l.BA.Lost
		}
	}
	if lost == 0 {
		t.Error("lossy links recorded no loss — test is not exercising the scenario")
	}
	// Copies the redirector emitted but the fabric dropped must show up as
	// the gap between tunnel copies and backup deliveries.
	delivered := uint64(0)
	for _, h := range snap.Hosts {
		if h.Name == "s1" || h.Name == "s2" {
			delivered += h.IP.Delivered
		}
	}
	if delivered == 0 {
		t.Error("backups received nothing despite an intact chain")
	}
}
