package hydranet

import (
	"sort"
	"time"

	"hydranet/internal/prof"
	"hydranet/internal/sim"
)

// hydraprof facade: Net.StartProfile attaches the sim-layer collectors
// (per-scheduler causal critical-path profiling, per-window group
// accounting) and assembles their state into a prof.Profile for
// `hydrascope profile`, the Perfetto trace export and CI diffing.
//
// Attaching a profiler changes no simulation observable: pcap, series and
// event counts stay byte-identical (pinned by TestProfileKeepsOutputsIdentical),
// and a detached net pays nothing (TestProfZeroCostWhenDetached).

// ProfileConfig configures Net.StartProfile. The zero value is sensible.
type ProfileConfig struct {
	// Scenario labels the profile (free text, e.g. "figure4 ft-1024").
	Scenario string
	// EdgeRing is the per-domain sampled-edge ring capacity (default 256).
	EdgeRing int
	// EdgeEvery samples every Nth scheduling edge (default 64).
	EdgeEvery int
	// WindowRing is how many window records to retain (default 4096).
	WindowRing int
}

// Profiler is an attached hydraprof session. Snapshot/WriteFile may be
// called repeatedly from coordinator context (between runs); Stop detaches
// the collectors, after which the last collected state remains readable.
type Profiler struct {
	net     *Net
	cfg     ProfileConfig
	sprofs  []*sim.SchedProf
	gprof   *sim.GroupProf // nil for a serial net
	start   time.Time
	events0 uint64 // events fired before attach
	stopped bool
}

// StartProfile attaches the profiler. Call from coordinator context —
// after SetWorkers (profiling wraps the partition's schedulers, so
// partitioning after StartProfile is rejected) and at any point setup code
// runs, typically right before the measured traffic. The causal depth
// baseline resets at attach, so serial and partitioned runs of the same
// scenario report the same critical path (see DESIGN.md §11 for the one
// exception: barrier-hosted samplers).
func (n *Net) StartProfile(cfg ProfileConfig) *Profiler {
	if cfg.EdgeRing <= 0 {
		cfg.EdgeRing = 256
	}
	if cfg.EdgeEvery <= 0 {
		cfg.EdgeEvery = 64
	}
	if cfg.WindowRing <= 0 {
		cfg.WindowRing = 4096
	}
	if n.profiler != nil {
		n.profiler.Stop()
	}
	p := &Profiler{net: n, cfg: cfg, events0: n.EventsFired()}
	if n.par != nil {
		p.sprofs = make([]*sim.SchedProf, len(n.par.scheds))
		for i, s := range n.par.scheds {
			p.sprofs[i] = sim.NewSchedProf(cfg.EdgeRing, cfg.EdgeEvery)
			s.EnableProfile(p.sprofs[i])
		}
		p.gprof = sim.NewGroupProf(len(n.par.scheds), cfg.WindowRing)
		p.gprof.SetFlowSampler(func(dst []uint64) { n.fab.HandoffMatrix(dst) })
		n.par.group.EnableProfile(p.gprof)
	} else {
		sp := sim.NewSchedProf(cfg.EdgeRing, cfg.EdgeEvery)
		n.sched.EnableProfile(sp)
		p.sprofs = []*sim.SchedProf{sp}
	}
	n.profiler = p
	//hydralint:nondeterministic wall-clock profiling baseline: reported, never fed back into the simulation
	p.start = time.Now()
	return p
}

// Stop detaches the collectors, restoring the zero-cost hot paths. The
// profiler's collected state stays readable via Snapshot/WriteFile.
func (p *Profiler) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	n := p.net
	if n.par != nil && p.gprof != nil {
		for _, s := range n.par.scheds {
			s.EnableProfile(nil)
		}
		n.par.group.EnableProfile(nil)
	} else {
		n.sched.EnableProfile(nil)
	}
	if n.profiler == p {
		n.profiler = nil
	}
}

// Snapshot assembles the profile collected so far. Coordinator context only
// (between runs): it reads per-domain state with no workers running.
func (p *Profiler) Snapshot() *prof.Profile {
	n := p.net
	domains, workers := n.Parallel()
	out := &prof.Profile{
		ProfVersion: prof.FormatVersion,
		Scenario:    p.cfg.Scenario,
		Seed:        n.cfg.Seed,
		Domains:     domains,
		Workers:     workers,
		VirtualNs:   int64(n.Now()),
		Events:      n.EventsFired() - p.events0,
		Handoffs:    n.Handoffs(),
		MergeTies:   n.MergeTies(),
	}
	//hydralint:nondeterministic wall-clock profiling measurement: reported, never fed back into the simulation
	out.WallNs = time.Now().Sub(p.start).Nanoseconds()

	// Critical path: hand-offs carry depth across domains, so the global
	// longest chain is the max over per-domain maxima.
	cp := &out.CriticalPath
	var edges []sim.ProfEdge
	for _, sp := range p.sprofs {
		if d := sp.MaxDepth(); d > cp.Depth {
			cp.Depth = d
			cp.DeepestAtNs = int64(sp.DeepestAt())
		}
		cp.SampleEvery = sp.SampleEvery()
		cp.EdgesSeen += sp.EdgesSeen()
		cp.EdgesRecorded += sp.EdgesRecorded()
		edges = sp.Edges(edges)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].ChildAt != edges[j].ChildAt {
			return edges[i].ChildAt < edges[j].ChildAt
		}
		return edges[i].ChildBirth < edges[j].ChildBirth
	})
	const maxEdges = 1024
	if len(edges) > maxEdges {
		edges = edges[len(edges)-maxEdges:]
	}
	for _, e := range edges {
		cp.Edges = append(cp.Edges, prof.Edge{
			ParentAtNs:    int64(e.ParentAt),
			ParentBirthNs: int64(e.ParentBirth),
			ChildAtNs:     int64(e.ChildAt),
			ChildBirthNs:  int64(e.ChildBirth),
			Depth:         e.Depth,
		})
	}

	if gp := p.gprof; gp != nil {
		out.LookaheadNs = int64(n.par.group.Lookahead())
		totals := gp.Totals(nil)
		for i, t := range totals {
			out.DomainTotals = append(out.DomainTotals, prof.DomainTotal{
				Domain:  i,
				MergeNs: t.MergeNs,
				ExecNs:  t.ExecNs,
				FlushNs: t.FlushNs,
				StallNs: t.StallNs,
				Events:  t.Events,
			})
		}
		out.HandoffMatrix = make([]uint64, domains*domains)
		n.fab.HandoffMatrix(out.HandoffMatrix)
		out.WindowsRun = gp.WindowsRun()
		out.WindowsDropped = gp.WindowsDropped()
		out.Barriers = gp.Barriers()
		out.BarrierNs = gp.BarrierNs()
		out.WindowWallNs = gp.WindowWallNs()
		gp.ForEachWindow(func(w *sim.ProfWindow) {
			win := prof.Window{
				Seq:       w.Seq,
				BoundAtNs: int64(w.BoundAt),
				Global:    w.Global,
				StartNs:   w.StartNs,
				EndNs:     w.EndNs,
				BarrierNs: w.BarrierNs,
				Domains:   make([]prof.WindowDomain, len(w.Domains)),
				Flows:     append([]uint64(nil), w.Flows...),
			}
			for d, wd := range w.Domains {
				win.Domains[d] = prof.WindowDomain{
					MergeNs: wd.MergeNs,
					ExecNs:  wd.ExecNs,
					FlushNs: wd.FlushNs,
					StallNs: wd.StallNs,
					DoneNs:  wd.DoneNs,
					Events:  wd.Events,
				}
			}
			out.Windows = append(out.Windows, win)
		})
		out.WindowsKept = len(out.Windows)
	}
	return out
}

// WriteFile snapshots the profile and writes it as hydraprof JSON.
func (p *Profiler) WriteFile(path string) error {
	return prof.WriteFile(path, p.Snapshot())
}
