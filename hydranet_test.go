package hydranet

import (
	"bytes"
	"testing"
	"time"

	"hydranet/internal/app"
)

// ftTopology builds the paper's Figure 3 setup: a client, a redirector, and
// nReplicas host servers, all star-connected to the redirector.
func ftTopology(t *testing.T, seed int64, nReplicas int) (*Net, *Host, *Redirector, []*Host) {
	t.Helper()
	net := New(Config{Seed: seed})
	client := net.AddHost("client", HostConfig{})
	rd := net.AddRedirector("rd", HostConfig{})
	var replicas []*Host
	for i := 0; i < nReplicas; i++ {
		h := net.AddHost("s"+string(rune('0'+i)), HostConfig{})
		replicas = append(replicas, h)
	}
	link := LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	net.Link(client, rd.Host, link)
	for _, h := range replicas {
		net.Link(h, rd.Host, link)
	}
	net.AutoRoute()
	return net, client, rd, replicas
}

// echoAccept returns an accept handler that echoes all input and closes
// when the peer does.
func echoAccept() func(*Conn) {
	return func(c *Conn) { app.Echo(c) }
}

// collect attaches a reader that accumulates everything received on c.
func collect(c *Conn) *[]byte {
	out := new([]byte)
	app.Collect(c, out)
	return out
}

var testSvc = ServiceID{Addr: MustAddr("192.20.225.20"), Port: 80}

func TestFTEchoPrimaryAndBackup(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 1, 2)
	svc, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if got := svc.Chain(); len(got) != 2 || got[0] != replicas[0].Addr() {
		t.Fatalf("chain = %v, want [s0 s1]", got)
	}

	conn, err := client.Dial(testSvc)
	if err != nil {
		t.Fatal(err)
	}
	echoed := collect(conn)
	msg := []byte("hello, replicated world")
	conn.OnConnected(func() { conn.Write(msg) })
	net.RunFor(5 * time.Second)

	if !bytes.Equal(*echoed, msg) {
		t.Fatalf("echo = %q, want %q", *echoed, msg)
	}
	// Both replicas must have processed the request (hot standby).
	for i, r := range svc.Replicas() {
		if r.Port.Conns() != 1 {
			t.Errorf("replica %d tracks %d conns, want 1", i, r.Port.Conns())
		}
	}
}

func TestFTTransferMatchesPlainTCP(t *testing.T) {
	// The same bulk transfer through (a) a plain direct connection and
	// (b) the full FT chain must deliver identical bytes.
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i * 13)
	}

	net, client, rd, replicas := ftTopology(t, 2, 3)
	if _, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept()); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, err := client.Dial(testSvc)
	if err != nil {
		t.Fatal(err)
	}
	echoed := collect(conn)
	feedAll(conn, payload, false)
	net.RunFor(5 * time.Minute)
	if !bytes.Equal(*echoed, payload) {
		t.Fatalf("FT echo returned %d bytes, want %d", len(*echoed), len(payload))
	}
}

// feedAll writes payload as send-buffer space allows; optionally closes.
func feedAll(c *Conn, payload []byte, closeWhenDone bool) {
	app.Source(c, payload, closeWhenDone)
}

func TestFailoverMidStream(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 3, 2)
	svc, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	conn, err := client.Dial(testSvc)
	if err != nil {
		t.Fatal(err)
	}
	echoed := collect(conn)
	var closedErr error
	closed := false
	conn.OnClosed(func(err error) { closed = true; closedErr = err })

	first := []byte("before the crash | ")
	second := []byte("after the crash")
	conn.OnConnected(func() { conn.Write(first) })
	net.RunFor(3 * time.Second)
	if !bytes.Equal(*echoed, first) {
		t.Fatalf("pre-crash echo = %q", *echoed)
	}

	// Kill the primary, then keep talking on the same connection.
	dead := svc.CrashPrimary()
	if dead != replicas[0] {
		t.Fatalf("primary was %v, want s0", dead)
	}
	conn.Write(second)
	net.RunFor(60 * time.Second)

	if closed {
		t.Fatalf("client connection died during failover: %v", closedErr)
	}
	want := append(append([]byte(nil), first...), second...)
	if !bytes.Equal(*echoed, want) {
		t.Fatalf("post-failover echo = %q, want %q", *echoed, want)
	}
	// The redirector must have reconfigured: chain is now just s1.
	chain := svc.Chain()
	if len(chain) != 1 || chain[0] != replicas[1].Addr() {
		t.Fatalf("chain after failover = %v, want [s1]", chain)
	}
	if p := svc.Primary(); p == nil || p.Host != replicas[1] {
		t.Fatal("s1 was not promoted to primary")
	}
}

func TestFailoverTransparentToClientAPI(t *testing.T) {
	// The client stack must observe no error, reset, or reconnect: the
	// connection object survives and the byte stream is continuous.
	net, client, rd, replicas := ftTopology(t, 4, 3)
	svc, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	conn, _ := client.Dial(testSvc)
	echoed := collect(conn)
	payload := make([]byte, 512*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	feedAll(conn, payload, false)

	// Crash the primary mid-transfer (a 512 KiB echo over 10 Mbit/s takes
	// on the order of a second, so 150 ms is well inside the transfer).
	net.RunFor(150 * time.Millisecond)
	svc.CrashPrimary()
	net.RunFor(5 * time.Minute)

	if !bytes.Equal(*echoed, payload) {
		t.Fatalf("echo after mid-transfer failover: %d bytes, want %d",
			len(*echoed), len(payload))
	}
	if conn.State().String() != "ESTABLISHED" {
		t.Fatalf("client state = %v, want ESTABLISHED", conn.State())
	}
	if got := svc.Chain(); len(got) != 2 {
		t.Fatalf("chain = %v, want two survivors", got)
	}
}

func TestBackupCrashIsInvisible(t *testing.T) {
	// Killing a backup (the chain tail) must not disturb the client beyond
	// a brief stall.
	net, client, rd, replicas := ftTopology(t, 5, 2)
	svc, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	conn, _ := client.Dial(testSvc)
	echoed := collect(conn)
	conn.OnConnected(func() { conn.Write([]byte("one|")) })
	net.RunFor(2 * time.Second)

	replicas[1].Crash() // the backup
	conn.Write([]byte("two"))
	net.RunFor(60 * time.Second)

	if string(*echoed) != "one|two" {
		t.Fatalf("echo = %q, want %q", *echoed, "one|two")
	}
	chain := svc.Chain()
	if len(chain) != 1 || chain[0] != replicas[0].Addr() {
		t.Fatalf("chain = %v, want [s0]", chain)
	}
}

func TestScalingModeNearestReplica(t *testing.T) {
	// Paper Figure 2: scaling replication tunnels to the nearest replica;
	// unrelated ports pass through untouched.
	net := New(Config{Seed: 6})
	client := net.AddHost("client", HostConfig{})
	rd := net.AddRedirector("rd", HostConfig{})
	near := net.AddHost("near", HostConfig{})
	far := net.AddHost("far", HostConfig{})
	origin := net.AddHost("origin", HostConfig{})
	link := LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	net.Link(client, rd.Host, link)
	net.Link(near, rd.Host, link)
	net.Link(far, rd.Host, link)
	// The origin host really owns the service address.
	net.LinkAddr(origin, rd.Host, link,
		MustAddr("192.20.225.20"), MustAddr("192.20.225.1"))
	net.AutoRoute()

	svc := ServiceID{Addr: MustAddr("192.20.225.20"), Port: 80}
	reply := func(tag string) func(*Conn) {
		return func(c *Conn) {
			c.OnReadable(func() {
				buf := make([]byte, 64)
				if n := c.Read(buf); n > 0 {
					c.Write([]byte(tag))
					c.Close()
				}
			})
		}
	}
	if err := net.DeployScale(svc, rd, []ScaleTarget{
		{Host: near, Metric: 1},
		{Host: far, Metric: 5},
	}, reply("replica")); err != nil {
		t.Fatal(err)
	}
	// A different port on the origin host is NOT redirected (the paper's
	// telnet example).
	tl, err := origin.Listen(MustAddr("192.20.225.20"), 23)
	if err != nil {
		t.Fatal(err)
	}
	tl.SetAcceptFunc(reply("origin"))
	net.Settle()

	web, _ := client.Dial(svc)
	webReply := collect(web)
	web.OnConnected(func() { web.Write([]byte("GET /")) })

	telnet, _ := client.DialEndpoint(Endpoint{Addr: MustAddr("192.20.225.20"), Port: 23})
	telnetReply := collect(telnet)
	telnet.OnConnected(func() { telnet.Write([]byte("login")) })

	net.RunFor(10 * time.Second)
	if string(*webReply) != "replica" {
		t.Fatalf("web reply = %q, want %q (nearest replica)", *webReply, "replica")
	}
	if string(*telnetReply) != "origin" {
		t.Fatalf("telnet reply = %q, want %q (not redirected)", *telnetReply, "origin")
	}
	// Near replica must have served it, not far.
	if near.TCP().Stats().SegsIn == 0 {
		t.Error("near replica saw no traffic")
	}
	if far.TCP().Stats().SegsIn != 0 {
		t.Error("far replica saw traffic despite higher metric")
	}
}
