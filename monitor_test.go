package hydranet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hydranet/internal/app"
	"hydranet/internal/invariant"
	"hydranet/internal/obs"
)

// TestMonitorZeroCostWhenDetached pins the monitor's zero-cost contract:
// with no monitor attached the bus publishes nothing (emit sites stay
// behind Bus.Enabled), and with one attached its per-event hot path
// allocates nothing in steady state — tracking slots allocate on first
// contact with a connection, never per event. CI runs this by name; do
// not rename.
func TestMonitorZeroCostWhenDetached(t *testing.T) {
	measure := func(attach bool) float64 {
		bus := obs.NewBus(func() time.Duration { return 0 })
		if attach {
			m := invariant.New(invariant.Config{})
			m.Attach(bus)
		}
		var cursor, ack uint64 = 1000, 1000
		cycle := func() {
			// A violation-free deposit/ack/chain/deliver round on one
			// connection: every rule on the hot path evaluates.
			cursor += 512
			ack += 512
			if bus.Enabled(obs.KindDeposit) {
				bus.Publish(obs.Event{Kind: obs.KindDeposit, Node: "s0",
					Service: "10.9.0.9:80", Conn: "10.1.0.1:4000", Seq: cursor, Size: 512})
			}
			if bus.Enabled(obs.KindAckProgress) {
				bus.Publish(obs.Event{Kind: obs.KindAckProgress, Node: "client",
					Service: "10.1.0.1:4000", Conn: "10.9.0.9:80", Seq: ack})
			}
			if bus.Enabled(obs.KindChainSend) {
				bus.Publish(obs.Event{Kind: obs.KindChainSend, Node: "s0",
					Service: "10.9.0.9:80", Conn: "10.1.0.1:4000", Seq: cursor, Ack: ack})
			}
			if bus.Enabled(obs.KindClientDeliver) {
				bus.Publish(obs.Event{Kind: obs.KindClientDeliver, Node: "s0", Size: 256})
			}
		}
		for i := 0; i < 256; i++ {
			cycle()
		}
		return testing.AllocsPerRun(1000, cycle)
	}
	if a := measure(false); a != 0 {
		t.Errorf("detached bus allocates %.1f per event round, want 0", a)
	}
	if a := measure(true); a != 0 {
		t.Errorf("attached monitor steady state allocates %.1f per event round, want 0", a)
	}
}

// runMonitoredFailover runs the full failover scenario — deploy, stream,
// crash the primary, recover — with a monitor attached, at the given
// worker count, and returns the audit report.
func runMonitoredFailover(t *testing.T, workers int) AuditReport {
	t.Helper()
	net, client, rd, replicas := parallelTopology(t, 11)
	if workers > 1 {
		if err := net.SetWorkers(workers); err != nil {
			t.Fatal(err)
		}
	}
	// Attach after SetWorkers (the monitor consumes the barrier-ordered
	// replayed stream) and before DeployFT (it must see registrations).
	mon := net.StartMonitor(MonitorConfig{Scenario: "failover"})

	svc, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 3}}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	payload := make([]byte, 1024*1024)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	received := streamClientOn(t, client, payload)

	net.RunFor(300 * time.Millisecond)
	svc.CrashPrimary()
	for *received < len(payload) && net.Now() < 2*time.Minute {
		net.RunFor(time.Second)
	}
	if *received != len(payload) {
		t.Fatalf("workers=%d: client received %d of %d bytes", workers, *received, len(payload))
	}
	return net.FinishAudit(mon)
}

// streamClientOn is streamClient publishing on the client host's bus view,
// so the observation stays deterministic under any worker count.
func streamClientOn(t *testing.T, client *Host, payload []byte) *int {
	t.Helper()
	conn, err := client.Dial(testSvc)
	if err != nil {
		t.Fatal(err)
	}
	received := new(int)
	bus := client.Bus()
	buf := make([]byte, 8192)
	conn.OnReadable(func() {
		for {
			n := conn.Read(buf)
			if n == 0 {
				break
			}
			*received += n
			if bus.Enabled(KindClientDeliver) {
				bus.Publish(Event{Kind: KindClientDeliver, Node: "client", Size: n})
			}
		}
	})
	app.Source(conn, payload, false)
	return received
}

// TestMonitorCleanOnFailover is the paper's semantic claim as a test: a
// crash-failover run delivers exactly-once under the monitor's full rule
// set, and every stream rule actually evaluated (a monitor that checks
// nothing also violates nothing).
func TestMonitorCleanOnFailover(t *testing.T) {
	r := runMonitoredFailover(t, 1)
	if !r.Clean {
		t.Fatalf("failover scenario violated invariants:\n%v", r.Violations)
	}
	if !r.QuiesceChecked || r.OutstandingFrames != 0 {
		t.Fatalf("frame conservation undecided or leaking: checked=%v outstanding=%d",
			r.QuiesceChecked, r.OutstandingFrames)
	}
	exercised := map[string]bool{}
	for _, rr := range r.Rules {
		exercised[rr.Rule] = rr.Checks > 0
	}
	for _, rule := range []string{
		invariant.RuleDeposit, invariant.RuleAck, invariant.RuleGate,
		invariant.RuleChain, invariant.RuleMembership, invariant.RuleDelivery,
		invariant.RuleConservation,
	} {
		if !exercised[rule] {
			t.Errorf("rule %s never evaluated in a full failover run", rule)
		}
	}
	if r.Frames == 0 || r.Events == 0 {
		t.Fatalf("monitor observed nothing: %d events, %d frames", r.Events, r.Frames)
	}
}

// TestMonitorWorkerParity pins the determinism contract on the verdict
// surface: the audit report — counts, rule census, violation ordering —
// is byte-identical for every worker count, because the monitor consumes
// the barrier-ordered replayed stream. CI runs this by name.
func TestMonitorWorkerParity(t *testing.T) {
	var reports [][]byte
	for _, workers := range []int{1, 2, 4} {
		r := runMonitoredFailover(t, workers)
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, data)
	}
	for i := 1; i < len(reports); i++ {
		if string(reports[i]) != string(reports[0]) {
			t.Errorf("audit report differs between workers=1 and workers=%d:\n--- w1\n%s\n--- other\n%s",
				[]int{1, 2, 4}[i], reports[0], reports[i])
		}
	}
}

// TestMonitorSeededViolations is the oracle's own oracle: it forges a
// duplicate deposit and a premature client ACK out of captured real
// events, and requires the monitor to report both. The forge counters
// guard the guard — if the capture hooks never saw a real event to forge,
// the test fails rather than passing on silence.
func TestMonitorSeededViolations(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 13, 2)
	mon := net.StartMonitor(MonitorConfig{Scenario: "seeded"})

	// Capture one real replica deposit and one real client-side ACK to
	// forge from.
	var lastDeposit, lastClientAck Event
	var deposits, clientAcks int
	net.Bus().Subscribe(func(e Event) {
		switch e.Kind {
		case KindDeposit:
			if e.Node != "client" && e.Size > 0 {
				lastDeposit = e
				deposits++
			}
		case KindAckProgress:
			if e.Node == "client" {
				lastClientAck = e
				clientAcks++
			}
		}
	}, KindDeposit, KindAckProgress)

	if _, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 3}}, echoAccept()); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	payload := make([]byte, 256*1024)
	received := streamClientOn(t, client, payload)
	for *received < len(payload) && net.Now() < time.Minute {
		net.RunFor(time.Second)
	}
	if *received != len(payload) {
		t.Fatalf("client received %d of %d bytes", *received, len(payload))
	}

	// The faults must actually have fired material to forge.
	if deposits == 0 || clientAcks == 0 {
		t.Fatalf("no real events captured to forge (deposits=%d clientAcks=%d) — the self-test is vacuous", deposits, clientAcks)
	}

	// Fault 1: replay the last replica deposit verbatim — the cursor did
	// not advance by the bytes deposited, i.e. duplicate delivery.
	net.Bus().Publish(lastDeposit)
	// Fault 2: a client ACK far beyond the replica deposit minimum.
	forged := lastClientAck
	forged.Seq += 1 << 20
	net.Bus().Publish(forged)

	r := net.FinishAudit(mon)
	if r.Clean {
		t.Fatal("monitor passed a run with seeded faults")
	}
	byRule := map[string]uint64{}
	for _, rr := range r.Rules {
		byRule[rr.Rule] = rr.Violations
	}
	if byRule[invariant.RuleDeposit] == 0 {
		t.Errorf("forged duplicate deposit not reported: %+v", r.Rules)
	}
	if byRule[invariant.RuleGate] == 0 {
		t.Errorf("forged premature client ACK not reported: %+v", r.Rules)
	}
	for _, v := range r.Violations {
		if v.Time == 0 {
			t.Errorf("violation missing virtual-clock instant: %+v", v)
		}
	}
}

// TestMonitorDumpOnViolation wires the flight recorder to the monitor's
// OnViolation hook and requires the forensic bundle — pcap window plus
// event log — on disk after a seeded fault.
func TestMonitorDumpOnViolation(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 13, 2)
	mon := net.StartMonitor(MonitorConfig{Scenario: "seeded-dump"})
	flight := net.StartFlightRecorder(256, 256)
	prefix := filepath.Join(t.TempDir(), "violation")
	flight.DumpOnViolation(mon, prefix)

	var lastDeposit Event
	net.Bus().Subscribe(func(e Event) {
		if e.Node != "client" && e.Size > 0 {
			lastDeposit = e
		}
	}, KindDeposit)

	if _, err := net.DeployFT(testSvc, rd, replicas, FTOptions{}, echoAccept()); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	payload := make([]byte, 64*1024)
	received := streamClientOn(t, client, payload)
	for *received < len(payload) && net.Now() < time.Minute {
		net.RunFor(time.Second)
	}
	if lastDeposit.Kind != KindDeposit {
		t.Fatal("no deposit captured to forge")
	}
	net.Bus().Publish(lastDeposit) // duplicate-delivery fault

	if mon.Clean() {
		t.Fatal("seeded fault not detected")
	}
	for _, suffix := range []string{".pcap", ".json"} {
		if _, err := os.Stat(prefix + suffix); err != nil {
			t.Errorf("violation bundle missing %s: %v", suffix, err)
		}
	}
	if flight.Dumps() != 1 {
		t.Errorf("flight recorder dumped %d times, want exactly 1 (first violation only)", flight.Dumps())
	}
}

// TestMonitorCleanOnGrayFailure runs the gray-failure scenario — a slow,
// not crashed, backup strangling the ack chain — under the monitor. The
// degraded replica forces retransmissions and suspicions; none of them may
// read as a safety violation.
func TestMonitorCleanOnGrayFailure(t *testing.T) {
	net, client, rd, replicas := ftTopology(t, 11, 3)
	mon := net.StartMonitor(MonitorConfig{Scenario: "gray-failure"})
	if _, err := net.DeployFT(testSvc, rd, replicas,
		FTOptions{Detector: DetectorParams{RetransmitThreshold: 3}}, echoAccept()); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	payload := make([]byte, 1<<20)
	received := streamClientOn(t, client, payload)
	net.RunFor(400 * time.Millisecond)

	slow := replicas[len(replicas)-1]
	slow.SetProcessing(250*time.Millisecond, 0)
	net.RunFor(60 * time.Second)
	for *received < len(payload) && net.Now() < 4*time.Minute {
		net.RunFor(time.Second)
	}

	r := net.FinishAudit(mon)
	if !r.Clean {
		t.Fatalf("gray-failure scenario violated invariants:\n%v", r.Violations)
	}
	if *received != len(payload) {
		t.Fatalf("client received %d of %d bytes", *received, len(payload))
	}
}
