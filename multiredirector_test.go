package hydranet

import (
	"bytes"
	"testing"
	"time"

	"hydranet/internal/app"
	"hydranet/internal/redirector"
)

// twoISPTopology models Figure 1: two client populations behind their own
// redirectors; the replica hosts are reachable from both redirectors.
//
//	clientA — rd1 —— s0, s1
//	clientB — rd2 ——/   (rd1—rd2 linked; hosts linked to both redirectors)
func twoISPTopology(t *testing.T, seed int64) (*Net, *Host, *Host, *Redirector, *Redirector, []*Host) {
	t.Helper()
	net := New(Config{Seed: seed})
	clientA := net.AddHost("clientA", HostConfig{})
	clientB := net.AddHost("clientB", HostConfig{})
	rd1 := net.AddRedirector("rd1", HostConfig{})
	rd2 := net.AddRedirector("rd2", HostConfig{})
	s0 := net.AddHost("s0", HostConfig{})
	s1 := net.AddHost("s1", HostConfig{})
	link := LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	net.Link(rd1.Host, rd2.Host, link)
	net.Link(clientA, rd1.Host, link)
	net.Link(clientB, rd2.Host, link)
	for _, s := range []*Host{s0, s1} {
		net.Link(s, rd1.Host, link)
		net.Link(s, rd2.Host, link)
	}
	net.AutoRoute()
	return net, clientA, clientB, rd1, rd2, []*Host{s0, s1}
}

func TestMirroredRedirectorsServeBothPopulations(t *testing.T) {
	net, clientA, clientB, rd1, rd2, replicas := twoISPTopology(t, 41)
	rd1.Mirror(rd2)
	svc, err := net.DeployFT(testSvc, rd1, replicas, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	// Both redirectors hold the entry.
	for i, rd := range []*Redirector{rd1, rd2} {
		e := rd.Table().Lookup(redirector.ServiceKey(testSvc))
		if e == nil || !e.FT || e.Primary != replicas[0].Addr() {
			t.Fatalf("redirector %d entry = %+v", i+1, e)
		}
	}

	connA, _ := clientA.Dial(testSvc)
	connB, _ := clientB.Dial(testSvc)
	echoA, echoB := collect(connA), collect(connB)
	app.Source(connA, []byte("population A"), false)
	app.Source(connB, []byte("population B"), false)
	net.RunFor(10 * time.Second)
	if string(*echoA) != "population A" || string(*echoB) != "population B" {
		t.Fatalf("echoes %q / %q", *echoA, *echoB)
	}
	_ = svc
}

func TestFailoverPropagatesToMirror(t *testing.T) {
	net, clientA, clientB, rd1, rd2, replicas := twoISPTopology(t, 42)
	rd1.Mirror(rd2)
	svc, err := net.DeployFT(testSvc, rd1, replicas, FTOptions{}, echoAccept())
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	connA, _ := clientA.Dial(testSvc)
	connB, _ := clientB.Dial(testSvc)
	echoA, echoB := collect(connA), collect(connB)
	payload := bytes.Repeat([]byte("z"), 400_000)
	app.Source(connA, payload, false)
	app.Source(connB, payload, false)
	net.RunFor(100 * time.Millisecond)

	svc.CrashPrimary()
	net.RunFor(4 * time.Minute)

	if !bytes.Equal(*echoA, payload) {
		t.Errorf("client A (authority side): %d of %d bytes", len(*echoA), len(payload))
	}
	if !bytes.Equal(*echoB, payload) {
		t.Errorf("client B (mirror side): %d of %d bytes", len(*echoB), len(payload))
	}
	// The mirror's table must have dropped the dead primary.
	e := rd2.Table().Lookup(redirector.ServiceKey(testSvc))
	if e == nil || e.Primary != replicas[1].Addr() || len(e.Backups) != 0 {
		t.Fatalf("mirror entry after failover = %+v", e)
	}
}

func TestMirrorAddedLateConverges(t *testing.T) {
	net, _, clientB, rd1, rd2, replicas := twoISPTopology(t, 43)
	// Deploy first, mirror afterwards: AddPeer must push existing state.
	if _, err := net.DeployFT(testSvc, rd1, replicas, FTOptions{}, echoAccept()); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if rd2.Table().Lookup(redirector.ServiceKey(testSvc)) != nil {
		t.Fatal("mirror has the entry before mirroring was enabled")
	}
	rd1.Mirror(rd2)
	net.Settle()
	if rd2.Table().Lookup(redirector.ServiceKey(testSvc)) == nil {
		t.Fatal("late mirror did not converge")
	}
	connB, _ := clientB.Dial(testSvc)
	echoB := collect(connB)
	app.Source(connB, []byte("late but served"), false)
	net.RunFor(10 * time.Second)
	if string(*echoB) != "late but served" {
		t.Fatalf("echo = %q", *echoB)
	}
}
