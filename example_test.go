package hydranet_test

import (
	"fmt"
	"time"

	"hydranet"
	"hydranet/internal/app"
)

// Example_failover deploys a fault-tolerant echo service, kills the primary
// mid-conversation, and shows the client's connection surviving. Because
// the simulator is deterministic, this output is stable.
func Example_failover() {
	net := hydranet.New(hydranet.Config{Seed: 1})
	client := net.AddHost("client", hydranet.HostConfig{})
	rd := net.AddRedirector("rd", hydranet.HostConfig{})
	s0 := net.AddHost("s0", hydranet.HostConfig{})
	s1 := net.AddHost("s1", hydranet.HostConfig{})
	link := hydranet.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	for _, h := range []*hydranet.Host{client, s0, s1} {
		net.Link(h, rd.Host, link)
	}
	net.AutoRoute()

	svc := hydranet.ServiceID{Addr: hydranet.MustAddr("192.20.225.20"), Port: 7}
	ftsvc, err := net.DeployFT(svc, rd, []*hydranet.Host{s0, s1},
		hydranet.FTOptions{}, func(c *hydranet.Conn) { app.Echo(c) })
	if err != nil {
		fmt.Println("deploy:", err)
		return
	}
	net.Settle()

	conn, err := client.Dial(svc)
	if err != nil {
		fmt.Println("dial:", err)
		return
	}
	var echoed []byte
	app.Collect(conn, &echoed)
	conn.OnConnected(func() { conn.Write([]byte("before ")) })
	net.RunFor(2 * time.Second)

	dead := ftsvc.CrashPrimary()
	conn.Write([]byte("and after the crash"))
	net.RunFor(time.Minute)

	fmt.Printf("crashed: %s\n", dead.Name())
	fmt.Printf("echoed:  %q\n", echoed)
	fmt.Printf("state:   %v\n", conn.State())
	// Output:
	// crashed: s0
	// echoed:  "before and after the crash"
	// state:   ESTABLISHED
}

// Example_ping demonstrates the ICMP layer: ping and traceroute across two
// routers.
func Example_ping() {
	net := hydranet.New(hydranet.Config{Seed: 2})
	client := net.AddHost("client", hydranet.HostConfig{})
	r1 := net.AddRouter("r1", hydranet.HostConfig{})
	server := net.AddHost("server", hydranet.HostConfig{})
	link := hydranet.LinkConfig{Rate: 10_000_000, Delay: 5 * time.Millisecond}
	net.Link(client, r1, link)
	net.Link(r1, server, link)
	net.AutoRoute()

	client.Traceroute(server.Addr(), 4, func(hops []hydranet.Addr) {
		fmt.Printf("%d hops, last %s\n", len(hops), hops[len(hops)-1])
	})
	net.RunFor(10 * time.Second)
	// Output:
	// 2 hops, last 10.2.0.2
}
