package netsim

import (
	"testing"
	"time"

	"hydranet/internal/sim"
)

type countingHandler struct {
	frames int
	bytes  int
}

func (h *countingHandler) HandleFrame(ifindex int, frame []byte) {
	h.frames++
	h.bytes += len(frame)
}

// BenchmarkLinkRoundTrip measures the full fabric cost of delivering one
// frame across a link: CPU charging, queueing, serialization, propagation
// and handler dispatch. Its allocs/op is the per-hop allocation budget of
// every simulated packet.
func BenchmarkLinkRoundTrip(b *testing.B) {
	for _, size := range []int{64, 1500} {
		b.Run(sizeName(size), func(b *testing.B) {
			s := sim.NewScheduler(1)
			net := New(s)
			a := net.AddNode(NodeConfig{Name: "a"})
			c := net.AddNode(NodeConfig{Name: "c"})
			net.Connect(a, c, LinkConfig{Rate: 100_000_000, Delay: 10 * time.Microsecond})
			h := &countingHandler{}
			c.SetHandler(h)
			frame := make([]byte, size)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Send(0, frame)
				s.Run()
			}
			b.StopTimer()
			if h.frames != b.N {
				b.Fatalf("delivered %d of %d frames", h.frames, b.N)
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 64:
		return "64B"
	case 576:
		return "576B"
	default:
		return "1500B"
	}
}
