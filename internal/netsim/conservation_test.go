package netsim

import (
	"math/rand"
	"testing"
	"time"

	"hydranet/internal/sim"
)

// TestFrameConservation: every frame handed to Send is accounted for
// exactly once — delivered, lost to random loss, dropped at the queue, or
// rejected for size. No duplication, no disappearance.
func TestFrameConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		s := sim.NewScheduler(int64(trial))
		net := New(s)
		a := net.AddNode(NodeConfig{Name: "a"})
		b := net.AddNode(NodeConfig{Name: "b"})
		rb := &recorder{sched: s}
		b.SetHandler(rb)
		link := net.Connect(a, b, LinkConfig{
			Rate:       1_000_000,
			Delay:      time.Millisecond,
			MTU:        500,
			QueueBytes: 2000,
			Loss:       float64(trial) * 0.02,
		})
		total := 200 + rng.Intn(200)
		for i := 0; i < total; i++ {
			size := rng.Intn(700) + 1 // some exceed the 500-byte MTU
			s.At(time.Duration(rng.Intn(50))*time.Millisecond, func() {
				a.Send(0, make([]byte, size))
			})
		}
		s.Run()

		sent, _, mtuDrops := a.Stats()
		tx, lost, qdrop := link.Stats()
		if int(sent+mtuDrops) != total {
			t.Fatalf("trial %d: sent %d + mtuDrops %d != total %d", trial, sent, mtuDrops, total)
		}
		if sent != tx[0]+lost[0]+qdrop[0] {
			t.Fatalf("trial %d: sent %d != tx %d + lost %d + qdrop %d",
				trial, sent, tx[0], lost[0], qdrop[0])
		}
		if uint64(len(rb.frames)) != tx[0] {
			t.Fatalf("trial %d: delivered %d != transmitted %d", trial, len(rb.frames), tx[0])
		}
	}
}
