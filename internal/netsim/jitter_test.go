package netsim

import (
	"testing"
	"time"

	"hydranet/internal/sim"
)

func TestJitterReordersFrames(t *testing.T) {
	s := sim.NewScheduler(13)
	net := New(s)
	a := net.AddNode(NodeConfig{Name: "a"})
	b := net.AddNode(NodeConfig{Name: "b"})
	rb := &recorder{sched: s}
	b.SetHandler(rb)
	net.Connect(a, b, LinkConfig{Delay: time.Millisecond, Jitter: 5 * time.Millisecond})
	for i := 0; i < 200; i++ {
		a.Send(0, []byte{byte(i)})
	}
	s.Run()
	if len(rb.frames) != 200 {
		t.Fatalf("delivered %d frames", len(rb.frames))
	}
	reordered := 0
	for i := 1; i < len(rb.frames); i++ {
		if rb.frames[i][0] < rb.frames[i-1][0] {
			reordered++
		}
	}
	if reordered == 0 {
		t.Fatal("5ms jitter produced no reordering across 200 frames")
	}
}

func TestZeroJitterPreservesOrder(t *testing.T) {
	s := sim.NewScheduler(13)
	net := New(s)
	a := net.AddNode(NodeConfig{Name: "a"})
	b := net.AddNode(NodeConfig{Name: "b"})
	rb := &recorder{sched: s}
	b.SetHandler(rb)
	net.Connect(a, b, LinkConfig{Delay: time.Millisecond})
	for i := 0; i < 100; i++ {
		a.Send(0, []byte{byte(i)})
	}
	s.Run()
	for i := range rb.frames {
		if int(rb.frames[i][0]) != i {
			t.Fatal("FIFO link reordered frames")
		}
	}
}
