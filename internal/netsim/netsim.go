// Package netsim models the physical network fabric: nodes with a shared
// CPU, and duplex links with finite rate, propagation delay, MTU, drop-tail
// queues, and optional random loss.
//
// Frames are opaque byte slices; the IP layer above is responsible for all
// header interpretation. Every cost in the model is charged in virtual time
// on the simulation scheduler, so a node with a slow CPU (the paper's 486
// redirector) becomes a bottleneck exactly as it would on the testbed.
package netsim

import (
	"fmt"
	"time"

	"hydranet/internal/frame"
	"hydranet/internal/obs"
	"hydranet/internal/sim"
)

// FrameHandler receives frames delivered to a node, tagged with the index
// of the interface they arrived on. The frame bytes belong to the fabric:
// they are valid only for the duration of the call, and anything retained
// afterwards must be copied (the underlying buffer is recycled as soon as
// HandleFrame returns).
type FrameHandler interface {
	HandleFrame(ifindex int, frame []byte)
}

// FrameTap observes every frame the fabric accepts for transmission, on
// every link and in both directions. It runs synchronously at the instant
// the frame clears the sender's transmit queue (post loss/queue-drop, so a
// tap sees exactly the frames that will reach the far end). The data slice
// aliases a pooled frame buffer owned by the fabric: it is valid only for
// the duration of the call, and a tap that retains bytes must copy them.
type FrameTap func(from, to *Node, data []byte)

// Network is a collection of nodes and links sharing one scheduler, or —
// after SetDomains — partitioned across several per-domain schedulers that
// a sim.Group advances in conservative parallel windows.
type Network struct {
	sched *sim.Scheduler
	nodes []*Node
	links []*Link
	bus   *obs.Bus
	pool  *frame.Pool
	tap   FrameTap

	base *domainRT   // the single domain every node starts in
	doms []*domainRT // non-nil once SetDomains has partitioned the fabric
}

// New returns an empty network driven by the given scheduler.
func New(sched *sim.Scheduler) *Network {
	n := &Network{sched: sched, pool: frame.NewPool()}
	n.base = &domainRT{net: n, id: 0, sched: sched, pool: n.pool} //hydralint:domainsafe constructor; no domains or workers exist yet
	return n
}

// Pool returns the network's frame-buffer pool. Layers above the fabric
// allocate transmit buffers here and hand them to Node.SendFrame; the
// scheduler is single-threaded, so the pool is unsynchronized by design.
func (n *Network) Pool() *frame.Pool { return n.pool }

// SetBus attaches an observability event bus; the fabric emits frame-drop
// and crash/restart events on it. A nil bus (the default) disables all
// emission.
func (n *Network) SetBus(b *obs.Bus) {
	n.bus = b
	n.base.bus = b
	for _, d := range n.doms {
		d.bus = b
	}
}

// SetDomainBus overrides the bus a single domain emits on. In parallel mode
// the facade installs per-domain bus views here so worker-context emission
// never touches shared subscriber state directly.
func (n *Network) SetDomainBus(id int, b *obs.Bus) { n.doms[id].bus = b }

// SetFrameTap installs (or, with nil, removes) the network-wide frame tap.
// The disabled cost is a single pointer test on the link transmit path.
func (n *Network) SetFrameTap(t FrameTap) { n.tap = t }

// Scheduler returns the scheduler driving this network.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Nodes returns a copy of the nodes added so far, in creation order. It
// allocates; iteration-heavy callers (snapshots run once per sampling
// interval) should use NumNodes/NodeAt or ForEachNode instead.
func (n *Network) Nodes() []*Node { return append([]*Node(nil), n.nodes...) }

// NumNodes returns the number of nodes in the network.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NodeAt returns the i'th node in creation order.
func (n *Network) NodeAt(i int) *Node { return n.nodes[i] }

// ForEachNode calls fn for every node in creation order, without
// allocating.
func (n *Network) ForEachNode(fn func(*Node)) {
	for _, nd := range n.nodes {
		fn(nd)
	}
}

// NodeConfig describes a node's processing characteristics.
type NodeConfig struct {
	// Name identifies the node in traces and errors.
	Name string
	// ProcDelay is the CPU cost charged per frame, on both transmit and
	// receive. The node's CPU is a serial resource: frames queue behind
	// each other, which is what makes slow hosts bottlenecks.
	ProcDelay time.Duration
	// ProcPerByte is an additional CPU cost per frame byte, modelling
	// copy and checksum costs that scale with packet size (dominant on
	// the paper's 486-class machines).
	ProcPerByte time.Duration
}

// AddNode creates a node in the network.
func (n *Network) AddNode(cfg NodeConfig) *Node {
	node := &Node{
		net:         n,
		dom:         n.base,
		index:       len(n.nodes),
		name:        cfg.Name,
		procDelay:   cfg.ProcDelay,
		procPerByte: cfg.ProcPerByte,
		alive:       true,
	}
	n.nodes = append(n.nodes, node)
	return node
}

// LinkConfig describes one duplex link.
type LinkConfig struct {
	// Rate is the transmission rate in bits per second. Zero means
	// infinitely fast (no serialization delay).
	Rate int64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// MTU is the maximum frame size in bytes. Larger frames are dropped;
	// the IP layer must fragment. Zero means 1500.
	MTU int
	// QueueBytes bounds the per-direction transmit backlog (drop-tail).
	// Zero means 64 KiB.
	QueueBytes int
	// Loss is the independent probability in [0,1] that a frame is lost.
	Loss float64
	// Jitter adds a uniformly random extra propagation delay in
	// [0, Jitter] per frame. Frames with different jitter can overtake
	// each other, producing out-of-order delivery.
	Jitter time.Duration
}

const (
	defaultMTU   = 1500
	defaultQueue = 64 * 1024
)

// Connect joins two nodes with a duplex link and returns it. Each endpoint
// gains a new interface; the interface indices are returned in node order.
func (n *Network) Connect(a, b *Node, cfg LinkConfig) *Link {
	if cfg.MTU == 0 {
		cfg.MTU = defaultMTU
	}
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = defaultQueue
	}
	l := &Link{net: n, cfg: cfg}
	l.ends[0] = endpoint{node: a, ifindex: len(a.ifaces)}
	l.ends[1] = endpoint{node: b, ifindex: len(b.ifaces)}
	a.ifaces = append(a.ifaces, iface{link: l, side: 0})
	b.ifaces = append(b.ifaces, iface{link: l, side: 1})
	n.links = append(n.links, l)
	return l
}

// Node is a host or router with a serial CPU and a set of interfaces. All
// of a node's execution happens in its synchronization domain: every field
// here is read and written only by events on nd.dom.sched (or by
// coordinator-context code between windows).
type Node struct {
	net         *Network
	dom         *domainRT
	index       int
	name        string
	procDelay   time.Duration
	procPerByte time.Duration
	ifaces      []iface
	handler     FrameHandler
	alive       bool
	cpuFree     time.Duration // virtual time the CPU becomes idle

	// Stats
	sent, received, dropped uint64
}

type iface struct {
	link *Link
	side int
}

// Name returns the node's configured name.
func (nd *Node) Name() string { return nd.name }

// Pool returns the frame pool of the node's synchronization domain, for
// layers that marshal directly into transmit buffers. Before SetDomains
// this is the network-wide pool.
func (nd *Node) Pool() *frame.Pool { return nd.dom.pool }

// Scheduler returns the scheduler of the node's synchronization domain.
// Layers above the fabric (IP, TCP, daemons) must schedule their events
// here rather than on Network.Scheduler, so a partitioned run keeps every
// node's protocol work inside its own domain.
func (nd *Node) Scheduler() *sim.Scheduler { return nd.dom.sched }

// NumInterfaces returns how many links are attached.
func (nd *Node) NumInterfaces() int { return len(nd.ifaces) }

// SetHandler installs the frame sink (normally the node's IP stack).
func (nd *Node) SetHandler(h FrameHandler) { nd.handler = h }

// Alive reports whether the node is running.
func (nd *Node) Alive() bool { return nd.alive }

// Crash fail-stops the node: it silently discards all traffic and performs
// no further processing, matching the fail-stop model in the paper.
func (nd *Node) Crash() {
	nd.alive = false
	if b := nd.dom.bus; b.Enabled(obs.KindNodeCrash) {
		b.Publish(obs.Event{Kind: obs.KindNodeCrash, Node: nd.name})
	}
}

// Restart brings a crashed node back (higher layers must re-register state).
func (nd *Node) Restart() {
	nd.alive = true
	if b := nd.dom.bus; b.Enabled(obs.KindNodeRestart) {
		b.Publish(obs.Event{Kind: obs.KindNodeRestart, Node: nd.name})
	}
}

// SetProc changes the node's CPU cost model mid-run — the gray-failure
// injection knob: a large per-frame delay models a replica that is alive
// (it answers, eventually) but pathologically slow, the "degraded, not
// dead" case the paper's fail-stop detector cannot distinguish.
func (nd *Node) SetProc(procDelay, procPerByte time.Duration) {
	nd.procDelay = procDelay
	nd.procPerByte = procPerByte
}

// ProcBacklog reports how far the node's serial CPU is running behind
// frame arrival: the time until a frame delivered right now would actually
// be processed. Zero on an idle or keeping-up node; on a gray-failing one
// it grows with every queued frame. This is the host-local ingress-queue
// depth a node's own telemetry agent can always export, even when the
// node looks alive from the network.
func (nd *Node) ProcBacklog() time.Duration {
	if b := nd.cpuFree - nd.dom.sched.Now(); b > 0 {
		return b
	}
	return 0
}

// Stats returns cumulative frames sent, received and dropped at this node.
func (nd *Node) Stats() (sent, received, dropped uint64) {
	return nd.sent, nd.received, nd.dropped
}

// MTU returns the MTU of the link on interface ifindex.
func (nd *Node) MTU(ifindex int) int {
	return nd.ifaces[ifindex].link.cfg.MTU
}

// Peer returns the node on the far side of interface ifindex.
func (nd *Node) Peer(ifindex int) *Node {
	ifc := nd.ifaces[ifindex]
	return ifc.link.ends[1-ifc.side].node
}

// Send transmits a copy of frame out interface ifindex. The caller keeps
// ownership of the slice. This is the compatibility path; the zero-copy
// fast path is SendFrame.
func (nd *Node) Send(ifindex int, frame []byte) {
	if !nd.alive {
		return
	}
	fb := nd.dom.pool.Get(len(frame))
	copy(fb.Bytes(), frame)
	nd.SendFrame(ifindex, fb)
}

// SendFrame transmits a pooled frame out interface ifindex, taking
// ownership of fb: the fabric guarantees exactly one Release on every
// outcome — delivery, MTU drop, queue drop, random loss, or a crashed
// node. The frame is charged the node's CPU cost, then the link's queueing,
// serialization and propagation delays.
func (nd *Node) SendFrame(ifindex int, fb *frame.Buf) {
	if !nd.alive {
		fb.Release()
		return
	}
	if ifindex < 0 || ifindex >= len(nd.ifaces) {
		fb.Release()
		panic(fmt.Sprintf("netsim: node %q has no interface %d", nd.name, ifindex))
	}
	ifc := nd.ifaces[ifindex]
	if fb.Len() > ifc.link.cfg.MTU {
		nd.dropped++
		if b := nd.dom.bus; b.Enabled(obs.KindMTUDrop) {
			b.Publish(obs.Event{
				Kind: obs.KindMTUDrop, Node: nd.name, Size: fb.Len(),
				Detail: fmt.Sprintf("mtu %d", ifc.link.cfg.MTU),
			})
		}
		fb.Release()
		return
	}
	nd.sent++
	nd.cpu(fb.Len(), func() {
		if !nd.alive {
			fb.Release()
			return
		}
		ifc.link.transmit(ifc.side, fb)
	})
}

// cpu runs fn after the node's serial CPU has spent the frame's processing
// cost (fixed plus per-byte). fn always runs, even if the node crashed in
// the meantime: callbacks that carry pooled frames must get the chance to
// release them, so liveness checks belong inside fn.
func (nd *Node) cpu(size int, fn func()) {
	s := nd.dom.sched
	start := s.Now()
	if nd.cpuFree > start {
		start = nd.cpuFree
	}
	nd.cpuFree = start + nd.procDelay + time.Duration(size)*nd.procPerByte
	s.At(nd.cpuFree, fn)
}

// deliver is called by a link when a frame arrives at this node. It owns fb
// and releases it after the handler returns (or on any drop path).
func (nd *Node) deliver(ifindex int, fb *frame.Buf) {
	if !nd.alive {
		fb.Release()
		return
	}
	nd.cpu(fb.Len(), func() {
		if !nd.alive {
			fb.Release()
			return
		}
		nd.received++
		if nd.handler != nil {
			nd.handler.HandleFrame(ifindex, fb.Bytes())
		}
		fb.Release()
	})
}

type endpoint struct {
	node    *Node
	ifindex int
}

// Link is a duplex point-to-point link. Each direction has an independent
// transmitter and drop-tail queue.
type Link struct {
	net  *Network
	cfg  LinkConfig
	ends [2]endpoint

	txFree  [2]time.Duration // when the direction's transmitter frees up
	backlog [2]int           // queued bytes per direction

	// Stats per direction (index = sending side).
	txFrames  [2]uint64
	lost      [2]uint64
	queueDrop [2]uint64
}

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// SetLoss changes the link's random loss probability (both directions).
func (l *Link) SetLoss(p float64) { l.cfg.Loss = p }

// Stats returns, per direction, frames transmitted, frames lost to random
// loss, and frames dropped at the queue.
func (l *Link) Stats() (tx, lost, queueDrop [2]uint64) {
	return l.txFrames, l.lost, l.queueDrop
}

// Backlogs returns the bytes currently queued in each direction (index =
// sending side) — the instantaneous queue depths a telemetry sampler reads.
func (l *Link) Backlogs() (ab, ba int) {
	return l.backlog[0], l.backlog[1]
}

func (l *Link) serialization(size int) time.Duration {
	if l.cfg.Rate <= 0 {
		return 0
	}
	bits := int64(size) * 8
	return time.Duration(bits * int64(time.Second) / l.cfg.Rate)
}

// transmit queues a frame for transmission from the given side. It owns fb:
// drop paths release it, and delivery hands it to the destination node.
//
// The whole path runs in the sending node's domain: each direction's
// transmitter state (txFree, backlog, stats) is touched only by that side's
// domain, so the two directions of a cross-domain link never race. Delivery
// to a node in another domain goes through the timestamped hand-off inbox
// instead of a direct scheduler insertion.
func (l *Link) transmit(side int, fb *frame.Buf) {
	sd := l.ends[side].node.dom
	s := sd.sched
	size := fb.Len()
	if l.backlog[side]+size > l.cfg.QueueBytes {
		l.queueDrop[side]++
		if b := sd.bus; b.Enabled(obs.KindQueueDrop) {
			b.Publish(obs.Event{
				Kind: obs.KindQueueDrop, Node: l.ends[side].node.name, Size: size,
				Detail: "→" + l.ends[1-side].node.name,
			})
		}
		fb.Release()
		return
	}
	if l.cfg.Loss > 0 && s.Rand().Float64() < l.cfg.Loss {
		l.lost[side]++
		if b := sd.bus; b.Enabled(obs.KindPacketLoss) {
			b.Publish(obs.Event{
				Kind: obs.KindPacketLoss, Node: l.ends[side].node.name, Size: size,
				Detail: "→" + l.ends[1-side].node.name,
			})
		}
		fb.Release()
		return
	}
	l.backlog[side] += size
	start := s.Now()
	if l.txFree[side] > start {
		start = l.txFree[side]
	}
	done := start + l.serialization(size)
	l.txFree[side] = done
	dst := l.ends[1-side]
	l.txFrames[side]++
	if tap := l.net.tap; tap != nil {
		tap(l.ends[side].node, dst.node, fb.Bytes())
	}
	// The frame leaves the transmit queue once serialized; propagation
	// happens "on the wire" and does not hold queue space.
	s.At(done, func() { l.backlog[side] -= size })
	arrive := done + l.cfg.Delay
	if l.cfg.Jitter > 0 {
		arrive += time.Duration(s.Rand().Int63n(int64(l.cfg.Jitter) + 1))
	}
	if dst.node.dom != sd {
		sd.handoffFrame(arrive, dst, fb)
		return
	}
	s.At(arrive, func() { dst.node.deliver(dst.ifindex, fb) })
}
