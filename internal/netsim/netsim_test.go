package netsim

import (
	"testing"
	"time"

	"hydranet/internal/sim"
)

type recorder struct {
	frames  [][]byte
	ifaces  []int
	arrived []time.Duration
	sched   *sim.Scheduler
}

func (r *recorder) HandleFrame(ifindex int, frame []byte) {
	r.frames = append(r.frames, frame)
	r.ifaces = append(r.ifaces, ifindex)
	r.arrived = append(r.arrived, r.sched.Now())
}

func pair(t *testing.T, cfg LinkConfig) (*sim.Scheduler, *Node, *Node, *recorder, *recorder) {
	t.Helper()
	s := sim.NewScheduler(7)
	net := New(s)
	a := net.AddNode(NodeConfig{Name: "a"})
	b := net.AddNode(NodeConfig{Name: "b"})
	ra := &recorder{sched: s}
	rb := &recorder{sched: s}
	a.SetHandler(ra)
	b.SetHandler(rb)
	net.Connect(a, b, cfg)
	return s, a, b, ra, rb
}

func TestDeliveryAndLatency(t *testing.T) {
	// 1000 bytes at 8 Mbit/s = 1 ms serialization, plus 2 ms propagation.
	s, a, _, _, rb := pair(t, LinkConfig{Rate: 8_000_000, Delay: 2 * time.Millisecond})
	a.Send(0, make([]byte, 1000))
	s.Run()
	if len(rb.frames) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(rb.frames))
	}
	if got, want := rb.arrived[0], 3*time.Millisecond; got != want {
		t.Fatalf("arrival at %v, want %v", got, want)
	}
}

func TestSerializationQueuing(t *testing.T) {
	// Two back-to-back 1000-byte frames: second must wait for the first's
	// serialization slot.
	s, a, _, _, rb := pair(t, LinkConfig{Rate: 8_000_000})
	a.Send(0, make([]byte, 1000))
	a.Send(0, make([]byte, 1000))
	s.Run()
	if len(rb.frames) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(rb.frames))
	}
	if rb.arrived[0] != time.Millisecond || rb.arrived[1] != 2*time.Millisecond {
		t.Fatalf("arrivals %v, want [1ms 2ms]", rb.arrived)
	}
}

func TestDuplexIndependence(t *testing.T) {
	// Traffic in one direction must not delay the other direction.
	s, a, b, ra, rb := pair(t, LinkConfig{Rate: 8_000_000})
	a.Send(0, make([]byte, 1000))
	b.Send(0, make([]byte, 1000))
	s.Run()
	if len(ra.frames) != 1 || len(rb.frames) != 1 {
		t.Fatalf("deliveries a=%d b=%d, want 1 and 1", len(ra.frames), len(rb.frames))
	}
	if ra.arrived[0] != time.Millisecond || rb.arrived[0] != time.Millisecond {
		t.Fatalf("arrivals a=%v b=%v, want 1ms each", ra.arrived[0], rb.arrived[0])
	}
}

func TestMTUDrop(t *testing.T) {
	s, a, _, _, rb := pair(t, LinkConfig{MTU: 100})
	a.Send(0, make([]byte, 101))
	s.Run()
	if len(rb.frames) != 0 {
		t.Fatal("oversized frame was delivered")
	}
	if _, _, dropped := a.Stats(); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

func TestQueueOverflowDropTail(t *testing.T) {
	// Queue of 2000 bytes: third 1000-byte frame while two are backed up
	// must be dropped.
	s, a, _, _, rb := pair(t, LinkConfig{Rate: 8_000_000, QueueBytes: 2000})
	for i := 0; i < 3; i++ {
		a.Send(0, make([]byte, 1000))
	}
	s.Run()
	if len(rb.frames) != 2 {
		t.Fatalf("delivered %d frames, want 2 (drop-tail)", len(rb.frames))
	}
}

func TestLossDeterministic(t *testing.T) {
	run := func() int {
		s := sim.NewScheduler(99)
		net := New(s)
		a := net.AddNode(NodeConfig{Name: "a"})
		b := net.AddNode(NodeConfig{Name: "b"})
		rb := &recorder{sched: s}
		b.SetHandler(rb)
		net.Connect(a, b, LinkConfig{Loss: 0.5})
		for i := 0; i < 100; i++ {
			a.Send(0, []byte{byte(i)})
		}
		s.Run()
		return len(rb.frames)
	}
	first := run()
	if first == 0 || first == 100 {
		t.Fatalf("loss=0.5 delivered %d of 100", first)
	}
	if second := run(); second != first {
		t.Fatalf("same seed delivered %d then %d frames", first, second)
	}
}

func TestCrashStopsTraffic(t *testing.T) {
	s, a, b, _, rb := pair(t, LinkConfig{})
	b.Crash()
	a.Send(0, []byte{1})
	s.Run()
	if len(rb.frames) != 0 {
		t.Fatal("crashed node received a frame")
	}
	if b.Alive() {
		t.Fatal("crashed node reports alive")
	}
	b.Restart()
	a.Send(0, []byte{2})
	s.Run()
	if len(rb.frames) != 1 {
		t.Fatal("restarted node did not receive")
	}
}

func TestCrashedNodeCannotSend(t *testing.T) {
	s, a, _, _, rb := pair(t, LinkConfig{})
	a.Crash()
	a.Send(0, []byte{1})
	s.Run()
	if len(rb.frames) != 0 {
		t.Fatal("crashed node sent a frame")
	}
}

func TestCPUSerialization(t *testing.T) {
	// Receiver with 5 ms per-frame CPU cost: two frames arriving together
	// are processed 5 ms apart.
	s := sim.NewScheduler(7)
	net := New(s)
	a := net.AddNode(NodeConfig{Name: "a"})
	b := net.AddNode(NodeConfig{Name: "b", ProcDelay: 5 * time.Millisecond})
	rb := &recorder{sched: s}
	b.SetHandler(rb)
	net.Connect(a, b, LinkConfig{})
	a.Send(0, []byte{1})
	a.Send(0, []byte{2})
	s.Run()
	if len(rb.frames) != 2 {
		t.Fatalf("delivered %d, want 2", len(rb.frames))
	}
	if gap := rb.arrived[1] - rb.arrived[0]; gap != 5*time.Millisecond {
		t.Fatalf("processing gap %v, want 5ms", gap)
	}
}

func TestMultipleInterfaces(t *testing.T) {
	s := sim.NewScheduler(7)
	net := New(s)
	r := net.AddNode(NodeConfig{Name: "router"})
	a := net.AddNode(NodeConfig{Name: "a"})
	b := net.AddNode(NodeConfig{Name: "b"})
	rr := &recorder{sched: s}
	r.SetHandler(rr)
	net.Connect(a, r, LinkConfig{})
	net.Connect(b, r, LinkConfig{})
	if r.NumInterfaces() != 2 {
		t.Fatalf("router has %d interfaces, want 2", r.NumInterfaces())
	}
	a.Send(0, []byte{1})
	b.Send(0, []byte{2})
	s.Run()
	if len(rr.frames) != 2 {
		t.Fatalf("router got %d frames, want 2", len(rr.frames))
	}
	// Frames must be tagged with the interface they arrived on.
	seen := map[int]byte{}
	for i := range rr.frames {
		seen[rr.ifaces[i]] = rr.frames[i][0]
	}
	if seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("iface tagging wrong: %v", seen)
	}
	if r.Peer(0).Name() != "a" || r.Peer(1).Name() != "b" {
		t.Fatal("Peer returns wrong nodes")
	}
}

func TestSendInvalidInterfacePanics(t *testing.T) {
	s := sim.NewScheduler(1)
	net := New(s)
	a := net.AddNode(NodeConfig{Name: "a"})
	defer func() {
		if recover() == nil {
			t.Error("Send on missing interface did not panic")
		}
	}()
	a.Send(0, []byte{1})
}
