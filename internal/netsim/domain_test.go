package netsim

import (
	"fmt"
	"testing"
	"time"

	"hydranet/internal/sim"
)

// traceRec records every delivery a node sees, stamped with the node's own
// domain clock — the observable a serial and a partitioned run must agree on.
type traceRec struct {
	node    string
	at      time.Duration
	ifindex int
	payload string
}

// tracer records into a per-node sink: in a partitioned run each node's
// handler executes only in its own domain, so per-node sinks need no
// synchronization (the race detector verifies exactly that).
type tracer struct {
	node   **Node // set after AddNode
	sink   []traceRec
	echo   bool // bounce every frame back out the arrival interface
	budget int  // echoes at most budget frames when echo is set (0 = all)
	echoed int
}

func (tr *tracer) HandleFrame(ifindex int, data []byte) {
	nd := *tr.node
	tr.sink = append(tr.sink, traceRec{
		node:    nd.Name(),
		at:      nd.Scheduler().Now(),
		ifindex: ifindex,
		payload: string(data),
	})
	if tr.echo && (tr.budget == 0 || tr.echoed < tr.budget) {
		tr.echoed++
		nd.Send(ifindex, data)
	}
}

// pingPongTopology builds a 4-node line a-b-c-d with ping-pong traffic
// between the outer pairs and cross traffic over the middle link, returning
// the network and the per-node tracers. Partitioned callers split
// {a,b} | {c,d} across the middle link (1 ms delay = the lookahead).
func pingPongTopology(t *testing.T, seed int64) (*sim.Scheduler, *Network, []*Node, []*tracer) {
	t.Helper()
	s := sim.NewScheduler(seed)
	net := New(s)
	nodes := make([]*Node, 4)
	tracers := make([]*tracer, 4)
	for i, name := range []string{"a", "b", "c", "d"} {
		tr := &tracer{echo: true, budget: 10}
		nd := net.AddNode(NodeConfig{Name: name, ProcDelay: 10 * time.Microsecond})
		tr.node = &nd
		nd.SetHandler(tr)
		nodes[i] = nd
		tracers[i] = tr
	}
	fast := LinkConfig{Rate: 10_000_000, Delay: 100 * time.Microsecond}
	mid := LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	net.Connect(nodes[0], nodes[1], fast) // a-b, ifindex 0 on both
	net.Connect(nodes[2], nodes[3], fast) // c-d, ifindex 0 on both
	net.Connect(nodes[1], nodes[2], mid)  // b-c, ifindex 1 on both
	return s, net, nodes, tracers
}

// collect flattens per-node traces into a per-node map.
func collect(tracers []*tracer) map[string][]traceRec {
	m := map[string][]traceRec{}
	for _, tr := range tracers {
		name := (*tr.node).Name()
		m[name] = append(m[name], tr.sink...)
	}
	return m
}

// kickTraffic schedules the initial sends on each node's own domain
// scheduler, staggered so no two cross-domain frames share a timestamp.
func kickTraffic(nodes []*Node) {
	for i, nd := range nodes {
		nd := nd
		payload := fmt.Sprintf("seed-%s", nd.Name())
		nd.Scheduler().At(time.Duration(i+1)*37*time.Microsecond, func() {
			nd.Send(0, []byte(payload))
		})
	}
	// Cross traffic over the middle link, from both sides.
	b, c := nodes[1], nodes[2]
	b.Scheduler().At(211*time.Microsecond, func() { b.Send(1, []byte("b-cross")) })
	c.Scheduler().At(223*time.Microsecond, func() { c.Send(1, []byte("c-cross")) })
}

func runPartitioned(t *testing.T, workers int) map[string][]traceRec {
	t.Helper()
	s, net, nodes, tracers := pingPongTopology(t, 7)
	s2 := sim.NewScheduler(7_000_001)
	scheds := []*sim.Scheduler{s, s2}
	lookahead, err := net.SetDomains([]int{0, 0, 1, 1}, scheds)
	if err != nil {
		t.Fatalf("SetDomains: %v", err)
	}
	if lookahead != time.Millisecond {
		t.Fatalf("lookahead %v, want 1ms (the b-c delay)", lookahead)
	}
	kickTraffic(nodes)
	g := sim.NewGroup(scheds, lookahead, workers)
	g.SetHooks(net.WindowStart, net.WindowEnd, net.StageHandoffs, net.EarliestHandoff)
	g.Run()
	net.Quiesce()
	if ties := net.MergeTies(); ties != 0 {
		t.Fatalf("%d ambiguous merge ties in a staggered topology, want 0", ties)
	}
	if net.Handoffs() == 0 {
		t.Fatal("no cross-domain hand-offs — the partition is not being exercised")
	}
	return collect(tracers)
}

func TestTwoDomainExchangeMatchesSerial(t *testing.T) {
	// Serial reference.
	s, _, nodes, tracers := pingPongTopology(t, 7)
	kickTraffic(nodes)
	s.Run()
	serial := collect(tracers)

	total := 0
	for _, recs := range serial {
		total += len(recs)
	}
	if total == 0 {
		t.Fatal("serial reference run delivered nothing")
	}
	// Each node's delivery sequence — contents, interface and timestamps —
	// is the observable the protocol layers above see; it must be identical
	// for any worker count.
	for _, workers := range []int{1, 2} {
		par := runPartitioned(t, workers)
		for node, want := range serial {
			got := par[node]
			if len(got) != len(want) {
				t.Fatalf("workers=%d node %s: %d deliveries, want %d", workers, node, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d node %s delivery %d:\n  got  %+v\n  want %+v",
						workers, node, i, got[i], want[i])
				}
			}
		}
	}
}

func TestRunUntilDeadlineMatchesSerial(t *testing.T) {
	// Cut both runs off mid-flight at an awkward instant and compare; the
	// two-phase deadline window must not defer a hand-off the serial
	// scheduler would have delivered exactly at the deadline.
	deadline := 2617 * time.Microsecond

	s, _, nodes, tracers := pingPongTopology(t, 7)
	kickTraffic(nodes)
	s.RunUntil(deadline)
	serial := collect(tracers)

	s0, net, pnodes, ptracers := pingPongTopology(t, 7)
	s2 := sim.NewScheduler(7_000_001)
	scheds := []*sim.Scheduler{s0, s2}
	lookahead, err := net.SetDomains([]int{0, 0, 1, 1}, scheds)
	if err != nil {
		t.Fatalf("SetDomains: %v", err)
	}
	kickTraffic(pnodes)
	g := sim.NewGroup(scheds, lookahead, 2)
	g.SetHooks(net.WindowStart, net.WindowEnd, net.StageHandoffs, net.EarliestHandoff)
	g.RunUntil(deadline)
	net.Quiesce()
	par := collect(ptracers)

	for node, want := range serial {
		got := par[node]
		if len(got) != len(want) {
			t.Fatalf("node %s: %d deliveries by deadline, serial had %d", node, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %s delivery %d:\n  got  %+v\n  want %+v", node, i, got[i], want[i])
			}
		}
	}
	if g.Now() != deadline {
		t.Fatalf("group clock %v, want %v", g.Now(), deadline)
	}
}

func TestSetDomainsValidation(t *testing.T) {
	s := sim.NewScheduler(1)
	net := New(s)
	a := net.AddNode(NodeConfig{Name: "a"})
	b := net.AddNode(NodeConfig{Name: "b"})
	net.Connect(a, b, LinkConfig{}) // zero delay
	s2 := sim.NewScheduler(2)

	if _, err := net.SetDomains([]int{0}, []*sim.Scheduler{s, s2}); err == nil {
		t.Fatal("partition covering one of two nodes accepted")
	}
	if _, err := net.SetDomains([]int{0, 2}, []*sim.Scheduler{s, s2}); err == nil {
		t.Fatal("out-of-range domain accepted")
	}
	if _, err := net.SetDomains([]int{0, 1}, []*sim.Scheduler{s, s2}); err == nil {
		t.Fatal("zero-delay cross-domain link accepted — no lookahead exists")
	}
	s.At(time.Millisecond, func() {})
	if _, err := net.SetDomains([]int{0, 0}, []*sim.Scheduler{s, s2}); err == nil {
		t.Fatal("partition with pending events accepted")
	}
	s.Run()
	if _, err := net.SetDomains([]int{0, 0}, []*sim.Scheduler{s, s2}); err != nil {
		t.Fatalf("all-internal zero-delay link rejected: %v", err)
	}
	if _, err := net.SetDomains([]int{0, 0}, []*sim.Scheduler{s, s2}); err == nil {
		t.Fatal("double partition accepted")
	}
	if net.Domains() != 2 {
		t.Fatalf("Domains() = %d, want 2", net.Domains())
	}
	if net.DomainOf(a) != 0 || net.DomainOf(b) != 0 {
		t.Fatal("nodes not assigned to domain 0")
	}
}

func TestQuiesceReleasesInFlightHandoffs(t *testing.T) {
	s, net, nodes, _ := pingPongTopology(t, 7)
	s2 := sim.NewScheduler(7_000_001)
	scheds := []*sim.Scheduler{s, s2}
	lookahead, err := net.SetDomains([]int{0, 0, 1, 1}, scheds)
	if err != nil {
		t.Fatalf("SetDomains: %v", err)
	}
	kickTraffic(nodes)
	g := sim.NewGroup(scheds, lookahead, 2)
	g.SetHooks(net.WindowStart, net.WindowEnd, net.StageHandoffs, net.EarliestHandoff)
	// Stop mid-flight so hand-offs are still on the wire, then quiesce.
	g.RunUntil(500 * time.Microsecond)
	net.Quiesce()
	net.Quiesce() // idempotent
	// Remaining outstanding buffers are deliveries pending inside domain
	// schedulers (same as a serial run cut mid-flight); drain them.
	g.Run()
	net.Quiesce()
	if out := net.Pool().Outstanding(); out != 0 {
		t.Fatalf("base pool outstanding %d after drain+quiesce, want 0", out)
	}
	for i, d := range net.doms {
		if out := d.pool.Outstanding(); out != 0 {
			t.Fatalf("domain %d pool outstanding %d after drain+quiesce, want 0", i, out)
		}
	}
}
