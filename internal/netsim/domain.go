package netsim

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"hydranet/internal/frame"
	"hydranet/internal/obs"
	"hydranet/internal/sim"
)

// domainRT is the per-domain execution state of a partitioned network: a
// private scheduler and frame pool, an inbox of timestamped cross-domain
// frame hand-offs, and per-destination outboxes batching this domain's own
// hand-offs until the window barrier.
//
// Concurrency contract (enforced by the sim.Group phase structure and
// checked by the hydralint domainfence analyzer):
//
//   - During a window, a domain's worker touches only its own state plus
//     its outbox batches. Nothing here is shared.
//   - At the window edge the worker flushes each outbox batch into the
//     destination inbox under that inbox's mutex — the only lock on the
//     cross-domain path, taken once per (src,dst) pair per window.
//   - At the barrier the coordinator stages every inbox (StageHandoffs), and
//     at the next window start the destination drains the staged set only,
//     merges the entries in (arrive, birth, src) order, copies each frame
//     into its own pool and schedules delivery with the original birth, so
//     the event lands exactly where a single serial scheduler would have
//     placed it. Staging pins the drain to the window protocol: without it,
//     whether a destination sees a flush this cycle or next would depend on
//     how domains are strided across workers, and pool accounting sampled at
//     barriers would vary with the worker count.
//   - A handed-off frame buffer stays owned by the sender's pool. The
//     sender releases it two barriers later (sentNew → sentMid → released),
//     by which point the destination has long since taken its copy.
type domainRT struct {
	net   *Network
	id    int
	sched *sim.Scheduler
	pool  *frame.Pool
	bus   *obs.Bus // per-domain emission target (a view in parallel mode)

	inbox struct {
		mu      sync.Mutex
		entries []handoff
	}
	staged []handoff   // inbox entries published at the last barrier
	outbox [][]handoff // indexed by destination domain; worker-local

	sentNew []*frame.Buf // hand-off buffers sent this window
	sentMid []*frame.Buf // sent last window; destination has copied them
	arrFree []*pendingArrival

	handoffs  uint64   // frames handed across domains
	handoffTo []uint64 // frames handed to each destination domain
	ties      uint64   // ambiguous cross-domain merge ties (see MergeTies)
}

// handoff is one cross-domain frame in flight: it arrives on dst's
// interface ifindex at virtual time arrive, and was sent by an event in
// domain src executing at virtual time birth.
type handoff struct {
	arrive  time.Duration
	birth   time.Duration
	depth   uint64 // sender event's causal depth (0 unless profiling)
	src     int32
	ifindex int32
	node    *Node
	fb      *frame.Buf
}

// pendingArrival is a recycled delivery record: its cached fire closure
// keeps the merge path allocation-free in steady state.
type pendingArrival struct {
	dom     *domainRT
	node    *Node
	ifindex int
	fb      *frame.Buf
	fireFn  func()
}

func (pa *pendingArrival) fire() {
	node, ifindex, fb := pa.node, pa.ifindex, pa.fb
	pa.node = nil
	pa.fb = nil
	d := pa.dom
	d.arrFree = append(d.arrFree, pa)
	node.deliver(ifindex, fb)
}

func (d *domainRT) getArrival() *pendingArrival {
	if k := len(d.arrFree); k > 0 {
		pa := d.arrFree[k-1]
		d.arrFree[k-1] = nil
		d.arrFree = d.arrFree[:k-1]
		return pa
	}
	pa := &pendingArrival{dom: d}
	pa.fireFn = pa.fire
	return pa
}

// SetDomains partitions the network for conservative parallel execution:
// assign maps each node (by creation index) to a domain, and scheds[i] is
// domain i's scheduler (scheds[0] is conventionally the network's original
// scheduler, so single-domain state carries over). It returns the
// partition's lookahead: the minimum propagation delay over cross-domain
// links, which bounds how far any domain may run ahead of the others.
//
// Constraints: the topology must be final, no events may be pending on the
// base scheduler, and every cross-domain link needs a positive propagation
// delay — a zero-delay link provides no lookahead and must stay internal.
// With no cross-domain links at all the domains are fully independent and
// the returned lookahead is sim.KeyMax (callers cap their window size).
func (n *Network) SetDomains(assign []int, scheds []*sim.Scheduler) (time.Duration, error) {
	if n.doms != nil {
		return 0, fmt.Errorf("netsim: network already partitioned")
	}
	if len(assign) != len(n.nodes) {
		return 0, fmt.Errorf("netsim: partition covers %d of %d nodes", len(assign), len(n.nodes))
	}
	if len(scheds) < 1 {
		return 0, fmt.Errorf("netsim: partition needs at least one scheduler")
	}
	if n.sched.Pending() > 0 {
		return 0, fmt.Errorf("netsim: partition with %d events already pending", n.sched.Pending())
	}
	for i, d := range assign {
		if d < 0 || d >= len(scheds) {
			return 0, fmt.Errorf("netsim: node %q assigned to domain %d of %d", n.nodes[i].name, d, len(scheds))
		}
	}
	lookahead := time.Duration(sim.KeyMax)
	for _, l := range n.links {
		da, db := assign[l.ends[0].node.index], assign[l.ends[1].node.index]
		if da == db {
			continue
		}
		if l.cfg.Delay <= 0 {
			return 0, fmt.Errorf("netsim: cross-domain link %s-%s has no propagation delay (no lookahead)",
				l.ends[0].node.name, l.ends[1].node.name)
		}
		if l.cfg.Delay < lookahead {
			lookahead = l.cfg.Delay
		}
	}
	doms := make([]*domainRT, len(scheds))
	for i, s := range scheds {
		d := &domainRT{net: n, id: i, sched: s, pool: frame.NewPool(), bus: n.bus}
		d.outbox = make([][]handoff, len(scheds))
		d.handoffTo = make([]uint64, len(scheds))
		doms[i] = d
	}
	// Domain 0 inherits the base pool so buffers already handed out (none
	// in steady use before traffic, but tests may hold some) stay valid.
	doms[0].pool = n.pool
	for i, nd := range n.nodes {
		nd.dom = doms[assign[i]]
	}
	n.doms = doms
	return lookahead, nil
}

// Domains returns the number of domains (1 before SetDomains).
func (n *Network) Domains() int {
	if n.doms == nil {
		return 1
	}
	return len(n.doms)
}

// DomainOf returns the domain a node belongs to.
func (n *Network) DomainOf(nd *Node) int { return nd.dom.id }

// Handoffs returns the total number of frames handed across domains.
func (n *Network) Handoffs() uint64 {
	var total uint64
	for _, d := range n.doms {
		total += d.handoffs
	}
	return total
}

// HandoffMatrix fills dst — length Domains()² , indexed src*Domains()+to —
// with the cumulative cross-domain hand-off counts and reports whether the
// network is partitioned. Coordinator context only (a barrier or between
// runs): workers append hand-offs during windows, and the window WaitGroup
// orders those writes before any coordinator read.
func (n *Network) HandoffMatrix(dst []uint64) bool {
	if n.doms == nil {
		return false
	}
	k := len(n.doms)
	for _, d := range n.doms {
		for to, c := range d.handoffTo {
			dst[d.id*k+to] = c
		}
	}
	return true
}

// MergeTies returns how many cross-domain merge decisions were ambiguous:
// two hand-offs from different source domains carrying identical
// (arrive, birth) keys, where the serial tie-break (global insertion order)
// is not reconstructible from timestamps. Runs with zero ties are
// bit-identical to the serial scheduler; a nonzero count means the
// partition's outputs are still deterministic, but may order those specific
// simultaneous events differently than a serial run would.
func (n *Network) MergeTies() uint64 {
	var total uint64
	for _, d := range n.doms {
		total += d.ties
	}
	return total
}

// PoolOutstanding counts in-flight frame buffers net-wide, each logical
// frame exactly once: a handed-off frame is double-held for one window (the
// sender retains the original until its deferred release while the
// destination owns the copy), and subtracting the consumed generation
// (sentMid) removes exactly those duplicates. Serial networks report the
// plain pool occupancy, so the value is partition-invariant — a telemetry
// sampler reads the same gauge at the same virtual instant under any
// partition. Coordinator context (a barrier or between runs) only.
func (n *Network) PoolOutstanding() int {
	if n.doms == nil {
		return n.pool.Outstanding()
	}
	total := 0
	for _, d := range n.doms {
		total += d.pool.Outstanding() - len(d.sentMid)
	}
	return total
}

// PoolMisses sums cumulative allocation misses across domain pools. Unlike
// PoolOutstanding this is allocator telemetry, not a simulation observable:
// each domain pool warms its own free lists, so the sum depends on the
// partition (though not on the worker count).
func (n *Network) PoolMisses() uint64 {
	if n.doms == nil {
		_, _, misses := n.pool.Stats()
		return misses
	}
	var total uint64
	for _, d := range n.doms {
		_, _, misses := d.pool.Stats()
		total += misses
	}
	return total
}

// PendingHandoffs counts undelivered cross-domain hand-offs — frames a
// serial scheduler would hold as pending delivery events — wherever they sit
// in the pipeline (outbox, inbox, or staged). Coordinator context only.
func (n *Network) PendingHandoffs() int {
	total := 0
	for _, d := range n.doms {
		d.inbox.mu.Lock()
		total += len(d.inbox.entries)
		d.inbox.mu.Unlock()
		total += len(d.staged)
		for _, batch := range d.outbox {
			total += len(batch)
		}
	}
	return total
}

// StageHandoffs publishes every inbox flush to its destination's staging
// area. Coordinator context (every barrier, all workers parked): fixing the
// drained set here makes each window's deliveries a function of the window
// protocol alone, independent of how domains are strided across workers.
func (n *Network) StageHandoffs() {
	for _, d := range n.doms {
		in := &d.inbox
		in.mu.Lock()
		if len(in.entries) > 0 {
			d.staged = append(d.staged, in.entries...)
			for i := range in.entries {
				in.entries[i].fb = nil
				in.entries[i].node = nil
			}
			in.entries = in.entries[:0]
		}
		in.mu.Unlock()
	}
}

// WindowStart is the sim.Group window-start hook for domain id: release
// hand-off buffers the destinations have consumed, then drain, merge and
// schedule this domain's staged hand-offs. Runs in worker context.
func (n *Network) WindowStart(id int) {
	d := n.doms[id]
	for i, fb := range d.sentMid {
		fb.Release()
		d.sentMid[i] = nil
	}
	d.sentMid, d.sentNew = d.sentNew, d.sentMid[:0]

	entries := d.staged
	if len(entries) == 0 {
		return
	}
	// Stable sort on (arrive, birth, src): stability preserves per-source
	// send order, which equals the source domain's execution order — the
	// same FIFO tie-break the serial scheduler's sequence counter applies.
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := &entries[i], &entries[j]
		if a.arrive != b.arrive {
			return a.arrive < b.arrive
		}
		if a.birth != b.birth {
			return a.birth < b.birth
		}
		return a.src < b.src
	})
	for i := range entries {
		e := &entries[i]
		if i > 0 {
			p := &entries[i-1]
			if p.arrive == e.arrive && p.birth == e.birth && p.src != e.src {
				d.ties++
			}
		}
		nb := d.pool.GetCopy(e.fb.Bytes())
		pa := d.getArrival()
		pa.node = e.node
		pa.ifindex = int(e.ifindex)
		pa.fb = nb
		// AtBirthFrom carries the sender event's causal depth across the
		// domain boundary, so a profiled run's critical path matches the
		// chain a serial scheduler would have recorded.
		d.sched.AtBirthFrom(e.arrive, e.birth, e.depth, pa.fireFn)
		e.fb = nil
		e.node = nil
	}
	d.staged = d.staged[:0]
}

// WindowEnd is the sim.Group window-end hook for domain id: flush every
// non-empty outbox batch into its destination inbox, one lock acquisition
// per destination. Runs in worker context.
func (n *Network) WindowEnd(id int) {
	d := n.doms[id]
	for dst, batch := range d.outbox {
		if len(batch) == 0 {
			continue
		}
		t := n.doms[dst]
		t.inbox.mu.Lock()
		t.inbox.entries = append(t.inbox.entries, batch...)
		t.inbox.mu.Unlock()
		for i := range batch {
			batch[i].fb = nil
			batch[i].node = nil
		}
		d.outbox[dst] = batch[:0]
	}
}

// EarliestHandoff reports the smallest arrival time over every undelivered
// hand-off, for the Group's idle-window skip. Coordinator context (all
// workers parked), but the inbox locks are taken anyway so the race
// detector can verify the phase discipline.
func (n *Network) EarliestHandoff() (time.Duration, bool) {
	var best time.Duration
	ok := false
	for _, d := range n.doms {
		d.inbox.mu.Lock()
		for i := range d.inbox.entries {
			if t := d.inbox.entries[i].arrive; !ok || t < best {
				best, ok = t, true
			}
		}
		d.inbox.mu.Unlock()
		for i := range d.staged {
			if t := d.staged[i].arrive; !ok || t < best {
				best, ok = t, true
			}
		}
		// Outbox batches only hold frames sent from coordinator context
		// (setup code transmitting between runs); during a run every batch is
		// flushed before the coordinator looks.
		for _, batch := range d.outbox {
			for i := range batch {
				if t := batch[i].arrive; !ok || t < best {
					best, ok = t, true
				}
			}
		}
	}
	return best, ok
}

// Quiesce releases every hand-off buffer still held by the partition:
// consumed generations awaiting their deferred release, and unconsumed
// in-flight entries whose delivery window never ran (frames "on the wire"
// past a RunUntil deadline). Coordinator context only, with no further
// windows scheduled — after Quiesce, pool accounting matches a serial run
// that was cut off at the same instant. Safe to call repeatedly.
func (n *Network) Quiesce() {
	for _, d := range n.doms {
		d.inbox.mu.Lock()
		// Entries still in the inbox reference buffers that also sit in
		// their sender's sentNew list; dropping the entries here and
		// releasing via the sent lists below frees each buffer exactly once.
		for i := range d.inbox.entries {
			d.inbox.entries[i].fb = nil
			d.inbox.entries[i].node = nil
		}
		d.inbox.entries = d.inbox.entries[:0]
		d.inbox.mu.Unlock()
		for i := range d.staged {
			d.staged[i].fb = nil
			d.staged[i].node = nil
		}
		d.staged = d.staged[:0]
	}
	for _, d := range n.doms {
		for i, fb := range d.sentMid {
			fb.Release()
			d.sentMid[i] = nil
		}
		d.sentMid = d.sentMid[:0]
		for i, fb := range d.sentNew {
			fb.Release()
			d.sentNew[i] = nil
		}
		d.sentNew = d.sentNew[:0]
	}
}

// handoffFrame queues fb for delivery in the destination's domain. Called
// from Link.transmit in the sender's worker context; sd is the sender-side
// domain, which keeps ownership of fb until two barriers from now.
func (sd *domainRT) handoffFrame(arrive time.Duration, dst endpoint, fb *frame.Buf) {
	dd := dst.node.dom
	sd.outbox[dd.id] = append(sd.outbox[dd.id], handoff{
		arrive:  arrive,
		birth:   sd.sched.Now(),
		depth:   sd.sched.CurrentDepth(),
		src:     int32(sd.id),
		ifindex: int32(dst.ifindex),
		node:    dst.node,
		fb:      fb,
	})
	sd.sentNew = append(sd.sentNew, fb)
	sd.handoffs++
	sd.handoffTo[dd.id]++
}
