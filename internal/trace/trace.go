// Package trace renders protocol events as human-readable, tcpdump-style
// lines. It hooks the TCP stack's segment observer and the manager's
// acknowledgment channel, timestamped in virtual time, and is used by the
// hydranet-sim tool's -trace flag and by tests when diagnosing runs.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"

	"hydranet/internal/obs"
	"hydranet/internal/sim"
	"hydranet/internal/tcp"
)

// Tracer writes one line per observed event.
type Tracer struct {
	mu      sync.Mutex
	w       io.Writer
	sched   *sim.Scheduler
	count   uint64
	limit   uint64 // 0 = unlimited
	dropped uint64 // lines suppressed by the limit
}

// New creates a tracer writing to w with timestamps from sched.
func New(w io.Writer, sched *sim.Scheduler) *Tracer {
	return &Tracer{w: w, sched: sched}
}

// SetLimit caps the number of emitted lines (0 = unlimited); further events
// are dropped and counted (see Dropped). Useful to keep traces of long runs
// readable.
func (t *Tracer) SetLimit(n uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.limit = n
}

// Count returns the number of lines emitted so far.
func (t *Tracer) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Dropped returns the number of lines suppressed by the limit.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Emit writes one formatted trace line.
func (t *Tracer) Emit(host, format string, args ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limit > 0 && t.count >= t.limit {
		t.dropped++
		return
	}
	t.count++
	fmt.Fprintf(t.w, "%12s %-10s %s\n",
		t.sched.Now().Round(time.Microsecond), host, fmt.Sprintf(format, args...))
}

// TCPFunc returns a tcp.TraceFunc that logs segments at one host's stack
// boundary, labelled with the host name.
func (t *Tracer) TCPFunc(host string) tcp.TraceFunc {
	return func(dir string, local, remote tcp.Endpoint, seg *tcp.Segment) {
		arrow := "→"
		a, b := local, remote
		if dir == "in" {
			a, b = remote, local
			arrow = "←"
		}
		t.Emit(host, "tcp %s %s %s  %s", a, arrow, b, seg)
	}
}

// AttachTCP wires the tracer to a TCP stack.
func (t *Tracer) AttachTCP(host string, st *tcp.Stack) {
	st.SetTrace(t.TCPFunc(host))
}

// AttachBus subscribes the tracer to an observability bus, rendering each
// event as a trace line. With no kinds the tracer sees every event; the
// tracer is then just one bus subscriber among many. Bus events honor
// SetLimit exactly like Emit calls — dropped events count in Dropped, and
// once the limit is hit the event is never rendered (Event.Text formats
// lazily, after the limit check, so a capped tracer on a busy bus costs a
// mutex round-trip and nothing more).
func (t *Tracer) AttachBus(b *obs.Bus, kinds ...obs.Kind) {
	b.Subscribe(t.emitEvent, kinds...)
}

// emitEvent renders one bus event, checking the line limit before any
// formatting work happens.
func (t *Tracer) emitEvent(e obs.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limit > 0 && t.count >= t.limit {
		t.dropped++
		return
	}
	t.count++
	fmt.Fprintf(t.w, "%12s %-10s %s\n",
		t.sched.Now().Round(time.Microsecond), e.Node, e.Text())
}
