package trace

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/netsim"
	"hydranet/internal/obs"
	"hydranet/internal/sim"
	"hydranet/internal/tcp"
)

func TestTracerFormatsSegments(t *testing.T) {
	sched := sim.NewScheduler(1)
	nw := netsim.New(sched)
	a := nw.AddNode(netsim.NodeConfig{Name: "a"})
	b := nw.AddNode(netsim.NodeConfig{Name: "b"})
	nw.Connect(a, b, netsim.LinkConfig{Delay: time.Millisecond})
	sa, sb := ipv4.NewStack(a, sched), ipv4.NewStack(b, sched)
	sa.SetAddr(0, ipv4.MustParseAddr("10.0.0.1"))
	sb.SetAddr(0, ipv4.MustParseAddr("10.0.0.2"))
	sa.Routes().AddDefault(0)
	sb.Routes().AddDefault(0)
	ca := tcp.NewStack(sa, tcp.Config{})
	cb := tcp.NewStack(sb, tcp.Config{})

	var out strings.Builder
	tr := New(&out, sched)
	tr.AttachTCP("client", ca)
	tr.AttachTCP("server", cb)

	l, _ := cb.Listen(0, 80)
	l.SetAcceptFunc(func(c *tcp.Conn) {})
	if _, err := ca.Connect(0, tcp.Endpoint{Addr: ipv4.MustParseAddr("10.0.0.2"), Port: 80}); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(time.Second)

	text := out.String()
	if !strings.Contains(text, "SYN") || !strings.Contains(text, "SYN|ACK") {
		t.Fatalf("handshake not visible in trace:\n%s", text)
	}
	if !strings.Contains(text, "client") || !strings.Contains(text, "server") {
		t.Fatal("host labels missing")
	}
	if tr.Count() < 6 { // 3 segments, each seen at both ends
		t.Fatalf("only %d lines for a full handshake", tr.Count())
	}
}

func TestTracerLimit(t *testing.T) {
	sched := sim.NewScheduler(1)
	var out strings.Builder
	tr := New(&out, sched)
	tr.SetLimit(3)
	for i := 0; i < 10; i++ {
		tr.Emit("x", "line %d", i)
	}
	if tr.Count() != 3 {
		t.Fatalf("Count = %d, want 3", tr.Count())
	}
	if got := strings.Count(out.String(), "\n"); got != 3 {
		t.Fatalf("emitted %d lines, want 3", got)
	}
	if tr.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", tr.Dropped())
	}
}

// TestTracerSetLimitConcurrent exercises SetLimit racing with Emit; run
// under -race it verifies the limit is mutex-protected.
func TestTracerSetLimitConcurrent(t *testing.T) {
	sched := sim.NewScheduler(1)
	tr := New(io.Discard, sched)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.SetLimit(uint64(g*200 + i))
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit("x", "line %d", i)
			}
		}()
	}
	wg.Wait()
	if tr.Count()+tr.Dropped() != 4*200 {
		t.Fatalf("Count+Dropped = %d, want %d", tr.Count()+tr.Dropped(), 4*200)
	}
}

// TestTracerAttachBusHonorsLimit is the regression test for the AttachBus /
// SetLimit interaction: bus-fed lines must count against the same limit as
// Emit calls, suppressed bus events must show up in Dropped, and — because
// Event.Text formats lazily, after the limit check — a capped tracer on a
// busy bus must not allocate per event.
func TestTracerAttachBusHonorsLimit(t *testing.T) {
	sched := sim.NewScheduler(1)
	var out strings.Builder
	tr := New(&out, sched)
	tr.SetLimit(2)
	bus := obs.NewBus(sched.Now)
	tr.AttachBus(bus)

	tr.Emit("x", "direct line") // shares the budget with bus events
	for i := 0; i < 5; i++ {
		bus.Publish(obs.Event{Kind: obs.KindSuspicion, Node: "s1", Detail: "probe timeout"})
	}
	if tr.Count() != 2 {
		t.Fatalf("Count = %d, want 2", tr.Count())
	}
	if tr.Dropped() != 4 {
		t.Fatalf("Dropped = %d, want 4 (bus events past the limit)", tr.Dropped())
	}
	if got := strings.Count(out.String(), "\n"); got != 2 {
		t.Fatalf("emitted %d lines, want 2:\n%s", got, out.String())
	}

	// Over the limit, a published event must cost no allocations: the text
	// is never formatted.
	allocs := testing.AllocsPerRun(100, func() {
		bus.Publish(obs.Event{Kind: obs.KindSuspicion, Node: "s1", Detail: "probe timeout"})
	})
	if allocs != 0 {
		t.Fatalf("over-limit bus event allocates %v per run, want 0", allocs)
	}
}

func TestTracerAttachBus(t *testing.T) {
	sched := sim.NewScheduler(1)
	var out strings.Builder
	tr := New(&out, sched)
	bus := obs.NewBus(sched.Now)
	tr.AttachBus(bus, obs.KindPromotion)

	bus.Publish(obs.Event{Kind: obs.KindPromotion, Node: "s1", Service: "10.0.0.1:80"})
	bus.Publish(obs.Event{Kind: obs.KindRetransmit, Node: "s1"}) // not subscribed

	text := out.String()
	if !strings.Contains(text, "promotion") || !strings.Contains(text, "s1") {
		t.Fatalf("bus event not rendered: %q", text)
	}
	if strings.Contains(text, "retransmit") {
		t.Fatalf("unsubscribed kind rendered: %q", text)
	}
}
