package trace

import (
	"strings"
	"testing"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/netsim"
	"hydranet/internal/sim"
	"hydranet/internal/tcp"
)

func TestTracerFormatsSegments(t *testing.T) {
	sched := sim.NewScheduler(1)
	nw := netsim.New(sched)
	a := nw.AddNode(netsim.NodeConfig{Name: "a"})
	b := nw.AddNode(netsim.NodeConfig{Name: "b"})
	nw.Connect(a, b, netsim.LinkConfig{Delay: time.Millisecond})
	sa, sb := ipv4.NewStack(a, sched), ipv4.NewStack(b, sched)
	sa.SetAddr(0, ipv4.MustParseAddr("10.0.0.1"))
	sb.SetAddr(0, ipv4.MustParseAddr("10.0.0.2"))
	sa.Routes().AddDefault(0)
	sb.Routes().AddDefault(0)
	ca := tcp.NewStack(sa, tcp.Config{})
	cb := tcp.NewStack(sb, tcp.Config{})

	var out strings.Builder
	tr := New(&out, sched)
	tr.AttachTCP("client", ca)
	tr.AttachTCP("server", cb)

	l, _ := cb.Listen(0, 80)
	l.SetAcceptFunc(func(c *tcp.Conn) {})
	if _, err := ca.Connect(0, tcp.Endpoint{Addr: ipv4.MustParseAddr("10.0.0.2"), Port: 80}); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(time.Second)

	text := out.String()
	if !strings.Contains(text, "SYN") || !strings.Contains(text, "SYN|ACK") {
		t.Fatalf("handshake not visible in trace:\n%s", text)
	}
	if !strings.Contains(text, "client") || !strings.Contains(text, "server") {
		t.Fatal("host labels missing")
	}
	if tr.Count() < 6 { // 3 segments, each seen at both ends
		t.Fatalf("only %d lines for a full handshake", tr.Count())
	}
}

func TestTracerLimit(t *testing.T) {
	sched := sim.NewScheduler(1)
	var out strings.Builder
	tr := New(&out, sched)
	tr.SetLimit(3)
	for i := 0; i < 10; i++ {
		tr.Emit("x", "line %d", i)
	}
	if tr.Count() != 3 {
		t.Fatalf("Count = %d, want 3", tr.Count())
	}
	if got := strings.Count(out.String(), "\n"); got != 3 {
		t.Fatalf("emitted %d lines, want 3", got)
	}
}
