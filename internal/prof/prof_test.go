package prof

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleProfile is a small, fully deterministic 3-domain profile: fixed
// wall offsets, two windows, one hand-off flow. It doubles as the golden
// trace fixture, so keep it stable.
func sampleProfile() *Profile {
	return &Profile{
		ProfVersion: FormatVersion,
		Scenario:    "golden",
		Seed:        11,
		Domains:     3,
		Workers:     2,
		LookaheadNs: 1_000_000,
		VirtualNs:   2_000_000,
		WallNs:      90_000,
		Events:      120,
		Handoffs:    4,
		MergeTies:   0,
		CriticalPath: CriticalPath{
			Depth: 30, DeepestAtNs: 2_000_000,
			SampleEvery: 4, EdgesSeen: 119, EdgesRecorded: 29,
			Edges: []Edge{
				{ParentAtNs: 1000, ParentBirthNs: 1000, ChildAtNs: 51000, ChildBirthNs: 1000, Depth: 2},
			},
		},
		DomainTotals: []DomainTotal{
			{Domain: 0, MergeNs: 2000, ExecNs: 30000, FlushNs: 1000, StallNs: 3000, Events: 60},
			{Domain: 1, MergeNs: 1000, ExecNs: 20000, FlushNs: 1000, StallNs: 14000, Events: 40},
			{Domain: 2, MergeNs: 1000, ExecNs: 10000, FlushNs: 1000, StallNs: 24000, Events: 20},
		},
		HandoffMatrix: []uint64{0, 2, 0, 1, 0, 0, 0, 1, 0},
		WindowsRun:    2,
		WindowsKept:   2,
		Barriers:      3,
		BarrierNs:     4000,
		WindowWallNs:  72000,
		Windows: []Window{
			{
				Seq: 0, BoundAtNs: 1_000_000, StartNs: 0, EndNs: 36000, BarrierNs: 2000,
				Domains: []WindowDomain{
					{MergeNs: 1000, ExecNs: 15000, FlushNs: 500, StallNs: 1500, DoneNs: 34500, Events: 30},
					{MergeNs: 500, ExecNs: 10000, FlushNs: 500, StallNs: 7000, DoneNs: 29000, Events: 20},
					{MergeNs: 500, ExecNs: 5000, FlushNs: 500, StallNs: 12000, DoneNs: 24000, Events: 10},
				},
				Flows: []uint64{0, 2, 0, 0, 0, 0, 0, 0, 0},
			},
			{
				Seq: 1, BoundAtNs: 2_000_000, StartNs: 38000, EndNs: 74000, BarrierNs: 2000,
				Domains: []WindowDomain{
					{MergeNs: 1000, ExecNs: 15000, FlushNs: 500, StallNs: 1500, DoneNs: 72500, Events: 30},
					{MergeNs: 500, ExecNs: 10000, FlushNs: 500, StallNs: 7000, DoneNs: 67000, Events: 20},
					{MergeNs: 500, ExecNs: 5000, FlushNs: 500, StallNs: 12000, DoneNs: 62000, Events: 10},
				},
				Flows: []uint64{0, 0, 0, 1, 0, 0, 0, 1, 0},
			},
		},
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	p := sampleProfile()
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if q.Events != p.Events || q.CriticalPath.Depth != p.CriticalPath.Depth ||
		len(q.Windows) != len(p.Windows) || q.Windows[1].Flows[3] != 1 {
		t.Fatalf("round trip mangled the profile: %+v", q)
	}
}

func TestLoadRejectsForeignJSON(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"version":1,"entries":[{"case":"x"}]}`)); err == nil {
		t.Fatal("Load accepted a bench file")
	}
	if _, err := Load(strings.NewReader(`{"prof_version":99}`)); err == nil {
		t.Fatal("Load accepted a future version")
	}
}

func TestSpeedupBounds(t *testing.T) {
	p := sampleProfile()
	if got := p.IdealSpeedup(); got != 4 { // 120 events / depth 30
		t.Fatalf("IdealSpeedup = %v, want 4", got)
	}
	if got := p.BalanceSpeedup(); got != 2 { // 120 / busiest 60
		t.Fatalf("BalanceSpeedup = %v, want 2", got)
	}
	// min(ideal 4, balance 2) = 2, under the 3-domain cap.
	if got := p.RecommendedWorkers(); got != 2 {
		t.Fatalf("RecommendedWorkers = %v, want 2", got)
	}
	empty := &Profile{ProfVersion: 1, Domains: 1, Workers: 1}
	if empty.IdealSpeedup() != 1 || empty.BalanceSpeedup() != 1 || empty.RecommendedWorkers() != 1 {
		t.Fatal("empty profile bounds should all be 1")
	}
}

func TestReportMentionsEverySection(t *testing.T) {
	var buf bytes.Buffer
	if err := Report(&buf, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"critical path", "ideal speedup", "balance bound", "measured",
		"per-domain utilization", "stall%", "hand-off volume", "recommended -workers 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestTraceGolden pins the Perfetto export byte for byte: the sample
// profile is fixed, so the trace must be too. Regenerate deliberately with
// `go test ./internal/prof -run TestTraceGolden -update` after schema
// changes.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace drifted from golden (%d vs %d bytes); run with -update if intended",
			buf.Len(), len(want))
	}
}
