package prof

import (
	"fmt"
	"io"
	"time"
)

// Report renders the human-readable profile: run summary, critical-path
// bounds next to the measured parallelism, the per-domain utilization and
// stall-attribution table, the hand-off volume matrix, and the recommended
// worker count. This is what `hydrascope profile` prints.
func Report(w io.Writer, p *Profile) error {
	bw := &errWriter{w: w}
	bw.printf("hydraprof profile")
	if p.Scenario != "" {
		bw.printf(": %s", p.Scenario)
	}
	bw.printf("\n")
	bw.printf("  domains %d  workers %d  seed %d", p.Domains, p.Workers, p.Seed)
	if p.LookaheadNs > 0 {
		bw.printf("  lookahead %v", time.Duration(p.LookaheadNs))
	}
	bw.printf("\n")
	bw.printf("  virtual %-12v wall %-12v events %d\n",
		time.Duration(p.VirtualNs), time.Duration(p.WallNs), p.Events)
	if p.WallNs > 0 {
		bw.printf("  throughput %.0f events/sec (wall)\n",
			float64(p.Events)/(float64(p.WallNs)/1e9))
	}
	bw.printf("  handoffs %d  merge ties %d\n", p.Handoffs, p.MergeTies)

	cp := &p.CriticalPath
	bw.printf("\ncritical path\n")
	bw.printf("  depth %d of %d events  (deepest at %v)\n",
		cp.Depth, p.Events, time.Duration(cp.DeepestAtNs))
	bw.printf("  ideal speedup   %6.2fx  (events / critical-path depth)\n", p.IdealSpeedup())
	bw.printf("  balance bound   %6.2fx  (events / busiest domain)\n", p.BalanceSpeedup())
	bw.printf("  measured        %6.2fx  (Σ domain exec / window wall)\n", p.MeasuredParallelism())
	if cp.EdgesSeen > 0 {
		bw.printf("  edge samples    %d of %d (every %d)\n",
			cp.EdgesRecorded, cp.EdgesSeen, cp.SampleEvery)
	}

	if len(p.DomainTotals) > 0 {
		bw.printf("\nper-domain utilization (%d windows", p.WindowsRun)
		if p.WindowsDropped > 0 {
			bw.printf(", oldest %d evicted from the ring", p.WindowsDropped)
		}
		bw.printf(")\n")
		bw.printf("  %-6s %10s %9s %10s %10s %10s %10s %6s %6s\n",
			"domain", "events", "ev/win", "exec", "merge", "flush", "stall", "util%", "stall%")
		for i := range p.DomainTotals {
			d := &p.DomainTotals[i]
			span := d.MergeNs + d.ExecNs + d.FlushNs + d.StallNs
			util, stall := 0.0, 0.0
			if span > 0 {
				util = 100 * float64(d.ExecNs) / float64(span)
				stall = 100 * float64(d.StallNs) / float64(span)
			}
			perWin := 0.0
			if p.WindowsRun > 0 {
				perWin = float64(d.Events) / float64(p.WindowsRun)
			}
			bw.printf("  %-6d %10d %9.1f %10v %10v %10v %10v %6.1f %6.1f\n",
				d.Domain, d.Events, perWin,
				time.Duration(d.ExecNs).Round(time.Microsecond),
				time.Duration(d.MergeNs).Round(time.Microsecond),
				time.Duration(d.FlushNs).Round(time.Microsecond),
				time.Duration(d.StallNs).Round(time.Microsecond),
				util, stall)
		}
		bw.printf("  coordinator barriers: %d taking %v total\n",
			p.Barriers, time.Duration(p.BarrierNs).Round(time.Microsecond))
	}

	if len(p.HandoffMatrix) == p.Domains*p.Domains && p.Domains > 1 && p.Domains <= 16 {
		bw.printf("\nhand-off volume (frames, src row → dst column)\n")
		bw.printf("  %6s", "")
		for d := 0; d < p.Domains; d++ {
			bw.printf(" %8d", d)
		}
		bw.printf("\n")
		for s := 0; s < p.Domains; s++ {
			bw.printf("  %6d", s)
			for d := 0; d < p.Domains; d++ {
				bw.printf(" %8d", p.HandoffMatrix[s*p.Domains+d])
			}
			bw.printf("\n")
		}
	}

	bw.printf("\nrecommended -workers %d", p.RecommendedWorkers())
	if p.Domains <= 1 {
		bw.printf("  (serial run: bounds come from the causal chain only)")
	}
	bw.printf("\n")
	return bw.err
}

// errWriter folds fmt errors so Report reads linearly.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
