package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartPprof starts the Go runtime profilers the CLIs expose as
// -cpuprofile/-memprofile: host-level profiling of the simulator itself,
// complementing the simulation-level hydraprof collectors. Either path may
// be empty. The returned stop function ends the CPU profile and writes the
// heap profile; call it before the process exits (os.Exit skips defers).
func StartPprof(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // materialize up-to-date heap statistics
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			return err
		}
		return nil
	}, nil
}
