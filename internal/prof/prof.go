// Package prof defines the hydraprof profile schema: the serialized form of
// the parallel core's per-window wall-clock accounting and causal
// critical-path analysis (internal/sim.SchedProf / GroupProf), plus the
// analysis and rendering that consume it — the utilization/stall report
// behind `hydrascope profile` and the Chrome trace-event (Perfetto) export.
//
// The package is pure data and analysis: it does not import the simulator,
// so tooling (internal/scope, cmd/hydrascope) can load and diff profiles
// without dragging in the engine. The facade (hydranet.StartProfile)
// assembles a Profile from the sim collectors.
//
// Two kinds of fields coexist and tooling must keep them apart:
//
//   - Deterministic fields — event counts, critical-path depth, hand-off
//     counts and matrix, window counts, virtual times. These are functions
//     of the scenario and partition alone and may be gated exactly
//     (hydrascope diff -tol 0).
//   - Wall-clock fields — every *_ns duration measured on the host clock.
//     These vary run to run and machine to machine; they are gated only via
//     fractional tolerances (-stall-tol), or not at all.
package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// FormatVersion is the profile schema version; bump on incompatible change.
const FormatVersion = 1

// Edge is one sampled parent→child scheduling edge (virtual nanoseconds).
type Edge struct {
	ParentAtNs    int64  `json:"parent_at_ns"`
	ParentBirthNs int64  `json:"parent_birth_ns"`
	ChildAtNs     int64  `json:"child_at_ns"`
	ChildBirthNs  int64  `json:"child_birth_ns"`
	Depth         uint64 `json:"depth"`
}

// CriticalPath is the causal-chain analysis: the longest parent→child chain
// among fired events, which bounds achievable speedup at unit event cost.
type CriticalPath struct {
	// Depth is the longest causal chain among fired events (deterministic).
	Depth uint64 `json:"depth"`
	// DeepestAtNs is the virtual instant the deepest event fired.
	DeepestAtNs int64 `json:"deepest_at_ns"`
	// SampleEvery is the edge sampling stride.
	SampleEvery uint64 `json:"sample_every"`
	// EdgesSeen / EdgesRecorded count scheduling edges considered/sampled.
	EdgesSeen     uint64 `json:"edges_seen"`
	EdgesRecorded uint64 `json:"edges_recorded"`
	// Edges holds the retained samples (bounded; diagnostic only).
	Edges []Edge `json:"edges,omitempty"`
}

// DomainTotal is one domain's cumulative window accounting. The *_ns
// fields are wall clock; Domain and Events are deterministic.
type DomainTotal struct {
	Domain  int    `json:"domain"`
	MergeNs int64  `json:"merge_ns"`
	ExecNs  int64  `json:"exec_ns"`
	FlushNs int64  `json:"flush_ns"`
	StallNs int64  `json:"stall_ns"`
	Events  uint64 `json:"events"`
}

// WindowDomain is one domain's share of one window.
type WindowDomain struct {
	MergeNs int64  `json:"merge_ns"`
	ExecNs  int64  `json:"exec_ns"`
	FlushNs int64  `json:"flush_ns"`
	StallNs int64  `json:"stall_ns"`
	DoneNs  int64  `json:"done_ns"`
	Events  uint64 `json:"events"`
}

// Window is one recorded lookahead window.
type Window struct {
	Seq       uint64         `json:"seq"`
	BoundAtNs int64          `json:"bound_at_ns"` // virtual window edge
	Global    bool           `json:"global,omitempty"`
	StartNs   int64          `json:"start_ns"` // wall, offset from run start
	EndNs     int64          `json:"end_ns"`
	BarrierNs int64          `json:"barrier_ns"`
	Domains   []WindowDomain `json:"domains"`
	Flows     []uint64       `json:"flows,omitempty"` // src*domains+dst deltas
}

// Profile is one run's complete hydraprof output.
type Profile struct {
	ProfVersion int    `json:"prof_version"`
	Scenario    string `json:"scenario,omitempty"`
	Seed        int64  `json:"seed"`
	Domains     int    `json:"domains"`
	Workers     int    `json:"workers"`
	LookaheadNs int64  `json:"lookahead_ns,omitempty"`

	VirtualNs int64  `json:"virtual_ns"` // virtual time covered
	WallNs    int64  `json:"wall_ns"`    // wall time covered (not gated)
	Events    uint64 `json:"events"`     // events fired while attached
	Handoffs  uint64 `json:"handoffs"`
	MergeTies uint64 `json:"merge_ties"`

	CriticalPath CriticalPath `json:"critical_path"`

	// Parallel-only sections (absent for a serial run).
	DomainTotals   []DomainTotal `json:"domain_totals,omitempty"`
	HandoffMatrix  []uint64      `json:"handoff_matrix,omitempty"` // src*domains+dst
	WindowsRun     uint64        `json:"windows_run"`
	WindowsKept    int           `json:"windows_kept"`
	WindowsDropped uint64        `json:"windows_dropped"`
	Barriers       uint64        `json:"barriers"`
	BarrierNs      int64         `json:"barrier_ns"`
	WindowWallNs   int64         `json:"window_wall_ns"`
	Windows        []Window      `json:"windows,omitempty"`
}

// IdealSpeedup is the critical-path bound: with unit event cost, events /
// depth is the best any schedule can do. 1 when nothing fired.
func (p *Profile) IdealSpeedup() float64 {
	if p.CriticalPath.Depth == 0 || p.Events == 0 {
		return 1
	}
	return float64(p.Events) / float64(p.CriticalPath.Depth)
}

// BalanceSpeedup is the partition-balance bound: total events over the
// busiest domain's events. 1 when serial or empty.
func (p *Profile) BalanceSpeedup() float64 {
	var max uint64
	for i := range p.DomainTotals {
		if e := p.DomainTotals[i].Events; e > max {
			max = e
		}
	}
	if max == 0 {
		return 1
	}
	var total uint64
	for i := range p.DomainTotals {
		total += p.DomainTotals[i].Events
	}
	return float64(total) / float64(max)
}

// MeasuredParallelism is the achieved concurrency: summed per-domain
// execute time over the wall extent of the windows it was spent in. Wall
// derived — never gate it. 1 for serial runs or runs with no windows.
func (p *Profile) MeasuredParallelism() float64 {
	if p.WindowWallNs <= 0 {
		return 1
	}
	var exec int64
	for i := range p.DomainTotals {
		exec += p.DomainTotals[i].ExecNs
	}
	if exec <= 0 {
		return 1
	}
	return float64(exec) / float64(p.WindowWallNs)
}

// RecommendedWorkers is the smallest worker count that can realize the
// run's speedup bounds: the ideal (critical-path) and balance bounds both
// cap what more workers could add, and the domain count caps parallelism
// structurally.
func (p *Profile) RecommendedWorkers() int {
	bound := p.IdealSpeedup()
	if b := p.BalanceSpeedup(); b < bound {
		bound = b
	}
	w := int(bound + 0.5)
	if w < 1 {
		w = 1
	}
	if p.Domains > 1 && w > p.Domains {
		w = p.Domains
	}
	return w
}

// Write serializes p as indented JSON.
func Write(w io.Writer, p *Profile) error {
	b, err := json.MarshalIndent(p, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile writes p to path.
func WriteFile(path string, p *Profile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = Write(f, p)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("prof: write %s: %w", path, err)
	}
	return nil
}

// Load parses a profile, rejecting non-profile JSON and future versions.
func Load(r io.Reader) (*Profile, error) {
	var p Profile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("prof: parse: %w", err)
	}
	if p.ProfVersion == 0 {
		return nil, fmt.Errorf("prof: not a hydraprof profile (no prof_version)")
	}
	if p.ProfVersion > FormatVersion {
		return nil, fmt.Errorf("prof: profile version %d newer than supported %d", p.ProfVersion, FormatVersion)
	}
	return &p, nil
}

// LoadFile loads a profile from path.
func LoadFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("prof: %s: %w", path, err)
	}
	return p, nil
}
