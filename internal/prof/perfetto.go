package prof

import (
	"encoding/json"
	"io"
)

// Chrome trace-event (Perfetto-loadable) export. The mapping:
//
//   - Each domain is a track (one tid per domain under pid 1), plus a
//     "coordinator" track for barrier work.
//   - Each recorded window becomes one complete ("X") slice per domain,
//     spanning that domain's busy portion of the window (merge+exec+flush);
//     the args carry the phase breakdown, stall, event count and the
//     virtual window edge.
//   - Each window's coordinator barrier becomes an instant ("i") on the
//     coordinator track at the window's wall end (plus an "X" slice when
//     the barrier took measurable time).
//   - Cross-domain hand-offs become flow arrows: an "s" event anchored in
//     the source domain's slice, bound ("f" with bp:"e") into the
//     destination domain's slice in the next recorded window — the window
//     in which the staged frames are merged and delivered.
//
// Timestamps are microseconds (the trace-event unit) measured from the
// profiler's wall epoch. Load the output at https://ui.perfetto.dev or
// chrome://tracing; cmd/profcheck validates the structure in CI.

// traceEvent is one Chrome trace-event object.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object trace container format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const tracePid = 1

func us(ns int64) float64 { return float64(ns) / 1e3 }

// WriteTrace renders the profile's retained windows as a Chrome trace-event
// JSON document.
func WriteTrace(w io.Writer, p *Profile) error {
	coordTid := p.Domains // domain tracks are 0..Domains-1
	evs := []traceEvent{
		{Name: "process_name", Ph: "M", Pid: tracePid, Tid: 0,
			Args: map[string]any{"name": "hydranet parallel core"}},
	}
	for d := 0; d < p.Domains; d++ {
		evs = append(evs, traceEvent{Name: "thread_name", Ph: "M", Pid: tracePid, Tid: d,
			Args: map[string]any{"name": trackName(d)}})
	}
	evs = append(evs, traceEvent{Name: "thread_name", Ph: "M", Pid: tracePid, Tid: coordTid,
		Args: map[string]any{"name": "coordinator"}})

	flowID := 0
	for i := range p.Windows {
		win := &p.Windows[i]
		for d := range win.Domains {
			wd := &win.Domains[d]
			busy := wd.MergeNs + wd.ExecNs + wd.FlushNs
			start := wd.DoneNs - busy
			dur := us(busy)
			evs = append(evs, traceEvent{
				Name: "window", Cat: "window", Ph: "X",
				TS: us(start), Dur: &dur, Pid: tracePid, Tid: d,
				Args: map[string]any{
					"seq":        win.Seq,
					"virtual_ns": win.BoundAtNs,
					"global":     win.Global,
					"events":     wd.Events,
					"merge_ns":   wd.MergeNs,
					"exec_ns":    wd.ExecNs,
					"flush_ns":   wd.FlushNs,
					"stall_ns":   wd.StallNs,
				},
			})
		}
		evs = append(evs, traceEvent{
			Name: "barrier", Cat: "barrier", Ph: "i",
			TS: us(win.EndNs), Pid: tracePid, Tid: coordTid, S: "p",
			Args: map[string]any{"seq": win.Seq, "barrier_ns": win.BarrierNs},
		})
		if win.BarrierNs > 0 {
			dur := us(win.BarrierNs)
			evs = append(evs, traceEvent{
				Name: "barrier", Cat: "barrier", Ph: "X",
				TS: us(win.EndNs), Dur: &dur, Pid: tracePid, Tid: coordTid,
				Args: map[string]any{"seq": win.Seq},
			})
		}
		// Flow arrows bind into the next recorded window, where the frames
		// handed off here are merged and delivered. A ring gap (evicted
		// window) breaks the chain, so require consecutive seqs.
		if len(win.Flows) != p.Domains*p.Domains || i+1 >= len(p.Windows) {
			continue
		}
		next := &p.Windows[i+1]
		if next.Seq != win.Seq+1 || len(next.Domains) != p.Domains {
			continue
		}
		for s := 0; s < p.Domains; s++ {
			srcDone := win.Domains[s].DoneNs
			for d := 0; d < p.Domains; d++ {
				frames := win.Flows[s*p.Domains+d]
				if frames == 0 {
					continue
				}
				flowID++
				nd := &next.Domains[d]
				nstart := nd.DoneNs - (nd.MergeNs + nd.ExecNs + nd.FlushNs)
				evs = append(evs,
					traceEvent{Name: "handoff", Cat: "handoff", Ph: "s", ID: flowID,
						TS: us(srcDone), Pid: tracePid, Tid: s,
						Args: map[string]any{"frames": frames}},
					traceEvent{Name: "handoff", Cat: "handoff", Ph: "f", ID: flowID, BP: "e",
						TS: us(nstart), Pid: tracePid, Tid: d},
				)
			}
		}
	}

	b, err := json.MarshalIndent(traceFile{TraceEvents: evs, DisplayTimeUnit: "ms"}, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func trackName(d int) string {
	return "domain " + itoa(d)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
