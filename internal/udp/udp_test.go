package udp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"hydranet/internal/ipv4"
	"hydranet/internal/netsim"
	"hydranet/internal/sim"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	f := func(srcPort, dstPort uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		src, dst := ipv4.Addr(0x0a000001), ipv4.Addr(0x0a000002)
		b := Marshal(src, dst, srcPort, dstPort, payload)
		sp, dp, pl, err := Unmarshal(src, dst, b)
		return err == nil && sp == srcPort && dp == dstPort && bytes.Equal(pl, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalDetectsCorruption(t *testing.T) {
	src, dst := ipv4.Addr(1), ipv4.Addr(2)
	b := Marshal(src, dst, 100, 200, []byte("payload"))
	b[10] ^= 0x40
	if _, _, _, err := Unmarshal(src, dst, b); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestUnmarshalDetectsWrongAddresses(t *testing.T) {
	// The pseudo-header ties the datagram to its IP addresses; delivery to
	// the wrong address must fail the checksum.
	b := Marshal(1, 2, 100, 200, []byte("x"))
	if _, _, _, err := Unmarshal(1, 3, b); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("err = %v, want ErrBadChecksum for wrong dst", err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	if _, _, _, err := Unmarshal(1, 2, []byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

// twoHosts wires two directly connected hosts with UDP stacks.
func twoHosts(t *testing.T) (*sim.Scheduler, *Stack, *Stack, ipv4.Addr, ipv4.Addr) {
	t.Helper()
	sched := sim.NewScheduler(11)
	net := netsim.New(sched)
	a := net.AddNode(netsim.NodeConfig{Name: "a"})
	b := net.AddNode(netsim.NodeConfig{Name: "b"})
	net.Connect(a, b, netsim.LinkConfig{})
	ipA := ipv4.NewStack(a, sched)
	ipB := ipv4.NewStack(b, sched)
	addrA, addrB := ipv4.MustParseAddr("10.0.0.1"), ipv4.MustParseAddr("10.0.0.2")
	ipA.SetAddr(0, addrA)
	ipB.SetAddr(0, addrB)
	ipA.Routes().AddDefault(0)
	ipB.Routes().AddDefault(0)
	return sched, NewStack(ipA), NewStack(ipB), addrA, addrB
}

func TestSendReceive(t *testing.T) {
	sched, ua, ub, addrA, addrB := twoHosts(t)
	var got []byte
	var from Endpoint
	if err := ub.Bind(0, 7000, func(f Endpoint, _ ipv4.Addr, p []byte) {
		from = f
		got = append([]byte(nil), p...)
	}); err != nil {
		t.Fatal(err)
	}
	if err := ua.SendTo(0, 5555, Endpoint{Addr: addrB, Port: 7000}, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if string(got) != "hello" {
		t.Fatalf("received %q", got)
	}
	if from.Addr != addrA || from.Port != 5555 {
		t.Fatalf("from = %v, want %s:5555", from, addrA)
	}
}

func TestBindConflict(t *testing.T) {
	_, _, ub, _, _ := twoHosts(t)
	if err := ub.Bind(0, 9000, func(Endpoint, ipv4.Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := ub.Bind(0, 9000, func(Endpoint, ipv4.Addr, []byte) {}); !errors.Is(err, ErrPortInUse) {
		t.Errorf("second bind err = %v, want ErrPortInUse", err)
	}
	// A specific-address bind on the same port coexists with the wildcard.
	if err := ub.Bind(ipv4.MustParseAddr("10.0.0.2"), 9000, func(Endpoint, ipv4.Addr, []byte) {}); err != nil {
		t.Errorf("specific bind alongside wildcard failed: %v", err)
	}
}

func TestSpecificAddressPreferredOverWildcard(t *testing.T) {
	sched, ua, ub, _, addrB := twoHosts(t)
	var hits []string
	_ = ub.Bind(0, 80, func(_ Endpoint, _ ipv4.Addr, _ []byte) { hits = append(hits, "wildcard") })
	_ = ub.Bind(addrB, 80, func(_ Endpoint, _ ipv4.Addr, _ []byte) { hits = append(hits, "specific") })
	_ = ua.SendTo(0, 1234, Endpoint{Addr: addrB, Port: 80}, []byte("x"))
	sched.Run()
	if len(hits) != 1 || hits[0] != "specific" {
		t.Fatalf("hits = %v, want [specific]", hits)
	}
}

func TestUnbindStopsDelivery(t *testing.T) {
	sched, ua, ub, _, addrB := twoHosts(t)
	count := 0
	_ = ub.Bind(0, 81, func(Endpoint, ipv4.Addr, []byte) { count++ })
	_ = ua.SendTo(0, 1, Endpoint{Addr: addrB, Port: 81}, []byte("1"))
	sched.Run()
	ub.Unbind(0, 81)
	_ = ua.SendTo(0, 1, Endpoint{Addr: addrB, Port: 81}, []byte("2"))
	sched.Run()
	if count != 1 {
		t.Fatalf("delivered %d, want 1", count)
	}
	_, noListener, _ := ub.Stats()
	if noListener != 1 {
		t.Fatalf("noListener = %d, want 1", noListener)
	}
}

func TestReplyUsingFromEndpoint(t *testing.T) {
	sched, ua, ub, addrA, addrB := twoHosts(t)
	var reply []byte
	_ = ub.Bind(0, 50, func(from Endpoint, local ipv4.Addr, p []byte) {
		_ = ub.SendTo(local, 50, from, append([]byte("re:"), p...))
	})
	_ = ua.Bind(0, 60, func(_ Endpoint, _ ipv4.Addr, p []byte) { reply = append([]byte(nil), p...) })
	_ = ua.SendTo(addrA, 60, Endpoint{Addr: addrB, Port: 50}, []byte("ping"))
	sched.Run()
	if string(reply) != "re:ping" {
		t.Fatalf("reply %q", reply)
	}
}

func TestVirtualHostDemux(t *testing.T) {
	// A datagram for a virtual-host address must reach the socket bound to
	// that address, and the handler must see which local address it hit.
	sched, ua, ub, _, _ := twoHosts(t)
	vhost := ipv4.MustParseAddr("192.20.225.20")
	// Reach into the IP layer via the test topology: host B hosts vhost.
	// (Stack.ip is unexported; re-register through a fresh local addr.)
	ubIP := ubIPStack(ub)
	ubIP.AddLocalAddr(vhost)
	var sawLocal ipv4.Addr
	_ = ub.Bind(vhost, 80, func(_ Endpoint, local ipv4.Addr, _ []byte) { sawLocal = local })
	_ = ua.SendTo(0, 1000, Endpoint{Addr: vhost, Port: 80}, []byte("GET"))
	sched.Run()
	if sawLocal != vhost {
		t.Fatalf("handler saw local addr %s, want %s", sawLocal, vhost)
	}
}

// ubIPStack exposes the IP stack for tests in this package.
func ubIPStack(s *Stack) *ipv4.Stack { return s.ip }
