// Package udp implements the UDP transport over the simulated IPv4 stack.
//
// HydraNet-FT uses UDP for two things: the kernel-to-kernel acknowledgment
// channel between server replicas, and the replica management protocol
// between daemons and redirectors (paper Sections 4.3–4.4).
package udp

import (
	"errors"
	"fmt"

	"hydranet/internal/ipv4"
)

// HeaderLen is the UDP header size in bytes.
const HeaderLen = 8

// Endpoint identifies one side of a UDP exchange.
type Endpoint struct {
	Addr ipv4.Addr
	Port uint16
}

// String renders addr:port.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Errors returned by the package.
var (
	ErrTruncated   = errors.New("udp: truncated datagram")
	ErrBadChecksum = errors.New("udp: checksum mismatch")
	ErrPortInUse   = errors.New("udp: port already bound")
)

// Marshal builds a wire-format UDP datagram with checksum, given the IP
// addresses for the pseudo-header.
func Marshal(src, dst ipv4.Addr, srcPort, dstPort uint16, payload []byte) []byte {
	b := make([]byte, HeaderLen+len(payload))
	MarshalInto(b, src, dst, srcPort, dstPort, payload)
	return b
}

// MarshalInto serializes a UDP datagram into b, which must be exactly
// HeaderLen+len(payload) bytes (typically a pooled frame buffer).
func MarshalInto(b []byte, src, dst ipv4.Addr, srcPort, dstPort uint16, payload []byte) {
	b[0] = byte(srcPort >> 8)
	b[1] = byte(srcPort)
	b[2] = byte(dstPort >> 8)
	b[3] = byte(dstPort)
	total := HeaderLen + len(payload)
	b[4] = byte(total >> 8)
	b[5] = byte(total)
	b[6], b[7] = 0, 0 // checksum, zero while summing
	copy(b[HeaderLen:], payload)
	sum := ipv4.PseudoChecksum(src, dst, ipv4.ProtoUDP, b)
	if sum == 0 {
		sum = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	b[6] = byte(sum >> 8)
	b[7] = byte(sum)
}

// Unmarshal parses and validates a UDP datagram.
func Unmarshal(src, dst ipv4.Addr, b []byte) (srcPort, dstPort uint16, payload []byte, err error) {
	if len(b) < HeaderLen {
		return 0, 0, nil, ErrTruncated
	}
	length := int(b[4])<<8 | int(b[5])
	if length < HeaderLen || length > len(b) {
		return 0, 0, nil, ErrTruncated
	}
	if sum := uint16(b[6])<<8 | uint16(b[7]); sum != 0 {
		if ipv4.PseudoChecksum(src, dst, ipv4.ProtoUDP, b[:length]) != 0 {
			return 0, 0, nil, ErrBadChecksum
		}
	}
	srcPort = uint16(b[0])<<8 | uint16(b[1])
	dstPort = uint16(b[2])<<8 | uint16(b[3])
	return srcPort, dstPort, b[HeaderLen:length], nil
}

// RecvFunc is invoked for each datagram delivered to a bound socket. local
// is the destination address the datagram arrived for — sockets bound to
// the wildcard address use it to tell virtual hosts apart.
type RecvFunc func(from Endpoint, local ipv4.Addr, payload []byte)

type binding struct {
	addr ipv4.Addr // 0 = any local address
	port uint16
	recv RecvFunc
}

// Stack is the per-node UDP layer.
type Stack struct {
	ip       *ipv4.Stack
	bindings map[uint16][]*binding

	// Stats
	delivered, noListener, badDatagram uint64
}

var _ ipv4.ProtocolHandler = (*Stack)(nil)

// NewStack creates the UDP layer and registers it with the IP stack.
func NewStack(ip *ipv4.Stack) *Stack {
	s := &Stack{ip: ip, bindings: make(map[uint16][]*binding)}
	ip.RegisterProto(ipv4.ProtoUDP, s)
	return s
}

// Stats returns delivered, no-listener and malformed datagram counts.
func (s *Stack) Stats() (delivered, noListener, bad uint64) {
	return s.delivered, s.noListener, s.badDatagram
}

// Bind registers recv for datagrams to (addr, port). addr 0 binds all local
// addresses. Binding the same (addr, port) twice fails.
func (s *Stack) Bind(addr ipv4.Addr, port uint16, recv RecvFunc) error {
	for _, b := range s.bindings[port] {
		if b.addr == addr {
			return fmt.Errorf("%w: %s:%d", ErrPortInUse, addr, port)
		}
	}
	s.bindings[port] = append(s.bindings[port], &binding{addr: addr, port: port, recv: recv})
	return nil
}

// Unbind removes the binding for (addr, port).
func (s *Stack) Unbind(addr ipv4.Addr, port uint16) {
	list := s.bindings[port]
	for i, b := range list {
		if b.addr == addr {
			s.bindings[port] = append(list[:i], list[i+1:]...)
			if len(s.bindings[port]) == 0 {
				delete(s.bindings, port)
			}
			return
		}
	}
}

// SendTo transmits a datagram from (srcAddr, srcPort) to dst. A zero
// srcAddr lets the IP layer pick the outgoing interface address.
func (s *Stack) SendTo(srcAddr ipv4.Addr, srcPort uint16, dst Endpoint, payload []byte) error {
	// The checksum covers the pseudo-header, so the source address must be
	// resolved before marshaling when left unspecified.
	if srcAddr == 0 {
		srcAddr = s.localSourceFor(dst.Addr)
	}
	fb := s.ip.Node().Pool().Get(HeaderLen + len(payload))
	MarshalInto(fb.Bytes(), srcAddr, dst.Addr, srcPort, dst.Port, payload)
	return s.ip.SendSegment(ipv4.ProtoUDP, srcAddr, dst.Addr, fb)
}

func (s *Stack) localSourceFor(dst ipv4.Addr) ipv4.Addr {
	if s.ip.IsLocal(dst) {
		return dst
	}
	if ifindex := s.ip.Routes().Lookup(dst); ifindex >= 0 {
		return s.ip.Addr(ifindex)
	}
	return 0
}

// DeliverIP implements ipv4.ProtocolHandler.
func (s *Stack) DeliverIP(p *ipv4.Packet) {
	srcPort, dstPort, payload, err := Unmarshal(p.Src, p.Dst, p.Payload)
	if err != nil {
		s.badDatagram++
		return
	}
	var anyMatch *binding
	for _, b := range s.bindings[dstPort] {
		if b.addr == p.Dst {
			s.delivered++
			b.recv(Endpoint{Addr: p.Src, Port: srcPort}, p.Dst, payload)
			return
		}
		if b.addr == 0 {
			anyMatch = b
		}
	}
	if anyMatch != nil {
		s.delivered++
		anyMatch.recv(Endpoint{Addr: p.Src, Port: srcPort}, p.Dst, payload)
		return
	}
	s.noListener++
	s.ip.ReportError(ipv4.ErrorNoListener, p)
}
