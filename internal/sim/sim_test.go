package sim

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSchedulerTieBreakFIFO(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("tie-broken order %v, want FIFO", order)
		}
	}
}

func TestSchedulerAfterAccumulates(t *testing.T) {
	s := NewScheduler(1)
	var at []time.Duration
	var chain func()
	n := 0
	chain = func() {
		at = append(at, s.Now())
		n++
		if n < 3 {
			s.After(10*time.Millisecond, chain)
		}
	}
	s.After(10*time.Millisecond, chain)
	s.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("firing times %v, want %v", at, want)
		}
	}
}

func TestEventCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	e := s.At(time.Millisecond, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", s.Fired())
	}
}

func TestCancelNilEvent(t *testing.T) {
	var e *Event
	e.Cancel() // must not panic
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler(1)
	s.At(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5*time.Millisecond, func() {})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler(1)
	var fired []time.Duration
	for _, d := range []time.Duration{10, 20, 30, 40} {
		d := d * time.Millisecond
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(25 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 25*time.Millisecond {
		t.Fatalf("clock = %v, want 25ms", s.Now())
	}
	// Remaining events still run afterwards.
	s.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := NewScheduler(1)
	s.RunUntil(time.Second)
	if s.Now() != time.Second {
		t.Fatalf("clock = %v, want 1s", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 2 {
		t.Fatalf("ran %d events after Stop, want 2", count)
	}
}

func TestTimerResetAndStop(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	if tm.Armed() {
		t.Fatal("new timer is armed")
	}
	tm.Reset(10 * time.Millisecond)
	if !tm.Armed() {
		t.Fatal("Reset did not arm timer")
	}
	// Re-arming supersedes the previous deadline.
	tm.Reset(50 * time.Millisecond)
	if got := tm.Deadline(); got != 50*time.Millisecond {
		t.Fatalf("deadline = %v, want 50ms", got)
	}
	s.RunUntil(30 * time.Millisecond)
	if fired != 0 {
		t.Fatal("superseded deadline fired")
	}
	s.RunUntil(60 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}

	tm.Reset(10 * time.Millisecond)
	tm.Stop()
	s.Run()
	if fired != 1 {
		t.Fatal("stopped timer fired")
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	s := NewScheduler(1)
	live := s.At(time.Millisecond, func() {})
	_ = live
	e := s.At(2*time.Millisecond, func() {})
	e.Cancel()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending = %d with one live and one cancelled event, want 1", got)
	}
}

func TestStaleHandleCancelIsNoOp(t *testing.T) {
	s := NewScheduler(1)
	stale := s.At(time.Millisecond, func() {})
	s.Run() // fires the event; its node returns to the free list

	// The free list must hand the same node to the next event.
	fired := false
	fresh := s.At(s.Now()+time.Millisecond, func() { fired = true })
	stale.Cancel() // stale generation: must not cancel the new occupant
	s.Run()
	if !fired {
		t.Fatal("stale Cancel killed an unrelated recycled event")
	}
	if fresh.Cancelled() != true {
		t.Fatal("fired event should report Cancelled (will never fire again)")
	}
}

func TestCompactionBoundsQueue(t *testing.T) {
	s := NewScheduler(1)
	// Simulate heavy Timer.Reset churn: schedule far-future events and
	// immediately orphan them, never letting the clock advance past them.
	const n = 100_000
	for i := 0; i < n; i++ {
		e := s.At(s.Now()+time.Hour, func() {})
		e.Cancel()
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending = %d after cancelling everything, want 0", got)
	}
	if len(s.heap) > 1024 {
		t.Fatalf("heap holds %d dead nodes after %d cancels; compaction failed", len(s.heap), n)
	}
}

func TestDeterministicRand(t *testing.T) {
	a := NewScheduler(42)
	b := NewScheduler(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestPendingCount(t *testing.T) {
	s := NewScheduler(1)
	s.At(time.Millisecond, func() {})
	s.At(2*time.Millisecond, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", s.Pending())
	}
}
