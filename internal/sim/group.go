package sim

import (
	"fmt"
	"sync"
	"time"
)

// Group advances a set of per-domain Schedulers in conservative parallel
// windows. It is the synchronization spine of the parallel simulation core:
//
//   - Every domain owns a private Scheduler (clock, heap, PRNG, pools above
//     it). Domains may only influence each other through timestamped
//     hand-offs whose delivery time lies at least Lookahead beyond the
//     moment of the send — in the network model that bound is the minimum
//     propagation delay of any cross-domain link.
//   - The Group repeatedly picks a window edge no further than Lookahead
//     past the earliest pending work, runs every domain's events strictly
//     below that edge in parallel, and then rendezvous at a barrier where
//     hand-offs produced during the window are exchanged (the WindowStart /
//     WindowEnd hooks) and deferred observations are replayed (the Barrier
//     hook).
//   - Global events — callbacks that read or mutate state spanning domains,
//     such as telemetry samplers and scripted fault injection — run at the
//     barrier, single-threaded, positioned in the event order by their
//     (time, birth) key exactly where a single serial scheduler would have
//     run them.
//
// Within one window no domain can observe another (hand-offs sent during
// the window arrive at or after its edge), so the parallel execution is
// order-equivalent to the serial one per domain; the (time, birth) keys
// restore the cross-domain interleaving wherever it is observable. The
// result does not depend on the worker count, only on the partition.
type Group struct {
	scheds    []*Scheduler
	lookahead time.Duration
	workers   int
	now       time.Duration

	windowStart func(domain int)             // worker context, before the window runs
	windowEnd   func(domain int)             // worker context, after the window runs
	barrier     func()                       // coordinator context, after every barrier
	extEarliest func() (time.Duration, bool) // earliest undelivered hand-off

	mu      sync.Mutex // guards globals (Schedule may be called from hooks)
	globals []*globalEvent
	gseq    uint64
	gfired  uint64 // executed global events (coordinator-only access)

	prof *GroupProf // window/barrier profiler; nil (zero-cost) unless attached
}

// globalEvent is a barrier-scheduled callback with a cancellation flag.
type globalEvent struct {
	at, birth time.Duration
	seq       uint64
	fn        func()
	cancelled bool
}

// GlobalEvent is a cancellable handle to a Group-scheduled callback.
type GlobalEvent struct{ g *globalEvent }

// Cancel prevents the callback from running. Safe on the zero handle.
func (e GlobalEvent) Cancel() {
	if e.g != nil {
		e.g.cancelled = true
	}
}

// NewGroup builds a Group over the given domain schedulers. lookahead must
// be positive: it is the guarantee that makes windows safe, and a
// zero-lookahead partition would serialize every event anyway.
func NewGroup(scheds []*Scheduler, lookahead time.Duration, workers int) *Group {
	if len(scheds) == 0 {
		panic("sim: NewGroup with no schedulers")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: NewGroup with non-positive lookahead %v", lookahead))
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(scheds) {
		workers = len(scheds)
	}
	return &Group{scheds: scheds, lookahead: lookahead, workers: workers}
}

// SetHooks installs the per-window callbacks. windowStart and windowEnd run
// in worker context (one invocation per domain per window, concurrently
// across domains); barrier runs on the coordinator with all workers parked.
// extEarliest reports the earliest pending hand-off not yet inserted into
// any scheduler, so idle windows can be skipped without missing work.
func (g *Group) SetHooks(windowStart, windowEnd func(domain int), barrier func(), extEarliest func() (time.Duration, bool)) {
	g.windowStart = windowStart
	g.windowEnd = windowEnd
	g.barrier = barrier
	g.extEarliest = extEarliest
}

// Now returns the Group's clock: the edge of the last completed window.
func (g *Group) Now() time.Duration { return g.now }

// Lookahead returns the window bound.
func (g *Group) Lookahead() time.Duration { return g.lookahead }

// Workers returns the number of worker goroutines windows fan out across.
func (g *Group) Workers() int { return g.workers }

// Fired sums executed events across all domains, plus executed global
// events (a serial scheduler would count those as ordinary heap events).
func (g *Group) Fired() uint64 {
	n := g.gfired
	for _, s := range g.scheds {
		n += s.Fired()
	}
	return n
}

// Pending sums live queued events across all domains, plus live global
// events (a serial scheduler would count those as ordinary heap entries).
func (g *Group) Pending() int {
	n := 0
	for _, s := range g.scheds {
		n += s.Pending()
	}
	g.mu.Lock()
	for _, ge := range g.globals {
		if !ge.cancelled {
			n++
		}
	}
	g.mu.Unlock()
	return n
}

// Schedule registers fn to run at the barrier crossing virtual time at,
// ordered among simulation events by (at, birth): fn runs after every
// domain event whose key is strictly below (at, birth) and before every
// event at or beyond it, exactly where a serial scheduler would have run an
// event inserted at virtual time birth. Only coordinator context (setup
// code between runs, or another global callback) may call Schedule.
func (g *Group) Schedule(at, birth time.Duration, fn func()) GlobalEvent {
	if at < g.now {
		panic(fmt.Sprintf("sim: scheduling global event at %v before now %v", at, g.now))
	}
	if birth > at {
		birth = at
	}
	g.mu.Lock()
	ge := &globalEvent{at: at, birth: birth, seq: g.gseq, fn: fn}
	g.gseq++
	g.globals = append(g.globals, ge)
	g.mu.Unlock()
	return GlobalEvent{g: ge}
}

// peekGlobal returns the earliest live global event, pruning cancelled ones.
func (g *Group) peekGlobal() *globalEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		var best *globalEvent
		bi := -1
		for i, ge := range g.globals {
			if best == nil || ge.at < best.at ||
				(ge.at == best.at && (ge.birth < best.birth ||
					(ge.birth == best.birth && ge.seq < best.seq))) {
				best, bi = ge, i
			}
		}
		if best == nil {
			return nil
		}
		if best.cancelled {
			g.globals[bi] = g.globals[len(g.globals)-1]
			g.globals = g.globals[:len(g.globals)-1]
			continue
		}
		return best
	}
}

func (g *Group) removeGlobal(ge *globalEvent) {
	g.mu.Lock()
	for i, e := range g.globals {
		if e == ge {
			g.globals[i] = g.globals[len(g.globals)-1]
			g.globals = g.globals[:len(g.globals)-1]
			break
		}
	}
	g.mu.Unlock()
}

// earliestWork returns the smallest timestamp of any pending domain event
// or undelivered hand-off, or ok=false when the whole fabric is idle.
func (g *Group) earliestWork() (time.Duration, bool) {
	var best time.Duration
	ok := false
	for _, s := range g.scheds {
		if k, has := s.NextKey(); has && (!ok || k.At < best) {
			best, ok = k.At, true
		}
	}
	if g.extEarliest != nil {
		if t, has := g.extEarliest(); has && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// EnableProfile attaches (nil detaches) the window profiler. Coordinator
// context only, never mid-window. Detached, runWindow and syncBarrier pay a
// single nil test each and allocate nothing.
func (g *Group) EnableProfile(p *GroupProf) { g.prof = p }

// Profile returns the attached window profiler, nil when detached.
func (g *Group) Profile() *GroupProf { return g.prof }

// runWindow executes one parallel phase: every domain drains its inbox
// (WindowStart), runs events with keys strictly below bound, and flushes
// its outboxes (WindowEnd). The call returns after all domains finish.
func (g *Group) runWindow(bound Key) {
	gp := g.prof
	if gp != nil {
		gp.beginWindow(bound)
	}
	run := func(d int) {
		if gp != nil {
			// Profiled path: bracket the three window phases with wall
			// reads. Each domain's worker writes only its own slot, and the
			// coordinator closes the window after the WaitGroup, so the
			// accounting is race-free by the same discipline as the window
			// protocol itself.
			t0 := gp.wallNs()
			if g.windowStart != nil {
				g.windowStart(d)
			}
			t1 := gp.wallNs()
			ran := g.scheds[d].RunToKey(bound)
			t2 := gp.wallNs()
			if g.windowEnd != nil {
				g.windowEnd(d)
			}
			gp.noteDomain(d, t0, t1, t2, gp.wallNs(), ran)
			return
		}
		if g.windowStart != nil {
			g.windowStart(d)
		}
		g.scheds[d].RunToKey(bound)
		if g.windowEnd != nil {
			g.windowEnd(d)
		}
	}
	if g.workers == 1 || len(g.scheds) == 1 {
		for d := range g.scheds {
			run(d)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(g.workers)
		for w := 0; w < g.workers; w++ {
			//hydralint:nondeterministic window workers: domain-to-worker striding is fixed, domains share no state inside a window, and outputs merge at barriers in deterministic key order
			go func(w int) {
				defer wg.Done()
				for d := w; d < len(g.scheds); d += g.workers {
					run(d)
				}
			}(w)
		}
		wg.Wait()
	}
	if gp != nil {
		gp.endWindow()
	}
}

// RunUntil advances the whole group to the absolute virtual instant
// deadline: every domain event with timestamp <= deadline executes, every
// clock ends at deadline. Equivalent to Scheduler.RunUntil on a single
// serial scheduler.
func (g *Group) RunUntil(deadline time.Duration) {
	for {
		base, busy := g.earliestWork()
		ge := g.peekGlobal()
		if ge != nil && ge.at <= deadline && (!busy || ge.at < base+g.lookahead) {
			// The global event is the next window edge: run every domain
			// strictly below its key, fire it at the barrier, continue.
			bound := Key{At: ge.at, Birth: ge.birth}
			g.runWindow(bound)
			g.advance(ge.at)
			g.syncBarrier()
			g.removeGlobal(ge)
			if !ge.cancelled {
				g.gfired++
				ge.fn()
			}
			continue
		}
		if !busy || base > deadline {
			break
		}
		edge := base + g.lookahead
		if edge > deadline {
			// Final window, in two phases: everything strictly before the
			// deadline, a barrier so hand-offs landing exactly at the
			// deadline are exchanged, then the events at the deadline
			// itself (whose own hand-offs arrive strictly beyond it).
			g.runWindow(Key{At: deadline, Birth: KeyMin})
			g.advance(deadline)
			g.syncBarrier()
			g.runWindow(Key{At: deadline, Birth: KeyMax})
			g.syncBarrier()
			continue
		}
		g.runWindow(Key{At: edge, Birth: KeyMin})
		g.advance(edge)
		g.syncBarrier()
	}
	g.advance(deadline)
	g.syncBarrier()
}

// Run advances the group until every domain is idle and no hand-offs or
// global events remain — the parallel analogue of Scheduler.Run.
func (g *Group) Run() {
	for {
		base, busy := g.earliestWork()
		ge := g.peekGlobal()
		if !busy && ge == nil {
			return
		}
		edge := base + g.lookahead
		if ge != nil && (!busy || ge.at < edge) {
			bound := Key{At: ge.at, Birth: ge.birth}
			g.runWindow(bound)
			g.advance(ge.at)
			g.syncBarrier()
			g.removeGlobal(ge)
			if !ge.cancelled {
				g.gfired++
				ge.fn()
			}
			continue
		}
		g.runWindow(Key{At: edge, Birth: KeyMin})
		g.advance(edge)
		g.syncBarrier()
	}
}

// advance aligns the group and every domain clock with t.
func (g *Group) advance(t time.Duration) {
	if t > g.now {
		g.now = t
	}
	for _, s := range g.scheds {
		s.AdvanceTo(g.now)
	}
}

// syncBarrier runs the coordinator barrier hook, timing it when profiled.
func (g *Group) syncBarrier() {
	if g.barrier == nil {
		return
	}
	if gp := g.prof; gp != nil {
		t0 := gp.wallNs()
		g.barrier()
		gp.noteBarrier(gp.wallNs() - t0)
		return
	}
	g.barrier()
}
