// Package sim provides a deterministic discrete-event simulation engine.
//
// All HydraNet-FT components run on a single virtual clock owned by a
// Scheduler. Events execute in strict timestamp order; ties are broken by
// insertion order, so a run with a given seed and topology is exactly
// reproducible. The engine is intentionally single-threaded: protocol
// endpoints are event-driven state machines, not goroutines, which removes
// scheduling nondeterminism from measurements.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. The callback runs exactly once unless the
// event is cancelled first.
type Event struct {
	at     time.Duration
	seq    uint64
	fn     func()
	index  int // heap index; -1 once removed
	cancel bool
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancel = true
	}
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler owns the virtual clock and the pending-event queue.
type Scheduler struct {
	now     time.Duration
	queue   eventQueue
	nextSeq uint64
	rng     *rand.Rand
	fired   uint64
	running bool
}

// NewScheduler returns a scheduler with its clock at zero and a PRNG seeded
// with the given seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic PRNG. All randomness in a
// simulation (loss decisions, jitter) must come from this source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events waiting in the queue, including
// cancelled events that have not yet been discarded.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would reorder causality.
func (s *Scheduler) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := &Event{at: t, seq: s.nextSeq, fn: fn}
	s.nextSeq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It returns false when the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (s *Scheduler) Run() {
	s.running = true
	for s.running && s.Step() {
	}
	s.running = false
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.running = true
	for s.running {
		e := s.peek()
		if e == nil || e.at > deadline {
			break
		}
		s.Step()
	}
	s.running = false
	if s.now < deadline {
		s.now = deadline
	}
}

// Stop makes a Run or RunUntil in progress return after the current event.
func (s *Scheduler) Stop() { s.running = false }

func (s *Scheduler) peek() *Event {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if !e.cancel {
			return e
		}
		heap.Pop(&s.queue)
	}
	return nil
}

// Timer is a restartable one-shot timer bound to a scheduler, in the style
// of kernel protocol timers (retransmission, delayed-ACK, keepalive).
type Timer struct {
	s  *Scheduler
	ev *Event
	fn func()
}

// NewTimer returns a stopped timer that runs fn when it expires.
func NewTimer(s *Scheduler, fn func()) *Timer {
	return &Timer{s: s, fn: fn}
}

// Reset (re)arms the timer to fire d from now, cancelling any earlier
// deadline.
func (t *Timer) Reset(d time.Duration) {
	t.ev.Cancel()
	t.ev = t.s.After(d, t.fire)
}

// Stop disarms the timer.
func (t *Timer) Stop() {
	t.ev.Cancel()
	t.ev = nil
}

// Armed reports whether the timer is waiting to fire.
func (t *Timer) Armed() bool { return t.ev != nil && !t.ev.Cancelled() }

// Deadline returns the virtual time the timer will fire at; valid only when
// Armed.
func (t *Timer) Deadline() time.Duration {
	if !t.Armed() {
		return 0
	}
	return t.ev.At()
}

func (t *Timer) fire() {
	t.ev = nil
	t.fn()
}
