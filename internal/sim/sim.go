// Package sim provides a deterministic discrete-event simulation engine.
//
// All HydraNet-FT components run on a single virtual clock owned by a
// Scheduler. Events execute in strict timestamp order; ties are broken by
// insertion order, so a run with a given seed and topology is exactly
// reproducible. The engine is intentionally single-threaded: protocol
// endpoints are event-driven state machines, not goroutines, which removes
// scheduling nondeterminism from measurements.
//
// The scheduler is allocation-free in steady state: event nodes live on an
// internal free list and are recycled after they fire or are cancelled, and
// the pending queue is a specialized min-heap rather than container/heap
// (whose any-typed Push/Pop would box every node). Handles returned by At
// and After are generation-checked values, so holding a handle past its
// event's lifetime is always safe: Cancel on a stale handle is a no-op even
// if the underlying node has been recycled for an unrelated event.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// eventNode is the scheduler-owned representation of a pending callback.
// Nodes are recycled through the scheduler's free list; gen increments on
// every recycle so stale Event handles cannot reach a new occupant.
type eventNode struct {
	fn        func()
	at        time.Duration
	birth     time.Duration // virtual time the event was scheduled at
	seq       uint64
	gen       uint64
	depth     uint64 // causal depth (parent's depth + 1); 0 unless profiling
	s         *Scheduler
	index     int32 // heap index; -1 once removed
	cancelled bool
}

// Event is a handle to a scheduled callback. The callback runs exactly once
// unless the event is cancelled first. The zero Event is inert: Cancel is a
// no-op and Cancelled reports true.
type Event struct {
	n   *eventNode
	gen uint64
}

// live reports whether the handle still refers to a pending, uncancelled
// event.
func (e *Event) live() bool {
	return e != nil && e.n != nil && e.n.gen == e.gen && !e.n.cancelled
}

// At returns the virtual time the event is scheduled for, or 0 if the event
// has already fired or been cancelled.
func (e *Event) At() time.Duration {
	if !e.live() {
		return 0
	}
	return e.n.at
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op, even if the scheduler has recycled the
// underlying node for a different event.
func (e *Event) Cancel() {
	if !e.live() {
		return
	}
	n := e.n
	n.cancelled = true
	n.fn = nil
	n.s.dead++
	n.s.maybeCompact()
}

// Cancelled reports whether the event will no longer fire: it was cancelled,
// or it has already run.
func (e *Event) Cancelled() bool { return !e.live() }

// Scheduler owns the virtual clock and the pending-event queue.
type Scheduler struct {
	now      time.Duration
	curBirth time.Duration // birth of the event currently executing
	curSeq   uint64        // sequence of the event currently executing
	heap     []*eventNode
	free     []*eventNode
	dead     int // cancelled nodes still sitting in heap (lazy deletion)
	nextSeq  uint64
	rng      *rand.Rand
	fired    uint64
	running  bool

	prof     *SchedProf // causal profiler; nil (zero-cost) unless attached
	curDepth uint64     // causal depth of the event currently executing
}

// NewScheduler returns a scheduler with its clock at zero and a PRNG seeded
// with the given seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic PRNG. All randomness in a
// simulation (loss decisions, jitter) must come from this source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of live events waiting in the queue. Cancelled
// events awaiting lazy removal are not counted.
func (s *Scheduler) Pending() int { return len(s.heap) - s.dead }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would reorder causality.
//
//hydralint:zeroalloc
func (s *Scheduler) At(t time.Duration, fn func()) Event {
	return s.AtBirth(t, s.now, fn)
}

// AtBirth schedules fn at absolute virtual time t with an explicit birth
// time: the virtual instant the event was (logically) created. At uses the
// current clock; cross-scheduler merges (see Group and the netsim domain
// inboxes) pass the birth recorded in the source domain, so an injected
// event sorts exactly where the serial scheduler would have placed it.
// birth must not exceed t, and t must not precede the clock.
//
//hydralint:zeroalloc
func (s *Scheduler) AtBirth(t, birth time.Duration, fn func()) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if birth > t {
		panic(fmt.Sprintf("sim: event birth %v after its deadline %v", birth, t))
	}
	var n *eventNode
	if k := len(s.free); k > 0 {
		n = s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
	} else {
		n = &eventNode{s: s}
	}
	n.at = t
	n.birth = birth
	n.seq = s.nextSeq
	n.fn = fn
	n.cancelled = false
	if p := s.prof; p != nil {
		// Child depth: one past the executing parent. Coordinator-context
		// scheduling (between runs, or a barrier-hosted global callback —
		// the scheduler is not running) roots a fresh chain at depth zero,
		// which keeps depths identical for a serial run and any partition.
		d := uint64(0)
		if s.running {
			d = s.curDepth + 1
		}
		n.depth = d
		p.noteEdge(s.now, s.curBirth, t, birth, d)
	} else {
		n.depth = 0
	}
	s.nextSeq++
	n.index = int32(len(s.heap))
	s.heap = append(s.heap, n)
	s.siftUp(int(n.index))
	return Event{n: n, gen: n.gen}
}

// AtBirthFrom schedules like AtBirth but carries an explicit causal depth
// for the scheduling parent: cross-scheduler hand-off merges (see the
// netsim domain inboxes) pass the depth recorded in the source domain, so
// the critical-path profiler sees the same parent→child chain a single
// serial scheduler would have recorded. Without a profiler attached the
// depth is ignored entirely.
//
//hydralint:zeroalloc
func (s *Scheduler) AtBirthFrom(t, birth time.Duration, parentDepth uint64, fn func()) Event {
	ev := s.AtBirth(t, birth, fn)
	if s.prof != nil {
		ev.n.depth = parentDepth + 1
	}
	return ev
}

// After schedules fn to run d after the current virtual time.
//
//hydralint:zeroalloc
func (s *Scheduler) After(d time.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It returns false when the queue is empty.
//
//hydralint:zeroalloc
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		n := s.popRoot()
		if n.cancelled {
			s.dead--
			s.recycle(n)
			continue
		}
		s.now = n.at
		s.curBirth = n.birth
		s.curSeq = n.seq
		s.fired++
		if p := s.prof; p != nil {
			// The maximum folds in at fire time, not schedule time, so
			// cancelled events (Timer.Reset orphans) never stretch the path.
			s.curDepth = n.depth
			if n.depth > p.maxDepth {
				p.maxDepth = n.depth
				p.deepAt = n.at
			}
		}
		fn := n.fn
		s.recycle(n)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (s *Scheduler) Run() {
	s.running = true
	for s.running && s.Step() {
	}
	s.running = false
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.running = true
	for s.running {
		n := s.peek()
		if n == nil || n.at > deadline {
			break
		}
		s.Step()
	}
	s.running = false
	if s.now < deadline {
		s.now = deadline
	}
}

// Stop makes a Run or RunUntil in progress return after the current event.
func (s *Scheduler) Stop() { s.running = false }

// Key is a point in the scheduler's total event order: events execute in
// ascending (At, Birth) order, with the per-scheduler sequence counter
// breaking exact ties. A Key with Birth = KeyMax bounds every event at the
// same timestamp (inclusive bound); Birth = KeyMin bounds none of them
// (exclusive bound).
type Key struct {
	At    time.Duration
	Birth time.Duration
}

// Key bounds for inclusive/exclusive window edges.
const (
	KeyMin time.Duration = -1 << 62
	KeyMax time.Duration = 1<<63 - 1
)

// Less orders keys lexicographically, matching the heap order.
func (k Key) Less(o Key) bool {
	if k.At != o.At {
		return k.At < o.At
	}
	return k.Birth < o.Birth
}

// NextKey returns the ordering key of the earliest pending event, or
// ok=false when the queue is empty.
func (s *Scheduler) NextKey() (Key, bool) {
	n := s.peek()
	if n == nil {
		return Key{}, false
	}
	return Key{At: n.at, Birth: n.birth}, true
}

// CurrentKey returns the ordering key and sequence number of the event
// currently executing (or most recently executed). Outside event execution
// it reflects the last event that ran; a scheduler that has fired nothing
// reports the zero key. Deferred-observation spools use it to tag records
// with the exact point in the event order they were emitted from.
//
//hydralint:zeroalloc
func (s *Scheduler) CurrentKey() (key Key, seq uint64) {
	return Key{At: s.now, Birth: s.curBirth}, s.curSeq
}

// CurrentDepth returns the causal depth of the event currently executing
// (or most recently executed). Always 0 with no profiler attached; hand-off
// producers read it to stamp cross-scheduler work with the sender's depth.
//
//hydralint:zeroalloc
func (s *Scheduler) CurrentDepth() uint64 { return s.curDepth }

// EnableProfile attaches (nil detaches) the causal profiler and resets the
// depth baseline, so chains rooted after the call start at depth zero. A
// detached scheduler pays one nil test per schedule/fire and allocates
// nothing. Coordinator context only (never from inside an event).
func (s *Scheduler) EnableProfile(p *SchedProf) {
	s.prof = p
	s.curDepth = 0
}

// Profile returns the attached causal profiler, nil when detached.
func (s *Scheduler) Profile() *SchedProf { return s.prof }

// RunToKey executes every pending event whose key is strictly below bound,
// in order, and returns the number executed. The clock is left at the last
// executed event (it does not advance to the bound; see AdvanceTo). This is
// the parallel window primitive: a Group runs each domain's scheduler up to
// the window edge, exchanges cross-domain work at the barrier, and repeats.
func (s *Scheduler) RunToKey(bound Key) int {
	ran := 0
	s.running = true
	for s.running {
		n := s.peek()
		if n == nil || !(Key{At: n.at, Birth: n.birth}).Less(bound) {
			break
		}
		s.Step()
		ran++
	}
	s.running = false
	return ran
}

// AdvanceTo moves the clock forward to t without executing anything.
// Earlier t is a no-op; the clock never moves backwards. Group barriers use
// it to align every domain's clock with the window edge so that clock reads
// (backlog gauges, samplers) agree across domains.
func (s *Scheduler) AdvanceTo(t time.Duration) {
	if t > s.now {
		s.now = t
	}
}

// peek returns the earliest live node, draining cancelled nodes off the top
// of the heap along the way.
func (s *Scheduler) peek() *eventNode {
	for len(s.heap) > 0 {
		n := s.heap[0]
		if !n.cancelled {
			return n
		}
		s.popRoot()
		s.dead--
		s.recycle(n)
	}
	return nil
}

// recycle returns a node to the free list. The generation bump invalidates
// every outstanding handle to this occupancy.
func (s *Scheduler) recycle(n *eventNode) {
	n.gen++
	n.fn = nil
	n.index = -1
	n.cancelled = false
	s.free = append(s.free, n)
}

// maybeCompact removes cancelled nodes in bulk once they dominate the heap,
// bounding memory under heavy Timer.Reset churn (TCP retransmission timers
// re-arm on every ACK, orphaning their previous deadline each time).
func (s *Scheduler) maybeCompact() {
	if s.dead <= 64 || s.dead*2 <= len(s.heap) {
		return
	}
	live := s.heap[:0]
	for _, n := range s.heap {
		if n.cancelled {
			s.recycle(n)
			continue
		}
		live = append(live, n)
	}
	// Clear the tail so recycled nodes aren't retained by the backing array.
	for i := len(live); i < len(s.heap); i++ {
		s.heap[i] = nil
	}
	s.heap = live
	s.dead = 0
	for i := range s.heap {
		s.heap[i].index = int32(i)
	}
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

// less orders the heap by (timestamp, birth, insertion sequence). Within a
// single scheduler this is exactly the historical (timestamp, sequence)
// order: the clock never runs backwards, so the sequence counter is
// monotone in birth time and the birth comparison can never contradict the
// sequence comparison. The birth term only becomes decisive for events
// merged in from another scheduler (AtBirth with a foreign birth), where it
// reconstructs the position a single global scheduler would have given
// them.
func (s *Scheduler) less(i, j int) bool {
	a, b := s.heap[i], s.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.birth != b.birth {
		return a.birth < b.birth
	}
	return a.seq < b.seq
}

func (s *Scheduler) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].index = int32(i)
	s.heap[j].index = int32(j)
}

func (s *Scheduler) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Scheduler) siftDown(i int) {
	n := len(s.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && s.less(right, left) {
			min = right
		}
		if !s.less(min, i) {
			break
		}
		s.swap(i, min)
		i = min
	}
}

// popRoot removes and returns the heap root. Callers adjust dead counts and
// recycle the node.
func (s *Scheduler) popRoot() *eventNode {
	n := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap[0].index = 0
	s.heap[last] = nil
	s.heap = s.heap[:last]
	if last > 0 {
		s.siftDown(0)
	}
	n.index = -1
	return n
}

// Timer is a restartable one-shot timer bound to a scheduler, in the style
// of kernel protocol timers (retransmission, delayed-ACK, keepalive).
type Timer struct {
	s      *Scheduler
	ev     Event
	fn     func()
	fireFn func() // cached method value so Reset never allocates
}

// NewTimer returns a stopped timer that runs fn when it expires.
func NewTimer(s *Scheduler, fn func()) *Timer {
	t := &Timer{s: s, fn: fn}
	t.fireFn = t.fire
	return t
}

// Reset (re)arms the timer to fire d from now, cancelling any earlier
// deadline.
func (t *Timer) Reset(d time.Duration) {
	t.ev.Cancel()
	t.ev = t.s.After(d, t.fireFn)
}

// Stop disarms the timer.
func (t *Timer) Stop() {
	t.ev.Cancel()
	t.ev = Event{}
}

// Armed reports whether the timer is waiting to fire.
func (t *Timer) Armed() bool { return t.ev.live() }

// Deadline returns the virtual time the timer will fire at; valid only when
// Armed.
func (t *Timer) Deadline() time.Duration {
	if !t.Armed() {
		return 0
	}
	return t.ev.At()
}

func (t *Timer) fire() {
	t.ev = Event{}
	t.fn()
}
