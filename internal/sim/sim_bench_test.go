package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestRandomEventsFireInTimestampOrder is the heap's core property under
// arbitrary insertion patterns, including insertions from inside running
// events.
func TestRandomEventsFireInTimestampOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := NewScheduler(1)
	var fired []time.Duration
	record := func() { fired = append(fired, s.Now()) }
	var schedule func(depth int)
	schedule = func(depth int) {
		n := rng.Intn(20) + 1
		for i := 0; i < n; i++ {
			at := s.Now() + time.Duration(rng.Intn(1000))*time.Millisecond
			if depth < 3 && rng.Intn(4) == 0 {
				d := depth
				s.At(at, func() { record(); schedule(d + 1) })
			} else {
				s.At(at, record)
			}
		}
	}
	schedule(0)
	s.Run()
	if len(fired) < 20 {
		t.Fatalf("only %d events fired", len(fired))
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatal("events fired out of timestamp order")
	}
}

// BenchmarkSchedulerThroughput measures raw event dispatch speed — the
// budget every simulated packet pays several times.
func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler(1)
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < b.N {
			s.After(time.Microsecond, chain)
		}
	}
	b.ResetTimer()
	s.After(time.Microsecond, chain)
	s.Run()
}

// BenchmarkSchedulerMixedQueue exercises the heap with a standing backlog.
func BenchmarkSchedulerMixedQueue(b *testing.B) {
	s := NewScheduler(1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1024; i++ {
		s.At(time.Duration(rng.Intn(1_000_000))*time.Microsecond, func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+time.Duration(rng.Intn(1000))*time.Microsecond, func() {})
		s.Step()
	}
}

// BenchmarkSchedulerPushPop is the allocation budget of one schedule/dispatch
// cycle, the cost every simulated packet pays several times per hop.
func BenchmarkSchedulerPushPop(b *testing.B) {
	s := NewScheduler(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+time.Microsecond, fn)
		s.Step()
	}
}

// BenchmarkSchedulerCancel measures the schedule-then-cancel cycle that TCP
// retransmission timers produce on every ACK (Timer.Reset churn).
func BenchmarkSchedulerCancel(b *testing.B) {
	s := NewScheduler(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.At(s.Now()+time.Second, func() {})
		e.Cancel()
		if i%64 == 0 {
			// Keep the clock moving so the queue cannot grow without bound
			// from the benchmark loop itself.
			s.After(0, func() {})
			s.Step()
		}
	}
}

// BenchmarkTimerResetChurn drives a Timer exactly the way a TCP connection
// under steady ACK clocking does: every iteration re-arms the deadline,
// orphaning the previous event in the queue.
func BenchmarkTimerResetChurn(b *testing.B) {
	s := NewScheduler(1)
	t := NewTimer(s, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Reset(time.Second)
		if i%64 == 0 {
			s.After(0, func() {})
			s.Step()
		}
	}
	b.StopTimer()
	if p := s.Pending(); p > b.N+2 {
		b.Fatalf("queue bloat: %d pending after %d resets", p, b.N)
	}
}
