package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestRandomEventsFireInTimestampOrder is the heap's core property under
// arbitrary insertion patterns, including insertions from inside running
// events.
func TestRandomEventsFireInTimestampOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := NewScheduler(1)
	var fired []time.Duration
	record := func() { fired = append(fired, s.Now()) }
	var schedule func(depth int)
	schedule = func(depth int) {
		n := rng.Intn(20) + 1
		for i := 0; i < n; i++ {
			at := s.Now() + time.Duration(rng.Intn(1000))*time.Millisecond
			if depth < 3 && rng.Intn(4) == 0 {
				d := depth
				s.At(at, func() { record(); schedule(d + 1) })
			} else {
				s.At(at, record)
			}
		}
	}
	schedule(0)
	s.Run()
	if len(fired) < 20 {
		t.Fatalf("only %d events fired", len(fired))
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatal("events fired out of timestamp order")
	}
}

// BenchmarkSchedulerThroughput measures raw event dispatch speed — the
// budget every simulated packet pays several times.
func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler(1)
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < b.N {
			s.After(time.Microsecond, chain)
		}
	}
	b.ResetTimer()
	s.After(time.Microsecond, chain)
	s.Run()
}

// BenchmarkSchedulerMixedQueue exercises the heap with a standing backlog.
func BenchmarkSchedulerMixedQueue(b *testing.B) {
	s := NewScheduler(1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1024; i++ {
		s.At(time.Duration(rng.Intn(1_000_000))*time.Microsecond, func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+time.Duration(rng.Intn(1000))*time.Microsecond, func() {})
		s.Step()
	}
}
