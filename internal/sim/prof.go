package sim

import "time"

// Profiling support for the simulation core. Two collectors exist:
//
//   - SchedProf attaches to one Scheduler and tracks the causal structure of
//     its event stream: every event's depth in the parent→child scheduling
//     DAG (an event's parent is the event whose execution scheduled it), the
//     maximum depth observed at fire time — the critical path — and a
//     sampled ring of parent→child edges for inspection. The critical path
//     bounds parallel speedup: with unit event cost no schedule can finish
//     in fewer steps than the longest causal chain, so
//     fired / maxDepth is the scenario's ideal speedup.
//   - GroupProf attaches to a Group and accounts wall-clock time per domain
//     per window: hand-off merge (WindowStart), event execution (RunToKey),
//     outbox flush (WindowEnd), and barrier stall (the gap between a domain
//     finishing its window and the window's slowest domain finishing).
//
// Both are strictly passive and nil-gated on the hot paths: a detached
// scheduler or group pays a single pointer test and allocates nothing
// (pinned by TestProfZeroCostWhenDetached and the hydralint zeroalloc
// fence). Attached collectors preallocate their rings, so the steady state
// stays allocation-free too.
//
// Depth bookkeeping and determinism: an event scheduled during another
// event's execution gets depth parent+1; an event scheduled from
// coordinator context (setup code between runs, barrier-hosted global
// callbacks) roots a new chain at depth zero. Cross-domain hand-offs carry
// the sender's depth through AtBirthFrom, so the causal DAG — and therefore
// the critical path — is identical for a serial run and any partition of
// it, as long as no barrier-hosted samplers are attached (a serial sampler
// chains its own re-arms on the heap; its barrier-hosted twin roots each
// tick at depth zero).

// ProfEdge is one sampled parent→child scheduling edge: the parent's
// (at, birth) key is the executing event's, the child's is the newly
// scheduled event's, and Depth is the child's causal depth.
type ProfEdge struct {
	ParentAt    time.Duration
	ParentBirth time.Duration
	ChildAt     time.Duration
	ChildBirth  time.Duration
	Depth       uint64
}

// SchedProf collects causal critical-path data for one Scheduler. Attach
// with Scheduler.EnableProfile; all state is owned by the scheduler's
// domain, so reads belong in coordinator context (between runs or at a
// barrier).
type SchedProf struct {
	maxDepth uint64        // longest causal chain among fired events
	deepAt   time.Duration // virtual instant the deepest event fired
	every    uint64        // record every Nth scheduling edge
	seen     uint64        // edges considered for sampling
	recorded uint64        // edges recorded (may exceed the ring capacity)
	ring     []ProfEdge    // preallocated sample ring
	next     int           // ring write cursor
}

// NewSchedProf returns a collector whose edge ring holds ringCap samples,
// recording every everyth scheduling edge (minimums of 16 and 1 apply).
func NewSchedProf(ringCap, every int) *SchedProf {
	if ringCap < 16 {
		ringCap = 16
	}
	if every < 1 {
		every = 1
	}
	return &SchedProf{every: uint64(every), ring: make([]ProfEdge, 0, ringCap)}
}

// noteEdge is called from AtBirth on the scheduling hot path: count the
// edge and, every everyth time, overwrite the oldest ring slot. The ring is
// capacity-bounded and append never exceeds it, so steady state is
// allocation-free.
func (p *SchedProf) noteEdge(parentAt, parentBirth, childAt, childBirth time.Duration, depth uint64) {
	p.seen++
	if p.seen%p.every != 0 {
		return
	}
	p.recorded++
	e := ProfEdge{
		ParentAt:    parentAt,
		ParentBirth: parentBirth,
		ChildAt:     childAt,
		ChildBirth:  childBirth,
		Depth:       depth,
	}
	if len(p.ring) < cap(p.ring) {
		p.ring = append(p.ring, e)
		return
	}
	p.ring[p.next] = e
	p.next++
	if p.next == len(p.ring) {
		p.next = 0
	}
}

// MaxDepth returns the longest causal chain among events fired so far.
// Cancelled events never contribute: depth is assigned at scheduling time
// but only folded into the maximum when the event actually fires, so a
// Timer.Reset orphaning thousands of deadlines cannot inflate the path.
func (p *SchedProf) MaxDepth() uint64 { return p.maxDepth }

// DeepestAt returns the virtual instant the deepest event fired.
func (p *SchedProf) DeepestAt() time.Duration { return p.deepAt }

// SampleEvery returns the edge sampling stride.
func (p *SchedProf) SampleEvery() uint64 { return p.every }

// EdgesSeen returns how many scheduling edges were considered.
func (p *SchedProf) EdgesSeen() uint64 { return p.seen }

// EdgesRecorded returns how many edges were written to the ring (the ring
// keeps only the most recent len(ring) of them).
func (p *SchedProf) EdgesRecorded() uint64 { return p.recorded }

// Edges appends the retained edge samples to dst in recording order
// (oldest first) and returns the extended slice.
func (p *SchedProf) Edges(dst []ProfEdge) []ProfEdge {
	if len(p.ring) < cap(p.ring) {
		return append(dst, p.ring...)
	}
	dst = append(dst, p.ring[p.next:]...)
	return append(dst, p.ring[:p.next]...)
}

// ProfDomainTotals is one domain's cumulative window accounting.
type ProfDomainTotals struct {
	MergeNs int64  // WindowStart: draining and merging staged hand-offs
	ExecNs  int64  // RunToKey: executing the domain's events
	FlushNs int64  // WindowEnd: flushing outbox batches
	StallNs int64  // waiting for the window's slowest domain
	Events  uint64 // events executed inside windows
}

// ProfWindowDomain is one domain's share of one window.
type ProfWindowDomain struct {
	MergeNs int64
	ExecNs  int64
	FlushNs int64
	StallNs int64
	DoneNs  int64 // wall offset (from the profiler epoch) the domain finished at
	Events  uint64
}

// ProfWindow is one recorded window: its bound key, wall-clock extent,
// per-domain breakdown, the barrier time that followed it, and the
// cross-domain hand-off counts produced during it (src*domains+dst).
type ProfWindow struct {
	Seq        uint64
	BoundAt    time.Duration
	BoundBirth time.Duration
	Global     bool // window edge set by a global event, not the lookahead
	StartNs    int64
	EndNs      int64
	BarrierNs  int64
	Domains    []ProfWindowDomain
	Flows      []uint64
}

// GroupProf collects per-domain, per-window wall-clock accounting for a
// Group. Attach with Group.EnableProfile. Workers write only their own
// domain's slot of the current window; the coordinator opens and closes
// windows with all workers parked (the Group's own barrier discipline), so
// no additional synchronization is needed.
type GroupProf struct {
	epoch time.Time // wall-clock origin; all Ns fields are offsets from it

	totals       []ProfDomainTotals
	windowWallNs int64  // Σ (EndNs - StartNs) over every window run
	windows      uint64 // windows run (recorded or evicted)
	dropped      uint64 // windows evicted from the ring
	barrierNs    int64  // Σ coordinator barrier time
	barriers     uint64

	ring  []ProfWindow
	count int // live records
	next  int // eviction cursor once full

	cur  *ProfWindow // window being recorded; nil outside runWindow
	last *ProfWindow // most recently completed window (barrier attribution)

	// flowSample fills a domains² matrix with cumulative hand-off counts;
	// endWindow turns consecutive samples into per-window deltas.
	flowSample func(dst []uint64)
	flowPrev   []uint64
	flowCur    []uint64
}

// NewGroupProf returns a collector for a group of domains whose window ring
// retains ringCap windows (minimum 64). Every ring slot's per-domain and
// flow sub-records are preallocated, so recording is allocation-free.
func NewGroupProf(domains, ringCap int) *GroupProf {
	if ringCap < 64 {
		ringCap = 64
	}
	p := &GroupProf{
		totals:   make([]ProfDomainTotals, domains),
		ring:     make([]ProfWindow, ringCap),
		flowPrev: make([]uint64, domains*domains),
		flowCur:  make([]uint64, domains*domains),
	}
	for i := range p.ring {
		p.ring[i].Domains = make([]ProfWindowDomain, domains)
		p.ring[i].Flows = make([]uint64, domains*domains)
	}
	//hydralint:nondeterministic profiler wall-clock epoch: accounting output only, never fed back into the simulation
	p.epoch = time.Now()
	return p
}

// SetFlowSampler installs the cumulative hand-off matrix reader (the
// network fabric's HandoffMatrix in practice). Coordinator context, before
// the first window.
func (p *GroupProf) SetFlowSampler(fn func(dst []uint64)) { p.flowSample = fn }

// wallNs reads the host clock as a nanosecond offset from the profiler
// epoch. Worker-safe: the epoch is written once before any window runs.
func (p *GroupProf) wallNs() int64 {
	//hydralint:nondeterministic profiler wall-clock reads: accounting output only, never fed back into the simulation
	return time.Now().Sub(p.epoch).Nanoseconds()
}

// beginWindow opens the next window record, evicting the oldest once the
// ring is full. Coordinator context.
func (p *GroupProf) beginWindow(bound Key) {
	var w *ProfWindow
	if p.count < len(p.ring) {
		w = &p.ring[p.count]
		p.count++
	} else {
		w = &p.ring[p.next]
		p.next++
		if p.next == len(p.ring) {
			p.next = 0
		}
		p.dropped++
	}
	w.Seq = p.windows
	p.windows++
	w.BoundAt = bound.At
	w.BoundBirth = bound.Birth
	w.Global = bound.Birth != KeyMin && bound.Birth != KeyMax
	w.BarrierNs = 0
	for i := range w.Domains {
		w.Domains[i] = ProfWindowDomain{}
	}
	for i := range w.Flows {
		w.Flows[i] = 0
	}
	w.StartNs = p.wallNs()
	w.EndNs = w.StartNs
	p.cur = w
}

// noteDomain records domain d's window phases: t0..t3 bracket merge
// (WindowStart), execution (RunToKey) and flush (WindowEnd); ran is the
// event count. Called by d's worker — each domain writes a distinct slot.
func (p *GroupProf) noteDomain(d int, t0, t1, t2, t3 int64, ran int) {
	wd := &p.cur.Domains[d]
	wd.MergeNs = t1 - t0
	wd.ExecNs = t2 - t1
	wd.FlushNs = t3 - t2
	wd.DoneNs = t3
	wd.Events = uint64(ran)
}

// endWindow closes the current window with all workers parked: stall is the
// gap between each domain's finish and the window's wall end, totals
// accumulate, and the flow sampler's delta is taken. Coordinator context.
func (p *GroupProf) endWindow() {
	w := p.cur
	p.cur = nil
	end := p.wallNs()
	w.EndNs = end
	p.windowWallNs += end - w.StartNs
	for d := range w.Domains {
		wd := &w.Domains[d]
		wd.StallNs = end - wd.DoneNs
		tt := &p.totals[d]
		tt.MergeNs += wd.MergeNs
		tt.ExecNs += wd.ExecNs
		tt.FlushNs += wd.FlushNs
		tt.StallNs += wd.StallNs
		tt.Events += wd.Events
	}
	if p.flowSample != nil {
		p.flowSample(p.flowCur)
		for i, v := range p.flowCur {
			w.Flows[i] = v - p.flowPrev[i]
		}
		p.flowPrev, p.flowCur = p.flowCur, p.flowPrev
	}
	p.last = w
}

// noteBarrier accounts coordinator barrier time (hand-off staging plus
// observation replay), attributing it to the window it sealed. Barriers can
// run without a preceding window (the final deadline alignment), hence the
// nil guard.
func (p *GroupProf) noteBarrier(ns int64) {
	p.barrierNs += ns
	p.barriers++
	if p.last != nil {
		p.last.BarrierNs += ns
	}
}

// Totals appends each domain's cumulative accounting to dst.
func (p *GroupProf) Totals(dst []ProfDomainTotals) []ProfDomainTotals {
	return append(dst, p.totals...)
}

// Domains returns the domain count the collector was built for.
func (p *GroupProf) Domains() int { return len(p.totals) }

// WindowsRun returns how many windows executed (recorded or evicted).
func (p *GroupProf) WindowsRun() uint64 { return p.windows }

// WindowsDropped returns how many window records the ring evicted.
func (p *GroupProf) WindowsDropped() uint64 { return p.dropped }

// WindowWallNs returns the summed wall extent of every window run.
func (p *GroupProf) WindowWallNs() int64 { return p.windowWallNs }

// BarrierNs returns the summed coordinator barrier time.
func (p *GroupProf) BarrierNs() int64 { return p.barrierNs }

// Barriers returns how many coordinator barriers ran.
func (p *GroupProf) Barriers() uint64 { return p.barriers }

// ForEachWindow visits the retained window records oldest-first.
func (p *GroupProf) ForEachWindow(fn func(w *ProfWindow)) {
	if p.count < len(p.ring) {
		for i := 0; i < p.count; i++ {
			fn(&p.ring[i])
		}
		return
	}
	for i := p.next; i < len(p.ring); i++ {
		fn(&p.ring[i])
	}
	for i := 0; i < p.next; i++ {
		fn(&p.ring[i])
	}
}
