package ipv4

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"hydranet/internal/sim"
)

// ErrFragNeeded reports a datagram that needs fragmentation but carries the
// don't-fragment flag; ICMP converts it into "fragmentation needed".
var ErrFragNeeded = errors.New("ipv4: fragmentation needed but DF set")

// Fragment splits a datagram into fragments whose marshaled size fits mtu.
// A datagram that already fits is returned unchanged (same slice). Datagrams
// with DontFrag set that do not fit produce an error, mirroring the kernel's
// ICMP "fragmentation needed" path.
func Fragment(p *Packet, mtu int) ([]*Packet, error) {
	if HeaderLen+len(p.Payload) <= mtu {
		return []*Packet{p}, nil
	}
	if p.DontFrag {
		return nil, fmt.Errorf("%w: datagram %d→%s", ErrFragNeeded, p.ID, p.Dst)
	}
	chunk := (mtu - HeaderLen) &^ 7 // fragment payloads are 8-byte aligned
	if chunk <= 0 {
		return nil, fmt.Errorf("ipv4: mtu %d too small to fragment", mtu)
	}
	var frags []*Packet
	for off := 0; off < len(p.Payload); off += chunk {
		end := off + chunk
		more := true
		if end >= len(p.Payload) {
			end = len(p.Payload)
			more = p.MoreFrag // preserve MF when re-fragmenting a middle fragment
		}
		f := &Packet{Header: p.Header, Payload: p.Payload[off:end]}
		f.FragOff = p.FragOff + off
		f.MoreFrag = more
		frags = append(frags, f)
	}
	return frags, nil
}

// ReassemblyTimeout is how long a partial datagram is held before its
// fragments are discarded.
const ReassemblyTimeout = 30 * time.Second

type fragKey struct {
	src, dst Addr
	proto    uint8
	id       uint16
}

type fragHole struct {
	off  int
	data []byte
	more bool
}

type fragEntry struct {
	parts   []fragHole
	expires sim.Event
}

// Reassembler collects fragments and produces whole datagrams. It is
// per-stack state, driven by the stack's scheduler for timeouts.
type Reassembler struct {
	sched   *sim.Scheduler
	pending map[fragKey]*fragEntry

	// Expired counts datagrams dropped by the reassembly timeout.
	Expired uint64
}

// NewReassembler returns an empty reassembler.
func NewReassembler(sched *sim.Scheduler) *Reassembler {
	return &Reassembler{sched: sched, pending: make(map[fragKey]*fragEntry)}
}

// Add ingests a fragment (or whole datagram). It returns the reassembled
// datagram when complete, or nil while fragments are still outstanding.
func (r *Reassembler) Add(p *Packet) *Packet {
	if p.FragOff == 0 && !p.MoreFrag {
		return p // not fragmented
	}
	key := fragKey{src: p.Src, dst: p.Dst, proto: p.Proto, id: p.ID}
	e := r.pending[key]
	if e == nil {
		e = &fragEntry{}
		e.expires = r.sched.After(ReassemblyTimeout, func() {
			delete(r.pending, key)
			r.Expired++
		})
		r.pending[key] = e
	}
	// The fragment payload aliases a pooled fabric frame that is recycled
	// once this delivery event returns, while reassembly state lives until
	// the datagram completes or times out — copy it.
	data := append([]byte(nil), p.Payload...)
	// Duplicate fragments (retransmissions) replace rather than accumulate.
	replaced := false
	for i := range e.parts {
		if e.parts[i].off == p.FragOff {
			e.parts[i] = fragHole{off: p.FragOff, data: data, more: p.MoreFrag}
			replaced = true
			break
		}
	}
	if !replaced {
		e.parts = append(e.parts, fragHole{off: p.FragOff, data: data, more: p.MoreFrag})
	}
	whole := assemble(e.parts)
	if whole == nil {
		return nil
	}
	e.expires.Cancel()
	delete(r.pending, key)
	out := &Packet{Header: p.Header, Payload: whole}
	out.FragOff = 0
	out.MoreFrag = false
	out.TotalLen = HeaderLen + len(whole)
	return out
}

// assemble returns the contiguous payload if parts cover [0, end] with a
// final no-more-fragments part, else nil.
func assemble(parts []fragHole) []byte {
	sort.Slice(parts, func(i, j int) bool { return parts[i].off < parts[j].off })
	next := 0
	sawLast := false
	total := 0
	for _, p := range parts {
		if p.off > next {
			return nil // hole
		}
		if end := p.off + len(p.data); end > next {
			next = end
		}
		if !p.more {
			sawLast = true
			total = p.off + len(p.data)
		}
	}
	if !sawLast || next < total {
		return nil
	}
	out := make([]byte, total)
	for _, p := range parts {
		copy(out[p.off:], p.data)
	}
	return out
}
