package ipv4

import (
	"errors"
	"fmt"
)

// Assigned protocol numbers used by HydraNet-FT.
const (
	ProtoIPIP uint8 = 4 // IP-in-IP encapsulation, the redirector's tunnel
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// HeaderLen is the length of an IPv4 header without options. This stack
// never emits options.
const HeaderLen = 20

// Flag bits in the fragmentation field.
const (
	flagDF = 0x4000 // don't fragment
	flagMF = 0x2000 // more fragments
)

// Header is a parsed IPv4 header (no options).
type Header struct {
	TOS      uint8
	TotalLen int
	ID       uint16
	DontFrag bool
	MoreFrag bool
	FragOff  int // byte offset of this fragment in the original datagram
	TTL      uint8
	Proto    uint8
	Src, Dst Addr
}

// Packet is a parsed IPv4 datagram (or fragment).
type Packet struct {
	Header
	Payload []byte

	// wire holds the original marshalled bytes when the packet came off the
	// fabric via Unmarshal. Forwarding and encapsulation fast paths reuse it
	// (patching TTL incrementally) instead of re-marshalling. Like Payload,
	// it aliases the fabric's frame buffer and is valid only during the
	// delivery event.
	wire []byte
}

// Wire returns the packet's original wire bytes if it was produced by
// Unmarshal, else nil. The slice aliases the received frame: it is readable
// only synchronously within the delivery event, and callers must treat it
// as immutable except through PatchTTL-style incremental updates applied to
// a copy.
func (p *Packet) Wire() []byte { return p.wire }

// Errors returned by Unmarshal.
var (
	ErrTruncated   = errors.New("ipv4: truncated packet")
	ErrBadVersion  = errors.New("ipv4: not an IPv4 packet")
	ErrBadChecksum = errors.New("ipv4: header checksum mismatch")
	ErrBadLength   = errors.New("ipv4: total length disagrees with frame")
)

// Marshal serializes the packet into wire format, computing TotalLen and the
// header checksum. Fragment offsets must be multiples of 8 bytes.
func (p *Packet) Marshal() ([]byte, error) {
	total := HeaderLen + len(p.Payload)
	if err := p.checkMarshal(total); err != nil {
		return nil, err
	}
	b := make([]byte, total)
	p.putHeader(b, total)
	copy(b[HeaderLen:], p.Payload)
	return b, nil
}

func (p *Packet) checkMarshal(total int) error {
	if p.FragOff%8 != 0 {
		return fmt.Errorf("ipv4: fragment offset %d not a multiple of 8", p.FragOff)
	}
	if total > 0xffff {
		return fmt.Errorf("ipv4: datagram of %d bytes exceeds 65535", total)
	}
	return nil
}

// putHeader writes the 20-byte wire header (with checksum) into b[:HeaderLen].
func (p *Packet) putHeader(b []byte, total int) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = p.TOS
	b[2] = byte(total >> 8)
	b[3] = byte(total)
	b[4] = byte(p.ID >> 8)
	b[5] = byte(p.ID)
	frag := uint16(p.FragOff / 8)
	if p.DontFrag {
		frag |= flagDF
	}
	if p.MoreFrag {
		frag |= flagMF
	}
	b[6] = byte(frag >> 8)
	b[7] = byte(frag)
	b[8] = p.TTL
	b[9] = p.Proto
	b[10], b[11] = 0, 0 // checksum, zero while summing
	putAddr(b[12:16], p.Src)
	putAddr(b[16:20], p.Dst)
	sum := Checksum(b[:HeaderLen])
	b[10] = byte(sum >> 8)
	b[11] = byte(sum)
}

// Unmarshal parses and validates a wire-format IPv4 packet, verifying the
// header checksum. The returned packet's payload aliases b.
func Unmarshal(b []byte) (*Packet, error) {
	if len(b) < HeaderLen {
		return nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < HeaderLen || len(b) < ihl {
		return nil, ErrTruncated
	}
	if Checksum(b[:ihl]) != 0 {
		return nil, ErrBadChecksum
	}
	total := int(b[2])<<8 | int(b[3])
	if total < ihl || total > len(b) {
		return nil, ErrBadLength
	}
	frag := uint16(b[6])<<8 | uint16(b[7])
	p := &Packet{
		Header: Header{
			TOS:      b[1],
			TotalLen: total,
			ID:       uint16(b[4])<<8 | uint16(b[5]),
			DontFrag: frag&flagDF != 0,
			MoreFrag: frag&flagMF != 0,
			FragOff:  int(frag&0x1fff) * 8,
			TTL:      b[8],
			Proto:    b[9],
			Src:      getAddr(b[12:16]),
			Dst:      getAddr(b[16:20]),
		},
		Payload: b[ihl:total],
		wire:    b[:total],
	}
	return p, nil
}
