package ipv4

import (
	"testing"
	"time"

	"hydranet/internal/netsim"
	"hydranet/internal/sim"
)

type sink struct {
	pkts []*Packet
}

func (s *sink) DeliverIP(p *Packet) { s.pkts = append(s.pkts, p) }

// threeNodeNet builds client — router — server with /24s on each side.
func threeNodeNet(t *testing.T, link netsim.LinkConfig) (sched *sim.Scheduler, cs, rs, ss *Stack) {
	t.Helper()
	sched = sim.NewScheduler(3)
	net := netsim.New(sched)
	c := net.AddNode(netsim.NodeConfig{Name: "client"})
	r := net.AddNode(netsim.NodeConfig{Name: "router"})
	sv := net.AddNode(netsim.NodeConfig{Name: "server"})
	net.Connect(c, r, link)
	net.Connect(r, sv, link)

	cs = NewStack(c, sched)
	rs = NewStack(r, sched)
	ss = NewStack(sv, sched)

	cs.SetAddr(0, MustParseAddr("10.1.0.2"))
	rs.SetAddr(0, MustParseAddr("10.1.0.1"))
	rs.SetAddr(1, MustParseAddr("10.2.0.1"))
	ss.SetAddr(0, MustParseAddr("10.2.0.2"))

	cs.Routes().AddDefault(0)
	ss.Routes().AddDefault(0)
	rs.Routes().Add(Route{Dst: MustParsePrefix("10.1.0.0/24"), Ifindex: 0})
	rs.Routes().Add(Route{Dst: MustParsePrefix("10.2.0.0/24"), Ifindex: 1})
	rs.SetForwarding(true)
	return sched, cs, rs, ss
}

func TestEndToEndDelivery(t *testing.T) {
	sched, cs, _, ss := threeNodeNet(t, netsim.LinkConfig{})
	recv := &sink{}
	ss.RegisterProto(ProtoUDP, recv)
	if err := cs.Send(ProtoUDP, 0, MustParseAddr("10.2.0.2"), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(recv.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(recv.pkts))
	}
	p := recv.pkts[0]
	if p.Src != MustParseAddr("10.1.0.2") {
		t.Errorf("src = %s, want auto-selected 10.1.0.2", p.Src)
	}
	if string(p.Payload) != "ping" {
		t.Errorf("payload %q", p.Payload)
	}
	if p.TTL != DefaultTTL-1 {
		t.Errorf("TTL = %d, want %d after one hop", p.TTL, DefaultTTL-1)
	}
}

func TestForwardingDisabledDropsTransit(t *testing.T) {
	sched, cs, rs, ss := threeNodeNet(t, netsim.LinkConfig{})
	rs.SetForwarding(false)
	recv := &sink{}
	ss.RegisterProto(ProtoUDP, recv)
	_ = cs.Send(ProtoUDP, 0, MustParseAddr("10.2.0.2"), []byte("x"))
	sched.Run()
	if len(recv.pkts) != 0 {
		t.Fatal("packet crossed a non-forwarding node")
	}
}

func TestLoopbackDelivery(t *testing.T) {
	sched, cs, _, _ := threeNodeNet(t, netsim.LinkConfig{})
	recv := &sink{}
	cs.RegisterProto(ProtoUDP, recv)
	if err := cs.Send(ProtoUDP, 0, MustParseAddr("10.1.0.2"), []byte("self")); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(recv.pkts) != 1 || string(recv.pkts[0].Payload) != "self" {
		t.Fatal("loopback delivery failed")
	}
}

func TestNoRouteError(t *testing.T) {
	sched := sim.NewScheduler(1)
	net := netsim.New(sched)
	n := net.AddNode(netsim.NodeConfig{Name: "lonely"})
	s := NewStack(n, sched)
	if err := s.Send(ProtoUDP, 0, MustParseAddr("1.2.3.4"), nil); err == nil {
		t.Fatal("Send with no route succeeded")
	}
	if s.Stats().NoRoute != 1 {
		t.Errorf("NoRoute = %d, want 1", s.Stats().NoRoute)
	}
}

func TestTTLExpiry(t *testing.T) {
	// Chain of routers longer than the TTL: packet must die en route.
	sched := sim.NewScheduler(1)
	net := netsim.New(sched)
	const hops = 5
	nodes := make([]*netsim.Node, hops+2)
	stacks := make([]*Stack, hops+2)
	for i := range nodes {
		nodes[i] = net.AddNode(netsim.NodeConfig{})
		stacks[i] = NewStack(nodes[i], sched)
	}
	for i := 0; i < len(nodes)-1; i++ {
		net.Connect(nodes[i], nodes[i+1], netsim.LinkConfig{})
	}
	dstAddr := MustParseAddr("10.9.0.1")
	for i, s := range stacks {
		s.SetForwarding(true)
		if i < len(nodes)-1 {
			// Everyone routes "forward" along the chain; node 0's iface 0
			// points at node 1, middle nodes' iface 1 points onward.
			out := 0
			if i > 0 {
				out = 1
			}
			s.Routes().AddDefault(out)
		}
	}
	stacks[len(stacks)-1].SetAddr(0, dstAddr)
	recv := &sink{}
	stacks[len(stacks)-1].RegisterProto(ProtoUDP, recv)

	// Forge a packet with TTL 3, fewer than the 6 hops needed.
	p := &Packet{Header: Header{TTL: 3, Proto: ProtoUDP, Src: 1, Dst: dstAddr, ID: 7}, Payload: []byte("doomed")}
	if err := stacks[0].SendPacket(p); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(recv.pkts) != 0 {
		t.Fatal("packet survived past its TTL")
	}
	var expired uint64
	for _, s := range stacks {
		expired += s.Stats().TTLExceeded
	}
	if expired != 1 {
		t.Errorf("TTLExceeded total = %d, want 1", expired)
	}
}

func TestPathMTUFragmentationEndToEnd(t *testing.T) {
	// Second hop has a smaller MTU; the router must fragment and the
	// destination must reassemble.
	sched := sim.NewScheduler(1)
	net := netsim.New(sched)
	c := net.AddNode(netsim.NodeConfig{Name: "c"})
	r := net.AddNode(netsim.NodeConfig{Name: "r"})
	sv := net.AddNode(netsim.NodeConfig{Name: "s"})
	net.Connect(c, r, netsim.LinkConfig{MTU: 1500})
	net.Connect(r, sv, netsim.LinkConfig{MTU: 576})
	cs, rs, ss := NewStack(c, sched), NewStack(r, sched), NewStack(sv, sched)
	cs.SetAddr(0, MustParseAddr("10.1.0.2"))
	rs.SetAddr(0, MustParseAddr("10.1.0.1"))
	rs.SetAddr(1, MustParseAddr("10.2.0.1"))
	ss.SetAddr(0, MustParseAddr("10.2.0.2"))
	cs.Routes().AddDefault(0)
	rs.Routes().Add(Route{Dst: MustParsePrefix("10.2.0.0/24"), Ifindex: 1})
	rs.Routes().Add(Route{Dst: MustParsePrefix("10.1.0.0/24"), Ifindex: 0})
	rs.SetForwarding(true)
	recv := &sink{}
	ss.RegisterProto(ProtoUDP, recv)

	payload := make([]byte, 1400)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := cs.Send(ProtoUDP, 0, MustParseAddr("10.2.0.2"), payload); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(recv.pkts) != 1 {
		t.Fatalf("delivered %d datagrams, want 1 reassembled", len(recv.pkts))
	}
	got := recv.pkts[0].Payload
	if len(got) != len(payload) {
		t.Fatalf("payload length %d, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestForwardHookConsumes(t *testing.T) {
	sched, cs, rs, ss := threeNodeNet(t, netsim.LinkConfig{})
	recv := &sink{}
	ss.RegisterProto(ProtoUDP, recv)
	var hooked []*Packet
	rs.SetForwardHook(func(p *Packet) bool {
		if p.Proto == ProtoUDP {
			hooked = append(hooked, p)
			return true
		}
		return false
	})
	_ = cs.Send(ProtoUDP, 0, MustParseAddr("10.2.0.2"), []byte("grab"))
	sched.Run()
	if len(hooked) != 1 {
		t.Fatalf("hook saw %d packets, want 1", len(hooked))
	}
	if len(recv.pkts) != 0 {
		t.Fatal("consumed packet was still forwarded")
	}
}

func TestVirtualHostLocalDelivery(t *testing.T) {
	// AddLocalAddr makes the stack accept packets for a foreign address —
	// the basis of HydraNet virtual hosts.
	sched, cs, rs, _ := threeNodeNet(t, netsim.LinkConfig{})
	vhost := MustParseAddr("192.20.225.20")
	recv := &sink{}
	rs.AddLocalAddr(vhost)
	rs.RegisterProto(ProtoUDP, recv)
	_ = cs.Send(ProtoUDP, 0, vhost, []byte("to vhost"))
	sched.Run()
	if len(recv.pkts) != 1 {
		t.Fatal("virtual-host address not delivered locally")
	}
	rs.RemoveLocalAddr(vhost)
	if rs.IsLocal(vhost) {
		t.Fatal("RemoveLocalAddr did not withdraw address")
	}
}

func TestCrashedNodeDeliversNothing(t *testing.T) {
	sched, cs, _, ss := threeNodeNet(t, netsim.LinkConfig{Delay: time.Millisecond})
	recv := &sink{}
	ss.RegisterProto(ProtoUDP, recv)
	ss.Node().Crash()
	_ = cs.Send(ProtoUDP, 0, MustParseAddr("10.2.0.2"), []byte("x"))
	sched.Run()
	if len(recv.pkts) != 0 {
		t.Fatal("crashed server received a packet")
	}
}

func TestStatsCounting(t *testing.T) {
	sched, cs, rs, ss := threeNodeNet(t, netsim.LinkConfig{})
	recv := &sink{}
	ss.RegisterProto(ProtoUDP, recv)
	for i := 0; i < 3; i++ {
		_ = cs.Send(ProtoUDP, 0, MustParseAddr("10.2.0.2"), []byte{byte(i)})
	}
	sched.Run()
	if got := rs.Stats().Forwarded; got != 3 {
		t.Errorf("router Forwarded = %d, want 3", got)
	}
	if got := ss.Stats().Delivered; got != 3 {
		t.Errorf("server Delivered = %d, want 3", got)
	}
	if got := cs.Stats().Originated; got != 3 {
		t.Errorf("client Originated = %d, want 3", got)
	}
}

func TestNoProtoHandlerCounted(t *testing.T) {
	sched, cs, _, ss := threeNodeNet(t, netsim.LinkConfig{})
	_ = cs.Send(ProtoTCP, 0, MustParseAddr("10.2.0.2"), []byte("?"))
	sched.Run()
	if got := ss.Stats().NoProto; got != 1 {
		t.Errorf("NoProto = %d, want 1", got)
	}
}
