package ipv4

import "testing"

func TestLongestPrefixMatch(t *testing.T) {
	var rt RoutingTable
	rt.AddDefault(0)
	rt.Add(Route{Dst: MustParsePrefix("10.0.0.0/8"), Ifindex: 1})
	rt.Add(Route{Dst: MustParsePrefix("10.1.0.0/16"), Ifindex: 2})
	rt.Add(Route{Dst: MustParsePrefix("10.1.2.3/32"), Ifindex: 3})

	tests := []struct {
		addr string
		want int
	}{
		{"8.8.8.8", 0},
		{"10.9.9.9", 1},
		{"10.1.9.9", 2},
		{"10.1.2.3", 3},
	}
	for _, tt := range tests {
		if got := rt.Lookup(MustParseAddr(tt.addr)); got != tt.want {
			t.Errorf("Lookup(%s) = %d, want %d", tt.addr, got, tt.want)
		}
	}
}

func TestNoRoute(t *testing.T) {
	var rt RoutingTable
	rt.Add(Route{Dst: MustParsePrefix("10.0.0.0/8"), Ifindex: 1})
	if got := rt.Lookup(MustParseAddr("11.0.0.1")); got != -1 {
		t.Errorf("Lookup = %d, want -1", got)
	}
}

func TestRouteReplacement(t *testing.T) {
	var rt RoutingTable
	rt.Add(Route{Dst: MustParsePrefix("10.0.0.0/8"), Ifindex: 1})
	rt.Add(Route{Dst: MustParsePrefix("10.0.0.0/8"), Ifindex: 5})
	if rt.Len() != 1 {
		t.Fatalf("Len = %d after replacement, want 1", rt.Len())
	}
	if got := rt.Lookup(MustParseAddr("10.0.0.1")); got != 5 {
		t.Errorf("Lookup = %d, want replaced iface 5", got)
	}
}

func TestInsertionOrderIrrelevant(t *testing.T) {
	var a, b RoutingTable
	r1 := Route{Dst: MustParsePrefix("10.0.0.0/8"), Ifindex: 1}
	r2 := Route{Dst: MustParsePrefix("10.1.0.0/16"), Ifindex: 2}
	a.Add(r1)
	a.Add(r2)
	b.Add(r2)
	b.Add(r1)
	addr := MustParseAddr("10.1.0.1")
	if a.Lookup(addr) != b.Lookup(addr) {
		t.Error("lookup depends on insertion order")
	}
}
