package ipv4

import (
	"bytes"
	"testing"

	"hydranet/internal/sim"
)

func newTestScheduler() *sim.Scheduler { return sim.NewScheduler(1) }

// FuzzUnmarshal hardens the header parser: arbitrary frames must never
// panic, and anything that parses must re-marshal to an equivalent packet.
func FuzzUnmarshal(f *testing.F) {
	good, _ := (&Packet{
		Header:  Header{TTL: 64, Proto: ProtoTCP, Src: 1, Dst: 2, ID: 3},
		Payload: []byte("seed"),
	}).Marshal()
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x45}, 20))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		b, err := p.Marshal()
		if err != nil {
			// Parsed packets with odd fragment offsets can refuse to
			// re-marshal; that is fine.
			return
		}
		p2, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("re-marshaled packet does not parse: %v", err)
		}
		if p2.Src != p.Src || p2.Dst != p.Dst || p2.Proto != p.Proto ||
			!bytes.Equal(p2.Payload, p.Payload) {
			t.Fatal("unmarshal/marshal round trip changed the packet")
		}
	})
}

// FuzzFragmentReassemble: any payload fragmented at any legal MTU must
// reassemble byte-identically.
func FuzzFragmentReassemble(f *testing.F) {
	f.Add([]byte("hello world"), 28)
	f.Add(bytes.Repeat([]byte{7}, 5000), 576)
	f.Fuzz(func(t *testing.T, payload []byte, mtu int) {
		if mtu < HeaderLen+8 || mtu > 65535 || len(payload) > 60000 {
			return
		}
		p := &Packet{Header: Header{TTL: 9, Proto: ProtoUDP, Src: 4, Dst: 5, ID: 6}, Payload: payload}
		frags, err := Fragment(p, mtu)
		if err != nil {
			t.Fatalf("fragmenting %d bytes at mtu %d: %v", len(payload), mtu, err)
		}
		r := newTestReassembler(t)
		var out *Packet
		for _, fr := range frags {
			if got := r.Add(fr); got != nil {
				out = got
			}
		}
		if out == nil {
			t.Fatal("fragments did not reassemble")
		}
		if !bytes.Equal(out.Payload, payload) {
			t.Fatal("reassembled payload differs")
		}
	})
}

func newTestReassembler(t *testing.T) *Reassembler {
	t.Helper()
	return NewReassembler(newTestScheduler())
}
