package ipv4

import (
	"fmt"
	"testing"
)

// BenchmarkChecksum covers the three frame sizes that matter on the testbed:
// a minimum frame, the classic default datagram, and a full Ethernet MTU.
func BenchmarkChecksum(b *testing.B) {
	for _, size := range []int{64, 576, 1500} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i)
			}
			b.SetBytes(int64(size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Checksum(data)
			}
		})
	}
}

func BenchmarkHeaderMarshal(b *testing.B) {
	p := &Packet{
		Header:  Header{TTL: 64, Proto: ProtoTCP, Src: 1, Dst: 2, ID: 3},
		Payload: make([]byte, 1460),
	}
	b.SetBytes(1480)
	for i := 0; i < b.N; i++ {
		if _, err := p.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeaderUnmarshal(b *testing.B) {
	p := &Packet{
		Header:  Header{TTL: 64, Proto: ProtoTCP, Src: 1, Dst: 2, ID: 3},
		Payload: make([]byte, 1460),
	}
	frame, err := p.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteLookup(b *testing.B) {
	var rt RoutingTable
	rt.AddDefault(0)
	for i := 1; i <= 32; i++ {
		rt.Add(Route{Dst: Prefix{Addr: AddrFrom4(10, byte(i), 0, 0), Bits: 24}, Ifindex: i})
	}
	dst := AddrFrom4(10, 16, 0, 7)
	for i := 0; i < b.N; i++ {
		if rt.Lookup(dst) != 16 {
			b.Fatal("wrong route")
		}
	}
}
