package ipv4

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// Broadcast is the limited broadcast address 255.255.255.255.
const Broadcast Addr = 0xffffffff

// AddrFrom4 builds an address from its four dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses dotted-quad notation ("192.20.225.20").
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ipv4: %q is not dotted-quad", s)
	}
	var out Addr
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("ipv4: bad octet %q in %q", p, s)
		}
		out = out<<8 | Addr(v)
	}
	return out, nil
}

// MustParseAddr is ParseAddr that panics on error, for literals in tests and
// topology builders.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Prefix is a CIDR prefix used by the routing table.
type Prefix struct {
	Addr Addr
	Bits int
}

// ParsePrefix parses "a.b.c.d/n".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ipv4: %q has no /bits", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ipv4: bad prefix length in %q", s)
	}
	return Prefix{Addr: addr, Bits: bits}, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func (p Prefix) mask() Addr {
	if p.Bits <= 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - p.Bits))
}

// Contains reports whether a falls within the prefix.
func (p Prefix) Contains(a Addr) bool {
	m := p.mask()
	return a&m == p.Addr&m
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Bits)
}
