package ipv4

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChecksumKnownVector(t *testing.T) {
	// Classic example from RFC 1071 discussions: an IPv4 header whose
	// checksum field is filled must re-sum to zero.
	p := &Packet{
		Header:  Header{TTL: 64, Proto: ProtoTCP, Src: MustParseAddr("10.0.0.1"), Dst: MustParseAddr("10.0.0.2"), ID: 0x1c46},
		Payload: []byte("hello"),
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if Checksum(b[:HeaderLen]) != 0 {
		t.Error("checksum over header including checksum field is nonzero")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	f := func(data []byte, pos uint16, flip uint8) bool {
		if len(data) == 0 || flip == 0 {
			return true
		}
		p := &Packet{Header: Header{TTL: 10, Proto: ProtoUDP, Src: 1, Dst: 2, ID: 3}, Payload: data}
		b, err := p.Marshal()
		if err != nil {
			return true
		}
		i := int(pos) % HeaderLen
		b[i] ^= flip
		_, err = Unmarshal(b)
		// Either the checksum catches it, or the flip hit a field that
		// still parses to a *different* header — but the checksum must
		// fail because exactly one byte changed.
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(tos uint8, id uint16, ttl uint8, proto uint8, src, dst uint32, n uint16) bool {
		payload := make([]byte, int(n)%2000)
		rng.Read(payload)
		in := &Packet{
			Header: Header{
				TOS: tos, ID: id, TTL: ttl, Proto: proto,
				Src: Addr(src), Dst: Addr(dst),
			},
			Payload: payload,
		}
		b, err := in.Marshal()
		if err != nil {
			return false
		}
		out, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return out.TOS == in.TOS && out.ID == in.ID && out.TTL == in.TTL &&
			out.Proto == in.Proto && out.Src == in.Src && out.Dst == in.Dst &&
			bytes.Equal(out.Payload, payload) &&
			out.TotalLen == HeaderLen+len(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFragmentFlagsRoundTrip(t *testing.T) {
	in := &Packet{
		Header:  Header{TTL: 5, Proto: ProtoTCP, Src: 1, Dst: 2, MoreFrag: true, FragOff: 1480},
		Payload: []byte("frag"),
	}
	b, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !out.MoreFrag || out.FragOff != 1480 || out.DontFrag {
		t.Errorf("frag fields = MF:%v DF:%v off:%d", out.MoreFrag, out.DontFrag, out.FragOff)
	}
}

func TestMarshalRejectsUnalignedFragOff(t *testing.T) {
	p := &Packet{Header: Header{FragOff: 5}}
	if _, err := p.Marshal(); err == nil {
		t.Error("unaligned fragment offset accepted")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	p := &Packet{Header: Header{TTL: 64, Proto: ProtoTCP, Src: 1, Dst: 2}, Payload: []byte("x")}
	good, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Unmarshal(good[:10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short frame: err = %v, want ErrTruncated", err)
	}

	bad := append([]byte(nil), good...)
	bad[0] = 0x65 // version 6
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version 6: err = %v, want ErrBadVersion", err)
	}

	bad = append([]byte(nil), good...)
	bad[12] ^= 0xff // corrupt src
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupt src: err = %v, want ErrBadChecksum", err)
	}
}

func TestUnmarshalPayloadHonoursTotalLen(t *testing.T) {
	// Ethernet-style padding after the datagram must be stripped.
	p := &Packet{Header: Header{TTL: 64, Proto: ProtoUDP, Src: 1, Dst: 2}, Payload: []byte("data")}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	padded := append(b, 0, 0, 0, 0)
	out, err := Unmarshal(padded)
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Payload) != "data" {
		t.Errorf("payload %q, want %q", out.Payload, "data")
	}
}

func TestPseudoChecksumVerifies(t *testing.T) {
	src, dst := MustParseAddr("10.0.0.1"), MustParseAddr("10.0.0.2")
	seg := make([]byte, 24)
	copy(seg[20:], "data")
	sum := PseudoChecksum(src, dst, ProtoTCP, seg)
	seg[16] = byte(sum >> 8) // checksum field position is irrelevant to the math:
	seg[17] = byte(sum)      // re-summing with it filled must give zero
	if got := PseudoChecksum(src, dst, ProtoTCP, seg); got != 0 {
		t.Errorf("verify sum = %#x, want 0", got)
	}
}

func TestPseudoChecksumCoversAddresses(t *testing.T) {
	seg := []byte{1, 2, 3, 4}
	a := PseudoChecksum(1, 2, ProtoTCP, seg)
	b := PseudoChecksum(1, 3, ProtoTCP, seg)
	if a == b {
		t.Error("checksum identical under different dst address")
	}
}
