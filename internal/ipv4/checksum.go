package ipv4

// Checksum computes the Internet checksum (RFC 1071) over data: the one's
// complement of the one's-complement sum of all 16-bit words, padding an odd
// trailing byte with zero.
func Checksum(data []byte) uint16 {
	return ^foldSum(sum16(0, data))
}

// sum16 accumulates 16-bit big-endian words of data into a running 32-bit
// partial sum, for composing checksums over header + pseudo-header + payload.
func sum16(acc uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		acc += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		acc += uint32(data[n-1]) << 8
	}
	return acc
}

func foldSum(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = (acc & 0xffff) + acc>>16
	}
	return uint16(acc)
}

// PseudoChecksum computes the TCP/UDP checksum: the Internet checksum over
// the IPv4 pseudo-header (src, dst, protocol, segment length) followed by
// the transport segment (header + payload), whose checksum field must be
// zero in the supplied bytes.
func PseudoChecksum(src, dst Addr, proto uint8, segment []byte) uint16 {
	var pseudo [12]byte
	putAddr(pseudo[0:4], src)
	putAddr(pseudo[4:8], dst)
	pseudo[9] = proto
	pseudo[10] = byte(len(segment) >> 8)
	pseudo[11] = byte(len(segment))
	acc := sum16(0, pseudo[:])
	acc = sum16(acc, segment)
	sum := ^foldSum(acc)
	return sum
}

func putAddr(b []byte, a Addr) {
	b[0] = byte(a >> 24)
	b[1] = byte(a >> 16)
	b[2] = byte(a >> 8)
	b[3] = byte(a)
}

func getAddr(b []byte) Addr {
	return Addr(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
}
