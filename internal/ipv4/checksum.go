package ipv4

import "encoding/binary"

// Checksum computes the Internet checksum (RFC 1071) over data: the one's
// complement of the one's-complement sum of all 16-bit words, padding an odd
// trailing byte with zero.
func Checksum(data []byte) uint16 {
	return ^foldSum(sum16(0, data))
}

// sum16 accumulates 16-bit big-endian words of data into a running 32-bit
// partial sum, for composing checksums over header + pseudo-header + payload.
//
// It runs word-at-a-time: because one's-complement addition is associative
// and 2^16 ≡ 1 (mod 65535), a big-endian 32-bit load contributes its two
// 16-bit halves correctly once the accumulator is folded, and the same
// argument extends the fold from 64 to 32 bits (2^32 ≡ 1 mod 65535). The
// main loop consumes 32 bytes per iteration.
func sum16(acc uint32, data []byte) uint32 {
	sum := uint64(acc)
	n := len(data)
	i := 0
	for ; i+32 <= n; i += 32 {
		sum += uint64(binary.BigEndian.Uint32(data[i:]))
		sum += uint64(binary.BigEndian.Uint32(data[i+4:]))
		sum += uint64(binary.BigEndian.Uint32(data[i+8:]))
		sum += uint64(binary.BigEndian.Uint32(data[i+12:]))
		sum += uint64(binary.BigEndian.Uint32(data[i+16:]))
		sum += uint64(binary.BigEndian.Uint32(data[i+20:]))
		sum += uint64(binary.BigEndian.Uint32(data[i+24:]))
		sum += uint64(binary.BigEndian.Uint32(data[i+28:]))
	}
	for ; i+4 <= n; i += 4 {
		sum += uint64(binary.BigEndian.Uint32(data[i:]))
	}
	if i+2 <= n {
		sum += uint64(binary.BigEndian.Uint16(data[i:]))
		i += 2
	}
	if i < n {
		sum += uint64(data[i]) << 8
	}
	for sum>>32 != 0 {
		sum = sum&0xffffffff + sum>>32
	}
	return uint32(sum)
}

func foldSum(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = (acc & 0xffff) + acc>>16
	}
	return uint16(acc)
}

// UpdateChecksum16 incrementally updates an Internet checksum after a single
// 16-bit word of the covered data changes from old to new, per RFC 1624
// Eq. 3: HC' = ~(~HC + ~m + m'). For any header whose stored checksum was
// produced by Checksum over nonzero data, the result is bit-identical to a
// full recompute.
func UpdateChecksum16(sum, old, new uint16) uint16 {
	acc := uint32(^sum) & 0xffff
	acc += uint32(^old) & 0xffff
	acc += uint32(new)
	return ^foldSum(acc)
}

// PatchTTL overwrites the TTL byte of a marshalled IPv4 header in place and
// incrementally updates the header checksum. This is the forwarding fast
// path: a router that only decrements TTL must not re-sum the header
// (RFC 1624's motivating case).
func PatchTTL(wire []byte, ttl uint8) {
	// TTL shares its 16-bit checksum word with the protocol byte.
	old := uint16(wire[8])<<8 | uint16(wire[9])
	wire[8] = ttl
	sum := uint16(wire[10])<<8 | uint16(wire[11])
	sum = UpdateChecksum16(sum, old, uint16(ttl)<<8|uint16(wire[9]))
	wire[10] = byte(sum >> 8)
	wire[11] = byte(sum)
}

// PseudoChecksum computes the TCP/UDP checksum: the Internet checksum over
// the IPv4 pseudo-header (src, dst, protocol, segment length) followed by
// the transport segment (header + payload), whose checksum field must be
// zero in the supplied bytes.
func PseudoChecksum(src, dst Addr, proto uint8, segment []byte) uint16 {
	var pseudo [12]byte
	putAddr(pseudo[0:4], src)
	putAddr(pseudo[4:8], dst)
	pseudo[9] = proto
	pseudo[10] = byte(len(segment) >> 8)
	pseudo[11] = byte(len(segment))
	acc := sum16(0, pseudo[:])
	acc = sum16(acc, segment)
	sum := ^foldSum(acc)
	return sum
}

func putAddr(b []byte, a Addr) {
	b[0] = byte(a >> 24)
	b[1] = byte(a >> 16)
	b[2] = byte(a >> 8)
	b[3] = byte(a)
}

func getAddr(b []byte) Addr {
	return Addr(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
}
