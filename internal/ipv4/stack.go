package ipv4

import (
	"errors"
	"fmt"

	"hydranet/internal/netsim"
	"hydranet/internal/sim"
)

// DefaultTTL is the initial TTL on locally originated datagrams.
const DefaultTTL = 64

// ProtocolHandler is implemented by transport layers (TCP, UDP) and by the
// IP-in-IP decapsulator to receive locally delivered datagrams.
type ProtocolHandler interface {
	DeliverIP(pkt *Packet)
}

// ErrorReason classifies IP-layer failures reported to the ICMP layer.
type ErrorReason int

// Reportable failures.
const (
	ErrorTTLExceeded ErrorReason = iota + 1
	ErrorNoRoute
	ErrorNoListener
	ErrorFragNeeded
)

// ErrorReporter receives IP-layer failures together with the offending
// packet; the ICMP layer turns them into control messages.
type ErrorReporter func(reason ErrorReason, offending *Packet)

// ForwardHook lets a router component (the HydraNet redirector) inspect and
// possibly consume packets in the forwarding path. Returning true means the
// hook took ownership; the stack will not forward the packet further.
type ForwardHook func(pkt *Packet) bool

// StackStats counts datagram dispositions at one stack.
type StackStats struct {
	Delivered   uint64 // datagrams handed to a local protocol handler
	Forwarded   uint64 // datagrams routed onward
	Originated  uint64 // datagrams sent from this stack
	BadHeader   uint64 // unparseable or checksum-failed frames
	NoRoute     uint64
	TTLExceeded uint64
	NoProto     uint64 // delivered locally but no handler for the protocol
}

// Stack is a per-node IPv4 layer: address ownership, routing, forwarding,
// fragmentation and reassembly, and protocol demultiplexing.
type Stack struct {
	node  *netsim.Node
	sched *sim.Scheduler

	local      map[Addr]bool // addresses delivered locally (iface + virtual hosts)
	ifaceAddrs []Addr        // primary address per interface, for source selection
	routes     RoutingTable
	protos     map[uint8]ProtocolHandler
	reasm      *Reassembler
	nextID     uint16
	forwarding bool
	fwdHook    ForwardHook
	reporter   ErrorReporter

	stats StackStats
}

var _ netsim.FrameHandler = (*Stack)(nil)

// NewStack creates an IPv4 stack and installs it as the node's frame
// handler.
func NewStack(node *netsim.Node, sched *sim.Scheduler) *Stack {
	s := &Stack{
		node:   node,
		sched:  sched,
		local:  make(map[Addr]bool),
		protos: make(map[uint8]ProtocolHandler),
		reasm:  NewReassembler(sched),
	}
	node.SetHandler(s)
	return s
}

// Node returns the underlying netsim node.
func (s *Stack) Node() *netsim.Node { return s.node }

// Scheduler returns the scheduler driving this stack.
func (s *Stack) Scheduler() *sim.Scheduler { return s.sched }

// Rebind moves the stack (and its reassembler) onto another scheduler — the
// one driving the node's synchronization domain after a parallel partition.
// Call before any traffic: timers already scheduled on the old scheduler
// would fire outside the domain, so a stack with pending reassembly panics.
func (s *Stack) Rebind(sched *sim.Scheduler) {
	if len(s.reasm.pending) > 0 {
		panic("ipv4: Rebind with reassembly in progress")
	}
	s.sched = sched
	s.reasm.sched = sched
}

// Stats returns a snapshot of the stack's counters.
func (s *Stack) Stats() StackStats { return s.stats }

// SetAddr assigns the primary address of interface ifindex and marks it
// local.
func (s *Stack) SetAddr(ifindex int, a Addr) {
	for len(s.ifaceAddrs) <= ifindex {
		s.ifaceAddrs = append(s.ifaceAddrs, 0)
	}
	s.ifaceAddrs[ifindex] = a
	s.local[a] = true
}

// Addr returns the primary address of interface ifindex (zero if unset).
func (s *Stack) Addr(ifindex int) Addr {
	if ifindex < 0 || ifindex >= len(s.ifaceAddrs) {
		return 0
	}
	return s.ifaceAddrs[ifindex]
}

// IsInterfaceAddr reports whether a is assigned to one of the stack's
// interfaces (as opposed to a virtual-host address).
func (s *Stack) IsInterfaceAddr(a Addr) bool {
	for _, x := range s.ifaceAddrs {
		if x == a && a != 0 {
			return true
		}
	}
	return false
}

// AddLocalAddr marks an address as locally delivered without binding it to
// an interface. Host servers use this to host virtual hosts: services known
// to the world under the IP address of another machine (paper Section 3).
func (s *Stack) AddLocalAddr(a Addr) { s.local[a] = true }

// RemoveLocalAddr withdraws a virtual-host address.
func (s *Stack) RemoveLocalAddr(a Addr) { delete(s.local, a) }

// IsLocal reports whether the stack delivers datagrams for a locally.
func (s *Stack) IsLocal(a Addr) bool { return s.local[a] }

// Routes exposes the routing table for topology construction.
func (s *Stack) Routes() *RoutingTable { return &s.routes }

// SetForwarding enables router behaviour for non-local datagrams.
func (s *Stack) SetForwarding(on bool) { s.forwarding = on }

// SetForwardHook installs the redirector intercept in the forwarding path.
func (s *Stack) SetForwardHook(h ForwardHook) { s.fwdHook = h }

// SetErrorReporter installs the ICMP layer's failure observer.
func (s *Stack) SetErrorReporter(fn ErrorReporter) { s.reporter = fn }

// ReportError lets transport layers report delivery failures (e.g. UDP
// port unreachable) into the same channel as IP-layer failures.
func (s *Stack) ReportError(reason ErrorReason, offending *Packet) {
	if s.reporter != nil {
		s.reporter(reason, offending)
	}
}

// RegisterProto installs the handler for an IP protocol number.
func (s *Stack) RegisterProto(proto uint8, h ProtocolHandler) {
	s.protos[proto] = h
}

// Send originates a datagram. A zero src selects the address of the
// outgoing interface. The payload is not copied; callers must not reuse it.
func (s *Stack) Send(proto uint8, src, dst Addr, payload []byte) error {
	p := &Packet{
		Header:  Header{TTL: DefaultTTL, Proto: proto, Src: src, Dst: dst, ID: s.allocID()},
		Payload: payload,
	}
	if s.local[dst] {
		// Loopback: deliver asynchronously so protocol code never
		// reenters itself within one call stack.
		s.stats.Originated++
		s.sched.After(0, func() {
			if s.node.Alive() {
				s.deliverLocal(p)
			}
		})
		return nil
	}
	ifindex := s.routes.Lookup(dst)
	if ifindex < 0 {
		s.stats.NoRoute++
		return fmt.Errorf("ipv4: no route to %s", dst)
	}
	if p.Src == 0 {
		p.Src = s.Addr(ifindex)
	}
	s.stats.Originated++
	return s.transmit(p, ifindex)
}

// SendPacket routes and transmits a fully formed datagram (used for
// forwarding and for tunneled packets built by the redirector).
func (s *Stack) SendPacket(p *Packet) error {
	ifindex := s.routes.Lookup(p.Dst)
	if ifindex < 0 {
		s.stats.NoRoute++
		return fmt.Errorf("ipv4: no route to %s", p.Dst)
	}
	return s.transmit(p, ifindex)
}

// AllocID returns a fresh IP identification value for datagrams the caller
// marshals itself (tunnel encapsulation).
func (s *Stack) AllocID() uint16 { return s.allocID() }

func (s *Stack) allocID() uint16 {
	s.nextID++
	return s.nextID
}

func (s *Stack) transmit(p *Packet, ifindex int) error {
	mtu := s.node.MTU(ifindex)
	frags, err := Fragment(p, mtu)
	if err != nil {
		return err
	}
	pool := s.node.Pool()
	for _, f := range frags {
		total := HeaderLen + len(f.Payload)
		if err := f.checkMarshal(total); err != nil {
			return err
		}
		fb := pool.Get(total)
		b := fb.Bytes()
		f.putHeader(b, total)
		copy(b[HeaderLen:], f.Payload)
		s.node.SendFrame(ifindex, fb)
	}
	return nil
}

// HandleFrame implements netsim.FrameHandler.
func (s *Stack) HandleFrame(ifindex int, frame []byte) {
	p, err := Unmarshal(frame)
	if err != nil {
		s.stats.BadHeader++
		return
	}
	if s.local[p.Dst] || p.Dst == Broadcast {
		if whole := s.reasm.Add(p); whole != nil {
			s.deliverLocal(whole)
		}
		return
	}
	if !s.forwarding {
		return
	}
	if p.TTL <= 1 {
		s.stats.TTLExceeded++
		s.ReportError(ErrorTTLExceeded, p)
		return
	}
	p.TTL--
	if s.fwdHook != nil && s.fwdHook(p) {
		return
	}
	s.stats.Forwarded++
	if err := s.forward(p); err != nil {
		// ICMP reports the failure to the source; the packet is dropped.
		reason := ErrorNoRoute
		if errors.Is(err, ErrFragNeeded) {
			reason = ErrorFragNeeded
		}
		s.ReportError(reason, p)
	}
}

// InjectLocal delivers an already-parsed datagram to local protocol
// handlers, bypassing routing. The host server's IP-in-IP decapsulator uses
// this for inner packets addressed to virtual hosts.
func (s *Stack) InjectLocal(p *Packet) {
	if whole := s.reasm.Add(p); whole != nil {
		s.deliverLocal(whole)
	}
}

func (s *Stack) deliverLocal(p *Packet) {
	h := s.protos[p.Proto]
	if h == nil {
		s.stats.NoProto++
		return
	}
	s.stats.Delivered++
	h.DeliverIP(p)
}
