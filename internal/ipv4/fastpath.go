package ipv4

import (
	"fmt"

	"hydranet/internal/frame"
)

// SendSegment originates a datagram whose payload was marshalled by a
// transport layer directly into a pooled frame buffer. The stack takes
// ownership of fb on every path. If the buffer has IP headroom and the
// datagram fits the outgoing MTU, the header is prepended in place and the
// frame reaches the fabric without a single copy; otherwise it falls back
// to the fragmenting slow path.
//
// src must be concrete (not zero): the transport computed its pseudo-header
// checksum over it, so source selection already happened.
func (s *Stack) SendSegment(proto uint8, src, dst Addr, fb *frame.Buf) error {
	h := Header{TTL: DefaultTTL, Proto: proto, Src: src, Dst: dst, ID: s.allocID()}
	if s.local[dst] {
		// Loopback: deliver asynchronously so protocol code never reenters
		// itself within one call stack. The frame must stay alive until the
		// deferred delivery runs.
		s.stats.Originated++
		s.sched.After(0, func() {
			if s.node.Alive() {
				p := &Packet{Header: h, Payload: fb.Bytes()}
				p.TotalLen = HeaderLen + fb.Len()
				s.deliverLocal(p)
			}
			fb.Release()
		})
		return nil
	}
	ifindex := s.routes.Lookup(dst)
	if ifindex < 0 {
		fb.Release()
		s.stats.NoRoute++
		return fmt.Errorf("ipv4: no route to %s", dst)
	}
	s.stats.Originated++
	total := HeaderLen + fb.Len()
	if total > s.node.MTU(ifindex) || fb.Headroom() < HeaderLen {
		// Slow path: fragmentation. The fragments copy out of fb, so it can
		// be released as soon as transmit returns.
		p := &Packet{Header: h, Payload: fb.Bytes()}
		err := s.transmit(p, ifindex)
		fb.Release()
		return err
	}
	p := Packet{Header: h}
	p.putHeader(fb.Prepend(HeaderLen), total)
	s.node.SendFrame(ifindex, fb)
	return nil
}

// SendEncap wraps inner in an IP-in-IP datagram addressed to host and
// transmits it, choosing the outer source from the outgoing interface. When
// the inner packet still carries its received wire bytes and the result
// fits the MTU, the inner datagram is copied once into a pooled buffer with
// its TTL patched incrementally (RFC 1624) — no re-marshal, no payload
// re-checksum — and the outer header is prepended in place. Oversized
// results take the fragmenting slow path, preserving tunnel-induced
// fragmentation behaviour.
func (s *Stack) SendEncap(inner *Packet, host Addr) error {
	ifindex := s.routes.Lookup(host)
	if ifindex < 0 {
		s.stats.NoRoute++
		return fmt.Errorf("ipv4: no route to %s", host)
	}
	outer := Packet{Header: Header{
		TTL:   DefaultTTL,
		Proto: ProtoIPIP,
		Src:   s.Addr(ifindex),
		Dst:   host,
		ID:    s.allocID(),
	}}
	innerLen := HeaderLen + len(inner.Payload)
	total := HeaderLen + innerLen
	if w := inner.wire; len(w) == innerLen && total <= s.node.MTU(ifindex) {
		fb := s.node.Pool().Get(innerLen)
		b := fb.Bytes()
		copy(b, w)
		if b[8] != inner.TTL {
			// The router decremented TTL after the frame was parsed.
			PatchTTL(b, inner.TTL)
		}
		outer.putHeader(fb.Prepend(HeaderLen), total)
		s.node.SendFrame(ifindex, fb)
		return nil
	}
	// Slow path: re-marshal the inner packet and run the outer datagram
	// through fragmentation.
	body, err := inner.Marshal()
	if err != nil {
		return err
	}
	outer.Payload = body
	return s.transmit(&outer, ifindex)
}

// forward routes an already-parsed transit datagram onward. When the
// received wire bytes are usable and fit the next hop's MTU, they are
// copied once into a pooled buffer and only the TTL word is patched —
// the header checksum updates incrementally instead of being recomputed.
func (s *Stack) forward(p *Packet) error {
	ifindex := s.routes.Lookup(p.Dst)
	if ifindex < 0 {
		s.stats.NoRoute++
		return fmt.Errorf("ipv4: no route to %s", p.Dst)
	}
	if w := p.wire; len(w) > 0 && len(w) <= s.node.MTU(ifindex) {
		fb := s.node.Pool().Get(len(w))
		b := fb.Bytes()
		copy(b, w)
		if b[8] != p.TTL {
			PatchTTL(b, p.TTL)
		}
		s.node.SendFrame(ifindex, fb)
		return nil
	}
	return s.transmit(p, ifindex)
}
