package ipv4

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	tests := []struct {
		in      string
		want    Addr
		wantErr bool
	}{
		{"192.20.225.20", AddrFrom4(192, 20, 225, 20), false},
		{"0.0.0.0", 0, false},
		{"255.255.255.255", Broadcast, false},
		{"10.0.0.1", 0x0a000001, false},
		{"256.0.0.1", 0, true},
		{"1.2.3", 0, true},
		{"1.2.3.4.5", 0, true},
		{"a.b.c.d", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseAddr(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseAddr(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		a := Addr(raw)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseAddr on garbage did not panic")
		}
	}()
	MustParseAddr("not-an-address")
}

func TestPrefixContains(t *testing.T) {
	tests := []struct {
		prefix string
		addr   string
		want   bool
	}{
		{"10.0.0.0/8", "10.1.2.3", true},
		{"10.0.0.0/8", "11.1.2.3", false},
		{"192.20.225.0/24", "192.20.225.20", true},
		{"192.20.225.0/24", "192.20.226.20", false},
		{"0.0.0.0/0", "8.8.8.8", true},
		{"1.2.3.4/32", "1.2.3.4", true},
		{"1.2.3.4/32", "1.2.3.5", false},
	}
	for _, tt := range tests {
		p := MustParsePrefix(tt.prefix)
		if got := p.Contains(MustParseAddr(tt.addr)); got != tt.want {
			t.Errorf("%s.Contains(%s) = %v, want %v", tt.prefix, tt.addr, got, tt.want)
		}
	}
}

func TestParsePrefixErrors(t *testing.T) {
	for _, bad := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/8", "10.0.0.0/y"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", bad)
		}
	}
}

func TestPrefixString(t *testing.T) {
	p := MustParsePrefix("172.16.0.0/12")
	if got := p.String(); got != "172.16.0.0/12" {
		t.Errorf("String() = %q", got)
	}
}
