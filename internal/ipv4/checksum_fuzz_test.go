package ipv4

import (
	"bytes"
	"testing"
)

// FuzzIncrementalChecksum checks RFC 1624 Eq. 3 against ground truth: for
// an arbitrary header with a correctly computed checksum, mutating any
// 16-bit word and updating incrementally must agree bit-for-bit with a full
// recompute over the mutated bytes.
func FuzzIncrementalChecksum(f *testing.F) {
	f.Add([]byte{0x45, 0, 0, 20, 0, 1, 0, 0, 64, 6, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2}, uint8(4), uint16(0x3f06))
	f.Add([]byte{0x45, 0, 5, 220, 0, 9, 0x20, 0, 1, 17, 0, 0, 10, 0, 1, 1, 10, 0, 2, 2}, uint8(0), uint16(0))
	f.Add(bytes.Repeat([]byte{0xff}, 20), uint8(9), uint16(0xffff))
	f.Fuzz(func(t *testing.T, hdr []byte, wordIdx uint8, newWord uint16) {
		if len(hdr) < 4 || len(hdr)%2 != 0 {
			t.Skip()
		}
		h := append([]byte(nil), hdr...)
		// Install a correct checksum in the second word (the IPv4 slot is
		// byte 10, but the identity holds wherever the field lives; using a
		// fixed slot keeps the harness simple).
		h[2], h[3] = 0, 0
		sum := Checksum(h)
		h[2], h[3] = byte(sum>>8), byte(sum)

		// Mutate one word other than the checksum field itself.
		i := int(wordIdx) % (len(h) / 2)
		if i == 1 {
			i = 0
		}
		old := uint16(h[2*i])<<8 | uint16(h[2*i+1])
		got := UpdateChecksum16(sum, old, newWord)

		h[2*i], h[2*i+1] = byte(newWord>>8), byte(newWord)
		h[2], h[3] = 0, 0
		want := Checksum(h)

		// Both the incremental result and the recompute are produced by a
		// final one's complement, so they agree exactly unless the data sums
		// to zero — impossible here only when the header has nonzero bytes;
		// all-zero data is the single 0x0000 vs 0xFFFF ambiguity in the
		// Internet checksum, which RFC 1624 acknowledges. Accept both
		// representations of zero in that case.
		if got != want && !(got%0xffff == want%0xffff) {
			t.Fatalf("incremental %#04x != recompute %#04x (word %d: %#04x -> %#04x)",
				got, want, i, old, newWord)
		}
	})
}

// FuzzPatchTTL drives the real forwarding fast path: marshal a valid
// header, patch the TTL, and require the result to verify and to match a
// full re-marshal.
func FuzzPatchTTL(f *testing.F) {
	f.Add(uint8(64), uint8(63), uint8(6))
	f.Add(uint8(1), uint8(0), uint8(17))
	f.Add(uint8(255), uint8(1), uint8(4))
	f.Fuzz(func(t *testing.T, ttl, newTTL, proto uint8) {
		p := &Packet{Header: Header{
			TTL: ttl, Proto: proto, Src: AddrFrom4(10, 0, 0, 1), Dst: AddrFrom4(10, 0, 9, 9), ID: 77,
		}}
		wire, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		PatchTTL(wire, newTTL)
		if got := Checksum(wire[:HeaderLen]); got != 0 {
			t.Fatalf("patched header does not verify: residual %#04x", got)
		}
		p.TTL = newTTL
		want, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, want) {
			t.Fatalf("patched wire\n%x\n!= remarshal\n%x", wire, want)
		}
	})
}
