package ipv4

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"hydranet/internal/frame"
	"hydranet/internal/sim"
)

func mkPacket(n int) *Packet {
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	return &Packet{
		Header:  Header{TTL: 64, Proto: ProtoTCP, Src: 1, Dst: 2, ID: 42},
		Payload: payload,
	}
}

func TestFragmentFitsUnchanged(t *testing.T) {
	p := mkPacket(100)
	frags, err := Fragment(p, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || frags[0] != p {
		t.Fatal("small datagram was not passed through")
	}
}

func TestFragmentSplitsAndAligns(t *testing.T) {
	p := mkPacket(4000)
	frags, err := Fragment(p, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 3 {
		t.Fatalf("got %d fragments, want 3", len(frags))
	}
	for i, f := range frags {
		if f.FragOff%8 != 0 {
			t.Errorf("fragment %d offset %d not 8-aligned", i, f.FragOff)
		}
		if HeaderLen+len(f.Payload) > 1500 {
			t.Errorf("fragment %d exceeds MTU", i)
		}
		wantMore := i < len(frags)-1
		if f.MoreFrag != wantMore {
			t.Errorf("fragment %d MF = %v, want %v", i, f.MoreFrag, wantMore)
		}
		if f.ID != p.ID {
			t.Errorf("fragment %d ID changed", i)
		}
	}
}

func TestFragmentHonoursDF(t *testing.T) {
	p := mkPacket(4000)
	p.DontFrag = true
	if _, err := Fragment(p, 1500); err == nil {
		t.Error("DF datagram fragmented without error")
	}
}

func TestFragmentTinyMTU(t *testing.T) {
	p := mkPacket(100)
	if _, err := Fragment(p, HeaderLen+8); err != nil {
		t.Errorf("mtu=28 allows 8-byte chunks, got err %v", err)
	}
	// Below header+8 no 8-aligned chunk fits.
	if _, err := Fragment(p, HeaderLen+4); err == nil {
		t.Error("mtu too small for an aligned chunk must fail")
	}
}

func reassembleAll(t *testing.T, frags []*Packet) *Packet {
	t.Helper()
	s := sim.NewScheduler(1)
	r := NewReassembler(s)
	var out *Packet
	for _, f := range frags {
		if got := r.Add(f); got != nil {
			if out != nil {
				t.Fatal("reassembler produced two datagrams")
			}
			out = got
		}
	}
	return out
}

func TestReassembleInOrder(t *testing.T) {
	p := mkPacket(5000)
	frags, err := Fragment(p, 1500)
	if err != nil {
		t.Fatal(err)
	}
	out := reassembleAll(t, frags)
	if out == nil {
		t.Fatal("no datagram reassembled")
	}
	if !bytes.Equal(out.Payload, p.Payload) {
		t.Error("payload corrupted by frag/reassembly")
	}
	if out.MoreFrag || out.FragOff != 0 {
		t.Error("reassembled datagram still marked fragmented")
	}
}

func TestReassemblePropertyRandomOrderAndDup(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(n uint16, mtuRaw uint8, dup bool) bool {
		size := int(n)%8000 + 1
		mtu := 64 + int(mtuRaw)%1436 // 64..1500
		p := mkPacket(size)
		frags, err := Fragment(p, mtu)
		if err != nil {
			return false
		}
		order := rng.Perm(len(frags))
		var seq []*Packet
		for _, i := range order {
			seq = append(seq, frags[i])
			if dup && rng.Intn(3) == 0 {
				seq = append(seq, frags[i]) // duplicate delivery
			}
		}
		s := sim.NewScheduler(1)
		r := NewReassembler(s)
		var out *Packet
		for _, fr := range seq {
			if got := r.Add(fr); got != nil {
				out = got
			}
		}
		return out != nil && bytes.Equal(out.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReassemblyDistinguishesFlows(t *testing.T) {
	a := mkPacket(3000)
	b := mkPacket(3000)
	b.ID = 43
	fa, _ := Fragment(a, 1500)
	fb, _ := Fragment(b, 1500)
	s := sim.NewScheduler(1)
	r := NewReassembler(s)
	// Interleave flows; each must complete independently.
	done := 0
	for i := range fa {
		if r.Add(fa[i]) != nil {
			done++
		}
		if r.Add(fb[i]) != nil {
			done++
		}
	}
	if done != 2 {
		t.Fatalf("completed %d datagrams, want 2", done)
	}
}

func TestReassemblyTimeoutDiscards(t *testing.T) {
	p := mkPacket(3000)
	frags, _ := Fragment(p, 1500)
	s := sim.NewScheduler(1)
	r := NewReassembler(s)
	if r.Add(frags[0]) != nil {
		t.Fatal("partial datagram completed")
	}
	s.RunUntil(ReassemblyTimeout + time.Second)
	if r.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", r.Expired)
	}
	// The late fragment alone must not complete the datagram.
	if r.Add(frags[1]) != nil {
		t.Fatal("expired datagram completed from stale fragment")
	}
}

func TestRefragmentMiddleFragmentPreservesMF(t *testing.T) {
	// A router fragmenting an already-fragmented middle piece must keep MF
	// on its last sub-fragment.
	p := mkPacket(4000)
	frags, _ := Fragment(p, 1500)
	middle := frags[0]
	sub, err := Fragment(middle, 600)
	if err != nil {
		t.Fatal(err)
	}
	last := sub[len(sub)-1]
	if !last.MoreFrag {
		t.Error("last sub-fragment of a middle fragment lost MF")
	}
	// End-to-end: re-fragmented stream still reassembles.
	all := append(append([]*Packet{}, sub...), frags[1:]...)
	out := reassembleAll(t, all)
	if out == nil || !bytes.Equal(out.Payload, p.Payload) {
		t.Error("re-fragmented datagram failed to reassemble")
	}
}

// TestReassemblerCopiesFromPooledFrames is the regression test for the
// retained-slice hazard the framepool analyzer polices: fragment payloads
// arrive aliasing a pooled frame's bytes, and the fabric recycles that
// frame the moment the handler returns. Poison mode turns any alias the
// reassembler keeps into 0xDB scribbles in the reassembled datagram.
func TestReassemblerCopiesFromPooledFrames(t *testing.T) {
	s := sim.NewScheduler(1)
	r := NewReassembler(s)
	pool := frame.NewPool()
	pool.SetPoison(true)

	p := mkPacket(4000)
	frags, err := Fragment(p, 1500)
	if err != nil {
		t.Fatal(err)
	}
	var out *Packet
	for _, f := range frags {
		fb := pool.Get(len(f.Payload))
		copy(fb.Bytes(), f.Payload)
		alias := *f
		alias.Payload = fb.Bytes()
		got := r.Add(&alias)
		fb.Release() // the fabric recycles the frame right after delivery
		if got != nil {
			out = got
		}
	}
	if out == nil {
		t.Fatal("no datagram reassembled")
	}
	if !bytes.Equal(out.Payload, p.Payload) {
		t.Fatal("reassembler retained fragment payload aliasing a recycled frame; copy on Add")
	}
}
