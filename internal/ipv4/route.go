package ipv4

import "sort"

// Route maps a destination prefix to an outgoing interface.
type Route struct {
	Dst     Prefix
	Ifindex int
}

// RoutingTable performs longest-prefix-match lookups over static routes.
// The zero value is an empty table.
type RoutingTable struct {
	routes []Route
}

// Add installs a route. Routes are kept sorted by descending prefix length
// so Lookup returns the most specific match. A route with an identical
// prefix replaces the earlier one.
func (t *RoutingTable) Add(r Route) {
	for i := range t.routes {
		if t.routes[i].Dst == r.Dst {
			t.routes[i] = r
			return
		}
	}
	t.routes = append(t.routes, r)
	sort.SliceStable(t.routes, func(i, j int) bool {
		return t.routes[i].Dst.Bits > t.routes[j].Dst.Bits
	})
}

// AddDefault installs a 0.0.0.0/0 route out ifindex.
func (t *RoutingTable) AddDefault(ifindex int) {
	t.Add(Route{Dst: Prefix{}, Ifindex: ifindex})
}

// Lookup returns the outgoing interface for dst, or -1 if no route matches.
func (t *RoutingTable) Lookup(dst Addr) int {
	for _, r := range t.routes {
		if r.Dst.Contains(dst) {
			return r.Ifindex
		}
	}
	return -1
}

// Len returns the number of installed routes.
func (t *RoutingTable) Len() int { return len(t.routes) }
