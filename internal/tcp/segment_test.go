package tcp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"hydranet/internal/ipv4"
)

func TestSegmentRoundTrip(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, flags uint8, window uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		in := &Segment{
			SrcPort: srcPort, DstPort: dstPort,
			Seq: Seq(seq), Ack: Seq(ack),
			Flags:  Flags(flags) & (FlagFIN | FlagSYN | FlagRST | FlagPSH | FlagACK | FlagURG),
			Window: window, Payload: payload,
		}
		src, dst := ipv4.Addr(0x01020304), ipv4.Addr(0x05060708)
		b := in.Marshal(src, dst)
		out, err := UnmarshalSegment(src, dst, b)
		if err != nil {
			return false
		}
		return out.SrcPort == in.SrcPort && out.DstPort == in.DstPort &&
			out.Seq == in.Seq && out.Ack == in.Ack && out.Flags == in.Flags &&
			out.Window == in.Window && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSegmentMSSOption(t *testing.T) {
	in := &Segment{Flags: FlagSYN, Seq: 100, MSS: 1460}
	b := in.Marshal(1, 2)
	out, err := UnmarshalSegment(1, 2, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.MSS != 1460 {
		t.Errorf("MSS = %d, want 1460", out.MSS)
	}
}

func TestSegmentChecksumCatchesCorruption(t *testing.T) {
	in := &Segment{Flags: FlagACK, Seq: 1, Ack: 2, Payload: []byte("data")}
	b := in.Marshal(1, 2)
	b[len(b)-1] ^= 0x01
	if _, err := UnmarshalSegment(1, 2, b); !errors.Is(err, ErrSegBadChecksum) {
		t.Errorf("err = %v, want ErrSegBadChecksum", err)
	}
}

func TestSegmentChecksumBindsAddresses(t *testing.T) {
	in := &Segment{Flags: FlagACK, Seq: 1, Ack: 2}
	b := in.Marshal(1, 2)
	if _, err := UnmarshalSegment(9, 2, b); !errors.Is(err, ErrSegBadChecksum) {
		t.Errorf("wrong src accepted: err = %v", err)
	}
}

func TestSegmentTruncated(t *testing.T) {
	if _, err := UnmarshalSegment(1, 2, make([]byte, 10)); !errors.Is(err, ErrSegTruncated) {
		t.Errorf("err = %v, want ErrSegTruncated", err)
	}
}

func TestSegmentLen(t *testing.T) {
	tests := []struct {
		seg  Segment
		want int
	}{
		{Segment{Payload: []byte("abc")}, 3},
		{Segment{Flags: FlagSYN}, 1},
		{Segment{Flags: FlagFIN, Payload: []byte("ab")}, 3},
		{Segment{Flags: FlagSYN | FlagFIN}, 2},
		{Segment{Flags: FlagACK}, 0},
	}
	for _, tt := range tests {
		if got := tt.seg.Len(); got != tt.want {
			t.Errorf("Len(%s) = %d, want %d", tt.seg.Flags, got, tt.want)
		}
	}
}

func TestFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SYN|ACK" {
		t.Errorf("String = %q", s)
	}
	if s := Flags(0).String(); s != "none" {
		t.Errorf("String = %q", s)
	}
}

func TestUnknownOptionSkipped(t *testing.T) {
	// Hand-craft a header with a NOP, an unknown option, then MSS.
	in := &Segment{Flags: FlagSYN, Seq: 7, MSS: 536}
	b := in.Marshal(1, 2)
	// Rewrite options area: data offset says 24 bytes (one 4-byte slot).
	// Replace [MSS,4,hi,lo] with [NOP, MSS... ] won't fit; instead assert
	// the normal path tolerates NOP padding by constructing 28-byte header.
	raw := make([]byte, 28)
	copy(raw, b[:20])
	raw[12] = byte(28/4) << 4
	raw[20] = 1 // NOP
	raw[21] = 1 // NOP
	raw[22] = 8 // unknown option kind...
	raw[23] = 2 // ...of length 2
	raw[24] = 2 // MSS
	raw[25] = 4
	raw[26] = 0x02
	raw[27] = 0x0c // 524
	// Fix checksum.
	raw[16], raw[17] = 0, 0
	sum := ipv4.PseudoChecksum(1, 2, ipv4.ProtoTCP, raw)
	raw[16], raw[17] = byte(sum>>8), byte(sum)
	out, err := UnmarshalSegment(1, 2, raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.MSS != 524 {
		t.Errorf("MSS after odd options = %d, want 524", out.MSS)
	}
}
