package tcp

import (
	"encoding/json"
	"io"
	"time"

	"hydranet/internal/metrics"
	"hydranet/internal/obs"
)

// SpanCollector assembles per-connection trace spans for ft-TCP traffic
// from bus events: each client byte range (one data-bearing segment the
// redirector multicasts) becomes a Span recording when the redirector
// fanned it out, when each replica's acknowledgment channel reported it,
// when each Si deposited it, and when the client finally saw the primary's
// ACK. The result is the paper's Table-2 timeline at per-segment
// resolution, plus two derived histograms: ack-chain lag per hop and
// deposit stall time.
//
// Correlation works on raw sequence numbers. ft-TCP derives the ISS from
// the connection 4-tuple (Stack.TupleISS), so every replica speaks the
// same client sequence space and the same raw seq names the same byte
// everywhere — the multicast event's seq matches the deposit cursors and
// chain-message cursors observed at each replica without translation.
//
// Event matching is cursor-based and monotone: spans for a connection are
// created in increasing sequence order (retransmitted multicasts are
// detected by non-advancing seq and counted, not re-spanned), and each
// replica's deposit/chain cursors only advance, so each event resolves in
// amortized O(1) with a per-node index. A span instant is "covered" by a
// cursor when the cursor passed the span's first byte.
type SpanCollector struct {
	conns      map[spanConnKey]*connSpans
	order      []spanConnKey
	maxPerConn int

	droppedSpans uint64

	ackLagMS       metrics.Histogram
	depositStallMS metrics.Histogram
}

type spanConnKey struct {
	service, client string
}

// DefaultMaxSpansPerConn bounds each connection's span list; segments past
// the bound are counted in DroppedSpans rather than recorded.
const DefaultMaxSpansPerConn = 4096

// NewSpanCollector subscribes a collector to the bus. maxSpansPerConn <= 0
// selects DefaultMaxSpansPerConn.
func NewSpanCollector(b *obs.Bus, maxSpansPerConn int) *SpanCollector {
	if maxSpansPerConn <= 0 {
		maxSpansPerConn = DefaultMaxSpansPerConn
	}
	sc := &SpanCollector{
		conns:      make(map[spanConnKey]*connSpans),
		maxPerConn: maxSpansPerConn,
	}
	b.Subscribe(sc.observe,
		obs.KindMulticast, obs.KindDeposit, obs.KindChainRecv, obs.KindAckProgress)
	return sc
}

// SpanHop is one replica's view of a span. Zero durations mean "never
// observed" — virtual time has advanced past zero by the time any ft-TCP
// data can flow, so zero is unambiguous in practice.
type SpanHop struct {
	// ChainArrivalAt is when this replica's acknowledgment channel learned
	// that its successor had covered the span (chain-recv cursor passed it).
	ChainArrivalAt time.Duration `json:"chain_arrival_at,omitempty"`
	// DepositAt is when this replica deposited the span's first byte to the
	// application (its receive cursor passed it) — gated, for every replica
	// but the chain tail, on ChainArrivalAt by the inbound-atomicity rule.
	DepositAt time.Duration `json:"deposit_at,omitempty"`
}

// Span is the timeline of one multicast client byte range.
type Span struct {
	// Seq is the raw TCP sequence number of the range's first byte.
	Seq uint64 `json:"seq"`
	// MulticastAt is when the redirector fanned the segment out.
	MulticastAt time.Duration `json:"multicast_at"`
	// ClientAckAt is when the client's cumulative ACK point passed the
	// span — the end of the multicast → deposit → ack chain (zero if never
	// observed).
	ClientAckAt time.Duration `json:"client_ack_at,omitempty"`
	// Hops is each replica's view, keyed by node name.
	Hops map[string]*SpanHop `json:"replicas,omitempty"`
}

type connSpans struct {
	spans   []*Span
	lastSeq Seq
	started bool
	rexmit  uint64

	depIdx   map[string]int
	chainIdx map[string]int
	ackIdx   int
}

func (sc *SpanCollector) conn(k spanConnKey) *connSpans {
	cs := sc.conns[k]
	if cs == nil {
		cs = &connSpans{depIdx: make(map[string]int), chainIdx: make(map[string]int)}
		sc.conns[k] = cs
		sc.order = append(sc.order, k)
	}
	return cs
}

func (sc *SpanCollector) observe(e obs.Event) {
	switch e.Kind {
	case obs.KindMulticast:
		// Only data-bearing TCP segments carry a Seq (the redirector leaves
		// it unset for pure ACKs and non-TCP traffic).
		if e.Seq == 0 || e.Conn == "" {
			return
		}
		cs := sc.conn(spanConnKey{service: e.Service, client: e.Conn})
		seq := Seq(e.Seq)
		if cs.started && seq.LEQ(cs.lastSeq) {
			cs.rexmit++
			return
		}
		cs.lastSeq = seq
		cs.started = true
		if len(cs.spans) >= sc.maxPerConn {
			sc.droppedSpans++
			return
		}
		cs.spans = append(cs.spans, &Span{
			Seq: e.Seq, MulticastAt: e.Time, Hops: make(map[string]*SpanHop),
		})

	case obs.KindDeposit:
		cs := sc.conns[spanConnKey{service: e.Service, client: e.Conn}]
		if cs == nil || e.Seq == 0 {
			return
		}
		cursor := Seq(e.Seq)
		i := cs.depIdx[e.Node]
		for ; i < len(cs.spans); i++ {
			s := cs.spans[i]
			if !Seq(s.Seq).LT(cursor) {
				break
			}
			h := hop(s, e.Node)
			if h.DepositAt == 0 {
				h.DepositAt = e.Time
				sc.depositStallMS.Observe(ms(e.Time - s.MulticastAt))
			}
		}
		cs.depIdx[e.Node] = i

	case obs.KindChainRecv:
		cs := sc.conns[spanConnKey{service: e.Service, client: e.Conn}]
		if cs == nil || e.Ack == 0 {
			return
		}
		cursor := Seq(e.Ack)
		i := cs.chainIdx[e.Node]
		for ; i < len(cs.spans); i++ {
			s := cs.spans[i]
			if !Seq(s.Seq).LT(cursor) {
				break
			}
			h := hop(s, e.Node)
			if h.ChainArrivalAt == 0 {
				h.ChainArrivalAt = e.Time
				// Ack-chain lag per hop: time from the downstream deposit
				// that triggered this progress report (the latest other-node
				// deposit of the span not after now) to its arrival here.
				var dep time.Duration = -1
				for node, other := range s.Hops { //hydralint:nondeterministic max over hop deposit times, order-independent
					if node == e.Node || other.DepositAt == 0 || other.DepositAt > e.Time {
						continue
					}
					if other.DepositAt > dep {
						dep = other.DepositAt
					}
				}
				if dep >= 0 {
					sc.ackLagMS.Observe(ms(e.Time - dep))
				}
			}
		}
		cs.chainIdx[e.Node] = i

	case obs.KindAckProgress:
		// Only the client side of the connection matches: its local
		// endpoint is the span key's client and its remote is the service.
		cs := sc.conns[spanConnKey{service: e.Conn, client: e.Service}]
		if cs == nil || e.Seq == 0 {
			return
		}
		cursor := Seq(e.Seq)
		i := cs.ackIdx
		for ; i < len(cs.spans); i++ {
			s := cs.spans[i]
			if !Seq(s.Seq).LT(cursor) {
				break
			}
			if s.ClientAckAt == 0 {
				s.ClientAckAt = e.Time
			}
		}
		cs.ackIdx = i

	default:
		// Span assembly only consumes the four cursor-bearing kinds above;
		// everything else is deliberately outside the span model.
	}
}

func hop(s *Span, node string) *SpanHop {
	h := s.Hops[node]
	if h == nil {
		h = &SpanHop{}
		s.Hops[node] = h
	}
	return h
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// SpanTimeline is one connection's spans, in multicast order.
type SpanTimeline struct {
	Service string `json:"service"`
	Client  string `json:"client"`
	// RetransmitMulticasts counts multicast fan-outs whose sequence number
	// did not advance (redirector copies of client retransmissions).
	RetransmitMulticasts uint64  `json:"retransmit_multicasts,omitempty"`
	Spans                []*Span `json:"spans"`
}

// Timelines returns every connection's spans, in first-seen order.
func (sc *SpanCollector) Timelines() []SpanTimeline {
	out := make([]SpanTimeline, 0, len(sc.order))
	for _, k := range sc.order {
		cs := sc.conns[k]
		out = append(out, SpanTimeline{
			Service: k.service, Client: k.client,
			RetransmitMulticasts: cs.rexmit, Spans: cs.spans,
		})
	}
	return out
}

// DroppedSpans counts data segments not spanned because a connection hit
// its span bound.
func (sc *SpanCollector) DroppedSpans() uint64 { return sc.droppedSpans }

// AckChainLag snapshots the per-hop acknowledgment-channel lag histogram
// (milliseconds): downstream deposit → chain-recv at the upstream replica.
func (sc *SpanCollector) AckChainLag() metrics.HistogramSnapshot {
	return sc.ackLagMS.Snapshot()
}

// DepositStall snapshots the deposit-stall histogram (milliseconds):
// redirector multicast → deposit at each replica. The chain tail's stall is
// pure propagation and processing; everyone else's additionally contains
// the inbound-atomicity wait for downstream acknowledgments.
func (sc *SpanCollector) DepositStall() metrics.HistogramSnapshot {
	return sc.depositStallMS.Snapshot()
}

type spanJSON struct {
	Timelines      []SpanTimeline            `json:"timelines"`
	AckChainLagMS  metrics.HistogramSnapshot `json:"ack_chain_lag_ms"`
	DepositStallMS metrics.HistogramSnapshot `json:"deposit_stall_ms"`
	DroppedSpans   uint64                    `json:"dropped_spans,omitempty"`
}

// WriteJSON writes every timeline plus the derived histograms as indented
// JSON (durations are nanoseconds of virtual time).
func (sc *SpanCollector) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spanJSON{
		Timelines:      sc.Timelines(),
		AckChainLagMS:  sc.AckChainLag(),
		DepositStallMS: sc.DepositStall(),
		DroppedSpans:   sc.droppedSpans,
	})
}
