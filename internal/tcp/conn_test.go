package tcp

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/netsim"
	"hydranet/internal/sim"
)

// env is a two-host test network: client — server.
type env struct {
	sched      *sim.Scheduler
	net        *netsim.Network
	link       *netsim.Link
	client     *Stack
	server     *Stack
	clientAddr ipv4.Addr
	serverAddr ipv4.Addr
}

func newEnv(t *testing.T, link netsim.LinkConfig, cfg Config) *env {
	t.Helper()
	return newEnvCommon(link, cfg)
}

func newEnvCommon(link netsim.LinkConfig, cfg Config) *env {
	sched := sim.NewScheduler(21)
	nw := netsim.New(sched)
	cn := nw.AddNode(netsim.NodeConfig{Name: "client"})
	sn := nw.AddNode(netsim.NodeConfig{Name: "server"})
	l := nw.Connect(cn, sn, link)
	cip := ipv4.NewStack(cn, sched)
	sip := ipv4.NewStack(sn, sched)
	e := &env{
		sched: sched, net: nw, link: l,
		clientAddr: ipv4.MustParseAddr("10.0.0.1"),
		serverAddr: ipv4.MustParseAddr("10.0.0.2"),
	}
	cip.SetAddr(0, e.clientAddr)
	sip.SetAddr(0, e.serverAddr)
	cip.Routes().AddDefault(0)
	sip.Routes().AddDefault(0)
	e.client = NewStack(cip, cfg)
	e.server = NewStack(sip, cfg)
	return e
}

// sink accumulates everything read from a conn.
type sink struct {
	data []byte
	eof  bool
}

func attachSink(c *Conn) *sink {
	s := &sink{}
	buf := make([]byte, 4096)
	c.OnReadable(func() {
		for {
			n := c.Read(buf)
			if n == 0 {
				break
			}
			s.data = append(s.data, buf[:n]...)
		}
		if c.PeerClosed() {
			s.eof = true
		}
	})
	return s
}

// pump writes the whole payload into c as buffer space allows, closing
// afterwards if closeWhenDone.
func pump(c *Conn, payload []byte, closeWhenDone bool) {
	rest := payload
	var feed func()
	feed = func() {
		for len(rest) > 0 {
			n := c.Write(rest)
			if n == 0 {
				return // OnWritable will call us again
			}
			rest = rest[n:]
		}
		if closeWhenDone {
			c.Close()
		}
	}
	c.OnWritable(feed)
	c.OnConnected(feed)
	feed()
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + i/255)
	}
	return b
}

func TestHandshake(t *testing.T) {
	e := newEnv(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	l, err := e.server.Listen(0, 80)
	if err != nil {
		t.Fatal(err)
	}
	var accepted *Conn
	l.SetAcceptFunc(func(c *Conn) { accepted = c })
	connected := false
	c, err := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	c.OnConnected(func() { connected = true })
	e.sched.RunUntil(time.Second)
	if !connected {
		t.Fatal("client never connected")
	}
	if accepted == nil {
		t.Fatal("server never accepted")
	}
	if c.State() != StateEstablished || accepted.State() != StateEstablished {
		t.Fatalf("states: client=%v server=%v", c.State(), accepted.State())
	}
	if accepted.Remote() != c.Local() || accepted.Local().Port != 80 {
		t.Fatalf("endpoints wrong: %v %v", accepted.Local(), accepted.Remote())
	}
}

func TestBulkTransfer(t *testing.T) {
	e := newEnv(t, netsim.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}, Config{})
	l, _ := e.server.Listen(0, 80)
	var srv *sink
	l.SetAcceptFunc(func(c *Conn) { srv = attachSink(c) })
	payload := pattern(100_000)
	c, err := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	pump(c, payload, true)
	e.sched.RunUntil(2 * time.Minute)
	if srv == nil {
		t.Fatal("no connection accepted")
	}
	if !bytes.Equal(srv.data, payload) {
		t.Fatalf("received %d bytes, want %d (or content mismatch)", len(srv.data), len(payload))
	}
	if !srv.eof {
		t.Fatal("server did not see EOF")
	}
}

func TestTransferOverLossyLink(t *testing.T) {
	e := newEnv(t, netsim.LinkConfig{Rate: 10_000_000, Delay: 2 * time.Millisecond, Loss: 0.05}, Config{})
	l, _ := e.server.Listen(0, 80)
	var srv *sink
	var srvConn *Conn
	l.SetAcceptFunc(func(c *Conn) { srvConn = c; srv = attachSink(c) })
	payload := pattern(200_000)
	c, err := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	pump(c, payload, true)
	e.sched.RunUntil(10 * time.Minute)
	if srv == nil || !bytes.Equal(srv.data, payload) {
		got := 0
		if srv != nil {
			got = len(srv.data)
		}
		t.Fatalf("lossy transfer incomplete: got %d of %d bytes", got, len(payload))
	}
	if c.Stats().Retransmits == 0 && c.Stats().RTOEvents == 0 {
		t.Error("5%% loss produced no retransmissions — loss not exercised")
	}
	_ = srvConn
}

func TestBidirectionalEcho(t *testing.T) {
	e := newEnv(t, netsim.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}, Config{})
	l, _ := e.server.Listen(0, 7)
	l.SetAcceptFunc(func(c *Conn) {
		buf := make([]byte, 2048)
		c.OnReadable(func() {
			for {
				n := c.Read(buf)
				if n == 0 {
					break
				}
				c.Write(buf[:n])
			}
			if c.PeerClosed() {
				c.Close()
			}
		})
	})
	payload := pattern(50_000)
	c, err := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 7})
	if err != nil {
		t.Fatal(err)
	}
	echoed := attachSink(c)
	pump(c, payload, true)
	e.sched.RunUntil(2 * time.Minute)
	if !bytes.Equal(echoed.data, payload) {
		t.Fatalf("echo returned %d bytes, want %d", len(echoed.data), len(payload))
	}
	if !echoed.eof {
		t.Fatal("client did not observe server close")
	}
}

func TestOrderlyCloseReleasesConns(t *testing.T) {
	cfg := Config{TimeWaitDuration: 2 * time.Second}
	e := newEnv(t, netsim.LinkConfig{Delay: time.Millisecond}, cfg)
	l, _ := e.server.Listen(0, 80)
	l.SetAcceptFunc(func(c *Conn) {
		c.OnReadable(func() {
			if c.PeerClosed() {
				c.Close()
			}
		})
	})
	c, _ := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	var closedErr error
	gotClosed := false
	c.OnClosed(func(err error) { gotClosed = true; closedErr = err })
	c.OnConnected(func() { c.Close() })
	e.sched.RunUntil(time.Minute)
	if !gotClosed {
		t.Fatal("client OnClosed never fired")
	}
	if closedErr != nil {
		t.Fatalf("orderly close reported error %v", closedErr)
	}
	if n := e.client.NumConns() + e.server.NumConns(); n != 0 {
		t.Fatalf("%d connections still tracked after close", n)
	}
}

func TestConnectionRefused(t *testing.T) {
	e := newEnv(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	c, err := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 9999})
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	c.OnClosed(func(err error) { gotErr = err })
	e.sched.RunUntil(5 * time.Second)
	if !errors.Is(gotErr, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", gotErr)
	}
	if e.server.Stats().RSTsSent == 0 {
		t.Error("server sent no RST")
	}
}

func TestDeterministicISS(t *testing.T) {
	a := TupleISS(Endpoint{Addr: 1, Port: 80}, Endpoint{Addr: 2, Port: 5000})
	b := TupleISS(Endpoint{Addr: 1, Port: 80}, Endpoint{Addr: 2, Port: 5000})
	if a != b {
		t.Fatal("TupleISS not deterministic")
	}
	c := TupleISS(Endpoint{Addr: 1, Port: 80}, Endpoint{Addr: 2, Port: 5001})
	if a == c {
		t.Fatal("TupleISS ignores the 4-tuple")
	}
}

func TestNagleCoalescesSmallWrites(t *testing.T) {
	runCase := func(noDelay bool) uint64 {
		e := newEnv(t, netsim.LinkConfig{Rate: 10_000_000, Delay: 5 * time.Millisecond}, Config{})
		l, _ := e.server.Listen(0, 80)
		l.SetAcceptFunc(func(c *Conn) { attachSink(c) })
		c, _ := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
		c.SetNoDelay(noDelay)
		c.OnConnected(func() {
			// 50 small writes in a burst.
			for i := 0; i < 50; i++ {
				c.Write([]byte("tiny-"))
			}
		})
		e.sched.RunUntil(time.Minute)
		return c.Stats().SegsSent
	}
	nagle := runCase(false)
	nodelay := runCase(true)
	if nagle >= nodelay {
		t.Fatalf("Nagle sent %d segments, NoDelay %d — expected fewer with Nagle", nagle, nodelay)
	}
}

func TestFastRetransmitOnSingleLoss(t *testing.T) {
	// Deterministically drop exactly one data segment mid-stream using a
	// forwarding router with a hook.
	sched := sim.NewScheduler(5)
	nw := netsim.New(sched)
	cn := nw.AddNode(netsim.NodeConfig{Name: "client"})
	rn := nw.AddNode(netsim.NodeConfig{Name: "router"})
	sn := nw.AddNode(netsim.NodeConfig{Name: "server"})
	nw.Connect(cn, rn, netsim.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond})
	nw.Connect(rn, sn, netsim.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond})
	cip := ipv4.NewStack(cn, sched)
	rip := ipv4.NewStack(rn, sched)
	sip := ipv4.NewStack(sn, sched)
	ca, sa := ipv4.MustParseAddr("10.1.0.2"), ipv4.MustParseAddr("10.2.0.2")
	cip.SetAddr(0, ca)
	rip.SetAddr(0, ipv4.MustParseAddr("10.1.0.1"))
	rip.SetAddr(1, ipv4.MustParseAddr("10.2.0.1"))
	sip.SetAddr(0, sa)
	cip.Routes().AddDefault(0)
	sip.Routes().AddDefault(0)
	rip.Routes().Add(ipv4.Route{Dst: ipv4.MustParsePrefix("10.1.0.0/24"), Ifindex: 0})
	rip.Routes().Add(ipv4.Route{Dst: ipv4.MustParsePrefix("10.2.0.0/24"), Ifindex: 1})
	rip.SetForwarding(true)
	dropped := false
	dataSeen := 0
	rip.SetForwardHook(func(p *ipv4.Packet) bool {
		if p.Proto != ipv4.ProtoTCP || len(p.Payload) < HeaderLen+500 {
			return false
		}
		dataSeen++
		if dataSeen == 10 && !dropped {
			dropped = true
			return true // swallow one full-size data segment
		}
		return false
	})
	ct := NewStack(cip, Config{})
	st := NewStack(sip, Config{})
	lis, _ := st.Listen(0, 80)
	var srv *sink
	lis.SetAcceptFunc(func(c *Conn) { srv = attachSink(c) })
	payload := pattern(150_000)
	c, _ := ct.Connect(0, Endpoint{Addr: sa, Port: 80})
	pump(c, payload, true)
	sched.RunUntil(time.Minute)
	if !dropped {
		t.Fatal("test never dropped a segment")
	}
	if srv == nil || !bytes.Equal(srv.data, payload) {
		t.Fatal("transfer did not recover from single loss")
	}
	if c.Stats().FastRetransmits == 0 {
		t.Errorf("loss repaired without fast retransmit (RTOEvents=%d)", c.Stats().RTOEvents)
	}
}

func TestZeroWindowAndReopen(t *testing.T) {
	cfg := Config{RecvBufSize: 4096, SendBufSize: 65536}
	e := newEnv(t, netsim.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}, cfg)
	l, _ := e.server.Listen(0, 80)
	var srvConn *Conn
	l.SetAcceptFunc(func(c *Conn) { srvConn = c })
	payload := pattern(20_000)
	c, _ := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	pump(c, payload, true)
	// Let the window fill while the server app reads nothing.
	e.sched.RunUntil(5 * time.Second)
	if srvConn == nil {
		t.Fatal("no server conn")
	}
	if got := srvConn.Readable(); got != 4096 {
		t.Fatalf("server buffered %d bytes, want full 4096", got)
	}
	// Now drain: transfer must complete even after a zero-window phase.
	var got []byte
	buf := make([]byte, 1024)
	srvConn.OnReadable(func() {
		for {
			n := srvConn.Read(buf)
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
	})
	// Kick the first read manually (data is already buffered).
	for {
		n := srvConn.Read(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	e.sched.RunUntil(5 * time.Minute)
	if !bytes.Equal(got, payload) {
		t.Fatalf("after zero-window: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestMSSNegotiation(t *testing.T) {
	e := newEnv(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	// Server advertises a small MSS.
	e.server.cfg.MSS = 536
	l, _ := e.server.Listen(0, 80)
	var srv *sink
	l.SetAcceptFunc(func(c *Conn) { srv = attachSink(c) })
	maxSeen := 0
	e.client.SetTrace(func(dir string, _, _ Endpoint, seg *Segment) {
		if dir == "out" && len(seg.Payload) > maxSeen {
			maxSeen = len(seg.Payload)
		}
	})
	payload := pattern(10_000)
	c, _ := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	pump(c, payload, true)
	e.sched.RunUntil(time.Minute)
	if srv == nil || !bytes.Equal(srv.data, payload) {
		t.Fatal("transfer failed")
	}
	if maxSeen > 536 {
		t.Fatalf("client sent %d-byte payload, exceeding negotiated MSS 536", maxSeen)
	}
}

func TestWraparoundTransfer(t *testing.T) {
	cfg := Config{ISS: func(local, remote Endpoint) Seq { return 0xffffff00 }}
	e := newEnv(t, netsim.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}, cfg)
	l, _ := e.server.Listen(0, 80)
	var srv *sink
	l.SetAcceptFunc(func(c *Conn) { srv = attachSink(c) })
	payload := pattern(30_000) // crosses the 2^32 boundary
	c, _ := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	pump(c, payload, true)
	e.sched.RunUntil(time.Minute)
	if srv == nil || !bytes.Equal(srv.data, payload) {
		t.Fatal("transfer across sequence wraparound failed")
	}
}

func TestRetransmissionTimeoutGivesUp(t *testing.T) {
	cfg := Config{MaxRetries: 3, MinRTO: 200 * time.Millisecond, InitialRTO: 200 * time.Millisecond}
	e := newEnv(t, netsim.LinkConfig{Delay: time.Millisecond}, cfg)
	l, _ := e.server.Listen(0, 80)
	var srvConn *Conn
	l.SetAcceptFunc(func(c *Conn) { srvConn = c })
	c, _ := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	var clientErr error
	c.OnClosed(func(err error) { clientErr = err })
	c.OnConnected(func() {
		c.Write(pattern(1000))
		// Partition the network right after the first write.
		e.link.SetLoss(1.0)
	})
	e.sched.RunUntil(5 * time.Minute)
	if !errors.Is(clientErr, ErrTimeout) {
		t.Fatalf("client err = %v, want ErrTimeout", clientErr)
	}
	_ = srvConn
}

func TestDuplicateDataCountsAsPeerRetransmit(t *testing.T) {
	// Drop ACKs from server to client: client RTOs and resends, server
	// must count peer retransmissions (the HydraNet-FT detector signal).
	e := newEnv(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{
		MinRTO: 200 * time.Millisecond, InitialRTO: 200 * time.Millisecond})
	l, _ := e.server.Listen(0, 80)
	var srvConn *Conn
	l.SetAcceptFunc(func(c *Conn) { srvConn = c; attachSink(c) })
	c, _ := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	c.OnConnected(func() {
		c.Write([]byte("hello"))
	})
	e.sched.RunUntil(time.Second)
	if srvConn == nil {
		t.Fatal("no server conn")
	}
	// Deposit gate that never opens: server receives but cannot ACK new
	// data, so the client retransmits on timeout.
	srvConn.SetHooks(ConnHooks{DepositLimit: func() (Seq, bool) { return srvConn.RcvNxt(), true }})
	c.Write([]byte("world"))
	before := srvConn.Stats().PeerRetransmits
	e.sched.RunUntil(5 * time.Second)
	if got := srvConn.Stats().PeerRetransmits; got <= before {
		t.Fatalf("PeerRetransmits = %d, want > %d under withheld ACKs", got, before)
	}
}
