package tcp

import (
	"testing"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/netsim"
)

func mustAddr(t *testing.T, s string) ipv4.Addr {
	t.Helper()
	return ipv4.MustParseAddr(s)
}

// TestListenerSpecificBeatsWildcard mirrors the UDP demux rule: a listener
// bound to a concrete address wins over the wildcard for that address.
func TestListenerSpecificBeatsWildcard(t *testing.T) {
	e := newEnv(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	hits := map[string]int{}
	wild, err := e.server.Listen(0, 80)
	if err != nil {
		t.Fatal(err)
	}
	wild.SetAcceptFunc(func(c *Conn) { hits["wildcard"]++ })
	spec, err := e.server.Listen(e.serverAddr, 80)
	if err != nil {
		t.Fatal(err)
	}
	spec.SetAcceptFunc(func(c *Conn) { hits["specific"]++ })

	if _, err := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80}); err != nil {
		t.Fatal(err)
	}
	e.sched.RunUntil(time.Second)
	if hits["specific"] != 1 || hits["wildcard"] != 0 {
		t.Fatalf("hits = %v, want the specific listener", hits)
	}
}

// TestVirtualHostListenerIsolation: listeners for two virtual hosts on the
// same port accept independently.
func TestVirtualHostListenerIsolation(t *testing.T) {
	e := newEnv(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	v1 := mustAddr(t, "192.20.225.20")
	v2 := mustAddr(t, "192.20.225.21")
	e.server.IP().AddLocalAddr(v1)
	e.server.IP().AddLocalAddr(v2)
	var got []string
	mk := func(tag string) func(*Conn) {
		return func(c *Conn) { got = append(got, tag+"@"+c.Local().Addr.String()) }
	}
	l1, _ := e.server.Listen(v1, 80)
	l1.SetAcceptFunc(mk("one"))
	l2, _ := e.server.Listen(v2, 80)
	l2.SetAcceptFunc(mk("two"))

	if _, err := e.client.Connect(0, Endpoint{Addr: v2, Port: 80}); err != nil {
		t.Fatal(err)
	}
	e.sched.RunUntil(time.Second)
	if len(got) != 1 || got[0] != "two@192.20.225.21" {
		t.Fatalf("accepts = %v", got)
	}
}
