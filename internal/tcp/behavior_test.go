package tcp

import (
	"testing"
	"time"

	"hydranet/internal/netsim"
)

// TestSlowStartGrowth: with an unconstrained receiver window, the number of
// segments in flight roughly doubles every round trip until ssthresh.
func TestSlowStartGrowth(t *testing.T) {
	cfg := Config{RecvBufSize: 64 * 1024, SendBufSize: 256 * 1024,
		DelayedAckTimeout: 0 /* ack every segment, cleanest growth */}
	// Long-delay link so round trips are clearly separated.
	e := newEnv(t, netsim.LinkConfig{Rate: 100_000_000, Delay: 20 * time.Millisecond}, cfg)
	l, _ := e.server.Listen(0, 80)
	l.SetAcceptFunc(func(c *Conn) { attachSink(c) })

	// Record data-segment departure times at the client.
	var departures []time.Duration
	e.client.SetTrace(func(dir string, _, _ Endpoint, seg *Segment) {
		if dir == "out" && len(seg.Payload) > 0 {
			departures = append(departures, e.sched.Now())
		}
	})
	c, _ := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	pump(c, pattern(120_000), true)
	e.sched.RunUntil(10 * time.Second)
	if len(departures) < 20 {
		t.Fatalf("only %d data segments", len(departures))
	}
	// Bucket departures into 40 ms round trips and check growth of the
	// first few buckets.
	buckets := map[int]int{}
	base := departures[0]
	for _, d := range departures {
		buckets[int((d-base)/(40*time.Millisecond))]++
	}
	first := buckets[0]
	second := buckets[1]
	if first == 0 || second < first*2-1 {
		t.Errorf("no exponential growth: rtt0=%d rtt1=%d", first, second)
	}
}

// TestRTOBackoffDoubles: consecutive timeouts space out exponentially.
func TestRTOBackoffDoubles(t *testing.T) {
	cfg := Config{InitialRTO: time.Second, MinRTO: time.Second, MaxRetries: 5}
	e := newEnv(t, netsim.LinkConfig{Delay: time.Millisecond}, cfg)
	l, _ := e.server.Listen(0, 80)
	l.SetAcceptFunc(func(c *Conn) {})
	c, _ := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	var sends []time.Duration
	e.client.SetTrace(func(dir string, _, _ Endpoint, seg *Segment) {
		if dir == "out" && len(seg.Payload) > 0 {
			sends = append(sends, e.sched.Now())
		}
	})
	c.OnConnected(func() {
		c.Write([]byte("doomed data"))
		e.link.SetLoss(1.0) // black-hole everything after the first send
	})
	e.sched.RunUntil(5 * time.Minute)
	if len(sends) < 4 {
		t.Fatalf("only %d transmissions", len(sends))
	}
	gap1 := sends[2] - sends[1]
	gap2 := sends[3] - sends[2]
	if gap2 < gap1*3/2 {
		t.Errorf("no exponential backoff: gaps %v then %v", gap1, gap2)
	}
}

// TestReadAfterPeerClose: data queued before the FIN remains readable after
// the connection is in CLOSE-WAIT (no data loss on close).
func TestReadAfterPeerClose(t *testing.T) {
	e := newEnv(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	l, _ := e.server.Listen(0, 80)
	var srv *Conn
	l.SetAcceptFunc(func(c *Conn) { srv = c }) // server app does NOT read yet
	c, _ := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	pump(c, []byte("parting words"), true)
	e.sched.RunUntil(5 * time.Second)
	if srv == nil || !srv.PeerClosed() {
		t.Fatal("server did not reach CLOSE-WAIT")
	}
	buf := make([]byte, 64)
	n := srv.Read(buf)
	if string(buf[:n]) != "parting words" {
		t.Fatalf("read %q after peer close", buf[:n])
	}
}

// TestWindowUpdateResumesFlow: a receiver that stalls and then drains must
// reopen the flow without waiting for the persist timer (the window-update
// ACK does it).
func TestWindowUpdateResumesFlow(t *testing.T) {
	cfg := Config{RecvBufSize: 4096}
	e := newEnv(t, netsim.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}, cfg)
	l, _ := e.server.Listen(0, 80)
	var srv *Conn
	l.SetAcceptFunc(func(c *Conn) { srv = c })
	c, _ := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	pump(c, pattern(12_000), false)
	e.sched.RunUntil(3 * time.Second) // receiver full at 4096
	if srv.Readable() != 4096 {
		t.Fatalf("readable = %d, want full buffer", srv.Readable())
	}
	drainAt := e.sched.Now()
	got := 0
	buf := make([]byte, 2048)
	srv.OnReadable(func() {
		for {
			n := srv.Read(buf)
			if n == 0 {
				break
			}
			got += n
		}
	})
	for { // initial drain
		n := srv.Read(buf)
		if n == 0 {
			break
		}
		got += n
	}
	// Flow must resume well before the 1 s persist probe.
	e.sched.RunUntil(drainAt + 500*time.Millisecond)
	if got < 8000 {
		t.Fatalf("only %d bytes after drain; window update did not resume flow", got)
	}
}

// BenchmarkBulkTransfer measures simulator cost per transferred byte — the
// budget behind every experiment run.
func BenchmarkBulkTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newEnvB(b)
		l, _ := e.server.Listen(0, 80)
		l.SetAcceptFunc(func(c *Conn) { attachSink(c) })
		c, _ := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
		pump(c, make([]byte, 1<<20), true)
		e.sched.RunUntil(e.sched.Now() + 10*time.Minute)
	}
	b.SetBytes(1 << 20)
}

func newEnvB(b *testing.B) *env {
	b.Helper()
	// Mirror newEnv without *testing.T.
	return newEnvCommon(netsim.LinkConfig{Rate: 100_000_000, Delay: time.Millisecond}, Config{})
}
