package tcp

import "time"

// rtoEstimator implements RFC 6298-style retransmission-timeout estimation
// with Karn's algorithm applied by the caller (retransmitted segments are
// never sampled) and exponential backoff on timeout.
type rtoEstimator struct {
	srtt, rttvar time.Duration
	haveSample   bool
	rto          time.Duration
	backoff      uint // consecutive timeouts

	minRTO, maxRTO time.Duration
}

func newRTOEstimator(initial, minRTO, maxRTO time.Duration) *rtoEstimator {
	return &rtoEstimator{rto: initial, minRTO: minRTO, maxRTO: maxRTO}
}

// sample folds a fresh round-trip measurement into the estimate and clears
// any backoff.
func (e *rtoEstimator) sample(rtt time.Duration) {
	if !e.haveSample {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.haveSample = true
	} else {
		diff := e.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		e.rttvar = (3*e.rttvar + diff) / 4
		e.srtt = (7*e.srtt + rtt) / 8
	}
	e.backoff = 0
	e.rto = e.srtt + 4*e.rttvar
	e.clamp()
}

// current returns the RTO including backoff.
func (e *rtoEstimator) current() time.Duration {
	rto := e.rto << e.backoff
	if rto > e.maxRTO {
		return e.maxRTO
	}
	return rto
}

// timedOut doubles the effective RTO for the next retransmission.
func (e *rtoEstimator) timedOut() {
	if e.current() < e.maxRTO {
		e.backoff++
	}
}

// resetBackoff clears exponential backoff (used on failover promotion so a
// new primary retransmits promptly).
func (e *rtoEstimator) resetBackoff() { e.backoff = 0 }

func (e *rtoEstimator) clamp() {
	if e.rto < e.minRTO {
		e.rto = e.minRTO
	}
	if e.rto > e.maxRTO {
		e.rto = e.maxRTO
	}
}
