package tcp

import (
	"time"

	"hydranet/internal/obs"
)

// input processes one received segment. It is the RFC 793 segment-arrival
// event, simplified: no urgent data, no simultaneous open, no window
// scaling.
func (c *Conn) input(seg *Segment) {
	if c.terminated {
		return
	}
	c.stats.SegsReceived++
	c.noteActivity()
	switch c.state {
	case StateSynSent:
		c.inputSynSent(seg)
	case StateSynRcvd:
		c.inputSynRcvd(seg)
	case StateTimeWait:
		// A retransmitted FIN restarts the 2MSL wait and is re-acked.
		if seg.Flags.Has(FlagFIN) {
			c.notePeerRetransmit()
			c.sendAck()
			c.timewait.Reset(c.stack.cfg.TimeWaitDuration)
		}
	default:
		c.inputEstablished(seg)
	}
	// The segment payload aliases a fabric frame that is recycled as soon
	// as this delivery event returns; any range still pending must become a
	// private copy now.
	c.rcv.privatize()
}

func (c *Conn) inputSynSent(seg *Segment) {
	if seg.Flags.Has(FlagRST) {
		if seg.Flags.Has(FlagACK) && seg.Ack == c.iss.Add(1) {
			c.terminate(ErrRefused)
		}
		return
	}
	if !seg.Flags.Has(FlagSYN|FlagACK) || seg.Ack != c.iss.Add(1) {
		return
	}
	c.sndUna = seg.Ack
	c.irs = seg.Seq
	c.rcv.setNext(seg.Seq.Add(1))
	if seg.MSS != 0 && int(seg.MSS) < c.mss {
		c.mss = int(seg.MSS)
	}
	c.cwnd = c.stack.cfg.InitialCwnd * c.mss
	c.sndWnd = int(seg.Window)
	c.state = StateEstablished
	c.rtxCount = 0
	c.rtx.Stop()
	c.sendAck()
	if c.onConnected != nil {
		c.onConnected()
	}
	c.output()
}

func (c *Conn) inputSynRcvd(seg *Segment) {
	if seg.Flags.Has(FlagRST) {
		c.terminate(ErrReset)
		return
	}
	if seg.Flags.Has(FlagSYN) && seg.Seq == c.irs {
		// The client retransmitted its SYN: our SYN-ACK was lost or is
		// being withheld by the send gate.
		c.notePeerRetransmit()
		c.sendSynAck()
		return
	}
	if !seg.Flags.Has(FlagACK) || seg.Ack != c.iss.Add(1) {
		return
	}
	c.sndUna = seg.Ack
	if c.sndNxt == c.iss {
		// Our SYN-ACK was withheld by the ft-TCP send gate, yet the
		// handshake completed system-wide (another replica's copy reached
		// the client). Account the SYN as sent so the cursors stay
		// coherent.
		c.sndNxt = c.iss.Add(1)
		if c.sndNxt.GT(c.sndMax) {
			c.sndMax = c.sndNxt
		}
	}
	c.sndWnd = int(seg.Window)
	c.state = StateEstablished
	c.rtxCount = 0
	c.rtx.Stop()
	if c.acceptFn != nil {
		fn := c.acceptFn
		c.acceptFn = nil
		fn(c)
	}
	if c.onConnected != nil {
		c.onConnected()
	}
	// The handshake ACK may carry data or a FIN; fall through.
	if len(seg.Payload) > 0 || seg.Flags.Has(FlagFIN) {
		c.inputEstablished(seg)
		return
	}
	c.output()
}

// inputEstablished covers ESTABLISHED and all closing states.
func (c *Conn) inputEstablished(seg *Segment) {
	if seg.Flags.Has(FlagRST) {
		c.terminate(ErrReset)
		return
	}
	if seg.Flags.Has(FlagSYN) {
		// A SYN inside an established connection: stale or duplicate.
		c.notePeerRetransmit()
		c.sendAck()
		return
	}
	if seg.Flags.Has(FlagACK) {
		c.processAck(seg)
		if c.terminated {
			return
		}
	}
	if len(seg.Payload) == 0 && !seg.Flags.Has(FlagFIN) && seg.Seq.LT(c.rcv.rcvNxt) {
		// Zero-length segment below rcvNxt: a keepalive probe (or stale
		// duplicate). RFC 793 acceptability demands an ACK in reply. It
		// also feeds the failure estimator: on a HydraNet-FT backup, a
		// stream of unanswered client probes is the only failure signal an
		// idle connection produces (the redirector's liveness probe
		// filters the healthy-idle case).
		c.notePeerRetransmit()
		c.sendAck()
		return
	}
	if len(seg.Payload) > 0 {
		c.processData(seg)
	}
	if seg.Flags.Has(FlagFIN) {
		finSeq := seg.Seq.Add(len(seg.Payload))
		if finSeq.LT(c.rcv.rcvNxt) {
			// Retransmitted FIN already consumed.
			c.notePeerRetransmit()
			c.sendAck()
		} else {
			c.rcv.noteFIN(finSeq)
		}
	}
	c.depositAndAck()
	c.output()
}

func (c *Conn) processAck(seg *Segment) {
	ack := seg.Ack
	switch {
	case ack.GT(c.sndMax):
		// ACK for data we have never sent; re-ack and ignore.
		c.sendAck()
		return
	case ack.GT(c.sndUna):
		acked := ack.Diff(c.sndUna)
		c.sndUna = ack
		if c.sndNxt.LT(ack) {
			// After go-back-N the peer may acknowledge data beyond the
			// pulled-back cursor (it had the earlier copies); skip it.
			c.sndNxt = ack
		}
		c.sndBuf.ackTo(ack)
		c.rtxCount = 0
		// RTT sampling (Karn-guarded: rttPending is cleared on timeout).
		if c.rttPending && ack.GEQ(c.rttSeq) {
			d := c.stack.sched.Now() - c.rttAt
			c.rto.sample(d)
			c.stack.rttHist.Observe(float64(d) / float64(time.Millisecond))
			c.rttPending = false
		}
		if c.inFastRecovery {
			if ack.GEQ(c.recover) {
				c.inFastRecovery = false
				c.cwnd = c.ssthresh
				c.dupAcks = 0
			} else {
				// Partial ACK: retransmit the next hole (NewReno).
				c.retransmitOne()
				c.cwnd = maxInt(c.cwnd-acked+c.mss, c.mss)
			}
		} else {
			c.dupAcks = 0
			if c.cwnd < c.ssthresh {
				c.cwnd += c.mss // slow start
			} else {
				c.cwnd += maxInt(c.mss*c.mss/c.cwnd, 1) // congestion avoidance
			}
		}
		c.sndWnd = int(seg.Window)
		if c.sndWnd > 0 {
			c.persist.Stop()
			c.persistShift = 0
		}
		if c.finSent && c.sndUna == c.sndNxt {
			c.finAcked()
		}
		c.armRTX()
		if b := c.stack.bus; b.Enabled(obs.KindAckProgress) {
			// Seq is the new cumulative ACK point. On the client side of an
			// ft-TCP connection this is the moment the primary's ACK — the
			// end of the multicast→deposit→ack chain — became visible.
			b.Publish(obs.Event{
				Kind: obs.KindAckProgress, Node: c.stack.nodeName(),
				Service: c.local.String(), Conn: c.remote.String(),
				Seq: uint64(uint32(ack)), Size: acked,
			})
		}
		if c.hooks.OnAckProgress != nil {
			c.hooks.OnAckProgress()
		}
		if c.onWritable != nil && c.sndBuf.free() > 0 {
			c.onWritable()
		}
	case ack == c.sndUna:
		c.sndWnd = int(seg.Window)
		if c.sndWnd > 0 {
			c.persist.Stop()
			c.persistShift = 0
		}
		outstanding := c.sndNxt != c.sndUna
		if outstanding && len(seg.Payload) == 0 && !seg.Flags.Has(FlagFIN|FlagSYN) {
			c.dupAcks++
			c.stats.DupAcksSeen++
			switch {
			case c.dupAcks == 3 && !c.inFastRecovery:
				flight := c.sndNxt.Diff(c.sndUna)
				c.ssthresh = maxInt(flight/2, 2*c.mss)
				c.recover = c.sndNxt
				c.inFastRecovery = true
				c.stats.FastRetransmits++
				if b := c.stack.bus; b.Enabled(obs.KindFastRetransmit) {
					b.Publish(obs.Event{
						Kind: obs.KindFastRetransmit, Node: c.stack.nodeName(),
						Conn: c.remote.String(), Seq: uint64(c.sndUna),
					})
				}
				c.retransmitOne()
				c.cwnd = c.ssthresh + 3*c.mss
			case c.inFastRecovery:
				c.cwnd += c.mss // window inflation per extra dup ACK
				c.output()
			}
		}
	default:
		// Old ACK below sndUna: the peer retransmitted an acknowledgment.
		// Ignore (window updates from old ACKs are unsafe).
	}
}

func (c *Conn) processData(seg *Segment) {
	dataEnd := seg.Seq.Add(len(seg.Payload))
	if dataEnd.LEQ(c.rcv.rcvNxt) {
		// Entire segment below rcvNxt: the peer retransmitted because our
		// ACK is missing — lost, or withheld by the deposit gate. This is
		// the signal the HydraNet-FT failure estimator counts.
		c.notePeerRetransmit()
		c.sendAck()
		return
	}
	if seg.Seq.GEQ(c.rcv.rcvNxt.Add(c.rcv.window())) {
		// Entirely beyond our advertised window — typically a zero-window
		// probe. Drop it and re-advertise.
		c.sendAck()
		return
	}
	outOfOrder := seg.Seq.GT(c.rcv.rcvNxt)
	isNew := c.rcv.insert(seg.Seq, seg.Payload)
	if seg.Seq.LT(c.rcv.rcvNxt) || !isNew {
		// Partial overlap below rcvNxt, or data we already hold pending
		// (undeposited because the ft-TCP gate is withholding our ACK):
		// either way the peer is retransmitting.
		c.notePeerRetransmit()
	}
	if outOfOrder {
		// Duplicate ACK to trigger the peer's fast retransmit.
		c.sendAck()
	}
}

// depositAndAck advances the deposit cursor under the ft-TCP gate, consumes
// a pending FIN when it becomes deliverable, and acknowledges progress.
func (c *Conn) depositAndAck() {
	limit, gated := c.depositLimit()
	if !gated {
		limit = c.rcv.contiguousEnd().Add(1) // effectively unbounded
	}
	n := c.rcv.depositUpTo(limit)
	if n > 0 {
		c.stats.BytesReceived += uint64(n)
		if b := c.stack.bus; b.Enabled(obs.KindDeposit) {
			// Seq is the post-deposit cursor: every byte below it has been
			// handed to the application. Span collectors use it to place
			// the deposit instant of each multicast span, and its gating
			// behaviour is the inbound-atomicity rule made visible.
			b.Publish(obs.Event{
				Kind: obs.KindDeposit, Node: c.stack.nodeName(),
				Service: c.local.String(), Conn: c.remote.String(),
				Seq: uint64(uint32(c.rcv.rcvNxt)), Size: n,
			})
		}
	}
	finConsumed := false
	if c.rcv.finReady() {
		finOK := true
		if gated {
			finOK = limit.GT(c.rcv.finSeq)
		}
		if finOK {
			c.rcv.consumeFIN()
			c.peerFINSeen = true
			finConsumed = true
			switch c.state {
			case StateEstablished:
				c.state = StateCloseWait
			case StateFinWait1:
				// Our FIN is unacked and theirs arrived: simultaneous close.
				c.state = StateClosing
			case StateFinWait2:
				c.enterTimeWait()
			}
		}
	}
	if n > 0 || finConsumed {
		if c.hooks.OnDeposit != nil {
			c.hooks.OnDeposit()
		}
		if finConsumed {
			c.sendAck()
		} else {
			c.scheduleAck()
		}
		if c.onReadable != nil {
			c.onReadable()
		}
	}
}

// finAcked handles the peer acknowledging our FIN.
func (c *Conn) finAcked() {
	switch c.state {
	case StateFinWait1:
		c.state = StateFinWait2
		// If the peer's FIN was already consumed while we were in
		// FIN-WAIT-1 we'd be in CLOSING instead.
	case StateClosing:
		c.enterTimeWait()
	case StateLastAck:
		c.terminate(nil)
	}
}

func (c *Conn) notePeerRetransmit() {
	c.stats.PeerRetransmits++
	if c.hooks.OnPeerRetransmit != nil {
		c.hooks.OnPeerRetransmit()
	}
}
