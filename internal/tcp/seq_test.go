package tcp

import (
	"testing"
	"testing/quick"
)

func TestSeqComparisons(t *testing.T) {
	tests := []struct {
		a, b             Seq
		lt, leq, gt, geq bool
	}{
		{0, 1, true, true, false, false},
		{1, 0, false, false, true, true},
		{5, 5, false, true, false, true},
		// Wraparound: 0xffffffff is "before" 0.
		{0xffffffff, 0, true, true, false, false},
		{0, 0xffffffff, false, false, true, true},
		{0xfffffff0, 0x10, true, true, false, false},
	}
	for _, tt := range tests {
		if tt.a.LT(tt.b) != tt.lt || tt.a.LEQ(tt.b) != tt.leq ||
			tt.a.GT(tt.b) != tt.gt || tt.a.GEQ(tt.b) != tt.geq {
			t.Errorf("comparisons for (%d,%d) wrong", tt.a, tt.b)
		}
	}
}

func TestSeqAddDiffInverse(t *testing.T) {
	f := func(base uint32, delta int32) bool {
		s := Seq(base)
		n := int(delta)
		return s.Add(n).Diff(s) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeqAddWraps(t *testing.T) {
	s := Seq(0xfffffffe)
	if s.Add(4) != 2 {
		t.Errorf("Add wrap = %d, want 2", s.Add(4))
	}
	if s.Add(4).Diff(s) != 4 {
		t.Errorf("Diff across wrap = %d, want 4", s.Add(4).Diff(s))
	}
}

func TestSeqOrderingTransitiveNearWindow(t *testing.T) {
	// For any base and small positive offsets a < b, base+a < base+b.
	f := func(base uint32, a16, b16 uint16) bool {
		a, b := int(a16), int(b16)
		if a == b {
			return true
		}
		if a > b {
			a, b = b, a
		}
		s := Seq(base)
		return s.Add(a).LT(s.Add(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxSeq(t *testing.T) {
	a, b := Seq(0xfffffff0), Seq(0x10) // b is after a across the wrap
	if MaxSeq(a, b) != b || MinSeq(a, b) != a {
		t.Error("Min/MaxSeq wrong across wraparound")
	}
	if MaxSeq(b, b) != b || MinSeq(a, a) != a {
		t.Error("Min/MaxSeq wrong for equal values")
	}
}
