package tcp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSendBufferAppendAckRead(t *testing.T) {
	b := newSendBuffer(10)
	b.setBase(100)
	if n := b.append([]byte("hello world!")); n != 10 {
		t.Fatalf("append took %d, want 10 (capacity)", n)
	}
	if got := b.bytesFrom(100, 5); string(got) != "hello" {
		t.Fatalf("bytesFrom(100) = %q", got)
	}
	if got := b.bytesFrom(105, 100); string(got) != " worl" {
		t.Fatalf("bytesFrom(105) = %q", got)
	}
	b.ackTo(105)
	if b.len() != 5 || b.free() != 5 {
		t.Fatalf("after ack len=%d free=%d", b.len(), b.free())
	}
	if got := b.bytesFrom(100, 5); got != nil {
		t.Fatal("acked bytes still readable")
	}
	if b.endSeq() != 110 {
		t.Fatalf("endSeq = %d, want 110", b.endSeq())
	}
}

func TestSendBufferAckBeyondIsClamped(t *testing.T) {
	b := newSendBuffer(10)
	b.setBase(0)
	b.append([]byte("abc"))
	b.ackTo(100) // nonsense ack far beyond; must not panic or corrupt
	if b.len() != 0 {
		t.Fatalf("len = %d, want 0", b.len())
	}
}

func TestSendBufferOldAckIgnored(t *testing.T) {
	b := newSendBuffer(10)
	b.setBase(100)
	b.append([]byte("abcde"))
	b.ackTo(99) // old ack below base
	if b.len() != 5 {
		t.Fatalf("old ack trimmed buffer: len=%d", b.len())
	}
}

func TestReceiverInOrderDeposit(t *testing.T) {
	r := newReceiver(100)
	r.setNext(1000)
	r.insert(1000, []byte("abc"))
	n := r.depositUpTo(Seq(1000).Add(1000))
	if n != 3 {
		t.Fatalf("deposited %d, want 3", n)
	}
	p := make([]byte, 10)
	if got := r.read(p); got != 3 || string(p[:3]) != "abc" {
		t.Fatalf("read %d %q", got, p[:got])
	}
	if r.rcvNxt != 1003 {
		t.Fatalf("rcvNxt = %d, want 1003", r.rcvNxt)
	}
}

func TestReceiverHoleBlocksDeposit(t *testing.T) {
	r := newReceiver(100)
	r.setNext(0)
	r.insert(5, []byte("later"))
	if n := r.depositUpTo(1000); n != 0 {
		t.Fatalf("deposited %d across a hole", n)
	}
	r.insert(0, []byte("early"))
	if n := r.depositUpTo(1000); n != 10 {
		t.Fatalf("deposited %d after filling hole, want 10", n)
	}
	p := make([]byte, 10)
	r.read(p)
	if string(p) != "earlylater" {
		t.Fatalf("stream = %q", p)
	}
}

func TestReceiverDepositGate(t *testing.T) {
	// The HydraNet-FT invariant: bytes at or above the gate stay pending.
	r := newReceiver(100)
	r.setNext(0)
	r.insert(0, []byte("0123456789"))
	if n := r.depositUpTo(4); n != 4 {
		t.Fatalf("gated deposit = %d, want 4", n)
	}
	if r.rcvNxt != 4 {
		t.Fatalf("rcvNxt = %d, want 4 (the ACK we may emit)", r.rcvNxt)
	}
	if n := r.depositUpTo(10); n != 6 {
		t.Fatalf("release deposited %d, want 6", n)
	}
	p := make([]byte, 16)
	n := r.read(p)
	if string(p[:n]) != "0123456789" {
		t.Fatalf("stream = %q", p[:n])
	}
}

func TestReceiverCapacityBoundsDeposit(t *testing.T) {
	r := newReceiver(4)
	r.setNext(0)
	r.insert(0, []byte("abcdefgh"))
	if n := r.depositUpTo(100); n != 4 {
		t.Fatalf("deposited %d, want 4 (socket buffer full)", n)
	}
	if w := r.window(); w != 0 {
		t.Fatalf("window = %d, want 0", w)
	}
	p := make([]byte, 2)
	r.read(p)
	if n := r.depositUpTo(100); n != 2 {
		t.Fatalf("deposited %d after partial read, want 2", n)
	}
}

func TestReceiverDuplicateAndOverlap(t *testing.T) {
	r := newReceiver(100)
	r.setNext(0)
	if isNew := r.insert(0, []byte("abcd")); !isNew {
		t.Fatal("fresh data reported as duplicate")
	}
	r.depositUpTo(100)
	if isNew := r.insert(0, []byte("abcd")); isNew {
		t.Fatal("fully old data reported as new")
	}
	// Overlapping: bytes 2..6 where 0..4 deposited: partially new.
	if isNew := r.insert(2, []byte("cdEF")); !isNew {
		t.Fatal("partially new data reported as duplicate")
	}
	r.depositUpTo(100)
	p := make([]byte, 10)
	n := r.read(p)
	if string(p[:n]) != "abcdEF" {
		t.Fatalf("stream = %q, want abcdEF", p[:n])
	}
}

func TestReceiverFIN(t *testing.T) {
	r := newReceiver(100)
	r.setNext(0)
	r.noteFIN(4)
	r.insert(0, []byte("data"))
	if r.finReady() {
		t.Fatal("FIN ready before data deposited")
	}
	r.depositUpTo(100)
	if !r.finReady() {
		t.Fatal("FIN not ready after deposit")
	}
	r.consumeFIN()
	if r.rcvNxt != 5 {
		t.Fatalf("rcvNxt = %d after FIN, want 5", r.rcvNxt)
	}
}

// Property: any segmentation of a stream, delivered in any order with
// duplicates, deposited under an arbitrary sequence of rising gates,
// reconstructs exactly the original stream.
func TestReceiverPropertyStreamIntegrity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(streamLen uint16, baseRaw uint32, nGates uint8) bool {
		n := int(streamLen)%5000 + 1
		base := Seq(baseRaw)
		stream := make([]byte, n)
		rng.Read(stream)

		// Random segmentation.
		type segm struct {
			off, ln int
		}
		var segs []segm
		for off := 0; off < n; {
			ln := rng.Intn(1200) + 1
			if off+ln > n {
				ln = n - off
			}
			segs = append(segs, segm{off, ln})
			off += ln
		}
		// Shuffle and duplicate.
		order := rng.Perm(len(segs))
		var deliver []segm
		for _, i := range order {
			deliver = append(deliver, segs[i])
			if rng.Intn(4) == 0 {
				deliver = append(deliver, segs[i])
			}
		}

		r := newReceiver(1 << 20)
		r.setNext(base)
		var got []byte
		buf := make([]byte, 4096)
		deposit := func(limit Seq) {
			r.depositUpTo(limit)
			for {
				k := r.read(buf)
				if k == 0 {
					break
				}
				got = append(got, buf[:k]...)
			}
		}
		gateCount := int(nGates)%5 + 1
		for i, sg := range deliver {
			r.insert(base.Add(sg.off), stream[sg.off:sg.off+sg.ln])
			if i%maxInt(len(deliver)/gateCount, 1) == 0 {
				deposit(base.Add(rng.Intn(n + 1)))
			}
		}
		deposit(base.Add(n))
		return bytes.Equal(got, stream)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReceiverWraparoundSequence(t *testing.T) {
	// Stream crossing the 2^32 boundary.
	r := newReceiver(100)
	base := Seq(0xfffffffa)
	r.setNext(base)
	r.insert(base, []byte("0123456789")) // crosses wrap
	if n := r.depositUpTo(base.Add(10)); n != 10 {
		t.Fatalf("deposited %d across wrap, want 10", n)
	}
	if r.rcvNxt != 4 {
		t.Fatalf("rcvNxt = %d, want 4 (wrapped)", uint32(r.rcvNxt))
	}
}
