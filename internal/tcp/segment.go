package tcp

import (
	"errors"
	"fmt"
	"strings"

	"hydranet/internal/ipv4"
)

// Flags is the TCP control-bit field.
type Flags uint8

// Control bits (RFC 793).
const (
	FlagFIN Flags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Has reports whether all bits in f2 are set.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// String renders flags like "SYN|ACK".
func (f Flags) String() string {
	names := []struct {
		bit  Flags
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"},
		{FlagRST, "RST"}, {FlagPSH, "PSH"}, {FlagURG, "URG"},
	}
	var parts []string
	for _, n := range names {
		if f.Has(n.bit) {
			parts = append(parts, n.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// HeaderLen is the size of a TCP header without options.
const HeaderLen = 20

// Segment is a parsed TCP segment.
type Segment struct {
	SrcPort, DstPort uint16
	Seq              Seq
	Ack              Seq
	Flags            Flags
	Window           uint16
	// MSS is the maximum-segment-size option; nonzero only on SYN segments
	// that carry it.
	MSS     uint16
	Payload []byte
}

// Len returns the amount of sequence space the segment occupies: payload
// bytes plus one for SYN and one for FIN.
func (s *Segment) Len() int {
	n := len(s.Payload)
	if s.Flags.Has(FlagSYN) {
		n++
	}
	if s.Flags.Has(FlagFIN) {
		n++
	}
	return n
}

// LastSeq returns the sequence number one past the segment's occupancy.
func (s *Segment) LastSeq() Seq { return s.Seq.Add(s.Len()) }

// String renders the segment for traces.
func (s *Segment) String() string {
	return fmt.Sprintf("%d→%d [%s] seq=%d ack=%d win=%d len=%d",
		s.SrcPort, s.DstPort, s.Flags, uint32(s.Seq), uint32(s.Ack), s.Window, len(s.Payload))
}

// Errors returned by UnmarshalSegment.
var (
	ErrSegTruncated   = errors.New("tcp: truncated segment")
	ErrSegBadChecksum = errors.New("tcp: checksum mismatch")
)

// WireLen returns the marshalled size of the segment: header, MSS option if
// present, and payload.
func (s *Segment) WireLen() int {
	n := HeaderLen + len(s.Payload)
	if s.MSS != 0 {
		n += 4
	}
	return n
}

// Marshal builds the wire format, computing the checksum over the
// pseudo-header given by src and dst.
func (s *Segment) Marshal(src, dst ipv4.Addr) []byte {
	b := make([]byte, s.WireLen())
	s.MarshalInto(b, src, dst)
	return b
}

// MarshalInto serializes the segment into b, which must be exactly
// WireLen() bytes (typically a pooled frame buffer that the IP layer will
// prepend its header to).
func (s *Segment) MarshalInto(b []byte, src, dst ipv4.Addr) {
	hdrLen := HeaderLen
	if s.MSS != 0 {
		hdrLen += 4
	}
	b[0] = byte(s.SrcPort >> 8)
	b[1] = byte(s.SrcPort)
	b[2] = byte(s.DstPort >> 8)
	b[3] = byte(s.DstPort)
	putSeq(b[4:8], s.Seq)
	putSeq(b[8:12], s.Ack)
	b[12] = byte(hdrLen/4) << 4
	b[13] = byte(s.Flags)
	b[14] = byte(s.Window >> 8)
	b[15] = byte(s.Window)
	// Checksum (zero while summing) and urgent pointer (unused). Explicit
	// stores: pooled buffers arrive with stale contents, unlike make().
	b[16], b[17] = 0, 0
	b[18], b[19] = 0, 0
	if s.MSS != 0 {
		b[20] = 2 // kind: MSS
		b[21] = 4 // length
		b[22] = byte(s.MSS >> 8)
		b[23] = byte(s.MSS)
	}
	copy(b[hdrLen:], s.Payload)
	sum := ipv4.PseudoChecksum(src, dst, ipv4.ProtoTCP, b)
	b[16] = byte(sum >> 8)
	b[17] = byte(sum)
}

// UnmarshalSegment parses and validates a wire-format segment.
func UnmarshalSegment(src, dst ipv4.Addr, b []byte) (*Segment, error) {
	if len(b) < HeaderLen {
		return nil, ErrSegTruncated
	}
	hdrLen := int(b[12]>>4) * 4
	if hdrLen < HeaderLen || len(b) < hdrLen {
		return nil, ErrSegTruncated
	}
	if ipv4.PseudoChecksum(src, dst, ipv4.ProtoTCP, b) != 0 {
		return nil, ErrSegBadChecksum
	}
	s := &Segment{
		SrcPort: uint16(b[0])<<8 | uint16(b[1]),
		DstPort: uint16(b[2])<<8 | uint16(b[3]),
		Seq:     getSeq(b[4:8]),
		Ack:     getSeq(b[8:12]),
		Flags:   Flags(b[13]),
		Window:  uint16(b[14])<<8 | uint16(b[15]),
		Payload: b[hdrLen:],
	}
	// Parse options for MSS.
	opts := b[HeaderLen:hdrLen]
	for i := 0; i < len(opts); {
		switch opts[i] {
		case 0: // end of options
			i = len(opts)
		case 1: // NOP
			i++
		case 2: // MSS
			if i+4 <= len(opts) && opts[i+1] == 4 {
				s.MSS = uint16(opts[i+2])<<8 | uint16(opts[i+3])
			}
			i += 4
		default:
			if i+1 >= len(opts) || opts[i+1] < 2 {
				i = len(opts)
			} else {
				i += int(opts[i+1])
			}
		}
	}
	return s, nil
}

func putSeq(b []byte, s Seq) {
	b[0] = byte(s >> 24)
	b[1] = byte(s >> 16)
	b[2] = byte(s >> 8)
	b[3] = byte(s)
}

func getSeq(b []byte) Seq {
	return Seq(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
}
