package tcp

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/netsim"
	"hydranet/internal/sim"
)

func establishedPair(t *testing.T, cfg Config) (*env, *Conn, *Conn) {
	t.Helper()
	e := newEnv(t, netsim.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}, cfg)
	l, err := e.server.Listen(0, 80)
	if err != nil {
		t.Fatal(err)
	}
	var srv *Conn
	l.SetAcceptFunc(func(c *Conn) { srv = c })
	cli, err := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	e.sched.RunUntil(time.Second)
	if srv == nil || cli.State() != StateEstablished {
		t.Fatal("setup: connection not established")
	}
	return e, cli, srv
}

func TestHalfCloseServerKeepsSending(t *testing.T) {
	e, cli, srv := establishedPair(t, Config{TimeWaitDuration: time.Second})
	got := attachSink(cli)
	// Client half-closes; the server may keep sending.
	cli.Close()
	e.sched.RunUntil(2 * time.Second)
	if cli.State() != StateFinWait2 {
		t.Fatalf("client state = %v, want FIN-WAIT-2", cli.State())
	}
	if !srv.PeerClosed() {
		t.Fatal("server did not see client FIN")
	}
	srv.Write([]byte("parting data"))
	e.sched.RunUntil(4 * time.Second)
	if string(got.data) != "parting data" {
		t.Fatalf("data after half-close = %q", got.data)
	}
	srv.Close()
	e.sched.RunUntil(10 * time.Second)
	if e.client.NumConns()+e.server.NumConns() != 0 {
		t.Fatal("connections not reaped after full close")
	}
}

func TestSimultaneousClose(t *testing.T) {
	e, cli, srv := establishedPair(t, Config{TimeWaitDuration: time.Second})
	var cliErr, srvErr error
	cliDone, srvDone := false, false
	cli.OnClosed(func(err error) { cliDone, cliErr = true, err })
	srv.OnClosed(func(err error) { srvDone, srvErr = true, err })
	// Close both ends in the same instant: FINs cross in flight.
	cli.Close()
	srv.Close()
	e.sched.RunUntil(30 * time.Second)
	if !cliDone || !srvDone {
		t.Fatalf("closed: client=%v server=%v", cliDone, srvDone)
	}
	if cliErr != nil || srvErr != nil {
		t.Fatalf("simultaneous close errors: %v / %v", cliErr, srvErr)
	}
}

func TestAbortSendsRST(t *testing.T) {
	e, cli, srv := establishedPair(t, Config{})
	var srvErr error
	srv.OnClosed(func(err error) { srvErr = err })
	cli.Abort()
	e.sched.RunUntil(e.sched.Now() + time.Second)
	if !errors.Is(srvErr, ErrReset) {
		t.Fatalf("server err = %v, want ErrReset", srvErr)
	}
	if e.client.NumConns()+e.server.NumConns() != 0 {
		t.Fatal("aborted connections not reaped")
	}
}

func TestListenerCloseRefusesNewConns(t *testing.T) {
	e := newEnv(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	l, _ := e.server.Listen(0, 80)
	l.SetAcceptFunc(func(c *Conn) {})
	l.Close()
	c, _ := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	var err error
	c.OnClosed(func(e error) { err = e })
	e.sched.RunUntil(5 * time.Second)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused after listener close", err)
	}
}

func TestListenBusy(t *testing.T) {
	e := newEnv(t, netsim.LinkConfig{}, Config{})
	if _, err := e.server.Listen(0, 80); err != nil {
		t.Fatal(err)
	}
	if _, err := e.server.Listen(0, 80); !errors.Is(err, ErrListenBusy) {
		t.Fatalf("err = %v, want ErrListenBusy", err)
	}
	// A specific-address listener on the same port coexists.
	if _, err := e.server.Listen(e.serverAddr, 80); err != nil {
		t.Fatalf("specific-address listen failed: %v", err)
	}
}

func TestConnectNoRoute(t *testing.T) {
	sched := sim.NewScheduler(1)
	nw := netsim.New(sched)
	n := nw.AddNode(netsim.NodeConfig{})
	st := NewStack(ipv4.NewStack(n, sched), Config{})
	if _, err := st.Connect(0, Endpoint{Addr: ipv4.MustParseAddr("1.2.3.4"), Port: 80}); err == nil {
		t.Fatal("Connect without a route succeeded")
	}
}

func TestDelayedAckTimer(t *testing.T) {
	// With delayed ACKs, a single small segment is acknowledged by the
	// timer, not immediately.
	cfg := Config{DelayedAckTimeout: 200 * time.Millisecond}
	e, cli, _ := establishedPair(t, cfg)
	var ackTimes []time.Duration
	e.client.SetTrace(func(dir string, _, _ Endpoint, seg *Segment) {
		if dir == "in" && seg.Flags.Has(FlagACK) && len(seg.Payload) == 0 {
			ackTimes = append(ackTimes, e.sched.Now())
		}
	})
	start := e.sched.Now()
	cli.Write([]byte("one small segment"))
	e.sched.RunUntil(start + 2*time.Second)
	if len(ackTimes) == 0 {
		t.Fatal("no ACK arrived")
	}
	delay := ackTimes[0] - start
	if delay < 150*time.Millisecond {
		t.Fatalf("ACK after %v, expected the ~200ms delayed-ACK timer", delay)
	}
}

func TestSecondSegmentAcksImmediately(t *testing.T) {
	cfg := Config{DelayedAckTimeout: 200 * time.Millisecond}
	e, cli, _ := establishedPair(t, cfg)
	var ackTimes []time.Duration
	e.client.SetTrace(func(dir string, _, _ Endpoint, seg *Segment) {
		if dir == "in" && seg.Flags.Has(FlagACK) && len(seg.Payload) == 0 {
			ackTimes = append(ackTimes, e.sched.Now())
		}
	})
	cli.SetNoDelay(true)
	start := e.sched.Now()
	cli.Write([]byte("first"))
	cli.Write([]byte("second"))
	e.sched.RunUntil(start + 2*time.Second)
	if len(ackTimes) == 0 {
		t.Fatal("no ACK arrived")
	}
	if delay := ackTimes[0] - start; delay > 100*time.Millisecond {
		t.Fatalf("ACK after %v; the second segment should force an immediate ACK", delay)
	}
}

func TestGarbageFramesDoNotPanic(t *testing.T) {
	e, cli, _ := establishedPair(t, Config{})
	rng := rand.New(rand.NewSource(99))
	node := e.server.IP()
	for i := 0; i < 2000; i++ {
		n := rng.Intn(100)
		frame := make([]byte, n)
		rng.Read(frame)
		node.Node() // keep the stack reachable
		e.server.IP().HandleFrame(0, frame)
	}
	e.sched.RunUntil(10 * time.Second)
	if e.server.Stats().BadSegments == 0 && e.server.IP().Stats().BadHeader == 0 {
		t.Error("garbage produced no error counts")
	}
	_ = cli
}

func TestRandomSegmentsDoNotPanic(t *testing.T) {
	// Checksummed but otherwise random segments fired at an established
	// connection: the state machine must never panic; the connection may
	// legitimately die (RST flag), but only cleanly.
	e, cli, srv := establishedPair(t, Config{})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		seg := &Segment{
			SrcPort: cli.Local().Port,
			DstPort: 80,
			Seq:     Seq(rng.Uint32()),
			Ack:     Seq(rng.Uint32()),
			Flags:   Flags(rng.Intn(64)) &^ FlagRST, // RST would end the test trivially
			Window:  uint16(rng.Intn(65536)),
		}
		if rng.Intn(2) == 0 {
			seg.Payload = make([]byte, rng.Intn(1000))
			rng.Read(seg.Payload)
		}
		b := seg.Marshal(cli.Local().Addr, e.serverAddr)
		pkt := &ipv4.Packet{
			Header: ipv4.Header{
				TTL: 4, Proto: ipv4.ProtoTCP,
				Src: cli.Local().Addr, Dst: e.serverAddr,
				ID: uint16(i), TotalLen: ipv4.HeaderLen + len(b),
			},
			Payload: b,
		}
		e.server.DeliverIP(pkt)
		if i%100 == 0 {
			e.sched.RunUntil(e.sched.Now() + time.Millisecond)
		}
	}
	e.sched.RunUntil(e.sched.Now() + 10*time.Second)
	// The server connection object must be in a coherent state.
	switch srv.State() {
	case StateEstablished, StateClosed, StateCloseWait, StateFinWait1,
		StateFinWait2, StateClosing, StateLastAck, StateTimeWait:
	default:
		t.Fatalf("server in impossible state %v", srv.State())
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	e := newEnv(t, netsim.LinkConfig{}, Config{})
	l, _ := e.server.Listen(0, 80)
	l.SetAcceptFunc(func(c *Conn) {})
	seen := map[uint16]bool{}
	for i := 0; i < 50; i++ {
		c, err := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
		if err != nil {
			t.Fatal(err)
		}
		if seen[c.Local().Port] {
			t.Fatalf("ephemeral port %d reused while active", c.Local().Port)
		}
		seen[c.Local().Port] = true
	}
}

func TestWriteAfterCloseRejected(t *testing.T) {
	e, cli, _ := establishedPair(t, Config{})
	cli.Close()
	if n := cli.Write([]byte("too late")); n != 0 {
		t.Fatalf("Write after Close accepted %d bytes", n)
	}
	e.sched.RunUntil(time.Minute)
}

func TestStackStatsProgress(t *testing.T) {
	e, cli, _ := establishedPair(t, Config{})
	cli.Write([]byte("count me"))
	e.sched.RunUntil(5 * time.Second)
	cs, ss := e.client.Stats(), e.server.Stats()
	if cs.SegsOut == 0 || cs.SegsIn == 0 || ss.SegsOut == 0 || ss.SegsIn == 0 {
		t.Fatalf("stats not counting: client=%+v server=%+v", cs, ss)
	}
}
