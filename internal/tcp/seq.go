package tcp

// Seq is a TCP sequence number. All comparisons are modulo 2^32 (RFC 793
// "serial number arithmetic"): a is "less than" b when the signed distance
// from a to b is positive.
type Seq uint32

// Add advances the sequence number by n, wrapping modulo 2^32.
func (s Seq) Add(n int) Seq { return s + Seq(uint32(int32(n))) }

// Diff returns the signed distance from other to s (s - other), correct
// across wraparound for distances within ±2^31.
func (s Seq) Diff(other Seq) int { return int(int32(s - other)) }

// LT reports s < other in sequence space.
func (s Seq) LT(other Seq) bool { return int32(s-other) < 0 }

// LEQ reports s <= other in sequence space.
func (s Seq) LEQ(other Seq) bool { return int32(s-other) <= 0 }

// GT reports s > other in sequence space.
func (s Seq) GT(other Seq) bool { return int32(s-other) > 0 }

// GEQ reports s >= other in sequence space.
func (s Seq) GEQ(other Seq) bool { return int32(s-other) >= 0 }

// MaxSeq returns the later of a and b in sequence space.
func MaxSeq(a, b Seq) Seq {
	if a.GEQ(b) {
		return a
	}
	return b
}

// MinSeq returns the earlier of a and b in sequence space.
func MinSeq(a, b Seq) Seq {
	if a.LEQ(b) {
		return a
	}
	return b
}
