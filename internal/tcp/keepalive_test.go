package tcp

import (
	"errors"
	"testing"
	"time"
)

func TestKeepAliveKeepsHealthyConnAlive(t *testing.T) {
	e, cli, srv := establishedPair(t, Config{})
	cli.SetKeepAlive(2*time.Second, 500*time.Millisecond, 3)
	var cliErr error
	cliClosed := false
	cli.OnClosed(func(err error) { cliClosed, cliErr = true, err })
	// A long idle period: probes flow, the peer answers, nothing dies.
	e.sched.RunUntil(e.sched.Now() + time.Minute)
	if cliClosed {
		t.Fatalf("healthy idle connection died: %v", cliErr)
	}
	if srv.State() != StateEstablished || cli.State() != StateEstablished {
		t.Fatalf("states: %v / %v", cli.State(), srv.State())
	}
}

func TestKeepAliveDetectsDeadPeer(t *testing.T) {
	e, cli, _ := establishedPair(t, Config{})
	cli.SetKeepAlive(2*time.Second, 500*time.Millisecond, 3)
	var cliErr error
	cli.OnClosed(func(err error) { cliErr = err })
	// Partition: the server disappears silently.
	e.link.SetLoss(1.0)
	e.sched.RunUntil(e.sched.Now() + time.Minute)
	if !errors.Is(cliErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout from keepalive", cliErr)
	}
}

func TestKeepAliveDisabled(t *testing.T) {
	e, cli, _ := establishedPair(t, Config{})
	cli.SetKeepAlive(time.Second, 200*time.Millisecond, 2)
	cli.DisableKeepAlive()
	e.link.SetLoss(1.0)
	closed := false
	cli.OnClosed(func(error) { closed = true })
	e.sched.RunUntil(e.sched.Now() + 30*time.Second)
	if closed {
		t.Fatal("disabled keepalive still killed an idle connection")
	}
}

func TestKeepAliveResetByTraffic(t *testing.T) {
	e, cli, srv := establishedPair(t, Config{})
	cli.SetKeepAlive(3*time.Second, 500*time.Millisecond, 2)
	probes := 0
	e.server.SetTrace(func(dir string, _, _ Endpoint, seg *Segment) {
		if dir == "in" && len(seg.Payload) == 0 && seg.Flags == FlagACK &&
			seg.Seq.LT(srv.RcvNxt()) {
			probes++
		}
	})
	// Keep the connection busy more often than the idle threshold.
	for i := 0; i < 10; i++ {
		cli.Write([]byte("busy"))
		e.sched.RunUntil(e.sched.Now() + 2*time.Second)
	}
	if probes != 0 {
		t.Fatalf("%d keepalive probes despite constant traffic", probes)
	}
}

func TestIdleSince(t *testing.T) {
	e, cli, srv := establishedPair(t, Config{})
	start := e.sched.Now()
	e.sched.RunUntil(start + 10*time.Second)
	if got := cli.IdleSince(); got < 9*time.Second {
		t.Fatalf("IdleSince = %v after 10s of silence", got)
	}
	srv.Write([]byte("wake up"))
	e.sched.RunUntil(e.sched.Now() + time.Second)
	if got := cli.IdleSince(); got > time.Second {
		t.Fatalf("IdleSince = %v right after traffic", got)
	}
}
