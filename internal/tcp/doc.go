// Package tcp implements a from-scratch TCP over the simulated IPv4 stack,
// providing both ordinary endpoints (clients, plain servers) and the
// extension points HydraNet-FT hooks into on server replicas.
//
// Implemented: the RFC 793 state machine (LISTEN through TIME-WAIT),
// three-way handshake with MSS negotiation, sliding-window flow control
// with zero-window probing, cumulative acknowledgments with delayed-ACK
// policy, RFC 6298-style RTO estimation with Karn's rule and exponential
// backoff, go-back-N retransmission on timeout (classic BSD behaviour),
// fast retransmit/fast recovery on triple duplicate ACKs, slow start and
// congestion avoidance (Reno-style with a NewReno-like partial-ACK repair),
// Nagle (switchable), keepalive probing, RST generation and handling, and
// orderly close including simultaneous close.
//
// Deliberately omitted, as on the paper's late-90s FreeBSD: window scaling,
// SACK, timestamps, ECN, and urgent data.
//
// The ft-TCP extension points (ConnHooks) let the HydraNet-FT core divert
// outbound segments of backup replicas into the acknowledgment channel,
// gate deposits (and thereby acknowledgments) and sends on chain state, and
// observe the retransmission signals its failure estimator counts. Two
// deviations from textbook TCP exist specifically for replica consistency:
// the ISS derives deterministically from the connection 4-tuple, and
// SetSegmentPerWrite preserves application write boundaries for the
// paper's measurement methodology.
package tcp
