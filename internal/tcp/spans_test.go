package tcp

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"hydranet/internal/obs"
)

const (
	spanSvc    = "10.0.0.9:80"
	spanClient = "10.0.0.1:4000"
)

func spanBus() (*time.Duration, *obs.Bus) {
	now := new(time.Duration)
	return now, obs.NewBus(func() time.Duration { return *now })
}

// publishAt stamps the event with the current clock via the bus.
func publishAt(now *time.Duration, b *obs.Bus, at time.Duration, e obs.Event) {
	*now = at
	b.Publish(e)
}

// TestSpanCollectorAssemblesTimeline drives the collector with the exact
// event sequence an inbound-atomic two-replica chain produces for one
// multicast segment: fan-out, tail (s1) deposit, chain report arriving at
// s0, s0's gated deposit, and finally the client's ACK point passing the
// span.
func TestSpanCollectorAssemblesTimeline(t *testing.T) {
	now, bus := spanBus()
	sc := NewSpanCollector(bus, 0)

	// Two data segments fanned out (1000 bytes each, first byte seq 1000).
	publishAt(now, bus, 10*time.Millisecond,
		obs.Event{Kind: obs.KindMulticast, Node: "rd", Service: spanSvc, Conn: spanClient, Seq: 1000})
	publishAt(now, bus, 11*time.Millisecond,
		obs.Event{Kind: obs.KindMulticast, Node: "rd", Service: spanSvc, Conn: spanClient, Seq: 2000})

	// The chain tail deposits the first segment: its receive cursor passes
	// seq 2000, covering span 1000 but not span 2000.
	publishAt(now, bus, 12*time.Millisecond,
		obs.Event{Kind: obs.KindDeposit, Node: "s1", Service: spanSvc, Conn: spanClient, Seq: 2000, Size: 1000})
	// s0 hears about it on the acknowledgment channel...
	publishAt(now, bus, 13*time.Millisecond,
		obs.Event{Kind: obs.KindChainRecv, Node: "s0", Service: spanSvc, Conn: spanClient, Ack: 2000})
	// ...and only then deposits (inbound atomicity).
	publishAt(now, bus, 14*time.Millisecond,
		obs.Event{Kind: obs.KindDeposit, Node: "s0", Service: spanSvc, Conn: spanClient, Seq: 2000, Size: 1000})
	// The client's cumulative ACK point passes the span. On the client's
	// conn the local endpoint is the client, so Service/Conn are inverted.
	publishAt(now, bus, 15*time.Millisecond,
		obs.Event{Kind: obs.KindAckProgress, Node: "client", Service: spanClient, Conn: spanSvc, Seq: 2000, Size: 1000})

	tls := sc.Timelines()
	if len(tls) != 1 {
		t.Fatalf("timelines = %d, want 1", len(tls))
	}
	tl := tls[0]
	if tl.Service != spanSvc || tl.Client != spanClient {
		t.Fatalf("timeline keyed %q/%q", tl.Service, tl.Client)
	}
	if len(tl.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tl.Spans))
	}
	s := tl.Spans[0]
	if s.Seq != 1000 || s.MulticastAt != 10*time.Millisecond {
		t.Fatalf("span 0 = %+v", s)
	}
	if h := s.Hops["s1"]; h == nil || h.DepositAt != 12*time.Millisecond || h.ChainArrivalAt != 0 {
		t.Fatalf("tail hop = %+v", s.Hops["s1"])
	}
	if h := s.Hops["s0"]; h == nil || h.ChainArrivalAt != 13*time.Millisecond || h.DepositAt != 14*time.Millisecond {
		t.Fatalf("head hop = %+v", s.Hops["s0"])
	}
	if s.ClientAckAt != 15*time.Millisecond {
		t.Fatalf("client ack at %v", s.ClientAckAt)
	}
	// The second span saw nothing yet.
	if s2 := tl.Spans[1]; len(s2.Hops) != 0 || s2.ClientAckAt != 0 {
		t.Fatalf("span 1 touched prematurely: %+v", s2)
	}

	// Derived histograms: two deposit stalls (12−10 = 2 ms at the tail,
	// 14−10 = 4 ms at the head) and one ack-chain hop lag (13−12 = 1 ms).
	ds := sc.DepositStall()
	if ds.Count != 2 || ds.Min != 2 || ds.Max != 4 {
		t.Fatalf("deposit stall = %+v", ds)
	}
	al := sc.AckChainLag()
	if al.Count != 1 || al.Min != 1 || al.Max != 1 {
		t.Fatalf("ack-chain lag = %+v", al)
	}
}

// TestSpanCollectorRetransmitsDedupe: a multicast whose sequence number does
// not advance is a redirector copy of a client retransmission — counted, not
// re-spanned.
func TestSpanCollectorRetransmitsDedupe(t *testing.T) {
	now, bus := spanBus()
	sc := NewSpanCollector(bus, 0)
	publishAt(now, bus, time.Millisecond,
		obs.Event{Kind: obs.KindMulticast, Service: spanSvc, Conn: spanClient, Seq: 1000})
	publishAt(now, bus, 2*time.Millisecond,
		obs.Event{Kind: obs.KindMulticast, Service: spanSvc, Conn: spanClient, Seq: 1000})
	publishAt(now, bus, 3*time.Millisecond,
		obs.Event{Kind: obs.KindMulticast, Service: spanSvc, Conn: spanClient, Seq: 2000})

	tl := sc.Timelines()[0]
	if len(tl.Spans) != 2 || tl.RetransmitMulticasts != 1 {
		t.Fatalf("spans = %d, rexmit = %d; want 2, 1", len(tl.Spans), tl.RetransmitMulticasts)
	}
	// The original span's timestamp is the first fan-out, not the copy's.
	if tl.Spans[0].MulticastAt != time.Millisecond {
		t.Fatalf("span 0 multicast at %v", tl.Spans[0].MulticastAt)
	}
}

// TestSpanCollectorIgnoresNonSpanEvents: pure ACKs (no Seq stamped by the
// redirector), foreign connections, and deposits for unknown conns must not
// create or touch spans.
func TestSpanCollectorIgnoresNonSpanEvents(t *testing.T) {
	now, bus := spanBus()
	sc := NewSpanCollector(bus, 0)

	// Pure ACK multicast: the redirector leaves Seq zero.
	publishAt(now, bus, time.Millisecond,
		obs.Event{Kind: obs.KindMulticast, Service: spanSvc, Conn: spanClient})
	// Deposit for a connection never multicast.
	publishAt(now, bus, 2*time.Millisecond,
		obs.Event{Kind: obs.KindDeposit, Node: "s0", Service: "10.9.9.9:1", Conn: "10.8.8.8:2", Seq: 500})
	// Ack progress on the service side (non-inverted key) must not match.
	publishAt(now, bus, 3*time.Millisecond,
		obs.Event{Kind: obs.KindMulticast, Service: spanSvc, Conn: spanClient, Seq: 1000})
	publishAt(now, bus, 4*time.Millisecond,
		obs.Event{Kind: obs.KindAckProgress, Node: "s0", Service: spanSvc, Conn: spanClient, Seq: 2000})

	tls := sc.Timelines()
	if len(tls) != 1 || len(tls[0].Spans) != 1 {
		t.Fatalf("timelines = %+v", tls)
	}
	if tls[0].Spans[0].ClientAckAt != 0 {
		t.Fatal("service-side ack-progress matched the client slot")
	}
}

func TestSpanCollectorBoundsSpansPerConn(t *testing.T) {
	now, bus := spanBus()
	sc := NewSpanCollector(bus, 2)
	for i := 0; i < 5; i++ {
		publishAt(now, bus, time.Duration(i+1)*time.Millisecond,
			obs.Event{Kind: obs.KindMulticast, Service: spanSvc, Conn: spanClient, Seq: uint64(1000 * (i + 1))})
	}
	if got := len(sc.Timelines()[0].Spans); got != 2 {
		t.Fatalf("spans = %d, want 2", got)
	}
	if sc.DroppedSpans() != 3 {
		t.Fatalf("dropped = %d, want 3", sc.DroppedSpans())
	}
}

// TestSpanCollectorSeqWraparound: sequence comparison is mod-2^32 (Seq
// arithmetic), so spans spanning the wrap point still resolve.
func TestSpanCollectorSeqWraparound(t *testing.T) {
	now, bus := spanBus()
	sc := NewSpanCollector(bus, 0)
	high := uint64(0xffffff00)
	publishAt(now, bus, time.Millisecond,
		obs.Event{Kind: obs.KindMulticast, Service: spanSvc, Conn: spanClient, Seq: high})
	// Deposit cursor wrapped past zero: 0x100 covers 0xffffff00.
	publishAt(now, bus, 2*time.Millisecond,
		obs.Event{Kind: obs.KindDeposit, Node: "s1", Service: spanSvc, Conn: spanClient, Seq: 0x100, Size: 512})
	s := sc.Timelines()[0].Spans[0]
	if h := s.Hops["s1"]; h == nil || h.DepositAt != 2*time.Millisecond {
		t.Fatalf("wrapped deposit not matched: %+v", s.Hops)
	}
}

func TestSpanCollectorWriteJSON(t *testing.T) {
	now, bus := spanBus()
	sc := NewSpanCollector(bus, 0)
	publishAt(now, bus, time.Millisecond,
		obs.Event{Kind: obs.KindMulticast, Service: spanSvc, Conn: spanClient, Seq: 1000})
	publishAt(now, bus, 2*time.Millisecond,
		obs.Event{Kind: obs.KindDeposit, Node: "s1", Service: spanSvc, Conn: spanClient, Seq: 2000, Size: 1000})

	var buf bytes.Buffer
	if err := sc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Timelines []struct {
			Service string `json:"service"`
			Spans   []struct {
				Seq      uint64 `json:"seq"`
				Replicas map[string]struct {
					DepositAt int64 `json:"deposit_at"`
				} `json:"replicas"`
			} `json:"spans"`
		} `json:"timelines"`
		DepositStallMS struct {
			Count uint64 `json:"count"`
		} `json:"deposit_stall_ms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Timelines) != 1 || out.Timelines[0].Service != spanSvc {
		t.Fatalf("timelines JSON = %+v", out.Timelines)
	}
	sp := out.Timelines[0].Spans[0]
	if sp.Seq != 1000 || sp.Replicas["s1"].DepositAt != int64(2*time.Millisecond) {
		t.Fatalf("span JSON = %+v", sp)
	}
	if out.DepositStallMS.Count != 1 {
		t.Fatalf("histogram JSON = %+v", out.DepositStallMS)
	}
}
