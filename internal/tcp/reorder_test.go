package tcp

import (
	"bytes"
	"testing"
	"time"

	"hydranet/internal/netsim"
)

func TestTransferOverReorderingLink(t *testing.T) {
	// Heavy jitter reorders segments; the reassembly queue must restore
	// the stream exactly, and spurious fast retransmits must not corrupt
	// anything.
	e := newEnv(t, netsim.LinkConfig{
		Rate: 10_000_000, Delay: time.Millisecond, Jitter: 8 * time.Millisecond,
	}, Config{})
	l, _ := e.server.Listen(0, 80)
	var srv *sink
	l.SetAcceptFunc(func(c *Conn) { srv = attachSink(c) })
	payload := pattern(300_000)
	c, err := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	pump(c, payload, true)
	e.sched.RunUntil(10 * time.Minute)
	if srv == nil || !bytes.Equal(srv.data, payload) {
		got := 0
		if srv != nil {
			got = len(srv.data)
		}
		t.Fatalf("reordered transfer: %d of %d bytes", got, len(payload))
	}
}

func TestReorderingPlusLoss(t *testing.T) {
	e := newEnv(t, netsim.LinkConfig{
		Rate: 10_000_000, Delay: 2 * time.Millisecond,
		Jitter: 6 * time.Millisecond, Loss: 0.03,
	}, Config{})
	l, _ := e.server.Listen(0, 80)
	var srv *sink
	l.SetAcceptFunc(func(c *Conn) { srv = attachSink(c) })
	payload := pattern(200_000)
	c, _ := e.client.Connect(0, Endpoint{Addr: e.serverAddr, Port: 80})
	pump(c, payload, true)
	e.sched.RunUntil(15 * time.Minute)
	if srv == nil || !bytes.Equal(srv.data, payload) {
		got := 0
		if srv != nil {
			got = len(srv.data)
		}
		t.Fatalf("jitter+loss transfer: %d of %d bytes", got, len(payload))
	}
}
