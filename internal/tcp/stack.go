package tcp

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/metrics"
	"hydranet/internal/obs"
	"hydranet/internal/sim"
)

// Config tunes a TCP stack. The zero value is completed by DefaultConfig.
type Config struct {
	// MSS is the maximum segment size advertised and used. Default 1460
	// (Ethernet MTU minus IP and TCP headers).
	MSS int
	// SendBufSize and RecvBufSize are the socket buffer capacities.
	// Defaults 32768.
	SendBufSize int
	RecvBufSize int
	// InitialRTO, MinRTO and MaxRTO bound the retransmission timeout.
	// Defaults 1s / 500ms / 60s — BSD-era conservative values; the paper
	// attributes most FT-mode overhead to client timeout waits.
	InitialRTO time.Duration
	MinRTO     time.Duration
	MaxRTO     time.Duration
	// DelayedAckTimeout is the delayed-ACK timer; zero or negative
	// acknowledges every data segment immediately.
	DelayedAckTimeout time.Duration
	// TimeWaitDuration is the 2MSL TIME-WAIT hold. Default 30s.
	TimeWaitDuration time.Duration
	// InitialCwnd is the initial congestion window in segments. Default 2.
	InitialCwnd int
	// MaxRetries is how many consecutive timeouts abort a connection.
	// Default 12.
	MaxRetries int
	// ISS generates initial send sequence numbers. The default derives the
	// ISS from the connection 4-tuple, which makes all replicas of a
	// HydraNet-FT service agree on sequence numbers for a given client —
	// the property transparent failover relies on (see DESIGN.md).
	ISS func(local, remote Endpoint) Seq
}

// DefaultConfig fills unset fields with defaults.
func DefaultConfig(cfg Config) Config {
	if cfg.MSS == 0 {
		cfg.MSS = 1460
	}
	if cfg.SendBufSize == 0 {
		cfg.SendBufSize = 32768
	}
	if cfg.RecvBufSize == 0 {
		cfg.RecvBufSize = 32768
	}
	if cfg.InitialRTO == 0 {
		cfg.InitialRTO = time.Second
	}
	if cfg.MinRTO == 0 {
		cfg.MinRTO = 500 * time.Millisecond
	}
	if cfg.MaxRTO == 0 {
		cfg.MaxRTO = 60 * time.Second
	}
	if cfg.TimeWaitDuration == 0 {
		cfg.TimeWaitDuration = 30 * time.Second
	}
	if cfg.InitialCwnd == 0 {
		cfg.InitialCwnd = 2
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 12
	}
	if cfg.ISS == nil {
		cfg.ISS = TupleISS
	}
	return cfg
}

// TupleISS derives a deterministic initial sequence number from the
// connection 4-tuple.
func TupleISS(local, remote Endpoint) Seq {
	h := fnv.New32a()
	var b [12]byte
	b[0] = byte(local.Addr >> 24)
	b[1] = byte(local.Addr >> 16)
	b[2] = byte(local.Addr >> 8)
	b[3] = byte(local.Addr)
	b[4] = byte(local.Port >> 8)
	b[5] = byte(local.Port)
	b[6] = byte(remote.Addr >> 24)
	b[7] = byte(remote.Addr >> 16)
	b[8] = byte(remote.Addr >> 8)
	b[9] = byte(remote.Addr)
	b[10] = byte(remote.Port >> 8)
	b[11] = byte(remote.Port)
	h.Write(b[:])
	return Seq(h.Sum32())
}

// StackStats counts stack-level events.
type StackStats struct {
	SegsIn      uint64
	SegsOut     uint64
	BadSegments uint64
	RSTsSent    uint64
	NoSocket    uint64
}

type connKey struct {
	local, remote Endpoint
}

// TraceFunc observes segments at the stack boundary: dir is "in" or "out".
type TraceFunc func(dir string, local, remote Endpoint, seg *Segment)

// Stack is the per-node TCP layer.
type Stack struct {
	ip    *ipv4.Stack
	sched *sim.Scheduler
	cfg   Config

	conns     map[connKey]*Conn
	listeners map[Endpoint]*Listener
	ephemeral uint16
	stats     StackStats
	trace     TraceFunc
	bus       *obs.Bus

	// rttHist accumulates smoothed-round-trip samples (milliseconds) from
	// every connection's Karn-guarded RTT measurements.
	rttHist metrics.Histogram
	// closedTotals accumulates the ConnStats of connections that have been
	// torn down, so ConnTotals covers the stack's whole history.
	closedTotals ConnStats
}

var _ ipv4.ProtocolHandler = (*Stack)(nil)

// NewStack creates the TCP layer and registers it with the IP stack.
func NewStack(ip *ipv4.Stack, cfg Config) *Stack {
	s := &Stack{
		ip:        ip,
		sched:     ip.Scheduler(),
		cfg:       DefaultConfig(cfg),
		conns:     make(map[connKey]*Conn),
		listeners: make(map[Endpoint]*Listener),
		ephemeral: 49152,
	}
	ip.RegisterProto(ipv4.ProtoTCP, s)
	return s
}

// Config returns the stack's effective configuration.
func (s *Stack) Config() Config { return s.cfg }

// Scheduler returns the scheduler driving the stack.
func (s *Stack) Scheduler() *sim.Scheduler { return s.sched }

// Rebind moves the stack onto another scheduler — the node's domain
// scheduler after a parallel partition. Call before any connections or
// accepted traffic exist: established state carries armed timers on the old
// scheduler, so a stack with live connections panics.
func (s *Stack) Rebind(sched *sim.Scheduler) {
	if len(s.conns) > 0 {
		panic("tcp: Rebind with live connections")
	}
	s.sched = sched
}

// IP returns the underlying IPv4 stack.
func (s *Stack) IP() *ipv4.Stack { return s.ip }

// Stats returns a snapshot of the stack counters.
func (s *Stack) Stats() StackStats { return s.stats }

// SetTrace installs a segment observer (tests, debugging).
func (s *Stack) SetTrace(fn TraceFunc) { s.trace = fn }

// SetBus attaches an observability event bus; the stack emits retransmit,
// RTO and fast-retransmit events on it. A nil bus disables emission.
func (s *Stack) SetBus(b *obs.Bus) { s.bus = b }

// Bus returns the attached event bus (nil when none).
func (s *Stack) Bus() *obs.Bus { return s.bus }

// nodeName labels events with the owning node.
func (s *Stack) nodeName() string { return s.ip.Node().Name() }

// RTTHistogram exposes the stack-wide RTT sample histogram (milliseconds).
func (s *Stack) RTTHistogram() *metrics.Histogram { return &s.rttHist }

// ConnTotals sums per-connection counters over every connection the stack
// has carried: live ones plus the accumulated totals of closed ones.
func (s *Stack) ConnTotals() ConnStats {
	t := s.closedTotals
	for _, c := range s.conns { //hydralint:nondeterministic commutative sum, order cannot affect the totals
		t.accumulate(c.stats)
	}
	return t
}

// NumConns returns the number of live connections.
func (s *Stack) NumConns() int { return len(s.conns) }

// Listener accepts inbound connections for one (addr, port); addr 0 is the
// wildcard.
type Listener struct {
	stack  *Stack
	local  Endpoint
	setup  func(*Conn) // ft-TCP hook installation, runs at SYN time
	accept func(*Conn) // application accept, runs when established
}

// Addr returns the endpoint the listener is bound to.
func (l *Listener) Addr() Endpoint { return l.local }

// SetSetupFunc installs a callback invoked for each new connection at SYN
// time, before the SYN-ACK is generated. The HydraNet-FT core uses it to
// install ConnHooks so even the handshake obeys chain gating.
func (l *Listener) SetSetupFunc(fn func(*Conn)) { l.setup = fn }

// SetAcceptFunc installs the application's accept callback, invoked when
// the handshake completes.
func (l *Listener) SetAcceptFunc(fn func(*Conn)) { l.accept = fn }

// Close stops accepting new connections (existing ones are unaffected).
func (l *Listener) Close() {
	delete(l.stack.listeners, l.local)
}

// Listen binds a listener to (addr, port). A zero addr accepts connections
// to any local address, which is how replica server programs bind the same
// well-known port on every virtual host.
func (s *Stack) Listen(addr ipv4.Addr, port uint16) (*Listener, error) {
	key := Endpoint{Addr: addr, Port: port}
	if _, busy := s.listeners[key]; busy {
		return nil, fmt.Errorf("%w: %s", ErrListenBusy, key)
	}
	l := &Listener{stack: s, local: key}
	s.listeners[key] = l
	return l, nil
}

// Connect starts an active open to remote. A zero localAddr selects the
// outgoing interface address. The returned Conn reports progress through
// its callbacks.
func (s *Stack) Connect(localAddr ipv4.Addr, remote Endpoint) (*Conn, error) {
	if localAddr == 0 {
		ifindex := s.ip.Routes().Lookup(remote.Addr)
		if ifindex < 0 {
			return nil, fmt.Errorf("tcp: no route to %s", remote.Addr)
		}
		localAddr = s.ip.Addr(ifindex)
	}
	local := Endpoint{Addr: localAddr, Port: s.allocEphemeral()}
	key := connKey{local: local, remote: remote}
	if _, exists := s.conns[key]; exists {
		return nil, fmt.Errorf("tcp: connection %v-%v exists", local, remote)
	}
	c := newConn(s, local, remote)
	s.conns[key] = c
	c.open()
	return c, nil
}

func (s *Stack) allocEphemeral() uint16 {
	for {
		s.ephemeral++
		if s.ephemeral < 49152 {
			s.ephemeral = 49152
		}
		// Skip ports with active listeners or connections.
		if _, busy := s.listeners[Endpoint{Port: s.ephemeral}]; !busy {
			return s.ephemeral
		}
	}
}

// DeliverIP implements ipv4.ProtocolHandler.
func (s *Stack) DeliverIP(p *ipv4.Packet) {
	seg, err := UnmarshalSegment(p.Src, p.Dst, p.Payload)
	if err != nil {
		s.stats.BadSegments++
		return
	}
	s.stats.SegsIn++
	local := Endpoint{Addr: p.Dst, Port: seg.DstPort}
	remote := Endpoint{Addr: p.Src, Port: seg.SrcPort}
	if s.trace != nil {
		s.trace("in", local, remote, seg)
	}
	if c, ok := s.conns[connKey{local: local, remote: remote}]; ok {
		c.input(seg)
		return
	}
	// New connection: a SYN for a listener.
	l := s.listeners[local]
	if l == nil {
		l = s.listeners[Endpoint{Port: seg.DstPort}] // wildcard
	}
	if l != nil && seg.Flags.Has(FlagSYN) && !seg.Flags.Has(FlagACK) {
		c := newConn(s, local, remote)
		c.acceptFn = l.accept
		if l.setup != nil {
			l.setup(c)
		}
		s.conns[connKey{local: local, remote: remote}] = c
		c.openPassive(seg)
		return
	}
	s.stats.NoSocket++
	if !seg.Flags.Has(FlagRST) {
		s.sendRSTFor(local, remote, seg)
	}
}

// sendRSTFor answers a segment that matches no socket (RFC 793 reset
// generation).
func (s *Stack) sendRSTFor(local, remote Endpoint, seg *Segment) {
	s.stats.RSTsSent++
	rst := &Segment{SrcPort: local.Port, DstPort: remote.Port, Flags: FlagRST}
	if seg.Flags.Has(FlagACK) {
		rst.Seq = seg.Ack
	} else {
		rst.Flags |= FlagACK
		rst.Ack = seg.Seq.Add(seg.Len())
	}
	s.transmit(local, remote, rst)
}

// transmit marshals and sends a segment from local to remote. The segment
// marshals once, directly into a pooled frame buffer with IP headroom, so
// the bytes written here are the bytes that cross the fabric.
func (s *Stack) transmit(local, remote Endpoint, seg *Segment) {
	if s.trace != nil {
		s.trace("out", local, remote, seg)
	}
	s.stats.SegsOut++
	fb := s.ip.Node().Pool().Get(seg.WireLen())
	seg.MarshalInto(fb.Bytes(), local.Addr, remote.Addr)
	// Errors (no route) surface as drops; TCP recovers by retransmission.
	_ = s.ip.SendSegment(ipv4.ProtoTCP, local.Addr, remote.Addr, fb) //nolint:errcheck
}

func (s *Stack) removeConn(c *Conn) {
	// removeConn runs exactly once per connection (from terminate), so the
	// connection's counters move into the closed totals exactly once.
	s.closedTotals.accumulate(c.stats)
	delete(s.conns, connKey{local: c.local, remote: c.remote})
}

// Conn lookup for diagnostics and the ft-TCP core.
func (s *Stack) FindConn(local, remote Endpoint) *Conn {
	return s.conns[connKey{local: local, remote: remote}]
}

// Conns returns all live connections (copy), sorted by endpoint pair.
// Reset terminates connections through this list, and termination emits
// events and mutates shared state — map order here would leak into the
// replay timeline.
func (s *Stack) Conns() []*Conn {
	out := make([]*Conn, 0, len(s.conns))
	for _, c := range s.conns { //hydralint:nondeterministic order normalized by the sort below
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.local != b.local {
			if a.local.Addr != b.local.Addr {
				return a.local.Addr < b.local.Addr
			}
			return a.local.Port < b.local.Port
		}
		if a.remote.Addr != b.remote.Addr {
			return a.remote.Addr < b.remote.Addr
		}
		return a.remote.Port < b.remote.Port
	})
	return out
}

// Reset drops every connection without emitting segments — the protocol
// state a machine loses when it crashes. Listeners survive: a rebooting
// machine's services come back and re-listen.
func (s *Stack) Reset() {
	for _, c := range s.Conns() {
		c.terminate(ErrReset)
	}
}
