package tcp

import "sort"

// sendBuffer holds the outbound byte stream: acknowledged bytes are trimmed
// from the front; the application appends at the back.
type sendBuffer struct {
	base Seq // sequence number of data[0]
	data []byte
	cap  int

	// marking preserves application write boundaries: when set, each
	// append records the end of the write, and bytesFrom never returns a
	// chunk crossing a mark. This models the paper's measurement setup,
	// where batching of small segments was turned off so that every ttcp
	// write travels as its own segment.
	marking bool
	marks   []Seq // ends of writes, ascending
}

func newSendBuffer(capacity int) *sendBuffer {
	return &sendBuffer{cap: capacity}
}

// setBase initializes the starting sequence number (ISS+1).
func (b *sendBuffer) setBase(s Seq) { b.base = s }

// append stores as much of p as fits and returns how many bytes it took.
func (b *sendBuffer) append(p []byte) int {
	n := b.cap - len(b.data)
	if n <= 0 {
		return 0
	}
	if n > len(p) {
		n = len(p)
	}
	b.data = append(b.data, p[:n]...)
	if b.marking && n > 0 {
		b.marks = append(b.marks, b.endSeq())
	}
	return n
}

// ackTo discards bytes below seq (they were acknowledged).
func (b *sendBuffer) ackTo(seq Seq) {
	d := seq.Diff(b.base)
	if d <= 0 {
		return
	}
	if d > len(b.data) {
		d = len(b.data)
	}
	b.data = b.data[d:]
	b.base = b.base.Add(d)
	for len(b.marks) > 0 && b.marks[0].LEQ(b.base) {
		b.marks = b.marks[1:]
	}
}

// bytesFrom returns up to maxLen bytes of the stream starting at seq, or nil
// if seq is outside the buffered range. With marking enabled the chunk never
// crosses a write boundary.
func (b *sendBuffer) bytesFrom(seq Seq, maxLen int) []byte {
	off := seq.Diff(b.base)
	if off < 0 || off >= len(b.data) {
		return nil
	}
	end := off + maxLen
	if end > len(b.data) {
		end = len(b.data)
	}
	if b.marking {
		for _, m := range b.marks {
			if m.GT(seq) {
				if boundary := m.Diff(b.base); boundary < end {
					end = boundary
				}
				break
			}
		}
	}
	return b.data[off:end]
}

// endSeq returns the sequence number one past the last buffered byte.
func (b *sendBuffer) endSeq() Seq { return b.base.Add(len(b.data)) }

func (b *sendBuffer) len() int  { return len(b.data) }
func (b *sendBuffer) free() int { return b.cap - len(b.data) }

// oooRange is a received, not-yet-deposited run of bytes. data initially
// aliases the delivered segment's payload (which in turn aliases a pooled
// fabric frame); owned marks ranges that have been copied into private
// memory because they outlived the delivery event.
type oooRange struct {
	seq   Seq
	data  []byte
	owned bool
}

// receiver tracks the inbound stream: out-of-order (and deposit-gated)
// ranges, the deposit cursor rcvNxt, and the app-readable socket buffer.
//
// In HydraNet-FT terms (paper Section 4.3), "depositing byte k into the
// socket buffer" is the transition from pending to deposited: the ACK
// number a replica advertises is exactly rcvNxt, so gating deposits gates
// acknowledgments.
type receiver struct {
	rcvNxt    Seq // next byte to deposit == ACK number we advertise
	pending   []oooRange
	deposited []byte
	cap       int
	finSeq    Seq // sequence number of a received FIN, valid if finSet
	finSet    bool
}

func newReceiver(capacity int) *receiver {
	return &receiver{cap: capacity}
}

// setNext initializes the deposit cursor (peer ISS+1).
func (r *receiver) setNext(s Seq) { r.rcvNxt = s }

// window returns the receive window to advertise.
func (r *receiver) window() int {
	w := r.cap - len(r.deposited)
	if w < 0 {
		return 0
	}
	return w
}

// insert stores segment data for later deposit, trimming anything already
// below rcvNxt. Overlapping ranges are kept as-is (deposit handles overlap).
// It reports whether any byte of the segment was new (at or above rcvNxt and
// not wholly duplicate).
func (r *receiver) insert(seq Seq, data []byte) bool {
	if len(data) == 0 {
		return false
	}
	// Trim below rcvNxt.
	if d := r.rcvNxt.Diff(seq); d > 0 {
		if d >= len(data) {
			return false // entirely old
		}
		data = data[d:]
		seq = seq.Add(d)
	}
	// Reject if entirely beyond the window... the caller enforces windows;
	// here we only bound memory: drop data beyond cap past rcvNxt.
	if off := seq.Diff(r.rcvNxt); off > r.cap {
		return false
	}
	// Check whether fully covered by existing pending ranges.
	covered := 0
	for _, rg := range r.pending {
		if rg.seq.LEQ(seq) && rg.seq.Add(len(rg.data)).GEQ(seq.Add(len(data))) {
			covered++
			break
		}
	}
	r.pending = append(r.pending, oooRange{seq: seq, data: data})
	sort.SliceStable(r.pending, func(i, j int) bool { return r.pending[i].seq.LT(r.pending[j].seq) })
	return covered == 0
}

// privatize copies every pending range that still aliases the arriving
// frame's payload. It runs once per segment arrival, after all synchronous
// processing: the common case — an in-order segment deposited in the same
// event — never pays for a copy, only out-of-order and deposit-gated
// (ft-TCP) ranges that genuinely outlive the frame do.
func (r *receiver) privatize() {
	for i := range r.pending {
		if !r.pending[i].owned {
			r.pending[i].data = append([]byte(nil), r.pending[i].data...)
			r.pending[i].owned = true
		}
	}
}

// contiguousEnd returns the highest sequence number reachable from rcvNxt
// through pending ranges without a hole.
func (r *receiver) contiguousEnd() Seq {
	end := r.rcvNxt
	for _, rg := range r.pending {
		if rg.seq.GT(end) {
			break
		}
		if e := rg.seq.Add(len(rg.data)); e.GT(end) {
			end = e
		}
	}
	return end
}

// depositUpTo moves contiguous pending bytes in [rcvNxt, limit) into the
// socket buffer, bounded by buffer capacity. It returns the number of bytes
// deposited. Passing rcvNxt.Add(cap+1) or more effectively means "no limit".
func (r *receiver) depositUpTo(limit Seq) int {
	end := r.contiguousEnd()
	if limit.LT(end) {
		end = limit
	}
	want := end.Diff(r.rcvNxt)
	if want <= 0 {
		return 0
	}
	if room := r.cap - len(r.deposited); want > room {
		want = room
	}
	if want <= 0 {
		return 0
	}
	out := make([]byte, want)
	filled := 0
	target := r.rcvNxt.Add(want)
	for _, rg := range r.pending {
		// Copy the overlap of rg with [rcvNxt, target).
		start := MaxSeq(rg.seq, r.rcvNxt)
		stop := MinSeq(rg.seq.Add(len(rg.data)), target)
		if stop.LEQ(start) {
			continue
		}
		srcOff := start.Diff(rg.seq)
		dstOff := start.Diff(r.rcvNxt)
		n := stop.Diff(start)
		copy(out[dstOff:dstOff+n], rg.data[srcOff:srcOff+n])
		filled += n
	}
	_ = filled
	r.deposited = append(r.deposited, out...)
	r.rcvNxt = target
	// Drop pending ranges now wholly below rcvNxt; trim partial ones.
	kept := r.pending[:0]
	for _, rg := range r.pending {
		e := rg.seq.Add(len(rg.data))
		if e.LEQ(r.rcvNxt) {
			continue
		}
		if rg.seq.LT(r.rcvNxt) {
			cut := r.rcvNxt.Diff(rg.seq)
			rg.data = rg.data[cut:]
			rg.seq = r.rcvNxt
		}
		kept = append(kept, rg)
	}
	r.pending = kept
	return want
}

// read drains up to len(p) deposited bytes into p.
func (r *receiver) read(p []byte) int {
	n := copy(p, r.deposited)
	r.deposited = r.deposited[n:]
	return n
}

// readable returns the number of deposited, unread bytes.
func (r *receiver) readable() int { return len(r.deposited) }

// noteFIN records the sequence number a FIN occupies. The FIN is consumed
// (acknowledged) only once all data before it has been deposited.
func (r *receiver) noteFIN(seq Seq) {
	r.finSeq = seq
	r.finSet = true
}

// finReady reports whether the FIN is the next thing to consume.
func (r *receiver) finReady() bool {
	return r.finSet && r.rcvNxt == r.finSeq
}

// consumeFIN advances rcvNxt over the FIN.
func (r *receiver) consumeFIN() {
	r.rcvNxt = r.finSeq.Add(1)
	r.finSet = false
}
