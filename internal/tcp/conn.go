package tcp

import (
	"errors"
	"fmt"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/obs"
	"hydranet/internal/sim"
)

// State is a TCP connection state (RFC 793).
type State int

// Connection states.
const (
	StateClosed State = iota + 1
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

var stateNames = map[State]string{
	StateClosed: "CLOSED", StateListen: "LISTEN", StateSynSent: "SYN-SENT",
	StateSynRcvd: "SYN-RCVD", StateEstablished: "ESTABLISHED",
	StateFinWait1: "FIN-WAIT-1", StateFinWait2: "FIN-WAIT-2",
	StateCloseWait: "CLOSE-WAIT", StateClosing: "CLOSING",
	StateLastAck: "LAST-ACK", StateTimeWait: "TIME-WAIT",
}

func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Endpoint identifies one end of a connection.
type Endpoint struct {
	Addr ipv4.Addr
	Port uint16
}

// String renders addr:port.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Errors surfaced through the OnClosed callback.
var (
	ErrReset      = errors.New("tcp: connection reset by peer")
	ErrRefused    = errors.New("tcp: connection refused")
	ErrTimeout    = errors.New("tcp: retransmission limit exceeded")
	ErrClosed     = errors.New("tcp: connection closed")
	ErrListenBusy = errors.New("tcp: address already listening")
)

// ConnHooks are the ft-TCP extension points (paper Section 4). A plain TCP
// endpoint leaves all fields nil. The HydraNet-FT core installs them on
// replica-side connections.
type ConnHooks struct {
	// SuppressTransmit is consulted before each segment reaches the wire.
	// Returning true diverts the segment: it is not transmitted, but the
	// connection state advances as if it were. Backup replicas use this to
	// strip segments to their flow-control fields for the acknowledgment
	// channel.
	SuppressTransmit func(seg *Segment) bool
	// DepositLimit bounds rcvNxt: bytes at or above the limit stay pending
	// and unacknowledged. Absent (ok=false) means unlimited. This realizes
	// the paper's rule that server Si deposits byte k only after S(i+1)
	// acknowledged past k.
	DepositLimit func() (limit Seq, ok bool)
	// SendLimit bounds sndNxt the same way for the outbound stream.
	SendLimit func() (limit Seq, ok bool)
	// OnPeerRetransmit fires when the peer demonstrably retransmitted
	// (data wholly below rcvNxt, or a duplicate SYN). It feeds the
	// low-latency failure estimator.
	OnPeerRetransmit func()
	// OnRTO fires when this endpoint's own retransmission timer expires —
	// the server-push-direction analogue of OnPeerRetransmit: a replica
	// retransmitting repeatedly without progress means the flow-control
	// loop is broken somewhere even if the client has nothing to send.
	OnRTO func()
	// OnAckProgress fires when an acknowledgment advances sndUna: the
	// outbound loop is healthy, so the failure estimator resets.
	OnAckProgress func()
	// OnDeposit fires after rcvNxt advances, so a replica can forward its
	// new flow-control state up the acknowledgment channel.
	OnDeposit func()
	// OnClosed fires when the connection terminates for any reason,
	// independent of the application's OnClosed callback.
	OnClosed func(err error)
}

// ConnStats counts per-connection protocol events.
type ConnStats struct {
	SegsSent        uint64 // segments passed to the wire (not suppressed)
	SegsSuppressed  uint64 // segments diverted by SuppressTransmit
	SegsReceived    uint64
	BytesSent       uint64 // payload bytes, first transmission only
	BytesReceived   uint64 // payload bytes deposited
	Retransmits     uint64 // data segments retransmitted
	RTOEvents       uint64 // retransmission timeouts fired
	FastRetransmits uint64
	DupAcksSeen     uint64
	PeerRetransmits uint64 // retransmissions observed from the peer
}

// accumulate folds o into the receiver (stack-level totals).
func (s *ConnStats) accumulate(o ConnStats) {
	s.SegsSent += o.SegsSent
	s.SegsSuppressed += o.SegsSuppressed
	s.SegsReceived += o.SegsReceived
	s.BytesSent += o.BytesSent
	s.BytesReceived += o.BytesReceived
	s.Retransmits += o.Retransmits
	s.RTOEvents += o.RTOEvents
	s.FastRetransmits += o.FastRetransmits
	s.DupAcksSeen += o.DupAcksSeen
	s.PeerRetransmits += o.PeerRetransmits
}

// Conn is one TCP endpoint.
type Conn struct {
	stack  *Stack
	local  Endpoint
	remote Endpoint
	state  State

	// Send sequence space.
	iss       Seq
	sndUna    Seq
	sndNxt    Seq
	sndMax    Seq // highest sequence ever sent (for Karn under go-back-N)
	sndWnd    int
	sndBuf    *sendBuffer
	finQueued bool
	finSent   bool
	mss       int

	// Congestion control (Reno-style).
	cwnd           int
	ssthresh       int
	dupAcks        int
	recover        Seq
	inFastRecovery bool

	// Receive sequence space.
	irs Seq
	rcv *receiver

	// Timers and RTT.
	rtx          *sim.Timer
	delack       *sim.Timer
	persist      *sim.Timer
	timewait     *sim.Timer
	rto          *rtoEstimator
	rttSeq       Seq
	rttAt        time.Duration
	rttPending   bool
	rtxCount     int // consecutive timeouts without progress
	persistShift uint

	noDelay  bool
	hooks    ConnHooks
	stats    ConnStats
	acceptFn func(*Conn) // listener accept, fired on transition to ESTABLISHED

	// Keepalive (RFC 1122 §4.2.3.6): after an idle interval, probe the
	// peer; unanswered probes terminate the connection. Off by default.
	keepalive         *sim.Timer
	keepaliveIdle     time.Duration
	keepaliveInterval time.Duration
	keepaliveProbes   int
	probesSent        int
	lastActivity      time.Duration

	lastAdvertisedWnd int
	peerFINSeen       bool

	onConnected func()
	onReadable  func()
	onWritable  func()
	onClosed    func(err error)
	terminated  bool
}

func newConn(st *Stack, local, remote Endpoint) *Conn {
	c := &Conn{
		stack:             st,
		local:             local,
		remote:            remote,
		state:             StateClosed,
		sndBuf:            newSendBuffer(st.cfg.SendBufSize),
		rcv:               newReceiver(st.cfg.RecvBufSize),
		mss:               st.cfg.MSS,
		sndWnd:            0,
		rto:               newRTOEstimator(st.cfg.InitialRTO, st.cfg.MinRTO, st.cfg.MaxRTO),
		lastAdvertisedWnd: st.cfg.RecvBufSize,
	}
	c.cwnd = st.cfg.InitialCwnd * c.mss
	c.ssthresh = 64 * 1024
	c.rtx = sim.NewTimer(st.sched, c.onRetransmitTimeout)
	c.delack = sim.NewTimer(st.sched, c.onDelayedAck)
	c.persist = sim.NewTimer(st.sched, c.onPersist)
	c.timewait = sim.NewTimer(st.sched, c.onTimeWaitDone)
	return c
}

// Local returns the connection's local endpoint (a virtual-host address on
// HydraNet host servers).
func (c *Conn) Local() Endpoint { return c.local }

// Remote returns the peer endpoint.
func (c *Conn) Remote() Endpoint { return c.remote }

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Stats returns a snapshot of the connection counters.
func (c *Conn) Stats() ConnStats { return c.stats }

// SRTT returns the smoothed round-trip time estimate (zero before the
// first valid measurement).
func (c *Conn) SRTT() time.Duration { return c.rto.srtt }

// RTO returns the current retransmission timeout, exponential backoff
// included.
func (c *Conn) RTO() time.Duration { return c.rto.current() }

// CongestionWindow returns the congestion window in bytes.
func (c *Conn) CongestionWindow() int { return c.cwnd }

// ISS returns the initial send sequence number.
func (c *Conn) ISS() Seq { return c.iss }

// SndNxt returns the next send sequence number.
func (c *Conn) SndNxt() Seq { return c.sndNxt }

// SndUna returns the oldest unacknowledged sequence number.
func (c *Conn) SndUna() Seq { return c.sndUna }

// RcvNxt returns the next expected (deposited-through) sequence number —
// exactly the ACK number this endpoint advertises.
func (c *Conn) RcvNxt() Seq { return c.rcv.rcvNxt }

// SetNoDelay disables Nagle batching of small segments. The paper's
// measurements run with sender-side batching off.
func (c *Conn) SetNoDelay(on bool) { c.noDelay = on }

// SetSegmentPerWrite preserves application write boundaries: no segment
// ever coalesces bytes from two Write calls, even on retransmission. This
// reproduces the paper's measurement configuration ("we turned off
// buffering of small segments at the TCP sender, preventing it from
// batching multiple small segments into a segment of MTU size"). Combine
// with SetNoDelay. A partial Write (full buffer) splits one logical write
// into two segments; callers that care should check WriteFree first.
func (c *Conn) SetSegmentPerWrite(on bool) { c.sndBuf.marking = on }

// SetHooks installs or replaces the ft-TCP hooks.
func (c *Conn) SetHooks(h ConnHooks) { c.hooks = h }

// Hooks returns the installed hooks.
func (c *Conn) Hooks() ConnHooks { return c.hooks }

// OnConnected registers the callback fired when the handshake completes.
func (c *Conn) OnConnected(fn func()) { c.onConnected = fn }

// OnReadable registers the callback fired when deposited data (or EOF)
// becomes available.
func (c *Conn) OnReadable(fn func()) { c.onReadable = fn }

// OnWritable registers the callback fired when send-buffer space frees up.
func (c *Conn) OnWritable(fn func()) { c.onWritable = fn }

// OnClosed registers the callback fired when the connection terminates.
// err is nil for an orderly shutdown.
func (c *Conn) OnClosed(fn func(err error)) { c.onClosed = fn }

// Write appends p to the send buffer and returns how many bytes were
// accepted (possibly zero when the buffer is full — OnWritable will fire).
func (c *Conn) Write(p []byte) int {
	switch c.state {
	case StateEstablished, StateCloseWait, StateSynRcvd, StateSynSent:
	default:
		return 0
	}
	if c.finQueued {
		return 0
	}
	n := c.sndBuf.append(p)
	c.output()
	return n
}

// WriteFree returns the free space in the send buffer.
func (c *Conn) WriteFree() int { return c.sndBuf.free() }

// Read drains up to len(p) deposited bytes. It returns 0 both when no data
// is available and at EOF; use PeerClosed to distinguish.
func (c *Conn) Read(p []byte) int {
	wasZero := c.rcv.window() == 0
	n := c.rcv.read(p)
	if n > 0 {
		// Deposits may have been blocked on socket-buffer space.
		c.depositAndAck()
		if wasZero && c.rcv.window() > 0 {
			c.sendAck()
		}
	}
	return n
}

// Readable returns the number of deposited, unread bytes.
func (c *Conn) Readable() int { return c.rcv.readable() }

// PeerClosed reports whether the peer's FIN has been consumed: Read
// returning 0 then means EOF.
func (c *Conn) PeerClosed() bool { return c.peerFINSeen }

// Close initiates an orderly shutdown: buffered data is still delivered,
// then a FIN is sent.
func (c *Conn) Close() {
	switch c.state {
	case StateClosed, StateListen:
		c.terminate(ErrClosed)
		return
	case StateSynSent:
		// A close during an active open with buffered data completes the
		// handshake first, then sends the FIN; with nothing buffered the
		// open is abandoned.
		if c.sndBuf.len() == 0 {
			c.terminate(ErrClosed)
			return
		}
	}
	if c.finQueued {
		return
	}
	c.finQueued = true
	c.output()
}

// Abort sends a RST and terminates immediately.
func (c *Conn) Abort() {
	if c.state != StateClosed && c.state != StateListen && c.state != StateSynSent {
		c.sendRST(c.sndNxt)
	}
	c.terminate(ErrReset)
}

// Poke re-evaluates deposit and send gates. The ft-TCP core calls it when
// acknowledgment-channel state changes.
func (c *Conn) Poke() {
	if c.terminated {
		return
	}
	if c.state == StateSynRcvd && c.sndNxt == c.iss {
		// The SYN-ACK was withheld by the send gate; retry it now.
		c.sendSynAck()
	}
	c.depositAndAck()
	c.output()
}

// ForceRetransmit resends from sndUna immediately and clears RTO backoff.
// Used on failover promotion so the new primary repairs the client's stream
// without waiting out a backed-off timer.
func (c *Conn) ForceRetransmit() {
	if c.terminated {
		return
	}
	c.rto.resetBackoff()
	if c.sndNxt != c.sndUna {
		c.goBackN()
		c.output()
		c.armRTX()
	}
	c.sendAck()
}

// goBackN pulls the send cursor back to the oldest unacknowledged byte
// (classic BSD behaviour on retransmission timeout): everything beyond
// sndUna is resent under ACK clocking instead of one segment per timeout.
func (c *Conn) goBackN() {
	if c.sndNxt == c.sndUna {
		return
	}
	c.sndNxt = c.sndUna
	if c.finSent {
		// The FIN is beyond the pulled-back cursor; output re-sends it.
		c.finSent = false
		switch c.state {
		case StateFinWait1, StateClosing:
			c.state = StateEstablished
			if c.peerFINSeen {
				c.state = StateCloseWait
			}
		case StateLastAck:
			c.state = StateCloseWait
		}
	}
}

// --- Handshake initiation -------------------------------------------------

// open starts the active-open handshake (stack.Connect).
func (c *Conn) open() {
	c.iss = c.stack.cfg.ISS(c.local, c.remote)
	c.sndUna = c.iss
	c.sndNxt = c.iss
	c.sndBuf.setBase(c.iss.Add(1))
	c.state = StateSynSent
	c.sendSegment(&Segment{
		Flags: FlagSYN, Seq: c.iss, MSS: uint16(c.stack.cfg.MSS),
		Window: c.windowField(),
	})
	c.sndNxt = c.iss.Add(1)
	c.sndMax = c.sndNxt
	c.armRTX()
}

// openPassive initializes server-side state from a received SYN.
func (c *Conn) openPassive(seg *Segment) {
	c.iss = c.stack.cfg.ISS(c.local, c.remote)
	c.sndUna = c.iss
	c.sndNxt = c.iss
	c.sndBuf.setBase(c.iss.Add(1))
	c.irs = seg.Seq
	c.rcv.setNext(seg.Seq.Add(1))
	if seg.MSS != 0 && int(seg.MSS) < c.mss {
		c.mss = int(seg.MSS)
	}
	c.sndWnd = int(seg.Window)
	c.state = StateSynRcvd
	c.sendSynAck()
	c.armRTX()
}

func (c *Conn) sendSynAck() {
	// The SYN-ACK occupies sequence number iss; the send gate applies to
	// it like any other byte (chain successors' SYN-ACKs release it).
	if limit, ok := c.sendLimit(); ok && limit.LEQ(c.iss) {
		return
	}
	c.sendSegment(&Segment{
		Flags: FlagSYN | FlagACK, Seq: c.iss, Ack: c.rcv.rcvNxt,
		MSS: uint16(c.stack.cfg.MSS), Window: c.windowField(),
	})
	if c.sndNxt == c.iss {
		c.sndNxt = c.iss.Add(1)
	}
	if c.sndNxt.GT(c.sndMax) {
		c.sndMax = c.sndNxt
	}
}

// --- Output path ----------------------------------------------------------

func (c *Conn) sendLimit() (Seq, bool) {
	if c.hooks.SendLimit == nil {
		return 0, false
	}
	return c.hooks.SendLimit()
}

func (c *Conn) depositLimit() (Seq, bool) {
	if c.hooks.DepositLimit == nil {
		return 0, false
	}
	return c.hooks.DepositLimit()
}

// output transmits as much new data as windows, gates and Nagle allow.
func (c *Conn) output() {
	if c.terminated {
		return
	}
	switch c.state {
	case StateEstablished, StateCloseWait, StateFinWait1, StateClosing, StateLastAck, StateSynRcvd:
	default:
		return
	}
	if c.state == StateSynRcvd {
		return // nothing beyond the SYN-ACK until established
	}
	wnd := c.sndWnd
	if c.cwnd < wnd {
		wnd = c.cwnd
	}
	limit := c.sndUna.Add(wnd)
	if gl, ok := c.sendLimit(); ok {
		limit = MinSeq(limit, gl)
	}
	dataEnd := c.sndBuf.endSeq()
	sentSomething := false
	for c.sndNxt.LT(limit) && c.sndNxt.LT(dataEnd) {
		space := limit.Diff(c.sndNxt)
		chunk := c.sndBuf.bytesFrom(c.sndNxt, c.mss)
		if len(chunk) == 0 {
			break
		}
		if len(chunk) > space {
			if c.sndBuf.marking {
				// Segment-per-write mode: never split a write at the
				// window edge; wait for the window to open.
				break
			}
			chunk = chunk[:space]
		}
		full := len(chunk) == c.mss
		last := c.sndNxt.Add(len(chunk)) == dataEnd
		if !full && !c.noDelay && c.sndNxt != c.sndUna {
			break // Nagle: one small segment in flight at a time
		}
		flags := FlagACK
		if last || !full {
			flags |= FlagPSH
		}
		fin := false
		if c.finQueued && last && c.finAllowed(c.sndNxt.Add(len(chunk))) {
			flags |= FlagFIN
			fin = true
		}
		c.sendSegment(&Segment{
			Flags: flags, Seq: c.sndNxt, Ack: c.rcv.rcvNxt,
			Window: c.windowField(), Payload: chunk,
		})
		fresh := c.sndNxt.Add(len(chunk)).GT(c.sndMax)
		if fresh {
			c.stats.BytesSent += uint64(len(chunk))
		} else {
			c.noteRetransmit(c.sndNxt)
		}
		if !c.rttPending && fresh {
			// Karn: never sample a chunk that overlaps retransmitted data.
			c.rttPending = true
			c.rttSeq = c.sndNxt.Add(len(chunk))
			c.rttAt = c.stack.sched.Now()
		}
		c.sndNxt = c.sndNxt.Add(len(chunk))
		if fin {
			c.finSent = true
			c.sndNxt = c.sndNxt.Add(1)
			c.finStateTransition()
		}
		if c.sndNxt.GT(c.sndMax) {
			c.sndMax = c.sndNxt
		}
		sentSomething = true
	}
	// A FIN with no data left to carry it.
	if c.finQueued && !c.finSent && c.sndNxt == dataEnd &&
		c.sndNxt.LT(c.sndUna.Add(wnd+1)) && c.finAllowed(c.sndNxt) {
		c.sendSegment(&Segment{
			Flags: FlagFIN | FlagACK, Seq: c.sndNxt, Ack: c.rcv.rcvNxt,
			Window: c.windowField(),
		})
		c.finSent = true
		c.sndNxt = c.sndNxt.Add(1)
		if c.sndNxt.GT(c.sndMax) {
			c.sndMax = c.sndNxt
		}
		c.finStateTransition()
		sentSomething = true
	}
	if sentSomething {
		c.armRTX()
		c.persist.Stop()
		c.persistShift = 0
		return
	}
	// Zero-window deadlock avoidance: if data waits but the peer's window
	// is closed and nothing is in flight, arm the persist timer.
	if c.sndWnd == 0 && c.sndNxt == c.sndUna && c.sndBuf.len() > 0 && !c.persist.Armed() {
		c.persist.Reset(c.persistInterval())
	}
}

// finAllowed applies the send gate to the FIN, which occupies finSeq.
func (c *Conn) finAllowed(finSeq Seq) bool {
	if limit, ok := c.sendLimit(); ok {
		return limit.GT(finSeq)
	}
	return true
}

func (c *Conn) finStateTransition() {
	switch c.state {
	case StateEstablished:
		c.state = StateFinWait1
	case StateCloseWait:
		c.state = StateLastAck
	}
}

func (c *Conn) persistInterval() time.Duration {
	d := time.Second << c.persistShift
	if d > 60*time.Second {
		d = 60 * time.Second
	}
	return d
}

func (c *Conn) onPersist() {
	if c.terminated || c.sndWnd > 0 || c.sndBuf.len() == 0 {
		return
	}
	// Window probe: one byte beyond the advertised window.
	probe := c.sndBuf.bytesFrom(c.sndNxt, 1)
	if len(probe) == 1 {
		if gl, ok := c.sendLimit(); !ok || gl.GT(c.sndNxt) {
			c.sendSegment(&Segment{
				Flags: FlagACK | FlagPSH, Seq: c.sndNxt, Ack: c.rcv.rcvNxt,
				Window: c.windowField(), Payload: probe,
			})
		}
	}
	c.persistShift++
	c.persist.Reset(c.persistInterval())
}

func (c *Conn) windowField() uint16 {
	w := c.rcv.window()
	if w > 0xffff {
		w = 0xffff
	}
	c.lastAdvertisedWnd = w
	return uint16(w)
}

// sendAck emits an immediate pure ACK.
func (c *Conn) sendAck() {
	if c.terminated {
		return
	}
	switch c.state {
	case StateClosed, StateListen, StateSynSent:
		return
	}
	c.delack.Stop()
	c.sendSegment(&Segment{
		Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcv.rcvNxt, Window: c.windowField(),
	})
}

func (c *Conn) scheduleAck() {
	if c.stack.cfg.DelayedAckTimeout <= 0 {
		c.sendAck()
		return
	}
	if c.delack.Armed() {
		// Second segment since the last ACK: ack now (RFC 1122).
		c.sendAck()
		return
	}
	c.delack.Reset(c.stack.cfg.DelayedAckTimeout)
}

func (c *Conn) onDelayedAck() {
	c.sendAck()
}

// sendSegment finalizes ports and hands the segment to the wire, honouring
// the suppression hook.
func (c *Conn) sendSegment(seg *Segment) {
	seg.SrcPort = c.local.Port
	seg.DstPort = c.remote.Port
	if c.hooks.SuppressTransmit != nil && c.hooks.SuppressTransmit(seg) {
		c.stats.SegsSuppressed++
		return
	}
	c.stats.SegsSent++
	c.stack.transmit(c.local, c.remote, seg)
}

func (c *Conn) sendRST(seq Seq) {
	c.sendSegment(&Segment{Flags: FlagRST | FlagACK, Seq: seq, Ack: c.rcv.rcvNxt})
}

// --- Retransmission -------------------------------------------------------

func (c *Conn) armRTX() {
	if c.sndNxt == c.sndUna && c.state != StateSynSent && c.state != StateSynRcvd {
		c.rtx.Stop()
		return
	}
	c.rtx.Reset(c.rto.current())
}

func (c *Conn) onRetransmitTimeout() {
	if c.terminated {
		return
	}
	c.rtxCount++
	c.stats.RTOEvents++
	if b := c.stack.bus; b.Enabled(obs.KindRTO) {
		b.Publish(obs.Event{
			Kind: obs.KindRTO, Node: c.stack.nodeName(),
			Conn: c.remote.String(), Seq: uint64(c.sndUna),
			Detail: fmt.Sprintf("attempt %d", c.rtxCount),
		})
	}
	if c.rtxCount > c.stack.cfg.MaxRetries {
		c.terminate(ErrTimeout)
		return
	}
	if c.hooks.OnRTO != nil {
		c.hooks.OnRTO()
	}
	// Collapse the congestion window (Tahoe-style on timeout).
	flight := c.sndNxt.Diff(c.sndUna)
	c.ssthresh = maxInt(flight/2, 2*c.mss)
	c.cwnd = c.mss
	c.dupAcks = 0
	c.inFastRecovery = false
	c.rto.timedOut()
	c.rttPending = false // Karn: do not sample retransmitted segments
	switch c.state {
	case StateSynSent, StateSynRcvd:
		c.retransmitOne()
	default:
		c.goBackN()
		c.output()
	}
	c.armRTX()
}

// retransmitOne resends the earliest unacknowledged item (SYN, data, or FIN).
func (c *Conn) retransmitOne() {
	switch c.state {
	case StateSynSent:
		c.sendSegment(&Segment{
			Flags: FlagSYN, Seq: c.iss, MSS: uint16(c.stack.cfg.MSS), Window: c.windowField(),
		})
		return
	case StateSynRcvd:
		c.sendSynAck()
		return
	}
	chunk := c.sndBuf.bytesFrom(c.sndUna, c.mss)
	if len(chunk) > 0 {
		flags := FlagACK | FlagPSH
		if c.finSent && c.sndUna.Add(len(chunk)).Add(1) == c.sndNxt {
			flags |= FlagFIN
		}
		c.noteRetransmit(c.sndUna)
		c.sendSegment(&Segment{
			Flags: flags, Seq: c.sndUna, Ack: c.rcv.rcvNxt,
			Window: c.windowField(), Payload: chunk,
		})
		return
	}
	if c.finSent && c.sndUna.Add(1) == c.sndNxt {
		c.noteRetransmit(c.sndUna)
		c.sendSegment(&Segment{
			Flags: FlagFIN | FlagACK, Seq: c.sndUna, Ack: c.rcv.rcvNxt, Window: c.windowField(),
		})
	}
}

// noteRetransmit counts a data retransmission from seq and publishes it on
// the observability bus.
func (c *Conn) noteRetransmit(seq Seq) {
	c.stats.Retransmits++
	if b := c.stack.bus; b.Enabled(obs.KindRetransmit) {
		b.Publish(obs.Event{
			Kind: obs.KindRetransmit, Node: c.stack.nodeName(),
			Conn: c.remote.String(), Seq: uint64(seq),
		})
	}
}

// --- Termination ----------------------------------------------------------

func (c *Conn) enterTimeWait() {
	c.state = StateTimeWait
	c.rtx.Stop()
	c.delack.Stop()
	c.persist.Stop()
	c.timewait.Reset(c.stack.cfg.TimeWaitDuration)
}

func (c *Conn) onTimeWaitDone() {
	c.terminate(nil)
}

// terminate tears the connection down and notifies callbacks exactly once.
func (c *Conn) terminate(err error) {
	if c.terminated {
		return
	}
	c.terminated = true
	c.state = StateClosed
	c.rtx.Stop()
	c.delack.Stop()
	c.persist.Stop()
	c.timewait.Stop()
	if c.keepalive != nil {
		c.keepalive.Stop()
	}
	c.stack.removeConn(c)
	if c.hooks.OnClosed != nil {
		c.hooks.OnClosed(err)
	}
	if c.onClosed != nil {
		c.onClosed(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
