package tcp

import (
	"time"

	"hydranet/internal/sim"
)

// SetKeepAlive enables keepalive probing: after idle of inactivity, a probe
// segment (a pure ACK with seq = sndNxt-1, the classic garbage-byte probe
// semantics without the garbage) is sent every interval; after probes
// unanswered probes the connection is terminated with ErrTimeout.
//
// In HydraNet-FT deployments, client-side keepalive gives idle connections
// a failure-detection path: the probes flow through the redirector to the
// replicas, and a dead primary turns them into the repeated retransmissions
// the failure estimator counts.
func (c *Conn) SetKeepAlive(idle, interval time.Duration, probes int) {
	if c.keepalive == nil {
		c.keepalive = sim.NewTimer(c.stack.sched, c.onKeepAlive)
	}
	c.keepaliveIdle = idle
	c.keepaliveInterval = interval
	c.keepaliveProbes = probes
	c.lastActivity = c.stack.sched.Now()
	c.keepalive.Reset(idle)
}

// DisableKeepAlive stops probing.
func (c *Conn) DisableKeepAlive() {
	if c.keepalive != nil {
		c.keepalive.Stop()
	}
	c.keepaliveIdle = 0
}

// IdleSince returns how long the connection has been without inbound
// segments.
func (c *Conn) IdleSince() time.Duration {
	return c.stack.sched.Now() - c.lastActivity
}

// noteActivity records segment arrival for keepalive idleness tracking.
func (c *Conn) noteActivity() {
	c.lastActivity = c.stack.sched.Now()
	c.probesSent = 0
	if c.keepaliveIdle > 0 && c.keepalive != nil && c.state == StateEstablished {
		c.keepalive.Reset(c.keepaliveIdle)
	}
}

func (c *Conn) onKeepAlive() {
	if c.terminated || c.keepaliveIdle == 0 {
		return
	}
	switch c.state {
	case StateEstablished, StateCloseWait:
	default:
		return
	}
	if c.probesSent >= c.keepaliveProbes {
		c.terminate(ErrTimeout)
		return
	}
	c.probesSent++
	// A probe: pure ACK with an already-acknowledged sequence number. The
	// peer answers with an ACK (our processing treats it as a plain ACK),
	// which counts as activity and resets the cycle.
	c.sendSegment(&Segment{
		Flags: FlagACK, Seq: c.sndNxt.Add(-1), Ack: c.rcv.rcvNxt, Window: c.windowField(),
	})
	c.keepalive.Reset(c.keepaliveInterval)
}
