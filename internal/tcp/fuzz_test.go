package tcp

import (
	"bytes"
	"testing"

	"hydranet/internal/ipv4"
)

// FuzzUnmarshalSegment: arbitrary bytes must never panic the segment
// parser; valid segments round-trip.
func FuzzUnmarshalSegment(f *testing.F) {
	seed := (&Segment{Flags: FlagSYN | FlagACK, Seq: 1, Ack: 2, MSS: 1460,
		Payload: []byte("seed")}).Marshal(1, 2)
	f.Add(seed, uint32(1), uint32(2))
	f.Add([]byte{}, uint32(0), uint32(0))
	f.Fuzz(func(t *testing.T, data []byte, srcRaw, dstRaw uint32) {
		src, dst := ipv4.Addr(srcRaw), ipv4.Addr(dstRaw)
		seg, err := UnmarshalSegment(src, dst, data)
		if err != nil {
			return
		}
		b := seg.Marshal(src, dst)
		seg2, err := UnmarshalSegment(src, dst, b)
		if err != nil {
			t.Fatalf("re-marshaled segment does not parse: %v", err)
		}
		if seg2.Seq != seg.Seq || seg2.Ack != seg.Ack || seg2.Flags != seg.Flags ||
			!bytes.Equal(seg2.Payload, seg.Payload) {
			t.Fatal("segment round trip changed fields")
		}
	})
}
