package app

import (
	"bytes"
	"testing"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/netsim"
	"hydranet/internal/sim"
	"hydranet/internal/tcp"
)

// pairConn builds two linked hosts and returns (sched, client stack, server
// stack, server address).
func pairConn(t *testing.T, cfg tcp.Config) (*sim.Scheduler, *tcp.Stack, *tcp.Stack, ipv4.Addr) {
	t.Helper()
	sched := sim.NewScheduler(71)
	nw := netsim.New(sched)
	a := nw.AddNode(netsim.NodeConfig{Name: "client"})
	b := nw.AddNode(netsim.NodeConfig{Name: "server"})
	nw.Connect(a, b, netsim.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond})
	sa, sb := ipv4.NewStack(a, sched), ipv4.NewStack(b, sched)
	serverAddr := ipv4.MustParseAddr("10.0.0.2")
	sa.SetAddr(0, ipv4.MustParseAddr("10.0.0.1"))
	sb.SetAddr(0, serverAddr)
	sa.Routes().AddDefault(0)
	sb.Routes().AddDefault(0)
	return sched, tcp.NewStack(sa, cfg), tcp.NewStack(sb, cfg), serverAddr
}

func TestEchoBackpressure(t *testing.T) {
	// Tiny buffers force Write to return partial/zero inside Echo; no byte
	// may be lost or reordered.
	cfg := tcp.Config{SendBufSize: 2048, RecvBufSize: 2048}
	sched, cs, ss, serverAddr := pairConn(t, cfg)
	l, _ := ss.Listen(0, 7)
	l.SetAcceptFunc(Echo)
	payload := make([]byte, 100_000)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	conn, err := cs.Connect(0, tcp.Endpoint{Addr: serverAddr, Port: 7})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	Collect(conn, &got)
	Source(conn, payload, true)
	sched.RunUntil(5 * time.Minute)
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo through tiny buffers: %d of %d bytes", len(got), len(payload))
	}
}

func TestEchoClosesAfterPeer(t *testing.T) {
	sched, cs, ss, serverAddr := pairConn(t, tcp.Config{TimeWaitDuration: time.Second})
	l, _ := ss.Listen(0, 7)
	l.SetAcceptFunc(Echo)
	conn, _ := cs.Connect(0, tcp.Endpoint{Addr: serverAddr, Port: 7})
	closed := false
	conn.OnClosed(func(err error) { closed = err == nil })
	Source(conn, []byte("bye"), true)
	sched.RunUntil(time.Minute)
	if !closed {
		t.Fatal("echo server did not close back; client never finished")
	}
	if ss.NumConns() != 0 {
		t.Fatalf("server still tracks %d conns", ss.NumConns())
	}
}

func TestSinkCountsAndEOF(t *testing.T) {
	sched, cs, ss, serverAddr := pairConn(t, tcp.Config{})
	l, _ := ss.Listen(0, 9)
	var st *SinkStats
	l.SetAcceptFunc(func(c *tcp.Conn) { st = Sink(c) })
	conn, _ := cs.Connect(0, tcp.Endpoint{Addr: serverAddr, Port: 9})
	Source(conn, make([]byte, 50_000), true)
	sched.RunUntil(time.Minute)
	if st == nil || st.Bytes != 50_000 || !st.EOF {
		t.Fatalf("sink stats = %+v", st)
	}
}

func TestSourceOnAlreadyEstablishedConn(t *testing.T) {
	sched, cs, ss, serverAddr := pairConn(t, tcp.Config{})
	l, _ := ss.Listen(0, 9)
	var st *SinkStats
	l.SetAcceptFunc(func(c *tcp.Conn) { st = Sink(c) })
	conn, _ := cs.Connect(0, tcp.Endpoint{Addr: serverAddr, Port: 9})
	sched.RunUntil(time.Second) // establish first
	Source(conn, []byte("late start"), true)
	sched.RunUntil(time.Minute)
	if st == nil || st.Bytes != 10 {
		t.Fatalf("late Source delivered %+v", st)
	}
}
