package app

import (
	"fmt"
	"strconv"
	"strings"

	"hydranet/internal/tcp"
)

// The mini-HTTP protocol used by examples and the cache agent:
//
//	request:  "GET <path>\n"
//	response: "<status> <content-length>\n<body>"
//
// One request per connection, like HTTP/1.0 without keep-alive.

// HTTPServer returns an accept handler serving the given pages. Unknown
// paths get a 404.
func HTTPServer(pages map[string]string) func(*tcp.Conn) {
	return func(c *tcp.Conn) {
		readRequestLine(c, func(path string) {
			body, ok := pages[path]
			status := 200
			if !ok {
				status, body = 404, "not found: "+path
			}
			Source(c, encodeResponse(status, []byte(body)), true)
		})
	}
}

// HTTPGet issues one request over an established or connecting conn and
// calls done with the parsed response (or ok=false on connection failure).
func HTTPGet(c *tcp.Conn, path string, done func(status int, body []byte, ok bool)) {
	var buf []byte
	finished := false
	finish := func(status int, body []byte, ok bool) {
		if finished {
			return
		}
		finished = true
		done(status, body, ok)
	}
	c.OnReadable(func() {
		tmp := make([]byte, 4096)
		for {
			n := c.Read(tmp)
			if n == 0 {
				break
			}
			buf = append(buf, tmp[:n]...)
		}
		if status, body, complete := decodeResponse(buf); complete {
			finish(status, body, true)
		} else if c.PeerClosed() {
			finish(0, nil, false)
		}
	})
	c.OnClosed(func(err error) {
		if err != nil {
			finish(0, nil, false)
		}
	})
	Source(c, []byte("GET "+path+"\n"), false)
}

// CacheAgent is the paper's "active cache": a scaled-down replica running
// on a host server as agent of the origin service. Hits are served from
// memory under the service's virtual address; misses are fetched from the
// origin over an ordinary TCP connection and remembered.
type CacheAgent struct {
	dialOrigin func() (*tcp.Conn, error)
	cache      map[string][]byte
	status     map[string]int

	// Stats
	hits, misses uint64
	// pending coalesces concurrent misses for the same path.
	pending map[string][]*tcp.Conn
}

// NewCacheAgent creates an agent that reaches its origin via dialOrigin.
func NewCacheAgent(dialOrigin func() (*tcp.Conn, error)) *CacheAgent {
	return &CacheAgent{
		dialOrigin: dialOrigin,
		cache:      make(map[string][]byte),
		status:     make(map[string]int),
		pending:    make(map[string][]*tcp.Conn),
	}
}

// Stats returns cache hits and origin fetches.
func (a *CacheAgent) Stats() (hits, misses uint64) { return a.hits, a.misses }

// Accept is the agent's TCP accept handler.
func (a *CacheAgent) Accept(c *tcp.Conn) {
	readRequestLine(c, func(path string) {
		if body, ok := a.cache[path]; ok {
			a.hits++
			Source(c, encodeResponse(a.status[path], body), true)
			return
		}
		// Miss: queue the client and fetch once.
		a.pending[path] = append(a.pending[path], c)
		if len(a.pending[path]) > 1 {
			return // a fetch is already in flight
		}
		a.misses++
		a.fetch(path)
	})
}

func (a *CacheAgent) fetch(path string) {
	fail := func() {
		for _, w := range a.pending[path] {
			Source(w, encodeResponse(502, []byte("origin unreachable")), true)
		}
		delete(a.pending, path)
	}
	oc, err := a.dialOrigin()
	if err != nil {
		fail()
		return
	}
	HTTPGet(oc, path, func(status int, body []byte, ok bool) {
		if !ok {
			fail()
			return
		}
		a.cache[path] = body
		a.status[path] = status
		for _, w := range a.pending[path] {
			Source(w, encodeResponse(status, body), true)
		}
		delete(a.pending, path)
	})
}

// --- wire helpers -----------------------------------------------------------

func encodeResponse(status int, body []byte) []byte {
	head := fmt.Sprintf("%d %d\n", status, len(body))
	return append([]byte(head), body...)
}

// decodeResponse returns the parsed response once fully buffered.
func decodeResponse(buf []byte) (status int, body []byte, complete bool) {
	i := strings.IndexByte(string(buf), '\n')
	if i < 0 {
		return 0, nil, false
	}
	parts := strings.Fields(string(buf[:i]))
	if len(parts) != 2 {
		return 0, nil, false
	}
	status, err1 := strconv.Atoi(parts[0])
	n, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return 0, nil, false
	}
	rest := buf[i+1:]
	if len(rest) < n {
		return 0, nil, false
	}
	return status, rest[:n], true
}

// readRequestLine buffers until the first newline and hands the path to fn.
func readRequestLine(c *tcp.Conn, fn func(path string)) {
	var req []byte
	handled := false
	c.OnReadable(func() {
		if handled {
			return
		}
		tmp := make([]byte, 1024)
		for {
			n := c.Read(tmp)
			if n == 0 {
				break
			}
			req = append(req, tmp[:n]...)
		}
		i := strings.IndexByte(string(req), '\n')
		if i < 0 {
			return
		}
		handled = true
		line := strings.TrimSpace(string(req[:i]))
		path := strings.TrimSpace(strings.TrimPrefix(line, "GET"))
		fn(path)
	})
}
