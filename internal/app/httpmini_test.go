package app

import (
	"testing"
	"time"

	"hydranet/internal/tcp"
)

func TestHTTPServerAndGet(t *testing.T) {
	sched, cs, ss, serverAddr := pairConn(t, tcp.Config{})
	l, _ := ss.Listen(0, 80)
	l.SetAcceptFunc(HTTPServer(map[string]string{
		"/":     "home",
		"/long": string(make([]byte, 50_000)),
	}))

	get := func(path string) (int, int, bool) {
		conn, err := cs.Connect(0, tcp.Endpoint{Addr: serverAddr, Port: 80})
		if err != nil {
			t.Fatal(err)
		}
		var status, n int
		ok := false
		HTTPGet(conn, path, func(s int, body []byte, good bool) {
			status, n, ok = s, len(body), good
		})
		sched.RunUntil(sched.Now() + time.Minute)
		return status, n, ok
	}

	if s, n, ok := get("/"); !ok || s != 200 || n != 4 {
		t.Fatalf("GET / = %d %d ok=%v", s, n, ok)
	}
	if s, n, ok := get("/long"); !ok || s != 200 || n != 50_000 {
		t.Fatalf("GET /long = %d %d ok=%v (body must span many segments)", s, n, ok)
	}
	if s, _, ok := get("/nope"); !ok || s != 404 {
		t.Fatalf("GET /nope = %d ok=%v", s, ok)
	}
}

func TestDecodeResponseIncremental(t *testing.T) {
	full := encodeResponse(200, []byte("abcdef"))
	for cut := 0; cut < len(full); cut++ {
		if _, _, complete := decodeResponse(full[:cut]); complete {
			t.Fatalf("response complete at %d of %d bytes", cut, len(full))
		}
	}
	status, body, complete := decodeResponse(full)
	if !complete || status != 200 || string(body) != "abcdef" {
		t.Fatalf("decode = %d %q %v", status, body, complete)
	}
}

func TestCacheAgentCoalescesConcurrentMisses(t *testing.T) {
	sched, cs, ss, serverAddr := pairConn(t, tcp.Config{})
	// "Origin" on the server host; the agent runs on the client host and
	// dials back for misses. The two roles just need distinct stacks.
	origin, _ := ss.Listen(0, 8080)
	fetches := 0
	serve := HTTPServer(map[string]string{"/x": "payload"})
	origin.SetAcceptFunc(func(c *tcp.Conn) {
		fetches++
		serve(c)
	})
	agent := NewCacheAgent(func() (*tcp.Conn, error) {
		return cs.Connect(0, tcp.Endpoint{Addr: serverAddr, Port: 8080})
	})
	clientAddr := cs.IP().Addr(0)
	front, _ := cs.Listen(0, 80)
	front.SetAcceptFunc(agent.Accept)

	// Two concurrent requests for the same path before any response can
	// arrive: the agent must fetch once and answer both.
	answered := 0
	for i := 0; i < 2; i++ {
		conn, err := ss.Connect(0, tcp.Endpoint{Addr: clientAddr, Port: 80})
		if err != nil {
			t.Fatal(err)
		}
		HTTPGet(conn, "/x", func(s int, body []byte, ok bool) {
			if ok && s == 200 && string(body) == "payload" {
				answered++
			}
		})
	}
	sched.RunUntil(sched.Now() + time.Minute)
	if answered != 2 {
		t.Fatalf("answered = %d, want 2", answered)
	}
	if fetches != 1 {
		t.Fatalf("origin fetches = %d, want 1 (coalesced)", fetches)
	}
	if hits, misses := agent.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("agent stats hits=%d misses=%d", hits, misses)
	}
}
