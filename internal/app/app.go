// Package app provides small event-driven applications over the simulated
// TCP socket API: echo and sink servers, data sources, a minimal HTTP-like
// request/response server, and a stream feeder. They handle backpressure
// correctly (no byte is dropped when the send buffer fills), which matters
// doubly under HydraNet-FT: every replica runs the same application, and
// the byte streams they produce must be identical.
package app

import (
	"hydranet/internal/tcp"
)

// Echo returns everything it receives and closes when the peer closes.
func Echo(c *tcp.Conn) {
	var pending []byte
	peerDone := false
	buf := make([]byte, 4096)
	flush := func() {
		for len(pending) > 0 {
			n := c.Write(pending)
			if n == 0 {
				return
			}
			pending = pending[n:]
		}
		if peerDone {
			c.Close()
		}
	}
	c.OnReadable(func() {
		for {
			n := c.Read(buf)
			if n == 0 {
				break
			}
			pending = append(pending, buf[:n]...)
		}
		if c.PeerClosed() {
			peerDone = true
		}
		flush()
	})
	c.OnWritable(flush)
}

// SinkStats records what a Sink consumed.
type SinkStats struct {
	Bytes int
	EOF   bool
}

// Sink consumes and discards inbound data, closing after EOF. It returns a
// stats record that updates as data arrives.
func Sink(c *tcp.Conn) *SinkStats {
	st := &SinkStats{}
	buf := make([]byte, 8192)
	c.OnReadable(func() {
		for {
			n := c.Read(buf)
			if n == 0 {
				break
			}
			st.Bytes += n
		}
		if c.PeerClosed() && !st.EOF {
			st.EOF = true
			c.Close()
		}
	})
	return st
}

// Collect accumulates all received bytes into out.
func Collect(c *tcp.Conn, out *[]byte) {
	buf := make([]byte, 8192)
	c.OnReadable(func() {
		for {
			n := c.Read(buf)
			if n == 0 {
				break
			}
			*out = append(*out, buf[:n]...)
		}
	})
}

// Source writes payload to the connection as buffer space allows and, if
// closeWhenDone, closes afterwards. Call before or after the connection
// establishes; it hooks OnConnected and OnWritable.
func Source(c *tcp.Conn, payload []byte, closeWhenDone bool) {
	rest := payload
	var feed func()
	feed = func() {
		for len(rest) > 0 {
			n := c.Write(rest)
			if n == 0 {
				return
			}
			rest = rest[n:]
		}
		if closeWhenDone {
			c.Close()
			closeWhenDone = false
		}
	}
	c.OnWritable(feed)
	c.OnConnected(feed)
	if c.State() == tcp.StateEstablished {
		feed()
	}
}
