package icmp_test

import (
	"testing"
	"testing/quick"
	"time"

	"hydranet"
	"hydranet/internal/icmp"
	"hydranet/internal/ipv4"
	"hydranet/internal/udp"
)

func TestMessageRoundTrip(t *testing.T) {
	f := func(typRaw, code uint8, id, seq uint16, payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		in := &icmp.Message{
			Type: icmp.Type(typRaw), Code: code, ID: id, Seq: seq, Payload: payload,
		}
		out, err := icmp.Unmarshal(in.Marshal())
		if err != nil {
			return false
		}
		if out.Type != in.Type || out.Code != in.Code || out.ID != in.ID || out.Seq != in.Seq {
			return false
		}
		return string(out.Payload) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	m := icmp.Message{Type: icmp.TypeEchoRequest, ID: 1, Seq: 2, Payload: []byte("x")}
	b := m.Marshal()
	b[len(b)-1] ^= 0xff
	if _, err := icmp.Unmarshal(b); err == nil {
		t.Error("corrupt message accepted")
	}
	if _, err := icmp.Unmarshal(b[:4]); err == nil {
		t.Error("truncated message accepted")
	}
}

// chainNet builds client — r1 — r2 — server.
func chainNet(t *testing.T) (*hydranet.Net, *hydranet.Host, *hydranet.Host, *hydranet.Host, *hydranet.Host) {
	t.Helper()
	net := hydranet.New(hydranet.Config{Seed: 91})
	client := net.AddHost("client", hydranet.HostConfig{})
	r1 := net.AddRouter("r1", hydranet.HostConfig{})
	r2 := net.AddRouter("r2", hydranet.HostConfig{})
	server := net.AddHost("server", hydranet.HostConfig{})
	link := hydranet.LinkConfig{Rate: 10_000_000, Delay: 2 * time.Millisecond}
	net.Link(client, r1, link)
	net.Link(r1, r2, link)
	net.Link(r2, server, link)
	net.AutoRoute()
	return net, client, r1, r2, server
}

func TestPingEndToEnd(t *testing.T) {
	net, client, _, _, server := chainNet(t)
	var res icmp.EchoResult
	got := false
	client.Ping(server.Addr(), 5*time.Second, func(r icmp.EchoResult) { res = r; got = true })
	net.RunFor(time.Second)
	if !got {
		t.Fatal("ping never completed")
	}
	if res.TimedOut || res.Unreachable {
		t.Fatalf("ping failed: %+v", res)
	}
	if res.From != server.Addr() {
		t.Errorf("reply from %s, want %s", res.From, server.Addr())
	}
	// 3 hops each way over 2 ms links: RTT at least 12 ms.
	if res.RTT < 12*time.Millisecond {
		t.Errorf("RTT %v implausibly low", res.RTT)
	}
}

func TestPingTimeout(t *testing.T) {
	// A routable address with no machine behind it: the probe crosses the
	// routers, falls off the last link, and the echo times out.
	net, client, _, _, server := chainNet(t)
	ghost := server.Addr() + 7
	var res icmp.EchoResult
	got := false
	client.Ping(ghost, 2*time.Second, func(r icmp.EchoResult) { res = r; got = true })
	net.RunFor(5 * time.Second)
	if !got || !res.TimedOut {
		t.Fatalf("expected timeout, got %+v (done=%v)", res, got)
	}
}

func TestPingNoRouteIsImmediatelyUnreachable(t *testing.T) {
	net, client, _, _, _ := chainNet(t)
	var res icmp.EchoResult
	client.Ping(hydranet.MustAddr("203.0.113.99"), 2*time.Second,
		func(r icmp.EchoResult) { res = r })
	net.RunFor(time.Second)
	if !res.Unreachable {
		t.Fatalf("expected local unreachable, got %+v", res)
	}
}

func TestTimeExceededFromIntermediateRouter(t *testing.T) {
	net, client, r1, _, server := chainNet(t)
	var res icmp.EchoResult
	got := false
	client.ICMP().Ping(server.Addr(), 1, 2*time.Second,
		func(r icmp.EchoResult) { res = r; got = true })
	net.RunFor(3 * time.Second)
	if !got {
		t.Fatal("no response to TTL-1 probe")
	}
	if !res.TimeExceeded {
		t.Fatalf("want time-exceeded, got %+v", res)
	}
	if res.From != r1.Addr() {
		t.Errorf("error from %s, want first router %s", res.From, r1.Addr())
	}
}

func TestTraceroute(t *testing.T) {
	net, client, r1, r2, server := chainNet(t)
	var hops []hydranet.Addr
	done := false
	client.Traceroute(server.Addr(), 8, func(h []hydranet.Addr) { hops = h; done = true })
	net.RunFor(30 * time.Second)
	if !done {
		t.Fatal("traceroute never finished")
	}
	if len(hops) != 3 {
		t.Fatalf("hops = %v, want 3", hops)
	}
	if hops[0] != r1.Addr() || hops[1] != r2.Addr() || hops[2] != server.Addr() {
		t.Fatalf("path = %v, want [r1 r2 server]", hops)
	}
}

func TestPortUnreachable(t *testing.T) {
	net, client, _, _, server := chainNet(t)
	seen := false
	var quoted *ipv4.Header
	client.ICMP().OnError(func(m *icmp.Message, inner *ipv4.Header) {
		if m.Type == icmp.TypeUnreachable && m.Code == icmp.CodePortUnreachable {
			seen = true
			quoted = inner
		}
	})
	_ = client.UDP().SendTo(0, 4000,
		udp.Endpoint{Addr: server.Addr(), Port: 4999}, []byte("anyone home?"))
	net.RunFor(time.Second)
	if !seen {
		t.Fatal("no port-unreachable for a closed UDP port")
	}
	if quoted == nil || quoted.Dst != server.Addr() || quoted.Proto != ipv4.ProtoUDP {
		t.Fatalf("quoted header wrong: %+v", quoted)
	}
}

func TestPingVirtualServiceAddress(t *testing.T) {
	// A virtual host answers pings under its virtual address — transparency
	// extends to ICMP.
	net := hydranet.New(hydranet.Config{Seed: 92})
	client := net.AddHost("client", hydranet.HostConfig{})
	rd := net.AddRedirector("rd", hydranet.HostConfig{})
	hs := net.AddHost("hs", hydranet.HostConfig{})
	link := hydranet.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	net.Link(client, rd.Host, link)
	net.Link(hs, rd.Host, link)
	net.AutoRoute()
	vaddr := hydranet.MustAddr("192.20.225.20")
	hs.HostServer().VHost(vaddr)
	// Ping to the virtual address routes via the redirector's default...
	// the redirector has no table entry for ICMP, so the packet would be
	// dropped; ping the host server's real address through the router
	// instead (virtual addresses are reachable for TCP via redirection
	// only — documented behaviour).
	var res icmp.EchoResult
	client.Ping(hs.Addr(), 2*time.Second, func(r icmp.EchoResult) { res = r })
	net.RunFor(time.Second)
	if res.From != hs.Addr() || res.TimedOut {
		t.Fatalf("ping result %+v", res)
	}
}
