// Package icmp implements the control-message protocol for the simulated
// internetwork: echo request/reply (ping), destination unreachable, and
// time exceeded. Routers and hosts report forwarding errors through it,
// which gives the HydraNet testbed working ping and traceroute semantics
// and gives transports the classic error signals.
package icmp

import (
	"errors"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/sim"
)

// Protocol is the IPv4 protocol number for ICMP.
const Protocol uint8 = 1

// Type is an ICMP message type.
type Type uint8

// Message types.
const (
	TypeEchoReply    Type = 0
	TypeUnreachable  Type = 3
	TypeEchoRequest  Type = 8
	TypeTimeExceeded Type = 11
)

// Unreachable codes.
const (
	CodeNetUnreachable  uint8 = 0
	CodeHostUnreachable uint8 = 1
	CodePortUnreachable uint8 = 3
	CodeFragNeeded      uint8 = 4
)

// HeaderLen is the fixed ICMP header size.
const HeaderLen = 8

// Message is a parsed ICMP message.
type Message struct {
	Type Type
	Code uint8
	// ID and Seq identify echo transactions (echo messages only).
	ID, Seq uint16
	// Payload carries echo data, or the original IP header + 8 bytes for
	// error messages.
	Payload []byte
}

// ErrTruncated reports an undecodable ICMP message.
var ErrTruncated = errors.New("icmp: truncated message")

// Marshal encodes the message with checksum.
func (m *Message) Marshal() []byte {
	b := make([]byte, HeaderLen+len(m.Payload))
	b[0] = byte(m.Type)
	b[1] = m.Code
	b[4] = byte(m.ID >> 8)
	b[5] = byte(m.ID)
	b[6] = byte(m.Seq >> 8)
	b[7] = byte(m.Seq)
	copy(b[HeaderLen:], m.Payload)
	sum := ipv4.Checksum(b)
	b[2] = byte(sum >> 8)
	b[3] = byte(sum)
	return b
}

// Unmarshal decodes and validates a wire-format message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < HeaderLen {
		return nil, ErrTruncated
	}
	if ipv4.Checksum(b) != 0 {
		return nil, errors.New("icmp: checksum mismatch")
	}
	return &Message{
		Type:    Type(b[0]),
		Code:    b[1],
		ID:      uint16(b[4])<<8 | uint16(b[5]),
		Seq:     uint16(b[6])<<8 | uint16(b[7]),
		Payload: b[HeaderLen:],
	}, nil
}

// EchoResult reports the outcome of one ping.
type EchoResult struct {
	From ipv4.Addr
	Seq  uint16
	RTT  time.Duration
	// TimedOut is set when no reply arrived within the deadline.
	TimedOut bool
	// Unreachable/TimeExceeded report ICMP errors instead of a reply;
	// From then names the reporting router.
	Unreachable  bool
	TimeExceeded bool
}

// ErrorFunc observes ICMP error messages (unreachable, time exceeded)
// delivered to this host, with the inner header of the offending packet.
type ErrorFunc func(msg *Message, inner *ipv4.Header)

type pendingEcho struct {
	sentAt   time.Duration
	deadline sim.Event
	done     func(EchoResult)
}

type echoKey struct {
	id, seq uint16
}

// Stack is the per-node ICMP layer.
type Stack struct {
	ip      *ipv4.Stack
	sched   *sim.Scheduler
	nextID  uint16
	pending map[echoKey]*pendingEcho
	onError ErrorFunc

	// Stats
	echoed, replies, errorsIn, errorsOut uint64
}

var _ ipv4.ProtocolHandler = (*Stack)(nil)

// NewStack creates the ICMP layer: it registers for protocol 1 and installs
// itself as the IP stack's error reporter, so TTL expiry and routing
// failures on this node emit Time Exceeded / Unreachable messages.
func NewStack(ip *ipv4.Stack) *Stack {
	s := &Stack{
		ip:      ip,
		sched:   ip.Scheduler(),
		pending: make(map[echoKey]*pendingEcho),
	}
	ip.RegisterProto(Protocol, s)
	ip.SetErrorReporter(s.reportIPError)
	return s
}

// OnError installs an observer for inbound ICMP errors.
func (s *Stack) OnError(fn ErrorFunc) { s.onError = fn }

// Rebind moves the layer onto another scheduler — the node's domain
// scheduler after a parallel partition. Call before any traffic: a ping in
// flight has its deadline armed on the old scheduler, so that panics.
func (s *Stack) Rebind(sched *sim.Scheduler) {
	if len(s.pending) > 0 {
		panic("icmp: Rebind with echoes in flight")
	}
	s.sched = sched
}

// Stats returns echo requests answered, echo replies received, errors
// received and errors emitted.
func (s *Stack) Stats() (echoed, replies, errorsIn, errorsOut uint64) {
	return s.echoed, s.replies, s.errorsIn, s.errorsOut
}

// Ping sends one echo request to dst and calls done with the outcome. ttl
// zero means the default; small ttls implement traceroute probing.
func (s *Stack) Ping(dst ipv4.Addr, ttl uint8, timeout time.Duration, done func(EchoResult)) {
	s.nextID++
	id := s.nextID
	const seq = 1
	key := echoKey{id: id, seq: seq}
	p := &pendingEcho{sentAt: s.sched.Now(), done: done}
	p.deadline = s.sched.After(timeout, func() {
		delete(s.pending, key)
		done(EchoResult{Seq: seq, TimedOut: true})
	})
	s.pending[key] = p
	msg := Message{Type: TypeEchoRequest, ID: id, Seq: seq, Payload: []byte("hydranet ping")}
	pkt := &ipv4.Packet{
		Header: ipv4.Header{
			TTL: ipv4.DefaultTTL, Proto: Protocol, Dst: dst, ID: s.ip.AllocID(),
		},
		Payload: msg.Marshal(),
	}
	if ttl != 0 {
		pkt.TTL = ttl
	}
	if ifindex := s.ip.Routes().Lookup(dst); ifindex >= 0 {
		pkt.Src = s.ip.Addr(ifindex)
	}
	if err := s.ip.SendPacket(pkt); err != nil {
		p.deadline.Cancel()
		delete(s.pending, key)
		done(EchoResult{Seq: seq, Unreachable: true})
	}
}

// DeliverIP implements ipv4.ProtocolHandler.
func (s *Stack) DeliverIP(pkt *ipv4.Packet) {
	msg, err := Unmarshal(pkt.Payload)
	if err != nil {
		return
	}
	switch msg.Type {
	case TypeEchoRequest:
		s.echoed++
		reply := Message{Type: TypeEchoReply, ID: msg.ID, Seq: msg.Seq, Payload: msg.Payload}
		// Reply from the address that was pinged (it may be virtual).
		_ = s.ip.Send(Protocol, pkt.Dst, pkt.Src, reply.Marshal()) //nolint:errcheck
	case TypeEchoReply:
		s.replies++
		key := echoKey{id: msg.ID, seq: msg.Seq}
		if p := s.pending[key]; p != nil {
			p.deadline.Cancel()
			delete(s.pending, key)
			p.done(EchoResult{From: pkt.Src, Seq: msg.Seq, RTT: s.sched.Now() - p.sentAt})
		}
	case TypeUnreachable, TypeTimeExceeded:
		s.errorsIn++
		inner, innerErr := ipv4.Unmarshal(msg.Payload)
		var hdr *ipv4.Header
		if innerErr == nil {
			hdr = &inner.Header
		}
		// An error about one of our outstanding echoes resolves it. The
		// quote holds only the first 8 bytes of the offending ICMP
		// message, so its checksum no longer verifies — parse the header
		// fields directly.
		if hdr != nil && hdr.Proto == Protocol && innerErr == nil &&
			len(inner.Payload) >= HeaderLen && Type(inner.Payload[0]) == TypeEchoRequest {
			id := uint16(inner.Payload[4])<<8 | uint16(inner.Payload[5])
			seq := uint16(inner.Payload[6])<<8 | uint16(inner.Payload[7])
			key := echoKey{id: id, seq: seq}
			if p := s.pending[key]; p != nil {
				p.deadline.Cancel()
				delete(s.pending, key)
				p.done(EchoResult{
					From:         pkt.Src,
					Seq:          seq,
					RTT:          s.sched.Now() - p.sentAt,
					Unreachable:  msg.Type == TypeUnreachable,
					TimeExceeded: msg.Type == TypeTimeExceeded,
				})
			}
		}
		if s.onError != nil {
			s.onError(msg, hdr)
		}
	}
}

// reportIPError converts an IP-layer failure into the matching ICMP error,
// quoting the offending packet's header plus 8 payload bytes, per RFC 792.
func (s *Stack) reportIPError(reason ipv4.ErrorReason, offending *ipv4.Packet) {
	// Never generate errors about ICMP errors or non-initial fragments.
	if offending.Proto == Protocol {
		if m, err := Unmarshal(offending.Payload); err == nil &&
			m.Type != TypeEchoRequest && m.Type != TypeEchoReply {
			return
		}
	}
	if offending.FragOff != 0 {
		return
	}
	var typ Type
	var code uint8
	switch reason {
	case ipv4.ErrorTTLExceeded:
		typ = TypeTimeExceeded
	case ipv4.ErrorNoRoute:
		typ, code = TypeUnreachable, CodeHostUnreachable
	case ipv4.ErrorNoListener:
		typ, code = TypeUnreachable, CodePortUnreachable
	case ipv4.ErrorFragNeeded:
		typ, code = TypeUnreachable, CodeFragNeeded
	default:
		return
	}
	quote, err := (&ipv4.Packet{Header: offending.Header, Payload: head(offending.Payload, 8)}).Marshal()
	if err != nil {
		return
	}
	s.errorsOut++
	msg := Message{Type: typ, Code: code, Payload: quote}
	_ = s.ip.Send(Protocol, 0, offending.Src, msg.Marshal()) //nolint:errcheck
}

func head(b []byte, n int) []byte {
	if len(b) < n {
		return b
	}
	return b[:n]
}
