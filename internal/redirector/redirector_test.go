package redirector

import (
	"testing"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/netsim"
	"hydranet/internal/sim"
)

type ipipSink struct {
	inner []*ipv4.Packet
	outer []*ipv4.Packet
	ip    *ipv4.Stack
}

func (s *ipipSink) DeliverIP(p *ipv4.Packet) {
	s.outer = append(s.outer, p)
	if in, err := ipv4.Unmarshal(p.Payload); err == nil {
		s.inner = append(s.inner, in)
	}
}

// rig builds: client — rd — {h1, h2} and returns the pieces. h1/h2 record
// tunneled packets.
func rig(t *testing.T) (*sim.Scheduler, *ipv4.Stack, *Redirector, *ipipSink, *ipipSink, [2]ipv4.Addr) {
	t.Helper()
	sched := sim.NewScheduler(41)
	nw := netsim.New(sched)
	cl := nw.AddNode(netsim.NodeConfig{Name: "client"})
	rt := nw.AddNode(netsim.NodeConfig{Name: "rd"})
	h1 := nw.AddNode(netsim.NodeConfig{Name: "h1"})
	h2 := nw.AddNode(netsim.NodeConfig{Name: "h2"})
	link := netsim.LinkConfig{Delay: time.Millisecond}
	nw.Connect(cl, rt, link)
	nw.Connect(h1, rt, link)
	nw.Connect(h2, rt, link)

	cs := ipv4.NewStack(cl, sched)
	rs := ipv4.NewStack(rt, sched)
	s1 := ipv4.NewStack(h1, sched)
	s2 := ipv4.NewStack(h2, sched)

	cs.SetAddr(0, ipv4.MustParseAddr("10.1.0.2"))
	rs.SetAddr(0, ipv4.MustParseAddr("10.1.0.1"))
	rs.SetAddr(1, ipv4.MustParseAddr("10.2.0.1"))
	rs.SetAddr(2, ipv4.MustParseAddr("10.3.0.1"))
	a1, a2 := ipv4.MustParseAddr("10.2.0.2"), ipv4.MustParseAddr("10.3.0.2")
	s1.SetAddr(0, a1)
	s2.SetAddr(0, a2)

	cs.Routes().AddDefault(0)
	s1.Routes().AddDefault(0)
	s2.Routes().AddDefault(0)
	rs.Routes().Add(ipv4.Route{Dst: ipv4.MustParsePrefix("10.1.0.0/24"), Ifindex: 0})
	rs.Routes().Add(ipv4.Route{Dst: ipv4.MustParsePrefix("10.2.0.0/24"), Ifindex: 1})
	rs.Routes().Add(ipv4.Route{Dst: ipv4.MustParsePrefix("10.3.0.0/24"), Ifindex: 2})
	rs.SetForwarding(true)

	rd := New(rs)
	k1, k2 := &ipipSink{ip: s1}, &ipipSink{ip: s2}
	s1.RegisterProto(ipv4.ProtoIPIP, k1)
	s2.RegisterProto(ipv4.ProtoIPIP, k2)
	return sched, cs, rd, k1, k2, [2]ipv4.Addr{a1, a2}
}

// udpTo builds a minimal UDP payload with the given destination port.
func udpTo(dstPort uint16) []byte {
	b := make([]byte, 12)
	b[2] = byte(dstPort >> 8)
	b[3] = byte(dstPort)
	b[4] = 0
	b[5] = 12
	return b
}

var svcAddr = ipv4.MustParseAddr("192.20.225.20")

func TestFTMulticastToAllReplicas(t *testing.T) {
	sched, cs, rd, k1, k2, hosts := rig(t)
	rd.SetFTReplicas(ServiceKey{Addr: svcAddr, Port: 80}, hosts[0], []ipv4.Addr{hosts[1]})
	if err := cs.Send(ipv4.ProtoUDP, 0, svcAddr, udpTo(80)); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(k1.inner) != 1 || len(k2.inner) != 1 {
		t.Fatalf("copies: primary=%d backup=%d, want 1 each", len(k1.inner), len(k2.inner))
	}
	in := k1.inner[0]
	if in.Dst != svcAddr {
		t.Errorf("inner dst = %s, want service address", in.Dst)
	}
	if in.Src != ipv4.MustParseAddr("10.1.0.2") {
		t.Errorf("inner src = %s, want client address", in.Src)
	}
	st := rd.Stats()
	if st.Multicast != 1 || st.MulticastCopies != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestScalingPicksNearest(t *testing.T) {
	sched, cs, rd, k1, k2, hosts := rig(t)
	key := ServiceKey{Addr: svcAddr, Port: 80}
	rd.AddTarget(key, Target{Host: hosts[1], Metric: 7})
	rd.AddTarget(key, Target{Host: hosts[0], Metric: 2})
	_ = cs.Send(ipv4.ProtoUDP, 0, svcAddr, udpTo(80))
	sched.Run()
	if len(k1.inner) != 1 || len(k2.inner) != 0 {
		t.Fatalf("nearest selection wrong: h1=%d h2=%d", len(k1.inner), len(k2.inner))
	}
}

func TestNonMatchingPortPassesThrough(t *testing.T) {
	sched, cs, rd, k1, k2, hosts := rig(t)
	rd.SetFTReplicas(ServiceKey{Addr: svcAddr, Port: 80}, hosts[0], nil)
	// Port 23 is not in the table; dst host does not exist → router drops,
	// but crucially nothing is tunneled.
	_ = cs.Send(ipv4.ProtoUDP, 0, svcAddr, udpTo(23))
	sched.Run()
	if len(k1.outer)+len(k2.outer) != 0 {
		t.Fatal("unmatched port was tunneled")
	}
	if rd.Stats().PassedThrough == 0 {
		t.Error("pass-through not counted")
	}
}

func TestNonTransportProtocolIgnored(t *testing.T) {
	sched, cs, rd, k1, _, hosts := rig(t)
	rd.SetFTReplicas(ServiceKey{Addr: svcAddr, Port: 80}, hosts[0], nil)
	_ = cs.Send(201, 0, svcAddr, []byte{0, 0, 0, 80}) // bogus protocol
	sched.Run()
	if len(k1.outer) != 0 {
		t.Fatal("non-TCP/UDP packet was redirected")
	}
}

func TestRemoveReplicaPromotesInTable(t *testing.T) {
	_, _, rd, _, _, hosts := rig(t)
	key := ServiceKey{Addr: svcAddr, Port: 80}
	rd.SetFTReplicas(key, hosts[0], []ipv4.Addr{hosts[1]})

	// Removing a backup keeps the primary.
	if p := rd.RemoveReplica(key, hosts[1]); p != hosts[0] {
		t.Fatalf("primary after backup removal = %s", p)
	}
	// Re-add and remove the primary: backup must take over.
	rd.SetFTReplicas(key, hosts[0], []ipv4.Addr{hosts[1]})
	if p := rd.RemoveReplica(key, hosts[0]); p != hosts[1] {
		t.Fatalf("promoted primary = %s, want backup", p)
	}
	// Removing the last member empties the entry.
	if p := rd.RemoveReplica(key, hosts[1]); p != 0 {
		t.Fatalf("primary after emptying = %s, want none", p)
	}
}

func TestInstallRemoveLookup(t *testing.T) {
	_, _, rd, _, _, hosts := rig(t)
	key := ServiceKey{Addr: svcAddr, Port: 443}
	rd.Install(key, &Entry{FT: true, Primary: hosts[0]})
	if rd.Lookup(key) == nil {
		t.Fatal("Lookup after Install failed")
	}
	if n := len(rd.Services()); n != 1 {
		t.Fatalf("Services = %d entries", n)
	}
	rd.Remove(key)
	if rd.Lookup(key) != nil {
		t.Fatal("entry survives Remove")
	}
}

func TestTunnelEncapsulationWellFormed(t *testing.T) {
	sched, cs, rd, k1, _, hosts := rig(t)
	rd.SetFTReplicas(ServiceKey{Addr: svcAddr, Port: 80}, hosts[0], nil)
	_ = cs.Send(ipv4.ProtoUDP, 0, svcAddr, udpTo(80))
	sched.Run()
	if len(k1.outer) != 1 {
		t.Fatal("no tunneled packet")
	}
	outer := k1.outer[0]
	if outer.Proto != ipv4.ProtoIPIP {
		t.Errorf("outer proto = %d", outer.Proto)
	}
	if outer.Dst != hosts[0] {
		t.Errorf("outer dst = %s, want host server", outer.Dst)
	}
	if outer.Src == 0 {
		t.Error("outer src unset")
	}
	inner := k1.inner[0]
	// The inner TTL was decremented once by the redirector's forward path.
	if inner.TTL != ipv4.DefaultTTL-1 {
		t.Errorf("inner TTL = %d, want %d", inner.TTL, ipv4.DefaultTTL-1)
	}
}
