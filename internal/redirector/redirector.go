// Package redirector implements HydraNet redirectors: routers that
// intercept packets destined to replicated services and tunnel them to host
// servers with IP-in-IP encapsulation (paper Sections 3 and 4.2).
//
// For plainly replicated (scaling) services the redirector forwards each
// packet to the nearest host server running a replica. For fault-tolerant
// services it performs a simple non-reliable multicast: one copy to the
// primary and one to each backup. Redirectors take no part in reliable
// delivery — that is the ft-TCP machinery on the host servers.
package redirector

import (
	"fmt"
	"sort"

	"hydranet/internal/ipv4"
	"hydranet/internal/obs"
)

// ServiceKey identifies a redirected transport-level service access point.
type ServiceKey struct {
	Addr ipv4.Addr
	Port uint16
}

// String renders addr:port.
func (k ServiceKey) String() string { return fmt.Sprintf("%s:%d", k.Addr, k.Port) }

// Target is one host server running a replica, with a routing metric used
// for nearest-replica selection in scaling mode.
type Target struct {
	Host   ipv4.Addr
	Metric int
}

// Entry is one redirector-table row.
type Entry struct {
	// FT selects fault-tolerant multicast mode; otherwise scaling mode.
	FT bool
	// Primary and Backups are the FT replica set, in chain order
	// S0 (primary) first.
	Primary ipv4.Addr
	Backups []ipv4.Addr
	// Targets are the scaling-mode replicas.
	Targets []Target
}

// replicas returns every host the entry redirects to in FT mode.
func (e *Entry) replicas() []ipv4.Addr {
	out := make([]ipv4.Addr, 0, 1+len(e.Backups))
	if e.Primary != 0 {
		out = append(out, e.Primary)
	}
	return append(out, e.Backups...)
}

// Stats counts redirector activity.
type Stats struct {
	Redirected      uint64 // packets matched and tunneled (scaling mode)
	Multicast       uint64 // packets matched in FT mode
	MulticastCopies uint64 // tunnel copies emitted in FT mode
	PassedThrough   uint64 // packets inspected but not matched
	TunnelErrors    uint64 // copies dropped for lack of a route
}

// EncapTap observes each packet the redirector tunnels, just before
// encapsulation: inner is the intercepted (pre-encap) packet and host the
// tunnel destination. The packet's Payload/Wire slices alias the fabric's
// frame buffer — valid only during the call, copy to retain. The tap sees
// one call per tunnel copy (so an FT multicast to N replicas taps N times).
type EncapTap func(inner *ipv4.Packet, host ipv4.Addr)

// Redirector attaches to a forwarding IP stack and owns its redirector
// table.
type Redirector struct {
	ip    *ipv4.Stack
	table map[ServiceKey]*Entry
	stats Stats
	bus   *obs.Bus
	tap   EncapTap
}

// New installs a redirector on the given stack. The stack must have
// forwarding enabled to see transit traffic.
func New(ip *ipv4.Stack) *Redirector {
	r := &Redirector{ip: ip, table: make(map[ServiceKey]*Entry)}
	ip.SetForwardHook(r.intercept)
	return r
}

// IP returns the stack the redirector is attached to.
func (r *Redirector) IP() *ipv4.Stack { return r.ip }

// Stats returns a snapshot of activity counters.
func (r *Redirector) Stats() Stats { return r.stats }

// SetBus attaches an observability event bus for multicast, redirect and
// tunnel-error events. A nil bus (the default) disables all emission.
func (r *Redirector) SetBus(b *obs.Bus) { r.bus = b }

// SetEncapTap installs (or, with nil, removes) the encap-path tap. The
// disabled cost is one pointer test per tunnel copy.
func (r *Redirector) SetEncapTap(t EncapTap) { r.tap = t }

func (r *Redirector) nodeName() string { return r.ip.Node().Name() }

// Install adds or replaces a table entry.
func (r *Redirector) Install(key ServiceKey, e *Entry) {
	r.table[key] = e
}

// Remove deletes a table entry.
func (r *Redirector) Remove(key ServiceKey) {
	delete(r.table, key)
}

// Lookup returns the entry for key, or nil.
func (r *Redirector) Lookup(key ServiceKey) *Entry {
	return r.table[key]
}

// Services lists the installed service keys (sorted, for stable output).
func (r *Redirector) Services() []ServiceKey {
	out := make([]ServiceKey, 0, len(r.table))
	for k := range r.table { //hydralint:nondeterministic order normalized by the sort below
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// NumServices returns the number of installed table entries — the
// redirector table-size gauge, read per sampling tick without the sort
// Services pays for.
func (r *Redirector) NumServices() int { return len(r.table) }

// AddTarget adds a scaling-mode replica for key, creating the entry if
// needed.
func (r *Redirector) AddTarget(key ServiceKey, t Target) {
	e := r.table[key]
	if e == nil {
		e = &Entry{}
		r.table[key] = e
	}
	e.Targets = append(e.Targets, t)
}

// SetFTReplicas installs or updates the FT replica set for key, primary
// first.
func (r *Redirector) SetFTReplicas(key ServiceKey, primary ipv4.Addr, backups []ipv4.Addr) {
	e := r.table[key]
	if e == nil {
		e = &Entry{}
		r.table[key] = e
	}
	e.FT = true
	e.Primary = primary
	e.Backups = append([]ipv4.Addr(nil), backups...)
}

// RemoveTarget removes a scaling-mode replica for key (voluntary leave).
func (r *Redirector) RemoveTarget(key ServiceKey, host ipv4.Addr) {
	e := r.table[key]
	if e == nil {
		return
	}
	for i, t := range e.Targets {
		if t.Host == host {
			e.Targets = append(e.Targets[:i], e.Targets[i+1:]...)
			break
		}
	}
	if !e.FT && len(e.Targets) == 0 {
		delete(r.table, key)
	}
}

// RemoveReplica removes a failed host from an FT entry. If the primary was
// removed, the first backup is promoted in the table. It returns the new
// primary (zero if the entry emptied out).
func (r *Redirector) RemoveReplica(key ServiceKey, host ipv4.Addr) ipv4.Addr {
	e := r.table[key]
	if e == nil || !e.FT {
		return 0
	}
	if e.Primary == host {
		if len(e.Backups) == 0 {
			e.Primary = 0
			return 0
		}
		e.Primary = e.Backups[0]
		e.Backups = append([]ipv4.Addr(nil), e.Backups[1:]...)
		return e.Primary
	}
	for i, b := range e.Backups {
		if b == host {
			e.Backups = append(e.Backups[:i], e.Backups[i+1:]...)
			break
		}
	}
	return e.Primary
}

// intercept is the forward-path hook: it inspects transit packets and
// consumes those matching the redirector table.
func (r *Redirector) intercept(p *ipv4.Packet) bool {
	// Ports live in the first 4 bytes of the transport header; only
	// first fragments carry them. TCP segments never exceed the MSS in
	// this stack, so in practice inner packets arrive unfragmented.
	if p.Proto != ipv4.ProtoTCP && p.Proto != ipv4.ProtoUDP {
		return false
	}
	if p.FragOff != 0 || len(p.Payload) < 4 {
		return false
	}
	dstPort := uint16(p.Payload[2])<<8 | uint16(p.Payload[3])
	e := r.table[ServiceKey{Addr: p.Dst, Port: dstPort}]
	if e == nil {
		r.stats.PassedThrough++
		return false
	}
	if e.FT {
		r.stats.Multicast++
		replicas := e.replicas()
		if b := r.bus; b.Enabled(obs.KindMulticast) {
			// Conn identifies the client flow and Seq carries the raw TCP
			// sequence number: because ft-TCP derives the ISS from the
			// 4-tuple, the same raw seq names the same client byte at every
			// replica, which is what lets the span collector correlate this
			// multicast with downstream deposit/ack events.
			ev := obs.Event{
				Kind: obs.KindMulticast, Node: r.nodeName(),
				Service: ServiceKey{Addr: p.Dst, Port: dstPort}.String(),
				Size:    len(replicas),
			}
			srcPort := uint16(p.Payload[0])<<8 | uint16(p.Payload[1])
			ev.Conn = fmt.Sprintf("%s:%d", p.Src, srcPort)
			if p.Proto == ipv4.ProtoTCP && len(p.Payload) >= 13 {
				// Seq is stamped only on data-bearing segments: spans track
				// client byte ranges, and pure ACKs would otherwise pre-claim
				// the next data segment's sequence number.
				dataOff := int(p.Payload[12]>>4) * 4
				if dataOff >= 20 && len(p.Payload) > dataOff {
					ev.Seq = uint64(uint32(p.Payload[4])<<24 | uint32(p.Payload[5])<<16 |
						uint32(p.Payload[6])<<8 | uint32(p.Payload[7]))
				}
			}
			b.Publish(ev)
		}
		for _, host := range replicas {
			r.tunnel(p, host)
			r.stats.MulticastCopies++
		}
		return true
	}
	if t := nearest(e.Targets); t != nil {
		r.stats.Redirected++
		if b := r.bus; b.Enabled(obs.KindRedirect) {
			b.Publish(obs.Event{
				Kind: obs.KindRedirect, Node: r.nodeName(),
				Service: ServiceKey{Addr: p.Dst, Port: dstPort}.String(),
				Detail:  "→" + t.Host.String(),
			})
		}
		r.tunnel(p, t.Host)
		return true
	}
	r.stats.PassedThrough++
	return false
}

func nearest(targets []Target) *Target {
	var best *Target
	for i := range targets {
		if best == nil || targets[i].Metric < best.Metric {
			best = &targets[i]
		}
	}
	return best
}

// tunnel wraps the packet in IP-in-IP and routes it to the host server.
// SendEncap reuses the intercepted packet's wire bytes when the result fits
// the MTU: one copy into a pooled buffer, TTL patched incrementally, outer
// header prepended in place.
func (r *Redirector) tunnel(inner *ipv4.Packet, host ipv4.Addr) {
	if tap := r.tap; tap != nil {
		tap(inner, host)
	}
	if err := r.ip.SendEncap(inner, host); err != nil {
		r.noteTunnelError(host, err.Error())
	}
}

func (r *Redirector) noteTunnelError(host ipv4.Addr, why string) {
	r.stats.TunnelErrors++
	if b := r.bus; b.Enabled(obs.KindTunnelError) {
		b.Publish(obs.Event{
			Kind: obs.KindTunnelError, Node: r.nodeName(),
			Detail: "→" + host.String() + ": " + why,
		})
	}
}
