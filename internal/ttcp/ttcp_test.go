package ttcp

import (
	"testing"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/netsim"
	"hydranet/internal/sim"
	"hydranet/internal/tcp"
)

func rig(t *testing.T) (*sim.Scheduler, *tcp.Stack, *tcp.Stack, ipv4.Addr, *netsim.Network) {
	t.Helper()
	sched := sim.NewScheduler(81)
	nw := netsim.New(sched)
	a := nw.AddNode(netsim.NodeConfig{Name: "client"})
	b := nw.AddNode(netsim.NodeConfig{Name: "server"})
	nw.Connect(a, b, netsim.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond})
	sa, sb := ipv4.NewStack(a, sched), ipv4.NewStack(b, sched)
	serverAddr := ipv4.MustParseAddr("10.0.0.2")
	sa.SetAddr(0, ipv4.MustParseAddr("10.0.0.1"))
	sb.SetAddr(0, serverAddr)
	sa.Routes().AddDefault(0)
	sb.Routes().AddDefault(0)
	cfg := tcp.Config{TimeWaitDuration: time.Millisecond}
	return sched, tcp.NewStack(sa, cfg), tcp.NewStack(sb, cfg), serverAddr, nw
}

func TestParamsCount(t *testing.T) {
	if got := (Params{BufLen: 100, Count: 7}).count(); got != 7 {
		t.Errorf("count = %d", got)
	}
	if got := (Params{BufLen: 100, TotalBytes: 1000}).count(); got != 10 {
		t.Errorf("count = %d", got)
	}
	if got := (Params{BufLen: 300, TotalBytes: 1000}).count(); got != 4 {
		t.Errorf("count = %d (must round up)", got)
	}
}

func TestTransferCompletesAndMeasures(t *testing.T) {
	sched, cs, ss, serverAddr, _ := rig(t)
	l, _ := ss.Listen(0, 5001)
	var rcvd *int
	l.SetAcceptFunc(func(c *tcp.Conn) { rcvd = Sink(c) })
	conn, err := cs.Connect(0, tcp.Endpoint{Addr: serverAddr, Port: 5001})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	done := false
	Transmit(sched, conn, Params{BufLen: 1024, TotalBytes: 100 * 1024},
		func(r Result) { res = r; done = true })
	sched.RunUntil(5 * time.Minute)
	if !done {
		t.Fatal("transfer never completed")
	}
	if res.Err != nil {
		t.Fatalf("transfer error: %v", res.Err)
	}
	if res.Bytes != 100*1024 || *rcvd != 100*1024 {
		t.Fatalf("bytes: sent %d, received %d", res.Bytes, *rcvd)
	}
	if res.Elapsed() <= 0 {
		t.Fatal("elapsed not positive")
	}
	if tp := res.ThroughputKBps(); tp < 100 || tp > 1300 {
		t.Errorf("throughput %v kB/s outside sanity range for 10 Mbit/s", tp)
	}
}

func TestWriteSizeIsSegmentSize(t *testing.T) {
	// The defining property of the paper's measurement: each ttcp write is
	// one TCP segment, never coalesced.
	sched, cs, ss, serverAddr, _ := rig(t)
	l, _ := ss.Listen(0, 5001)
	l.SetAcceptFunc(func(c *tcp.Conn) { Sink(c) })
	sizes := map[int]int{}
	cs.SetTrace(func(dir string, _, _ tcp.Endpoint, seg *tcp.Segment) {
		if dir == "out" && len(seg.Payload) > 0 {
			sizes[len(seg.Payload)]++
		}
	})
	conn, _ := cs.Connect(0, tcp.Endpoint{Addr: serverAddr, Port: 5001})
	done := false
	Transmit(sched, conn, Params{BufLen: 100, Count: 500}, func(Result) { done = true })
	sched.RunUntil(5 * time.Minute)
	if !done {
		t.Fatal("transfer never completed")
	}
	if len(sizes) != 1 || sizes[100] < 500 {
		t.Fatalf("segment size histogram = %v, want only 100-byte segments", sizes)
	}
}

func TestThroughputScalesWithWriteSize(t *testing.T) {
	run := func(buf int) float64 {
		sched, cs, ss, serverAddr, _ := rig(t)
		l, _ := ss.Listen(0, 5001)
		l.SetAcceptFunc(func(c *tcp.Conn) { Sink(c) })
		conn, _ := cs.Connect(0, tcp.Endpoint{Addr: serverAddr, Port: 5001})
		var res Result
		Transmit(sched, conn, Params{BufLen: buf, TotalBytes: 64 * 1024},
			func(r Result) { res = r })
		sched.RunUntil(10 * time.Minute)
		return res.ThroughputKBps()
	}
	small, large := run(64), run(1024)
	if small <= 0 || large <= 0 {
		t.Fatal("zero throughput")
	}
	if large <= small {
		t.Fatalf("throughput must rise with write size: 64B=%.1f 1024B=%.1f", small, large)
	}
}
