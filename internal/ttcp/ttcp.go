// Package ttcp reimplements the ttcp throughput benchmark the paper uses
// for its measurements (Section 5): a transmitter writes a fixed number of
// fixed-size buffers over one TCP connection and the sustained throughput
// is reported. As in the paper, sender-side batching of small segments is
// turned off, so every buffer travels as its own segment.
package ttcp

import (
	"time"

	"hydranet/internal/sim"
	"hydranet/internal/tcp"
)

// Params configure one transfer.
type Params struct {
	// BufLen is the write size — the "packet size" on the paper's x-axis.
	BufLen int
	// Count is the number of writes; total bytes = BufLen * Count.
	Count int
	// TotalBytes, if nonzero, overrides Count as ceil(TotalBytes/BufLen)
	// so sweeps move the same volume at every size.
	TotalBytes int
}

func (p Params) count() int {
	if p.TotalBytes > 0 {
		c := p.TotalBytes / p.BufLen
		if p.TotalBytes%p.BufLen != 0 {
			c++
		}
		return c
	}
	return p.Count
}

// Result is the outcome of a transfer.
type Result struct {
	Bytes    int
	Started  time.Duration // virtual time of the first write
	Finished time.Duration // virtual time the connection closed
	Err      error         // non-nil if the connection failed
	Stats    tcp.ConnStats // client-side connection counters
}

// Elapsed returns the transfer duration.
func (r Result) Elapsed() time.Duration { return r.Finished - r.Started }

// ThroughputKBps returns sustained throughput in kilobytes (1000 bytes) per
// second, the unit of the paper's Figure 4.
func (r Result) ThroughputKBps() float64 {
	e := r.Elapsed()
	if e <= 0 {
		return 0
	}
	return float64(r.Bytes) / e.Seconds() / 1000
}

// Transmit drives a ttcp transfer over conn. onDone fires once, when the
// connection has fully closed (all data delivered and acknowledged) or
// failed.
func Transmit(sched *sim.Scheduler, conn *tcp.Conn, p Params, onDone func(Result)) {
	conn.SetNoDelay(true)
	conn.SetSegmentPerWrite(true)
	buf := make([]byte, p.BufLen)
	for i := range buf {
		buf[i] = byte(i)
	}
	res := Result{}
	remaining := p.count()
	started := false
	feed := func() {
		if !started {
			started = true
			res.Started = sched.Now()
		}
		for remaining > 0 {
			// Whole writes only, so each write is one segment boundary.
			if conn.WriteFree() < p.BufLen {
				return
			}
			if n := conn.Write(buf); n == 0 {
				return
			}
			res.Bytes += p.BufLen
			remaining--
		}
		conn.Close()
	}
	conn.OnWritable(feed)
	conn.OnConnected(feed)
	conn.OnClosed(func(err error) {
		res.Err = err
		res.Finished = sched.Now()
		res.Stats = conn.Stats()
		onDone(res)
	})
	if conn.State() == tcp.StateEstablished {
		feed()
	}
}

// Sink is the receive side: it consumes and discards everything and closes
// after EOF. It returns a counter of bytes received, updated live.
func Sink(c *tcp.Conn) *int {
	total := new(int)
	buf := make([]byte, 16384)
	c.OnReadable(func() {
		for {
			n := c.Read(buf)
			if n == 0 {
				break
			}
			*total += n
		}
		if c.PeerClosed() {
			c.Close()
		}
	})
	return total
}
