package obs

import (
	"testing"
	"time"
)

// TestSnapshotDiffMgmtCounters: interval diffs must cover the redirector's
// management-daemon counters field by field, including the corner cases —
// a previous snapshot taken before the daemon existed (nil Mgmt) and a
// redirector with no match in the previous snapshot at all.
func TestSnapshotDiffMgmtCounters(t *testing.T) {
	prev := Snapshot{
		Time: time.Second,
		Redirectors: []RedirectorSnapshot{{
			Name:  "rd",
			Table: RedirectorCounters{Redirected: 10, Multicast: 5, MulticastCopies: 15},
			Mgmt: &MgmtCounters{
				Registrations: 3, Leaves: 1, Suspicions: 2, ProbesSent: 20,
				HostsFailed: 1, Reconfigs: 1, CongestionEvictions: 0, LeaseExpirations: 4,
			},
		}},
	}
	cur := Snapshot{
		Time: 3 * time.Second,
		Redirectors: []RedirectorSnapshot{
			{
				Name:  "rd",
				Table: RedirectorCounters{Redirected: 25, Multicast: 12, MulticastCopies: 36},
				Mgmt: &MgmtCounters{
					Registrations: 4, Leaves: 1, Suspicions: 5, ProbesSent: 32,
					HostsFailed: 2, Reconfigs: 3, CongestionEvictions: 1, LeaseExpirations: 4,
				},
			},
			{
				Name: "rd2", // no previous entry: passes through unchanged
				Mgmt: &MgmtCounters{Registrations: 7},
			},
		},
	}

	d := cur.Diff(prev)
	if d.Time != 2*time.Second {
		t.Fatalf("diff time = %v, want 2s", d.Time)
	}
	if len(d.Redirectors) != 2 {
		t.Fatalf("diff redirectors = %d, want 2", len(d.Redirectors))
	}
	rd := d.Redirectors[0]
	if rd.Table != (RedirectorCounters{Redirected: 15, Multicast: 7, MulticastCopies: 21}) {
		t.Errorf("table diff = %+v", rd.Table)
	}
	wantMgmt := MgmtCounters{
		Registrations: 1, Leaves: 0, Suspicions: 3, ProbesSent: 12,
		HostsFailed: 1, Reconfigs: 2, CongestionEvictions: 1, LeaseExpirations: 0,
	}
	if rd.Mgmt == nil || *rd.Mgmt != wantMgmt {
		t.Errorf("mgmt diff = %+v, want %+v", rd.Mgmt, wantMgmt)
	}
	if rd2 := d.Redirectors[1]; rd2.Mgmt == nil || rd2.Mgmt.Registrations != 7 {
		t.Errorf("unmatched redirector not passed through: %+v", rd2)
	}
}

// TestSnapshotDiffMgmtNilPrev: the daemon started between the two snapshots
// — the previous Mgmt is nil and the diff must equal the current values.
func TestSnapshotDiffMgmtNilPrev(t *testing.T) {
	prev := Snapshot{
		Time:        time.Second,
		Redirectors: []RedirectorSnapshot{{Name: "rd"}}, // Mgmt nil
	}
	cur := Snapshot{
		Time: 2 * time.Second,
		Redirectors: []RedirectorSnapshot{{
			Name: "rd",
			Mgmt: &MgmtCounters{Registrations: 6, ProbesSent: 9, Reconfigs: 2},
		}},
	}
	d := cur.Diff(prev)
	rd := d.Redirectors[0]
	if rd.Mgmt == nil || *rd.Mgmt != (MgmtCounters{Registrations: 6, ProbesSent: 9, Reconfigs: 2}) {
		t.Fatalf("nil-prev mgmt diff = %+v", rd.Mgmt)
	}

	// And the inverse: the daemon stopped reporting. Current nil stays nil.
	d2 := prev.Diff(cur)
	if d2.Redirectors[0].Mgmt != nil {
		t.Fatalf("nil-current mgmt produced a diff: %+v", d2.Redirectors[0].Mgmt)
	}
}
