package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func testClock(now *time.Duration) func() time.Duration {
	return func() time.Duration { return *now }
}

func TestBusPubSub(t *testing.T) {
	now := 5 * time.Millisecond
	b := NewBus(testClock(&now))
	var got []Event
	b.Subscribe(func(e Event) { got = append(got, e) }, KindRetransmit, KindRTO)

	if !b.Enabled(KindRetransmit) || !b.Enabled(KindRTO) {
		t.Fatal("subscribed kinds not enabled")
	}
	if b.Enabled(KindPromotion) {
		t.Fatal("unsubscribed kind reported enabled")
	}

	b.Publish(Event{Kind: KindRetransmit, Node: "s0", Seq: 42})
	b.Publish(Event{Kind: KindPromotion, Node: "s1"}) // no subscriber: dropped
	b.Publish(Event{Kind: KindRTO, Node: "s0"})

	if len(got) != 2 {
		t.Fatalf("received %d events, want 2", len(got))
	}
	if got[0].Kind != KindRetransmit || got[0].Seq != 42 {
		t.Fatalf("first event = %+v", got[0])
	}
	if got[0].Time != 5*time.Millisecond {
		t.Fatalf("event not timestamped from clock: %v", got[0].Time)
	}
}

func TestBusSubscribeAllKinds(t *testing.T) {
	now := time.Duration(0)
	b := NewBus(testClock(&now))
	n := 0
	b.Subscribe(func(Event) { n++ }) // no kinds = all kinds
	for _, k := range Kinds() {
		if !b.Enabled(k) {
			t.Fatalf("kind %v not enabled by all-kinds subscription", k)
		}
		b.Publish(Event{Kind: k})
	}
	if n != len(Kinds()) {
		t.Fatalf("received %d events, want %d", n, len(Kinds()))
	}
}

func TestBusNilSafe(t *testing.T) {
	var b *Bus
	if b.Enabled(KindRetransmit) {
		t.Fatal("nil bus reports enabled")
	}
	b.Publish(Event{Kind: KindRetransmit}) // must not panic
}

func TestBusDisabledEmitAllocatesNothing(t *testing.T) {
	now := time.Duration(0)
	b := NewBus(testClock(&now))
	b.Subscribe(func(Event) {}, KindPromotion) // something else enabled
	allocs := testing.AllocsPerRun(100, func() {
		// The emit-site pattern: guard first, build the Event only inside.
		if b.Enabled(KindRetransmit) {
			b.Publish(Event{Kind: KindRetransmit, Node: "s0", Detail: "x"})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled emit allocates %v per run, want 0", allocs)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		name := k.String()
		if name == "" || strings.Contains(name, "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := KindByName(name)
		if !ok || back != k {
			t.Fatalf("KindByName(%q) = %v, %v", name, back, ok)
		}
	}
	if _, ok := KindByName("no-such-kind"); ok {
		t.Fatal("bogus name resolved")
	}
}

func TestEventJSONUsesKindName(t *testing.T) {
	e := Event{Time: time.Second, Kind: KindSuspicion, Node: "s1", Service: "10.0.0.1:80"}
	out, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"kind":"suspicion"`) {
		t.Fatalf("kind not rendered by name: %s", out)
	}
}

func TestFailoverProbe(t *testing.T) {
	now := time.Duration(0)
	b := NewBus(testClock(&now))
	p := NewFailoverProbe(b)

	// Suspicion before any crash must be ignored.
	now = 50 * time.Millisecond
	b.Publish(Event{Kind: KindSuspicion, Node: "s1"})
	if p.Report().SuspicionAt != 0 {
		t.Fatal("pre-crash suspicion recorded")
	}

	now = 100 * time.Millisecond
	b.Publish(Event{Kind: KindNodeCrash, Node: "s0"})
	// Client deliveries before promotion don't count as recovery.
	now = 150 * time.Millisecond
	b.Publish(Event{Kind: KindClientDeliver, Node: "client"})
	now = 400 * time.Millisecond
	b.Publish(Event{Kind: KindSuspicion, Node: "s1"})
	now = 600 * time.Millisecond
	b.Publish(Event{Kind: KindReconfig, Node: "rd"})
	now = 650 * time.Millisecond
	b.Publish(Event{Kind: KindPromotion, Node: "s1"})
	now = 700 * time.Millisecond
	b.Publish(Event{Kind: KindClientDeliver, Node: "client"})
	// Only the first of each phase is kept.
	now = 900 * time.Millisecond
	b.Publish(Event{Kind: KindClientDeliver, Node: "client"})

	r := p.Report()
	if !r.Complete {
		t.Fatalf("report incomplete: %+v", r)
	}
	if r.Detection != 300*time.Millisecond {
		t.Errorf("Detection = %v, want 300ms", r.Detection)
	}
	if r.Reconfiguration != 250*time.Millisecond {
		t.Errorf("Reconfiguration = %v, want 250ms", r.Reconfiguration)
	}
	if r.ClientStall != 600*time.Millisecond {
		t.Errorf("ClientStall = %v, want 600ms", r.ClientStall)
	}
}

func TestSnapshotDiff(t *testing.T) {
	prev := Snapshot{
		Time: time.Second,
		Hosts: []HostSnapshot{{
			Name: "s0", Alive: true,
			Frames: FrameCounters{Sent: 100, Received: 200},
			Conns:  ConnCounters{BytesSent: 1000, Retransmits: 3},
		}},
		Links: []LinkSnapshot{{
			A: "s0", B: "rd",
			AB: LinkDirCounters{TxFrames: 100, Lost: 2},
		}},
		Redirectors: []RedirectorSnapshot{{
			Name:  "rd",
			Table: RedirectorCounters{Multicast: 10, MulticastCopies: 30},
		}},
	}
	cur := Snapshot{
		Time: 3 * time.Second,
		Hosts: []HostSnapshot{{
			Name: "s0", Alive: false,
			Frames: FrameCounters{Sent: 150, Received: 260},
			Conns:  ConnCounters{BytesSent: 1500, Retransmits: 7},
		}},
		Links: []LinkSnapshot{{
			A: "s0", B: "rd",
			AB: LinkDirCounters{TxFrames: 150, Lost: 5},
		}},
		Redirectors: []RedirectorSnapshot{{
			Name:  "rd",
			Table: RedirectorCounters{Multicast: 25, MulticastCopies: 75},
		}},
	}
	d := cur.Diff(prev)
	if d.Time != 2*time.Second {
		t.Errorf("Time = %v", d.Time)
	}
	h := d.Hosts[0]
	if h.Frames.Sent != 50 || h.Frames.Received != 60 {
		t.Errorf("frames diff = %+v", h.Frames)
	}
	if h.Conns.BytesSent != 500 || h.Conns.Retransmits != 4 {
		t.Errorf("conn diff = %+v", h.Conns)
	}
	if h.Alive {
		t.Error("liveness must reflect the current snapshot")
	}
	l := d.Links[0]
	if l.AB.TxFrames != 50 || l.AB.Lost != 3 {
		t.Errorf("link diff = %+v", l.AB)
	}
	r := d.Redirectors[0]
	if r.Table.Multicast != 15 || r.Table.MulticastCopies != 45 {
		t.Errorf("redirector diff = %+v", r.Table)
	}

	// Entries absent from prev pass through unchanged.
	cur.Hosts = append(cur.Hosts, HostSnapshot{Name: "s9", Frames: FrameCounters{Sent: 7}})
	d = cur.Diff(prev)
	if d.Hosts[1].Frames.Sent != 7 {
		t.Errorf("new host not passed through: %+v", d.Hosts[1])
	}
}

func TestFailoverProbeBackToBackFailures(t *testing.T) {
	// A second crash while the first timeline is still open — the promoted
	// backup dies mid-reconfiguration, or an unrelated replica fail-stops —
	// must not corrupt the first timeline: the probe documents the FIRST
	// failover, and every phase it reports has to belong to it.
	now := time.Duration(0)
	b := NewBus(testClock(&now))
	p := NewFailoverProbe(b)

	fired := 0
	p.OnFailover(func(FailoverReport) { fired++ })

	now = 100 * time.Millisecond
	b.Publish(Event{Kind: KindNodeCrash, Node: "s0"})
	now = 300 * time.Millisecond
	b.Publish(Event{Kind: KindSuspicion, Node: "s1"})
	// Second failure lands between suspicion and promotion of the first.
	now = 350 * time.Millisecond
	b.Publish(Event{Kind: KindNodeCrash, Node: "s1"})
	now = 380 * time.Millisecond
	b.Publish(Event{Kind: KindSuspicion, Node: "s2"})
	now = 500 * time.Millisecond
	b.Publish(Event{Kind: KindReconfig, Node: "rd"})
	now = 520 * time.Millisecond
	b.Publish(Event{Kind: KindPromotion, Node: "s2"})
	now = 600 * time.Millisecond
	b.Publish(Event{Kind: KindClientDeliver, Node: "client"})
	// Echoes of the second failover's cleanup must all be ignored.
	now = 700 * time.Millisecond
	b.Publish(Event{Kind: KindReconfig, Node: "rd"})
	b.Publish(Event{Kind: KindPromotion, Node: "s2"})

	r := p.Report()
	if !r.Complete {
		t.Fatalf("report incomplete: %+v", r)
	}
	if r.CrashAt != 100*time.Millisecond {
		t.Errorf("CrashAt = %v, want the first crash at 100ms", r.CrashAt)
	}
	if r.SuspicionAt != 300*time.Millisecond {
		t.Errorf("SuspicionAt = %v, want the first suspicion at 300ms", r.SuspicionAt)
	}
	if r.Detection != 200*time.Millisecond {
		t.Errorf("Detection = %v, want 200ms", r.Detection)
	}
	if r.PromotionAt != 520*time.Millisecond {
		t.Errorf("PromotionAt = %v", r.PromotionAt)
	}
	if r.ClientStall != 500*time.Millisecond {
		t.Errorf("ClientStall = %v, want 500ms", r.ClientStall)
	}
	if fired != 1 {
		t.Errorf("OnFailover fired %d times, want exactly once", fired)
	}
}
