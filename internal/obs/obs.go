// Package obs is the observability spine of the HydraNet-FT reproduction:
// a structured event bus carried on the virtual clock, net-wide counter
// snapshots, and a failover-timeline probe reproducing the paper's Table-2
// style decomposition (detection latency, reconfiguration latency,
// client-visible stall).
//
// The bus is designed to be free when nobody listens: every emit site
// guards with Bus.Enabled(kind), a nil-safe bitmask test, and only builds
// the Event value when a subscriber exists. The simulation is
// single-threaded (see internal/sim), so the bus performs no locking;
// subscribers run synchronously at the emitting event's virtual time.
package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Kind enumerates event types.
type Kind uint8

// Event kinds, grouped by the emitting layer.
const (
	// netsim fabric.
	KindPacketLoss  Kind = iota // frame lost to random link loss
	KindQueueDrop               // frame dropped at a full drop-tail queue
	KindMTUDrop                 // frame larger than the link MTU
	KindNodeCrash               // fail-stop
	KindNodeRestart             // recovery

	// tcp.
	KindRetransmit     // data segment retransmitted
	KindRTO            // retransmission timeout fired
	KindFastRetransmit // triple-duplicate-ACK recovery entered
	KindDeposit        // receive buffer deposited bytes to the application
	KindAckProgress    // cumulative ACK advanced the send window

	// redirector.
	KindMulticast   // FT fan-out: one client packet copied to the replica set
	KindRedirect    // scaling-mode nearest-replica tunnel
	KindTunnelError // tunnel copy dropped (no route / marshal failure)

	// ft-TCP core.
	KindChainSend // acknowledgment-channel message sent upstream
	KindChainRecv // acknowledgment-channel message received from successor
	KindSuspicion // failure estimator tripped
	KindPromotion // backup promoted to primary
	KindDemotion  // primary demoted to backup (management race repair)

	// replica management.
	KindRegistration // replica registered with the redirector daemon
	KindReconfig     // chain reconfigured (failure, leave, lease, eviction)
	KindRecommission // recovered host rejoined a replica set

	// measurement harnesses (published by CLIs and tests, not by the stack).
	KindClientDeliver // client application consumed service bytes

	numKinds
)

var kindNames = [numKinds]string{
	KindPacketLoss:     "packet-loss",
	KindQueueDrop:      "queue-drop",
	KindMTUDrop:        "mtu-drop",
	KindNodeCrash:      "node-crash",
	KindNodeRestart:    "node-restart",
	KindRetransmit:     "retransmit",
	KindRTO:            "rto",
	KindFastRetransmit: "fast-retransmit",
	KindDeposit:        "deposit",
	KindAckProgress:    "ack-progress",
	KindMulticast:      "multicast",
	KindRedirect:       "redirect",
	KindTunnelError:    "tunnel-error",
	KindChainSend:      "chain-send",
	KindChainRecv:      "chain-recv",
	KindSuspicion:      "suspicion",
	KindPromotion:      "promotion",
	KindDemotion:       "demotion",
	KindRegistration:   "registration",
	KindReconfig:       "reconfig",
	KindRecommission:   "recommission",
	KindClientDeliver:  "client-deliver",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MarshalJSON renders the kind by name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON resolves a kind from its marshaled name, so events round-trip
// through exports (audit reports, flight-recorder dumps).
func (k *Kind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	kind, ok := KindByName(name)
	if !ok {
		return fmt.Errorf("obs: unknown event kind %q", name)
	}
	*k = kind
	return nil
}

// Kinds returns every defined kind, in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// KindByName resolves a kind name ("promotion", "chain-send", ...).
func KindByName(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// Event is one structured observation, timestamped in virtual time.
type Event struct {
	Time    time.Duration `json:"time"`
	Kind    Kind          `json:"kind"`
	Node    string        `json:"node,omitempty"`    // emitting node
	Service string        `json:"service,omitempty"` // service addr:port
	Conn    string        `json:"conn,omitempty"`    // remote/client endpoint
	Seq     uint64        `json:"seq,omitempty"`     // sequence-number detail
	Ack     uint64        `json:"ack,omitempty"`     // acknowledgment-number detail
	Size    int           `json:"size,omitempty"`    // bytes or copy count
	Detail  string        `json:"detail,omitempty"`  // free-form extra
}

// Text renders everything but the timestamp and node, for log lines whose
// prefix a renderer (the tracer) supplies itself.
func (e Event) Text() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	if e.Service != "" {
		b.WriteString(" svc=")
		b.WriteString(e.Service)
	}
	if e.Conn != "" {
		b.WriteString(" conn=")
		b.WriteString(e.Conn)
	}
	if e.Seq != 0 {
		fmt.Fprintf(&b, " seq=%d", e.Seq)
	}
	if e.Ack != 0 {
		fmt.Fprintf(&b, " ack=%d", e.Ack)
	}
	if e.Size != 0 {
		fmt.Fprintf(&b, " size=%d", e.Size)
	}
	if e.Detail != "" {
		b.WriteByte(' ')
		b.WriteString(e.Detail)
	}
	return b.String()
}

// String renders the full event as one line.
func (e Event) String() string {
	return fmt.Sprintf("%12s %-10s %s", e.Time.Round(time.Microsecond), e.Node, e.Text())
}

// Handler consumes events, synchronously, at the emitting virtual time.
type Handler func(Event)

// Bus routes events from emitters to subscribers. The zero-subscriber case
// is the fast path: Enabled is a nil check plus one bitmask test, and no
// Event value is ever built. A nil *Bus is valid and permanently disabled,
// so components can hold a bus pointer without wiring.
type Bus struct {
	now  func() time.Duration
	mask uint64
	subs [numKinds][]Handler
}

// NewBus creates a bus stamping events with the given clock (normally
// Scheduler.Now).
func NewBus(now func() time.Duration) *Bus {
	return &Bus{now: now}
}

// Enabled reports whether at least one subscriber listens for kind. Emit
// sites must guard with it so that building the Event costs nothing when
// observability is off.
//
//hydralint:zeroalloc
func (b *Bus) Enabled(k Kind) bool {
	return b != nil && b.mask&(1<<k) != 0
}

// Mask returns the bitmask of kinds with at least one subscriber (bit k set
// means Kind(k) is enabled). Parallel runs use it to build per-domain bus
// views whose Enabled answers mirror the real bus, so emit sites stay free
// for kinds nobody listens to.
func (b *Bus) Mask() uint64 {
	if b == nil {
		return 0
	}
	return b.mask
}

// SubscribeMask registers h for every kind set in mask — the bulk form
// Subscribe'd per-domain views use to mirror a real bus's subscriptions.
func (b *Bus) SubscribeMask(h Handler, mask uint64) {
	for k := Kind(0); k < numKinds; k++ {
		if mask&(1<<k) != 0 {
			b.subs[k] = append(b.subs[k], h)
			b.mask |= 1 << k
		}
	}
}

// Subscribe registers h for the given kinds (all kinds when none given).
func (b *Bus) Subscribe(h Handler, kinds ...Kind) {
	if len(kinds) == 0 {
		kinds = Kinds()
	}
	for _, k := range kinds {
		if int(k) >= int(numKinds) {
			continue
		}
		b.subs[k] = append(b.subs[k], h)
		b.mask |= 1 << k
	}
}

// Publish stamps the event with the current virtual time (unless the
// emitter set one) and delivers it to every subscriber of its kind. The
// Event itself travels by value; subscribers that retain it pay for their
// own copies.
//
//hydralint:zeroalloc
func (b *Bus) Publish(e Event) {
	if b == nil || b.mask&(1<<e.Kind) == 0 {
		return
	}
	if e.Time == 0 && b.now != nil {
		e.Time = b.now()
	}
	for _, h := range b.subs[e.Kind] {
		h(e)
	}
}
