package obs

import (
	"fmt"
	"reflect"
	"testing"

	"hydranet/internal/metrics"
)

// fillUints sets every uint64 field reachable from v (descending into
// structs and non-nil pointers) to x. Slices, maps and non-uint64 scalars
// are left alone: gauges and identity fields are exactly the non-uint64
// fields of the snapshot types.
func fillUints(v reflect.Value, x uint64) {
	switch v.Kind() {
	case reflect.Uint64:
		v.SetUint(x)
	case reflect.Pointer:
		if !v.IsNil() {
			fillUints(v.Elem(), x)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillUints(v.Field(i), x)
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			fillUints(v.Index(i), x)
		}
	}
}

// checkUints asserts every uint64 field reachable from v equals want,
// reporting each miss with its field path.
func checkUints(t *testing.T, path string, v reflect.Value, want uint64) {
	t.Helper()
	switch v.Kind() {
	case reflect.Uint64:
		if v.Uint() != want {
			t.Errorf("%s = %d, want %d: counter not diffed (Snapshot.Diff is missing this field)",
				path, v.Uint(), want)
		}
	case reflect.Pointer:
		if v.IsNil() {
			t.Errorf("%s lost in diff (nil pointer)", path)
			return
		}
		checkUints(t, path, v.Elem(), want)
	case reflect.Struct:
		tp := v.Type()
		for i := 0; i < v.NumField(); i++ {
			checkUints(t, path+"."+tp.Field(i).Name, v.Field(i), want)
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			checkUints(t, fmt.Sprintf("%s[%d]", path, i), v.Index(i), want)
		}
	}
}

// template builds a snapshot with one host, one link and one redirector,
// every optional pointer allocated — the maximal shape Diff must cover.
func template() Snapshot {
	return Snapshot{
		Failover: &FailoverReport{},
		Hosts: []HostSnapshot{{
			Name: "h0", Alive: true,
			RTT:     &metrics.HistogramSnapshot{},
			Manager: &ManagerCounters{},
		}},
		Links:       []LinkSnapshot{{A: "h0", B: "h1"}},
		Redirectors: []RedirectorSnapshot{{Name: "rd", Mgmt: &MgmtCounters{}}},
	}
}

// TestSnapshotDiffCoversEveryCounter locks Diff to the snapshot schema by
// reflection: every uint64 field anywhere in the snapshot is a cumulative
// counter and must be subtracted. Fill the current snapshot's counters with
// 7 and the previous with 3; any field whose diff is not 4 was either
// copied through (7: the subtraction was forgotten) or zeroed (0: dropped
// from a composite literal). Adding a counter field to any snapshot struct
// without teaching Diff about it fails here.
func TestSnapshotDiffCoversEveryCounter(t *testing.T) {
	cur, prev := template(), template()
	fillUints(reflect.ValueOf(&cur).Elem(), 7)
	fillUints(reflect.ValueOf(&prev).Elem(), 3)
	// The histogram diff recomputes interval buckets from the snapshots'
	// bucket lists; scalar-filled snapshots have none, which is fine — the
	// Count field still must subtract.
	d := cur.Diff(prev)
	checkUints(t, "Snapshot", reflect.ValueOf(d), 4)

	// Gauges pass through from the current snapshot, not the previous one.
	cur.Hosts[0].TCP.Conns = 9
	prev.Hosts[0].TCP.Conns = 2
	cur.Hosts[0].Alive = false
	d = cur.Diff(prev)
	if d.Hosts[0].TCP.Conns != 9 {
		t.Errorf("Conns gauge = %d, want current value 9", d.Hosts[0].TCP.Conns)
	}
	if d.Hosts[0].Alive {
		t.Error("Alive flag not taken from current snapshot")
	}
}
