package obs

import "time"

// FailoverProbe reconstructs the paper's Table-2 decomposition of a
// fail-over from bus events: it watches for the first node crash, then the
// first suspicion, reconfiguration and promotion after it, and finally the
// first client-visible delivery after the promotion. Measurement harnesses
// publish KindClientDeliver from the client's read loop; everything else is
// emitted by the stack itself.
type FailoverProbe struct {
	crash, suspicion, reconfig, promotion, firstByte time.Duration
	seen                                             uint8
	onFire                                           []func(FailoverReport)
}

const (
	sawCrash = 1 << iota
	sawSuspicion
	sawReconfig
	sawPromotion
	sawFirstByte
)

// OnFailover registers fn to run once, when the probe observes the first
// promotion after a crash (the report passed in has at least Crash,
// Promotion and usually Suspicion/Reconfig populated; the first client
// byte necessarily comes later). Flight recorders hook this to dump their
// rings at the moment of failover.
func (p *FailoverProbe) OnFailover(fn func(FailoverReport)) {
	p.onFire = append(p.onFire, fn)
}

// NewFailoverProbe subscribes a probe to the bus.
func NewFailoverProbe(b *Bus) *FailoverProbe {
	p := &FailoverProbe{}
	b.Subscribe(p.observe, KindNodeCrash, KindSuspicion, KindReconfig,
		KindPromotion, KindClientDeliver)
	return p
}

func (p *FailoverProbe) observe(e Event) {
	switch e.Kind {
	case KindNodeCrash:
		if p.seen&sawCrash == 0 {
			p.crash = e.Time
			p.seen |= sawCrash
		}
	case KindSuspicion:
		if p.seen&sawCrash != 0 && p.seen&sawSuspicion == 0 {
			p.suspicion = e.Time
			p.seen |= sawSuspicion
		}
	case KindReconfig:
		if p.seen&sawCrash != 0 && p.seen&sawReconfig == 0 {
			p.reconfig = e.Time
			p.seen |= sawReconfig
		}
	case KindPromotion:
		if p.seen&sawCrash != 0 && p.seen&sawPromotion == 0 {
			p.promotion = e.Time
			p.seen |= sawPromotion
			// The probe "fires" here: a promotion after a crash is the
			// failover proper, and the instants around it are exactly what
			// a flight recorder should preserve. Hooks run synchronously at
			// the promotion's virtual time, before post-failover traffic
			// can push the detection window out of bounded rings.
			for _, fn := range p.onFire {
				fn(p.Report())
			}
		}
	case KindClientDeliver:
		if p.seen&sawPromotion != 0 && p.seen&sawFirstByte == 0 {
			p.firstByte = e.Time
			p.seen |= sawFirstByte
		}

	default:
		// The probe times the crash→suspicion→reconfig→promotion→delivery
		// chain; kinds outside it carry no failover instant.
	}
}

// FailoverReport is the probe's result. Absolute times are virtual-clock
// instants (zero when the phase was never observed); the duration fields
// are the paper's decomposition and are valid only when Complete.
type FailoverReport struct {
	CrashAt           time.Duration `json:"crash_at,omitempty"`
	SuspicionAt       time.Duration `json:"suspicion_at,omitempty"`
	ReconfigAt        time.Duration `json:"reconfig_at,omitempty"`
	PromotionAt       time.Duration `json:"promotion_at,omitempty"`
	FirstClientByteAt time.Duration `json:"first_client_byte_at,omitempty"`

	// Detection is crash → first suspicion: how long the failure estimator
	// needed (the Table-2 detection latency, a function of the
	// retransmission threshold).
	Detection time.Duration `json:"detection,omitempty"`
	// Reconfiguration is suspicion → promotion: probe, chain resplice and
	// role switch at the surviving replicas.
	Reconfiguration time.Duration `json:"reconfiguration,omitempty"`
	// ClientStall is crash → first post-promotion byte at the client: the
	// client-visible service interruption.
	ClientStall time.Duration `json:"client_stall,omitempty"`
	// Complete reports whether every phase was observed.
	Complete bool `json:"complete"`
}

// Report summarizes what the probe has seen so far.
func (p *FailoverProbe) Report() FailoverReport {
	r := FailoverReport{
		CrashAt:           p.crash,
		SuspicionAt:       p.suspicion,
		ReconfigAt:        p.reconfig,
		PromotionAt:       p.promotion,
		FirstClientByteAt: p.firstByte,
		Complete: p.seen&(sawCrash|sawSuspicion|sawReconfig|sawPromotion|sawFirstByte) ==
			sawCrash|sawSuspicion|sawReconfig|sawPromotion|sawFirstByte,
	}
	if p.seen&sawSuspicion != 0 {
		r.Detection = p.suspicion - p.crash
	}
	if p.seen&sawPromotion != 0 && p.seen&sawSuspicion != 0 {
		r.Reconfiguration = p.promotion - p.suspicion
	}
	if p.seen&sawFirstByte != 0 {
		r.ClientStall = p.firstByte - p.crash
	}
	return r
}
