package obs

import (
	"encoding/json"
	"time"

	"hydranet/internal/metrics"
)

// Snapshot is a net-wide aggregation of every component counter at one
// virtual instant: per-host fabric/IP/TCP/ft-TCP counters, per-link
// per-direction counters, and per-redirector table plus management-daemon
// counters. It is JSON-serializable; Diff produces interval rates.
// The hydranet facade's Net.Snapshot() builds it.
type Snapshot struct {
	Time        time.Duration        `json:"time"`
	Hosts       []HostSnapshot       `json:"hosts"`
	Links       []LinkSnapshot       `json:"links"`
	Redirectors []RedirectorSnapshot `json:"redirectors,omitempty"`
	Failover    *FailoverReport      `json:"failover,omitempty"`
}

// FrameCounters are netsim node counters.
type FrameCounters struct {
	Sent     uint64 `json:"sent"`
	Received uint64 `json:"received"`
	Dropped  uint64 `json:"dropped"`
}

// IPCounters mirror ipv4.StackStats.
type IPCounters struct {
	Delivered   uint64 `json:"delivered"`
	Forwarded   uint64 `json:"forwarded"`
	Originated  uint64 `json:"originated"`
	BadHeader   uint64 `json:"bad_header"`
	NoRoute     uint64 `json:"no_route"`
	TTLExceeded uint64 `json:"ttl_exceeded"`
	NoProto     uint64 `json:"no_proto"`
}

// TCPCounters mirror tcp.StackStats plus the live-connection count.
type TCPCounters struct {
	SegsIn      uint64 `json:"segs_in"`
	SegsOut     uint64 `json:"segs_out"`
	BadSegments uint64 `json:"bad_segments"`
	RSTsSent    uint64 `json:"rsts_sent"`
	NoSocket    uint64 `json:"no_socket"`
	Conns       int    `json:"conns"`
}

// ConnCounters are tcp.ConnStats totals summed over every connection the
// stack has carried (live and closed).
type ConnCounters struct {
	SegsSent        uint64 `json:"segs_sent"`
	SegsSuppressed  uint64 `json:"segs_suppressed"`
	SegsReceived    uint64 `json:"segs_received"`
	BytesSent       uint64 `json:"bytes_sent"`
	BytesReceived   uint64 `json:"bytes_received"`
	Retransmits     uint64 `json:"retransmits"`
	RTOEvents       uint64 `json:"rto_events"`
	FastRetransmits uint64 `json:"fast_retransmits"`
	DupAcksSeen     uint64 `json:"dup_acks_seen"`
	PeerRetransmits uint64 `json:"peer_retransmits"`
}

// ManagerCounters mirror core.Stats (the ft-TCP engine).
type ManagerCounters struct {
	ChainMsgsSent     uint64 `json:"chain_msgs_sent"`
	ChainMsgsReceived uint64 `json:"chain_msgs_received"`
	ChainMsgsBad      uint64 `json:"chain_msgs_bad"`
	ChainMsgsOrphan   uint64 `json:"chain_msgs_orphan"`
	Suspicions        uint64 `json:"suspicions"`
	Promotions        uint64 `json:"promotions"`
}

// HostSnapshot aggregates one host's counters across every layer.
type HostSnapshot struct {
	Name  string `json:"name"`
	Alive bool   `json:"alive"`
	// ProcBacklog is a gauge, not a counter: how far the host's serial CPU
	// is running behind frame arrival at snapshot time. Diff passes the
	// current value through.
	ProcBacklog time.Duration              `json:"proc_backlog_ns,omitempty"`
	Frames      FrameCounters              `json:"frames"`
	IP          IPCounters                 `json:"ip"`
	TCP         TCPCounters                `json:"tcp"`
	Conns       ConnCounters               `json:"conn_totals"`
	RTT         *metrics.HistogramSnapshot `json:"rtt_ms,omitempty"`
	Manager     *ManagerCounters           `json:"manager,omitempty"`
}

// LinkDirCounters are one direction of a link (sending-side indexed).
type LinkDirCounters struct {
	TxFrames  uint64 `json:"tx_frames"`
	Lost      uint64 `json:"lost"`
	QueueDrop uint64 `json:"queue_drop"`
}

// LinkSnapshot captures one duplex link, named by its endpoints.
type LinkSnapshot struct {
	A  string          `json:"a"`
	B  string          `json:"b"`
	AB LinkDirCounters `json:"a_to_b"`
	BA LinkDirCounters `json:"b_to_a"`
}

// RedirectorCounters mirror redirector.Stats.
type RedirectorCounters struct {
	Redirected      uint64 `json:"redirected"`
	Multicast       uint64 `json:"multicast"`
	MulticastCopies uint64 `json:"multicast_copies"`
	PassedThrough   uint64 `json:"passed_through"`
	TunnelErrors    uint64 `json:"tunnel_errors"`
}

// MgmtCounters mirror rmp.RedirectorDaemonStats.
type MgmtCounters struct {
	Registrations       uint64 `json:"registrations"`
	Leaves              uint64 `json:"leaves"`
	Suspicions          uint64 `json:"suspicions"`
	ProbesSent          uint64 `json:"probes_sent"`
	HostsFailed         uint64 `json:"hosts_failed"`
	Reconfigs           uint64 `json:"reconfigs"`
	CongestionEvictions uint64 `json:"congestion_evictions"`
	LeaseExpirations    uint64 `json:"lease_expirations"`
}

// RedirectorSnapshot captures one redirector's table and (if running)
// management-daemon counters.
type RedirectorSnapshot struct {
	Name  string             `json:"name"`
	Table RedirectorCounters `json:"table"`
	Mgmt  *MgmtCounters      `json:"mgmt,omitempty"`
}

// JSON renders the snapshot indented, for -stats-json files.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// Diff returns the interval snapshot current − prev: every cumulative
// counter becomes the amount accrued since prev was taken. Hosts, links and
// redirectors are matched by name; entries with no match in prev pass
// through unchanged. Liveness flags reflect the current snapshot.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{Time: s.Time - prev.Time, Failover: s.Failover}

	prevHosts := make(map[string]HostSnapshot, len(prev.Hosts))
	for _, h := range prev.Hosts {
		prevHosts[h.Name] = h
	}
	for _, h := range s.Hosts {
		p, ok := prevHosts[h.Name]
		if !ok {
			out.Hosts = append(out.Hosts, h)
			continue
		}
		d := h
		d.Frames = FrameCounters{
			Sent:     h.Frames.Sent - p.Frames.Sent,
			Received: h.Frames.Received - p.Frames.Received,
			Dropped:  h.Frames.Dropped - p.Frames.Dropped,
		}
		d.IP = IPCounters{
			Delivered:   h.IP.Delivered - p.IP.Delivered,
			Forwarded:   h.IP.Forwarded - p.IP.Forwarded,
			Originated:  h.IP.Originated - p.IP.Originated,
			BadHeader:   h.IP.BadHeader - p.IP.BadHeader,
			NoRoute:     h.IP.NoRoute - p.IP.NoRoute,
			TTLExceeded: h.IP.TTLExceeded - p.IP.TTLExceeded,
			NoProto:     h.IP.NoProto - p.IP.NoProto,
		}
		d.TCP = TCPCounters{
			SegsIn:      h.TCP.SegsIn - p.TCP.SegsIn,
			SegsOut:     h.TCP.SegsOut - p.TCP.SegsOut,
			BadSegments: h.TCP.BadSegments - p.TCP.BadSegments,
			RSTsSent:    h.TCP.RSTsSent - p.TCP.RSTsSent,
			NoSocket:    h.TCP.NoSocket - p.TCP.NoSocket,
			Conns:       h.TCP.Conns,
		}
		d.Conns = ConnCounters{
			SegsSent:        h.Conns.SegsSent - p.Conns.SegsSent,
			SegsSuppressed:  h.Conns.SegsSuppressed - p.Conns.SegsSuppressed,
			SegsReceived:    h.Conns.SegsReceived - p.Conns.SegsReceived,
			BytesSent:       h.Conns.BytesSent - p.Conns.BytesSent,
			BytesReceived:   h.Conns.BytesReceived - p.Conns.BytesReceived,
			Retransmits:     h.Conns.Retransmits - p.Conns.Retransmits,
			RTOEvents:       h.Conns.RTOEvents - p.Conns.RTOEvents,
			FastRetransmits: h.Conns.FastRetransmits - p.Conns.FastRetransmits,
			DupAcksSeen:     h.Conns.DupAcksSeen - p.Conns.DupAcksSeen,
			PeerRetransmits: h.Conns.PeerRetransmits - p.Conns.PeerRetransmits,
		}
		if h.RTT != nil {
			var pr metrics.HistogramSnapshot
			if p.RTT != nil {
				pr = *p.RTT
			}
			dh := h.RTT.Diff(pr)
			d.RTT = &dh
		}
		if h.Manager != nil {
			var pm ManagerCounters
			if p.Manager != nil {
				pm = *p.Manager
			}
			d.Manager = &ManagerCounters{
				ChainMsgsSent:     h.Manager.ChainMsgsSent - pm.ChainMsgsSent,
				ChainMsgsReceived: h.Manager.ChainMsgsReceived - pm.ChainMsgsReceived,
				ChainMsgsBad:      h.Manager.ChainMsgsBad - pm.ChainMsgsBad,
				ChainMsgsOrphan:   h.Manager.ChainMsgsOrphan - pm.ChainMsgsOrphan,
				Suspicions:        h.Manager.Suspicions - pm.Suspicions,
				Promotions:        h.Manager.Promotions - pm.Promotions,
			}
		}
		out.Hosts = append(out.Hosts, d)
	}

	type linkKey struct{ a, b string }
	prevLinks := make(map[linkKey]LinkSnapshot, len(prev.Links))
	for _, l := range prev.Links {
		prevLinks[linkKey{l.A, l.B}] = l
	}
	for _, l := range s.Links {
		p, ok := prevLinks[linkKey{l.A, l.B}]
		if !ok {
			out.Links = append(out.Links, l)
			continue
		}
		out.Links = append(out.Links, LinkSnapshot{
			A: l.A, B: l.B,
			AB: LinkDirCounters{
				TxFrames:  l.AB.TxFrames - p.AB.TxFrames,
				Lost:      l.AB.Lost - p.AB.Lost,
				QueueDrop: l.AB.QueueDrop - p.AB.QueueDrop,
			},
			BA: LinkDirCounters{
				TxFrames:  l.BA.TxFrames - p.BA.TxFrames,
				Lost:      l.BA.Lost - p.BA.Lost,
				QueueDrop: l.BA.QueueDrop - p.BA.QueueDrop,
			},
		})
	}

	prevRds := make(map[string]RedirectorSnapshot, len(prev.Redirectors))
	for _, r := range prev.Redirectors {
		prevRds[r.Name] = r
	}
	for _, r := range s.Redirectors {
		p, ok := prevRds[r.Name]
		if !ok {
			out.Redirectors = append(out.Redirectors, r)
			continue
		}
		d := RedirectorSnapshot{
			Name: r.Name,
			Table: RedirectorCounters{
				Redirected:      r.Table.Redirected - p.Table.Redirected,
				Multicast:       r.Table.Multicast - p.Table.Multicast,
				MulticastCopies: r.Table.MulticastCopies - p.Table.MulticastCopies,
				PassedThrough:   r.Table.PassedThrough - p.Table.PassedThrough,
				TunnelErrors:    r.Table.TunnelErrors - p.Table.TunnelErrors,
			},
		}
		if r.Mgmt != nil {
			var pm MgmtCounters
			if p.Mgmt != nil {
				pm = *p.Mgmt
			}
			d.Mgmt = &MgmtCounters{
				Registrations:       r.Mgmt.Registrations - pm.Registrations,
				Leaves:              r.Mgmt.Leaves - pm.Leaves,
				Suspicions:          r.Mgmt.Suspicions - pm.Suspicions,
				ProbesSent:          r.Mgmt.ProbesSent - pm.ProbesSent,
				HostsFailed:         r.Mgmt.HostsFailed - pm.HostsFailed,
				Reconfigs:           r.Mgmt.Reconfigs - pm.Reconfigs,
				CongestionEvictions: r.Mgmt.CongestionEvictions - pm.CongestionEvictions,
				LeaseExpirations:    r.Mgmt.LeaseExpirations - pm.LeaseExpirations,
			}
		}
		out.Redirectors = append(out.Redirectors, d)
	}
	return out
}
