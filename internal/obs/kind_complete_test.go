package obs

import (
	"encoding/json"
	"testing"
)

// TestKindTableComplete is the completeness fence for new event kinds:
// every Kind must have a kindNames entry (non-empty, unique, stable
// through JSON), must fit the bus's uint64 subscription mask, and must be
// enumerated by Kinds(). Adding a Kind without growing the table, or past
// 64 kinds, fails here — before the new kind can silently escape the
// observers and the invariant monitor's oracle (whose own mapping fence is
// invariant.TestKindRoleComplete).
func TestKindTableComplete(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != int(numKinds) {
		t.Fatalf("Kinds() returns %d kinds, enum declares %d", len(kinds), int(numKinds))
	}
	if int(numKinds) > 64 {
		t.Fatalf("%d kinds no longer fit the bus's uint64 mask", int(numKinds))
	}
	seen := make(map[string]Kind, len(kinds))
	for _, k := range kinds {
		name := kindNames[k]
		if name == "" {
			t.Errorf("kind %d has no kindNames entry", int(k))
			continue
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", int(prev), int(k), name)
		}
		seen[name] = k

		data, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("kind %v does not marshal: %v", k, err)
		}
		var quoted string
		if err := json.Unmarshal(data, &quoted); err != nil || quoted != name {
			t.Errorf("kind %v marshals to %s, want %q", k, data, name)
		}
		var back Kind
		if err := json.Unmarshal(data, &back); err != nil || back != k {
			t.Errorf("kind %v does not round-trip: got %v, err %v", k, back, err)
		}
	}
	var bogus Kind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &bogus); err == nil {
		t.Error("unknown kind name unmarshaled without error")
	}
}

// TestKindMaskBits pins each kind's subscription bit: a reordered enum
// silently changes every persisted mask, so the declaration order is API.
func TestKindMaskBits(t *testing.T) {
	order := []Kind{
		KindPacketLoss, KindQueueDrop, KindMTUDrop, KindNodeCrash,
		KindNodeRestart, KindRetransmit, KindRTO, KindFastRetransmit,
		KindDeposit, KindAckProgress, KindMulticast, KindRedirect,
		KindTunnelError, KindChainSend, KindChainRecv, KindSuspicion,
		KindPromotion, KindDemotion, KindRegistration, KindReconfig,
		KindRecommission, KindClientDeliver,
	}
	if len(order) != int(numKinds) {
		t.Fatalf("pin list has %d kinds, enum declares %d — extend this test with the new kind", len(order), int(numKinds))
	}
	for i, k := range order {
		if int(k) != i {
			t.Errorf("kind %v sits at bit %d, pinned at %d", k, int(k), i)
		}
	}
}
