// Package frame provides a pooled, headroom-aware buffer arena for the
// simulation fast path.
//
// The hot path in a HydraNet-FT run materializes each TCP segment several
// times: once in tcp.Segment.Marshal, once in ipv4.Packet.Marshal, and once
// or twice more when the redirector tunnels it IP-in-IP. A Buf removes all
// of those copies: the transport marshals its payload once into a buffer
// with Headroom bytes reserved in front, and each lower layer prepends its
// header in place with Prepend. When the fabric finishes delivering the
// frame, the buffer returns to the pool.
//
// Ownership rules (enforced by convention, checked by poison mode):
//
//   - Whoever calls Pool.Get owns the Buf until ownership is handed off.
//   - Passing a Buf to netsim.Node.SendFrame transfers ownership to the
//     fabric, which guarantees exactly-once Release on every path (normal
//     delivery, MTU drop, queue drop, random loss, dead node).
//   - A FrameHandler (and everything it calls synchronously) may read the
//     frame's bytes during HandleFrame, but must copy anything it retains
//     past return: the fabric releases the buffer immediately afterwards.
//
// The simulator is single-threaded per scheduler, so the pool needs no
// locking; one Pool must never be shared across schedulers.
package frame

import (
	"fmt"
	"sync/atomic"
)

// Headroom is the number of bytes reserved in front of every pooled buffer:
// enough for an IPv4 header (20 B) plus an outer IP-in-IP encapsulation
// header (20 B), so a marshalled TCP segment can reach the wire without
// ever being copied.
const Headroom = 40

// classSizes are the backing-array capacities (excluding nothing — Headroom
// comes out of the class size). 4096 comfortably covers an Ethernet MTU
// frame plus headroom; larger requests fall back to exact-size unpooled
// allocations.
var classSizes = [...]int{128, 256, 512, 1024, 2048, 4096}

// Buf is one frame buffer. The payload occupies data[off:end]; bytes before
// off are available headroom for Prepend.
type Buf struct {
	data []byte
	off  int
	end  int
	pool *Pool
	cls  int8 // size-class index; -1 for oversize unpooled buffers
	free bool
}

// Bytes returns the current frame contents. The slice is valid only until
// Release.
//
//hydralint:zeroalloc
func (b *Buf) Bytes() []byte { return b.data[b.off:b.end] }

// Len returns the current frame length.
//
//hydralint:zeroalloc
func (b *Buf) Len() int { return b.end - b.off }

// Headroom returns how many bytes Prepend can still claim.
//
//hydralint:zeroalloc
func (b *Buf) Headroom() int { return b.off }

// Prepend grows the frame by n bytes at the front and returns the new
// contents. The new bytes are uninitialized. It panics if the buffer was
// allocated with insufficient headroom — that is a programming error, not a
// runtime condition.
//
//hydralint:zeroalloc
func (b *Buf) Prepend(n int) []byte {
	if n > b.off {
		panic(fmt.Sprintf("frame: Prepend(%d) exceeds headroom %d", n, b.off))
	}
	b.off -= n
	return b.data[b.off:b.end]
}

// Release returns the buffer to its pool. Releasing twice panics: a double
// release means two owners, which is exactly the corruption pooling can
// introduce. Release on a nil Buf is a no-op.
//
//hydralint:zeroalloc
func (b *Buf) Release() {
	if b == nil {
		return
	}
	if b.free {
		panic("frame: double Release")
	}
	b.free = true
	p := b.pool
	if p == nil {
		return
	}
	if p.poison.Load() {
		for i := range b.data {
			b.data[i] = 0xDB
		}
	}
	p.puts++
	if b.cls >= 0 {
		p.classes[b.cls] = append(p.classes[b.cls], b)
	}
}

// Pool hands out Bufs by size class and recycles them on Release. It is not
// safe for concurrent use; every scheduler owns its own pool. The one
// exception is the poison flag: a test harness may flip it from outside the
// scheduler goroutine (e.g. between parallel sweep shards), so it is
// atomic.
type Pool struct {
	classes [len(classSizes)][]*Buf
	poison  atomic.Bool

	gets, puts, misses uint64
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// SetPoison makes Release overwrite returned buffers with 0xDB. Tests use
// this to turn "read after release" bugs into loud, deterministic failures
// instead of silent heisenbugs. Unlike the rest of the pool it is safe to
// call from any goroutine.
func (p *Pool) SetPoison(on bool) { p.poison.Store(on) }

// Stats returns cumulative Get calls, Release calls, and Gets that missed
// the free lists (allocated fresh memory).
func (p *Pool) Stats() (gets, puts, misses uint64) { return p.gets, p.puts, p.misses }

// Outstanding returns the frames currently checked out (Gets minus
// Releases) — the pool-occupancy gauge a telemetry sampler reads. A steady
// climb under constant load means a frame leak.
func (p *Pool) Outstanding() int { return int(p.gets - p.puts) }

// ClassSize returns the backing-array capacity the pool would use for an
// n-byte payload (headroom included), or n+Headroom for oversize requests.
// Consumers that maintain their own frame rings (the flight recorder) size
// slots with it so their growth policy matches the pool's and slots
// stabilize after one warm-up pass.
func ClassSize(n int) int {
	need := n + Headroom
	for _, size := range classSizes {
		if need <= size {
			return size
		}
	}
	return need
}

// Get returns a Buf holding n uninitialized payload bytes with Headroom
// bytes reserved in front. Callers own the Buf until they Release it or
// hand it to the fabric.
func (p *Pool) Get(n int) *Buf {
	p.gets++
	need := n + Headroom
	for ci, size := range classSizes {
		if need > size {
			continue
		}
		if freeList := p.classes[ci]; len(freeList) > 0 {
			b := freeList[len(freeList)-1]
			freeList[len(freeList)-1] = nil
			p.classes[ci] = freeList[:len(freeList)-1]
			b.off = Headroom
			b.end = Headroom + n
			b.free = false
			return b
		}
		p.misses++
		return &Buf{data: make([]byte, size), off: Headroom, end: Headroom + n, pool: p, cls: int8(ci)}
	}
	// Oversize: exact allocation, never pooled.
	p.misses++
	return &Buf{data: make([]byte, need), off: Headroom, end: Headroom + n, pool: p, cls: -1}
}

// GetCopy returns a Buf holding a copy of data, with the usual Headroom in
// front. This is the cross-domain import path: a frame handed off from
// another synchronization domain is copied into the receiving domain's own
// pool, so each pool stays single-threaded even while its buffers' bytes
// travel between domains.
func (p *Pool) GetCopy(data []byte) *Buf {
	b := p.Get(len(data))
	copy(b.data[b.off:b.end], data)
	return b
}
