package frame

import "testing"

func TestGetReuse(t *testing.T) {
	p := NewPool()
	b := p.Get(100)
	if b.Len() != 100 {
		t.Fatalf("Len = %d, want 100", b.Len())
	}
	if b.Headroom() != Headroom {
		t.Fatalf("Headroom = %d, want %d", b.Headroom(), Headroom)
	}
	b.Release()
	b2 := p.Get(150) // same 256 B class as the first request
	if b2 != b {
		t.Fatal("pool did not reuse the released buffer")
	}
	if b2.Len() != 150 || b2.Headroom() != Headroom {
		t.Fatalf("reused buf Len=%d Headroom=%d", b2.Len(), b2.Headroom())
	}
	gets, puts, misses := p.Stats()
	if gets != 2 || puts != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d/%d, want 2/1/1", gets, puts, misses)
	}
}

func TestPrepend(t *testing.T) {
	p := NewPool()
	b := p.Get(4)
	copy(b.Bytes(), "data")
	hdr := b.Prepend(20)
	if len(hdr) != 24 {
		t.Fatalf("len after Prepend = %d, want 24", len(hdr))
	}
	if string(hdr[20:]) != "data" {
		t.Fatal("Prepend moved the payload")
	}
	if b.Headroom() != Headroom-20 {
		t.Fatalf("headroom after Prepend = %d, want %d", b.Headroom(), Headroom-20)
	}
}

func TestPrependOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Prepend past headroom did not panic")
		}
	}()
	NewPool().Get(1).Prepend(Headroom + 1)
}

func TestDoubleReleasePanics(t *testing.T) {
	p := NewPool()
	b := p.Get(8)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	b.Release()
}

func TestPoison(t *testing.T) {
	p := NewPool()
	p.SetPoison(true)
	b := p.Get(8)
	data := b.Bytes()
	copy(data, "payload!")
	b.Release()
	for i, v := range data {
		if v != 0xDB {
			t.Fatalf("byte %d = %#x after poisoned release, want 0xDB", i, v)
		}
	}
}

func TestOversize(t *testing.T) {
	p := NewPool()
	b := p.Get(8000)
	if b.Len() != 8000 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Release() // must not enter a free list
	for _, c := range p.classes {
		if len(c) != 0 {
			t.Fatal("oversize buffer entered a size class")
		}
	}
}

func TestSizeClassSelection(t *testing.T) {
	p := NewPool()
	small := p.Get(64) // 64+40=104 → class 128
	big := p.Get(1500) // 1540 → class 2048
	if cap(small.data) != 128 {
		t.Fatalf("64 B request got class %d, want 128", cap(small.data))
	}
	if cap(big.data) != 2048 {
		t.Fatalf("1500 B request got class %d, want 2048", cap(big.data))
	}
}

func BenchmarkGetRelease(b *testing.B) {
	p := NewPool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Get(1480).Release()
	}
}

// TestSetPoisonConcurrentToggle locks in that the poison flag — the one
// pool field a test harness may flip from outside the owning scheduler
// goroutine, e.g. between parallel sweep shards — is safe to race with
// Get/Release. Run under -race this fails if SetPoison regresses to a
// plain bool store.
func TestSetPoisonConcurrentToggle(t *testing.T) {
	p := NewPool()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			b := p.Get(64)
			b.Bytes()[0] = byte(i)
			b.Release()
		}
	}()
	for i := 0; i < 2000; i++ {
		p.SetPoison(i%2 == 0)
	}
	<-done
	if gets, puts, _ := p.Stats(); gets != 2000 || puts != 2000 {
		t.Fatalf("gets=%d puts=%d, want 2000/2000", gets, puts)
	}
}
