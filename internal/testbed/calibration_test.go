package testbed

import "testing"

// TestFigure4OrderingRobustToCalibration: the headline qualitative result —
// the ordering of the four curves — must survive large changes to the
// machine-speed constants. Only then is it evidence about the protocol
// rather than about the calibration.
func TestFigure4OrderingRobustToCalibration(t *testing.T) {
	for _, scale := range []float64{0.5, 2.0} {
		run := func(c Case) float64 {
			res := Run(Config{Case: c, BufLen: 1024, TotalBytes: 128 * 1024,
				Seed: 1, CPUScale: scale})
			if res.Err != nil {
				t.Fatalf("scale %.1f %v: %v", scale, c, res.Err)
			}
			return res.ThroughputKBps()
		}
		clean := run(CaseClean)
		noRedir := run(CaseNoRedirection)
		primary := run(CasePrimaryOnly)
		ft := run(CasePrimaryBackup)
		if !(clean >= noRedir*0.99 && noRedir > primary && primary > ft) {
			t.Errorf("scale %.1f: ordering broken: clean=%.0f noRedir=%.0f primary=%.0f ft=%.0f",
				scale, clean, noRedir, primary, ft)
		}
		if ft < clean*0.2 {
			t.Errorf("scale %.1f: FT mode collapsed (%.0f vs clean %.0f)", scale, ft, clean)
		}
	}
}
