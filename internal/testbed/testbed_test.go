package testbed

import (
	"testing"
	"time"
)

func runPoint(t *testing.T, c Case, size int) float64 {
	t.Helper()
	res := Run(Config{Case: c, BufLen: size, TotalBytes: 128 * 1024, Seed: 1})
	if res.Err != nil {
		t.Fatalf("%v @%dB failed: %v", c, size, res.Err)
	}
	tp := res.ThroughputKBps()
	if tp <= 0 {
		t.Fatalf("%v @%dB: zero throughput", c, size)
	}
	return tp
}

func TestFigure4Ordering(t *testing.T) {
	// The paper's qualitative result at a representative size: throughput
	// ordering clean >= no-redirection > primary-only > primary+backup,
	// with the FT penalty "not unreasonably" large.
	size := 1024
	clean := runPoint(t, CaseClean, size)
	noRedir := runPoint(t, CaseNoRedirection, size)
	primary := runPoint(t, CasePrimaryOnly, size)
	ft := runPoint(t, CasePrimaryBackup, size)

	if noRedir > clean*1.01 {
		t.Errorf("no-redirection (%.0f) beats clean (%.0f)", noRedir, clean)
	}
	if primary >= noRedir {
		t.Errorf("primary-only (%.0f) not below no-redirection (%.0f)", primary, noRedir)
	}
	if ft >= primary {
		t.Errorf("primary+backup (%.0f) not below primary-only (%.0f)", ft, primary)
	}
	if ft < clean*0.25 {
		t.Errorf("FT mode collapsed: %.0f vs clean %.0f", ft, clean)
	}
}

func TestFigure4Monotonicity(t *testing.T) {
	// Throughput rises with packet size in every configuration (the
	// figure's dominant trend).
	for _, c := range Figure4Cases {
		prev := 0.0
		for _, size := range []int{16, 128, 1024} {
			tp := runPoint(t, c, size)
			if tp <= prev {
				t.Errorf("%v: throughput not rising: %d B → %.1f (prev %.1f)", c, size, tp, prev)
			}
			prev = tp
		}
	}
}

func TestChainDepthCostsThroughput(t *testing.T) {
	// Ablation A2: each extra backup costs throughput (one more multicast
	// copy through the redirector plus a longer gating chain).
	one := Run(Config{Case: CasePrimaryBackup, BufLen: 1024, TotalBytes: 128 * 1024, Seed: 1, Backups: 1})
	three := Run(Config{Case: CasePrimaryBackup, BufLen: 1024, TotalBytes: 128 * 1024, Seed: 1, Backups: 3})
	if one.Err != nil || three.Err != nil {
		t.Fatalf("errs: %v %v", one.Err, three.Err)
	}
	if three.ThroughputKBps() >= one.ThroughputKBps() {
		t.Errorf("3 backups (%.0f) not slower than 1 (%.0f)",
			three.ThroughputKBps(), one.ThroughputKBps())
	}
}

func TestAckChannelLossDegradesButCompletes(t *testing.T) {
	// Ablation A3: the paper's UDP-channel trade-off — acknowledgment-
	// channel loss costs client retransmissions and throughput, never
	// correctness. Moderate loss is absorbed by the channel's natural
	// redundancy (every deposit and every suppressed segment re-reports
	// the cursors); heavy loss surfaces as client timeouts.
	clean := Run(Config{Case: CasePrimaryBackup, BufLen: 1024, TotalBytes: 64 * 1024, Seed: 1})
	moderate := Run(Config{Case: CasePrimaryBackup, BufLen: 1024, TotalBytes: 64 * 1024, Seed: 1,
		AckChannelLoss: 0.3})
	heavy := Run(Config{Case: CasePrimaryBackup, BufLen: 1024, TotalBytes: 64 * 1024, Seed: 1,
		AckChannelLoss: 0.6})
	if clean.Err != nil || moderate.Err != nil || heavy.Err != nil {
		t.Fatalf("errs: %v %v %v", clean.Err, moderate.Err, heavy.Err)
	}
	if moderate.Bytes != clean.Bytes || heavy.Bytes != clean.Bytes {
		t.Fatalf("bytes moved: clean=%d moderate=%d heavy=%d",
			clean.Bytes, moderate.Bytes, heavy.Bytes)
	}
	if moderate.ThroughputKBps() < clean.ThroughputKBps()*0.8 {
		t.Errorf("moderate loss should be largely absorbed: %.0f vs %.0f",
			moderate.ThroughputKBps(), clean.ThroughputKBps())
	}
	if heavy.ThroughputKBps() >= clean.ThroughputKBps()*0.7 {
		t.Errorf("heavy loss did not cost throughput: %.0f vs %.0f",
			heavy.ThroughputKBps(), clean.ThroughputKBps())
	}
	if heavy.Stats.RTOEvents == 0 && heavy.Stats.Retransmits == 0 {
		t.Error("heavy ack-channel loss caused no client retransmissions")
	}
}

func TestFailoverDetectsAndResumes(t *testing.T) {
	res := MeasureFailover(FailoverConfig{Threshold: 3, Seed: 1})
	if res.ClientError != nil {
		t.Fatalf("client connection broke: %v", res.ClientError)
	}
	if res.Detected == 0 {
		t.Fatal("failure never detected")
	}
	if res.Resumed == 0 {
		t.Fatal("stream never resumed")
	}
	if res.Resumed < res.Detected {
		t.Errorf("resumed (%v) before reconfiguration (%v)?", res.Resumed, res.Detected)
	}
	if res.Resumed > 2*time.Minute {
		t.Errorf("resume latency %v unreasonably large", res.Resumed)
	}
	if res.FalseReconfigs != 0 {
		t.Errorf("%d false reconfigurations", res.FalseReconfigs)
	}
}

func TestFailoverLatencyGrowsWithThreshold(t *testing.T) {
	low := MeasureFailover(FailoverConfig{Threshold: 1, Seed: 2})
	high := MeasureFailover(FailoverConfig{Threshold: 6, Seed: 2})
	if low.Detected == 0 || high.Detected == 0 {
		t.Fatalf("detection missing: low=%v high=%v", low.Detected, high.Detected)
	}
	if high.Detected <= low.Detected {
		t.Errorf("threshold 6 detected in %v, not slower than threshold 1 (%v)",
			high.Detected, low.Detected)
	}
}
