// Package testbed models the paper's measurement testbed (Section 5): two
// Pentium/120 PCs as primary and backup host servers, a 486 PC as the
// redirector/router, and a 486 PC as the client, joined by 10 Mbit/s links.
// It builds each of Figure 4's four configurations and runs ttcp transfers
// over them.
//
// The machine model charges per-packet and per-byte CPU costs calibrated so
// the clean-kernel curve lands in the few-hundred-kB/s range the paper
// reports for this hardware; the relationships between the four curves —
// who wins and by roughly what factor — are produced by the protocol
// mechanics, not by per-case tuning.
package testbed

import (
	"fmt"
	"os"
	"time"

	"hydranet"
	"hydranet/internal/ttcp"
)

// Case selects one of the paper's four measurement configurations.
type Case int

// Figure 4's four measurement series.
const (
	// CaseClean: unmodified software, no redirection — the baseline.
	CaseClean Case = iota + 1
	// CaseNoRedirection: HydraNet-FT software installed everywhere but no
	// service replicated; measures the fixed cost of the modified stacks.
	CaseNoRedirection
	// CasePrimaryOnly: the service address belongs to no physical host; the
	// redirector tunnels every packet to a single primary replica;
	// measures the redirection penalty.
	CasePrimaryOnly
	// CasePrimaryBackup: full fault-tolerant mode with the redirector
	// multicasting to a primary and backups synchronized over the
	// acknowledgment channel.
	CasePrimaryBackup
)

// String names the case as in the paper's legend.
func (c Case) String() string {
	switch c {
	case CaseClean:
		return "clean kernel"
	case CaseNoRedirection:
		return "no redirection"
	case CasePrimaryOnly:
		return "primary only"
	case CasePrimaryBackup:
		return "primary and backup"
	default:
		return fmt.Sprintf("Case(%d)", int(c))
	}
}

// Machine model: CPU costs per packet and per byte.
//
// The 486 figures make the client the end-system bottleneck and the 486
// redirector the path bottleneck once it must process every frame twice
// (in and out), as on the paper's testbed.
const (
	client486Proc    = 300 * time.Microsecond
	client486PerByte = 1300 * time.Nanosecond

	router486Proc    = 250 * time.Microsecond
	router486PerByte = 750 * time.Nanosecond

	pentiumProc    = 150 * time.Microsecond
	pentiumPerByte = 350 * time.Nanosecond

	// Costs of the HydraNet-FT software itself: the redirector-table check
	// in the router's forwarding path and the replicated-port checks in
	// the host-server TCP stack.
	redirectorSWCost = 25 * time.Microsecond
	ftStackCost      = 20 * time.Microsecond
)

// Link parameters: 10 Mbit/s Ethernet-class links.
var testbedLink = hydranet.LinkConfig{
	Rate:       10_000_000,
	Delay:      100 * time.Microsecond,
	MTU:        1500,
	QueueBytes: 32 * 1024,
}

// Config parameterizes one measurement run.
type Config struct {
	Case       Case
	BufLen     int   // ttcp write size ("packet size")
	TotalBytes int   // transfer volume; default 512 KiB
	Seed       int64 // simulation seed
	// Backups is the number of backup replicas in CasePrimaryBackup
	// (default 1, the paper's setup).
	Backups int
	// AckChannelLoss drops that fraction of acknowledgment-channel
	// messages (ablation A3).
	AckChannelLoss float64
	// MTU overrides the link MTU (ablation A4). Zero keeps 1500.
	MTU int
	// CPUScale multiplies every machine's CPU costs (robustness checks:
	// the figure's qualitative shape must not depend on the calibration
	// constants). Zero means 1.0.
	CPUScale float64
	// PcapPath, if set, captures the measured transfer — every fabric
	// frame plus the redirector's pre-encapsulation tunnel copies — to
	// this pcap file.
	PcapPath string
	// SeriesPath, if set, exports sampled time series for the measured
	// transfer (JSONL, or CSV if the path ends in .csv).
	SeriesPath string
	// SampleEvery is the telemetry sampling cadence (default 100 ms of
	// virtual time). Used only with SeriesPath.
	SampleEvery time.Duration
	// ProfilePath, if set, writes a hydraprof profile of the measured
	// transfer (per-domain utilization, causal critical path; see
	// hydranet.StartProfile) to this file.
	ProfilePath string
	// Workers partitions the network into synchronization domains and runs
	// them across this many worker threads (see hydranet.SetWorkers). 0 or 1
	// keeps the serial scheduler; any larger count produces identical
	// results.
	Workers int
	// Invariants attaches the online protocol-invariant monitor; violation
	// counts land in RunInfo.Violations.
	Invariants bool
	// AuditPath, if set, writes the monitor's audit report as JSON here
	// (implies Invariants).
	AuditPath string
}

// ServiceAddr is the replicated service's virtual address — a host that
// does not physically exist, as in the paper's "primary only" experiment.
var ServiceAddr = hydranet.MustAddr("192.20.225.20")

// ServicePort is the replicated TCP port.
const ServicePort = 5001 // ttcp's traditional port

// RunInfo reports the execution cost of one testbed run, for tracking the
// simulator's own performance (events/sec is the core metric the fast path
// optimizes).
type RunInfo struct {
	Events uint64        // scheduler events fired
	Frames uint64        // fabric frames sent, summed over all nodes
	Wall   time.Duration // host wall-clock time for the run
	// Violations counts protocol-invariant violations (0 unless
	// Config.Invariants or AuditPath enabled the monitor).
	Violations int
}

// RunMeasured is Run plus execution metrics.
func RunMeasured(cfg Config) (ttcp.Result, RunInfo) {
	start := time.Now()
	result, net, audit := run(cfg)
	info := RunInfo{Wall: time.Since(start), Events: net.EventsFired()}
	for _, h := range net.Snapshot().Hosts {
		info.Frames += h.Frames.Sent
	}
	if audit != nil {
		info.Violations = int(audit.TotalViolations())
	}
	return result, info
}

// Run executes one ttcp transfer in the given configuration and returns
// the client-side result.
func Run(cfg Config) ttcp.Result {
	result, _, _ := run(cfg)
	return result
}

func run(cfg Config) (ttcp.Result, *hydranet.Net, *hydranet.AuditReport) {
	if cfg.TotalBytes == 0 {
		cfg.TotalBytes = 512 * 1024
	}
	if cfg.Backups == 0 {
		cfg.Backups = 1
	}
	link := testbedLink
	if cfg.MTU != 0 {
		link.MTU = cfg.MTU
	}

	tcpCfg := hydranet.TCPConfig{
		MSS:               1460,
		SendBufSize:       16384,
		RecvBufSize:       16384,
		DelayedAckTimeout: 200 * time.Millisecond,
		// Keep the measurement window tight: the transfer ends when the
		// client's FIN handshake completes, so TIME-WAIT must not extend
		// the measured interval.
		TimeWaitDuration: time.Millisecond,
	}
	if cfg.MTU != 0 && cfg.MTU < 1500 {
		tcpCfg.MSS = cfg.MTU - 40
	}
	net := hydranet.New(hydranet.Config{Seed: cfg.Seed, TCP: tcpCfg})

	modified := cfg.Case != CaseClean
	scale := cfg.CPUScale
	if scale == 0 {
		scale = 1
	}
	mul := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * scale)
	}
	clientCfg := hydranet.HostConfig{ProcDelay: mul(client486Proc), ProcPerByte: mul(client486PerByte)}
	routerCfg := hydranet.HostConfig{ProcDelay: mul(router486Proc), ProcPerByte: mul(router486PerByte)}
	serverCfg := hydranet.HostConfig{ProcDelay: mul(pentiumProc), ProcPerByte: mul(pentiumPerByte)}
	if modified {
		routerCfg.ProcDelay += mul(redirectorSWCost)
		serverCfg.ProcDelay += mul(ftStackCost)
	}

	client := net.AddHost("client", clientCfg)

	var result ttcp.Result
	done := false
	runTransfer := func(target hydranet.Endpoint) {
		conn, err := client.DialEndpoint(target)
		if err != nil {
			panic(fmt.Sprintf("testbed: dial: %v", err))
		}
		// Pace the transfer on the client's own scheduler: in a partitioned
		// run that is the client's domain scheduler, so the send loop stays
		// inside one synchronization domain.
		ttcp.Transmit(client.Scheduler(), conn,
			ttcp.Params{BufLen: cfg.BufLen, TotalBytes: cfg.TotalBytes},
			func(r ttcp.Result) { result = r; done = true })
	}

	// The testbed is one Ethernet segment: all machines are mutually
	// adjacent, and only traffic for redirected (virtual) addresses flows
	// through the redirector, which acts as the LAN's gateway for them.
	// Return traffic and the acknowledgment channel go host-to-host, as
	// the paper notes ("there is no need for redirectors to handle
	// messages directed from servers to clients").
	var mon *hydranet.Monitor
	mesh := func(hosts ...*hydranet.Host) {
		for i := 0; i < len(hosts); i++ {
			for j := i + 1; j < len(hosts); j++ {
				net.Link(hosts[i], hosts[j], link)
			}
		}
		net.AutoRoute()
		// The topology is final here, and nothing is deployed or dialed yet —
		// the one point where partitioning is legal.
		if cfg.Workers > 1 {
			if err := net.SetWorkers(cfg.Workers); err != nil {
				panic(fmt.Sprintf("testbed: partition: %v", err))
			}
		}
		// The monitor attaches right after the partition and before the
		// case deploys anything: it must see the registration events, and
		// under the parallel core it consumes the barrier-ordered replayed
		// stream. The label omits the worker count so audits diff
		// byte-identical across Workers.
		if cfg.Invariants || cfg.AuditPath != "" {
			mon = net.StartMonitor(hydranet.MonitorConfig{
				Scenario: fmt.Sprintf("figure4 %s buf=%d", cfg.Case, cfg.BufLen),
			})
		}
	}

	switch cfg.Case {
	case CaseClean, CaseNoRedirection:
		var router *hydranet.Host
		if cfg.Case == CaseClean {
			router = net.AddRouter("router", routerCfg)
		} else {
			// The redirector software runs but its table stays empty.
			rd := net.AddRedirector("rd", routerCfg)
			router = rd.Host
		}
		server := net.AddHost("server", serverCfg)
		mesh(client, router, server)
		lst, err := server.Listen(0, ServicePort)
		if err != nil {
			panic(err)
		}
		lst.SetAcceptFunc(func(c *hydranet.Conn) { ttcp.Sink(c) })
		runTransfer(hydranet.Endpoint{Addr: server.Addr(), Port: ServicePort})

	case CasePrimaryOnly, CasePrimaryBackup:
		rd := net.AddRedirector("rd", routerCfg)
		nReplicas := 1
		if cfg.Case == CasePrimaryBackup {
			nReplicas = 1 + cfg.Backups
		}
		var replicas []*hydranet.Host
		for i := 0; i < nReplicas; i++ {
			h := net.AddHost(fmt.Sprintf("s%d", i), serverCfg)
			replicas = append(replicas, h)
		}
		mesh(append([]*hydranet.Host{rd.Host, client}, replicas...)...)
		svc := hydranet.ServiceID{Addr: ServiceAddr, Port: ServicePort}
		if _, err := net.DeployFT(svc, rd, replicas, hydranet.FTOptions{},
			func(c *hydranet.Conn) { ttcp.Sink(c) }); err != nil {
			panic(err)
		}
		if cfg.AckChannelLoss > 0 {
			for _, h := range replicas {
				h.FTManager().SetChainLoss(cfg.AckChannelLoss)
			}
		}
		net.Settle()
		runTransfer(hydranet.Endpoint{Addr: ServiceAddr, Port: ServicePort})
	default:
		panic(fmt.Sprintf("testbed: unknown case %d", cfg.Case))
	}

	// The capture attaches after the topology (and its redirector, if any)
	// exists but before the scheduler runs the transfer: the dial above
	// only enqueued the SYN, so every frame of the measured stream is
	// still ahead of us.
	var pcapFile *os.File
	if cfg.PcapPath != "" {
		f, err := os.Create(cfg.PcapPath)
		if err != nil {
			panic(err)
		}
		pcapFile = f
		if _, err := net.StartCapture(f); err != nil {
			panic(err)
		}
	}
	// The telemetry sampler attaches at the same point, for the same
	// reason: its first tick then covers the measured stream from byte 0.
	var tel *hydranet.Telemetry
	if cfg.SeriesPath != "" {
		tel = net.StartSampler(hydranet.SamplerConfig{Every: cfg.SampleEvery})
	}
	// So does the profiler: its event and critical-path baselines reset at
	// attach, so the profile covers exactly the measured transfer.
	var profiler *hydranet.Profiler
	if cfg.ProfilePath != "" {
		profiler = net.StartProfile(hydranet.ProfileConfig{
			Scenario: fmt.Sprintf("figure4 %s buf=%d", cfg.Case, cfg.BufLen),
		})
	}

	// Generous ceiling: slow small-packet runs take tens of virtual
	// seconds; a wedged run stops here instead of spinning forever.
	deadline := net.Now() + 30*time.Minute
	for !done && net.Now() < deadline {
		net.RunFor(time.Second)
	}
	if pcapFile != nil {
		if err := pcapFile.Close(); err != nil {
			panic(err)
		}
	}
	if tel != nil {
		tel.Stop()
		if err := tel.WriteFile(cfg.SeriesPath); err != nil {
			panic(err)
		}
	}
	if profiler != nil {
		if err := profiler.WriteFile(cfg.ProfilePath); err != nil {
			panic(err)
		}
	}
	var audit *hydranet.AuditReport
	if mon != nil {
		r := net.FinishAudit(mon)
		audit = &r
		if cfg.AuditPath != "" {
			if err := r.WriteJSON(cfg.AuditPath); err != nil {
				panic(err)
			}
		}
	}
	return result, net, audit
}

// Figure4Sizes are the paper's x-axis write sizes.
var Figure4Sizes = []int{16, 32, 64, 128, 256, 512, 1024}

// Figure4Cases are the paper's four series in legend order.
var Figure4Cases = []Case{CaseClean, CaseNoRedirection, CasePrimaryOnly, CasePrimaryBackup}
