package testbed

import (
	"reflect"
	"testing"

	"hydranet/internal/sweep"
	"hydranet/internal/ttcp"
)

// TestParallelSweepMatchesSerial: fanning runs across workers changes which
// host thread executes a simulation, never its result. Every run owns a
// private scheduler, network and frame pool, so serial and parallel sweeps
// must agree field for field. Run under -race this also proves the workers
// share no simulator state.
func TestParallelSweepMatchesSerial(t *testing.T) {
	var cfgs []Config
	for _, c := range Figure4Cases {
		for seed := int64(1); seed <= 2; seed++ {
			cfgs = append(cfgs, Config{
				Case: c, BufLen: 512, TotalBytes: 64 * 1024, Seed: seed,
			})
		}
	}
	run := func(i int) ttcp.Result { return Run(cfgs[i]) }
	serial := sweep.Map(1, len(cfgs), run)
	parallel := sweep.Map(4, len(cfgs), run)
	for i := range cfgs {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("cfg %+v: serial %+v != parallel %+v", cfgs[i], serial[i], parallel[i])
		}
	}
}
