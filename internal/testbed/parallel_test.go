package testbed

import (
	"reflect"
	"testing"

	"hydranet/internal/sweep"
	"hydranet/internal/ttcp"
)

// TestParallelSweepMatchesSerial: fanning runs across workers changes which
// host thread executes a simulation, never its result. Every run owns a
// private scheduler, network and frame pool, so serial and parallel sweeps
// must agree field for field. Run under -race this also proves the workers
// share no simulator state.
func TestParallelSweepMatchesSerial(t *testing.T) {
	var cfgs []Config
	for _, c := range Figure4Cases {
		for seed := int64(1); seed <= 2; seed++ {
			cfgs = append(cfgs, Config{
				Case: c, BufLen: 512, TotalBytes: 64 * 1024, Seed: seed,
			})
		}
	}
	run := func(i int) ttcp.Result { return Run(cfgs[i]) }
	serial := sweep.Map(1, len(cfgs), run)
	parallel := sweep.Map(4, len(cfgs), run)
	for i := range cfgs {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("cfg %+v: serial %+v != parallel %+v", cfgs[i], serial[i], parallel[i])
		}
	}
}

// TestWorkersInvariantResult: partitioning one testbed run across worker
// threads (in-simulation parallelism, as opposed to the sweep's
// across-simulation parallelism above) must not change the measured result.
func TestWorkersInvariantResult(t *testing.T) {
	cfg := Config{Case: CasePrimaryBackup, BufLen: 512, TotalBytes: 128 * 1024, Seed: 3}
	serial := Run(cfg)
	cfg.Workers = 4
	parallel := Run(cfg)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("serial %+v != 4-worker %+v", serial, parallel)
	}
}

// TestRunScaleInvariantAcrossWorkers: the scaling workload's simulation
// observables — aggregate throughput and events fired — are identical for
// every worker count; only wall-clock time may differ.
func TestRunScaleInvariantAcrossWorkers(t *testing.T) {
	cfg := ScaleConfig{Pods: 3, TotalBytes: 64 * 1024, Seed: 5}
	serial := RunScale(cfg)
	cfg.Workers = 4
	parallel := RunScale(cfg)
	if serial.AggKBps != parallel.AggKBps {
		t.Errorf("aggregate throughput: serial %.3f, parallel %.3f", serial.AggKBps, parallel.AggKBps)
	}
	if serial.Events != parallel.Events {
		t.Errorf("events fired: serial %d, parallel %d", serial.Events, parallel.Events)
	}
	if parallel.Domains != cfg.Pods {
		t.Errorf("partitioned into %d domains, want one per pod (%d)", parallel.Domains, cfg.Pods)
	}
	if parallel.MergeTies != 0 {
		t.Errorf("%d merge ties, want 0", parallel.MergeTies)
	}
}
