package testbed

import (
	"fmt"
	"time"

	"hydranet"
	"hydranet/internal/ttcp"
)

// ScaleConfig parameterizes RunScale: a scaling workload of independent
// service pods — each a client, a redirector, and a primary/backup replica
// pair — joined by a higher-delay backbone ring between the redirectors.
// The delay structure makes each pod one synchronization domain (the
// backbone's propagation delay is the cut, and the lookahead window), so
// the workload parallelizes across pods while remaining one deterministic
// simulation.
type ScaleConfig struct {
	// Pods is the number of client/redirector/primary/backup pods
	// (default 4).
	Pods int
	// Workers is the worker-thread count (see hydranet.SetWorkers); 0 or 1
	// runs the untouched serial scheduler as the baseline.
	Workers int
	// BufLen is the per-pod ttcp write size (default 1024).
	BufLen int
	// TotalBytes is the per-pod transfer volume (default 512 KiB).
	TotalBytes int
	// Seed is the simulation seed.
	Seed int64
	// ProfilePath, if set, writes a hydraprof profile of the transfers
	// (per-domain utilization, hand-off matrix, causal critical path; see
	// hydranet.StartProfile) to this file.
	ProfilePath string
	// Invariants attaches the online protocol-invariant monitor; violation
	// counts land in ScaleResult.Violations.
	Invariants bool
	// AuditPath, if set, writes the monitor's audit report as JSON here
	// (implies Invariants).
	AuditPath string
}

// ScaleResult reports one RunScale execution.
type ScaleResult struct {
	Pods    int `json:"pods"`
	Domains int `json:"domains"`
	Workers int `json:"workers"`
	// AggKBps is the aggregate client-observed throughput over all pods —
	// a simulation observable, identical for every worker count.
	AggKBps float64 `json:"agg_kbps"`
	// Events is the total number of fired simulation events.
	Events uint64 `json:"events"`
	// Frames is the total number of fabric frames sent.
	Frames uint64 `json:"frames"`
	// Handoffs and MergeTies report cross-domain fabric activity.
	Handoffs  uint64 `json:"handoffs"`
	MergeTies uint64 `json:"merge_ties"`
	// Wall is host wall-clock time for the run loop — the quantity the
	// parallel core exists to shrink.
	Wall time.Duration `json:"wall_ns"`
	// Violations counts protocol-invariant violations (0 unless
	// ScaleConfig.Invariants or AuditPath enabled the monitor; omitted from
	// JSON when the monitor was off, keeping committed baselines stable).
	Violations int `json:"violations,omitempty"`
}

// backboneLink joins neighboring pod redirectors: ten times the intra-pod
// propagation delay, so the automatic partition cuts exactly these links.
var backboneLink = hydranet.LinkConfig{
	Rate:       100_000_000,
	Delay:      time.Millisecond,
	MTU:        1500,
	QueueBytes: 64 * 1024,
}

// RunScale builds the pod topology, partitions it across cfg.Workers worker
// threads, runs one ttcp transfer per pod concurrently, and reports
// aggregate throughput plus execution metrics. The virtual results are
// worker-count-invariant; only Wall varies.
func RunScale(cfg ScaleConfig) ScaleResult {
	if cfg.Pods == 0 {
		cfg.Pods = 4
	}
	if cfg.BufLen == 0 {
		cfg.BufLen = 1024
	}
	if cfg.TotalBytes == 0 {
		cfg.TotalBytes = 512 * 1024
	}

	net := hydranet.New(hydranet.Config{Seed: cfg.Seed, TCP: hydranet.TCPConfig{
		MSS:               1460,
		SendBufSize:       16384,
		RecvBufSize:       16384,
		DelayedAckTimeout: 200 * time.Millisecond,
		TimeWaitDuration:  time.Millisecond,
	}})

	clientCfg := hydranet.HostConfig{ProcDelay: client486Proc, ProcPerByte: client486PerByte}
	routerCfg := hydranet.HostConfig{ProcDelay: router486Proc + redirectorSWCost, ProcPerByte: router486PerByte}
	serverCfg := hydranet.HostConfig{ProcDelay: pentiumProc + ftStackCost, ProcPerByte: pentiumPerByte}

	type pod struct {
		client   *hydranet.Host
		rd       *hydranet.Redirector
		replicas []*hydranet.Host
		svc      hydranet.ServiceID
	}
	pods := make([]pod, cfg.Pods)
	for i := range pods {
		p := &pods[i]
		p.client = net.AddHost(fmt.Sprintf("c%d", i), clientCfg)
		p.rd = net.AddRedirector(fmt.Sprintf("rd%d", i), routerCfg)
		p.replicas = []*hydranet.Host{
			net.AddHost(fmt.Sprintf("s%da", i), serverCfg),
			net.AddHost(fmt.Sprintf("s%db", i), serverCfg),
		}
		net.Link(p.client, p.rd.Host, testbedLink)
		for _, r := range p.replicas {
			net.Link(r, p.rd.Host, testbedLink)
		}
		p.svc = hydranet.ServiceID{
			Addr: hydranet.MustAddr(fmt.Sprintf("192.20.225.%d", 20+i)),
			Port: ServicePort,
		}
	}
	for i := 1; i < len(pods); i++ {
		net.Link(pods[i-1].rd.Host, pods[i].rd.Host, backboneLink)
	}
	if len(pods) > 2 {
		net.Link(pods[len(pods)-1].rd.Host, pods[0].rd.Host, backboneLink)
	}
	net.AutoRoute()

	if cfg.Workers > 1 {
		if err := net.SetWorkers(cfg.Workers); err != nil {
			panic(fmt.Sprintf("testbed: scale partition: %v", err))
		}
	}

	// The monitor attaches after the partition and before the pods deploy:
	// it must see every pod's registrations. The label omits the worker
	// count so audits diff byte-identical across Workers.
	var mon *hydranet.Monitor
	if cfg.Invariants || cfg.AuditPath != "" {
		mon = net.StartMonitor(hydranet.MonitorConfig{
			Scenario: fmt.Sprintf("scale pods=%d", cfg.Pods),
		})
	}

	for i := range pods {
		p := &pods[i]
		if _, err := net.DeployFT(p.svc, p.rd, p.replicas, hydranet.FTOptions{},
			func(c *hydranet.Conn) { ttcp.Sink(c) }); err != nil {
			panic(fmt.Sprintf("testbed: scale deploy pod %d: %v", i, err))
		}
	}
	net.Settle()

	// Attach after registration settles: the profile's event and
	// critical-path baselines then cover exactly the measured transfers.
	var profiler *hydranet.Profiler
	if cfg.ProfilePath != "" {
		profiler = net.StartProfile(hydranet.ProfileConfig{
			Scenario: fmt.Sprintf("scale pods=%d workers=%d", cfg.Pods, cfg.Workers),
		})
	}

	remaining := len(pods)
	var aggKBps float64
	for i := range pods {
		p := &pods[i]
		conn, err := p.client.DialEndpoint(hydranet.Endpoint{Addr: p.svc.Addr, Port: p.svc.Port})
		if err != nil {
			panic(fmt.Sprintf("testbed: scale dial pod %d: %v", i, err))
		}
		ttcp.Transmit(p.client.Scheduler(), conn,
			ttcp.Params{BufLen: cfg.BufLen, TotalBytes: cfg.TotalBytes},
			func(r ttcp.Result) {
				aggKBps += r.ThroughputKBps()
				remaining--
			})
	}

	start := time.Now()
	deadline := net.Now() + 30*time.Minute
	for remaining > 0 && net.Now() < deadline {
		net.RunFor(time.Second)
	}
	wall := time.Since(start)
	if remaining > 0 {
		panic(fmt.Sprintf("testbed: scale run wedged with %d pods unfinished", remaining))
	}
	if profiler != nil {
		if err := profiler.WriteFile(cfg.ProfilePath); err != nil {
			panic(err)
		}
	}

	domains, workers := net.Parallel()
	res := ScaleResult{
		Pods:      cfg.Pods,
		Domains:   domains,
		Workers:   workers,
		AggKBps:   aggKBps,
		Events:    net.EventsFired(),
		Handoffs:  net.Handoffs(),
		MergeTies: net.MergeTies(),
		Wall:      wall,
	}
	for _, h := range net.Snapshot().Hosts {
		res.Frames += h.Frames.Sent
	}
	if mon != nil {
		audit := net.FinishAudit(mon)
		res.Violations = int(audit.TotalViolations())
		if cfg.AuditPath != "" {
			if err := audit.WriteJSON(cfg.AuditPath); err != nil {
				panic(err)
			}
		}
	}
	return res
}
