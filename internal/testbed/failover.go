package testbed

import (
	"fmt"
	"os"
	"time"

	"hydranet"
	"hydranet/internal/app"
	"hydranet/internal/core"
	"hydranet/internal/rmp"
	"hydranet/internal/ttcp"
)

// FailoverConfig parameterizes a failover-latency measurement (ablation A1:
// the paper's Section 4.3 trade-off between detection latency and false
// positives, swept over the retransmission threshold).
type FailoverConfig struct {
	// Threshold is the detector's retransmission threshold.
	Threshold int
	// Backups is the number of backup replicas (default 1).
	Backups int
	// Seed drives the simulation.
	Seed int64
	// CrashAt is when the primary is killed, relative to the start of the
	// client's stream (default 500 ms).
	CrashAt time.Duration
	// Loss, if nonzero, adds random loss to every link — for measuring
	// false positives under congestion-like conditions.
	Loss float64
	// NoCrash keeps every host alive: the run measures detector false
	// positives (suspicions and wrongful reconfigurations) only.
	NoCrash bool
	// PcapPath, if set, captures every frame of the run (including the
	// redirector's pre-encap tunnel copies) to this pcap file.
	PcapPath string
	// FlightPrefix, if set, runs a flight recorder dumped to
	// FlightPrefix.pcap/.json when the failover probe fires (or at the end
	// of the run if it never does).
	FlightPrefix string
	// SpansPath, if set, writes the per-connection span timeline JSON here.
	SpansPath string
	// SeriesPath, if set, exports sampled time series for the run (JSONL,
	// or CSV if the path ends in .csv), including per-replica health
	// verdicts from the gray-failure scorer and the failover phase report.
	SeriesPath string
	// SampleEvery is the telemetry sampling cadence (default 100 ms of
	// virtual time). Used only with SeriesPath.
	SampleEvery time.Duration
	// ProfilePath, if set, writes a hydraprof profile of the run (detection
	// and recovery included; see hydranet.StartProfile) to this file.
	ProfilePath string
	// Workers partitions the network into synchronization domains across
	// this many worker threads (see hydranet.SetWorkers). 0 or 1 keeps the
	// serial scheduler. With Loss > 0 the loss pattern is drawn from
	// per-domain generators, so partitioned runs are deterministic and
	// worker-count-invariant but sample a different loss sequence than the
	// serial scheduler.
	Workers int
	// Invariants attaches the online protocol-invariant monitor; violation
	// counts land in FailoverResult.Violations.
	Invariants bool
	// AuditPath, if set, writes the monitor's audit report as JSON here
	// (implies Invariants).
	AuditPath string
}

// FailoverResult reports what happened.
type FailoverResult struct {
	// Detected is when the redirector completed reconfiguration after the
	// crash (zero if never).
	Detected time.Duration
	// Resumed is when the client received its first post-crash byte (zero
	// if never).
	Resumed time.Duration
	// Suspicions counts detector trips across all replicas.
	Suspicions uint64
	// FalseReconfigs counts reconfigurations that removed a live host.
	FalseReconfigs int
	// Delivered is the total number of bytes echoed back to the client.
	Delivered int
	// ClientError is non-nil if the client connection broke — a failure of
	// transparency.
	ClientError error
	// Violations counts protocol-invariant violations (0 unless
	// FailoverConfig.Invariants or AuditPath enabled the monitor).
	Violations int
}

// MeasureFailover streams continuously through a replicated echo service,
// kills the primary mid-stream, and measures detection and resume latency
// at the client.
func MeasureFailover(cfg FailoverConfig) FailoverResult {
	if cfg.Backups == 0 {
		cfg.Backups = 1
	}
	if cfg.CrashAt == 0 {
		cfg.CrashAt = 500 * time.Millisecond
	}
	link := testbedLink
	link.Loss = cfg.Loss
	tcpCfg := hydranet.TCPConfig{
		MSS: 1460, SendBufSize: 16384, RecvBufSize: 16384,
		DelayedAckTimeout: 200 * time.Millisecond,
	}
	net := hydranet.New(hydranet.Config{Seed: cfg.Seed, TCP: tcpCfg})
	client := net.AddHost("client", hydranet.HostConfig{ProcDelay: client486Proc, ProcPerByte: client486PerByte})
	rd := net.AddRedirector("rd", hydranet.HostConfig{ProcDelay: router486Proc, ProcPerByte: router486PerByte})
	var replicas []*hydranet.Host
	for i := 0; i < 1+cfg.Backups; i++ {
		replicas = append(replicas, net.AddHost("s"+string(rune('0'+i)),
			hydranet.HostConfig{ProcDelay: pentiumProc, ProcPerByte: pentiumPerByte}))
	}
	all := append([]*hydranet.Host{rd.Host, client}, replicas...)
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			net.Link(all[i], all[j], link)
		}
	}
	net.AutoRoute()
	if cfg.Workers > 1 {
		if err := net.SetWorkers(cfg.Workers); err != nil {
			panic(fmt.Sprintf("testbed: failover partition: %v", err))
		}
	}

	// The monitor attaches after the partition (it consumes the
	// barrier-ordered replayed stream) and before DeployFT (it
	// reconstructs membership from registration events). The label omits
	// the worker count so audits diff byte-identical across Workers.
	var mon *hydranet.Monitor
	if cfg.Invariants || cfg.AuditPath != "" {
		mon = net.StartMonitor(hydranet.MonitorConfig{
			Scenario: fmt.Sprintf("failover threshold=%d backups=%d loss=%g", cfg.Threshold, cfg.Backups, cfg.Loss),
		})
	}

	// Capture subsystems attach after the topology is final, before any
	// traffic (registration included) hits the wire.
	var pcapFile *os.File
	if cfg.PcapPath != "" {
		f, err := os.Create(cfg.PcapPath)
		if err != nil {
			panic(err)
		}
		pcapFile = f
		if _, err := net.StartCapture(f); err != nil {
			panic(err)
		}
	}
	var flight *hydranet.FlightRecorder
	var probe *hydranet.FailoverProbe
	if cfg.FlightPrefix != "" || cfg.SeriesPath != "" {
		probe = net.NewFailoverProbe()
	}
	if cfg.FlightPrefix != "" {
		flight = net.StartFlightRecorder(0, 0)
		flight.DumpOnFailover(probe, cfg.FlightPrefix)
		if mon != nil {
			flight.DumpOnViolation(mon, cfg.FlightPrefix+"-violation")
		}
	}
	var spans *hydranet.SpanCollector
	if cfg.SpansPath != "" || cfg.SeriesPath != "" {
		spans = net.NewSpanCollector()
	}
	var tel *hydranet.Telemetry
	if cfg.SeriesPath != "" {
		tel = net.StartSampler(hydranet.SamplerConfig{
			Every:  cfg.SampleEvery,
			Spans:  spans,
			Health: &hydranet.HealthConfig{},
		})
		tel.AttachFailover(probe)
		tel.WatchReplicas(replicas...)
	}

	svc := hydranet.ServiceID{Addr: ServiceAddr, Port: ServicePort}
	opts := hydranet.FTOptions{Detector: hydranet.DetectorParams{RetransmitThreshold: cfg.Threshold}}
	ftsvc, err := net.DeployFT(svc, rd, replicas, opts, func(c *hydranet.Conn) { app.Echo(c) })
	if err != nil {
		panic(err)
	}
	net.Settle()

	// Attach after registration settles, so the profile covers the stream,
	// the crash, detection and recovery — the phases the report attributes.
	var profiler *hydranet.Profiler
	if cfg.ProfilePath != "" {
		profiler = net.StartProfile(hydranet.ProfileConfig{
			Scenario: fmt.Sprintf("failover threshold=%d workers=%d", cfg.Threshold, cfg.Workers),
		})
	}

	var res FailoverResult
	var crashTime time.Duration
	// The reconfiguration callback runs in the redirector domain's worker
	// context when partitioned, so it must use the redirector's own clock;
	// the liveness flags it reads only change between runs (CrashPrimary is
	// coordinator-context), and the fields it writes are not touched by any
	// other domain's callbacks.
	rd.Daemon().OnReconfig(func(_ core.ServiceID, failed []hydranet.Addr) {
		genuine := false
		for _, f := range failed {
			for _, h := range replicas {
				if h.Addr() == f && !h.Alive() {
					genuine = true
				}
			}
		}
		if genuine {
			if res.Detected == 0 && crashTime > 0 {
				res.Detected = rd.Host.Scheduler().Now() - crashTime
			}
		} else {
			res.FalseReconfigs++
		}
	})

	conn, err := client.Dial(svc)
	if err != nil {
		panic(err)
	}
	conn.OnClosed(func(err error) { res.ClientError = err })
	buf := make([]byte, 2048)
	conn.OnReadable(func() {
		for {
			n := conn.Read(buf)
			if n == 0 {
				break
			}
			res.Delivered += n
			if crashTime > 0 && res.Resumed == 0 {
				// Client-domain clock: this callback runs in the client
				// domain's worker context when partitioned.
				res.Resumed = client.Scheduler().Now() - crashTime
			}
		}
	})
	// A continuous stream: the echo keeps flowing both ways.
	payload := make([]byte, 4<<20)
	app.Source(conn, payload, false)

	net.RunFor(cfg.CrashAt)
	if !cfg.NoCrash {
		crashTime = net.Now()
		ftsvc.CrashPrimary()
	}
	// Run long enough for worst-case detection (threshold retransmissions
	// under exponential backoff) plus recovery.
	net.RunFor(4 * time.Minute)

	for _, h := range replicas {
		res.Suspicions += h.FTManager().Stats().Suspicions
	}
	if pcapFile != nil {
		if err := pcapFile.Close(); err != nil {
			panic(err)
		}
	}
	if flight != nil && flight.Dumps() == 0 {
		if err := flight.Dump(cfg.FlightPrefix); err != nil {
			panic(err)
		}
	}
	if spans != nil && cfg.SpansPath != "" {
		f, err := os.Create(cfg.SpansPath)
		if err != nil {
			panic(err)
		}
		if err := spans.WriteJSON(f); err != nil {
			f.Close()
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
	}
	if tel != nil {
		tel.Stop()
		if err := tel.WriteFile(cfg.SeriesPath); err != nil {
			panic(err)
		}
	}
	if profiler != nil {
		if err := profiler.WriteFile(cfg.ProfilePath); err != nil {
			panic(err)
		}
	}
	if mon != nil {
		audit := net.FinishAudit(mon)
		res.Violations = int(audit.TotalViolations())
		if cfg.AuditPath != "" {
			if err := audit.WriteJSON(cfg.AuditPath); err != nil {
				panic(err)
			}
		}
	}
	return res
}

// CongestionResult reports a congested-backup scenario (ablation A5).
type CongestionResult struct {
	// Completed reports whether the client's transfer finished.
	Completed bool
	// Elapsed is the transfer duration (valid when Completed).
	Elapsed time.Duration
	// Evictions counts congestion-based removals at the redirector.
	Evictions uint64
	// ClientError is the client connection's fate (nil or timeout).
	ClientError error
}

// MeasureCongestionEviction runs a fixed transfer through a primary+backup
// service whose backup's acknowledgment channel dies mid-transfer (severe
// congestion: the host is alive but stalls the chain). policyStrikes > 0
// enables the redirector's congestion-eviction policy with that strike
// count; 0 leaves it disabled, which strands the transfer — the trade-off
// the paper's introduction motivates.
func MeasureCongestionEviction(policyStrikes int, seed int64) CongestionResult {
	tcpCfg := hydranet.TCPConfig{
		MSS: 1460, SendBufSize: 16384, RecvBufSize: 16384,
		DelayedAckTimeout: 200 * time.Millisecond,
		TimeWaitDuration:  time.Millisecond,
	}
	net := hydranet.New(hydranet.Config{Seed: seed, TCP: tcpCfg})
	client := net.AddHost("client", hydranet.HostConfig{ProcDelay: client486Proc, ProcPerByte: client486PerByte})
	rd := net.AddRedirector("rd", hydranet.HostConfig{ProcDelay: router486Proc, ProcPerByte: router486PerByte})
	s0 := net.AddHost("s0", hydranet.HostConfig{ProcDelay: pentiumProc, ProcPerByte: pentiumPerByte})
	s1 := net.AddHost("s1", hydranet.HostConfig{ProcDelay: pentiumProc, ProcPerByte: pentiumPerByte})
	all := []*hydranet.Host{rd.Host, client, s0, s1}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			net.Link(all[i], all[j], testbedLink)
		}
	}
	net.AutoRoute()
	svc := hydranet.ServiceID{Addr: ServiceAddr, Port: ServicePort}
	opts := hydranet.FTOptions{Detector: hydranet.DetectorParams{RetransmitThreshold: 2}}
	if _, err := net.DeployFT(svc, rd, []*hydranet.Host{s0, s1}, opts,
		func(c *hydranet.Conn) { ttcp.Sink(c) }); err != nil {
		panic(err)
	}
	if policyStrikes > 0 {
		rd.Daemon().SetCongestionPolicy(rmp.CongestionPolicy{
			Strikes: policyStrikes, Window: 2 * time.Minute,
		})
	}
	net.Settle()

	conn, err := client.DialEndpoint(hydranet.Endpoint{Addr: ServiceAddr, Port: ServicePort})
	if err != nil {
		panic(err)
	}
	var res CongestionResult
	done := false
	ttcp.Transmit(client.Scheduler(), conn, ttcp.Params{BufLen: 1024, TotalBytes: 512 * 1024},
		func(r ttcp.Result) {
			res.Completed = r.Err == nil
			res.Elapsed = r.Elapsed()
			res.ClientError = r.Err
			done = true
		})
	net.RunFor(200 * time.Millisecond)
	s1.FTManager().SetChainLoss(1.0) // the backup's channel dies

	deadline := net.Now() + 20*time.Minute
	for !done && net.Now() < deadline {
		net.RunFor(time.Second)
	}
	res.Evictions = rd.Daemon().Stats().CongestionEvictions
	return res
}
