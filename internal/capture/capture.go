package capture

import (
	"io"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/netsim"
)

// Capture streams fabric frames (and optionally pre-encap inner packets)
// into a pcap Writer, timestamped on the virtual clock.
//
// The fabric tap fires on every link in both directions, so a capture of
// an FT run shows the client's plain TCP segments on the access link and
// the redirector's IP-in-IP copies (protocol 4) on each replica link — the
// encapsulation is visible on the wire itself. The encap tap additionally
// records each inner packet at the instant the redirector tunnels it,
// which pins the multicast fan-out moment even when the outer copies are
// later reordered or lost.
type Capture struct {
	w     *Writer
	now   func() time.Duration
	inner uint64
}

// New writes a pcap header to w and returns a Capture stamping records with
// the given virtual clock (normally Scheduler.Now).
func New(w io.Writer, now func() time.Duration) (*Capture, error) {
	pw, err := NewWriter(w, 0)
	if err != nil {
		return nil, err
	}
	return &Capture{w: pw, now: now}, nil
}

// FrameTap returns the netsim tap. Frames are raw IPv4, matching the
// writer's LINKTYPE_RAW; bytes are consumed synchronously (the writer
// serializes before returning), honoring the pooled-frame ownership rule.
func (c *Capture) FrameTap() netsim.FrameTap {
	return func(from, to *netsim.Node, data []byte) {
		c.w.WritePacket(c.now(), data)
	}
}

// CaptureInner is a redirector.EncapTap: it records the pre-encapsulation
// inner packet as its own pcap record. The packet's wire bytes alias the
// fabric frame, so they are written out synchronously here; packets without
// wire bytes (locally built, never the redirector intercept path) are
// skipped rather than re-marshalled.
func (c *Capture) CaptureInner(inner *ipv4.Packet, host ipv4.Addr) {
	wire := inner.Wire()
	if len(wire) == 0 {
		return
	}
	c.inner++
	c.w.WritePacket(c.now(), wire)
}

// Packets returns the total records written (fabric frames + inner copies).
func (c *Capture) Packets() uint64 { return c.w.Packets() }

// InnerPackets returns how many pre-encap inner records were written.
func (c *Capture) InnerPackets() uint64 { return c.inner }

// Err returns the writer's sticky error, if any.
func (c *Capture) Err() error { return c.w.Err() }
