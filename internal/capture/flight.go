package capture

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"hydranet/internal/frame"
	"hydranet/internal/invariant"
	"hydranet/internal/netsim"
	"hydranet/internal/obs"
)

// FlightRecorder keeps the recent past in bounded per-host rings: the last
// N frames each host transmitted and the last M obs events each host
// emitted. It records continuously at near-zero cost and is dumped — to a
// pcap plus a JSON event log — only when something interesting happens: a
// FailoverProbe fires, or a test fails.
//
// Steady-state recording is allocation-free: frame slots are byte buffers
// sized with frame.ClassSize (the pool's own growth policy), so after one
// warm-up lap of the ring every copy lands in an existing slot; obs events
// are stored by value in a preallocated ring. Only first contact with a
// new host allocates its rings.
type FlightRecorder struct {
	now           func() time.Duration
	framesPerHost int
	eventsPerHost int
	hosts         map[string]*hostRing
	order         []string
	seq           uint64 // global frame arrival counter, for stable dump order
	dumps         int
}

type frameRec struct {
	at   time.Duration
	seq  uint64
	to   string
	data []byte // slot buffer; first n bytes valid
	n    int
}

type hostRing struct {
	frames []frameRec
	fpos   int
	fseen  uint64
	events []obs.Event
	epos   int
	eseen  uint64
}

// DefaultRingFrames and DefaultRingEvents bound each host's rings when the
// caller passes zero. 256 frames comfortably covers a detection window at
// Figure-4 rates while keeping a 10-host dump under ~4 MB.
const (
	DefaultRingFrames = 256
	DefaultRingEvents = 256
)

// NewFlightRecorder returns a recorder stamping frames with the given
// virtual clock. framesPerHost/eventsPerHost bound each host's rings
// (<= 0 selects the defaults).
func NewFlightRecorder(now func() time.Duration, framesPerHost, eventsPerHost int) *FlightRecorder {
	if framesPerHost <= 0 {
		framesPerHost = DefaultRingFrames
	}
	if eventsPerHost <= 0 {
		eventsPerHost = DefaultRingEvents
	}
	return &FlightRecorder{
		now:           now,
		framesPerHost: framesPerHost,
		eventsPerHost: eventsPerHost,
		hosts:         make(map[string]*hostRing),
	}
}

func (f *FlightRecorder) ring(host string) *hostRing {
	r := f.hosts[host]
	if r == nil {
		r = &hostRing{
			frames: make([]frameRec, f.framesPerHost),
			events: make([]obs.Event, f.eventsPerHost),
		}
		f.hosts[host] = r
		f.order = append(f.order, host)
	}
	return r
}

// RecordFrame copies data into the sending host's frame ring. The copy
// happens synchronously — data may alias a pooled fabric buffer.
func (f *FlightRecorder) RecordFrame(from, to string, data []byte) {
	r := f.ring(from)
	slot := &r.frames[r.fpos]
	if cap(slot.data) < len(data) {
		slot.data = make([]byte, frame.ClassSize(len(data)))
	}
	slot.n = copy(slot.data[:cap(slot.data)], data)
	slot.at = f.now()
	slot.to = to
	f.seq++
	slot.seq = f.seq
	r.fpos++
	if r.fpos == len(r.frames) {
		r.fpos = 0
	}
	r.fseen++
}

// RecordEvent stores e in its emitting host's event ring (events without a
// node land in the "(net)" ring).
func (f *FlightRecorder) RecordEvent(e obs.Event) {
	host := e.Node
	if host == "" {
		host = "(net)"
	}
	r := f.ring(host)
	r.events[r.epos] = e
	r.epos++
	if r.epos == len(r.events) {
		r.epos = 0
	}
	r.eseen++
}

// Tap returns a netsim.FrameTap feeding the recorder.
func (f *FlightRecorder) Tap() netsim.FrameTap {
	return func(from, to *netsim.Node, data []byte) {
		f.RecordFrame(from.Name(), to.Name(), data)
	}
}

// AttachBus subscribes the recorder's event ring to the given kinds (all
// kinds when none given).
func (f *FlightRecorder) AttachBus(b *obs.Bus, kinds ...obs.Kind) {
	b.Subscribe(f.RecordEvent, kinds...)
}

// Dumps returns how many times Dump ran (directly or via a hook).
func (f *FlightRecorder) Dumps() int { return f.dumps }

// heldFrames returns every live frame record sorted by (time, arrival seq).
func (f *FlightRecorder) heldFrames() []*frameRec {
	var out []*frameRec
	for _, host := range f.order {
		r := f.hosts[host]
		for i := range r.frames {
			if r.frames[i].seq != 0 {
				out = append(out, &r.frames[i])
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].at != out[j].at {
			return out[i].at < out[j].at
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// WritePcap writes the held frames, oldest first, as a pcap stream.
func (f *FlightRecorder) WritePcap(w io.Writer) error {
	pw, err := NewWriter(w, 0)
	if err != nil {
		return err
	}
	for _, fr := range f.heldFrames() {
		if err := pw.WritePacket(fr.at, fr.data[:fr.n]); err != nil {
			return err
		}
	}
	return nil
}

// flightHostJSON is one host's section of the JSON dump.
type flightHostJSON struct {
	Host        string      `json:"host"`
	FramesSeen  uint64      `json:"frames_seen"`
	FramesHeld  int         `json:"frames_held"`
	EventsSeen  uint64      `json:"events_seen"`
	EventsHeld  int         `json:"events_held"`
	OldestFrame string      `json:"oldest_frame,omitempty"`
	Events      []obs.Event `json:"events,omitempty"`
}

type flightJSON struct {
	DumpedAt time.Duration    `json:"dumped_at"`
	Hosts    []flightHostJSON `json:"hosts"`
}

// WriteJSON writes the per-host event rings (oldest first) plus ring
// occupancy counters as indented JSON.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	out := flightJSON{DumpedAt: f.now()}
	for _, host := range f.order {
		r := f.hosts[host]
		h := flightHostJSON{Host: host, FramesSeen: r.fseen, EventsSeen: r.eseen}
		var oldest time.Duration = -1
		for i := range r.frames {
			if r.frames[i].seq != 0 {
				h.FramesHeld++
				if oldest < 0 || r.frames[i].at < oldest {
					oldest = r.frames[i].at
				}
			}
		}
		if oldest >= 0 {
			h.OldestFrame = oldest.String()
		}
		// Ring order: epos points at the oldest slot once the ring wrapped.
		for i := 0; i < len(r.events); i++ {
			e := r.events[(r.epos+i)%len(r.events)]
			if e.Kind == 0 && e.Time == 0 && e.Node == "" && e.Detail == "" && e.Size == 0 {
				continue // never-written slot
			}
			h.Events = append(h.Events, e)
		}
		h.EventsHeld = len(h.Events)
		out.Hosts = append(out.Hosts, h)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Dump writes prefix.pcap and prefix.json.
func (f *FlightRecorder) Dump(prefix string) error {
	f.dumps++
	pf, err := os.Create(prefix + ".pcap")
	if err != nil {
		return err
	}
	if err := f.WritePcap(pf); err != nil {
		pf.Close()
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}
	jf, err := os.Create(prefix + ".json")
	if err != nil {
		return err
	}
	if err := f.WriteJSON(jf); err != nil {
		jf.Close()
		return err
	}
	return jf.Close()
}

// DumpOnFailover hooks the probe so the rings are dumped the instant a
// failover (crash → promotion) is observed.
func (f *FlightRecorder) DumpOnFailover(p *obs.FailoverProbe, prefix string) {
	p.OnFailover(func(obs.FailoverReport) {
		if err := f.Dump(prefix); err != nil {
			fmt.Fprintf(os.Stderr, "flight recorder dump failed: %v\n", err)
		}
	})
}

// DumpOnViolation hooks the invariant monitor so the rings are dumped the
// instant the first violation is recorded — the forensic bundle's pcap
// window, preserved while the offending frames are still in the rings.
// Only the first violation dumps: a sick run can violate on every segment,
// and the first instant is the one the surrounding window still covers.
func (f *FlightRecorder) DumpOnViolation(m *invariant.Monitor, prefix string) {
	fired := false
	m.OnViolation(func(invariant.Violation) {
		if fired {
			return
		}
		fired = true
		if err := f.Dump(prefix); err != nil {
			fmt.Fprintf(os.Stderr, "flight recorder dump failed: %v\n", err)
		}
	})
}

// TB is the sliver of *testing.T the recorder needs, kept structural so
// non-test binaries importing capture do not pull in package testing.
type TB interface {
	Failed() bool
	Cleanup(func())
	Logf(format string, args ...any)
}

// DumpOnFailure arranges (via t.Cleanup) for the rings to be dumped to
// prefix.pcap/prefix.json if — and only if — the test ends in failure.
func (f *FlightRecorder) DumpOnFailure(t TB, prefix string) {
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		if err := f.Dump(prefix); err != nil {
			t.Logf("flight recorder dump failed: %v", err)
			return
		}
		t.Logf("flight recorder dumped to %s.pcap / %s.json", prefix, prefix)
	})
}
