package capture

import (
	"io"
	"testing"
	"time"

	"hydranet/internal/netsim"
	"hydranet/internal/sim"
)

type sinkHandler struct {
	frames int
}

func (h *sinkHandler) HandleFrame(ifindex int, frame []byte) { h.frames++ }

// linkPair builds the same two-node topology as netsim's
// BenchmarkLinkRoundTrip, so alloc counts here are directly comparable to
// the fabric's published per-hop budget.
func linkPair() (*sim.Scheduler, *netsim.Network, *netsim.Node, *sinkHandler) {
	s := sim.NewScheduler(1)
	nw := netsim.New(s)
	a := nw.AddNode(netsim.NodeConfig{Name: "a"})
	c := nw.AddNode(netsim.NodeConfig{Name: "c"})
	nw.Connect(a, c, netsim.LinkConfig{Rate: 100_000_000, Delay: 10 * time.Microsecond})
	h := &sinkHandler{}
	c.SetHandler(h)
	return s, nw, a, h
}

// TestCaptureZeroCostWhenDisabled guards the PR's fast-path invariant: with
// no tap installed (or a tap installed and then removed, as a CLI does when
// tearing a capture down), a link round-trip performs exactly as many heap
// allocations as it did before the tap point existed. The disabled tap must
// cost one pointer test and nothing more.
func TestCaptureZeroCostWhenDisabled(t *testing.T) {
	roundTrips := func(install bool) float64 {
		s, nw, a, _ := linkPair()
		if install {
			nw.SetFrameTap(func(from, to *netsim.Node, data []byte) {})
			nw.SetFrameTap(nil)
		}
		frame := make([]byte, 64)
		a.Send(0, frame) // warm the pool
		s.Run()
		return testing.AllocsPerRun(200, func() {
			a.Send(0, frame)
			s.Run()
		})
	}
	base := roundTrips(false)
	disabled := roundTrips(true)
	if disabled != base {
		t.Fatalf("round-trip with removed tap allocates %v/op, baseline %v/op — disabled capture must add 0",
			disabled, base)
	}
}

// TestFrameTapSeesBothDirections: the tap fires per link transmission in
// either direction, with correctly attributed endpoints and live bytes.
func TestFrameTapSeesBothDirections(t *testing.T) {
	s := sim.NewScheduler(1)
	nw := netsim.New(s)
	a := nw.AddNode(netsim.NodeConfig{Name: "a"})
	b := nw.AddNode(netsim.NodeConfig{Name: "b"})
	nw.Connect(a, b, netsim.LinkConfig{Rate: 100_000_000, Delay: 10 * time.Microsecond})
	a.SetHandler(&sinkHandler{})
	b.SetHandler(&sinkHandler{})

	type seen struct {
		from, to string
		first    byte
		n        int
	}
	var taps []seen
	nw.SetFrameTap(func(from, to *netsim.Node, data []byte) {
		taps = append(taps, seen{from.Name(), to.Name(), data[0], len(data)})
	})

	a.Send(0, []byte{0xaa, 1, 2})
	s.Run()
	b.Send(0, []byte{0xbb, 3})
	s.Run()

	want := []seen{{"a", "b", 0xaa, 3}, {"b", "a", 0xbb, 2}}
	if len(taps) != len(want) {
		t.Fatalf("tap fired %d times, want %d", len(taps), len(want))
	}
	for i := range want {
		if taps[i] != want[i] {
			t.Errorf("tap %d = %+v, want %+v", i, taps[i], want[i])
		}
	}
}

// BenchmarkLinkRoundTripCapture measures the fabric round-trip with a pcap
// capture attached and writing to io.Discard — the enabled-overhead number
// quoted in DESIGN.md, next to netsim's BenchmarkLinkRoundTrip baseline.
func BenchmarkLinkRoundTripCapture(b *testing.B) {
	s, nw, a, h := linkPair()
	c, err := New(io.Discard, s.Now)
	if err != nil {
		b.Fatal(err)
	}
	nw.SetFrameTap(c.FrameTap())
	frame := make([]byte, 1500)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(0, frame)
		s.Run()
	}
	b.StopTimer()
	if h.frames != b.N {
		b.Fatalf("delivered %d of %d frames", h.frames, b.N)
	}
}

// BenchmarkLinkRoundTripFlightRecorder: same, with the flight recorder's
// ring copy on the path instead of the pcap serializer.
func BenchmarkLinkRoundTripFlightRecorder(b *testing.B) {
	s, nw, a, h := linkPair()
	f := NewFlightRecorder(s.Now, 0, 0)
	nw.SetFrameTap(f.Tap())
	frame := make([]byte, 1500)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(0, frame)
		s.Run()
	}
	b.StopTimer()
	if h.frames != b.N {
		b.Fatalf("delivered %d of %d frames", h.frames, b.N)
	}
}
