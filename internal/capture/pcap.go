// Package capture gives the simulation packet-grade observability: a pcap
// writer fed by netsim frame taps (so Wireshark/tcpdump can inspect the
// IP-in-IP tunneling and the ft-TCP handshake offline), a tiny in-repo pcap
// reader for golden checks, and a bounded per-host flight recorder that
// keeps the last frames and obs events in fixed rings.
//
// Frames in the simulator are raw IPv4 packets — there is no link-layer
// framing — so captures use LINKTYPE_RAW (101). Timestamps come from the
// virtual clock: a run that starts at t=0 produces packets timestamped from
// the epoch, which is exactly what makes two captures of the same seed
// byte-identical.
//
// Pooled-frame rule: every tap callback receives bytes that alias a
// frame.Buf owned by the fabric and valid only for the duration of the
// call. The pcap writer serializes the record synchronously inside the
// callback; the flight recorder copies into its own ring slot. Neither ever
// retains the fabric's slice.
package capture

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"
)

const (
	// MagicNanos is the pcap global-header magic for nanosecond-resolution
	// timestamps (0xa1b23c4d). The virtual clock is a time.Duration, so
	// nanosecond records are exact.
	MagicNanos = 0xa1b23c4d
	// MagicMicros is the classic microsecond-resolution magic (0xa1b2c3d4),
	// accepted by the reader for completeness.
	MagicMicros = 0xa1b2c3d4

	// LinkTypeRaw is LINKTYPE_RAW: packets begin directly with an IPv4 (or
	// IPv6) header. netsim frames are raw IPv4, so this is the only link
	// type the simulator emits.
	LinkTypeRaw = 101

	// DefaultSnapLen is the default per-record capture length. It exceeds
	// every MTU the fabric allows, so records are never truncated unless a
	// caller asks for a smaller snaplen.
	DefaultSnapLen = 65535

	fileHeaderLen   = 24
	recordHeaderLen = 16
)

// Writer emits a pcap stream: one 24-byte global header followed by
// 16-byte-header records. All integers are little-endian (the de-facto
// standard byte order; the magic tells readers which was used). Writing is
// allocation-free per record — the header is marshalled into a scratch
// array owned by the Writer — so a capture can sit on the fabric fast path.
type Writer struct {
	w         io.Writer
	snaplen   int
	packets   uint64
	truncated uint64
	err       error
	hdr       [recordHeaderLen]byte
}

// NewWriter writes the pcap global header (nanosecond magic, version 2.4,
// LINKTYPE_RAW) and returns a Writer. snaplen <= 0 selects DefaultSnapLen.
func NewWriter(w io.Writer, snaplen int) (*Writer, error) {
	if snaplen <= 0 {
		snaplen = DefaultSnapLen
	}
	var h [fileHeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:4], MagicNanos)
	binary.LittleEndian.PutUint16(h[4:6], 2)  // version major
	binary.LittleEndian.PutUint16(h[6:8], 4)  // version minor
	// h[8:16]: thiszone + sigfigs, both zero.
	binary.LittleEndian.PutUint32(h[16:20], uint32(snaplen))
	binary.LittleEndian.PutUint32(h[20:24], LinkTypeRaw)
	if _, err := w.Write(h[:]); err != nil {
		return nil, fmt.Errorf("capture: writing pcap header: %w", err)
	}
	return &Writer{w: w, snaplen: snaplen}, nil
}

// WritePacket appends one record timestamped at virtual time ts. data is
// fully consumed before return; the caller keeps ownership. After the first
// write error the Writer is dead and every call returns that error.
func (w *Writer) WritePacket(ts time.Duration, data []byte) error {
	if w.err != nil {
		return w.err
	}
	incl := len(data)
	if incl > w.snaplen {
		incl = w.snaplen
		w.truncated++
	}
	binary.LittleEndian.PutUint32(w.hdr[0:4], uint32(ts/time.Second))
	binary.LittleEndian.PutUint32(w.hdr[4:8], uint32(ts%time.Second))
	binary.LittleEndian.PutUint32(w.hdr[8:12], uint32(incl))
	binary.LittleEndian.PutUint32(w.hdr[12:16], uint32(len(data)))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		w.err = fmt.Errorf("capture: writing record header: %w", err)
		return w.err
	}
	if _, err := w.w.Write(data[:incl]); err != nil {
		w.err = fmt.Errorf("capture: writing record data: %w", err)
		return w.err
	}
	w.packets++
	return nil
}

// Packets returns how many records were written.
func (w *Writer) Packets() uint64 { return w.packets }

// Truncated returns how many records were cut to snaplen.
func (w *Writer) Truncated() uint64 { return w.truncated }

// Err returns the sticky write error, if any.
func (w *Writer) Err() error { return w.err }

// Record is one packet read back from a pcap stream.
type Record struct {
	// Ts is the record timestamp, reconstructed as a virtual-clock offset.
	Ts time.Duration
	// OrigLen is the original wire length; len(Data) may be smaller if the
	// capture snaplen truncated the record.
	OrigLen int
	// Data is the captured bytes (an independent copy).
	Data []byte
}

// File is a fully parsed pcap stream.
type File struct {
	SnapLen  int
	LinkType uint32
	Nanos    bool // nanosecond-resolution timestamps
	Records  []Record
}

// ReadAll parses a little-endian pcap stream (either timestamp magic).
// It is the in-repo golden checker: CI parses emitted captures with it
// instead of external tooling.
func ReadAll(r io.Reader) (*File, error) {
	var h [fileHeaderLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return nil, fmt.Errorf("capture: reading pcap header: %w", err)
	}
	f := &File{}
	switch magic := binary.LittleEndian.Uint32(h[0:4]); magic {
	case MagicNanos:
		f.Nanos = true
	case MagicMicros:
		f.Nanos = false
	default:
		return nil, fmt.Errorf("capture: bad pcap magic %#08x", magic)
	}
	if major, minor := binary.LittleEndian.Uint16(h[4:6]), binary.LittleEndian.Uint16(h[6:8]); major != 2 || minor != 4 {
		return nil, fmt.Errorf("capture: unsupported pcap version %d.%d", major, minor)
	}
	f.SnapLen = int(binary.LittleEndian.Uint32(h[16:20]))
	f.LinkType = binary.LittleEndian.Uint32(h[20:24])
	for {
		var rh [recordHeaderLen]byte
		if _, err := io.ReadFull(r, rh[:]); err == io.EOF {
			return f, nil
		} else if err != nil {
			return nil, fmt.Errorf("capture: reading record %d header: %w", len(f.Records), err)
		}
		sec := binary.LittleEndian.Uint32(rh[0:4])
		frac := binary.LittleEndian.Uint32(rh[4:8])
		incl := binary.LittleEndian.Uint32(rh[8:12])
		orig := binary.LittleEndian.Uint32(rh[12:16])
		if int(incl) > f.SnapLen {
			return nil, fmt.Errorf("capture: record %d incl_len %d exceeds snaplen %d", len(f.Records), incl, f.SnapLen)
		}
		data := make([]byte, incl)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("capture: reading record %d data: %w", len(f.Records), err)
		}
		ts := time.Duration(sec) * time.Second
		if f.Nanos {
			ts += time.Duration(frac)
		} else {
			ts += time.Duration(frac) * time.Microsecond
		}
		f.Records = append(f.Records, Record{Ts: ts, OrigLen: int(orig), Data: data})
	}
}

// ReadFile parses a pcap file from disk.
func ReadFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}
