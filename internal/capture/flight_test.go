package capture

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hydranet/internal/frame"
	"hydranet/internal/obs"
)

// fakeClock returns a settable virtual clock.
func fakeClock() (*time.Duration, func() time.Duration) {
	now := new(time.Duration)
	return now, func() time.Duration { return *now }
}

func TestFlightRecorderRingWraps(t *testing.T) {
	now, clock := fakeClock()
	f := NewFlightRecorder(clock, 4, 4)

	// 10 frames through a 4-slot ring: only the last 4 survive, oldest first.
	for i := 0; i < 10; i++ {
		*now = time.Duration(i+1) * time.Millisecond
		f.RecordFrame("a", "b", []byte{byte(i), 0x45})
	}
	var buf bytes.Buffer
	if err := f.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	pf, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Records) != 4 {
		t.Fatalf("held %d frames, want 4", len(pf.Records))
	}
	for i, r := range pf.Records {
		wantIdx := 6 + i // frames 6..9 survive
		if r.Data[0] != byte(wantIdx) || r.Ts != time.Duration(wantIdx+1)*time.Millisecond {
			t.Errorf("record %d = frame %d at %v, want frame %d at %v",
				i, r.Data[0], r.Ts, wantIdx, time.Duration(wantIdx+1)*time.Millisecond)
		}
	}

	// Same story for the event ring.
	for i := 0; i < 10; i++ {
		*now = time.Duration(i+1) * time.Millisecond
		f.RecordEvent(obs.Event{Kind: obs.KindRetransmit, Time: *now, Node: "a", Seq: uint64(i)})
	}
	var jbuf bytes.Buffer
	if err := f.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Hosts []struct {
			Host       string `json:"host"`
			FramesSeen uint64 `json:"frames_seen"`
			FramesHeld int    `json:"frames_held"`
			EventsSeen uint64 `json:"events_seen"`
			EventsHeld int    `json:"events_held"`
			Events     []struct {
				Seq uint64 `json:"seq"`
			} `json:"events"`
		} `json:"hosts"`
	}
	if err := json.Unmarshal(jbuf.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Hosts) != 1 || dump.Hosts[0].Host != "a" {
		t.Fatalf("hosts = %+v", dump.Hosts)
	}
	h := dump.Hosts[0]
	if h.FramesSeen != 10 || h.FramesHeld != 4 || h.EventsSeen != 10 || h.EventsHeld != 4 {
		t.Fatalf("ring occupancy = %+v", h)
	}
	for i, e := range h.Events {
		if want := uint64(6 + i); e.Seq != want {
			t.Errorf("event %d seq = %d, want %d (oldest first)", i, e.Seq, want)
		}
	}
}

// TestFlightRecorderSteadyStateAllocFree: after one warm-up lap of the ring,
// recording a same-class frame reuses its slot buffer.
func TestFlightRecorderSteadyStateAllocFree(t *testing.T) {
	_, clock := fakeClock()
	f := NewFlightRecorder(clock, 8, 8)
	data := make([]byte, 200)
	for i := 0; i < 8; i++ {
		f.RecordFrame("a", "b", data)
	}
	allocs := testing.AllocsPerRun(100, func() {
		f.RecordFrame("a", "b", data)
		f.RecordEvent(obs.Event{Kind: obs.KindRetransmit, Node: "a"})
	})
	if allocs != 0 {
		t.Fatalf("steady-state record allocates %v per run, want 0", allocs)
	}
}

func TestFlightRecorderDumpFiles(t *testing.T) {
	now, clock := fakeClock()
	f := NewFlightRecorder(clock, 0, 0) // defaults
	*now = time.Millisecond
	f.RecordFrame("rd", "s0", []byte{0x45, 0x00})
	f.RecordEvent(obs.Event{Kind: obs.KindPromotion, Time: *now, Node: "s1", Service: "10.0.0.9:80"})

	prefix := filepath.Join(t.TempDir(), "flight")
	if err := f.Dump(prefix); err != nil {
		t.Fatal(err)
	}
	if f.Dumps() != 1 {
		t.Fatalf("Dumps = %d, want 1", f.Dumps())
	}
	pf, err := ReadFile(prefix + ".pcap")
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Records) != 1 || pf.Records[0].Ts != time.Millisecond {
		t.Fatalf("dumped pcap records = %+v", pf.Records)
	}
	var dump map[string]any
	raw, err := os.ReadFile(prefix + ".json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("dumped JSON invalid: %v", err)
	}
	if _, ok := dump["hosts"]; !ok {
		t.Fatalf("dump JSON missing hosts section: %v", dump)
	}
}

// TestFlightRecorderAttachBus: bus events land in the emitting host's ring.
func TestFlightRecorderAttachBus(t *testing.T) {
	now, clock := fakeClock()
	f := NewFlightRecorder(clock, 4, 4)
	b := obs.NewBus(clock)
	f.AttachBus(b, obs.KindSuspicion)

	*now = 3 * time.Millisecond
	b.Publish(obs.Event{Kind: obs.KindSuspicion, Node: "s1"})
	b.Publish(obs.Event{Kind: obs.KindPromotion, Node: "s1"}) // not subscribed

	var jbuf bytes.Buffer
	if err := f.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Hosts []struct {
			Host       string `json:"host"`
			EventsSeen uint64 `json:"events_seen"`
		} `json:"hosts"`
	}
	if err := json.Unmarshal(jbuf.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Hosts) != 1 || dump.Hosts[0].Host != "s1" || dump.Hosts[0].EventsSeen != 1 {
		t.Fatalf("bus-fed rings = %+v", dump.Hosts)
	}
}

// TestRecordFrameCopiesBeforeFrameRecycle locks in that the flight
// recorder copies frame bytes synchronously during RecordFrame: the tap
// hands it a slice aliasing a pooled frame that the fabric recycles (and,
// in poison mode, scribbles) immediately afterwards.
func TestRecordFrameCopiesBeforeFrameRecycle(t *testing.T) {
	now, clock := fakeClock()
	f := NewFlightRecorder(clock, 4, 4)
	pool := frame.NewPool()
	pool.SetPoison(true)

	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	*now = time.Millisecond
	fb := pool.Get(len(want))
	copy(fb.Bytes(), want)
	f.RecordFrame("a", "b", fb.Bytes())
	fb.Release() // the fabric recycles the frame right after the tap runs

	var buf bytes.Buffer
	if err := f.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	pf, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Records) != 1 {
		t.Fatalf("held %d frames, want 1", len(pf.Records))
	}
	if !bytes.Equal(pf.Records[0].Data, want) {
		t.Fatalf("recorded %x, want %x: flight recorder retained a slice of a recycled frame", pf.Records[0].Data, want)
	}
}
