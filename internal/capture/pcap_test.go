package capture

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestPcapGoldenHeader pins the exact on-disk bytes of the global header and
// one record header, so a regression in the writer is caught without any
// external tooling: this IS the format Wireshark parses.
func TestPcapGoldenHeader(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	golden := []byte{
		0x4d, 0x3c, 0xb2, 0xa1, // magic 0xa1b23c4d, little-endian (nanosecond)
		0x02, 0x00, 0x04, 0x00, // version 2.4
		0x00, 0x00, 0x00, 0x00, // thiszone
		0x00, 0x00, 0x00, 0x00, // sigfigs
		0xff, 0xff, 0x00, 0x00, // snaplen 65535
		0x65, 0x00, 0x00, 0x00, // linktype 101 = LINKTYPE_RAW
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("global header:\n got %x\nwant %x", buf.Bytes(), golden)
	}

	payload := []byte{0x45, 0x00, 0x00, 0x04}
	if err := w.WritePacket(1500*time.Millisecond, payload); err != nil {
		t.Fatal(err)
	}
	rec := buf.Bytes()[fileHeaderLen:]
	goldenRec := []byte{
		0x01, 0x00, 0x00, 0x00, // ts_sec = 1
		0x00, 0x65, 0xcd, 0x1d, // ts_nsec = 500_000_000
		0x04, 0x00, 0x00, 0x00, // incl_len = 4
		0x04, 0x00, 0x00, 0x00, // orig_len = 4
	}
	if !bytes.Equal(rec[:recordHeaderLen], goldenRec) {
		t.Fatalf("record header:\n got %x\nwant %x", rec[:recordHeaderLen], goldenRec)
	}
	if !bytes.Equal(rec[recordHeaderLen:], payload) {
		t.Fatalf("record data = %x, want %x", rec[recordHeaderLen:], payload)
	}
}

func TestPcapWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	type pkt struct {
		ts   time.Duration
		data []byte
	}
	pkts := []pkt{
		{0, []byte{0x45}},
		{123456789 * time.Nanosecond, bytes.Repeat([]byte{0xab}, 1500)},
		{2*time.Second + 1, []byte{1, 2, 3}},
	}
	for _, p := range pkts {
		if err := w.WritePacket(p.ts, p.data); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets() != uint64(len(pkts)) || w.Truncated() != 0 || w.Err() != nil {
		t.Fatalf("writer counters: packets=%d truncated=%d err=%v",
			w.Packets(), w.Truncated(), w.Err())
	}

	f, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Nanos || f.LinkType != LinkTypeRaw || f.SnapLen != DefaultSnapLen {
		t.Fatalf("file header parsed as %+v", f)
	}
	if len(f.Records) != len(pkts) {
		t.Fatalf("read %d records, want %d", len(f.Records), len(pkts))
	}
	for i, r := range f.Records {
		if r.Ts != pkts[i].ts {
			t.Errorf("record %d ts = %v, want %v", i, r.Ts, pkts[i].ts)
		}
		if r.OrigLen != len(pkts[i].data) || !bytes.Equal(r.Data, pkts[i].data) {
			t.Errorf("record %d data mismatch (orig %d, got %d bytes)",
				i, r.OrigLen, len(r.Data))
		}
	}
}

func TestPcapSnapLenTruncates(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(0, make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	if w.Truncated() != 1 {
		t.Fatalf("Truncated = %d, want 1", w.Truncated())
	}
	f, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Records) != 1 || len(f.Records[0].Data) != 100 || f.Records[0].OrigLen != 200 {
		t.Fatalf("truncated record parsed as %+v", f.Records)
	}
}

func TestPcapReaderRejectsGarbage(t *testing.T) {
	bad := make([]byte, fileHeaderLen)
	if _, err := ReadAll(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}

	// Right magic, wrong version.
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 0); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()
	hdr[4] = 3 // version major
	if _, err := ReadAll(bytes.NewReader(hdr)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: err = %v", err)
	}

	// A record claiming more bytes than the snaplen allows.
	buf.Reset()
	w, _ := NewWriter(&buf, 64)
	if err := w.WritePacket(0, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[fileHeaderLen+8] = 0xff // incl_len low byte -> 255 > snaplen 64
	if _, err := ReadAll(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "snaplen") {
		t.Fatalf("oversized incl_len: err = %v", err)
	}
}

// errAfter fails every write past the first n.
type errAfter struct {
	n int
}

func (e *errAfter) Write(p []byte) (int, error) {
	if e.n <= 0 {
		return 0, bytes.ErrTooLarge
	}
	e.n--
	return len(p), nil
}

func TestPcapWriterStickyError(t *testing.T) {
	w, err := NewWriter(&errAfter{n: 2}, 0) // header + one record header succeed
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(0, []byte{1}); err == nil {
		t.Fatal("write into failing sink succeeded")
	}
	first := w.Err()
	if err := w.WritePacket(0, []byte{2}); err != first {
		t.Fatalf("second write error %v, want sticky %v", err, first)
	}
	if w.Packets() != 0 {
		t.Fatalf("failed writes counted: %d", w.Packets())
	}
}
