package scope

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hydranet/internal/obs"
	"hydranet/internal/series"
)

// buildSet makes a small set with one counter and one gauge.
func buildSet(counterVals, gaugeVals []float64) *series.Set {
	set := series.NewSet(64)
	c := set.Counter("host.s0.retransmits", "segments")
	g := set.Gauge("link.a-b.queue_ab", "bytes")
	for i, v := range counterVals {
		c.Observe(time.Duration(i+1)*100*time.Millisecond, v)
	}
	for i, v := range gaugeVals {
		g.Observe(time.Duration(i+1)*100*time.Millisecond, v)
	}
	return set
}

func exportJSONL(t *testing.T, meta series.Meta, set *series.Set) *Run {
	t.Helper()
	var buf bytes.Buffer
	if err := series.WriteJSONL(&buf, meta, set); err != nil {
		t.Fatal(err)
	}
	run, err := LoadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestLoadJSONLRoundTrip(t *testing.T) {
	fo := &obs.FailoverReport{
		CrashAt: 400 * time.Millisecond, SuspicionAt: 2 * time.Second,
		PromotionAt: 2100 * time.Millisecond, Detection: 1600 * time.Millisecond,
	}
	meta := series.Meta{Every: 100 * time.Millisecond, Ticks: 3, Seed: 9, Failover: fo}
	run := exportJSONL(t, meta, buildSet([]float64{0, 1, 2}, []float64{10, 20, 30}))
	if run.Meta.Seed != 9 || run.Meta.Every != 100*time.Millisecond {
		t.Fatalf("meta=%+v", run.Meta)
	}
	if run.Meta.Failover == nil || run.Meta.Failover.Detection != 1600*time.Millisecond {
		t.Fatalf("failover=%+v", run.Meta.Failover)
	}
	c := run.Get("host.s0.retransmits")
	if c == nil || c.Kind != "counter" || c.Total != 3 || len(c.Points) != 3 {
		t.Fatalf("counter=%+v", c)
	}
	g := run.Get("link.a-b.queue_ab")
	if g == nil || g.Mean != 20 || g.Max != 30 {
		t.Fatalf("gauge=%+v", g)
	}
}

func TestLoadCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	meta := series.Meta{Every: 100 * time.Millisecond, Ticks: 2, Seed: 3}
	if err := series.WriteCSV(&buf, meta, buildSet([]float64{1, 4}, nil)); err != nil {
		t.Fatal(err)
	}
	run, err := LoadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if run.Meta.Every != 100*time.Millisecond || run.Meta.Seed != 3 {
		t.Fatalf("meta=%+v", run.Meta)
	}
	c := run.Get("host.s0.retransmits")
	if c == nil || c.Total != 5 || c.Count != 2 || c.Points[1].V != 4 {
		t.Fatalf("counter=%+v", c)
	}
}

func TestDiffRunsCleanOnIdentical(t *testing.T) {
	meta := series.Meta{Every: 100 * time.Millisecond, Ticks: 3}
	a := exportJSONL(t, meta, buildSet([]float64{0, 1, 2}, []float64{10, 20, 30}))
	b := exportJSONL(t, meta, buildSet([]float64{0, 1, 2}, []float64{10, 20, 30}))
	if f := DiffRuns(a, b, 0.001); len(f) != 0 {
		t.Fatalf("identical runs produced findings: %v", f)
	}
}

func TestDiffRunsFindsRegressions(t *testing.T) {
	meta := series.Meta{Every: 100 * time.Millisecond, Ticks: 3}
	a := exportJSONL(t, meta, buildSet([]float64{0, 1, 2}, []float64{10, 20, 30}))
	b := exportJSONL(t, meta, buildSet([]float64{0, 1, 8}, []float64{10, 20, 30}))
	f := DiffRuns(a, b, 0.05)
	if len(f) != 1 || f[0].Series != "host.s0.retransmits" || f[0].Field != "total" {
		t.Fatalf("findings=%v", f)
	}
	// A series missing from one side is always a finding.
	extra := series.NewSet(8)
	extra.Counter("host.s9.retransmits", "segments").Observe(time.Second, 1)
	c := exportJSONL(t, meta, extra)
	found := false
	for _, fd := range DiffRuns(a, c, 0.05) {
		if fd.Field == "presence" {
			found = true
		}
	}
	if !found {
		t.Fatal("missing-series regression not reported")
	}
	// Failover phase drift is a finding.
	metaF := meta
	metaF.Failover = &obs.FailoverReport{CrashAt: time.Second, Detection: 2 * time.Second}
	metaG := meta
	metaG.Failover = &obs.FailoverReport{CrashAt: time.Second, Detection: 4 * time.Second}
	fa := exportJSONL(t, metaF, buildSet([]float64{1}, nil))
	fb := exportJSONL(t, metaG, buildSet([]float64{1}, nil))
	f = DiffRuns(fa, fb, 0.05)
	if len(f) != 1 || f[0].Series != "failover" || f[0].Field != "detection" {
		t.Fatalf("failover findings=%v", f)
	}
}

func TestDiffBench(t *testing.T) {
	a := &BenchFile{TotalBytes: 1, Seed: 1, Parallel: 1, Entries: []BenchEntry{
		{Case: "clean kernel", BufLen: 1024, ThroughputKBps: 400, Events: 1000, Frames: 500, WallMS: 10},
	}}
	// Same simulation facts, wildly different machine facts: clean.
	b := &BenchFile{TotalBytes: 1, Seed: 1, Parallel: 1, Entries: []BenchEntry{
		{Case: "clean kernel", BufLen: 1024, ThroughputKBps: 400, Events: 1000, Frames: 500, WallMS: 9999},
	}}
	if f := DiffBench(a, b, 0.01); len(f) != 0 {
		t.Fatalf("wall-clock drift flagged: %v", f)
	}
	b.Entries[0].Events = 2000
	f := DiffBench(a, b, 0.01)
	if len(f) != 1 || f[0].Field != "events" {
		t.Fatalf("findings=%v", f)
	}
	// Parameter mismatch refuses the comparison.
	b.Seed = 2
	f = DiffBench(a, b, 0.01)
	if len(f) != 1 || f[0].Field != "params" {
		t.Fatalf("findings=%v", f)
	}
}

func TestWriteReport(t *testing.T) {
	meta := series.Meta{
		Every: 100 * time.Millisecond, Ticks: 3, Seed: 1,
		Failover: &obs.FailoverReport{
			CrashAt: 150 * time.Millisecond, SuspicionAt: 250 * time.Millisecond,
			PromotionAt: 260 * time.Millisecond,
			Detection:   100 * time.Millisecond, Reconfiguration: 10 * time.Millisecond,
		},
	}
	set := buildSet([]float64{0, 5, 1}, []float64{10, 20, 30})
	set.Gauge("health.s1", "verdict").Observe(200*time.Millisecond, 1)
	run := exportJSONL(t, meta, set)
	var buf bytes.Buffer
	if err := WriteReport(&buf, run, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"failover timeline", "detection", "pre-crash", "recovery",
		"host.s0.retransmits", "replica health", "degraded",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
