package scope

import (
	"encoding/json"
	"fmt"
	"os"

	"hydranet/internal/prof"
)

// hydraprof profile diffing. Profiles mix two kinds of fields (see
// internal/prof): deterministic facts of the scenario and partition — event
// counts, critical-path depth, hand-off counts, window counts, virtual
// times — which gate at the exact tolerance tol, and wall-clock-derived
// fractions (per-domain utilization and stall shares), which gate only at
// the looser absolute tolerance stallTol, or not at all when stallTol is 0.

// LoadProfFile loads a hydraprof profile.
func LoadProfFile(path string) (*prof.Profile, error) {
	return prof.LoadFile(path)
}

// IsProfFile sniffs whether path holds a hydraprof profile (an object with
// a prof_version field) rather than a bench file or series export.
func IsProfFile(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	var probe struct {
		ProfVersion int `json:"prof_version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.ProfVersion > 0
}

// domainFractions returns each domain's utilization and stall share of its
// window span (merge+exec+flush+stall). Wall-derived; compare with an
// absolute tolerance only.
func domainFractions(d *prof.DomainTotal) (util, stall float64) {
	span := d.MergeNs + d.ExecNs + d.FlushNs + d.StallNs
	if span <= 0 {
		return 0, 0
	}
	return float64(d.ExecNs) / float64(span), float64(d.StallNs) / float64(span)
}

// DiffProf compares two profiles. Deterministic fields gate at relative
// tolerance tol; wall-derived utilization/stall fractions gate at absolute
// tolerance stallTol (0 disables the wall-derived checks entirely).
// Mismatched run parameters (domains, workers, seed) are findings: the
// comparison would be meaningless.
func DiffProf(a, b *prof.Profile, tol, stallTol float64) []Finding {
	var out []Finding
	if a.Domains != b.Domains || a.Workers != b.Workers || a.Seed != b.Seed {
		out = append(out, Finding{Series: "profile", Field: "params",
			Note: fmt.Sprintf("run parameters differ: domains=%d/%d workers=%d/%d seed=%d/%d",
				a.Domains, b.Domains, a.Workers, b.Workers, a.Seed, b.Seed)})
		return out
	}
	check := func(name, field string, av, bv float64) {
		if rel := relDiff(av, bv); rel > tol {
			out = append(out, Finding{Series: name, Field: field, A: av, B: bv, Rel: rel})
		}
	}
	check("profile", "events", float64(a.Events), float64(b.Events))
	check("profile", "virtual_ns", float64(a.VirtualNs), float64(b.VirtualNs))
	check("profile", "handoffs", float64(a.Handoffs), float64(b.Handoffs))
	check("profile", "merge_ties", float64(a.MergeTies), float64(b.MergeTies))
	check("profile", "cp_depth", float64(a.CriticalPath.Depth), float64(b.CriticalPath.Depth))
	check("profile", "windows_run", float64(a.WindowsRun), float64(b.WindowsRun))
	check("profile", "barriers", float64(a.Barriers), float64(b.Barriers))

	if len(a.DomainTotals) != len(b.DomainTotals) {
		out = append(out, Finding{Series: "profile", Field: "domain_totals",
			Note: fmt.Sprintf("%d domain rows in run A, %d in run B",
				len(a.DomainTotals), len(b.DomainTotals))})
	} else {
		for i := range a.DomainTotals {
			da, db := &a.DomainTotals[i], &b.DomainTotals[i]
			label := fmt.Sprintf("domain %d", da.Domain)
			check(label, "events", float64(da.Events), float64(db.Events))
			if stallTol > 0 {
				ua, sa := domainFractions(da)
				ub, sb := domainFractions(db)
				abs := func(field string, av, bv float64) {
					d := av - bv
					if d < 0 {
						d = -d
					}
					if d > stallTol {
						out = append(out, Finding{Series: label, Field: field, A: av, B: bv, Rel: relDiff(av, bv)})
					}
				}
				abs("util", ua, ub)
				abs("stall", sa, sb)
			}
		}
	}

	switch {
	case len(a.HandoffMatrix) != len(b.HandoffMatrix):
		out = append(out, Finding{Series: "profile", Field: "handoff_matrix",
			Note: fmt.Sprintf("matrix sizes differ: %d vs %d",
				len(a.HandoffMatrix), len(b.HandoffMatrix))})
	case len(a.HandoffMatrix) == a.Domains*a.Domains:
		for i := range a.HandoffMatrix {
			if av, bv := a.HandoffMatrix[i], b.HandoffMatrix[i]; relDiff(float64(av), float64(bv)) > tol {
				out = append(out, Finding{
					Series: fmt.Sprintf("handoff %d->%d", i/a.Domains, i%a.Domains),
					Field:  "frames", A: float64(av), B: float64(bv),
					Rel: relDiff(float64(av), float64(bv)),
				})
			}
		}
	}
	return out
}
