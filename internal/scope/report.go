package scope

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"hydranet/internal/metrics"
	"hydranet/internal/series"
)

// SpanReport mirrors the span collector's JSON output closely enough to
// summarize it (per-timeline span counts plus the lag histograms).
type SpanReport struct {
	Timelines []struct {
		Service              string            `json:"service"`
		Client               string            `json:"client"`
		RetransmitMulticasts uint64            `json:"retransmit_multicasts,omitempty"`
		Spans                []json.RawMessage `json:"spans"`
	} `json:"timelines"`
	AckChainLagMS  metrics.HistogramSnapshot `json:"ack_chain_lag_ms"`
	DepositStallMS metrics.HistogramSnapshot `json:"deposit_stall_ms"`
	DroppedSpans   uint64                    `json:"dropped_spans,omitempty"`
}

// LoadSpanFile loads a span timeline JSON written by the span collector.
func LoadSpanFile(path string) (*SpanReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sr SpanReport
	if err := json.Unmarshal(data, &sr); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &sr, nil
}

// phase is one window of the Table-2 decomposition; to == 0 means "until
// the end of the run".
type phase struct {
	name     string
	from, to time.Duration
}

// windowSum sums a counter series' retained points inside [from, to).
// to == 0 means no upper bound.
func windowSum(d *series.Data, from, to time.Duration) float64 {
	var sum float64
	for _, p := range d.Points {
		if p.T < from {
			continue
		}
		if to != 0 && p.T >= to {
			continue
		}
		sum += p.V
	}
	return sum
}

// WriteReport renders a run: header, failover timeline aligned to the
// Table-2 phases with per-phase series activity, then a per-series summary
// sorted by name. spans may be nil.
func WriteReport(w io.Writer, run *Run, spans *SpanReport) error {
	var end time.Duration
	for i := range run.Series {
		if pts := run.Series[i].Points; len(pts) > 0 {
			if t := pts[len(pts)-1].T; t > end {
				end = t
			}
		}
	}
	fmt.Fprintf(w, "hydranet series run")
	if run.Path != "" {
		fmt.Fprintf(w, " %s", run.Path)
	}
	fmt.Fprintf(w, ": %d series, %d ticks every %v (through %v), seed %d\n",
		len(run.Series), run.Meta.Ticks, run.Meta.Every, end, run.Meta.Seed)

	if f := run.Meta.Failover; f != nil {
		fmt.Fprintf(w, "\nfailover timeline (Table-2 phases):\n")
		fmt.Fprintf(w, "  crash            %v\n", f.CrashAt)
		fmt.Fprintf(w, "  detection        %v   (crash → suspicion)\n", f.Detection)
		fmt.Fprintf(w, "  reconfiguration  %v   (suspicion → promotion)\n", f.Reconfiguration)
		fmt.Fprintf(w, "  client stall     %v   (crash → first byte, complete: %v)\n",
			f.ClientStall, f.Complete)

		ph := []phase{{name: "pre-crash", from: 0, to: f.CrashAt}}
		if f.SuspicionAt > 0 {
			ph = append(ph, phase{name: "detection", from: f.CrashAt, to: f.SuspicionAt})
			if f.PromotionAt > 0 {
				ph = append(ph, phase{name: "reconfig", from: f.SuspicionAt, to: f.PromotionAt})
				ph = append(ph, phase{name: "recovery", from: f.PromotionAt, to: 0})
			}
		} else {
			ph = append(ph, phase{name: "post-crash", from: f.CrashAt, to: 0})
		}

		// Per-phase activity over the net: retransmissions, RTO fires and
		// deposited bytes, summed across every host's counter series.
		sumSuffix := func(suffix string, from, to time.Duration) float64 {
			var sum float64
			for i := range run.Series {
				d := &run.Series[i]
				if d.Kind == "counter" && strings.HasSuffix(d.Name, suffix) {
					sum += windowSum(d, from, to)
				}
			}
			return sum
		}
		fmt.Fprintf(w, "\n  %-10s %-22s %12s %8s %14s\n",
			"phase", "window", "retransmits", "rto", "deposited[B]")
		for _, p := range ph {
			window := fmt.Sprintf("%v – %v", p.from, p.to)
			if p.to == 0 {
				window = fmt.Sprintf("%v – end", p.from)
			}
			fmt.Fprintf(w, "  %-10s %-22s %12.0f %8.0f %14.0f\n",
				p.name, window,
				sumSuffix(".retransmits", p.from, p.to)+sumSuffix(".peer_retransmits", p.from, p.to),
				sumSuffix(".rto_events", p.from, p.to),
				sumSuffix(".deposited_bytes", p.from, p.to))
		}
	}

	// Health verdicts, if the run scored any.
	var healthNames []string
	for i := range run.Series {
		if strings.HasPrefix(run.Series[i].Name, "health.") {
			healthNames = append(healthNames, run.Series[i].Name)
		}
	}
	if len(healthNames) > 0 {
		sort.Strings(healthNames)
		fmt.Fprintf(w, "\nreplica health (0 healthy / 1 degraded / 2 dead):\n")
		for _, name := range healthNames {
			d := run.Get(name)
			fmt.Fprintf(w, "  %-24s last=%v peak=%v\n",
				strings.TrimPrefix(name, "health."),
				series.Verdict(d.Last), series.Verdict(d.Max))
		}
	}

	fmt.Fprintf(w, "\nseries (sorted; counters report totals, gauges mean/max):\n")
	names := run.Names()
	sort.Strings(names)
	fmt.Fprintf(w, "  %-52s %-7s %7s %14s %14s\n", "name", "kind", "n", "total|mean", "max")
	for _, name := range names {
		d := run.Get(name)
		agg := d.Total
		if d.Kind == "gauge" {
			agg = d.Mean
		}
		fmt.Fprintf(w, "  %-52s %-7s %7d %14.6g %14.6g\n", d.Name, d.Kind, d.Count, agg, d.Max)
	}

	if spans != nil {
		fmt.Fprintf(w, "\nft-TCP spans:\n")
		for _, tl := range spans.Timelines {
			fmt.Fprintf(w, "  %s ← %s: %d spans, %d retransmit multicasts\n",
				tl.Service, tl.Client, len(tl.Spans), tl.RetransmitMulticasts)
		}
		if spans.AckChainLagMS.Count > 0 {
			fmt.Fprintf(w, "  ack-chain lag (ms):  %s\n", spans.AckChainLagMS)
		}
		if spans.DepositStallMS.Count > 0 {
			fmt.Fprintf(w, "  deposit stall (ms):  %s\n", spans.DepositStallMS)
		}
		if spans.DroppedSpans > 0 {
			fmt.Fprintf(w, "  dropped spans: %d\n", spans.DroppedSpans)
		}
	}
	return nil
}
