package scope

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"hydranet/internal/invariant"
	"hydranet/internal/metrics"
)

// LoadAuditFile loads an invariant-monitor audit report (written by the
// -audit flag on hydranet-sim, failover and the testbed).
func LoadAuditFile(path string) (*invariant.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r invariant.Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Rules) == 0 {
		return nil, fmt.Errorf("%s: no rule census — not an audit report", path)
	}
	return &r, nil
}

// IsAuditFile sniffs whether path holds an invariant audit report (an
// object with a per-rule census) rather than a bench or profile file.
func IsAuditFile(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	// Decode just the discriminating shape: an audit report always carries
	// its rule census; bench files carry "entries" and profiles "domains".
	var probe struct {
		Rules []struct {
			Rule string `json:"rule"`
		} `json:"rules"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return len(probe.Rules) > 0 && probe.Rules[0].Rule != ""
}

// WriteAuditReport renders an audit report for the terminal: the verdict,
// the per-rule evaluation census, the observed event mix, and — when the
// run was dirty — every retained forensic violation record.
func WriteAuditReport(w io.Writer, r *invariant.Report) error {
	if r.Scenario != "" {
		fmt.Fprintf(w, "scenario: %s\n", r.Scenario)
	}
	verdict := "CLEAN"
	if !r.Clean {
		verdict = fmt.Sprintf("%d VIOLATION(S)", r.TotalViolations())
	}
	fmt.Fprintf(w, "verdict: %s — %d checks over %d events, %d frames (%d bytes)\n",
		verdict, r.Checks, r.Events, r.Frames, r.FrameBytes)
	if r.QuiesceChecked {
		fmt.Fprintf(w, "quiesce: checked, %d outstanding fabric frame(s)\n", r.OutstandingFrames)
	} else {
		fmt.Fprintln(w, "quiesce: not reached — frame conservation undecided")
	}

	fmt.Fprintln(w)
	rules := metrics.NewTable("rule", "checks", "violations")
	for _, rr := range r.Rules {
		rules.AddRow(rr.Rule, fmt.Sprintf("%d", rr.Checks), fmt.Sprintf("%d", rr.Violations))
	}
	if _, err := io.WriteString(w, rules.String()); err != nil {
		return err
	}

	if len(r.EventCounts) > 0 {
		fmt.Fprintln(w)
		kinds := metrics.NewTable("event kind", "count")
		for _, kc := range r.EventCounts {
			kinds.AddRow(kc.Kind, fmt.Sprintf("%d", kc.Count))
		}
		if _, err := io.WriteString(w, kinds.String()); err != nil {
			return err
		}
	}

	if len(r.Violations) > 0 {
		fmt.Fprintf(w, "\nforensic records (%d retained):\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(w, "  %s\n", v)
		}
		if retained, total := uint64(len(r.Violations)), r.TotalViolations(); total > retained {
			fmt.Fprintf(w, "  ... %d further violation(s) counted but not retained\n", total-retained)
		}
	}
	return nil
}
