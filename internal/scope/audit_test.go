package scope

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hydranet/internal/invariant"
	"hydranet/internal/obs"
)

// sampleAudit builds a dirty report of the shape the monitor writes.
func sampleAudit() invariant.Report {
	return invariant.Report{
		Scenario: "unit scenario",
		Clean:    false,
		Events:   120, Frames: 40, FrameBytes: 60000, Checks: 90,
		Rules: []invariant.RuleReport{
			{Rule: invariant.RuleDeposit, Checks: 50, Violations: 1},
			{Rule: invariant.RuleGate, Checks: 40, Violations: 2},
		},
		EventCounts: []invariant.KindCount{
			{Kind: "deposit", Count: 50},
			{Kind: "ack-progress", Count: 40},
		},
		QuiesceChecked:    true,
		OutstandingFrames: 0,
		Violations: []invariant.Violation{{
			Rule: invariant.RuleDeposit, Time: 3 * time.Second, Node: "s0",
			Detail: "duplicate delivery", Want: 3100, Got: 2600,
			Event: obs.Event{Kind: obs.KindDeposit},
		}},
	}
}

func TestAuditFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.audit.json")
	if err := sampleAudit().WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	if !IsAuditFile(path) {
		t.Fatal("IsAuditFile = false for a written audit report")
	}
	r, err := LoadAuditFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scenario != "unit scenario" || r.Clean || r.TotalViolations() != 3 {
		t.Fatalf("round-trip mangled report: %+v", r)
	}
	if len(r.Violations) != 1 || r.Violations[0].Rule != invariant.RuleDeposit {
		t.Fatalf("violations lost in round-trip: %+v", r.Violations)
	}
}

func TestIsAuditFileRejectsOtherJSON(t *testing.T) {
	dir := t.TempDir()
	bench := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(bench, []byte(`{"entries":[{"case":"x"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if IsAuditFile(bench) {
		t.Fatal("IsAuditFile = true for a bench file")
	}
	if IsAuditFile(filepath.Join(dir, "missing.json")) {
		t.Fatal("IsAuditFile = true for a missing file")
	}
}

func TestLoadAuditFileRejectsEmptyCensus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte(`{"clean":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAuditFile(path); err == nil {
		t.Fatal("LoadAuditFile accepted a report with no rule census")
	}
}

func TestWriteAuditReport(t *testing.T) {
	r := sampleAudit()
	var buf bytes.Buffer
	if err := WriteAuditReport(&buf, &r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"unit scenario",
		"3 VIOLATION(S)",
		"90 checks over 120 events",
		"quiesce: checked",
		invariant.RuleGate,
		"ack-progress",
		"duplicate delivery",
		"... 2 further violation(s) counted but not retained",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("audit report missing %q:\n%s", want, out)
		}
	}

	r.Clean = true
	r.Rules = []invariant.RuleReport{{Rule: invariant.RuleDeposit, Checks: 50}}
	r.Violations = nil
	buf.Reset()
	if err := WriteAuditReport(&buf, &r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "verdict: CLEAN") {
		t.Fatalf("clean report missing verdict:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "forensic") {
		t.Fatalf("clean report should have no forensic section:\n%s", buf.String())
	}
}
