package scope

import (
	"fmt"
	"sort"
	"time"

	"hydranet/internal/series"
)

// Finding is one regression (or difference) between two runs.
type Finding struct {
	// Series is the series name ("failover" / bench-case labels for the
	// non-series comparisons).
	Series string `json:"series"`
	// Field is which aggregate differed (total, mean, max, presence, ...).
	Field string `json:"field"`
	// A and B are the compared values (run A = baseline, run B = candidate).
	A float64 `json:"a"`
	B float64 `json:"b"`
	// Rel is the relative difference |a−b| / max(|a|,|b|).
	Rel float64 `json:"rel"`
	// Note carries presence-style findings with no numeric pair.
	Note string `json:"note,omitempty"`
}

// String renders the finding for the CLI.
func (f Finding) String() string {
	if f.Note != "" {
		return fmt.Sprintf("%-44s %-8s %s", f.Series, f.Field, f.Note)
	}
	return fmt.Sprintf("%-44s %-8s a=%.6g b=%.6g (%.1f%% apart)",
		f.Series, f.Field, f.A, f.B, 100*f.Rel)
}

// relDiff is the symmetric relative difference, 0 when both values are
// effectively zero.
func relDiff(a, b float64) float64 {
	da, db := a, b
	if da < 0 {
		da = -da
	}
	if db < 0 {
		db = -db
	}
	den := da
	if db > den {
		den = db
	}
	if den < 1e-9 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / den
}

// DiffRuns compares two series exports. Counter series compare run totals
// and observation counts; gauge series compare run mean and max; a series
// present in only one run is a finding. The failover timelines (when both
// runs carry one) compare phase durations. tol is the relative tolerance:
// identical-seed runs differ by exactly nothing, so CI gates with a small
// tol and a regression is any finding returned.
func DiffRuns(a, b *Run, tol float64) []Finding {
	var out []Finding

	names := map[string]bool{}
	for _, d := range a.Series {
		names[d.Name] = true
	}
	for _, d := range b.Series {
		names[d.Name] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	check := func(name, field string, av, bv float64) {
		if rel := relDiff(av, bv); rel > tol {
			out = append(out, Finding{Series: name, Field: field, A: av, B: bv, Rel: rel})
		}
	}
	for _, name := range sorted {
		da, db := a.Get(name), b.Get(name)
		switch {
		case da == nil:
			out = append(out, Finding{Series: name, Field: "presence", Note: "only in run B"})
			continue
		case db == nil:
			out = append(out, Finding{Series: name, Field: "presence", Note: "only in run A"})
			continue
		}
		if da.Kind != db.Kind {
			out = append(out, Finding{Series: name, Field: "kind",
				Note: fmt.Sprintf("%s in run A, %s in run B", da.Kind, db.Kind)})
			continue
		}
		check(name, "count", float64(da.Count), float64(db.Count))
		if da.Kind == series.Counter.String() {
			check(name, "total", da.Total, db.Total)
		} else {
			check(name, "mean", da.Mean, db.Mean)
			check(name, "max", da.Max, db.Max)
		}
	}

	fa, fb := a.Meta.Failover, b.Meta.Failover
	switch {
	case fa == nil && fb == nil:
	case fa == nil:
		out = append(out, Finding{Series: "failover", Field: "presence", Note: "only in run B"})
	case fb == nil:
		out = append(out, Finding{Series: "failover", Field: "presence", Note: "only in run A"})
	default:
		phase := func(field string, av, bv time.Duration) {
			check("failover", field, float64(av), float64(bv))
		}
		phase("detection", fa.Detection, fb.Detection)
		phase("reconfig", fa.Reconfiguration, fb.Reconfiguration)
		phase("stall", fa.ClientStall, fb.ClientStall)
	}
	return out
}
