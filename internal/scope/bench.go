package scope

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchEntry mirrors one ttcpbench -json result row. Deterministic fields
// (throughput, events, frames) are reproducible across machines at equal
// seed; the wall-clock fields are machine-dependent and never gated on.
type BenchEntry struct {
	Case           string  `json:"case"`
	BufLen         int     `json:"buf_len"`
	ThroughputKBps float64 `json:"throughput_kbps"`
	Events         uint64  `json:"events"`
	Frames         uint64  `json:"frames"`
	WallMS         float64 `json:"wall_ms"`
	EventsPerSec   float64 `json:"events_per_sec"`
	FramesPerSec   float64 `json:"frames_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event,omitempty"`

	// Workers and Speedup are informational scaling facts written by
	// ttcpbench -scale (worker count and wall-time speedup vs the serial
	// row of the same sweep). Wall-derived — DiffBench never gates on them.
	Workers int     `json:"workers,omitempty"`
	Speedup float64 `json:"speedup,omitempty"`
}

// BenchFile mirrors a ttcpbench -json output file (BENCH_core.json).
type BenchFile struct {
	Description string       `json:"description"`
	TotalBytes  int          `json:"total_bytes"`
	Seed        int64        `json:"seed"`
	Parallel    int          `json:"parallel"`
	GoMaxProcs  int          `json:"gomaxprocs"`
	WallMS      float64      `json:"total_wall_ms"`
	Entries     []BenchEntry `json:"entries"`
}

// LoadBenchFile loads a ttcpbench JSON result.
func LoadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(bf.Entries) == 0 {
		return nil, fmt.Errorf("%s: no bench entries", path)
	}
	return &bf, nil
}

// IsBenchFile sniffs whether path holds a ttcpbench JSON result (a single
// object with an entries array) rather than a series export.
func IsBenchFile(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	var bf BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return false
	}
	return len(bf.Entries) > 0
}

// DiffBench compares two bench results on the deterministic fields only —
// throughput, scheduler events and fabric frames — within relative
// tolerance tol. Wall time, events/sec and allocs/event are machine
// facts, not simulation facts, and are ignored. Mismatched run parameters
// (total bytes, seed, parallelism) are findings: the comparison would be
// meaningless.
func DiffBench(a, b *BenchFile, tol float64) []Finding {
	var out []Finding
	if a.TotalBytes != b.TotalBytes || a.Seed != b.Seed || a.Parallel != b.Parallel {
		out = append(out, Finding{Series: "bench", Field: "params",
			Note: fmt.Sprintf("run parameters differ: bytes=%d/%d seed=%d/%d parallel=%d/%d",
				a.TotalBytes, b.TotalBytes, a.Seed, b.Seed, a.Parallel, b.Parallel)})
		return out
	}
	type key struct {
		c   string
		buf int
	}
	bEntries := make(map[key]BenchEntry, len(b.Entries))
	for _, e := range b.Entries {
		bEntries[key{e.Case, e.BufLen}] = e
	}
	seen := make(map[key]bool, len(a.Entries))
	for _, ea := range a.Entries {
		k := key{ea.Case, ea.BufLen}
		seen[k] = true
		label := fmt.Sprintf("%s/%d", ea.Case, ea.BufLen)
		eb, ok := bEntries[k]
		if !ok {
			out = append(out, Finding{Series: label, Field: "presence", Note: "only in run A"})
			continue
		}
		check := func(field string, av, bv float64) {
			if rel := relDiff(av, bv); rel > tol {
				out = append(out, Finding{Series: label, Field: field, A: av, B: bv, Rel: rel})
			}
		}
		check("throughput", ea.ThroughputKBps, eb.ThroughputKBps)
		check("events", float64(ea.Events), float64(eb.Events))
		check("frames", float64(ea.Frames), float64(eb.Frames))
	}
	for _, eb := range b.Entries {
		if k := (key{eb.Case, eb.BufLen}); !seen[k] {
			out = append(out, Finding{Series: fmt.Sprintf("%s/%d", eb.Case, eb.BufLen),
				Field: "presence", Note: "only in run B"})
		}
	}
	return out
}
