// Package scope is hydrascope's analysis engine: it loads series exports
// (JSONL or CSV), span timelines and ttcpbench result files, renders a
// failover timeline report aligned to the paper's Table-2 phases, and
// diffs two runs within a tolerance — the regression gate CI runs.
//
// Unlike internal/series it runs offline, after the simulation, so it is
// deliberately outside the determinism fence: it sorts whatever it loads
// and owns its own output stability.
package scope

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"hydranet/internal/series"
)

// Run is one loaded series export.
type Run struct {
	// Path is where the run was loaded from ("" for readers).
	Path string
	// Meta is the run header. CSV exports only carry cadence/ticks/seed.
	Meta series.Meta
	// Series holds every series, in export (creation) order.
	Series []series.Data

	byName map[string]int
}

// Get returns the named series (nil if absent).
func (r *Run) Get(name string) *series.Data {
	if i, ok := r.byName[name]; ok {
		return &r.Series[i]
	}
	return nil
}

// Names returns every series name in export order.
func (r *Run) Names() []string {
	out := make([]string, len(r.Series))
	for i := range r.Series {
		out[i] = r.Series[i].Name
	}
	return out
}

func (r *Run) index() {
	r.byName = make(map[string]int, len(r.Series))
	for i := range r.Series {
		r.byName[r.Series[i].Name] = i
	}
}

// LoadRunFile loads a series export, sniffing JSONL vs CSV from content.
func LoadRunFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	run, err := LoadRun(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	run.Path = path
	return run, nil
}

// LoadRun loads a series export from r, sniffing the format: JSONL starts
// with a '{' meta object, CSV with the '#' comment header.
func LoadRun(r io.Reader) (*Run, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("empty series input: %w", err)
	}
	switch first[0] {
	case '{':
		return loadJSONL(br)
	case '#':
		return loadCSV(br)
	default:
		return nil, fmt.Errorf("unrecognized series format (want JSONL '{' or CSV '#' header)")
	}
}

func loadJSONL(br *bufio.Reader) (*Run, error) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, fmt.Errorf("missing meta line: %w", sc.Err())
	}
	run := &Run{}
	if err := json.Unmarshal(sc.Bytes(), &run.Meta); err != nil {
		return nil, fmt.Errorf("meta line: %w", err)
	}
	if run.Meta.Version != series.FormatVersion {
		return nil, fmt.Errorf("series format v%d, this build reads v%d",
			run.Meta.Version, series.FormatVersion)
	}
	for line := 2; sc.Scan(); line++ {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var d series.Data
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		run.Series = append(run.Series, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	run.index()
	return run, nil
}

// loadCSV reconstructs series from the long-form export. CSV drops the
// run-wide aggregates, so they are recomputed over the retained window —
// document-grade only; diffs should use JSONL.
func loadCSV(br *bufio.Reader) (*Run, error) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	run := &Run{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			parseCSVHeader(text, &run.Meta)
			continue
		}
		if strings.HasPrefix(text, "name,") {
			continue // column header
		}
		fields := strings.Split(text, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("line %d: want 5 CSV fields, got %d", line, len(fields))
		}
		tns, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: t_ns: %w", line, err)
		}
		v, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: value: %w", line, err)
		}
		name := fields[0]
		i, ok := -1, false
		if run.byName != nil {
			i, ok = run.byName[name]
		}
		if !ok {
			run.Series = append(run.Series, series.Data{
				Name: name, Kind: fields[1], Unit: fields[2],
			})
			i = len(run.Series) - 1
			if run.byName == nil {
				run.byName = make(map[string]int)
			}
			run.byName[name] = i
		}
		d := &run.Series[i]
		val := v
		d.Points = append(d.Points, series.Point{T: time.Duration(tns), V: val})
		d.Count++
		d.Total += val
		if d.Count == 1 || val > d.Max {
			d.Max = val
		}
		d.Last = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range run.Series {
		d := &run.Series[i]
		if d.Count > 0 {
			d.Mean = d.Total / float64(d.Count)
		}
	}
	if run.Meta.Version == 0 {
		return nil, fmt.Errorf("missing hydranet-series CSV header")
	}
	return run, nil
}

func parseCSVHeader(text string, meta *series.Meta) {
	if !strings.HasPrefix(text, "# hydranet-series v") {
		return
	}
	for _, tok := range strings.Fields(text[1:]) {
		switch {
		case strings.HasPrefix(tok, "hydranet-series"):
		case strings.HasPrefix(tok, "v"):
			if n, err := strconv.Atoi(tok[1:]); err == nil {
				meta.Version = n
			}
		case strings.HasPrefix(tok, "every_ns="):
			if n, err := strconv.ParseInt(tok[len("every_ns="):], 10, 64); err == nil {
				meta.Every = time.Duration(n)
			}
		case strings.HasPrefix(tok, "ticks="):
			if n, err := strconv.ParseUint(tok[len("ticks="):], 10, 64); err == nil {
				meta.Ticks = n
			}
		case strings.HasPrefix(tok, "seed="):
			if n, err := strconv.ParseInt(tok[len("seed="):], 10, 64); err == nil {
				meta.Seed = n
			}
		}
	}
}
