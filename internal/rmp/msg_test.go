package rmp

import (
	"testing"
	"testing/quick"

	"hydranet/internal/core"
	"hydranet/internal/ipv4"
)

func TestMessageRoundTrip(t *testing.T) {
	f := func(typ uint8, svcAddr uint32, svcPort uint16, host uint32, mode uint8,
		upstream uint32, gated bool, metric uint16, probe uint32, hostsRaw []uint32) bool {
		in := &Message{
			Type:     MsgType(typ%8 + 1),
			Service:  core.ServiceID{Addr: ipv4.Addr(svcAddr), Port: svcPort},
			Host:     ipv4.Addr(host),
			Mode:     core.Mode(mode%2 + 1),
			Upstream: ipv4.Addr(upstream),
			Gated:    gated,
		}
		switch in.Type {
		case MsgPing, MsgPong:
			in.ProbeID = probe
		case MsgMirror:
			in.ProbeID = probe
			if len(hostsRaw) > 200 {
				hostsRaw = hostsRaw[:200]
			}
			for _, h := range hostsRaw {
				in.Hosts = append(in.Hosts, ipv4.Addr(h))
			}
		default:
			in.Metric = metric
		}
		out, err := UnmarshalMessage(in.Marshal())
		if err != nil {
			return false
		}
		if out.Type != in.Type || out.Service != in.Service || out.Host != in.Host ||
			out.Mode != in.Mode || out.Upstream != in.Upstream || out.Gated != in.Gated ||
			out.Metric != in.Metric || out.ProbeID != in.ProbeID ||
			len(out.Hosts) != len(in.Hosts) {
			return false
		}
		for i := range in.Hosts {
			if out.Hosts[i] != in.Hosts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMessageRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalMessage(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := UnmarshalMessage(make([]byte, msgLen-1)); err == nil {
		t.Error("short accepted")
	}
	b := make([]byte, msgLen) // type 0
	if _, err := UnmarshalMessage(b); err == nil {
		t.Error("type 0 accepted")
	}
	b[0] = 200
	if _, err := UnmarshalMessage(b); err == nil {
		t.Error("type 200 accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	names := map[MsgType]string{
		MsgRegister: "REGISTER", MsgLeave: "LEAVE", MsgSuspect: "SUSPECT",
		MsgChainSet: "CHAIN-SET", MsgRegisterScale: "REGISTER-SCALE",
		MsgPing: "PING", MsgPong: "PONG",
	}
	for typ, want := range names {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}
