package rmp

import (
	"testing"

	"hydranet/internal/ipv4"
)

// FuzzUnmarshalMessage: management datagrams come off the wire; arbitrary
// bytes must never panic and accepted messages must round-trip.
func FuzzUnmarshalMessage(f *testing.F) {
	f.Add((&Message{Type: MsgRegister, Host: 9}).Marshal())
	f.Add((&Message{Type: MsgMirror, ProbeID: 3, Hosts: []ipv4.Addr{1, 2}}).Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalMessage(data)
		if err != nil {
			return
		}
		m2, err := UnmarshalMessage(m.Marshal())
		if err != nil {
			t.Fatalf("re-marshal does not parse: %v", err)
		}
		if m2.Type != m.Type || m2.Service != m.Service || m2.Host != m.Host ||
			len(m2.Hosts) != len(m.Hosts) {
			t.Fatal("message round trip changed fields")
		}
	})
}
