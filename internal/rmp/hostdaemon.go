package rmp

import (
	"fmt"
	"time"

	"hydranet/internal/core"
	"hydranet/internal/hostserver"
	"hydranet/internal/ipv4"
	"hydranet/internal/sim"
	"hydranet/internal/tcp"
	"hydranet/internal/udp"
)

// HostDaemon is the management daemon on a HydraNet host. It registers
// local replicas with the redirector, applies chain configuration pushed
// back by the redirector, and forwards failure suspicions.
type HostDaemon struct {
	rel        *Reliable
	sched      *sim.Scheduler
	mgr        *core.Manager
	hs         *hostserver.HostServer
	tcpStack   *tcp.Stack
	hostAddr   ipv4.Addr
	redirector udp.Endpoint

	// Stats
	chainSets, suspectsSent uint64
}

// NewHostDaemon starts the daemon: it binds the management port and wires
// the ft-TCP failure estimator to SUSPECT reports.
func NewHostDaemon(udpStack *udp.Stack, sched *sim.Scheduler, mgr *core.Manager,
	hs *hostserver.HostServer, tcpStack *tcp.Stack,
	hostAddr, redirectorAddr ipv4.Addr) (*HostDaemon, error) {
	d := &HostDaemon{
		sched:      sched,
		mgr:        mgr,
		hs:         hs,
		tcpStack:   tcpStack,
		hostAddr:   hostAddr,
		redirector: udp.Endpoint{Addr: redirectorAddr, Port: ManagementPort},
	}
	rel, err := NewReliable(udpStack, sched, hostAddr, ManagementPort, d.onMessage)
	if err != nil {
		return nil, fmt.Errorf("rmp: host daemon: %w", err)
	}
	d.rel = rel
	mgr.OnSuspect(d.reportSuspicion)
	return d, nil
}

// Stats returns chain reconfigurations applied and suspicions reported.
func (d *HostDaemon) Stats() (chainSets, suspectsSent uint64) {
	return d.chainSets, d.suspectsSent
}

// RegisterFT deploys a fault-tolerant replica locally and registers it with
// the redirector: the virtual host is installed, the port marked replicated
// (setportopt), the listener wired under ft-TCP hooks, and a REGISTER sent.
func (d *HostDaemon) RegisterFT(svc core.ServiceID, mode core.Mode, det core.DetectorParams,
	listener *tcp.Listener) *core.ReplicatedPort {
	d.hs.VHost(svc.Addr)
	port := d.mgr.SetPortOpt(svc, mode, det)
	port.AttachListener(listener)
	msg := Message{Type: MsgRegister, Service: svc, Host: d.hostAddr, Mode: mode}
	d.rel.Send(d.redirector, msg.Marshal(), nil)
	return port
}

// RegisterScale deploys a plain (scaling) replica: virtual host plus a
// nearest-replica redirector entry; no ft-TCP machinery.
func (d *HostDaemon) RegisterScale(svc core.ServiceID, metric uint16) {
	d.hs.VHost(svc.Addr)
	msg := Message{Type: MsgRegisterScale, Service: svc, Host: d.hostAddr, Metric: metric}
	d.rel.Send(d.redirector, msg.Marshal(), nil)
}

// Leave withdraws this replica from the service (deletion of primary or
// backup server, paper Section 4.4).
func (d *HostDaemon) Leave(svc core.ServiceID) {
	d.mgr.ClearPort(svc)
	d.hs.ReleaseVHost(svc.Addr)
	msg := Message{Type: MsgLeave, Service: svc, Host: d.hostAddr}
	d.rel.Send(d.redirector, msg.Marshal(), nil)
}

// StartHeartbeats announces this replica's liveness for svc every interval
// (lease-based membership; see RedirectorDaemon.EnableLeases). Heartbeats
// stop implicitly when the host crashes — a dead node transmits nothing —
// and resume if it restarts, though a removed member must still re-register
// to rejoin the chain.
func (d *HostDaemon) StartHeartbeats(svc core.ServiceID, interval time.Duration) {
	var tick func()
	timer := sim.NewTimer(d.sched, func() {})
	tick = func() {
		msg := Message{Type: MsgHeartbeat, Service: svc, Host: d.hostAddr}
		d.rel.Send(d.redirector, msg.Marshal(), nil)
		timer.Reset(interval)
	}
	timer = sim.NewTimer(d.sched, tick)
	timer.Reset(interval)
}

func (d *HostDaemon) reportSuspicion(svc core.ServiceID) {
	d.suspectsSent++
	msg := Message{Type: MsgSuspect, Service: svc, Host: d.hostAddr}
	d.rel.Send(d.redirector, msg.Marshal(), nil)
}

func (d *HostDaemon) onMessage(from udp.Endpoint, payload []byte) {
	msg, err := UnmarshalMessage(payload)
	if err != nil {
		return
	}
	switch msg.Type {
	case MsgChainSet:
		d.applyChainSet(msg)
	case MsgPing:
		// Liveness probe: the reliable layer's acknowledgment is the
		// "pong" — nothing further to do.
	default:
		// Host daemons ignore redirector-bound operations.
	}
}

// applyChainSet installs this replica's chain position.
func (d *HostDaemon) applyChainSet(msg *Message) {
	port := d.mgr.Port(msg.Service)
	if port == nil {
		return
	}
	d.chainSets++
	port.SetUpstream(msg.Upstream)
	switch {
	case msg.Mode == core.ModePrimary && port.Mode() == core.ModeBackup:
		port.Promote()
	case msg.Mode == core.ModeBackup && port.Mode() == core.ModePrimary:
		// Registration races can briefly make a backup the sole (hence
		// primary) member; the authoritative chain demotes it.
		port.Demote()
	}
	port.SetGated(msg.Gated)
}
