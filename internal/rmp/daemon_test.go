package rmp_test

import (
	"testing"
	"time"

	"hydranet"
	"hydranet/internal/app"
	"hydranet/internal/core"
	"hydranet/internal/redirector"
)

var svc = hydranet.ServiceID{Addr: hydranet.MustAddr("192.20.225.20"), Port: 80}

func build(t *testing.T, seed int64, n int) (*hydranet.Net, *hydranet.Redirector, []*hydranet.Host) {
	t.Helper()
	net := hydranet.New(hydranet.Config{Seed: seed})
	rd := net.AddRedirector("rd", hydranet.HostConfig{})
	var hosts []*hydranet.Host
	for i := 0; i < n; i++ {
		h := net.AddHost("s"+string(rune('0'+i)), hydranet.HostConfig{})
		hosts = append(hosts, h)
		net.Link(h, rd.Host, hydranet.LinkConfig{Delay: time.Millisecond})
	}
	net.AutoRoute()
	return net, rd, hosts
}

func TestRegistrationBuildsChain(t *testing.T) {
	net, rd, hosts := build(t, 61, 3)
	if _, err := net.DeployFT(svc, rd, hosts, hydranet.FTOptions{},
		func(c *hydranet.Conn) { app.Echo(c) }); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	chain := rd.Daemon().Chain(svc)
	if len(chain) != 3 || chain[0] != hosts[0].Addr() {
		t.Fatalf("chain = %v", chain)
	}
	// The redirector table must agree.
	entry := rd.Table().Lookup(redirector.ServiceKey(svc))
	if entry == nil || !entry.FT || entry.Primary != hosts[0].Addr() || len(entry.Backups) != 2 {
		t.Fatalf("table entry = %+v", entry)
	}
	// Chain positions: primary ungated only if it had no successor; here
	// everyone but the tail is gated, which we verify via replica modes.
	for i, h := range hosts {
		port := h.FTManager().Port(svc)
		if port == nil {
			t.Fatalf("host %d has no replicated port", i)
		}
		wantMode := core.ModeBackup
		if i == 0 {
			wantMode = core.ModePrimary
		}
		if port.Mode() != wantMode {
			t.Errorf("host %d mode = %v, want %v", i, port.Mode(), wantMode)
		}
	}
}

func TestDuplicateRegistrationIgnored(t *testing.T) {
	net, rd, hosts := build(t, 62, 2)
	if _, err := net.DeployFT(svc, rd, hosts, hydranet.FTOptions{},
		func(c *hydranet.Conn) { app.Echo(c) }); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	// The reliable layer may retry REGISTER; the daemon also dedups at the
	// chain level. Registering the same host again must not duplicate it.
	lst, _ := hosts[1].TCP().Listen(hydranet.MustAddr("192.20.225.21"), 80)
	_ = lst
	hosts[1].Daemon(rd).RegisterFT(svc, core.ModeBackup, core.DetectorParams{}, lst)
	net.Settle()
	if chain := rd.Daemon().Chain(svc); len(chain) != 2 {
		t.Fatalf("chain after duplicate registration = %v", chain)
	}
}

func TestVoluntaryLeaveOfBackup(t *testing.T) {
	net, rd, hosts := build(t, 63, 3)
	if _, err := net.DeployFT(svc, rd, hosts, hydranet.FTOptions{},
		func(c *hydranet.Conn) { app.Echo(c) }); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	hosts[1].Daemon(rd).Leave(svc)
	net.Settle()
	chain := rd.Daemon().Chain(svc)
	if len(chain) != 2 || chain[0] != hosts[0].Addr() || chain[1] != hosts[2].Addr() {
		t.Fatalf("chain after leave = %v", chain)
	}
	// The leaver no longer hosts the virtual address.
	if hosts[1].HostServer().HasVHost(svc.Addr) {
		t.Error("leaver still hosts the virtual host")
	}
}

func TestVoluntaryLeaveOfPrimaryPromotesNext(t *testing.T) {
	net, rd, hosts := build(t, 64, 2)
	if _, err := net.DeployFT(svc, rd, hosts, hydranet.FTOptions{},
		func(c *hydranet.Conn) { app.Echo(c) }); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	hosts[0].Daemon(rd).Leave(svc)
	net.Settle()
	chain := rd.Daemon().Chain(svc)
	if len(chain) != 1 || chain[0] != hosts[1].Addr() {
		t.Fatalf("chain = %v, want just the old backup", chain)
	}
	port := hosts[1].FTManager().Port(svc)
	if port.Mode() != core.ModePrimary {
		t.Fatalf("survivor mode = %v, want primary", port.Mode())
	}
}

func TestSuspectProbeKeepsLiveHosts(t *testing.T) {
	// A false suspicion (all hosts alive) must not reconfigure anything.
	net, rd, hosts := build(t, 65, 2)
	if _, err := net.DeployFT(svc, rd, hosts, hydranet.FTOptions{},
		func(c *hydranet.Conn) { app.Echo(c) }); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	reconfigs := 0
	rd.Daemon().OnReconfig(func(s hydranet.ServiceID, failed []hydranet.Addr) { reconfigs++ })
	// Provoke genuine suspicions without any host failing: heavy loss on
	// the acknowledgment channel stalls the flow-control loop, the client
	// retransmits, and the detector fires — but the probe finds everyone
	// alive, so nothing may change.
	for _, h := range hosts {
		h.FTManager().SetChainLoss(0.9)
	}
	client := net.AddHost("client", hydranet.HostConfig{})
	net.Link(client, rd.Host, hydranet.LinkConfig{Delay: time.Millisecond})
	net.AutoRoute()
	conn, _ := client.Dial(svc)
	app.Source(conn, make([]byte, 64*1024), false)
	net.RunFor(2 * time.Minute)
	if rd.Daemon().Stats().Suspicions == 0 {
		t.Fatal("chain loss provoked no suspicion — the scenario is inert")
	}
	if got := len(rd.Daemon().Chain(svc)); got != 2 {
		t.Fatalf("live hosts removed from chain: %v", rd.Daemon().Chain(svc))
	}
	if reconfigs != 0 {
		t.Errorf("%d reconfigurations despite all hosts alive", reconfigs)
	}
}

func TestRegistrationRaceDemotesInterimPrimary(t *testing.T) {
	// Jittery management links can deliver the backup's REGISTER before
	// the primary's. The backup is then briefly the sole member — and
	// primary — until the real primary registers; the subsequent
	// CHAIN-SET must demote it (suppression back on), or it becomes an
	// unsuppressed co-primary corrupting the client stream.
	net := hydranet.New(hydranet.Config{Seed: 67})
	rd := net.AddRedirector("rd", hydranet.HostConfig{})
	client := net.AddHost("client", hydranet.HostConfig{})
	var hosts []*hydranet.Host
	link := hydranet.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond,
		Jitter: 10 * time.Millisecond} // strong management reordering
	net.Link(client, rd.Host, link)
	for i := 0; i < 3; i++ {
		h := net.AddHost("s"+string(rune('0'+i)), hydranet.HostConfig{})
		hosts = append(hosts, h)
		net.Link(h, rd.Host, link)
	}
	net.AutoRoute()
	if _, err := net.DeployFT(svc, rd, hosts, hydranet.FTOptions{},
		func(c *hydranet.Conn) { app.Echo(c) }); err != nil {
		t.Fatal(err)
	}
	net.RunFor(5 * time.Second)
	// Whatever the arrival order, the settled modes must match the chain.
	chain := rd.Daemon().Chain(svc)
	if len(chain) != 3 {
		t.Fatalf("chain = %v", chain)
	}
	for i, h := range hosts {
		port := h.FTManager().Port(svc)
		want := core.ModeBackup
		if h.Addr() == chain[0] {
			want = core.ModePrimary
		}
		if port.Mode() != want {
			t.Errorf("host %d mode = %v, want %v (chain %v)", i, port.Mode(), want, chain)
		}
	}
	// And exactly one replica answers the client.
	conn, _ := client.Dial(svc)
	var got []byte
	app.Collect(conn, &got)
	app.Source(conn, []byte("who answers?"), false)
	net.RunFor(20 * time.Second)
	if string(got) != "who answers?" {
		t.Fatalf("echo = %q", got)
	}
	transmitters := 0
	for _, h := range hosts {
		for _, c := range h.TCP().Conns() {
			if c.Stats().SegsSent > 0 {
				transmitters++
			}
		}
	}
	if transmitters != 1 {
		t.Fatalf("%d replicas transmitted to the client, want exactly 1", transmitters)
	}
}

func TestRedirectorDaemonStatsProgress(t *testing.T) {
	net, rd, hosts := build(t, 66, 2)
	if _, err := net.DeployFT(svc, rd, hosts, hydranet.FTOptions{},
		func(c *hydranet.Conn) { app.Echo(c) }); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	st := rd.Daemon().Stats()
	if st.Registrations != 2 {
		t.Errorf("Registrations = %d, want 2", st.Registrations)
	}
	if st.Reconfigs < 2 {
		t.Errorf("Reconfigs = %d, want >= 2 (one per registration)", st.Reconfigs)
	}
}
