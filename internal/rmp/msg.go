// Package rmp implements the HydraNet replica management protocol (paper
// Section 4.4): management daemons on host servers and redirectors that
// register replicas, build and repair the acknowledgment-channel chain, and
// reconfigure the system after failures.
//
// Daemons exchange idempotent operations over plain UDP and state-changing
// operations over a small reliable-UDP layer, mirroring the paper's
// "UDP for idempotent operations and a form of reliable UDP for the message
// exchanges".
package rmp

import (
	"errors"
	"fmt"

	"hydranet/internal/core"
	"hydranet/internal/ipv4"
)

// ManagementPort is the well-known UDP port of the management daemons.
const ManagementPort = 5403

// MsgType enumerates protocol operations.
type MsgType uint8

// Protocol operations.
const (
	// MsgRegister announces a replica binding a replicated port
	// (creation of primary/backup server).
	MsgRegister MsgType = iota + 1
	// MsgLeave announces a replica voluntarily leaving.
	MsgLeave
	// MsgSuspect reports a tripped failure estimator to the redirector.
	MsgSuspect
	// MsgChainSet installs a replica's chain position: role, upstream
	// (predecessor) and whether a successor exists.
	MsgChainSet
	// MsgRegisterScale announces a scaling-mode (non-FT) replica.
	MsgRegisterScale
	// MsgPing is the liveness probe used to identify the failed member of
	// a partitioned chain. The reliable layer's acknowledgment serves as
	// the reply; MsgPong is reserved for an explicit response should the
	// probe ever move to plain UDP.
	MsgPing
	MsgPong
	// MsgMirror replicates an FT table entry to a peer redirector, so
	// clients behind several redirectors reach the same replica set
	// (paper Figure 1). Hosts carries the chain, primary first; an empty
	// list removes the entry. ProbeID carries a per-service version for
	// last-writer-wins ordering.
	MsgMirror
	// MsgHeartbeat announces a replica's liveness for a service. Sent
	// periodically only when lease-based membership is enabled; the
	// redirector expires chain members whose heartbeats stop.
	MsgHeartbeat
)

func (t MsgType) String() string {
	switch t {
	case MsgRegister:
		return "REGISTER"
	case MsgLeave:
		return "LEAVE"
	case MsgSuspect:
		return "SUSPECT"
	case MsgChainSet:
		return "CHAIN-SET"
	case MsgRegisterScale:
		return "REGISTER-SCALE"
	case MsgPing:
		return "PING"
	case MsgPong:
		return "PONG"
	case MsgMirror:
		return "MIRROR"
	case MsgHeartbeat:
		return "HEARTBEAT"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Message is the flat RMP wire message; which fields are meaningful depends
// on Type.
type Message struct {
	Type     MsgType
	Service  core.ServiceID
	Host     ipv4.Addr // subject replica (registrant, leaver, probe target)
	Mode     core.Mode // REGISTER, CHAIN-SET
	Upstream ipv4.Addr // CHAIN-SET: predecessor in the acknowledgment channel
	Gated    bool      // CHAIN-SET: successor exists
	Metric   uint16    // REGISTER-SCALE: routing metric
	ProbeID  uint32    // PING/PONG correlation; MIRROR version
	// Hosts is the replica chain carried by MIRROR messages.
	Hosts []ipv4.Addr
}

const msgLen = 21

// ErrBadMessage reports an undecodable management datagram.
var ErrBadMessage = errors.New("rmp: malformed message")

// Marshal encodes the message. MIRROR messages append the host list after
// the fixed header.
func (m *Message) Marshal() []byte {
	b := make([]byte, msgLen, msgLen+1+4*len(m.Hosts))
	b[0] = byte(m.Type)
	putU32(b[1:5], uint32(m.Service.Addr))
	putU16(b[5:7], m.Service.Port)
	putU32(b[7:11], uint32(m.Host))
	b[11] = byte(m.Mode)
	putU32(b[12:16], uint32(m.Upstream))
	if m.Gated {
		b[16] = 1
	}
	// Metric and ProbeID overlay the same slot; no message uses both.
	if m.Type == MsgPing || m.Type == MsgPong || m.Type == MsgMirror {
		putU32(b[17:21], m.ProbeID)
	} else {
		putU16(b[17:19], m.Metric)
	}
	if m.Type == MsgMirror {
		b = append(b, byte(len(m.Hosts)))
		for _, h := range m.Hosts {
			var quad [4]byte
			putU32(quad[:], uint32(h))
			b = append(b, quad[:]...)
		}
	}
	return b
}

// UnmarshalMessage decodes a management datagram.
func UnmarshalMessage(b []byte) (*Message, error) {
	if len(b) < msgLen {
		return nil, ErrBadMessage
	}
	if MsgType(b[0]) != MsgMirror && len(b) != msgLen {
		return nil, ErrBadMessage
	}
	m := &Message{
		Type:     MsgType(b[0]),
		Service:  core.ServiceID{Addr: ipv4.Addr(getU32(b[1:5])), Port: getU16(b[5:7])},
		Host:     ipv4.Addr(getU32(b[7:11])),
		Mode:     core.Mode(b[11]),
		Upstream: ipv4.Addr(getU32(b[12:16])),
		Gated:    b[16] == 1,
	}
	if m.Type == MsgPing || m.Type == MsgPong || m.Type == MsgMirror {
		m.ProbeID = getU32(b[17:21])
	} else {
		m.Metric = getU16(b[17:19])
	}
	if m.Type < MsgRegister || m.Type > MsgHeartbeat {
		return nil, ErrBadMessage
	}
	if m.Type == MsgMirror {
		rest := b[msgLen:]
		if len(rest) < 1 {
			return nil, ErrBadMessage
		}
		count := int(rest[0])
		rest = rest[1:]
		if len(rest) != 4*count {
			return nil, ErrBadMessage
		}
		for i := 0; i < count; i++ {
			m.Hosts = append(m.Hosts, ipv4.Addr(getU32(rest[4*i:4*i+4])))
		}
	}
	return m, nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func putU16(b []byte, v uint16) {
	b[0] = byte(v >> 8)
	b[1] = byte(v)
}

func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func getU16(b []byte) uint16 {
	return uint16(b[0])<<8 | uint16(b[1])
}
