package rmp

import (
	"fmt"
	"time"

	"hydranet/internal/core"
	"hydranet/internal/ipv4"
	"hydranet/internal/obs"
	"hydranet/internal/redirector"
	"hydranet/internal/sim"
	"hydranet/internal/udp"
)

// RedirectorDaemonStats counts redirector-side management activity.
type RedirectorDaemonStats struct {
	Registrations       uint64
	Leaves              uint64
	Suspicions          uint64
	ProbesSent          uint64
	HostsFailed         uint64
	Reconfigs           uint64
	CongestionEvictions uint64
	LeaseExpirations    uint64
}

// RedirectorDaemon is the management daemon co-located with a redirector.
// It is the authority for each service's replica chain: it accepts
// registrations, keeps the redirector table in sync, and runs the
// reconfiguration procedure when a failure is reported.
type RedirectorDaemon struct {
	rel   *Reliable
	rd    *redirector.Redirector
	sched *sim.Scheduler
	addr  ipv4.Addr

	services    map[core.ServiceID]*svcState
	peers       []udp.Endpoint            // peer redirectors mirroring our FT entries
	mirrored    map[core.ServiceID]uint32 // last version applied per mirrored service
	congestion  CongestionPolicy
	leaseExpiry time.Duration
	leaseSweep  *sim.Timer
	stats       RedirectorDaemonStats
	bus         *obs.Bus
	node        string

	// onReconfig, if set, observes completed reconfigurations (testing and
	// measurement).
	onReconfig func(svc core.ServiceID, failed []ipv4.Addr)
}

type svcState struct {
	chain   []ipv4.Addr // S0 (primary) first
	probing bool
	probeID uint32
	version uint32 // bumped on every chain change, for mirror ordering

	// Congestion-eviction bookkeeping: times of all-alive probe outcomes
	// within the policy window.
	aliveStrikes []time.Duration
	// Lease bookkeeping: last heartbeat (or registration) per member.
	lastSeen map[ipv4.Addr]time.Duration
}

// CongestionPolicy configures eviction of live-but-disruptive replicas
// (paper Section 1: "it should be possible to temporarily shut down servers
// when they cause service disruption due to congestion, and bring them back
// in when the congestion clears"). When Strikes suspicions end in all-alive
// probe outcomes within Window, the chain tail backup is evicted — it can
// rejoin later via re-registration (Recommission). The zero value disables
// the policy.
type CongestionPolicy struct {
	Strikes int
	Window  time.Duration
}

// NewRedirectorDaemon starts the daemon on the redirector node.
func NewRedirectorDaemon(udpStack *udp.Stack, sched *sim.Scheduler,
	rd *redirector.Redirector, addr ipv4.Addr) (*RedirectorDaemon, error) {
	d := &RedirectorDaemon{
		rd:       rd,
		sched:    sched,
		addr:     addr,
		services: make(map[core.ServiceID]*svcState),
		mirrored: make(map[core.ServiceID]uint32),
	}
	rel, err := NewReliable(udpStack, sched, addr, ManagementPort, d.onMessage)
	if err != nil {
		return nil, fmt.Errorf("rmp: redirector daemon: %w", err)
	}
	d.rel = rel
	return d, nil
}

// Stats returns a snapshot of the daemon counters.
func (d *RedirectorDaemon) Stats() RedirectorDaemonStats { return d.stats }

// SetBus attaches an observability event bus for registration and
// reconfiguration events. node names the redirector in the events (the
// daemon itself has no handle on the fabric). A nil bus disables emission.
func (d *RedirectorDaemon) SetBus(b *obs.Bus, node string) {
	d.bus = b
	d.node = node
}

// noteReconfig publishes a chain-change event; cause says why and hosts are
// the members that left the chain.
func (d *RedirectorDaemon) noteReconfig(svc core.ServiceID, cause string, hosts []ipv4.Addr) {
	if b := d.bus; b.Enabled(obs.KindReconfig) {
		b.Publish(obs.Event{
			Kind: obs.KindReconfig, Node: d.node, Service: svc.String(),
			Detail: fmt.Sprintf("%s %v", cause, hosts),
		})
	}
}

// AddPeer registers a peer redirector that should mirror this daemon's
// fault-tolerant table entries, so clients behind it reach the same replica
// sets (paper Figure 1: hosts "accessible to all clients through at least
// one redirector"). Mirroring is one-way; the authority for a service is
// the redirector its replicas register with.
func (d *RedirectorDaemon) AddPeer(addr ipv4.Addr) {
	d.peers = append(d.peers, udp.Endpoint{Addr: addr, Port: ManagementPort})
	// Push current state so late-added peers converge.
	for svc, s := range d.services {
		d.pushMirror(svc, s)
	}
}

// SetCongestionPolicy enables congestion-based eviction (see
// CongestionPolicy).
func (d *RedirectorDaemon) SetCongestionPolicy(p CongestionPolicy) { d.congestion = p }

// EnableLeases turns on lease-based membership: chain members whose
// heartbeats (see HostDaemon.StartHeartbeats) fall silent for expiry are
// removed proactively, giving idle services failure detection without any
// client traffic. Registration counts as the first heartbeat, so every
// member under this policy must heartbeat.
func (d *RedirectorDaemon) EnableLeases(expiry time.Duration) {
	d.leaseExpiry = expiry
	if d.leaseSweep == nil {
		d.leaseSweep = sim.NewTimer(d.sched, d.sweepLeases)
	}
	d.leaseSweep.Reset(expiry / 2)
}

func (d *RedirectorDaemon) sweepLeases() {
	now := d.sched.Now()
	for svc, s := range d.services {
		var expired []ipv4.Addr
		for _, host := range s.chain {
			seen, ok := s.lastSeen[host]
			if ok && now-seen > d.leaseExpiry {
				expired = append(expired, host)
			}
		}
		if len(expired) == 0 {
			continue
		}
		for _, host := range expired {
			d.stats.LeaseExpirations++
			removeHost(&s.chain, host)
			delete(s.lastSeen, host)
		}
		d.applyChain(svc, s)
		d.noteReconfig(svc, "lease-expired", expired)
		if d.onReconfig != nil {
			d.onReconfig(svc, expired)
		}
	}
	d.leaseSweep.Reset(d.leaseExpiry / 2)
}

// OnReconfig installs an observer for completed failure reconfigurations.
func (d *RedirectorDaemon) OnReconfig(fn func(svc core.ServiceID, failed []ipv4.Addr)) {
	d.onReconfig = fn
}

// Chain returns the current replica chain for svc (primary first).
func (d *RedirectorDaemon) Chain(svc core.ServiceID) []ipv4.Addr {
	s := d.services[svc]
	if s == nil {
		return nil
	}
	return append([]ipv4.Addr(nil), s.chain...)
}

func (d *RedirectorDaemon) onMessage(from udp.Endpoint, payload []byte) {
	msg, err := UnmarshalMessage(payload)
	if err != nil {
		return
	}
	switch msg.Type {
	case MsgRegister:
		d.register(msg)
	case MsgRegisterScale:
		d.stats.Registrations++
		d.rd.AddTarget(redirector.ServiceKey(msg.Service),
			redirector.Target{Host: msg.Host, Metric: int(msg.Metric)})
	case MsgLeave:
		d.leave(msg)
	case MsgSuspect:
		d.suspect(msg.Service)
	case MsgMirror:
		d.applyMirror(msg)
	case MsgHeartbeat:
		if s := d.services[msg.Service]; s != nil {
			s.noteAlive(msg.Host, d.sched.Now())
		}
	}
}

// register handles creation of primary and backup servers.
func (d *RedirectorDaemon) register(msg *Message) {
	s := d.services[msg.Service]
	if s == nil {
		s = &svcState{}
		d.services[msg.Service] = s
	}
	s.noteAlive(msg.Host, d.sched.Now())
	for _, h := range s.chain {
		if h == msg.Host {
			return // duplicate registration (retried datagram)
		}
	}
	d.stats.Registrations++
	if b := d.bus; b.Enabled(obs.KindRegistration) {
		b.Publish(obs.Event{
			Kind: obs.KindRegistration, Node: d.node,
			Service: msg.Service.String(),
			Detail:  fmt.Sprintf("%s as %s", msg.Host, msg.Mode),
		})
	}
	if msg.Mode == core.ModePrimary {
		s.chain = append([]ipv4.Addr{msg.Host}, s.chain...)
	} else {
		s.chain = append(s.chain, msg.Host)
	}
	d.applyChain(msg.Service, s)
}

// leave handles voluntary departure of a replica (FT chain member or
// scaling-mode target).
func (d *RedirectorDaemon) leave(msg *Message) {
	s := d.services[msg.Service]
	if s == nil {
		// Not an FT service here: drop any scaling-mode target.
		d.rd.RemoveTarget(redirector.ServiceKey(msg.Service), msg.Host)
		d.stats.Leaves++
		return
	}
	if removed := removeHost(&s.chain, msg.Host); !removed {
		return
	}
	d.stats.Leaves++
	d.applyChain(msg.Service, s)
	d.noteReconfig(msg.Service, "leave", []ipv4.Addr{msg.Host})
}

// suspect runs the failure-identification procedure: probe every chain
// member; the ones whose daemons never acknowledge are declared failed and
// removed, and the survivors receive their new chain positions. The paper
// notes identification is simple because a failure partitions the
// acknowledgment channel; probing from the redirector is the concrete
// mechanism here.
func (d *RedirectorDaemon) suspect(svc core.ServiceID) {
	s := d.services[svc]
	if s == nil || s.probing || len(s.chain) == 0 {
		return
	}
	d.stats.Suspicions++
	s.probing = true
	s.probeID++
	targets := append([]ipv4.Addr(nil), s.chain...)
	alive := make(map[ipv4.Addr]bool, len(targets))
	outstanding := len(targets)
	for _, host := range targets {
		host := host
		ping := Message{Type: MsgPing, Service: svc, Host: host, ProbeID: s.probeID}
		d.stats.ProbesSent++
		d.rel.Send(udp.Endpoint{Addr: host, Port: ManagementPort}, ping.Marshal(),
			func(delivered bool) {
				alive[host] = delivered
				outstanding--
				if outstanding == 0 {
					d.finishProbe(svc, s, targets, alive)
				}
			})
	}
}

func (d *RedirectorDaemon) finishProbe(svc core.ServiceID, s *svcState,
	targets []ipv4.Addr, alive map[ipv4.Addr]bool) {
	s.probing = false
	var failed []ipv4.Addr
	for _, host := range targets {
		if !alive[host] {
			failed = append(failed, host)
		}
	}
	if len(failed) == 0 {
		// All members alive: a false positive, or congestion somewhere in
		// the chain. Under the congestion policy, repeated strikes evict
		// the tail backup (never the primary): shrinking the chain removes
		// potential blockers until the flow recovers; an evicted server
		// can re-register once its congestion clears.
		if d.congestion.Strikes > 0 && len(s.chain) > 1 {
			now := d.sched.Now()
			cutoff := now - d.congestion.Window
			kept := s.aliveStrikes[:0]
			for _, ts := range s.aliveStrikes {
				if ts >= cutoff {
					kept = append(kept, ts)
				}
			}
			s.aliveStrikes = append(kept, now)
			if len(s.aliveStrikes) >= d.congestion.Strikes {
				s.aliveStrikes = s.aliveStrikes[:0]
				tail := s.chain[len(s.chain)-1]
				d.stats.CongestionEvictions++
				removeHost(&s.chain, tail)
				d.applyChain(svc, s)
				d.noteReconfig(svc, "congestion-evicted", []ipv4.Addr{tail})
				if d.onReconfig != nil {
					d.onReconfig(svc, []ipv4.Addr{tail})
				}
			}
		}
		return
	}
	for _, host := range failed {
		d.stats.HostsFailed++
		removeHost(&s.chain, host)
	}
	d.applyChain(svc, s)
	d.noteReconfig(svc, "failed", failed)
	if d.onReconfig != nil {
		d.onReconfig(svc, failed)
	}
}

// applyMirror installs a peer's FT entry into the local table
// (last-writer-wins by version).
func (d *RedirectorDaemon) applyMirror(msg *Message) {
	if last, ok := d.mirrored[msg.Service]; ok && int32(msg.ProbeID-last) <= 0 {
		return // stale or duplicate update
	}
	d.mirrored[msg.Service] = msg.ProbeID
	key := redirector.ServiceKey(msg.Service)
	if len(msg.Hosts) == 0 {
		d.rd.Remove(key)
		return
	}
	d.rd.SetFTReplicas(key, msg.Hosts[0], msg.Hosts[1:])
}

// pushMirror replicates the service's chain to every peer redirector.
func (d *RedirectorDaemon) pushMirror(svc core.ServiceID, s *svcState) {
	for _, peer := range d.peers {
		msg := Message{
			Type:    MsgMirror,
			Service: svc,
			ProbeID: s.version,
			Hosts:   append([]ipv4.Addr(nil), s.chain...),
		}
		d.rel.Send(peer, msg.Marshal(), nil)
	}
}

// applyChain synchronizes the redirector table with the chain and pushes
// each member its position.
func (d *RedirectorDaemon) applyChain(svc core.ServiceID, s *svcState) {
	d.stats.Reconfigs++
	s.version++
	defer d.pushMirror(svc, s)
	key := redirector.ServiceKey(svc)
	if len(s.chain) == 0 {
		d.rd.Remove(key)
		return
	}
	d.rd.SetFTReplicas(key, s.chain[0], s.chain[1:])
	for i, host := range s.chain {
		set := Message{
			Type:    MsgChainSet,
			Service: svc,
			Host:    host,
			Mode:    core.ModeBackup,
			Gated:   i < len(s.chain)-1,
		}
		if i == 0 {
			set.Mode = core.ModePrimary
		} else {
			set.Upstream = s.chain[i-1]
		}
		d.rel.Send(udp.Endpoint{Addr: host, Port: ManagementPort}, set.Marshal(), nil)
	}
}

// noteAlive records lease liveness for a member.
func (s *svcState) noteAlive(host ipv4.Addr, now time.Duration) {
	if s.lastSeen == nil {
		s.lastSeen = make(map[ipv4.Addr]time.Duration)
	}
	s.lastSeen[host] = now
}

func removeHost(chain *[]ipv4.Addr, host ipv4.Addr) bool {
	for i, h := range *chain {
		if h == host {
			*chain = append((*chain)[:i], (*chain)[i+1:]...)
			return true
		}
	}
	return false
}

// RelStats exposes the reliable layer's counters (diagnostics).
func (d *RedirectorDaemon) RelStats() (sent, acked, failed, dups uint64) {
	return d.rel.Stats()
}
