package rmp

import (
	"testing"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/netsim"
	"hydranet/internal/sim"
	"hydranet/internal/udp"
)

// relPair builds two directly linked hosts with reliable endpoints.
func relPair(t *testing.T, loss float64) (*sim.Scheduler, *Reliable, *Reliable,
	udp.Endpoint, udp.Endpoint, *[][]byte, *netsim.Link) {
	t.Helper()
	sched := sim.NewScheduler(51)
	nw := netsim.New(sched)
	a := nw.AddNode(netsim.NodeConfig{Name: "a"})
	b := nw.AddNode(netsim.NodeConfig{Name: "b"})
	link := nw.Connect(a, b, netsim.LinkConfig{Delay: time.Millisecond, Loss: loss})
	sa, sb := ipv4.NewStack(a, sched), ipv4.NewStack(b, sched)
	aAddr, bAddr := ipv4.MustParseAddr("10.0.0.1"), ipv4.MustParseAddr("10.0.0.2")
	sa.SetAddr(0, aAddr)
	sb.SetAddr(0, bAddr)
	sa.Routes().AddDefault(0)
	sb.Routes().AddDefault(0)
	ua, ub := udp.NewStack(sa), udp.NewStack(sb)

	var received [][]byte
	ra, err := NewReliable(ua, sched, aAddr, ManagementPort, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewReliable(ub, sched, bAddr, ManagementPort,
		func(_ udp.Endpoint, p []byte) { received = append(received, append([]byte(nil), p...)) })
	if err != nil {
		t.Fatal(err)
	}
	return sched, ra, rb, udp.Endpoint{Addr: aAddr, Port: ManagementPort},
		udp.Endpoint{Addr: bAddr, Port: ManagementPort}, &received, link
}

func TestReliableDelivery(t *testing.T) {
	sched, ra, _, _, epB, received, _ := relPair(t, 0)
	delivered := false
	ra.Send(epB, []byte("hello"), func(ok bool) { delivered = ok })
	sched.Run()
	if !delivered {
		t.Fatal("delivery not confirmed")
	}
	if len(*received) != 1 || string((*received)[0]) != "hello" {
		t.Fatalf("received %v", *received)
	}
}

func TestReliableSurvivesLoss(t *testing.T) {
	sched, ra, _, _, epB, received, _ := relPair(t, 0.4)
	confirmed := 0
	for i := 0; i < 10; i++ {
		ra.Send(epB, []byte{byte(i)}, func(ok bool) {
			if ok {
				confirmed++
			}
		})
	}
	sched.Run()
	// 40% loss with 4 attempts: essentially everything gets through.
	if confirmed < 8 {
		t.Fatalf("only %d of 10 confirmed under 40%% loss", confirmed)
	}
	if len(*received) < confirmed {
		t.Fatalf("receiver saw %d, sender confirmed %d", len(*received), confirmed)
	}
	// No duplicates surfaced to the application.
	seen := map[byte]int{}
	for _, p := range *received {
		seen[p[0]]++
		if seen[p[0]] > 1 {
			t.Fatalf("duplicate delivery of %d", p[0])
		}
	}
}

func TestReliableReportsFailure(t *testing.T) {
	sched, ra, _, _, epB, _, link := relPair(t, 0)
	link.SetLoss(1) // total partition
	result := make(chan bool, 1)
	ok := true
	ra.Send(epB, []byte("void"), func(delivered bool) { ok = delivered })
	sched.Run()
	if ok {
		t.Fatal("delivery into a partition reported success")
	}
	select {
	case <-result:
	default:
	}
	_, _, failed, _ := ra.Stats()
	if failed != 1 {
		t.Fatalf("failed = %d, want 1", failed)
	}
}

func TestReliableFailureLatencyBounded(t *testing.T) {
	// The probe result must arrive within the retry budget (4 × 250 ms),
	// which is what bounds reconfiguration latency.
	sched, ra, _, _, epB, _, link := relPair(t, 0)
	link.SetLoss(1)
	var failedAt time.Duration
	ra.Send(epB, []byte("probe"), func(delivered bool) {
		if !delivered {
			failedAt = sched.Now()
		}
	})
	sched.Run()
	if failedAt == 0 || failedAt > 1500*time.Millisecond {
		t.Fatalf("failure detected at %v, want within 1.5s", failedAt)
	}
}

func TestReliableDedupWindow(t *testing.T) {
	// Force duplicate DATA frames by simulating a lost ACK: send, then
	// replay the exact frame. The receiver must ack both but deliver once.
	sched, ra, rb, _, epB, received, _ := relPair(t, 0)
	ra.Send(epB, []byte("once"), nil)
	sched.Run()
	if len(*received) != 1 {
		t.Fatalf("received %d", len(*received))
	}
	// Replay via the dedup check directly.
	if !rb.isDup(ipv4.MustParseAddr("10.0.0.1"), 1) {
		t.Fatal("replayed sequence not detected as duplicate")
	}
	_ = ra
}
