package rmp

import (
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/sim"
	"hydranet/internal/udp"
)

// Reliable is the "form of reliable UDP" the management daemons use for
// message exchanges: sequence-numbered datagrams, positive acknowledgment,
// bounded retransmission, and duplicate suppression at the receiver.
type Reliable struct {
	sched     *sim.Scheduler
	udpStack  *udp.Stack
	localAddr ipv4.Addr
	port      uint16

	nextSeq  uint32
	pending  map[uint32]*relPending
	seen     map[ipv4.Addr][]uint32 // recent seqs per peer, for dedup
	onData   func(from udp.Endpoint, payload []byte)
	attempts int
	interval time.Duration

	// Stats
	sent, acked, failed, dupsDropped uint64
}

type relPending struct {
	timer    *sim.Timer
	dst      udp.Endpoint
	frame    []byte
	tries    int
	onResult func(delivered bool)
}

const (
	relData uint8 = 1
	relAck  uint8 = 2

	relHeaderLen   = 5
	relDedupWindow = 64
)

// NewReliable binds a reliable-UDP endpoint on (localAddr, port). onData is
// invoked once per distinct delivered datagram.
func NewReliable(udpStack *udp.Stack, sched *sim.Scheduler, localAddr ipv4.Addr, port uint16,
	onData func(from udp.Endpoint, payload []byte)) (*Reliable, error) {
	r := &Reliable{
		sched:     sched,
		udpStack:  udpStack,
		localAddr: localAddr,
		port:      port,
		pending:   make(map[uint32]*relPending),
		seen:      make(map[ipv4.Addr][]uint32),
		onData:    onData,
		attempts:  4,
		interval:  250 * time.Millisecond,
	}
	if err := udpStack.Bind(localAddr, port, r.receive); err != nil {
		return nil, err
	}
	return r, nil
}

// Stats returns datagrams sent, acknowledged, failed (all retries
// exhausted) and duplicates dropped.
func (r *Reliable) Stats() (sent, acked, failed, dups uint64) {
	return r.sent, r.acked, r.failed, r.dupsDropped
}

// Send transmits payload to dst with retries. onResult, if non-nil, reports
// whether the peer acknowledged within the retry budget.
func (r *Reliable) Send(dst udp.Endpoint, payload []byte, onResult func(delivered bool)) {
	r.nextSeq++
	seq := r.nextSeq
	frame := make([]byte, relHeaderLen+len(payload))
	frame[0] = relData
	putU32(frame[1:5], seq)
	copy(frame[relHeaderLen:], payload)
	p := &relPending{dst: dst, frame: frame, onResult: onResult}
	p.timer = sim.NewTimer(r.sched, func() { r.retry(seq) })
	r.pending[seq] = p
	r.sent++
	r.transmit(p)
}

func (r *Reliable) transmit(p *relPending) {
	p.tries++
	// A missing route is equivalent to loss; retries cover it.
	_ = r.udpStack.SendTo(r.localAddr, r.port, p.dst, p.frame) //nolint:errcheck
	p.timer.Reset(r.interval)
}

func (r *Reliable) retry(seq uint32) {
	p := r.pending[seq]
	if p == nil {
		return
	}
	if p.tries >= r.attempts {
		delete(r.pending, seq)
		r.failed++
		if p.onResult != nil {
			p.onResult(false)
		}
		return
	}
	r.transmit(p)
}

func (r *Reliable) receive(from udp.Endpoint, local ipv4.Addr, b []byte) {
	if len(b) < relHeaderLen {
		return
	}
	seq := getU32(b[1:5])
	switch b[0] {
	case relAck:
		p := r.pending[seq]
		if p == nil {
			return
		}
		p.timer.Stop()
		delete(r.pending, seq)
		r.acked++
		if p.onResult != nil {
			p.onResult(true)
		}
	case relData:
		// Always (re-)acknowledge, then deduplicate.
		ack := make([]byte, relHeaderLen)
		ack[0] = relAck
		putU32(ack[1:5], seq)
		_ = r.udpStack.SendTo(local, r.port, from, ack) //nolint:errcheck
		if r.isDup(from.Addr, seq) {
			r.dupsDropped++
			return
		}
		if r.onData != nil {
			r.onData(from, b[relHeaderLen:])
		}
	}
}

func (r *Reliable) isDup(peer ipv4.Addr, seq uint32) bool {
	window := r.seen[peer]
	for _, s := range window {
		if s == seq {
			return true
		}
	}
	window = append(window, seq)
	if len(window) > relDedupWindow {
		window = window[len(window)-relDedupWindow:]
	}
	r.seen[peer] = window
	return false
}
