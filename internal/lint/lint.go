// Package lint is a minimal, dependency-free static-analysis framework
// modelled on golang.org/x/tools/go/analysis. The simulator's correctness
// rests on conventions the compiler cannot see — frame-pool ownership,
// bit-identical deterministic replay, allocation-free disabled paths — and
// this package is the machinery that turns those conventions into
// compile-time checks.
//
// The API mirrors go/analysis deliberately (Analyzer, Pass, Diagnostic) so
// the custom analyzers would port to the real framework mechanically if the
// x/tools dependency ever becomes available; the toolchain here must build
// from the standard library alone.
//
// # Annotation grammar
//
// Source may carve out exceptions with hydralint directives, written as
// line comments:
//
//	//hydralint:nondeterministic <reason>
//	//hydralint:zeroalloc
//	//hydralint:domainsafe <reason>
//
// A directive applies to the statement on the same line, or — when it
// stands alone on its line — to the line below it. On a function
// declaration's doc comment it applies to the whole function (that is how
// zeroalloc call roots are marked). The nondeterministic directive requires
// a non-empty reason; an empty reason or an unknown directive name is
// itself a diagnostic, so annotations cannot silently rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and command-line flags.
	Name string
	// Doc is the analyzer's documentation, shown by hydralint -help.
	Doc string
	// Run applies the analyzer to a package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// NewPass assembles a pass over a loaded package, appending diagnostics to
// out. The checker and the test harness both build passes through it.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, out *[]Diagnostic) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, diags: out}
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Inspect walks every file in the package in depth-first order, calling fn
// for each node; fn returning false prunes the subtree.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// SortDiagnostics orders diagnostics by file, line, column, then message,
// so output is stable regardless of analyzer execution order.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// DirectivePrefix introduces a hydralint annotation comment.
const DirectivePrefix = "//hydralint:"

// Directive names understood by the suite.
const (
	DirNondeterministic = "nondeterministic"
	DirZeroAlloc        = "zeroalloc"
	DirDomainSafe       = "domainsafe"
)

// A Directive is one parsed //hydralint: annotation.
type Directive struct {
	Name   string // "nondeterministic", "zeroalloc", or an unknown name
	Reason string // text after the name, trimmed
	Pos    token.Pos
	// Line the directive governs: the comment's own line for a trailing
	// comment, the following line for a comment alone on its line.
	TargetLine int
	// Malformed holds a complaint when the directive does not parse
	// (unknown name, missing required reason); empty otherwise.
	Malformed string
}

// Directives extracts every hydralint directive from a file. The fset must
// be the one the file was parsed with.
func Directives(fset *token.FileSet, file *ast.File) []Directive {
	codeLines := codeEndLines(fset, file)
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, DirectivePrefix) {
				// A spaced "// hydralint:" is an ordinary comment by Go
				// directive convention, but flag the near-miss that was
				// clearly meant to be one: "//hydralint :" or "// hydralint:".
				if trimmed := strings.TrimSpace(strings.TrimPrefix(c.Text, "//")); strings.HasPrefix(trimmed, "hydralint:") && !strings.HasPrefix(c.Text, "//hydralint:") {
					out = append(out, Directive{
						Name: "", Pos: c.Pos(), TargetLine: -1,
						Malformed: "malformed hydralint directive: write //hydralint:<name> with no spaces",
					})
				}
				continue
			}
			rest := strings.TrimPrefix(c.Text, DirectivePrefix)
			name, reason, _ := strings.Cut(rest, " ")
			d := Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos()}
			line := fset.Position(c.Pos()).Line
			if codeLines[line] {
				d.TargetLine = line // trailing comment governs its own line
			} else {
				d.TargetLine = line + 1 // standalone comment governs the line below
			}
			switch name {
			case DirNondeterministic:
				if d.Reason == "" {
					d.Malformed = "//hydralint:nondeterministic requires a reason (//hydralint:nondeterministic <why this is safe>)"
				}
			case DirZeroAlloc:
				// Reason optional.
			case DirDomainSafe:
				if d.Reason == "" {
					d.Malformed = "//hydralint:domainsafe requires a reason (//hydralint:domainsafe <why this cross-domain access is safe>)"
				}
			default:
				d.Malformed = fmt.Sprintf("unknown hydralint directive %q (known: nondeterministic, zeroalloc, domainsafe)", name)
			}
			out = append(out, d)
		}
	}
	return out
}

// codeEndLines returns the set of lines on which some non-comment node
// ends. A line comment on such a line trails code (nothing can follow a
// line comment), so the directive governs that line rather than the next.
func codeEndLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// DirectiveIndex answers "is this line covered by a well-formed directive?"
// queries for one file.
type DirectiveIndex struct {
	byLine map[int]*Directive
	all    []Directive
}

// IndexDirectives builds a DirectiveIndex for a file.
func IndexDirectives(fset *token.FileSet, file *ast.File) *DirectiveIndex {
	idx := &DirectiveIndex{byLine: map[int]*Directive{}}
	idx.all = Directives(fset, file)
	for i := range idx.all {
		d := &idx.all[i]
		if d.Malformed == "" && d.TargetLine >= 0 {
			idx.byLine[d.TargetLine] = d
		}
	}
	return idx
}

// Covering returns the well-formed directive named name governing the line
// of pos, or nil.
func (idx *DirectiveIndex) Covering(fset *token.FileSet, pos token.Pos, name string) *Directive {
	d := idx.byLine[fset.Position(pos).Line]
	if d != nil && d.Name == name {
		return d
	}
	return nil
}

// WellFormed returns every directive in the file that parsed cleanly, in
// source order. Analyzers use it to audit annotations: a well-formed
// directive that never suppresses a diagnostic is stale.
func (idx *DirectiveIndex) WellFormed() []*Directive {
	var out []*Directive
	for i := range idx.all {
		if idx.all[i].Malformed == "" {
			out = append(out, &idx.all[i])
		}
	}
	return out
}

// Malformed returns every directive in the file that failed to parse.
func (idx *DirectiveIndex) Malformed() []Directive {
	var out []Directive
	for _, d := range idx.all {
		if d.Malformed != "" {
			out = append(out, d)
		}
	}
	return out
}

// FuncDirective reports whether fn (a declaration) carries the named
// well-formed directive, either in its doc comment or on the line directly
// above its declaration.
func FuncDirective(fset *token.FileSet, idx *DirectiveIndex, fn *ast.FuncDecl, name string) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if strings.HasPrefix(c.Text, DirectivePrefix+name) {
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				n, _, _ := strings.Cut(rest, " ")
				if n == name {
					return true
				}
			}
		}
	}
	return idx.Covering(fset, fn.Pos(), name) != nil
}

// PathHasSuffixSegments reports whether path's trailing slash-separated
// segments equal suffix's segments ("hydranet/internal/sim" matches
// "internal/sim" but "internal/simulator" does not).
func PathHasSuffixSegments(path, suffix string) bool {
	ps := strings.Split(path, "/")
	ss := strings.Split(suffix, "/")
	if len(ss) > len(ps) {
		return false
	}
	tail := ps[len(ps)-len(ss):]
	for i := range ss {
		if tail[i] != ss[i] {
			return false
		}
	}
	return true
}
