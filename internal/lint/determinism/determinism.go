// Package determinism enforces the simulator's bit-identical-replay
// contract. Flight-recorder dumps, BENCH_core baselines, and
// failure-injection reproductions are only trustworthy because a run with
// a given seed and topology is exactly reproducible; one stray wall-clock
// read or map-iteration-ordered emission silently breaks every one of
// them. The analyzer forbids, inside the simulation core packages:
//
//   - wall-clock and timer reads (time.Now, time.Since, time.Sleep, ...)
//   - the global math/rand and math/rand/v2 sources (unseeded; the
//     scheduler's seeded *rand.Rand is the only sanctioned randomness)
//   - any use of crypto/rand
//   - ranging over a map (iteration order is randomized per run)
//   - spawning goroutines and select statements (scheduling order is not
//     part of the virtual clock)
//
// A site that is genuinely order-insensitive — a commutative sum, a
// collect-then-sort loop — can be allowed with an annotation that names
// its justification:
//
//	//hydralint:nondeterministic <reason>
//
// The reason is mandatory; an annotation without one, or an unknown
// directive name anywhere in the repository, is reported by this analyzer
// so stale or typo'd exemptions cannot accumulate.
//
// # Domain-partition fence
//
// Inside internal/netsim the analyzer additionally enforces the parallel
// core's synchronization-domain contract (documented on netsim.domainRT):
// worker-context code runs concurrently with other domains, and the only
// sanctioned channel between domains is the locked hand-off inbox.
// Concretely:
//
//   - The Network's shared singletons — its fields sched, pool, and bus —
//     may be touched only by Network's own methods (the serial path and
//     coordinator-context orchestration). Everything else must reach the
//     scheduler, pool, and bus through its domain (nd.dom.sched, ...): a
//     node event that schedules on the Network's scheduler or allocates
//     from the shared pool races with other domains' workers.
//   - An inbox's entries may be read or written only while that inbox's
//     mu is held. The check is flow-sensitive: a must-analysis over the
//     function's control-flow graph (internal/lint/ir) tracks the set of
//     inbox mutexes held on every path, so a lock taken on only one
//     branch, or released before the access, is caught — and a lock held
//     through a defer-unlock or on both arms of a branch is correctly
//     credited. Locks and accesses pair on the receiver's rendered source
//     text, so an alias like `in := &d.inbox; in.mu.Lock()` pairs with
//     `in.entries`. Function literals are analyzed as their own
//     functions: lock state never leaks across a closure boundary.
//
// A site that is genuinely safe — coordinator-context code running while
// every worker is quiescent — can be exempted with
//
//	//hydralint:domainsafe <reason>
//
// and the reason is again mandatory.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"hydranet/internal/lint"
	"hydranet/internal/lint/ir"
)

// Analyzer is the determinism checker.
var Analyzer = &lint.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, global rand, map ranges, and goroutines in the deterministic simulation core; fence cross-domain state access in netsim",
	Run:  run,
}

// coveredPkgs are the package-path suffixes (segment-aligned) whose code
// must be deterministic. The lint framework and CLIs are exempt; test
// files are never loaded.
var coveredPkgs = []string{
	"internal/sim",
	"internal/netsim",
	"internal/tcp",
	"internal/ipv4",
	"internal/redirector",
	// The telemetry sampler runs on the virtual clock inside the
	// simulation loop: a wall-clock read or map-ordered emission there
	// would make series exports (and hydrascope diffs of them) flap.
	"internal/series",
	// The invariant monitor's verdicts must be byte-identical across
	// worker counts: a map-ordered violation emission or wall-clock stamp
	// would break audit-report parity.
	"internal/invariant",
}

// bannedTimeFuncs read the wall clock or the runtime timer heap.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// bannedGlobalRand are math/rand (and v2) package-level functions that
// draw from the shared, unseeded source. Constructors (New, NewSource,
// NewPCG, NewChaCha8) are fine: they feed explicitly seeded generators.
var bannedGlobalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint32": true, "Uint64": true, "Uint64N": true, "UintN": true, "Uint": true,
	"IntN": true, "Int32": true, "Int32N": true, "N": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func run(pass *lint.Pass) error {
	covered := false
	for _, suffix := range coveredPkgs {
		if lint.PathHasSuffixSegments(pass.Pkg.Path(), suffix) {
			covered = true
			break
		}
	}
	fenced := lint.PathHasSuffixSegments(pass.Pkg.Path(), "internal/netsim")

	for _, file := range pass.Files {
		idx := lint.IndexDirectives(pass.Fset, file)
		// Directive hygiene applies to every package hydralint sees, not
		// just the deterministic core.
		for _, d := range idx.Malformed() {
			pass.Reportf(d.Pos, "%s", d.Malformed)
		}
		// used tracks the annotations that suppressed (or stood ready to
		// suppress) a diagnostic; whatever remains unused is stale — the
		// construct it excused was removed or rewritten — and reported
		// below so annotations cannot outlive their reasons.
		used := map[*lint.Directive]bool{}
		if fenced {
			domainSafe := func(pos token.Pos) bool {
				if d := idx.Covering(pass.Fset, pos, lint.DirDomainSafe); d != nil {
					used[d] = true
					return true
				}
				return false
			}
			checkDomainFence(pass, file, domainSafe)
		}
		if !covered {
			continue
		}
		allowed := func(pos token.Pos) bool {
			if d := idx.Covering(pass.Fset, pos, lint.DirNondeterministic); d != nil {
				used[d] = true
				return true
			}
			return false
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n, allowed)
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !allowed(n.Pos()) {
						pass.Reportf(n.Pos(), "map iteration order is nondeterministic; sort keys or annotate with //hydralint:nondeterministic <reason>")
					}
				}
			case *ast.GoStmt:
				if !allowed(n.Pos()) {
					pass.Reportf(n.Pos(), "goroutine spawned in the deterministic simulation core; schedule work on the virtual clock instead")
				}
			case *ast.SelectStmt:
				if !allowed(n.Pos()) {
					pass.Reportf(n.Pos(), "select statement in the deterministic simulation core; case choice is scheduler-dependent")
				}
			}
			return true
		})
		for _, d := range idx.WellFormed() {
			if used[d] {
				continue
			}
			switch d.Name {
			case lint.DirNondeterministic:
				pass.Reportf(d.Pos, "stale //hydralint:nondeterministic annotation: the line it governs has no nondeterministic construct to excuse; delete it")
			case lint.DirDomainSafe:
				if fenced {
					pass.Reportf(d.Pos, "stale //hydralint:domainsafe annotation: the line it governs has no cross-domain access to excuse; delete it")
				}
			}
		}
	}
	return nil
}

func checkCall(pass *lint.Pass, call *ast.CallExpr, allowed func(token.Pos) bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	// Only package-level selector calls matter: methods on a seeded
	// *rand.Rand have a receiver and are the sanctioned path.
	if _, isPkgName := pass.TypesInfo.Uses[identOf(sel.X)].(*types.PkgName); !isPkgName {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if bannedTimeFuncs[obj.Name()] && !allowed(call.Pos()) {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock; use the scheduler's virtual clock (sim.Scheduler.Now)", obj.Name())
		}
	case "math/rand", "math/rand/v2":
		if bannedGlobalRand[obj.Name()] && !allowed(call.Pos()) {
			pass.Reportf(call.Pos(), "global rand.%s is unseeded and nondeterministic; use the scheduler's seeded source (sim.Scheduler.Rand)", obj.Name())
		}
	case "crypto/rand":
		if !allowed(call.Pos()) {
			pass.Reportf(call.Pos(), "crypto/rand.%s is nondeterministic by design; the simulation core must use the scheduler's seeded source", obj.Name())
		}
	}
}

// identOf unwraps x to its identifier, if it is one.
func identOf(x ast.Expr) *ast.Ident {
	id, _ := x.(*ast.Ident)
	return id
}

// --- domain-partition fence (internal/netsim only) ---

// fencedNetworkFields are Network's shared singletons: worker-context code
// must use its domain's copies instead.
var fencedNetworkFields = map[string]bool{
	"sched": true, "pool": true, "bus": true,
}

// checkDomainFence enforces the synchronization-domain contract on one
// file: Network's shared sched/pool/bus stay inside Network methods, and
// inbox entries are only touched under the inbox mutex.
func checkDomainFence(pass *lint.Pass, file *ast.File, allowed func(token.Pos) bool) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		recvNetwork := false
		if fn.Recv != nil && len(fn.Recv.List) == 1 {
			recvNetwork = isNetwork(pass.TypesInfo.TypeOf(fn.Recv.List[0].Type))
		}

		ast.Inspect(fn.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fencedNetworkFields[sel.Sel.Name] && isNetwork(pass.TypesInfo.TypeOf(sel.X)) {
				if !recvNetwork && !allowed(sel.Pos()) {
					pass.Reportf(sel.Pos(), "access to the Network's shared %s outside a Network method: worker-context code must use its domain's copy (nd.dom.%s), and cross-domain effects must go through the hand-off inbox; annotate //hydralint:domainsafe <reason> if this runs with every worker quiescent", sel.Sel.Name, sel.Sel.Name)
				}
			}
			return true
		})

		checkInboxFence(pass, fn.Body, allowed)
	}
}

// heldInboxes is the must-analysis fact for the inbox fence: the rendered
// receiver texts whose inbox mutex is held on EVERY path reaching this
// program point. Join is set intersection.
type heldInboxes map[string]bool

// checkInboxFence runs the flow-sensitive locked-region analysis over one
// function body: inbox entries may be touched only at points where the
// owning mutex is must-held. Deferred unlocks run at function exit, after
// every access, so DeferStmt elements do not release; function literals
// are independent functions and are fenced recursively with a fresh
// (empty) lock state.
func checkInboxFence(pass *lint.Pass, body *ast.BlockStmt, allowed func(token.Pos) bool) {
	cfg := ir.Build(body)

	transfer := func(elem ast.Node, f heldInboxes) heldInboxes {
		if _, isDefer := elem.(*ast.DeferStmt); isDefer {
			return f // a deferred Unlock releases at Exit, not here
		}
		ir.Inspect(elem, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false // closures are their own functions
			}
			base, locks, ok := inboxMuCall(pass, n)
			if !ok {
				return true
			}
			if locks {
				f[base] = true
			} else {
				delete(f, base)
			}
			return true
		})
		return f
	}

	p := ir.Problem[heldInboxes]{
		Lattice: ir.Lattice[heldInboxes]{
			Join: func(a, b heldInboxes) heldInboxes {
				out := heldInboxes{}
				for k := range a {
					if b[k] {
						out[k] = true
					}
				}
				return out
			},
			Equal: func(a, b heldInboxes) bool {
				if len(a) != len(b) {
					return false
				}
				for k := range a {
					if !b[k] {
						return false
					}
				}
				return true
			},
			Clone: func(f heldInboxes) heldInboxes {
				out := make(heldInboxes, len(f))
				for k := range f {
					out[k] = true
				}
				return out
			},
		},
		Boundary: heldInboxes{},
		Transfer: transfer,
	}
	in, reachable := ir.Forward(cfg, p)

	for _, b := range cfg.Blocks {
		if !reachable[b] {
			continue
		}
		f := p.Lattice.Clone(in[b])
		for _, e := range b.Elems {
			ir.Inspect(e, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "entries" || !isInboxShape(pass.TypesInfo.TypeOf(sel.X)) {
					return true
				}
				if allowed(sel.Pos()) {
					return true
				}
				base := exprString(sel.X)
				if !f[base] {
					pass.Reportf(sel.Pos(), "inbox entries accessed without %s.mu.Lock held on every path to this point: cross-domain hand-offs must use the locked inbox protocol; annotate //hydralint:domainsafe <reason> if the lock is provably unnecessary here", base)
				}
				return true
			})
			f = transfer(e, f)
		}
	}

	// Fence each function literal independently: lock state does not flow
	// across a closure boundary in either direction.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkInboxFence(pass, lit.Body, allowed)
			return false // nested literals handled by the recursive call
		}
		return true
	})
}

// inboxMuCall recognizes `<expr>.mu.Lock()` / `<expr>.mu.Unlock()` on an
// inbox-shaped receiver and returns the rendered receiver text.
func inboxMuCall(pass *lint.Pass, n ast.Node) (base string, locks, ok bool) {
	call, isCall := n.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock") {
		return "", false, false
	}
	mu, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel || mu.Sel.Name != "mu" || !isInboxShape(pass.TypesInfo.TypeOf(mu.X)) {
		return "", false, false
	}
	base = exprString(mu.X)
	if base == "" {
		return "", false, false
	}
	return base, sel.Sel.Name == "Lock", true
}

// isNetwork reports whether t is netsim's Network (or a pointer to it) —
// any package named netsim, so analyzer testdata can supply its own.
func isNetwork(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Network" && obj.Pkg() != nil && obj.Pkg().Name() == "netsim"
}

// isInboxShape reports whether t is (a pointer to) the inbox's anonymous
// struct shape: a struct with an `entries` field guarded by a sync.Mutex
// field named `mu`.
func isInboxShape(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	var hasMu, hasEntries bool
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch f.Name() {
		case "mu":
			if n, ok := f.Type().(*types.Named); ok {
				obj := n.Obj()
				if obj.Name() == "Mutex" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
					hasMu = true
				}
			}
		case "entries":
			hasEntries = true
		}
	}
	return hasMu && hasEntries
}

// exprString renders the simple expression forms a lock receiver can take;
// anything fancier returns "" and never pairs.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := exprString(e.X); x != "" {
			return x + "." + e.Sel.Name
		}
	case *ast.StarExpr:
		if x := exprString(e.X); x != "" {
			return "*" + x
		}
	case *ast.IndexExpr:
		if x := exprString(e.X); x != "" {
			if i := exprString(e.Index); i != "" {
				return x + "[" + i + "]"
			}
		}
	case *ast.BasicLit:
		return e.Value
	}
	return ""
}
