// Package determinism enforces the simulator's bit-identical-replay
// contract. Flight-recorder dumps, BENCH_core baselines, and
// failure-injection reproductions are only trustworthy because a run with
// a given seed and topology is exactly reproducible; one stray wall-clock
// read or map-iteration-ordered emission silently breaks every one of
// them. The analyzer forbids, inside the simulation core packages:
//
//   - wall-clock and timer reads (time.Now, time.Since, time.Sleep, ...)
//   - the global math/rand and math/rand/v2 sources (unseeded; the
//     scheduler's seeded *rand.Rand is the only sanctioned randomness)
//   - any use of crypto/rand
//   - ranging over a map (iteration order is randomized per run)
//   - spawning goroutines and select statements (scheduling order is not
//     part of the virtual clock)
//
// A site that is genuinely order-insensitive — a commutative sum, a
// collect-then-sort loop — can be allowed with an annotation that names
// its justification:
//
//	//hydralint:nondeterministic <reason>
//
// The reason is mandatory; an annotation without one, or an unknown
// directive name anywhere in the repository, is reported by this analyzer
// so stale or typo'd exemptions cannot accumulate.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"hydranet/internal/lint"
)

// Analyzer is the determinism checker.
var Analyzer = &lint.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, global rand, map ranges, and goroutines in the deterministic simulation core",
	Run:  run,
}

// coveredPkgs are the package-path suffixes (segment-aligned) whose code
// must be deterministic. The lint framework and CLIs are exempt; test
// files are never loaded.
var coveredPkgs = []string{
	"internal/sim",
	"internal/netsim",
	"internal/tcp",
	"internal/ipv4",
	"internal/redirector",
	// The telemetry sampler runs on the virtual clock inside the
	// simulation loop: a wall-clock read or map-ordered emission there
	// would make series exports (and hydrascope diffs of them) flap.
	"internal/series",
}

// bannedTimeFuncs read the wall clock or the runtime timer heap.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// bannedGlobalRand are math/rand (and v2) package-level functions that
// draw from the shared, unseeded source. Constructors (New, NewSource,
// NewPCG, NewChaCha8) are fine: they feed explicitly seeded generators.
var bannedGlobalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint32": true, "Uint64": true, "Uint64N": true, "UintN": true, "Uint": true,
	"IntN": true, "Int32": true, "Int32N": true, "N": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func run(pass *lint.Pass) error {
	covered := false
	for _, suffix := range coveredPkgs {
		if lint.PathHasSuffixSegments(pass.Pkg.Path(), suffix) {
			covered = true
			break
		}
	}

	for _, file := range pass.Files {
		idx := lint.IndexDirectives(pass.Fset, file)
		// Directive hygiene applies to every package hydralint sees, not
		// just the deterministic core.
		for _, d := range idx.Malformed() {
			pass.Reportf(d.Pos, "%s", d.Malformed)
		}
		if !covered {
			continue
		}
		allowed := func(pos token.Pos) bool {
			return idx.Covering(pass.Fset, pos, lint.DirNondeterministic) != nil
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n, allowed)
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !allowed(n.Pos()) {
						pass.Reportf(n.Pos(), "map iteration order is nondeterministic; sort keys or annotate with //hydralint:nondeterministic <reason>")
					}
				}
			case *ast.GoStmt:
				if !allowed(n.Pos()) {
					pass.Reportf(n.Pos(), "goroutine spawned in the deterministic simulation core; schedule work on the virtual clock instead")
				}
			case *ast.SelectStmt:
				if !allowed(n.Pos()) {
					pass.Reportf(n.Pos(), "select statement in the deterministic simulation core; case choice is scheduler-dependent")
				}
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *lint.Pass, call *ast.CallExpr, allowed func(token.Pos) bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	// Only package-level selector calls matter: methods on a seeded
	// *rand.Rand have a receiver and are the sanctioned path.
	if _, isPkgName := pass.TypesInfo.Uses[identOf(sel.X)].(*types.PkgName); !isPkgName {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if bannedTimeFuncs[obj.Name()] && !allowed(call.Pos()) {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock; use the scheduler's virtual clock (sim.Scheduler.Now)", obj.Name())
		}
	case "math/rand", "math/rand/v2":
		if bannedGlobalRand[obj.Name()] && !allowed(call.Pos()) {
			pass.Reportf(call.Pos(), "global rand.%s is unseeded and nondeterministic; use the scheduler's seeded source (sim.Scheduler.Rand)", obj.Name())
		}
	case "crypto/rand":
		if !allowed(call.Pos()) {
			pass.Reportf(call.Pos(), "crypto/rand.%s is nondeterministic by design; the simulation core must use the scheduler's seeded source", obj.Name())
		}
	}
}

// identOf unwraps x to its identifier, if it is one.
func identOf(x ast.Expr) *ast.Ident {
	id, _ := x.(*ast.Ident)
	return id
}
