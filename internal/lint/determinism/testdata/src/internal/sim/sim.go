// Package sim is determinism-analyzer testdata. Its import path ends in
// internal/sim, so it lands inside the analyzer's covered set; the
// seeded violations below must each be caught, and the annotated or
// sanctioned patterns must stay clean.
package sim

import (
	crand "crypto/rand"
	"math/rand"
	"sort"
	"time"
)

var sink any

// wallClock exercises the banned time functions.
func wallClock() {
	t := time.Now()             // want "time.Now reads the wall clock"
	sink = time.Since(t)        // want "time.Since reads the wall clock"
	time.Sleep(time.Nanosecond) // want "time.Sleep reads the wall clock"

	// Pure duration arithmetic never touches the wall clock: clean.
	var d time.Duration = 5 * time.Millisecond
	sink = d + time.Second
}

// globalRand exercises the unseeded shared source.
func globalRand() {
	sink = rand.Intn(10) // want "global rand.Intn is unseeded"
}

func globalRandShuffle() {
	rand.Shuffle(3, func(i, j int) {}) // want "global rand.Shuffle is unseeded"
}

// seededRand is the sanctioned pattern: an explicit source, methods on the
// instance. Clean.
func seededRand() {
	r := rand.New(rand.NewSource(42))
	sink = r.Intn(10)
	sink = r.Float64()
}

// cryptoRand is nondeterministic by construction.
func cryptoRand() {
	var buf [8]byte
	crand.Read(buf[:]) // want "crypto/rand.Read is nondeterministic by design"
}

// mapOrder exercises map-range detection and its annotation escape hatch.
func mapOrder(m map[string]int) []string {
	for k := range m { // want "map iteration order is nondeterministic"
		sink = k
	}

	// Trailing annotation with a reason: clean.
	total := 0
	for _, v := range m { //hydralint:nondeterministic commutative sum; order cannot affect the total
		total += v
	}
	sink = total

	// Standalone annotation on the line above: clean.
	var keys []string
	//hydralint:nondeterministic collect-then-sort; order is repaired below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Ranging over a slice is always fine.
	for _, k := range keys {
		sink = k
	}
	return keys
}

// concurrency exercises the goroutine and select bans.
func concurrency(ch chan int) {
	go func() {}() // want "goroutine spawned in the deterministic simulation core"

	select { // want "select statement in the deterministic simulation core"
	case v := <-ch:
		sink = v
	default:
	}
}

// annotations exercises directive hygiene: a reasonless nondeterministic
// annotation and an unknown directive name are themselves diagnostics.
func annotations(m map[int]int) {
	for k := range m { /* want "requires a reason" "map iteration order is nondeterministic" */ //hydralint:nondeterministic
		sink = k
	}
	var _ = 0 /* want "unknown hydralint directive" */ //hydralint:fastpath because reasons
}
