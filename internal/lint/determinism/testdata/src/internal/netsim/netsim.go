// Package netsim is domain-fence testdata. Its import path ends in
// internal/netsim, so the determinism analyzer applies the
// synchronization-domain fence to it; the seeded violations below must
// each be caught, and the sanctioned per-domain patterns must stay clean.
package netsim

import "sync"

type scheduler struct{}

func (s *scheduler) At(t int, fn func()) {}

type pool struct{}

func (p *pool) Get(n int) []byte { return nil }

type bus struct{}

func (b *bus) Publish(v int) {}

// Network mirrors the real fabric's shape: shared singletons plus
// per-domain runtimes.
type Network struct {
	sched *scheduler
	pool  *pool
	bus   *bus
	doms  []*domainRT
}

type domainRT struct {
	net   *Network
	sched *scheduler
	pool  *pool
	bus   *bus
	inbox struct {
		mu      sync.Mutex
		entries []int
	}
}

// Node belongs to exactly one domain.
type Node struct {
	net *Network
	dom *domainRT
}

// Scheduler is a Network method: the serial path and coordinator-context
// orchestration own the shared singletons. Clean.
func (n *Network) Scheduler() *scheduler { return n.sched }

// Quiesce is a Network method too; touching every domain's inbox under its
// lock is the sanctioned protocol. Clean.
func (n *Network) Quiesce() {
	for _, d := range n.doms {
		d.inbox.mu.Lock()
		d.inbox.entries = d.inbox.entries[:0]
		d.inbox.mu.Unlock()
	}
}

// domainLocal is the sanctioned worker-context pattern: everything through
// the node's own domain. Clean.
func (nd *Node) domainLocal() {
	fb := nd.dom.pool.Get(64)
	_ = fb
	nd.dom.sched.At(10, func() {})
	nd.dom.bus.Publish(1)
}

// sharedSched schedules on the Network's shared scheduler from node
// context: races with other domains' workers.
func (nd *Node) sharedSched() {
	nd.net.sched.At(10, func() {}) // want "access to the Network's shared sched outside a Network method"
}

// sharedPool allocates from the shared pool in node context.
func (nd *Node) sharedPool() []byte {
	return nd.net.pool.Get(64) // want "access to the Network's shared pool outside a Network method"
}

// sharedBus publishes on the shared bus in node context.
func (nd *Node) sharedBus() {
	nd.net.bus.Publish(2) // want "access to the Network's shared bus outside a Network method"
}

// freeFunc is not a method at all; reaching through a *Network parameter
// is fenced the same way.
func freeFunc(n *Network) {
	n.sched.At(0, func() {}) // want "access to the Network's shared sched outside a Network method"
}

// annotated carves out a coordinator-context exception with a reason.
// Clean.
func annotated(n *Network) {
	n.sched.At(0, func() {}) //hydralint:domainsafe runs between windows, workers quiescent
}

// unlockedInbox bypasses the hand-off protocol: a direct append into a
// foreign domain's inbox without the lock.
func (nd *Node) unlockedInbox(dst *domainRT, v int) {
	dst.inbox.entries = append(dst.inbox.entries, v) // want "inbox entries accessed without dst.inbox.mu.Lock" "inbox entries accessed without dst.inbox.mu.Lock"
}

// lockedInbox is the sanctioned hand-off flush. Clean.
func (nd *Node) lockedInbox(dst *domainRT, v int) {
	dst.inbox.mu.Lock()
	dst.inbox.entries = append(dst.inbox.entries, v)
	dst.inbox.mu.Unlock()
}

// aliasedLock pairs the lock and the access through the same alias, like
// the real StageHandoffs. Clean.
func (d *domainRT) aliasedLock() int {
	in := &d.inbox
	in.mu.Lock()
	n := len(in.entries)
	in.mu.Unlock()
	return n
}

// mismatchedAlias locks through one name but reads through another: the
// analysis pairs on rendered receiver text, not points-to facts, so the
// read is flagged — rewrite to use one name (or annotate).
func (d *domainRT) mismatchedAlias() int {
	in := &d.inbox
	d.inbox.mu.Lock()
	n := len(in.entries) // want "inbox entries accessed without in.mu.Lock"
	d.inbox.mu.Unlock()
	return n
}

// annotatedInbox documents why the lock is unnecessary. Clean.
func (d *domainRT) annotatedInbox() int {
	return len(d.inbox.entries) //hydralint:domainsafe coordinator context, every worker quiescent
}

// branchLock takes the lock on only one branch: at the access the mutex
// is not held on every path, so the flow-sensitive fence flags it.
func (d *domainRT) branchLock(c bool) int {
	if c {
		d.inbox.mu.Lock()
	}
	n := len(d.inbox.entries) // want "inbox entries accessed without d.inbox.mu.Lock"
	if c {
		d.inbox.mu.Unlock()
	}
	return n
}

// releasedTooEarly unlocks before the read: a purely lexical "Lock
// earlier in this function" check would accept this, the locked-region
// analysis does not.
func (d *domainRT) releasedTooEarly() int {
	d.inbox.mu.Lock()
	d.inbox.mu.Unlock()
	return len(d.inbox.entries) // want "inbox entries accessed without d.inbox.mu.Lock"
}

// deferUnlock releases at return, after every access. Clean.
func (d *domainRT) deferUnlock() int {
	d.inbox.mu.Lock()
	defer d.inbox.mu.Unlock()
	return len(d.inbox.entries)
}

// bothBranchesLock acquires on every path into the merge, so the access
// is must-protected. Clean.
func (d *domainRT) bothBranchesLock(c bool) int {
	if c {
		d.inbox.mu.Lock()
	} else {
		d.inbox.mu.Lock()
	}
	n := len(d.inbox.entries)
	d.inbox.mu.Unlock()
	return n
}

// lockPerIteration re-acquires inside the loop body before each touch,
// like the real StageHandoffs. Clean.
func (d *domainRT) lockPerIteration(others []*domainRT) {
	for _, o := range others {
		o.inbox.mu.Lock()
		o.inbox.entries = o.inbox.entries[:0]
		o.inbox.mu.Unlock()
	}
}

// closureNoLeak: holding the lock while building a closure does not bless
// the closure's own accesses — it may run long after the unlock.
func (d *domainRT) closureNoLeak() func() int {
	d.inbox.mu.Lock()
	fn := func() int {
		return len(d.inbox.entries) // want "inbox entries accessed without d.inbox.mu.Lock"
	}
	d.inbox.mu.Unlock()
	return fn
}

// staleNondeterministic carries an annotation on a line with nothing
// nondeterministic: the construct it once excused is gone, and the stale
// excuse must not linger to bless a future unrelated edit.
func staleNondeterministic() int {
	sum := 1 + 2 /* want "stale //hydralint:nondeterministic annotation" */ //hydralint:nondeterministic excuses nothing on this line
	return sum
}

// staleDomainSafe is the same rot for the domain fence: the annotated line
// touches no cross-domain state.
func staleDomainSafe() int {
	n := 3 /* want "stale //hydralint:domainsafe annotation" */ //hydralint:domainsafe excuses nothing on this line
	return n
}

// usedAnnotations stays clean: both directives still govern the construct
// they excuse.
func usedAnnotations(m map[string]int) int {
	total := 0
	for _, v := range m { //hydralint:nondeterministic commutative sum over window counters
		total += v
	}
	return total
}
