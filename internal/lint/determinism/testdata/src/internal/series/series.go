// Package series is determinism-analyzer testdata. Its import path ends
// in internal/series, so the telemetry sampler's package is inside the
// covered set: the sampler runs on the virtual clock inside the simulation
// loop, and the tempting mistakes below — stamping samples with the wall
// clock, jittering the cadence from the global source, emitting a series
// set in map order — must each be caught.
package series

import (
	"math/rand"
	"sort"
	"time"
)

var sink any

type point struct {
	t time.Duration
	v float64
}

type set struct {
	byName map[string]*[]point
}

// observeWallClock stamps a sample with the host's clock instead of the
// scheduler's virtual now.
func observeWallClock(pts *[]point, v float64) {
	*pts = append(*pts, point{t: time.Duration(time.Now().UnixNano()), v: v}) // want "time.Now reads the wall clock"
}

// jitterCadence spreads sampler ticks with the unseeded global source.
func jitterCadence(every time.Duration) time.Duration {
	return every + time.Duration(rand.Int63n(int64(every))) // want "global rand.Int63n is unseeded"
}

// exportUnordered walks the series map directly: export order would change
// run to run, and identical-seed runs would no longer diff clean.
func exportUnordered(s *set) []string {
	var names []string
	for name := range s.byName { // want "map iteration order is nondeterministic"
		names = append(names, name)
	}
	return names
}

// exportSorted is the sanctioned shape: collect under an annotation that
// names why the order doesn't matter, then repair it.
func exportSorted(s *set) []string {
	var names []string
	//hydralint:nondeterministic collect-then-sort; order is repaired below
	for name := range s.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// asyncFlush moves the export off the simulation goroutine — scheduling
// order is not part of the virtual clock.
func asyncFlush(s *set) {
	go func() { sink = exportSorted(s) }() // want "goroutine spawned in the deterministic simulation core"
}

// virtualClockMath is pure duration arithmetic: clean.
func virtualClockMath(now, every time.Duration) time.Duration {
	return now + every
}
