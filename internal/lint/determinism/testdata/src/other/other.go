// Package other is determinism-analyzer testdata for the *uncovered*
// case: its import path matches none of the simulation-core suffixes, so
// wall clocks, global rand, and map ranges are all permitted — only
// directive hygiene still applies.
package other

import (
	"math/rand"
	"time"
)

var sink any

// freeCode may use everything the simulation core may not.
func freeCode(m map[string]int) {
	sink = time.Now()
	sink = rand.Intn(10)
	for k := range m {
		sink = k
	}
	go func() {}()
}

// hygiene: malformed directives are flagged even outside the covered set.
func hygiene() {
	var _ = 1 /* want "requires a reason" */ //hydralint:nondeterministic
	var _ = 2 /* want "unknown hydralint directive" */ //hydralint:nonsense whatever
}
