package determinism_test

import (
	"path/filepath"
	"testing"

	"hydranet/internal/lint/determinism"
	"hydranet/internal/lint/linttest"
)

func TestCoveredPackage(t *testing.T) {
	linttest.Run(t, determinism.Analyzer, filepath.Join(linttest.TestData(t), "src", "internal", "sim"))
}

func TestCoveredSeriesPackage(t *testing.T) {
	linttest.Run(t, determinism.Analyzer, filepath.Join(linttest.TestData(t), "src", "internal", "series"))
}

func TestDomainFence(t *testing.T) {
	linttest.Run(t, determinism.Analyzer, filepath.Join(linttest.TestData(t), "src", "internal", "netsim"))
}

func TestUncoveredPackage(t *testing.T) {
	linttest.Run(t, determinism.Analyzer, filepath.Join(linttest.TestData(t), "src", "other"))
}
