// Package zeroalloc pins the allocation-free discipline of the
// simulator's disabled observability paths. The obs bus, the frame taps,
// and the flight-recorder record paths promise "free when nobody
// listens"; until now that promise was held only by alloc tests
// (testing.AllocsPerRun), which catch a regression only on the exact call
// path a test happens to execute. This analyzer checks it structurally.
//
// A function marked with //hydralint:zeroalloc in its doc comment is a
// zero-alloc root. The analyzer checks the root and, transitively, every
// function in the same package it statically calls, for the four
// constructs that put allocations on an otherwise clean path:
//
//   - interface boxing: a concrete value converted to an interface —
//     passed to an interface parameter (fmt-style ...any above all),
//     returned as an interface, or assigned to an interface variable
//   - fmt.* calls (every fmt entry point allocates)
//   - closures that capture enclosing variables (the closure, and often
//     the variable, move to the heap)
//   - string concatenation with + on non-constant operands
//
// Code on a panic path is exempt: a fmt.Sprintf building a panic message
// costs nothing until the program is already dying. Cross-package callees
// are not checked (only export data is visible); mark them in their own
// package.
//
// The analyzer is deliberately a subset of "cannot allocate": make, new,
// append growth, and map writes are escape-analysis-dependent and remain
// the alloc tests' job. The two layers back each other up.
package zeroalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"hydranet/internal/lint"
)

// Analyzer is the zero-allocation checker.
var Analyzer = &lint.Analyzer{
	Name: "zeroalloc",
	Doc:  "forbid boxing, fmt, capturing closures, and string concatenation in //hydralint:zeroalloc call paths",
	Run:  run,
}

func run(pass *lint.Pass) error {
	// Map every function object in the package to its declaration, so
	// static calls can be followed.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
					decls[obj] = fn
				}
			}
		}
	}

	// Roots: functions annotated //hydralint:zeroalloc.
	roots := map[types.Object]bool{}
	for _, file := range pass.Files {
		idx := lint.IndexDirectives(pass.Fset, file)
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if lint.FuncDirective(pass.Fset, idx, fn, lint.DirZeroAlloc) {
				roots[pass.TypesInfo.Defs[fn.Name]] = true
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Transitive closure over same-package static calls. via records the
	// root each function was reached from, for the diagnostic.
	via := map[types.Object]types.Object{}
	var queue []types.Object
	for r := range roots {
		via[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		fn := decls[cur]
		if fn == nil || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() != pass.Pkg {
				return true
			}
			if _, seen := via[callee]; !seen {
				if _, hasBody := decls[callee]; hasBody {
					via[callee] = via[cur]
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	for obj, root := range via {
		fn := decls[obj]
		if fn == nil || fn.Body == nil {
			continue
		}
		suffix := ""
		if root != obj {
			suffix = " (on the zeroalloc path of " + root.Name() + ")"
		}
		checkFunc(pass, fn, suffix)
	}
	return nil
}

// staticCallee resolves a call to a package-level function or method
// declared object, or nil for calls through func values and interfaces.
func staticCallee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			return sel.Obj()
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified call
		}
	}
	return nil
}

// checkFunc reports every allocation-prone construct in fn's body.
func checkFunc(pass *lint.Pass, fn *ast.FuncDecl, suffix string) {
	cold := coldRegions(fn.Body)
	isCold := func(pos token.Pos) bool {
		for _, r := range cold {
			if r.contains(pos) {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if isCold(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, fn, n, suffix)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringConcat(pass.TypesInfo, n) {
				pass.Reportf(n.Pos(), "string concatenation allocates in zeroalloc function %s%s", fn.Name.Name, suffix)
			}
		case *ast.FuncLit:
			if capt := captures(pass.TypesInfo, n); capt != "" {
				pass.Reportf(n.Pos(), "closure captures %s and forces a heap allocation in zeroalloc function %s%s", capt, fn.Name.Name, suffix)
			}
			return false // the literal runs later; its body is not this path
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, fn, n, suffix)
		case *ast.AssignStmt:
			checkAssignBoxing(pass, fn, n, suffix)
		case *ast.ValueSpec:
			checkSpecBoxing(pass, fn, n, suffix)
		}
		return true
	})
}

// region is a half-open source interval.
type region struct{ from, to token.Pos }

func (r region) contains(p token.Pos) bool { return p >= r.from && p < r.to }

// coldRegions collects the spans of panic arguments and of blocks whose
// last statement panics: allocation there is the cost of dying, not of
// the fast path.
func coldRegions(body *ast.BlockStmt) []region {
	var out []region
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				for _, arg := range n.Args {
					out = append(out, region{arg.Pos(), arg.End()})
				}
			}
		case *ast.BlockStmt:
			if len(n.List) > 0 && isPanicStmt(n.List[len(n.List)-1]) {
				out = append(out, region{n.Pos(), n.End()})
			}
		}
		return true
	})
	return out
}

func isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// checkCall flags fmt entry points and interface boxing at argument
// positions.
func checkCall(pass *lint.Pass, fn *ast.FuncDecl, call *ast.CallExpr, suffix string) {
	info := pass.TypesInfo
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			if _, isPkg := info.Uses[identOf(sel.X)].(*types.PkgName); isPkg {
				pass.Reportf(call.Pos(), "fmt.%s allocates in zeroalloc function %s%s", obj.Name(), fn.Name.Name, suffix)
				return // don't double-report its boxed arguments
			}
		}
	}

	// A conversion to an interface type boxes its operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if boxes(info, call.Args[0], tv.Type) {
			pass.Reportf(call.Pos(), "conversion boxes %s into %s in zeroalloc function %s%s",
				types.TypeString(info.TypeOf(call.Args[0]), types.RelativeTo(pass.Pkg)),
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), fn.Name.Name, suffix)
			return
		}
	}

	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
			if call.Ellipsis != token.NoPos && i == params.Len()-1 {
				pt = last // arg... passes the slice itself
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if boxes(info, arg, pt) {
			pass.Reportf(arg.Pos(), "argument boxes %s into %s in zeroalloc function %s%s",
				types.TypeString(info.TypeOf(arg), types.RelativeTo(pass.Pkg)),
				types.TypeString(pt, types.RelativeTo(pass.Pkg)), fn.Name.Name, suffix)
		}
	}
}

// callSignature returns the signature of the called function, if the call
// is a true call (not a type conversion).
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// checkReturnBoxing flags concrete values returned as interface results.
func checkReturnBoxing(pass *lint.Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt, suffix string) {
	obj := pass.TypesInfo.Defs[fn.Name]
	f, ok := obj.(*types.Func)
	if !ok {
		return
	}
	results := f.Type().(*types.Signature).Results()
	if results.Len() != len(ret.Results) {
		return // multi-value forwarding; out of scope
	}
	for i, e := range ret.Results {
		if boxes(pass.TypesInfo, e, results.At(i).Type()) {
			pass.Reportf(e.Pos(), "return boxes %s into %s in zeroalloc function %s%s",
				types.TypeString(pass.TypesInfo.TypeOf(e), types.RelativeTo(pass.Pkg)),
				types.TypeString(results.At(i).Type(), types.RelativeTo(pass.Pkg)), fn.Name.Name, suffix)
		}
	}
}

// checkAssignBoxing flags concrete values assigned to interface-typed
// destinations.
func checkAssignBoxing(pass *lint.Pass, fn *ast.FuncDecl, as *ast.AssignStmt, suffix string) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		lt := pass.TypesInfo.TypeOf(as.Lhs[i])
		if lt == nil {
			continue
		}
		if boxes(pass.TypesInfo, rhs, lt) {
			pass.Reportf(rhs.Pos(), "assignment boxes %s into %s in zeroalloc function %s%s",
				types.TypeString(pass.TypesInfo.TypeOf(rhs), types.RelativeTo(pass.Pkg)),
				types.TypeString(lt, types.RelativeTo(pass.Pkg)), fn.Name.Name, suffix)
		}
	}
}

// checkSpecBoxing flags `var x I = concrete` declarations.
func checkSpecBoxing(pass *lint.Pass, fn *ast.FuncDecl, spec *ast.ValueSpec, suffix string) {
	for i, v := range spec.Values {
		if i >= len(spec.Names) {
			break
		}
		lt := pass.TypesInfo.TypeOf(spec.Names[i])
		if boxes(pass.TypesInfo, v, lt) {
			pass.Reportf(v.Pos(), "declaration boxes %s into %s in zeroalloc function %s%s",
				types.TypeString(pass.TypesInfo.TypeOf(v), types.RelativeTo(pass.Pkg)),
				types.TypeString(lt, types.RelativeTo(pass.Pkg)), fn.Name.Name, suffix)
		}
	}
}

// boxes reports whether assigning expr to a destination of type dst
// converts a concrete value to an interface, allocating to do so.
func boxes(info *types.Info, expr ast.Expr, dst types.Type) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	src := tv.Type
	switch u := src.Underlying().(type) {
	case *types.Interface:
		return false // interface-to-interface: no box
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored directly in the iface word
	case *types.Basic:
		if u.Kind() == types.UntypedNil || u.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// isStringConcat reports whether the + has string type and at least one
// non-constant operand (constant folding is free).
func isStringConcat(info *types.Info, bin *ast.BinaryExpr) bool {
	tv, ok := info.Types[bin]
	if !ok || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return false
	}
	return tv.Value == nil // whole expression non-constant
}

// captures names one variable a func literal captures from its enclosing
// function, or "" when it captures nothing.
func captures(info *types.Info, lit *ast.FuncLit) string {
	inside := func(pos token.Pos) bool { return pos >= lit.Pos() && pos <= lit.End() }
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pkg() == nil || obj.Parent() == nil {
			return true
		}
		// A variable declared outside the literal but inside some function
		// is a capture. Package-level vars are not captured (direct access).
		if !inside(obj.Pos()) && obj.Parent() != obj.Pkg().Scope() {
			name = obj.Name()
		}
		return true
	})
	return name
}

// identOf unwraps x to its identifier, if it is one.
func identOf(x ast.Expr) *ast.Ident {
	id, _ := x.(*ast.Ident)
	return id
}
