// Package invpath is zeroalloc-analyzer testdata shaped like the invariant
// monitor's hot path: per-event cursor checks against pre-built per-flow
// state, recording violations into a bounded slice with constant detail
// strings and integer want/got fields. The monitor observes every deposit
// and ack while attached, so its promise matches the bus subscriber's:
// free beyond map/slice writes. Each function below seeds one way that
// promise quietly breaks.
package invpath

import "fmt"

type cursor struct {
	val  uint64
	seen bool
}

type violation struct {
	rule     string
	detail   string
	want, got uint64
}

type monitor struct {
	cursors    map[string]*cursor
	violations []violation
	checks     uint64
}

var sink any

// noteDeposit is the canonical hot-path check: map lookup into state built
// at attach time, serial-arithmetic comparison, append on the (rare)
// violating branch with a constant detail string. Must stay clean.
//
//hydralint:zeroalloc
func (m *monitor) noteDeposit(node string, seq, size uint64) {
	c := m.cursors[node]
	if c == nil {
		return
	}
	m.checks++
	if c.seen {
		if want := c.val + size; seq != want {
			m.violations = append(m.violations, violation{
				rule: "deposit-cursor", detail: "cursor discontinuity",
				want: want, got: seq,
			})
		}
	}
	c.val, c.seen = seq, true
}

// noteAck is the root the bus calls per ack event: it gates through a
// same-package helper, which therefore inherits the constraint.
//
//hydralint:zeroalloc
func (m *monitor) noteAck(node string, ack uint64) {
	m.gate(m.cursors[node], ack)
}

// gate is NOT annotated, but noteAck reaches it, so its debug print is on
// the zeroalloc path.
func (m *monitor) gate(c *cursor, ack uint64) {
	if c == nil || !c.seen {
		return
	}
	m.checks++
	if ack > c.val+1 {
		fmt.Printf("ack %d beyond gate %d\n", ack, c.val+1) // want "fmt.Printf allocates in zeroalloc function gate \(on the zeroalloc path of noteAck\)"
	}
}

// noteDepositTraced boxes the check counter into an any-typed trace hook on
// every event. (Passing the *monitor itself would be clean — pointers fit
// the iface word — which is exactly why the scalar is the tempting
// mistake.)
//
//hydralint:zeroalloc
func (m *monitor) noteDepositTraced(node string, seq, size uint64) {
	trace(m.checks) // want "argument boxes uint64 into any in zeroalloc function noteDepositTraced"
	m.noteDeposit(node, seq, size)
}

// noteDepositDeferred builds a capturing closure per event — the "record
// lazily" allocation the real monitor avoids by storing structured fields
// immediately and rendering only in the cold report path.
//
//hydralint:zeroalloc
func (m *monitor) noteDepositDeferred(node string, seq, size uint64) {
	defer func() { m.noteDeposit(node, seq, size) }() // want "closure captures .* and forces a heap allocation in zeroalloc function noteDepositDeferred"
}

// report runs offline, after detach: unannotated, may allocate.
func (m *monitor) report() string {
	return fmt.Sprintf("%d checks, %d violations", m.checks, len(m.violations))
}

func trace(v any) { sink = v }
