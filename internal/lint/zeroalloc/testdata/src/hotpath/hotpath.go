// Package hotpath is zeroalloc-analyzer testdata: annotated fast-path
// functions seeded with each allocation class the analyzer must catch,
// alongside unannotated functions that may allocate freely and clean
// annotated functions that must not be flagged.
package hotpath

import "fmt"

type event struct {
	kind int
	size int
}

type bus struct {
	mask uint64
	subs [4][]func(event)
}

var sink any
var sinkStr string

// Enabled is the canonical disabled-path guard: one nil check and a mask
// test. Must stay clean.
//
//hydralint:zeroalloc
func (b *bus) Enabled(kind int) bool {
	return b != nil && b.mask&(1<<kind) != 0
}

// Publish fans an event out by value. Clean: no boxing, no fmt, no
// closures, no concatenation.
//
//hydralint:zeroalloc
func (b *bus) Publish(e event) {
	if b == nil || b.mask&(1<<e.kind) == 0 {
		return
	}
	for _, h := range b.subs[e.kind] {
		h(e)
	}
}

// violations gathers every class the analyzer must flag.
//
//hydralint:zeroalloc
func violations(e event, name string) {
	fmt.Println("hot") // want "fmt.Println allocates in zeroalloc function violations"

	sink = e // want "assignment boxes event into any in zeroalloc function violations"

	takeAny(e.size) // want "argument boxes int into any in zeroalloc function violations"

	sinkStr = name + "!" // want "string concatenation allocates in zeroalloc function violations"

	n := 0
	run(func() { n++ }) // want "closure captures n and forces a heap allocation in zeroalloc function violations"
	sink = &n
}

// conversionBox flags explicit interface conversions too.
//
//hydralint:zeroalloc
func conversionBox(e event) {
	_ = any(e) // want "conversion boxes event into any in zeroalloc function conversionBox"
}

// declBox flags var declarations with interface type.
//
//hydralint:zeroalloc
func declBox(e event) {
	var x interface{} = e // want "declaration boxes event into interface{} in zeroalloc function declBox"
	_ = x
}

// transitive is NOT annotated itself, but record (a root) calls it, so it
// inherits the constraint.
func transitive(e event) {
	sink = e // want "assignment boxes event into any in zeroalloc function transitive \(on the zeroalloc path of record\)"
}

// record is a root whose helper must also stay clean.
//
//hydralint:zeroalloc
func record(e event) {
	transitive(e)
}

// pointerShaped must stay clean: pointers, maps, funcs, and interface
// values all fit the iface word without allocating.
//
//hydralint:zeroalloc
func pointerShaped(e *event, m map[int]int, f func(), i any) {
	sink = e
	sink = m
	sink = f
	sink = i
	sink = nil
}

// panicPath must stay clean: the fmt.Sprintf feeds a panic, which is the
// cold path by definition.
//
//hydralint:zeroalloc
func panicPath(n, limit int) {
	if n > limit {
		panic(fmt.Sprintf("overflow: %d > %d", n, limit))
	}
}

// constConcat must stay clean: the compiler folds constant concatenation.
//
//hydralint:zeroalloc
func constConcat() {
	const prefix = "a"
	sinkStr = prefix + "b"
}

// unannotated may do anything: no diagnostics, proving the analyzer only
// fires on marked call paths.
func unannotated(e event, name string) {
	fmt.Println("cold", e)
	sink = e
	sinkStr = name + "!"
}

func takeAny(v any) { sink = v }
func run(f func())  { f() }
