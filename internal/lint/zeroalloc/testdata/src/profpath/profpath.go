// Package profpath is zeroalloc-analyzer testdata shaped like the
// hydraprof collectors' hot path: a scheduling-edge sampler that strides
// over edges and records every Nth into a pre-allocated ring, and a window
// accountant that folds per-domain timings into fixed slots. Both run
// inside the scheduler and barrier hot loops while a profiler is attached,
// so their promise matches the sampler's: free beyond the ring writes.
// Each function below seeds one way that promise quietly breaks.
package profpath

import "fmt"

type edge struct {
	parentAt, childAt int64
	depth             uint64
}

type edgeRing struct {
	edges []edge
	head  int
	seen  uint64
}

type windowSlot struct {
	execNs, stallNs int64
	events          uint64
}

type collector struct {
	ring  edgeRing
	slots []windowSlot
	every uint64
}

var sink any

// noteEdge is the canonical collector write: stride check plus index
// arithmetic into storage allocated at attach time. Must stay clean.
//
//hydralint:zeroalloc
func (c *collector) noteEdge(parentAt, childAt int64, depth uint64) {
	c.ring.seen++
	if c.every > 1 && c.ring.seen%c.every != 0 {
		return
	}
	if len(c.ring.edges) == 0 {
		return
	}
	c.ring.edges[c.ring.head] = edge{parentAt: parentAt, childAt: childAt, depth: depth}
	c.ring.head = (c.ring.head + 1) % len(c.ring.edges)
}

// windowEnd is the root the barrier calls once per domain per window: it
// folds timings through a same-package helper, which therefore inherits
// the constraint.
//
//hydralint:zeroalloc
func (c *collector) windowEnd(domain int, execNs, stallNs int64) {
	fold(&c.slots[domain], execNs, stallNs)
}

// fold is NOT annotated, but windowEnd reaches it, so its debug print is
// on the zeroalloc path.
func fold(s *windowSlot, execNs, stallNs int64) {
	s.execNs += execNs
	s.stallNs += stallNs
	s.events++
	fmt.Printf("window folded %d events\n", s.events) // want "fmt.Printf allocates in zeroalloc function fold \(on the zeroalloc path of windowEnd\)"
}

// noteEdgeTraced boxes the stride counter into an any-typed trace hook on
// every sampled edge. (Passing the *collector itself would be clean —
// pointers fit the iface word — which is exactly why the scalar is the
// tempting mistake.)
//
//hydralint:zeroalloc
func (c *collector) noteEdgeTraced(parentAt, childAt int64, depth uint64) {
	trace(c.ring.seen) // want "argument boxes uint64 into any in zeroalloc function noteEdgeTraced"
	c.noteEdge(parentAt, childAt, depth)
}

// windowEndDeferred builds a capturing closure per window — the classic
// "flush later" allocation the real collector avoids by snapshotting at
// the barrier, in coordinator context.
//
//hydralint:zeroalloc
func (c *collector) windowEndDeferred(domain int, execNs, stallNs int64) {
	defer func() { c.windowEnd(domain, execNs, stallNs) }() // want "closure captures .* and forces a heap allocation in zeroalloc function windowEndDeferred"
}

// report runs offline, after detach: unannotated, may allocate.
func (c *collector) report() string {
	return fmt.Sprintf("%d edges seen", c.ring.seen)
}

func trace(v any) { sink = v }
