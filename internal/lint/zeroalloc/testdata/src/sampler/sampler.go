// Package sampler is zeroalloc-analyzer testdata shaped like the
// telemetry sampler's hot path: a periodic tick that observes values into
// pre-allocated rings. The tick runs inside the simulation loop whether or
// not anyone ever exports the series, so its promise is the same as the
// obs bus's — free beyond the ring writes. Each function below seeds one
// way that promise quietly breaks.
package sampler

import "fmt"

type point struct {
	t int64
	v float64
}

type ring struct {
	pts  []point
	head int
	n    int
}

type sampler struct {
	rings []ring
	ticks uint64
}

var sink any

// observe is the canonical ring write: index arithmetic into storage that
// already exists. Must stay clean.
//
//hydralint:zeroalloc
func (r *ring) observe(t int64, v float64) {
	if len(r.pts) == 0 {
		return
	}
	r.pts[r.head] = point{t: t, v: v}
	r.head = (r.head + 1) % len(r.pts)
	if r.n < len(r.pts) {
		r.n++
	}
}

// tick is the root: it fans one virtual instant out to every ring via a
// same-package helper, which therefore inherits the constraint.
//
//hydralint:zeroalloc
func (s *sampler) tick(now int64) {
	s.ticks++
	for i := range s.rings {
		scrape(&s.rings[i], now)
	}
}

// scrape is NOT annotated, but tick reaches it, so its debug print is on
// the zeroalloc path.
func scrape(r *ring, now int64) {
	r.observe(now, float64(r.n))
	fmt.Printf("sampled %d points\n", r.n) // want "fmt.Printf allocates in zeroalloc function scrape \(on the zeroalloc path of tick\)"
}

// tickTraced boxes the tick counter into an any-typed trace hook on every
// tick. (Passing the *sampler itself would be clean — pointers fit the
// iface word — which is exactly why the scalar is the tempting mistake.)
//
//hydralint:zeroalloc
func (s *sampler) tickTraced(now int64) {
	trace(s.ticks) // want "argument boxes uint64 into any in zeroalloc function tickTraced"
	s.tick(now)
}

// tickDeferred builds a capturing closure per tick — the classic
// "schedule the next tick" allocation the real sampler avoids by caching
// its fire function once at construction.
//
//hydralint:zeroalloc
func (s *sampler) tickDeferred(now int64) {
	schedule(func() { s.tick(now) }) // want "closure captures .* and forces a heap allocation in zeroalloc function tickDeferred"
}

// export runs offline, after the simulation: unannotated, may allocate.
func (s *sampler) export(name string) string {
	return fmt.Sprintf("%s: %d ticks", name, s.ticks)
}

func trace(v any)       { sink = v }
func schedule(f func()) { f() }
