package zeroalloc_test

import (
	"path/filepath"
	"testing"

	"hydranet/internal/lint/linttest"
	"hydranet/internal/lint/zeroalloc"
)

func TestHotPath(t *testing.T) {
	linttest.Run(t, zeroalloc.Analyzer, filepath.Join(linttest.TestData(t), "src", "hotpath"))
}

func TestSamplerPath(t *testing.T) {
	linttest.Run(t, zeroalloc.Analyzer, filepath.Join(linttest.TestData(t), "src", "sampler"))
}

func TestProfPath(t *testing.T) {
	linttest.Run(t, zeroalloc.Analyzer, filepath.Join(linttest.TestData(t), "src", "profpath"))
}

func TestInvPath(t *testing.T) {
	linttest.Run(t, zeroalloc.Analyzer, filepath.Join(linttest.TestData(t), "src", "invpath"))
}
