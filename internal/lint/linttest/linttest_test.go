package linttest_test

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"strings"
	"testing"

	"hydranet/internal/lint"
	"hydranet/internal/lint/linttest"
)

// callsite reports two diagnostics at every call expression — enough
// surface to exercise multiple wants per line and build-tag filtering
// without dragging in a real analyzer.
var callsite = &lint.Analyzer{
	Name: "callsite",
	Doc:  "test analyzer: reports alpha and beta at every call",
	Run: func(pass *lint.Pass) error {
		pass.Inspect(func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				pass.Reportf(c.Pos(), "alpha finding at call")
				pass.Reportf(c.Pos(), "beta finding at call")
			}
			return true
		})
		return nil
	},
}

// recorder satisfies linttest.TB, capturing failures instead of failing.
type recorder struct {
	errors []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}
func (r *recorder) Fatalf(format string, args ...any) {
	panic("linttest fatal: " + fmt.Sprintf(format, args...))
}

// TestMultipleWantsPerLine: one line carries two want patterns and the
// analyzer emits two diagnostics there; each want claims exactly one.
func TestMultipleWantsPerLine(t *testing.T) {
	linttest.Run(t, callsite, filepath.Join(linttest.TestData(t), "src", "multi"))
}

// TestUnmatchedWantFails: a want pattern that no diagnostic satisfies must
// fail the run — otherwise a renamed message silently retires the seeded
// violation it was pinning.
func TestUnmatchedWantFails(t *testing.T) {
	rec := &recorder{}
	linttest.Run(rec, callsite, filepath.Join(linttest.TestData(t), "src", "unmatched"))
	if len(rec.errors) == 0 {
		t.Fatal("run with an unsatisfiable want reported no failure")
	}
	found := false
	for _, e := range rec.errors {
		if strings.Contains(e, "expected diagnostic matching") && strings.Contains(e, "never reported") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failure does not name the stale want: %q", rec.errors)
	}
}

// TestUnexpectedDiagnosticFails: the inverse vacuity check — a diagnostic
// with no want on its line must also fail. The multi package under an
// analyzer that reports a third, unannotated message demonstrates it.
func TestUnexpectedDiagnosticFails(t *testing.T) {
	noisy := &lint.Analyzer{
		Name: "noisy",
		Doc:  "test analyzer: reports an unannotated diagnostic",
		Run: func(pass *lint.Pass) error {
			pass.Reportf(pass.Files[0].Name.Pos(), "surprise diagnostic")
			return nil
		},
	}
	rec := &recorder{}
	linttest.Run(rec, noisy, filepath.Join(linttest.TestData(t), "src", "unmatched"))
	if len(rec.errors) == 0 {
		t.Fatal("unexpected diagnostic reported no failure")
	}
	if !strings.Contains(rec.errors[0], "unexpected diagnostic") {
		t.Fatalf("failure does not flag the unexpected diagnostic: %q", rec.errors)
	}
}

// TestBuildTagFiles: the satisfied-constraint file is analyzed (its wants
// match) while the excluded file's unannotated call never surfaces.
func TestBuildTagFiles(t *testing.T) {
	linttest.Run(t, callsite, filepath.Join(linttest.TestData(t), "src", "tagged"))
}
