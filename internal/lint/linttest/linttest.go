// Package linttest is a golden-test harness for hydralint analyzers,
// modelled on golang.org/x/tools/go/analysis/analysistest. Testdata
// packages live under the analyzer's testdata/ directory (which the go
// tool ignores for wildcard builds, so seeded violations never leak into
// `go build ./...`), and annotate the diagnostics they expect with
// trailing comments:
//
//	b.Release()
//	use(b.Bytes()) // want "use of pooled frame"
//
// Each string after `want` is a regular expression; a line may carry
// several. The harness fails the test when a diagnostic has no matching
// expectation on its line, and when an expectation goes unmatched — seeded
// violations must be caught, and clean lines must stay clean.
package linttest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"hydranet/internal/lint"
	"hydranet/internal/lint/load"
)

// TestData returns the caller's testdata directory.
func TestData(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("linttest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// expectation is one `want` pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// TB is the subset of testing.TB the harness consumes. Production tests
// pass *testing.T; the harness's own tests substitute a recorder to prove
// that stale expectations and unexpected diagnostics actually fail.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Run loads the package rooted at dir (an absolute directory containing
// one testdata package), applies the analyzer, and compares diagnostics
// against the package's want comments.
func Run(t TB, a *lint.Analyzer, dir string) {
	t.Helper()
	pkgs, err := load.Packages(dir, ".")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loading %s: got %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]

	var diags []lint.Diagnostic
	pass := lint.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, &diags)
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	lint.SortDiagnostics(diags)

	wants := collectWants(t, pkg.Fset, pkg.Files)

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches; it reports whether one was found.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line || w.file != d.Pos.Filename {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants parses every `// want "re" ...` comment in the package.
func collectWants(t TB, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if strings.HasPrefix(text, "/*") {
					text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					raw := strings.ReplaceAll(m[1], `\"`, `"`)
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return out
}
