// Package multi carries two expectations on one line: the callsite test
// analyzer reports twice per call, and both wants must claim exactly one
// diagnostic each.
package multi

func f() {}

func g() {
	f() // want "alpha finding" "beta finding"
}
