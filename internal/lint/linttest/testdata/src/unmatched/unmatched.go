// Package unmatched seeds a want comment that no analyzer will ever
// satisfy: the harness must fail, or vacuous expectations would rot
// silently in every analyzer's testdata.
package unmatched

var x = 1 // want "never reported"

var _ = x
