//go:build hydralint_excluded

package tagged

func h() {}

func k() {
	h() // no want: this file is excluded by its build tag, so the
	// analyzer must never see this call
}
