//go:build !hydralint_excluded

// Package tagged proves the harness honors build constraints: this file's
// constraint is satisfied, so its diagnostics and wants are live, while
// excluded.go is dropped by the loader and its unannotated call must not
// surface as an unexpected diagnostic.
package tagged

func f() {}

func g() {
	f() // want "alpha finding" "beta finding"
}
