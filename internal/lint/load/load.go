// Package load type-checks packages for the hydralint analyzers without
// depending on golang.org/x/tools. It shells out to the go command once —
// `go list -export -deps -json` — so every dependency's export data is
// produced by a single shared build, then parses and type-checks only the
// packages under analysis, resolving imports through the gc export data the
// list call already paid for. This is what keeps a whole-repo lint run
// cheaper than a test run: dependencies are never re-type-checked from
// source, and nothing is compiled twice.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
	DepOnly    bool
}

// Packages loads and type-checks the packages matched by patterns,
// interpreted relative to dir (the go command's working directory). Test
// files are not loaded: hydralint checks the shipped simulator, and test
// binaries are free to use time.Now or fmt as they please.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,CgoFiles,Export,Standard,ImportMap,Error,DepOnly",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	var errs []error
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s: cgo is not supported by hydralint", t.ImportPath)
		}
		pkg, err := check(fset, t, exports)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	if len(errs) > 0 {
		return pkgs, errors.Join(errs...)
	}
	return pkgs, nil
}

// check parses and type-checks one listed package against the shared
// export data.
func check(fset *token.FileSet, t *listPkg, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(t.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := t.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (dependency of %s)", path, t.ImportPath)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{PkgPath: t.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// ModuleDir locates the enclosing module root for dir, so callers can
// present file paths relative to it.
func ModuleDir(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", err
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("no module found for %s", dir)
	}
	return filepath.Dir(gomod), nil
}
