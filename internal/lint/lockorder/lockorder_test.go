package lockorder_test

import (
	"path/filepath"
	"testing"

	"hydranet/internal/lint/linttest"
	"hydranet/internal/lint/lockorder"
)

func TestParcore(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, filepath.Join(linttest.TestData(t), "src", "parcore"))
}
