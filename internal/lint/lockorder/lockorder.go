// Package lockorder proves deadlock-freedom properties of the parallel
// core's locking discipline. The conservative parallel engine (DESIGN.md
// §10) synchronizes through exactly three mechanisms — per-domain inbox
// mutexes, the group scheduler's mutex, and coordinator barriers
// (sync.WaitGroup) — and its liveness argument is a lock-order argument:
// no worker ever holds a lock while waiting on another domain. That
// argument is invisible to the compiler and to the race detector (which
// only sees schedules that actually happened). This analyzer checks it
// statically.
//
// For every function it runs a may-analysis over the control-flow graph
// (internal/lint/ir) tracking the set of mutexes that can be held at each
// program point, and reports:
//
//   - Lock-order cycles. Each acquisition made while another lock is held
//     contributes an edge held-class → acquired-class to a package-wide
//     acquisition graph; edges are also added through same-package calls
//     using bottom-up callee summaries. Any strongly connected component
//     with a cycle — two classes acquired in both orders, or one class
//     acquired while an instance of the same class is already held — is
//     reported at every participating acquisition site.
//
//   - Locks held across a hand-off or barrier: a sync.WaitGroup.Wait, a
//     StageHandoffs call, or a SendFrame call reached while any lock may
//     be held, directly or through a same-package callee that blocks.
//     These are the points where the coordinator waits for every domain
//     (or publishes a frame to another domain); holding a mutex there
//     stalls the whole window.
//
//   - Double-lock: acquiring a mutex on a receiver path that may already
//     hold the very same receiver's lock (sync.Mutex does not support
//     recursive locking; this self-deadlocks at run time).
//
// Lock identity is two-level. The *class* — package.Type.fieldPath, e.g.
// netsim.domainRT.inbox.mu — names a lock in the acquisition-order graph;
// the *instance* — the rendered receiver text, e.g. d.inbox.mu — detects
// double-locking of one object. Function literals are analyzed as
// independent functions with an empty initial lock set, and their
// acquisitions do not count toward the enclosing function's summary: a
// closure generally runs on another goroutine or at another time.
//
// The analysis is intentionally may-directional: a lock taken on one
// branch is treated as possibly held afterward until a provable release.
// Deferred unlocks release at function exit, so a lock held through
// `defer mu.Unlock()` is (correctly) still held at any barrier the
// function reaches.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hydranet/internal/lint"
	"hydranet/internal/lint/ir"
)

// Analyzer is the lock-order checker.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc:  "report lock-order cycles, locks held across coordinator barriers or hand-offs, and double-locking in the parallel core",
	Run:  run,
}

// handoffCallees are the hand-off points of the parallel engine: calls
// that publish work to (or wait on) another synchronization domain. A
// mutex held across one of these stalls every domain behind it.
var handoffCallees = map[string]bool{
	"StageHandoffs": true,
	"SendFrame":     true,
}

// held maps each lock instance (rendered receiver text) to its class and
// the position where it was acquired. It is the may-analysis fact: an
// entry means the lock can be held at this point on some path.
type held map[string]acquisition

type acquisition struct {
	class string
	pos   token.Pos
}

// summary is one function's interprocedural abstract: the lock classes it
// may acquire and, if it can block on a barrier or hand-off (directly or
// transitively), a human-readable description of how.
type summary struct {
	acquires map[string]bool
	blocker  string // "" if the function cannot block
}

// edge is one acquisition-order observation: while a lock of class from
// was held, a lock of class to was acquired at pos.
type edge struct {
	from, to string
	pos      token.Pos
}

func run(pass *lint.Pass) error {
	a := &analysis{
		pass:      pass,
		cg:        ir.BuildCallGraph(pass.Files, pass.TypesInfo, pass.Pkg),
		summaries: map[*types.Func]*summary{},
	}
	a.computeSummaries()

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				a.checkBody(fn.Body)
			}
		}
	}
	a.reportCycles()
	return nil
}

type analysis struct {
	pass      *lint.Pass
	cg        *ir.CallGraph
	summaries map[*types.Func]*summary
	edges     []edge
}

// computeSummaries runs the bottom-up pass: callees are summarized before
// their callers, and mutual-recursion components iterate to fixpoint.
func (a *analysis) computeSummaries() {
	a.cg.BottomUp(func(fn *types.Func, decl *ast.FuncDecl) bool {
		old := a.summaries[fn]
		s := &summary{acquires: map[string]bool{}}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false // closures run elsewhere; not the caller's locks
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if cls, _, acquires, isMu := a.mutexOp(call); isMu && acquires {
				s.acquires[cls] = true
				return true
			}
			if desc := a.directBlocker(call); desc != "" {
				s.blocker = desc
				return true
			}
			if callee := ir.StaticCallee(a.pass.TypesInfo, call); callee != nil {
				if cs := a.summaries[callee]; cs != nil {
					for c := range cs.acquires {
						s.acquires[c] = true
					}
					if s.blocker == "" && cs.blocker != "" {
						s.blocker = callee.Name() + " (which reaches " + cs.blocker + ")"
					}
				}
			}
			return true
		})
		a.summaries[fn] = s
		if old == nil || old.blocker != s.blocker || len(old.acquires) != len(s.acquires) {
			return true
		}
		for c := range s.acquires {
			if !old.acquires[c] {
				return true
			}
		}
		return false
	})
}

// checkBody analyzes one function body (or function literal body) with an
// empty initial lock set, then recurses into its literals.
func (a *analysis) checkBody(body *ast.BlockStmt) {
	cfg := ir.Build(body)

	transfer := func(elem ast.Node, f held) held {
		if _, isDefer := elem.(*ast.DeferStmt); isDefer {
			return f // deferred unlocks release at Exit
		}
		ir.Inspect(elem, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if cls, key, acquires, isMu := a.mutexOp(call); isMu {
				if acquires {
					f[key] = acquisition{class: cls, pos: call.Pos()}
				} else {
					delete(f, key)
				}
			}
			return true
		})
		return f
	}

	p := ir.Problem[held]{
		Lattice: ir.Lattice[held]{
			Join: func(x, y held) held { // union: may-held
				out := make(held, len(x)+len(y))
				for k, v := range x {
					out[k] = v
				}
				for k, v := range y {
					if _, dup := out[k]; !dup {
						out[k] = v
					}
				}
				return out
			},
			Equal: func(x, y held) bool {
				if len(x) != len(y) {
					return false
				}
				for k := range x {
					if _, ok := y[k]; !ok {
						return false
					}
				}
				return true
			},
			Clone: func(f held) held {
				out := make(held, len(f))
				for k, v := range f {
					out[k] = v
				}
				return out
			},
		},
		Boundary: held{},
		Transfer: transfer,
	}
	in, reachable := ir.Forward(cfg, p)

	for _, b := range cfg.Blocks {
		if !reachable[b] {
			continue
		}
		f := p.Lattice.Clone(in[b])
		for _, e := range b.Elems {
			if _, isDefer := e.(*ast.DeferStmt); isDefer {
				continue
			}
			ir.Inspect(e, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if cls, key, acquires, isMu := a.mutexOp(call); isMu {
					if acquires {
						a.acquire(call, cls, key, f)
						f[key] = acquisition{class: cls, pos: call.Pos()}
					} else {
						delete(f, key)
					}
					return true
				}
				a.checkCallHazards(call, f)
				return true
			})
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			a.checkBody(lit.Body)
			return false
		}
		return true
	})
}

// acquire handles one Lock/RLock while f may already hold locks: it
// reports double-locking of the same instance and records acquisition-
// order edges from every held class.
func (a *analysis) acquire(call *ast.CallExpr, cls, key string, f held) {
	if prev, dup := f[key]; dup {
		a.pass.Reportf(call.Pos(), "%s locked again while already held on this path (acquired at line %d): sync mutexes are not recursive, this self-deadlocks", key, a.pass.Fset.Position(prev.pos).Line)
		return
	}
	for _, h := range f {
		a.edges = append(a.edges, edge{from: h.class, to: cls, pos: call.Pos()})
	}
}

// checkCallHazards handles a non-mutex call with locks possibly held: a
// barrier/hand-off (direct or via a same-package callee that blocks) is
// reported, and a callee's acquisitions become acquisition-order edges.
func (a *analysis) checkCallHazards(call *ast.CallExpr, f held) {
	if len(f) == 0 {
		return
	}
	blocker := a.directBlocker(call)
	var acquires map[string]bool
	if blocker == "" {
		if callee := ir.StaticCallee(a.pass.TypesInfo, call); callee != nil {
			if cs := a.summaries[callee]; cs != nil {
				acquires = cs.acquires
				if cs.blocker != "" {
					blocker = callee.Name() + " (which reaches " + cs.blocker + ")"
				}
			}
		}
	}
	if blocker != "" {
		for _, key := range sortedKeys(f) {
			a.pass.Reportf(call.Pos(), "%s held across %s: a lock held at a coordinator barrier or cross-domain hand-off stalls every domain behind it; release before handing off", key, blocker)
		}
	}
	for cls := range acquires {
		for _, h := range f {
			a.edges = append(a.edges, edge{from: h.class, to: cls, pos: call.Pos()})
		}
	}
}

// directBlocker recognizes the barrier and hand-off calls themselves:
// sync.WaitGroup.Wait, StageHandoffs, SendFrame.
func (a *analysis) directBlocker(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if ok && sel.Sel.Name == "Wait" && isWaitGroup(a.pass.TypesInfo.TypeOf(sel.X)) {
		return "sync.WaitGroup.Wait (coordinator barrier)"
	}
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if handoffCallees[name] {
		return name + " (cross-domain hand-off)"
	}
	return ""
}

// mutexOp recognizes Lock/RLock/Unlock/RUnlock on a sync.Mutex or
// sync.RWMutex and returns the lock's class and instance key.
func (a *analysis) mutexOp(call *ast.CallExpr) (class, key string, acquires, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquires = true
	case "Unlock", "RUnlock":
	default:
		return "", "", false, false
	}
	if !isSyncMutex(a.pass.TypesInfo.TypeOf(sel.X)) {
		return "", "", false, false
	}
	key = renderExpr(sel.X)
	class = a.lockClass(sel.X)
	if key == "" || class == "" {
		return "", "", false, false
	}
	return class, key, acquires, true
}

// lockClass names the lock for the acquisition-order graph: the owning
// named type plus the field path to the mutex (netsim.domainRT.inbox.mu),
// or package.name for a bare mutex variable.
func (a *analysis) lockClass(mutexExpr ast.Expr) string {
	var fields []string
	e := ast.Unparen(mutexExpr)
	for {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			break
		}
		fields = append([]string{sel.Sel.Name}, fields...)
		if n := namedOf(a.pass.TypesInfo.TypeOf(sel.X)); n != nil {
			obj := n.Obj()
			pkg := "?"
			if obj.Pkg() != nil {
				pkg = obj.Pkg().Name()
			}
			return pkg + "." + obj.Name() + "." + strings.Join(fields, ".")
		}
		e = ast.Unparen(sel.X)
	}
	if id, ok := e.(*ast.Ident); ok {
		prefix := a.pass.Pkg.Name()
		if len(fields) > 0 {
			return prefix + "." + id.Name + "." + strings.Join(fields, ".")
		}
		return prefix + "." + id.Name
	}
	return ""
}

// reportCycles condenses the acquisition graph and reports every edge
// that participates in a cycle: a component with two mutually ordered
// classes, or a self-edge (one class acquired while an instance of the
// same class is held).
func (a *analysis) reportCycles() {
	adj := map[string]map[string]bool{}
	for _, e := range a.edges {
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	comp := sccOf(adj)
	reported := map[token.Pos]bool{}
	for _, e := range a.edges {
		cyclic := e.from == e.to || (comp[e.from] != "" && comp[e.from] == comp[e.to])
		if !cyclic || reported[e.pos] {
			continue
		}
		reported[e.pos] = true
		if e.from == e.to {
			a.pass.Reportf(e.pos, "acquiring %s while an instance of the same lock class is already held: without a global instance order this deadlocks against a worker locking in the opposite order", e.to)
		} else {
			a.pass.Reportf(e.pos, "lock-order cycle: %s acquired while holding %s, but the opposite order also occurs in this package; pick one global acquisition order", e.to, e.from)
		}
	}
}

// sccOf computes, for each node in a cyclic strongly connected component
// of size > 1, a canonical component id (the smallest member name).
// Nodes in singleton components map to "".
func sccOf(adj map[string]map[string]bool) map[string]string {
	nodes := map[string]bool{}
	for from, tos := range adj {
		nodes[from] = true
		for to := range tos {
			nodes[to] = true
		}
	}
	order := make([]string, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	comp := map[string]string{}

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]string, 0, len(adj[v]))
		for to := range adj[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sort.Strings(scc)
				for _, m := range scc {
					comp[m] = scc[0]
				}
			}
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return comp
}

// sortedKeys lists the held-lock instance keys deterministically.
func sortedKeys(f held) []string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// isSyncMutex reports whether t is (a pointer to) sync.Mutex or
// sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// isWaitGroup reports whether t is (a pointer to) sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// namedOf unwraps pointers and returns the named type, if any.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// renderExpr renders the receiver forms a mutex selector can take;
// anything fancier returns "" and is not tracked.
func renderExpr(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := renderExpr(e.X); x != "" {
			return x + "." + e.Sel.Name
		}
	case *ast.StarExpr:
		if x := renderExpr(e.X); x != "" {
			return "*" + x
		}
	case *ast.IndexExpr:
		if x := renderExpr(e.X); x != "" {
			if i := renderExpr(e.Index); i != "" {
				return x + "[" + i + "]"
			}
		}
	case *ast.BasicLit:
		return e.Value
	}
	return ""
}
