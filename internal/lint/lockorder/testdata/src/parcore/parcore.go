// Package parcore is lockorder testdata shaped like the parallel engine:
// a coordinator with a barrier, domain runtimes with inbox mutexes, and a
// scheduler mutex. The seeded violations below must each be caught; the
// sanctioned patterns (consistent nesting, per-iteration locking,
// release-before-barrier) must stay clean.
package parcore

import "sync"

// sched mirrors sim.Group: a scheduler guarded by its own mutex.
type sched struct {
	mu      sync.Mutex
	pending []int
}

// domain mirrors netsim.domainRT: a hand-off inbox under its own mutex.
type domain struct {
	inbox struct {
		mu      sync.Mutex
		entries []int
	}
}

// coord mirrors the coordinator: a barrier plus the shared structures.
type coord struct {
	wg   sync.WaitGroup
	sch  sched
	doms []*domain
}

func (c *coord) StageHandoffs() {}

func SendFrame(v int) {}

// resA and resB are two independently lockable resources. The inversion
// seeds use dedicated classes so the cycle they form does not contaminate
// the sanctioned scheduler→inbox nesting below (every acquisition edge
// inside a cyclic component is reported).
type resA struct{ mu sync.Mutex }

type resB struct{ mu sync.Mutex }

// --- seeded violations ---

// inversionAB and inversionBA acquire the two resources in opposite
// orders: a classic deadlock inversion. Both completing acquisitions are
// flagged.
func inversionAB(a *resA, b *resB) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}

func inversionBA(a *resA, b *resB) {
	b.mu.Lock()
	a.mu.Lock() // want "lock-order cycle"
	a.mu.Unlock()
	b.mu.Unlock()
}

// heldAcrossBarrier waits on the coordinator barrier with the scheduler
// mutex held: every worker that needs the scheduler stalls the window.
func (c *coord) heldAcrossBarrier() {
	c.sch.mu.Lock()
	c.wg.Wait() // want "held across sync.WaitGroup.Wait"
	c.sch.mu.Unlock()
}

// heldAcrossStage holds an inbox lock into the staging hand-off.
func (c *coord) heldAcrossStage(d *domain) {
	d.inbox.mu.Lock()
	c.StageHandoffs() // want "held across StageHandoffs"
	d.inbox.mu.Unlock()
}

// heldAcrossSend publishes a frame with a lock held.
func (c *coord) heldAcrossSend() {
	c.sch.mu.Lock()
	SendFrame(1) // want "held across SendFrame"
	c.sch.mu.Unlock()
}

// barrierHelper reaches the barrier one call down.
func (c *coord) barrierHelper() {
	c.wg.Wait()
}

// heldAcrossCallee holds a lock while calling a helper that (transitively)
// blocks on the barrier: the interprocedural summary catches it at the
// call site.
func (c *coord) heldAcrossCallee() {
	c.sch.mu.Lock()
	c.barrierHelper() // want "held across barrierHelper"
	c.sch.mu.Unlock()
}

// deferHeldAcrossBarrier releases only at return, so the lock is still
// held when the barrier is reached.
func (c *coord) deferHeldAcrossBarrier() {
	c.sch.mu.Lock()
	defer c.sch.mu.Unlock()
	c.wg.Wait() // want "held across sync.WaitGroup.Wait"
}

// doubleLock re-locks the same receiver on one path: sync.Mutex is not
// recursive, this self-deadlocks.
func (c *coord) doubleLock() {
	c.sch.mu.Lock()
	c.sch.mu.Lock() // want "locked again while already held"
	c.sch.mu.Unlock()
	c.sch.mu.Unlock()
}

// branchDoubleLock may already hold the lock when it locks again: the
// may-analysis keeps the branch's acquisition live at the second Lock.
func (c *coord) branchDoubleLock(cond bool) {
	if cond {
		c.sch.mu.Lock()
	}
	c.sch.mu.Lock() // want "locked again while already held"
	c.sch.mu.Unlock()
}

// twoInboxes holds one domain's inbox while taking another's: two
// instances of one class with no global instance order.
func (c *coord) twoInboxes(d1, d2 *domain) {
	d1.inbox.mu.Lock()
	d2.inbox.mu.Lock() // want "instance of the same lock class"
	d2.inbox.mu.Unlock()
	d1.inbox.mu.Unlock()
}

// --- sanctioned patterns (clean) ---

// nestedConsistent always acquires scheduler before inbox; so does
// nestedConsistent2. One order, no cycle.
func (c *coord) nestedConsistent(d *domain) {
	c.sch.mu.Lock()
	d.inbox.mu.Lock()
	d.inbox.entries = append(d.inbox.entries, 1)
	d.inbox.mu.Unlock()
	c.sch.mu.Unlock()
}

func (c *coord) nestedConsistent2(d *domain) {
	c.sch.mu.Lock()
	d.inbox.mu.Lock()
	d.inbox.entries = d.inbox.entries[:0]
	d.inbox.mu.Unlock()
	c.sch.mu.Unlock()
}

// perIteration locks each domain's inbox one at a time: never two held.
func (c *coord) perIteration() {
	for _, d := range c.doms {
		d.inbox.mu.Lock()
		d.inbox.entries = d.inbox.entries[:0]
		d.inbox.mu.Unlock()
	}
}

// releaseBeforeBarrier is the sanctioned window epilogue: drop the lock,
// then wait.
func (c *coord) releaseBeforeBarrier() {
	c.sch.mu.Lock()
	c.sch.pending = nil
	c.sch.mu.Unlock()
	c.wg.Wait()
}

// deferNoBarrier holds through a defer but never reaches a barrier or a
// second lock: plain serial-section locking.
func (c *coord) deferNoBarrier() int {
	c.sch.mu.Lock()
	defer c.sch.mu.Unlock()
	return len(c.sch.pending)
}

// workerBody: the closure is its own function; the coordinator's lock
// state does not leak into it, and its lock does not leak out.
func (c *coord) workerBody(d *domain) func() {
	c.sch.mu.Lock()
	fn := func() {
		d.inbox.mu.Lock()
		d.inbox.entries = append(d.inbox.entries, 2)
		d.inbox.mu.Unlock()
	}
	c.sch.mu.Unlock()
	return fn
}
