package framepool

// Interprocedural ownership summaries. The positional machinery in
// framepool.go sees one function at a time; this file gives it eyes
// across same-package call boundaries. A bottom-up pass over the package
// call graph (internal/lint/ir) computes, for every declared function,
// what it may do to each *frame.Buf parameter:
//
//   - releases:  some path calls Release on the parameter's frame
//   - transfers: some path hands the frame to the fabric (SendFrame)
//   - escapes:   the frame may outlive the call — returned, stored in a
//     field/global/channel/composite, captured by a closure, or passed to
//     a callee this package cannot see into
//   - pure:      none of the above; the callee only reads
//
// and, for results, whether a returned slice aliases a parameter's
// backing array (returns-derived-slice, e.g. `func hdr(fb *frame.Buf)
// []byte { return fb.Bytes() }`).
//
// Callers consume the summaries three ways: a call to a releasing or
// transferring helper becomes an ownership-ending event (so a use after
// the call is flagged exactly like a use after a literal fb.Release());
// a call returning a derived slice extends the derived-slice map through
// the call; and a call to a pure helper no longer counts as a plausible
// hand-off, so a Get result whose only consumer is a read-only helper is
// reported as a pool leak. Named transfer callees (SendFrame) keep their
// dedicated transfer semantics and messages; summaries only speak for
// callees the name tables do not.
//
// Within a summarized function, parameters are tracked through local
// aliases (`g := fb`) by a small fixpoint, and mutual recursion is
// resolved by iterating each call-graph component until the summaries
// stop changing (facts only ever turn on, so this terminates).

import (
	"go/ast"
	"go/types"
	"sort"

	"hydranet/internal/lint"
	"hydranet/internal/lint/ir"
)

// paramFacts is what a function may do to one *frame.Buf parameter.
type paramFacts struct {
	releases  bool
	transfers bool
	escapes   bool
}

// pure reports a parameter the function provably only reads.
func (p *paramFacts) pure() bool {
	return p != nil && !p.releases && !p.transfers && !p.escapes
}

// ownSummary is one function's ownership abstract.
type ownSummary struct {
	// params is indexed by parameter position (flattened across grouped
	// names); nil entries are non-Buf parameters.
	params []*paramFacts
	// resultDerived maps a result index to the parameter positions whose
	// frame the returned slice may alias.
	resultDerived map[int]map[int]bool
}

// param returns the facts for argument position i, nil-safe.
func (s *ownSummary) param(i int) *paramFacts {
	if s == nil || i < 0 || i >= len(s.params) {
		return nil
	}
	return s.params[i]
}

// derivedResultParams lists, sorted, the parameter positions aliased by
// result ri.
func (s *ownSummary) derivedResultParams(ri int) []int {
	if s == nil {
		return nil
	}
	out := make([]int, 0, len(s.resultDerived[ri]))
	for j := range s.resultDerived[ri] {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// pkgSummaries holds every function's summary for one package.
type pkgSummaries struct {
	info   *types.Info
	byFunc map[*types.Func]*ownSummary
}

// forCall resolves a call to its callee's summary, or nil when the callee
// is indirect, imported, or a builtin.
func (s *pkgSummaries) forCall(call *ast.CallExpr) *ownSummary {
	if s == nil {
		return nil
	}
	fn := ir.StaticCallee(s.info, call)
	if fn == nil {
		return nil
	}
	return s.byFunc[fn]
}

// computeSummaries runs the bottom-up fixpoint over the package.
func computeSummaries(pass *lint.Pass) *pkgSummaries {
	s := &pkgSummaries{info: pass.TypesInfo, byFunc: map[*types.Func]*ownSummary{}}
	cg := ir.BuildCallGraph(pass.Files, pass.TypesInfo, pass.Pkg)
	cg.BottomUp(func(fn *types.Func, decl *ast.FuncDecl) bool {
		ns := summarize(pass.TypesInfo, decl, s)
		old := s.byFunc[fn]
		s.byFunc[fn] = ns
		return !summariesEqual(old, ns)
	})
	return s
}

// summarize computes one function's summary given the (possibly still
// converging) summaries of its callees.
func summarize(info *types.Info, decl *ast.FuncDecl, s *pkgSummaries) *ownSummary {
	sum := &ownSummary{resultDerived: map[int]map[int]bool{}}
	slots := map[*types.Var]int{}
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			names := f.Names
			if len(names) == 0 {
				sum.params = append(sum.params, nil) // unnamed: nothing to track
				continue
			}
			for _, name := range names {
				idx := len(sum.params)
				if v, ok := info.Defs[name].(*types.Var); ok && isBufPtr(v.Type()) {
					slots[v] = idx
					sum.params = append(sum.params, &paramFacts{})
				} else {
					sum.params = append(sum.params, nil)
				}
			}
		}
	}
	if len(slots) == 0 {
		return sum
	}

	// alias maps Buf-typed locals to the parameter they copy; derivedOf
	// maps slice locals to the parameters their bytes alias. Both grow to
	// fixpoint over the body's assignments.
	alias := map[*types.Var]int{}
	for v, i := range slots {
		alias[v] = i
	}
	derivedOf := map[*types.Var]map[int]bool{}

	resolveAlias := func(e ast.Expr) (int, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return 0, false
		}
		v, _ := info.Uses[id].(*types.Var)
		if v == nil {
			v, _ = info.Defs[id].(*types.Var)
		}
		if v == nil {
			return 0, false
		}
		i, ok := alias[v]
		return i, ok
	}

	var resolveDerived func(e ast.Expr) map[int]bool
	resolveDerived = func(e ast.Expr) map[int]bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok {
				return derivedOf[v]
			}
		case *ast.SliceExpr:
			return resolveDerived(e.X)
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && deriveMethods[sel.Sel.Name] {
				if i, ok := resolveAlias(sel.X); ok {
					return map[int]bool{i: true}
				}
			}
			if cs := s.forCall(e); cs != nil {
				out := map[int]bool{}
				for _, j := range cs.derivedResultParams(0) {
					if j < len(e.Args) {
						if i, ok := resolveAlias(e.Args[j]); ok {
							out[i] = true
						}
					}
				}
				if len(out) > 0 {
					return out
				}
			}
		}
		return nil
	}

	for changed := true; changed; {
		changed = false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				var v *types.Var
				if d, ok := info.Defs[id].(*types.Var); ok {
					v = d
				} else if u, ok := info.Uses[id].(*types.Var); ok {
					v = u
				}
				if v == nil {
					continue
				}
				if isBufPtr(v.Type()) {
					if j, ok := resolveAlias(as.Rhs[i]); ok {
						if _, has := alias[v]; !has {
							alias[v] = j
							changed = true
						}
					}
				} else if ds := resolveDerived(as.Rhs[i]); len(ds) > 0 {
					cur := derivedOf[v]
					if cur == nil {
						cur = map[int]bool{}
						derivedOf[v] = cur
					}
					for j := range ds {
						if !cur[j] {
							cur[j] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	mark := func(slot int, set func(*paramFacts)) {
		if slot >= 0 && slot < len(sum.params) && sum.params[slot] != nil {
			set(sum.params[slot])
		}
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure capturing the parameter may do anything with it
			// after this function returns.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						if i, ok := alias[v]; ok {
							mark(i, func(p *paramFacts) { p.escapes = true })
						}
					}
				}
				return true
			})
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" && len(n.Args) == 0 {
				if i, ok := resolveAlias(sel.X); ok {
					mark(i, func(p *paramFacts) { p.releases = true })
					return true
				}
			}
			name := calleeName(n)
			cs := s.forCall(n)
			for ai, arg := range n.Args {
				i, ok := resolveAlias(arg)
				if !ok {
					continue
				}
				switch {
				case transferFuncs[name]:
					mark(i, func(p *paramFacts) { p.transfers = true })
				case cs != nil:
					if pf := cs.param(ai); pf != nil {
						if pf.releases {
							mark(i, func(p *paramFacts) { p.releases = true })
						}
						if pf.transfers {
							mark(i, func(p *paramFacts) { p.transfers = true })
						}
						if pf.escapes {
							mark(i, func(p *paramFacts) { p.escapes = true })
						}
					} else {
						mark(i, func(p *paramFacts) { p.escapes = true })
					}
				default:
					// Imported, indirect, or builtin callee: assume the worst.
					mark(i, func(p *paramFacts) { p.escapes = true })
				}
			}
		case *ast.ReturnStmt:
			for ri, r := range n.Results {
				if i, ok := resolveAlias(r); ok {
					mark(i, func(p *paramFacts) { p.escapes = true })
					continue
				}
				if ds := resolveDerived(r); len(ds) > 0 {
					cur := sum.resultDerived[ri]
					if cur == nil {
						cur = map[int]bool{}
						sum.resultDerived[ri] = cur
					}
					for j := range ds {
						cur[j] = true
					}
				}
			}
		case *ast.AssignStmt:
			if !allLhsLocal(info, n) {
				for _, rhs := range n.Rhs {
					if i, ok := resolveAlias(rhs); ok {
						mark(i, func(p *paramFacts) { p.escapes = true })
					}
				}
			}
		case *ast.SendStmt:
			if i, ok := resolveAlias(n.Value); ok {
				mark(i, func(p *paramFacts) { p.escapes = true })
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				x := e
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					x = kv.Value
				}
				if i, ok := resolveAlias(x); ok {
					mark(i, func(p *paramFacts) { p.escapes = true })
				}
			}
		}
		return true
	})
	return sum
}

// allLhsLocal reports whether every assignment target is a plain
// function-local identifier.
func allLhsLocal(info *types.Info, as *ast.AssignStmt) bool {
	for _, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return false
		}
		var v *types.Var
		if d, ok := info.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := info.Uses[id].(*types.Var); ok {
			v = u
		}
		if v == nil {
			continue // blank identifier
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return false
		}
	}
	return true
}

// summariesEqual compares two summaries field by field.
func summariesEqual(a, b *ownSummary) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.params) != len(b.params) {
		return false
	}
	for i := range a.params {
		pa, pb := a.params[i], b.params[i]
		if (pa == nil) != (pb == nil) {
			return false
		}
		if pa != nil && *pa != *pb {
			return false
		}
	}
	if len(a.resultDerived) != len(b.resultDerived) {
		return false
	}
	for ri, da := range a.resultDerived {
		db := b.resultDerived[ri]
		if len(da) != len(db) {
			return false
		}
		for j := range da {
			if !db[j] {
				return false
			}
		}
	}
	return true
}
