package framepool_test

import (
	"path/filepath"
	"testing"

	"hydranet/internal/lint/framepool"
	"hydranet/internal/lint/linttest"
)

func TestOwnership(t *testing.T) {
	linttest.Run(t, framepool.Analyzer, filepath.Join(linttest.TestData(t), "src", "pool_a"))
}

func TestInterprocedural(t *testing.T) {
	linttest.Run(t, framepool.Analyzer, filepath.Join(linttest.TestData(t), "src", "pool_b"))
}
