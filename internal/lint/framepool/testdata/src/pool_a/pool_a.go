// Package pool_a is framepool-analyzer testdata: each ownership bug the
// analyzer must catch, seeded next to the idiomatic clean patterns the
// fabric actually uses (early-return guards, defer, per-iteration Get,
// privatizing copies) which must stay unflagged.
package pool_a

import "hydranet/internal/frame"

// SendFrame stands in for the fabric's ownership-transferring send: the
// callee releases the frame on every outcome.
func SendFrame(ifindex int, fb *frame.Buf) {
	fb.Release()
	_ = ifindex
}

type holder struct{ buf []byte }

var sink byte

// --- violations ---

func useAfterRelease(fb *frame.Buf) int {
	fb.Release()
	return fb.Len() // want "use of fb after Release"
}

func doubleRelease(fb *frame.Buf) {
	fb.Release()
	fb.Release() // want "double Release of fb"
}

func useAfterTransfer(fb *frame.Buf) int {
	SendFrame(0, fb)
	return fb.Len() // want "use of fb after ownership transfer to SendFrame"
}

func releaseAfterTransfer(fb *frame.Buf) {
	SendFrame(0, fb)
	fb.Release() // want "Release of fb after ownership transfer to SendFrame"
}

func condReleaseThenUse(fb *frame.Buf, drop bool) int {
	if drop {
		fb.Release()
	}
	return fb.Len() // want "use of fb after Release"
}

func derivedAfterRelease(fb *frame.Buf) byte {
	b := fb.Bytes()
	fb.Release()
	return b[0] // want "slice b derived from frame fb used after its Release"
}

func derivedAfterTransfer(fb *frame.Buf) {
	hdr := fb.Prepend(4)
	SendFrame(0, fb)
	hdr[0] = 1 // want "slice hdr derived from frame fb used after its ownership transfer to SendFrame"
}

func retainedStore(h *holder, fb *frame.Buf) {
	h.buf = fb.Bytes() // want "slice derived from frame fb stored in longer-lived state"
	fb.Release()
}

func leak(p *frame.Pool) {
	fb := p.Get(64) // want "fb obtained from Get is never released or handed off: pool leak"
	sink = fb.Bytes()[0]
}

func loopTransfer(fb *frame.Buf, n int) {
	for i := 0; i < n; i++ {
		SendFrame(0, fb) // want "transfer of fb to SendFrame inside a loop that never rebinds it"
	}
}

func loopRelease(fb *frame.Buf, n int) {
	for i := 0; i < n; i++ {
		fb.Release() // want "Release of fb inside a loop that never rebinds it"
	}
}

// --- clean patterns ---

// earlyReturnGuard is the fabric's pervasive drop idiom: the Release is
// confined to a block that returns, so the fall-through path still owns
// the frame.
func earlyReturnGuard(fb *frame.Buf, alive bool) int {
	if !alive {
		fb.Release()
		return 0
	}
	return fb.Len()
}

// elseIsolation: a Release in the then-branch cannot poison the else.
func elseIsolation(fb *frame.Buf, drop bool) int {
	if drop {
		fb.Release()
	} else {
		return fb.Len()
	}
	return 0
}

// caseIsolation: switch cases do not fall through in Go.
func caseIsolation(fb *frame.Buf, k int) int {
	switch k {
	case 0:
		fb.Release()
	case 1:
		return fb.Len()
	}
	return 0
}

// deferredRelease runs at function exit; every body use precedes it.
func deferredRelease(fb *frame.Buf) int {
	defer fb.Release()
	return fb.Len()
}

// cleanRoundTrip: get, use, release, in order.
func cleanRoundTrip(p *frame.Pool) byte {
	fb := p.Get(64)
	b := fb.Bytes()
	v := b[0]
	fb.Release()
	return v
}

// privatize copies the derived bytes before the frame goes away — the
// tcp-receive-path idiom.
func privatize(fb *frame.Buf) byte {
	b := fb.Bytes()
	cp := append([]byte(nil), b...)
	fb.Release()
	return cp[0]
}

// loopRebind gets a fresh frame each iteration, so the transfer is not
// loop-carried.
func loopRebind(p *frame.Pool, n int) {
	for i := 0; i < n; i++ {
		fb := p.Get(64)
		SendFrame(0, fb)
	}
}

// loopGuarded mixes a guarded drop with a transfer; the rebind keeps both
// per-iteration.
func loopGuarded(p *frame.Pool, n int, drop bool) {
	for i := 0; i < n; i++ {
		fb := p.Get(64)
		if drop {
			fb.Release()
			continue
		}
		SendFrame(0, fb)
	}
}

// returnHandoff passes ownership to the caller; not a leak.
func returnHandoff(p *frame.Pool) *frame.Buf {
	fb := p.Get(64)
	return fb
}

// releaseEachRange drains a batch through the range value: a range
// variable is freshly bound every iteration, so the Release never carries
// into the next one.
func releaseEachRange(bufs []*frame.Buf) {
	for _, fb := range bufs {
		fb.Release()
	}
}

// releaseEachRangeAssign is the assignment form (`fb` declared outside);
// the range clause still rebinds it per iteration.
func releaseEachRangeAssign(bufs []*frame.Buf) {
	var fb *frame.Buf
	for _, fb = range bufs {
		fb.Release()
	}
}

// rangeCarried ranges over something else entirely while releasing a
// variable the loop never rebinds: iteration two touches a dead frame.
func rangeCarried(fb *frame.Buf, xs []int) {
	for range xs {
		fb.Release() // want "Release of fb inside a loop that never rebinds it"
	}
}
