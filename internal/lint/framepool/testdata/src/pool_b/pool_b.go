// Package pool_b exercises the interprocedural ownership summaries: every
// violation here crosses a same-package call boundary, so the purely
// intraprocedural analysis of pool_a would miss all of them. The clean
// patterns at the bottom prove the summaries do not over-poison the
// sanctioned helper idioms.
package pool_b

import "hydranet/internal/frame"

var pool *frame.Pool

// releaseHelper unconditionally releases its argument: its summary says
// param 0 may-release.
func releaseHelper(fb *frame.Buf) {
	fb.Release()
}

// maybeRelease releases on only one path; may-release still poisons every
// caller's continuation.
func maybeRelease(fb *frame.Buf, ok bool) {
	if !ok {
		fb.Release()
	}
}

// chainRelease reaches Release two call levels down; the bottom-up pass
// composes summaries transitively.
func chainRelease(fb *frame.Buf) {
	releaseHelper(fb)
}

// aliasRelease releases through a local alias of the parameter.
func aliasRelease(fb *frame.Buf) {
	g := fb
	g.Release()
}

// readOnly provably only reads its argument: pure, so passing a frame to
// it is not a hand-off.
func readOnly(fb *frame.Buf) int {
	return len(fb.Bytes())
}

// headerOf returns a slice aliasing the frame's backing array:
// returns-derived-slice.
func headerOf(fb *frame.Buf) []byte {
	return fb.Bytes()
}

// --- seeded interprocedural violations ---

// useAfterCalleeRelease: the Release happens inside the callee; the use
// after the call reads a recycled frame.
func useAfterCalleeRelease() {
	fb := pool.Get(64)
	releaseHelper(fb)
	_ = fb.Bytes() // want "use of fb after call to releaseHelper, which releases it"
}

// useAfterConditionalCalleeRelease: a conditional Release in the callee
// poisons the caller just the same — some schedule frees the frame.
func useAfterConditionalCalleeRelease(ok bool) {
	fb := pool.Get(64)
	maybeRelease(fb, ok)
	_ = fb.Bytes() // want "use of fb after call to maybeRelease, which releases it"
}

// useAfterChainedRelease: the Release is two calls down.
func useAfterChainedRelease() {
	fb := pool.Get(64)
	chainRelease(fb)
	_ = fb.Bytes() // want "use of fb after call to chainRelease, which releases it"
}

// useAfterAliasedCalleeRelease: the callee released through an alias.
func useAfterAliasedCalleeRelease() {
	fb := pool.Get(64)
	aliasRelease(fb)
	_ = fb.Bytes() // want "use of fb after call to aliasRelease, which releases it"
}

// doubleReleaseViaHelper: the helper already released the frame.
func doubleReleaseViaHelper() {
	fb := pool.Get(64)
	releaseHelper(fb)
	fb.Release() // want "double Release of fb .released inside call to releaseHelper"
}

// derivedFromCalleeResult: the callee's return value aliases the frame's
// bytes, so using it after the Release reads recycled memory.
func derivedFromCalleeResult() byte {
	fb := pool.Get(64)
	hdr := headerOf(fb)
	fb.Release()
	return hdr[0] // want "slice hdr derived from frame fb used after its Release"
}

// leakThroughPureHelper: readOnly cannot take ownership, so nothing ever
// releases this frame.
func leakThroughPureHelper() int {
	fb := pool.Get(64) // want "fb obtained from Get is never released or handed off"
	return readOnly(fb)
}

// --- sanctioned helper idioms (clean) ---

// releaseViaHelper delegates the release and never touches the frame
// again.
func releaseViaHelper() {
	fb := pool.Get(64)
	fb.Prepend(2)
	releaseHelper(fb)
}

// guardViaHelper mirrors the fabric's early-return guard, with the
// release behind a helper: the poison stays inside the guard block.
func guardViaHelper(alive bool) {
	fb := pool.Get(64)
	if !alive {
		releaseHelper(fb)
		return
	}
	_ = fb.Bytes()
	releaseHelper(fb)
}

// privatizeBeforeCalleeRelease copies the derived bytes before the helper
// releases the frame.
func privatizeBeforeCalleeRelease() []byte {
	fb := pool.Get(64)
	private := append([]byte(nil), headerOf(fb)...)
	releaseHelper(fb)
	return private
}

// inspectThenRelease keeps ownership across a pure helper and releases
// directly afterward.
func inspectThenRelease() int {
	fb := pool.Get(64)
	n := readOnly(fb)
	fb.Release()
	return n
}
